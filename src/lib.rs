//! # gabm — a Graphical Approach to Analogue Behavioural Modelling
//!
//! Facade crate re-exporting the whole `gabm` workspace, a from-scratch Rust
//! reproduction of *Moser, Nussbaum, Amann, Astier, Pellandini — "A Graphical
//! Approach to Analogue Behavioural Modelling", Proc. EDTC (DATE) 1994*.
//!
//! The workspace implements the paper's complete pipeline:
//!
//! 1. **Definition card** ([`core::card`]) — external view of a model: pins,
//!    parameters, characteristics.
//! 2. **Functional diagram** ([`core::diagram`]) — a graph of Graphical
//!    Building Symbols with quantity-kind checking ("oil and water will not
//!    mix") and single-driver net rules.
//! 3. **Code generation** ([`codegen`]) — ELDO-FAS, VHDL-AMS-like and
//!    MAST-like backends assembling generic code segments in signal-flow
//!    order.
//! 4. **Simulation** ([`fas`] + [`sim`]) — the generated FAS code is parsed
//!    and executed as a behavioural device inside a SPICE-class analogue
//!    simulator (MNA, Newton–Raphson, adaptive-step transient).
//! 5. **Model check** ([`charac`]) — extraction rigs re-measure the model's
//!    instance parameters and compare them with the assigned values.
//!
//! # Quickstart
//!
//! ```
//! use gabm::core::constructs::InputStageSpec;
//! use gabm::codegen::{generate, Backend};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Build the paper's Fig. 2 input stage as a functional diagram...
//! let diagram = InputStageSpec::new("in", 1.0e-6, 5.0e-12).diagram()?;
//! // ...and generate the §4.2 ELDO-FAS listing from it.
//! let code = generate(&diagram, Backend::Fas)?;
//! assert!(code.text.contains("volt.value(in)"));
//! # Ok(())
//! # }
//! ```

pub use gabm_charac as charac;
pub use gabm_codegen as codegen;
pub use gabm_core as core;
pub use gabm_fas as fas;
pub use gabm_fasvm as fasvm;
pub use gabm_lint as lint;
pub use gabm_models as models;
pub use gabm_numeric as numeric;
pub use gabm_par as par;
pub use gabm_schematic as schematic;
pub use gabm_sim as sim;
pub use gabm_trace as trace;
