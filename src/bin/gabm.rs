//! `gabm` — command-line front end for the GABM toolchain.
//!
//! Exposes the static analyser and the bytecode compiler:
//!
//! ```text
//! gabm lint <file.fas | file.json> [--format text|json] [--deny-warnings]
//! gabm lint <file> --fix [--dry-run]
//! gabm lint --construct <input-stage|output-stage|power-supply|slew-rate>
//! gabm lint --list-passes
//! gabm compile <file.fas> [--disasm]
//! gabm trace <out.json>
//! gabm help <command> | --version
//! ```
//!
//! Diagram inputs are recognised by a case-insensitive `.json` extension
//! *or* by content (a leading `{`), so extensionless and unconventionally
//! named files dispatch correctly; everything else is treated as FAS
//! source (§4.2 textual models).
//!
//! `--fix` applies every machine-applicable fix to a fixpoint and writes
//! the repaired input back (`--dry-run` reports without writing).
//! Re-lints are served from a content-hash keyed cache under
//! `target/gabm-lint-cache/` (override with `GABM_LINT_CACHE_DIR`,
//! disable with `--no-cache`); `--format json` reports pass-level
//! hit statistics in a `"cache"` object.
//!
//! `--trace <out.json>` (env fallback: `GABM_TRACE`) records a Chrome
//! trace-event file of any command — spans from the simulator, bytecode
//! compiler, characterization rigs and worker pool — and `gabm trace`
//! validates such a file; `--trace-summary` prints the text summary.
//!
//! Exit status: `0` clean, `1` diagnostics found (errors always count;
//! warnings only under `--deny-warnings`), `2` usage or I/O failure.

use gabm::core::constructs::{InputStageSpec, OutputStageSpec, PowerSupplySpec, SlewRateSpec};
use gabm::core::json::{from_str, to_string_pretty, Value};
use gabm::lint::{
    fix_diagram, fix_fas_source, lint_diagram_cached, lint_fas_source_cached, passes, render_text,
    summarize, to_json, to_json_with_cache, Diagnostic, FixOutcome, LintCache,
};
use std::process::ExitCode;

const TOP_USAGE: &str = "\
usage: gabm <command> [options]

commands:
  lint     static analysis of diagrams, codegen IR and FAS source
  compile  compile a FAS model to register bytecode
  trace    validate and summarize a Chrome trace-event file
  help     show help for a command: gabm help <command>

flags:
  --threads <n>      size of the worker pool for parallel characterization
                     (default: all hardware threads; env: GABM_THREADS)
  --trace <out.json> record a Chrome trace-event file of this invocation
                     (load it in Perfetto / chrome://tracing; env: GABM_TRACE)
  --trace-summary    print a hierarchical span/counter summary on exit
  --version, -V      print the toolchain version
  --help, -h         show this help
";

const LINT_USAGE: &str = "\
usage: gabm lint <file.fas | file.json> [options]
       gabm lint --construct <name> [options]
       gabm lint --list-passes

options:
  --construct <name>   lint a built-in paper construct instead of a file
                       (input-stage, output-stage, power-supply, slew-rate)
  --format <fmt>       output format: text (default) or json
  --deny-warnings      exit non-zero on warnings, not only on errors
  --fix                apply machine-applicable fixes to a fixpoint and
                       write the repaired input back
  --dry-run            with --fix: report the fixes without writing
  --no-cache           disable the content-hash re-lint cache
  --list-passes        list every registered pass and exit
";

const COMPILE_USAGE: &str = "\
usage: gabm compile <file.fas> [options]

Compiles a FAS behavioural model to register bytecode (the execution
form used by the `FasBackend::Vm` engine) and prints a summary of the
compiled program.

options:
  --disasm   print the full disassembled bytecode listing
";

const TRACE_USAGE: &str = "\
usage: gabm trace <file.json>

Validates a Chrome trace-event file (as written by --trace) and prints
what it contains: event counts, threads and the top-level spans. Exits
2 if the file does not parse or is not a trace-event object.
";

enum Format {
    Text,
    Json,
}

struct LintArgs {
    input: Option<String>,
    construct: Option<String>,
    format: Format,
    deny_warnings: bool,
    list_passes: bool,
    fix: bool,
    dry_run: bool,
    no_cache: bool,
}

fn parse_lint_args(args: &[String]) -> Result<LintArgs, String> {
    let mut out = LintArgs {
        input: None,
        construct: None,
        format: Format::Text,
        deny_warnings: false,
        list_passes: false,
        fix: false,
        dry_run: false,
        no_cache: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--construct" => {
                let name = it.next().ok_or("--construct requires a name")?;
                out.construct = Some(name.clone());
            }
            "--format" => {
                let fmt = it.next().ok_or("--format requires 'text' or 'json'")?;
                out.format = match fmt.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format '{other}'")),
                };
            }
            "--deny-warnings" => out.deny_warnings = true,
            "--list-passes" => out.list_passes = true,
            "--fix" => out.fix = true,
            "--dry-run" => out.dry_run = true,
            "--no-cache" => out.no_cache = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown flag '{other}'"));
            }
            other => {
                if out.input.is_some() {
                    return Err("more than one input file".to_string());
                }
                out.input = Some(other.to_string());
            }
        }
    }
    if out.dry_run && !out.fix {
        return Err("--dry-run only makes sense with --fix".to_string());
    }
    if out.fix && out.construct.is_some() && !out.dry_run {
        return Err(
            "--fix --construct requires --dry-run (a built-in construct cannot be written back)"
                .to_string(),
        );
    }
    Ok(out)
}

/// Builds the requested §3.3 construct with its documented example values.
fn construct_diagram(name: &str) -> Result<gabm::core::FunctionalDiagram, String> {
    let d = match name {
        "input-stage" => InputStageSpec::new("in", 1.0e-6, 5.0e-12).diagram(),
        "output-stage" => OutputStageSpec::new("out", 1.0e-3).diagram(),
        "power-supply" => PowerSupplySpec::new("vdd", "vss", 1.0e-5, 1.0e-6, 2).diagram(),
        "slew-rate" => SlewRateSpec::new(2.0e6, 2.0e6).diagram(),
        other => {
            return Err(format!(
                "unknown construct '{other}' (expected input-stage, output-stage, power-supply or slew-rate)"
            ))
        }
    };
    d.map_err(|e| format!("failed to build construct '{name}': {e}"))
}

/// `true` when the input should be linted as a diagram. The extension is
/// checked case-insensitively, and extensionless or oddly named files are
/// sniffed by content: diagram files are JSON objects, so a leading `{`
/// decides (no FAS source can start with one).
fn is_diagram_input(path: &str, text: &str) -> bool {
    let lower = path.to_ascii_lowercase();
    lower.ends_with(".json") || text.trim_start().starts_with('{')
}

fn make_cache(args: &LintArgs) -> LintCache {
    if args.no_cache {
        LintCache::disabled()
    } else {
        LintCache::new(LintCache::default_dir())
    }
}

fn lint_input(args: &LintArgs, cache: &mut LintCache) -> Result<Vec<Diagnostic>, String> {
    if let Some(name) = &args.construct {
        let diagram = construct_diagram(name)?;
        let text = to_string_pretty(&diagram);
        return Ok(lint_diagram_cached(&diagram, &text, cache));
    }
    let Some(path) = &args.input else {
        return Err("no input file (or --construct) given".to_string());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    if is_diagram_input(path, &text) {
        let diagram: gabm::core::FunctionalDiagram =
            from_str(&text).map_err(|e| format!("'{path}' is not a diagram: {e}"))?;
        Ok(lint_diagram_cached(&diagram, &text, cache))
    } else {
        lint_fas_source_cached(&text, cache).map_err(|e| format!("'{path}': {e}"))
    }
}

/// Runs the fixer over the input; returns the outcome and whether the
/// repaired form was written back.
fn fix_input(args: &LintArgs) -> Result<(FixOutcome, bool), String> {
    if let Some(name) = &args.construct {
        let mut diagram = construct_diagram(name)?;
        return Ok((fix_diagram(&mut diagram), false));
    }
    let Some(path) = &args.input else {
        return Err("no input file (or --construct) given".to_string());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    if is_diagram_input(path, &text) {
        let mut diagram: gabm::core::FunctionalDiagram =
            from_str(&text).map_err(|e| format!("'{path}' is not a diagram: {e}"))?;
        let outcome = fix_diagram(&mut diagram);
        let write = !args.dry_run && outcome.applied > 0;
        if write {
            std::fs::write(path, to_string_pretty(&diagram))
                .map_err(|e| format!("cannot write '{path}': {e}"))?;
        }
        Ok((outcome, write))
    } else {
        let (fixed, outcome) = fix_fas_source(&text).map_err(|e| format!("'{path}': {e}"))?;
        let write = !args.dry_run && fixed != text;
        if write {
            std::fs::write(path, fixed).map_err(|e| format!("cannot write '{path}': {e}"))?;
        }
        Ok((outcome, write))
    }
}

/// JSON form of a fix run: the remaining diagnostics plus a `"fix"` object.
fn fix_json(outcome: &FixOutcome, dry_run: bool, written: bool) -> Value {
    let Value::Object(mut fields) = to_json(&outcome.remaining) else {
        unreachable!("to_json always returns an object");
    };
    fields.push((
        "fix".to_string(),
        Value::Object(vec![
            ("applied".to_string(), Value::Number(outcome.applied as f64)),
            ("refused".to_string(), Value::Number(outcome.refused as f64)),
            ("rounds".to_string(), Value::Number(outcome.rounds as f64)),
            (
                "fixed_codes".to_string(),
                Value::Array(
                    outcome
                        .fixed_codes
                        .iter()
                        .map(|c| Value::String(c.as_str().to_string()))
                        .collect(),
                ),
            ),
            ("dry_run".to_string(), Value::Bool(dry_run)),
            ("written".to_string(), Value::Bool(written)),
        ]),
    ));
    Value::Object(fields)
}

fn exit_code_for(diags: &[Diagnostic], deny_warnings: bool) -> ExitCode {
    let (errors, warnings, _notes) = summarize(diags);
    if errors > 0 || (deny_warnings && warnings > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn run_lint(args: &[String]) -> Result<ExitCode, String> {
    let args = parse_lint_args(args)?;
    if args.list_passes {
        for (layer, name) in passes() {
            println!("{layer}: {name}");
        }
        return Ok(ExitCode::SUCCESS);
    }
    if args.fix {
        // The fixer re-lints mutated content every round, so the cache
        // cannot help; every round runs fresh.
        let (outcome, written) = fix_input(&args)?;
        match args.format {
            Format::Text => {
                println!(
                    "applied {} fix(es) in {} round(s){}{}",
                    outcome.applied,
                    outcome.rounds,
                    if outcome.refused > 0 {
                        format!(", {} refused as ambiguous/overlapping", outcome.refused)
                    } else {
                        String::new()
                    },
                    if args.dry_run {
                        " [dry run — nothing written]"
                    } else if written {
                        " [input updated]"
                    } else {
                        ""
                    },
                );
                print!("{}", render_text(&outcome.remaining));
            }
            Format::Json => println!("{}", fix_json(&outcome, args.dry_run, written)),
        }
        return Ok(exit_code_for(&outcome.remaining, args.deny_warnings));
    }
    let mut cache = make_cache(&args);
    let diags = lint_input(&args, &mut cache)?;
    match args.format {
        Format::Text => print!("{}", render_text(&diags)),
        Format::Json => println!("{}", to_json_with_cache(&diags, &cache.stats)),
    }
    Ok(exit_code_for(&diags, args.deny_warnings))
}

/// `gabm compile <file.fas> [--disasm]`.
fn run_compile(args: &[String]) -> Result<ExitCode, String> {
    let mut input: Option<&str> = None;
    let mut disasm = false;
    for arg in args {
        match arg.as_str() {
            "--disasm" => disasm = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown flag '{other}'"));
            }
            other => {
                if input.is_some() {
                    return Err("more than one input file".to_string());
                }
                input = Some(other);
            }
        }
    }
    let Some(path) = input else {
        return Err("no input file given".to_string());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    let model = gabm::fas::compile(&text).map_err(|e| format!("'{path}': {e}"))?;
    let prog =
        gabm::fasvm::compile_program(&model).map_err(|e| format!("'{path}': bytecode: {e}"))?;
    if disasm {
        print!("{}", prog.disasm());
    } else {
        let stats = prog.stats();
        println!(
            "{}: {} pins, {} params -> {} ops in {} registers \
             ({} vinsts lowered; {} constants folded, {} static branches, \
             {} selects, {} dce'd)",
            prog.name(),
            prog.pins().len(),
            prog.params().len(),
            prog.op_count(),
            prog.reg_count(),
            stats.vinsts,
            stats.folded,
            stats.static_branches,
            stats.selects,
            stats.dce_removed
        );
    }
    Ok(ExitCode::SUCCESS)
}

/// `gabm trace <file.json>`: validate a Chrome trace-event file.
fn run_trace(args: &[String]) -> Result<ExitCode, String> {
    let mut input: Option<&str> = None;
    for arg in args {
        match arg.as_str() {
            other if other.starts_with('-') => {
                return Err(format!("unknown flag '{other}'"));
            }
            other => {
                if input.is_some() {
                    return Err("more than one input file".to_string());
                }
                input = Some(other);
            }
        }
    }
    let Some(path) = input else {
        return Err("no input file given".to_string());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    let value = Value::parse(&text).map_err(|e| format!("'{path}' is not valid JSON: {e}"))?;
    let events = value
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("'{path}' has no 'traceEvents' array"))?;
    let (mut begins, mut ends, mut counters, mut metas) = (0usize, 0usize, 0usize, 0usize);
    let mut tids = std::collections::BTreeSet::new();
    // A span is top-level when its Begin arrives with no span still open
    // on the same thread.
    let mut depth: std::collections::BTreeMap<u64, usize> = std::collections::BTreeMap::new();
    let mut top_level = std::collections::BTreeSet::new();
    for (k, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("'{path}': event {k} has no 'ph' string"))?;
        let tid = ev.get("tid").and_then(Value::as_f64).unwrap_or(0.0) as u64;
        match ph {
            "B" => {
                begins += 1;
                tids.insert(tid);
                let d = depth.entry(tid).or_insert(0);
                if *d == 0 {
                    if let Some(name) = ev.get("name").and_then(Value::as_str) {
                        top_level.insert(name.to_string());
                    }
                }
                *d += 1;
            }
            "E" => {
                ends += 1;
                let d = depth.entry(tid).or_insert(0);
                *d = d.saturating_sub(1);
            }
            "C" => counters += 1,
            "M" => metas += 1,
            other => return Err(format!("'{path}': event {k} has unknown phase '{other}'")),
        }
    }
    if begins != ends {
        return Err(format!(
            "'{path}': unbalanced spans ({begins} begin vs {ends} end events)"
        ));
    }
    println!(
        "{path}: ok — {} event(s): {} span(s) on {} thread(s), {} counter(s), {} metadata",
        events.len(),
        begins,
        tids.len(),
        counters,
        metas
    );
    if !top_level.is_empty() {
        let names: Vec<&str> = top_level.iter().map(String::as_str).collect();
        println!("top-level spans: {}", names.join(", "));
    }
    Ok(ExitCode::SUCCESS)
}

/// `gabm help <command>`.
fn run_help(argv: &[String]) -> ExitCode {
    match argv.first().map(String::as_str) {
        None => {
            print!("{TOP_USAGE}");
            ExitCode::SUCCESS
        }
        Some("lint") => {
            print!("{LINT_USAGE}");
            ExitCode::SUCCESS
        }
        Some("compile") => {
            print!("{COMPILE_USAGE}");
            ExitCode::SUCCESS
        }
        Some("trace") => {
            print!("{TRACE_USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown command '{other}'\n{TOP_USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Removes `--threads <n>` from `argv` (shared parser, so `gabm` and
/// `harness` name the flag identically in errors) and falls back to a
/// validated `GABM_THREADS`.
fn take_threads_flag(argv: &mut Vec<String>) -> Result<Option<usize>, String> {
    match gabm::trace::cli::take_threads_flag(argv)? {
        Some(n) => Ok(Some(n)),
        None => gabm::par::env_threads(),
    }
}

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let trace_cfg = match gabm::trace::cli::take_trace_flags(&mut argv) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("error: {msg}\n{TOP_USAGE}");
            return ExitCode::from(2);
        }
    };
    match take_threads_flag(&mut argv) {
        Ok(Some(n)) => {
            gabm::par::set_global_threads(n);
        }
        Ok(None) => {}
        Err(msg) => {
            eprintln!("error: {msg}\n{TOP_USAGE}");
            return ExitCode::from(2);
        }
    }
    gabm::trace::cli::maybe_enable(&trace_cfg);
    let code = dispatch(&argv);
    if let Err(msg) = gabm::trace::cli::finalize(&trace_cfg) {
        eprintln!("error: {msg}");
        return ExitCode::from(2);
    }
    code
}

fn dispatch(argv: &[String]) -> ExitCode {
    match argv.first().map(String::as_str) {
        Some("lint") => match run_lint(&argv[1..]) {
            Ok(code) => code,
            Err(msg) => {
                eprintln!("error: {msg}\n{LINT_USAGE}");
                ExitCode::from(2)
            }
        },
        Some("compile") => match run_compile(&argv[1..]) {
            Ok(code) => code,
            Err(msg) => {
                eprintln!("error: {msg}\n{COMPILE_USAGE}");
                ExitCode::from(2)
            }
        },
        Some("trace") => match run_trace(&argv[1..]) {
            Ok(code) => code,
            Err(msg) => {
                eprintln!("error: {msg}\n{TRACE_USAGE}");
                ExitCode::from(2)
            }
        },
        Some("--version") | Some("-V") => {
            println!("gabm {}", env!("CARGO_PKG_VERSION"));
            ExitCode::SUCCESS
        }
        Some("--help") | Some("-h") => {
            print!("{TOP_USAGE}");
            ExitCode::SUCCESS
        }
        Some("help") => run_help(&argv[1..]),
        Some(other) if other.starts_with('-') => {
            eprintln!("error: unknown flag '{other}'\n{TOP_USAGE}");
            ExitCode::from(2)
        }
        Some(other) => {
            eprintln!("error: unknown command '{other}'\n{TOP_USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprint!("{TOP_USAGE}");
            ExitCode::from(2)
        }
    }
}
