//! `gabm` — command-line front end for the GABM toolchain.
//!
//! Currently exposes the static analyser:
//!
//! ```text
//! gabm lint <file.fas | file.json> [--format text|json] [--deny-warnings]
//! gabm lint --construct <input-stage|output-stage|power-supply|slew-rate>
//! gabm lint --list-passes
//! ```
//!
//! `.fas` files are parsed and linted as FAS source; `.json` files are
//! deserialized as functional diagrams and linted end to end (diagram
//! rules, then — when error-free — dataflow over the lowered IR).
//!
//! Exit status: `0` clean, `1` diagnostics found (errors always count;
//! warnings only under `--deny-warnings`), `2` usage or I/O failure.

use gabm::core::constructs::{InputStageSpec, OutputStageSpec, PowerSupplySpec, SlewRateSpec};
use gabm::core::json::from_str;
use gabm::lint::{lint_diagram, lint_fas_source, passes, render_json, render_text};
use gabm::lint::{Diagnostic, Severity};
use std::process::ExitCode;

const USAGE: &str = "\
usage: gabm lint <file.fas | file.json> [options]
       gabm lint --construct <name> [options]
       gabm lint --list-passes

options:
  --construct <name>   lint a built-in paper construct instead of a file
                       (input-stage, output-stage, power-supply, slew-rate)
  --format <fmt>       output format: text (default) or json
  --deny-warnings      exit non-zero on warnings, not only on errors
  --list-passes        list every registered pass and exit
";

enum Format {
    Text,
    Json,
}

struct LintArgs {
    input: Option<String>,
    construct: Option<String>,
    format: Format,
    deny_warnings: bool,
    list_passes: bool,
}

fn parse_lint_args(args: &[String]) -> Result<LintArgs, String> {
    let mut out = LintArgs {
        input: None,
        construct: None,
        format: Format::Text,
        deny_warnings: false,
        list_passes: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--construct" => {
                let name = it.next().ok_or("--construct requires a name")?;
                out.construct = Some(name.clone());
            }
            "--format" => {
                let fmt = it.next().ok_or("--format requires 'text' or 'json'")?;
                out.format = match fmt.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format '{other}'")),
                };
            }
            "--deny-warnings" => out.deny_warnings = true,
            "--list-passes" => out.list_passes = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown option '{other}'"));
            }
            other => {
                if out.input.is_some() {
                    return Err("more than one input file".to_string());
                }
                out.input = Some(other.to_string());
            }
        }
    }
    Ok(out)
}

/// Builds the requested §3.3 construct with its documented example values.
fn construct_diagram(name: &str) -> Result<gabm::core::FunctionalDiagram, String> {
    let d = match name {
        "input-stage" => InputStageSpec::new("in", 1.0e-6, 5.0e-12).diagram(),
        "output-stage" => OutputStageSpec::new("out", 1.0e-3).diagram(),
        "power-supply" => PowerSupplySpec::new("vdd", "vss", 1.0e-5, 1.0e-6, 2).diagram(),
        "slew-rate" => SlewRateSpec::new(2.0e6, 2.0e6).diagram(),
        other => {
            return Err(format!(
                "unknown construct '{other}' (expected input-stage, output-stage, power-supply or slew-rate)"
            ))
        }
    };
    d.map_err(|e| format!("failed to build construct '{name}': {e}"))
}

fn lint_input(args: &LintArgs) -> Result<Vec<Diagnostic>, String> {
    if let Some(name) = &args.construct {
        return Ok(lint_diagram(&construct_diagram(name)?));
    }
    let Some(path) = &args.input else {
        return Err("no input file (or --construct) given".to_string());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    if path.ends_with(".json") {
        let diagram: gabm::core::FunctionalDiagram =
            from_str(&text).map_err(|e| format!("'{path}' is not a diagram: {e}"))?;
        Ok(lint_diagram(&diagram))
    } else {
        // Default: treat as FAS source (§4.2 textual models).
        lint_fas_source(&text).map_err(|e| format!("'{path}': {e}"))
    }
}

fn run_lint(args: &[String]) -> Result<ExitCode, String> {
    let args = parse_lint_args(args)?;
    if args.list_passes {
        for (layer, name) in passes() {
            println!("{layer}: {name}");
        }
        return Ok(ExitCode::SUCCESS);
    }
    let diags = lint_input(&args)?;
    match args.format {
        Format::Text => print!("{}", render_text(&diags)),
        Format::Json => println!("{}", render_json(&diags)),
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    let fail = errors > 0 || (args.deny_warnings && warnings > 0);
    Ok(if fail {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("lint") => match run_lint(&argv[1..]) {
            Ok(code) => code,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::from(2)
            }
        },
        Some("--help") | Some("-h") | Some("help") => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown command '{other}'\n{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
