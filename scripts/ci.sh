#!/usr/bin/env sh
# Repository CI gate: formatting, lints, build, tests.
#
# Usage: scripts/ci.sh
# Works fully offline; every dependency is in-tree.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test --workspace"
cargo test --workspace --quiet

# Drive the fixer end to end over every FAS fixture and every built-in
# construct: exit 2 means a usage/IO failure or a panic, and unparseable
# JSON output means the machine interface regressed. Exit 1 (diagnostics
# remain after fixing) is expected for fixtures with unfixable errors.
echo "==> gabm lint --fix --dry-run smoke"
GABM=target/release/gabm
for f in tests/fixtures/*.fas; do
    out=$("$GABM" lint "$f" --fix --dry-run --no-cache --format json) || status=$?
    status=${status:-0}
    if [ "$status" -ge 2 ]; then
        echo "FAIL: gabm lint --fix --dry-run $f exited $status" >&2
        exit 1
    fi
    case "$out" in
        '{'*'"fix"'*) ;;
        *) echo "FAIL: unparseable --fix output for $f: $out" >&2; exit 1 ;;
    esac
    status=0
done
for c in input-stage output-stage power-supply slew-rate; do
    out=$("$GABM" lint --construct "$c" --fix --dry-run --no-cache --format json) || {
        echo "FAIL: gabm lint --fix --dry-run --construct $c failed" >&2
        exit 1
    }
    case "$out" in
        '{'*'"fix"'*) ;;
        *) echo "FAIL: unparseable --fix output for construct $c: $out" >&2; exit 1 ;;
    esac
done

# Bytecode VM gate: the differential suite holds the VM to ulp-scale
# agreement with the interpreter, and the disasm golden pins the listing
# format that `gabm compile --disasm` promises.
echo "==> fasvm differential suite + disasm golden"
cargo test -q -p gabm-fasvm --test differential --test disasm_golden

# Perf row: interpreter vs VM vs CMOS on the comparator transient.
# The harness asserts the backends agree and writes BENCH_fasvm.json;
# check the speedup field made it to disk.
echo "==> harness fasvm (BENCH_fasvm.json)"
target/release/harness fasvm
case "$(cat BENCH_fasvm.json)" in
    *'"speedup_vm_over_interp"'*) ;;
    *) echo "FAIL: BENCH_fasvm.json missing speedup field" >&2; exit 1 ;;
esac

# Parallel characterization gate: the Monte-Carlo distribution fingerprint
# must be bitwise identical whatever GABM_THREADS says (the harness also
# asserts this in-process across pools of 1/2/4/8 workers, and asserts the
# LU-reuse run retraces the full-factorization Newton trajectory).
echo "==> harness parchar (BENCH_parchar.json)"
rm -f BENCH_parchar.json
dist1=$(GABM_THREADS=1 target/release/harness parchar | grep '^PARCHAR-DIST')
dist4=$(GABM_THREADS=4 target/release/harness parchar | grep '^PARCHAR-DIST')
if [ "$dist1" != "$dist4" ]; then
    echo "FAIL: Monte-Carlo distribution depends on GABM_THREADS:" >&2
    echo "  GABM_THREADS=1: $dist1" >&2
    echo "  GABM_THREADS=4: $dist4" >&2
    exit 1
fi
if [ ! -f BENCH_parchar.json ]; then
    echo "FAIL: BENCH_parchar.json not regenerated" >&2
    exit 1
fi
case "$(cat BENCH_parchar.json)" in
    *'"speedup_lu_reuse"'*) ;;
    *) echo "FAIL: BENCH_parchar.json missing speedup_lu_reuse" >&2; exit 1 ;;
esac

# Tracing gate: the disabled-probe overhead on the comparator transient
# must stay within 2% (asserted in-process by the harness — a violation
# aborts the run), and the traced phase must produce a valid Chrome
# trace covering all four instrumented layers.
echo "==> harness traceov (BENCH_traceov.json + TRACE_traceov.json)"
rm -f BENCH_traceov.json TRACE_traceov.json
target/release/harness traceov
case "$(cat BENCH_traceov.json)" in
    *'"overhead_disabled_pct"'*) ;;
    *) echo "FAIL: BENCH_traceov.json missing overhead_disabled_pct" >&2; exit 1 ;;
esac
trace_report=$("$GABM" trace TRACE_traceov.json) || {
    echo "FAIL: gabm trace rejected TRACE_traceov.json" >&2
    exit 1
}
for root in sim.tran fasvm.compile charac.monte_carlo par.job; do
    case "$trace_report" in
        *"$root"*) ;;
        *) echo "FAIL: trace is missing the $root root: $trace_report" >&2; exit 1 ;;
    esac
done

# A traced end-to-end run through the gabm CLI round-trips its own
# validator (the --trace plumbing is shared with the harness).
echo "==> gabm --trace smoke"
rm -f TRACE_lint.json
"$GABM" lint --construct slew-rate --no-cache --trace TRACE_lint.json
"$GABM" trace TRACE_lint.json > /dev/null
rm -f TRACE_lint.json

echo "CI OK"
