#!/usr/bin/env sh
# Repository CI gate: formatting, lints, build, tests.
#
# Usage: scripts/ci.sh
# Works fully offline; every dependency is in-tree.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "CI OK"
