//! Serialization round-trips: model libraries (card + diagram + parameter
//! sets) must survive persistence — the paper's design libraries "are
//! integrated in some surrounding development environment", which implies
//! storing and reloading them. Serialization uses the crate's own JSON
//! module (`gabm_core::json`) so the workspace builds with no network.

use gabm_core::card::DefinitionCard;
use gabm_core::check::check_diagram;
use gabm_core::constructs::{InputStageSpec, OutputStageSpec, SlewRateSpec};
use gabm_core::diagram::FunctionalDiagram;
use gabm_core::json;
use gabm_core::library::{ModelEntry, ModelLibrary, ParameterSet};
use std::collections::BTreeMap;

#[test]
fn diagram_roundtrip_preserves_connectivity() {
    let d = InputStageSpec::new("in", 1e-6, 5e-12).diagram().unwrap();
    let text = json::to_string(&d);
    let d2: FunctionalDiagram = json::from_str(&text).unwrap();
    assert_eq!(d, d2);
    // The derived port→net index must be rebuilt: net lookups still work.
    let probe_out = d2.port(gabm_core::diagram::SymbolId(2), "out").unwrap();
    assert!(d2.net_of(probe_out).is_some());
    // And the deserialized diagram still checks clean.
    assert!(check_diagram(&d2).is_consistent());
}

#[test]
fn roundtripped_diagram_generates_identical_code() {
    for diagram in [
        InputStageSpec::new("in", 1e-6, 5e-12).diagram().unwrap(),
        OutputStageSpec::new("out", 1e-3)
            .with_current_limit(1e-2)
            .diagram()
            .unwrap(),
        SlewRateSpec::new(1e6, 2e6).diagram().unwrap(),
    ] {
        let text = json::to_string(&diagram);
        let restored: FunctionalDiagram = json::from_str(&text).unwrap();
        let a = gabm_codegen::generate(&diagram, gabm_codegen::Backend::Fas);
        let b = gabm_codegen::generate(&restored, gabm_codegen::Backend::Fas);
        match (a, b) {
            (Ok(a), Ok(b)) => assert_eq!(a.text, b.text),
            (Err(_), Err(_)) => {} // open fragments fail identically
            other => panic!("asymmetric result: {other:?}"),
        }
    }
}

#[test]
fn card_roundtrip() {
    let spec = InputStageSpec::new("in", 1e-6, 5e-12);
    let card = spec.card().unwrap();
    let text = json::to_string_pretty(&card);
    let card2: DefinitionCard = json::from_str(&text).unwrap();
    assert_eq!(card, card2);
    assert!(card2.matches_diagram(&spec.diagram().unwrap()).is_ok());
}

#[test]
fn hierarchical_symbol_roundtrips() {
    // A diagram embedded as a hierarchical GBS survives nesting.
    use gabm_core::symbol::SymbolKind;
    let inner = SlewRateSpec::new(1e6, 2e6).diagram().unwrap();
    let mut outer = FunctionalDiagram::new("wrapper");
    outer.add_symbol(SymbolKind::Hierarchical {
        name: "slew".into(),
        diagram: Box::new(inner),
    });
    let text = json::to_string(&outer);
    let back: FunctionalDiagram = json::from_str(&text).unwrap();
    assert_eq!(outer, back);
}

#[test]
fn library_roundtrip_with_parameter_sets() {
    let spec = InputStageSpec::new("in", 1e-6, 5e-12);
    let mut entry = ModelEntry::new(spec.card().unwrap(), spec.diagram().unwrap()).unwrap();
    let mut values = BTreeMap::new();
    values.insert("gin".to_string(), 2e-6);
    entry
        .add_parameter_set(ParameterSet {
            name: "cmos_a".into(),
            values,
            provenance: "laboratory measurement".into(),
        })
        .unwrap();
    let mut lib = ModelLibrary::new();
    lib.add(entry).unwrap();

    let text = json::to_string(&lib);
    let lib2: ModelLibrary = json::from_str(&text).unwrap();
    assert_eq!(lib, lib2);
    let resolved = lib2
        .find("input_stage_in")
        .unwrap()
        .resolved_parameters("cmos_a")
        .unwrap();
    assert_eq!(resolved["gin"], 2e-6);
    assert_eq!(resolved["cin"], 5e-12);
}
