//! Diagnostic infrastructure shared by every static-analysis layer.
//!
//! The paper's consistency test (§3.2) and ordering rules (§4.1) report
//! findings; so do the dataflow lints over the lowered IR and FAS source in
//! `gabm-lint`. All of them speak the same vocabulary defined here: a
//! stable [`Code`], a [`Severity`], a [`Location`] naming the offending
//! symbol, net, or source span, and optional explanatory notes (the
//! dimension-inference chain, the full cycle path of an algebraic loop).

use crate::diagram::{NetId, SymbolId};
use crate::json::{schema, JsonError, Value};
use std::fmt;

/// Stable diagnostic codes. The numeric ranges partition by analysis
/// layer: `GABM0xx` with xx < 20 are diagram-level (§3.2/§4.1), 02x are
/// lowered-IR dataflow lints, 03x are FAS source lints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Code {
    /// GABM001 — a net is driven by more than one output port.
    MultipleDrivers,
    /// GABM002 — a consumed net is bound to no output port.
    UndrivenNet,
    /// GABM003 — an input port is unconnected.
    UnconnectedInput,
    /// GABM004 — an output port is unconnected.
    UnconnectedOutput,
    /// GABM005 — a symbol is not connected at all.
    DisconnectedSymbol,
    /// GABM006 — a required property is missing.
    MissingProperty,
    /// GABM007 — a net mixes incompatible physical quantities.
    DimensionConflict,
    /// GABM008 — an algebraic loop (combinational cycle) was found.
    AlgebraicLoop,
    /// GABM009 — a symbol's outputs never reach a generator or the
    /// diagram interface (dead code in the diagram).
    DeadSymbol,
    /// GABM010 — a declared parameter is referenced nowhere.
    UnusedParameter,
    /// GABM011 — a limiter's lower bound exceeds its upper bound.
    DegenerateLimiter,
    /// GABM012 — a function input carries a physical dimension.
    DimensionedFunctionInput,
    /// GABM020 — an IR statement reads a variable before any statement
    /// defines it.
    IrUseBeforeDef,
    /// GABM021 — an IR assignment whose target is never read or imposed.
    IrDeadAssignment,
    /// GABM022 — constant folding found a division by zero or a domain
    /// error in the lowered code.
    IrConstFoldError,
    /// GABM030 — a FAS variable is used before its `make` definition.
    FasUseBeforeDef,
    /// GABM031 — a FAS variable is assigned but never used.
    FasUnusedVariable,
    /// GABM032 — a FAS conditional branch can never execute.
    FasDeadBranch,
    /// GABM033 — a FAS expression divides by a constant zero.
    FasDivisionByZero,
    /// GABM034 — a FAS intrinsic is called with a constant argument
    /// outside its domain.
    FasDomainError,
    /// GABM035 — `limit(x, lo, hi)` with constant `lo > hi`.
    FasDegenerateLimit,
}

impl Code {
    /// The stable code string, e.g. `"GABM001"`.
    pub fn as_str(&self) -> &'static str {
        match self {
            Code::MultipleDrivers => "GABM001",
            Code::UndrivenNet => "GABM002",
            Code::UnconnectedInput => "GABM003",
            Code::UnconnectedOutput => "GABM004",
            Code::DisconnectedSymbol => "GABM005",
            Code::MissingProperty => "GABM006",
            Code::DimensionConflict => "GABM007",
            Code::AlgebraicLoop => "GABM008",
            Code::DeadSymbol => "GABM009",
            Code::UnusedParameter => "GABM010",
            Code::DegenerateLimiter => "GABM011",
            Code::DimensionedFunctionInput => "GABM012",
            Code::IrUseBeforeDef => "GABM020",
            Code::IrDeadAssignment => "GABM021",
            Code::IrConstFoldError => "GABM022",
            Code::FasUseBeforeDef => "GABM030",
            Code::FasUnusedVariable => "GABM031",
            Code::FasDeadBranch => "GABM032",
            Code::FasDivisionByZero => "GABM033",
            Code::FasDomainError => "GABM034",
            Code::FasDegenerateLimit => "GABM035",
        }
    }

    /// Default severity of findings with this code.
    pub fn default_severity(&self) -> Severity {
        match self {
            Code::UnconnectedOutput
            | Code::DisconnectedSymbol
            | Code::DeadSymbol
            | Code::UnusedParameter
            | Code::IrDeadAssignment
            | Code::FasUnusedVariable
            | Code::FasDeadBranch => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// Parses a stable code string (`"GABM001"`…) back into a [`Code`].
    pub fn parse(s: &str) -> Option<Code> {
        Code::ALL.iter().copied().find(|c| c.as_str() == s)
    }

    /// Whether `gabm lint --fix` can attach a machine-applicable [`Fix`]
    /// to findings with this code (for at least some shapes of the
    /// finding; e.g. GABM022 is fixable for degenerate `limit` bounds but
    /// not for a division by zero).
    pub fn has_autofix(&self) -> bool {
        matches!(
            self,
            Code::UnconnectedOutput
                | Code::DisconnectedSymbol
                | Code::DeadSymbol
                | Code::UnusedParameter
                | Code::DegenerateLimiter
                | Code::IrDeadAssignment
                | Code::IrConstFoldError
                | Code::FasUnusedVariable
                | Code::FasDeadBranch
                | Code::FasDegenerateLimit
        )
    }

    /// Every code, in numeric order.
    pub const ALL: &'static [Code] = &[
        Code::MultipleDrivers,
        Code::UndrivenNet,
        Code::UnconnectedInput,
        Code::UnconnectedOutput,
        Code::DisconnectedSymbol,
        Code::MissingProperty,
        Code::DimensionConflict,
        Code::AlgebraicLoop,
        Code::DeadSymbol,
        Code::UnusedParameter,
        Code::DegenerateLimiter,
        Code::DimensionedFunctionInput,
        Code::IrUseBeforeDef,
        Code::IrDeadAssignment,
        Code::IrConstFoldError,
        Code::FasUseBeforeDef,
        Code::FasUnusedVariable,
        Code::FasDeadBranch,
        Code::FasDivisionByZero,
        Code::FasDomainError,
        Code::FasDegenerateLimit,
    ];

    /// One-line summary of what the code means.
    pub fn summary(&self) -> &'static str {
        match self {
            Code::MultipleDrivers => "net driven by more than one output port",
            Code::UndrivenNet => "consumed net bound to no output port",
            Code::UnconnectedInput => "unconnected input port",
            Code::UnconnectedOutput => "unconnected output port",
            Code::DisconnectedSymbol => "symbol not connected at all",
            Code::MissingProperty => "required property missing",
            Code::DimensionConflict => "incompatible physical quantities on one net",
            Code::AlgebraicLoop => "combinational cycle not broken by a delay",
            Code::DeadSymbol => "symbol output reaches no generator or interface",
            Code::UnusedParameter => "declared parameter never referenced",
            Code::DegenerateLimiter => "limiter lower bound exceeds upper bound",
            Code::DimensionedFunctionInput => "function input must be dimensionless",
            Code::IrUseBeforeDef => "IR variable read before definition",
            Code::IrDeadAssignment => "IR assignment never read",
            Code::IrConstFoldError => "constant folding found an arithmetic error",
            Code::FasUseBeforeDef => "variable used before its make definition",
            Code::FasUnusedVariable => "variable assigned but never used",
            Code::FasDeadBranch => "conditional branch can never execute",
            Code::FasDivisionByZero => "division by constant zero",
            Code::FasDomainError => "intrinsic called outside its domain",
            Code::FasDegenerateLimit => "limit() with constant lo > hi",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Severity of a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Severity {
    /// The artifact cannot be code-generated / executed.
    Error,
    /// Suspicious but tolerated.
    Warning,
    /// Purely advisory; never affects exit codes, even under
    /// `--deny-warnings`.
    Note,
}

impl Severity {
    /// Parses the rendered form (`"error"` / `"warning"` / `"note"`).
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "error" => Some(Severity::Error),
            "warning" => Some(Severity::Warning),
            "note" => Some(Severity::Note),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => f.write_str("error"),
            Severity::Warning => f.write_str("warning"),
            Severity::Note => f.write_str("note"),
        }
    }
}

/// Where a finding is anchored.
#[derive(Debug, Clone, PartialEq)]
pub enum Location {
    /// No specific location.
    None,
    /// A diagram symbol.
    Symbol(SymbolId),
    /// A diagram net.
    Net(NetId),
    /// A port of a diagram symbol.
    Port {
        /// Owning symbol.
        symbol: SymbolId,
        /// Port name.
        port: String,
    },
    /// A lowered-IR statement (index into `CodeIr::statements`).
    Statement(usize),
    /// A source position (1-based line and column).
    Source {
        /// Line number.
        line: usize,
        /// Column number.
        col: usize,
    },
}

impl Location {
    /// Decodes the JSON form emitted for diagnostics (see
    /// [`Diagnostic::to_json`]): `null` for no location, otherwise an
    /// object keyed by the variant's fields.
    pub fn from_json(value: &Value) -> Result<Self, JsonError> {
        if matches!(value, Value::Null) {
            return Ok(Location::None);
        }
        if let Some(port) = value.get("port") {
            return Ok(Location::Port {
                symbol: SymbolId(value.usize_field("symbol")?),
                port: port.str()?.to_string(),
            });
        }
        if value.get("symbol").is_some() {
            return Ok(Location::Symbol(SymbolId(value.usize_field("symbol")?)));
        }
        if value.get("net").is_some() {
            return Ok(Location::Net(NetId(value.usize_field("net")?)));
        }
        if value.get("statement").is_some() {
            return Ok(Location::Statement(value.usize_field("statement")?));
        }
        if value.get("line").is_some() {
            return Ok(Location::Source {
                line: value.usize_field("line")?,
                col: value.usize_field("col")?,
            });
        }
        Err(schema("unrecognised diagnostic location"))
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::None => Ok(()),
            Location::Symbol(s) => write!(f, "symbol {}", s.0),
            Location::Net(n) => write!(f, "net {}", n.0),
            Location::Port { symbol, port } => write!(f, "port '{port}' of symbol {}", symbol.0),
            Location::Statement(i) => write!(f, "statement {i}"),
            Location::Source { line, col } => write!(f, "{line}:{col}"),
        }
    }
}

/// One primitive edit of a [`Fix`]. Text edits address FAS source by
/// byte span; the structured variants address diagrams and lowered IR,
/// which have no flat text form.
#[derive(Debug, Clone, PartialEq)]
pub enum FixEdit {
    /// Replace `source[start..end]` (byte offsets) with `text`. An empty
    /// `text` deletes the span.
    ReplaceText {
        /// Start byte offset (inclusive).
        start: usize,
        /// End byte offset (exclusive).
        end: usize,
        /// Replacement text.
        text: String,
    },
    /// Remove a diagram symbol and every net binding that references it.
    RemoveSymbol {
        /// The symbol to remove.
        symbol: SymbolId,
    },
    /// Swap the values of two properties on a diagram symbol.
    SwapProperties {
        /// The symbol holding the properties.
        symbol: SymbolId,
        /// First property name.
        first: String,
        /// Second property name.
        second: String,
    },
    /// Remove a diagram parameter declaration.
    RemoveParameter {
        /// Parameter name.
        name: String,
    },
    /// Remove a lowered-IR statement (index into `CodeIr::statements`).
    RemoveIrStatement {
        /// Statement index.
        index: usize,
    },
    /// Swap the `lo`/`hi` bounds of an IR `Limit` statement.
    SwapIrLimitBounds {
        /// Statement index.
        index: usize,
    },
}

/// A machine-applicable repair attached to a [`Diagnostic`]. All edits
/// of one fix are applied atomically or not at all; the applier rejects
/// fixes whose edits overlap edits already accepted in the same round.
#[derive(Debug, Clone, PartialEq)]
pub struct Fix {
    /// Human-readable description of what applying the fix does.
    pub label: String,
    /// The edits, in no particular order.
    pub edits: Vec<FixEdit>,
}

impl Fix {
    /// Builds a fix from a label and its edits.
    pub fn new(label: impl Into<String>, edits: Vec<FixEdit>) -> Self {
        Fix {
            label: label.into(),
            edits,
        }
    }

    /// Machine-readable form, nested under a diagnostic's `"fix"` key.
    pub fn to_json(&self) -> Value {
        Value::Object(vec![
            ("label".to_string(), Value::String(self.label.clone())),
            (
                "edits".to_string(),
                Value::Array(self.edits.iter().map(FixEdit::to_json).collect()),
            ),
        ])
    }

    /// Decodes the form produced by [`Fix::to_json`].
    pub fn from_json(value: &Value) -> Result<Self, JsonError> {
        Ok(Fix {
            label: value.req("label")?.str()?.to_string(),
            edits: value
                .req("edits")?
                .arr()?
                .iter()
                .map(FixEdit::from_json)
                .collect::<Result<_, JsonError>>()?,
        })
    }
}

impl FixEdit {
    /// Machine-readable form: an object with a single variant-name key.
    pub fn to_json(&self) -> Value {
        let tagged = |tag: &str, fields: Vec<(&str, Value)>| {
            Value::Object(vec![(tag.to_string(), Value::object(fields))])
        };
        match self {
            FixEdit::ReplaceText { start, end, text } => tagged(
                "ReplaceText",
                vec![
                    ("start", Value::Number(*start as f64)),
                    ("end", Value::Number(*end as f64)),
                    ("text", Value::String(text.clone())),
                ],
            ),
            FixEdit::RemoveSymbol { symbol } => tagged(
                "RemoveSymbol",
                vec![("symbol", Value::Number(symbol.0 as f64))],
            ),
            FixEdit::SwapProperties {
                symbol,
                first,
                second,
            } => tagged(
                "SwapProperties",
                vec![
                    ("symbol", Value::Number(symbol.0 as f64)),
                    ("first", Value::string(first)),
                    ("second", Value::string(second)),
                ],
            ),
            FixEdit::RemoveParameter { name } => {
                tagged("RemoveParameter", vec![("name", Value::string(name))])
            }
            FixEdit::RemoveIrStatement { index } => tagged(
                "RemoveIrStatement",
                vec![("index", Value::Number(*index as f64))],
            ),
            FixEdit::SwapIrLimitBounds { index } => tagged(
                "SwapIrLimitBounds",
                vec![("index", Value::Number(*index as f64))],
            ),
        }
    }

    /// Decodes the form produced by [`FixEdit::to_json`].
    pub fn from_json(value: &Value) -> Result<Self, JsonError> {
        if let Some(v) = value.get("ReplaceText") {
            return Ok(FixEdit::ReplaceText {
                start: v.usize_field("start")?,
                end: v.usize_field("end")?,
                text: v.req("text")?.str()?.to_string(),
            });
        }
        if let Some(v) = value.get("RemoveSymbol") {
            return Ok(FixEdit::RemoveSymbol {
                symbol: SymbolId(v.usize_field("symbol")?),
            });
        }
        if let Some(v) = value.get("SwapProperties") {
            return Ok(FixEdit::SwapProperties {
                symbol: SymbolId(v.usize_field("symbol")?),
                first: v.req("first")?.str()?.to_string(),
                second: v.req("second")?.str()?.to_string(),
            });
        }
        if let Some(v) = value.get("RemoveParameter") {
            return Ok(FixEdit::RemoveParameter {
                name: v.req("name")?.str()?.to_string(),
            });
        }
        if let Some(v) = value.get("RemoveIrStatement") {
            return Ok(FixEdit::RemoveIrStatement {
                index: v.usize_field("index")?,
            });
        }
        if let Some(v) = value.get("SwapIrLimitBounds") {
            return Ok(FixEdit::SwapIrLimitBounds {
                index: v.usize_field("index")?,
            });
        }
        Err(schema("unrecognised fix edit"))
    }
}

/// One finding of an analysis pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Error or warning.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
    /// Anchor.
    pub location: Location,
    /// Explanatory notes (inference chains, cycle paths, …).
    pub notes: Vec<String>,
    /// Actionable suggestions (candidate connections, renames, …) —
    /// advisory only, never machine-applied; rendered as `help:` lines.
    pub help: Vec<String>,
    /// Machine-applicable repair, when a safe one exists.
    pub fix: Option<Fix>,
}

impl Diagnostic {
    /// Builds a diagnostic with the code's default severity and no notes.
    pub fn new(code: Code, message: impl Into<String>, location: Location) -> Self {
        Diagnostic {
            code,
            severity: code.default_severity(),
            message: message.into(),
            location,
            notes: Vec::new(),
            help: Vec::new(),
            fix: None,
        }
    }

    /// Appends an explanatory note.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Appends an actionable (but not machine-applicable) suggestion.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help.push(help.into());
        self
    }

    /// Attaches a machine-applicable fix.
    pub fn with_fix(mut self, fix: Fix) -> Self {
        self.fix = Some(fix);
        self
    }

    /// Offending symbol, when the location names one.
    pub fn symbol(&self) -> Option<SymbolId> {
        match &self.location {
            Location::Symbol(s) | Location::Port { symbol: s, .. } => Some(*s),
            _ => None,
        }
    }

    /// Offending net, when the location names one.
    pub fn net(&self) -> Option<NetId> {
        match &self.location {
            Location::Net(n) => Some(*n),
            _ => None,
        }
    }

    /// Machine-readable form, used by `gabm lint --format json`.
    pub fn to_json(&self) -> Value {
        let mut obj = vec![
            ("code".to_string(), Value::String(self.code.as_str().into())),
            (
                "severity".to_string(),
                Value::String(self.severity.to_string()),
            ),
            ("message".to_string(), Value::String(self.message.clone())),
            ("location".to_string(), self.location_json()),
        ];
        if !self.notes.is_empty() {
            obj.push((
                "notes".to_string(),
                Value::Array(self.notes.iter().cloned().map(Value::String).collect()),
            ));
        }
        if !self.help.is_empty() {
            obj.push((
                "help".to_string(),
                Value::Array(self.help.iter().cloned().map(Value::String).collect()),
            ));
        }
        if let Some(fix) = &self.fix {
            obj.push(("fix".to_string(), fix.to_json()));
        }
        Value::Object(obj)
    }

    /// Decodes the form produced by [`Diagnostic::to_json`]. Used by the
    /// incremental re-lint cache to replay stored pass results.
    ///
    /// # Errors
    ///
    /// [`JsonError::Schema`] on unknown codes/severities or malformed
    /// locations, fixes, or notes.
    pub fn from_json(value: &Value) -> Result<Self, JsonError> {
        let code_str = value.req("code")?.str()?;
        let code =
            Code::parse(code_str).ok_or_else(|| schema(format!("unknown code '{code_str}'")))?;
        let sev_str = value.req("severity")?.str()?;
        let severity = Severity::parse(sev_str)
            .ok_or_else(|| schema(format!("unknown severity '{sev_str}'")))?;
        let message = value.req("message")?.str()?.to_string();
        let location = Location::from_json(value.req("location")?)?;
        let strings = |v: &Value| -> Result<Vec<String>, JsonError> {
            v.arr()?.iter().map(|n| Ok(n.str()?.to_string())).collect()
        };
        let notes = match value.get("notes") {
            None => Vec::new(),
            Some(v) => strings(v)?,
        };
        let help = match value.get("help") {
            None => Vec::new(),
            Some(v) => strings(v)?,
        };
        let fix = match value.get("fix") {
            None => None,
            Some(v) => Some(Fix::from_json(v)?),
        };
        Ok(Diagnostic {
            code,
            severity,
            message,
            location,
            notes,
            help,
            fix,
        })
    }

    fn location_json(&self) -> Value {
        match &self.location {
            Location::None => Value::Null,
            Location::Symbol(s) => {
                Value::Object(vec![("symbol".to_string(), Value::Number(s.0 as f64))])
            }
            Location::Net(n) => Value::Object(vec![("net".to_string(), Value::Number(n.0 as f64))]),
            Location::Port { symbol, port } => Value::Object(vec![
                ("symbol".to_string(), Value::Number(symbol.0 as f64)),
                ("port".to_string(), Value::String(port.clone())),
            ]),
            Location::Statement(i) => {
                Value::Object(vec![("statement".to_string(), Value::Number(*i as f64))])
            }
            Location::Source { line, col } => Value::Object(vec![
                ("line".to_string(), Value::Number(*line as f64)),
                ("col".to_string(), Value::Number(*col as f64)),
            ]),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if self.location != Location::None {
            write!(f, "\n  --> {}", self.location)?;
        }
        for note in &self.notes {
            write!(f, "\n  note: {note}")?;
        }
        for help in &self.help {
            write!(f, "\n  help: {help}")?;
        }
        if let Some(fix) = &self.fix {
            write!(f, "\n  fix: {}", fix.label)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let all = Code::ALL;
        let mut strs: Vec<&str> = all.iter().map(Code::as_str).collect();
        strs.sort_unstable();
        strs.dedup();
        assert_eq!(strs.len(), all.len(), "codes must be unique");
        for c in all {
            assert!(c.as_str().starts_with("GABM"));
            assert!(!c.summary().is_empty());
            assert_eq!(Code::parse(c.as_str()), Some(*c), "parse round-trip");
        }
        assert_eq!(Code::parse("GABM999"), None);
    }

    #[test]
    fn rendering_includes_code_location_and_notes() {
        let d = Diagnostic::new(
            Code::MultipleDrivers,
            "net 3 driven by 2 output ports",
            Location::Net(NetId(3)),
        )
        .with_note("first driver: symbol 1")
        .with_help("disconnect one of the drivers");
        let text = d.to_string();
        assert!(text.contains("error[GABM001]"));
        assert!(text.contains("net 3"));
        assert!(text.contains("note: first driver"));
        assert!(text.contains("help: disconnect one of the drivers"));
    }

    #[test]
    fn json_form_is_parseable() {
        let d = Diagnostic::new(
            Code::FasDivisionByZero,
            "division by zero",
            Location::Source { line: 4, col: 9 },
        );
        let v = d.to_json();
        let text = v.to_string();
        let back = Value::parse(&text).expect("valid JSON");
        assert_eq!(back.get("code").and_then(Value::as_str), Some("GABM033"));
        assert_eq!(
            back.get("location")
                .and_then(|l| l.get("line"))
                .and_then(Value::as_f64),
            Some(4.0)
        );
    }

    #[test]
    fn diagnostic_json_round_trips_including_fix() {
        let d = Diagnostic::new(
            Code::FasDegenerateLimit,
            "limit(b, 10, -10) has lo > hi",
            Location::Source { line: 4, col: 1 },
        )
        .with_note("constant bounds fold to 10 > -10")
        .with_help("write the smaller bound first: limit(b, -10, 10)")
        .with_fix(Fix::new(
            "swap the limit bounds",
            vec![
                FixEdit::ReplaceText {
                    start: 50,
                    end: 52,
                    text: "-10".into(),
                },
                FixEdit::ReplaceText {
                    start: 54,
                    end: 57,
                    text: "10".into(),
                },
            ],
        ));
        let text = d.to_json().to_string();
        let back = Diagnostic::from_json(&Value::parse(&text).expect("valid JSON")).expect("shape");
        assert_eq!(back, d);
    }

    #[test]
    fn all_locations_and_edits_round_trip() {
        let locations = [
            Location::None,
            Location::Symbol(SymbolId(2)),
            Location::Net(NetId(7)),
            Location::Port {
                symbol: SymbolId(1),
                port: "in".into(),
            },
            Location::Statement(5),
            Location::Source { line: 9, col: 3 },
        ];
        for loc in locations {
            let d = Diagnostic::new(Code::MultipleDrivers, "m", loc.clone());
            let back =
                Diagnostic::from_json(&Value::parse(&d.to_json().to_string()).unwrap()).unwrap();
            assert_eq!(back.location, loc);
        }
        let edits = [
            FixEdit::ReplaceText {
                start: 0,
                end: 4,
                text: "x".into(),
            },
            FixEdit::RemoveSymbol {
                symbol: SymbolId(3),
            },
            FixEdit::SwapProperties {
                symbol: SymbolId(1),
                first: "min".into(),
                second: "max".into(),
            },
            FixEdit::RemoveParameter { name: "tau".into() },
            FixEdit::RemoveIrStatement { index: 4 },
            FixEdit::SwapIrLimitBounds { index: 2 },
        ];
        for edit in edits {
            let v = Value::parse(&edit.to_json().to_string()).unwrap();
            assert_eq!(FixEdit::from_json(&v).unwrap(), edit);
        }
    }

    #[test]
    fn note_severity_renders_and_parses() {
        assert_eq!(Severity::Note.to_string(), "note");
        assert_eq!(Severity::parse("note"), Some(Severity::Note));
        assert_eq!(Severity::parse("fatal"), None);
    }

    #[test]
    fn autofix_availability_matches_fixer() {
        assert!(Code::FasDegenerateLimit.has_autofix());
        assert!(Code::DeadSymbol.has_autofix());
        assert!(!Code::AlgebraicLoop.has_autofix());
        assert!(!Code::FasUseBeforeDef.has_autofix());
    }
}
