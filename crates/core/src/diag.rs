//! Diagnostic infrastructure shared by every static-analysis layer.
//!
//! The paper's consistency test (§3.2) and ordering rules (§4.1) report
//! findings; so do the dataflow lints over the lowered IR and FAS source in
//! `gabm-lint`. All of them speak the same vocabulary defined here: a
//! stable [`Code`], a [`Severity`], a [`Location`] naming the offending
//! symbol, net, or source span, and optional explanatory notes (the
//! dimension-inference chain, the full cycle path of an algebraic loop).

use crate::diagram::{NetId, SymbolId};
use crate::json::Value;
use std::fmt;

/// Stable diagnostic codes. The numeric ranges partition by analysis
/// layer: `GABM0xx` with xx < 20 are diagram-level (§3.2/§4.1), 02x are
/// lowered-IR dataflow lints, 03x are FAS source lints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Code {
    /// GABM001 — a net is driven by more than one output port.
    MultipleDrivers,
    /// GABM002 — a consumed net is bound to no output port.
    UndrivenNet,
    /// GABM003 — an input port is unconnected.
    UnconnectedInput,
    /// GABM004 — an output port is unconnected.
    UnconnectedOutput,
    /// GABM005 — a symbol is not connected at all.
    DisconnectedSymbol,
    /// GABM006 — a required property is missing.
    MissingProperty,
    /// GABM007 — a net mixes incompatible physical quantities.
    DimensionConflict,
    /// GABM008 — an algebraic loop (combinational cycle) was found.
    AlgebraicLoop,
    /// GABM009 — a symbol's outputs never reach a generator or the
    /// diagram interface (dead code in the diagram).
    DeadSymbol,
    /// GABM010 — a declared parameter is referenced nowhere.
    UnusedParameter,
    /// GABM011 — a limiter's lower bound exceeds its upper bound.
    DegenerateLimiter,
    /// GABM012 — a function input carries a physical dimension.
    DimensionedFunctionInput,
    /// GABM020 — an IR statement reads a variable before any statement
    /// defines it.
    IrUseBeforeDef,
    /// GABM021 — an IR assignment whose target is never read or imposed.
    IrDeadAssignment,
    /// GABM022 — constant folding found a division by zero or a domain
    /// error in the lowered code.
    IrConstFoldError,
    /// GABM030 — a FAS variable is used before its `make` definition.
    FasUseBeforeDef,
    /// GABM031 — a FAS variable is assigned but never used.
    FasUnusedVariable,
    /// GABM032 — a FAS conditional branch can never execute.
    FasDeadBranch,
    /// GABM033 — a FAS expression divides by a constant zero.
    FasDivisionByZero,
    /// GABM034 — a FAS intrinsic is called with a constant argument
    /// outside its domain.
    FasDomainError,
    /// GABM035 — `limit(x, lo, hi)` with constant `lo > hi`.
    FasDegenerateLimit,
}

impl Code {
    /// The stable code string, e.g. `"GABM001"`.
    pub fn as_str(&self) -> &'static str {
        match self {
            Code::MultipleDrivers => "GABM001",
            Code::UndrivenNet => "GABM002",
            Code::UnconnectedInput => "GABM003",
            Code::UnconnectedOutput => "GABM004",
            Code::DisconnectedSymbol => "GABM005",
            Code::MissingProperty => "GABM006",
            Code::DimensionConflict => "GABM007",
            Code::AlgebraicLoop => "GABM008",
            Code::DeadSymbol => "GABM009",
            Code::UnusedParameter => "GABM010",
            Code::DegenerateLimiter => "GABM011",
            Code::DimensionedFunctionInput => "GABM012",
            Code::IrUseBeforeDef => "GABM020",
            Code::IrDeadAssignment => "GABM021",
            Code::IrConstFoldError => "GABM022",
            Code::FasUseBeforeDef => "GABM030",
            Code::FasUnusedVariable => "GABM031",
            Code::FasDeadBranch => "GABM032",
            Code::FasDivisionByZero => "GABM033",
            Code::FasDomainError => "GABM034",
            Code::FasDegenerateLimit => "GABM035",
        }
    }

    /// Default severity of findings with this code.
    pub fn default_severity(&self) -> Severity {
        match self {
            Code::UnconnectedOutput
            | Code::DisconnectedSymbol
            | Code::DeadSymbol
            | Code::UnusedParameter
            | Code::IrDeadAssignment
            | Code::FasUnusedVariable
            | Code::FasDeadBranch => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// One-line summary of what the code means.
    pub fn summary(&self) -> &'static str {
        match self {
            Code::MultipleDrivers => "net driven by more than one output port",
            Code::UndrivenNet => "consumed net bound to no output port",
            Code::UnconnectedInput => "unconnected input port",
            Code::UnconnectedOutput => "unconnected output port",
            Code::DisconnectedSymbol => "symbol not connected at all",
            Code::MissingProperty => "required property missing",
            Code::DimensionConflict => "incompatible physical quantities on one net",
            Code::AlgebraicLoop => "combinational cycle not broken by a delay",
            Code::DeadSymbol => "symbol output reaches no generator or interface",
            Code::UnusedParameter => "declared parameter never referenced",
            Code::DegenerateLimiter => "limiter lower bound exceeds upper bound",
            Code::DimensionedFunctionInput => "function input must be dimensionless",
            Code::IrUseBeforeDef => "IR variable read before definition",
            Code::IrDeadAssignment => "IR assignment never read",
            Code::IrConstFoldError => "constant folding found an arithmetic error",
            Code::FasUseBeforeDef => "variable used before its make definition",
            Code::FasUnusedVariable => "variable assigned but never used",
            Code::FasDeadBranch => "conditional branch can never execute",
            Code::FasDivisionByZero => "division by constant zero",
            Code::FasDomainError => "intrinsic called outside its domain",
            Code::FasDegenerateLimit => "limit() with constant lo > hi",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Severity of a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Severity {
    /// The artifact cannot be code-generated / executed.
    Error,
    /// Suspicious but tolerated.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => f.write_str("error"),
            Severity::Warning => f.write_str("warning"),
        }
    }
}

/// Where a finding is anchored.
#[derive(Debug, Clone, PartialEq)]
pub enum Location {
    /// No specific location.
    None,
    /// A diagram symbol.
    Symbol(SymbolId),
    /// A diagram net.
    Net(NetId),
    /// A port of a diagram symbol.
    Port {
        /// Owning symbol.
        symbol: SymbolId,
        /// Port name.
        port: String,
    },
    /// A lowered-IR statement (index into `CodeIr::statements`).
    Statement(usize),
    /// A source position (1-based line and column).
    Source {
        /// Line number.
        line: usize,
        /// Column number.
        col: usize,
    },
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::None => Ok(()),
            Location::Symbol(s) => write!(f, "symbol {}", s.0),
            Location::Net(n) => write!(f, "net {}", n.0),
            Location::Port { symbol, port } => write!(f, "port '{port}' of symbol {}", symbol.0),
            Location::Statement(i) => write!(f, "statement {i}"),
            Location::Source { line, col } => write!(f, "{line}:{col}"),
        }
    }
}

/// One finding of an analysis pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Error or warning.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
    /// Anchor.
    pub location: Location,
    /// Explanatory notes (inference chains, cycle paths, …).
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Builds a diagnostic with the code's default severity and no notes.
    pub fn new(code: Code, message: impl Into<String>, location: Location) -> Self {
        Diagnostic {
            code,
            severity: code.default_severity(),
            message: message.into(),
            location,
            notes: Vec::new(),
        }
    }

    /// Appends an explanatory note.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Offending symbol, when the location names one.
    pub fn symbol(&self) -> Option<SymbolId> {
        match &self.location {
            Location::Symbol(s) | Location::Port { symbol: s, .. } => Some(*s),
            _ => None,
        }
    }

    /// Offending net, when the location names one.
    pub fn net(&self) -> Option<NetId> {
        match &self.location {
            Location::Net(n) => Some(*n),
            _ => None,
        }
    }

    /// Machine-readable form, used by `gabm lint --format json`.
    pub fn to_json(&self) -> Value {
        let mut obj = vec![
            ("code".to_string(), Value::String(self.code.as_str().into())),
            (
                "severity".to_string(),
                Value::String(self.severity.to_string()),
            ),
            ("message".to_string(), Value::String(self.message.clone())),
            ("location".to_string(), self.location_json()),
        ];
        if !self.notes.is_empty() {
            obj.push((
                "notes".to_string(),
                Value::Array(self.notes.iter().cloned().map(Value::String).collect()),
            ));
        }
        Value::Object(obj)
    }

    fn location_json(&self) -> Value {
        match &self.location {
            Location::None => Value::Null,
            Location::Symbol(s) => {
                Value::Object(vec![("symbol".to_string(), Value::Number(s.0 as f64))])
            }
            Location::Net(n) => Value::Object(vec![("net".to_string(), Value::Number(n.0 as f64))]),
            Location::Port { symbol, port } => Value::Object(vec![
                ("symbol".to_string(), Value::Number(symbol.0 as f64)),
                ("port".to_string(), Value::String(port.clone())),
            ]),
            Location::Statement(i) => {
                Value::Object(vec![("statement".to_string(), Value::Number(*i as f64))])
            }
            Location::Source { line, col } => Value::Object(vec![
                ("line".to_string(), Value::Number(*line as f64)),
                ("col".to_string(), Value::Number(*col as f64)),
            ]),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if self.location != Location::None {
            write!(f, "\n  --> {}", self.location)?;
        }
        for note in &self.notes {
            write!(f, "\n  note: {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let all = [
            Code::MultipleDrivers,
            Code::UndrivenNet,
            Code::UnconnectedInput,
            Code::UnconnectedOutput,
            Code::DisconnectedSymbol,
            Code::MissingProperty,
            Code::DimensionConflict,
            Code::AlgebraicLoop,
            Code::DeadSymbol,
            Code::UnusedParameter,
            Code::DegenerateLimiter,
            Code::DimensionedFunctionInput,
            Code::IrUseBeforeDef,
            Code::IrDeadAssignment,
            Code::IrConstFoldError,
            Code::FasUseBeforeDef,
            Code::FasUnusedVariable,
            Code::FasDeadBranch,
            Code::FasDivisionByZero,
            Code::FasDomainError,
            Code::FasDegenerateLimit,
        ];
        let mut strs: Vec<&str> = all.iter().map(Code::as_str).collect();
        strs.sort_unstable();
        strs.dedup();
        assert_eq!(strs.len(), all.len(), "codes must be unique");
        for c in &all {
            assert!(c.as_str().starts_with("GABM"));
            assert!(!c.summary().is_empty());
        }
    }

    #[test]
    fn rendering_includes_code_location_and_notes() {
        let d = Diagnostic::new(
            Code::MultipleDrivers,
            "net 3 driven by 2 output ports",
            Location::Net(NetId(3)),
        )
        .with_note("first driver: symbol 1");
        let text = d.to_string();
        assert!(text.contains("error[GABM001]"));
        assert!(text.contains("net 3"));
        assert!(text.contains("note: first driver"));
    }

    #[test]
    fn json_form_is_parseable() {
        let d = Diagnostic::new(
            Code::FasDivisionByZero,
            "division by zero",
            Location::Source { line: 4, col: 9 },
        );
        let v = d.to_json();
        let text = v.to_string();
        let back = Value::parse(&text).expect("valid JSON");
        assert_eq!(back.get("code").and_then(Value::as_str), Some("GABM033"));
        assert_eq!(
            back.get("location")
                .and_then(|l| l.get("line"))
                .and_then(Value::as_f64),
            Some(4.0)
        );
    }
}
