//! Physical quantities: the "oil and water will not mix" rule.
//!
//! §3.2 of the paper: *"Internal variables may still carry information about
//! specific physical quantities, it is important, thus, to apply mathematical
//! operators on signals in a meaningful way."* Every net in a functional
//! diagram can carry a [`Dimension`] — a vector of SI base-unit exponents —
//! and the consistency check propagates and compares them.
//!
//! Using full SI base dimensions (rather than an electrical-only enum) is
//! what lets the same formalism model sensors and actuators: torque
//! (kg·m²·s⁻²) and angular velocity (s⁻¹) are first-class, as §3.1a's
//! "torque, angular velocity probes and generators" require.

use std::fmt;
use std::ops::{Div, Mul};

/// A physical dimension as SI base-unit exponents (m, kg, s, A, K).
///
/// # Example
///
/// ```
/// use gabm_core::quantity::Dimension;
///
/// let power = Dimension::VOLTAGE * Dimension::CURRENT;
/// assert_eq!(power, Dimension::POWER);
/// let current = Dimension::VOLTAGE * Dimension::CONDUCTANCE;
/// assert_eq!(current, Dimension::CURRENT);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Dimension {
    /// Metre exponent.
    pub m: i8,
    /// Kilogram exponent.
    pub kg: i8,
    /// Second exponent.
    pub s: i8,
    /// Ampere exponent.
    pub a: i8,
    /// Kelvin exponent.
    pub k: i8,
}

impl Dimension {
    /// Dimensionless (pure number).
    pub const NONE: Dimension = Dimension::new(0, 0, 0, 0, 0);
    /// Volt = kg·m²·s⁻³·A⁻¹.
    pub const VOLTAGE: Dimension = Dimension::new(2, 1, -3, -1, 0);
    /// Ampere.
    pub const CURRENT: Dimension = Dimension::new(0, 0, 0, 1, 0);
    /// Coulomb = A·s.
    pub const CHARGE: Dimension = Dimension::new(0, 0, 1, 1, 0);
    /// Second.
    pub const TIME: Dimension = Dimension::new(0, 0, 1, 0, 0);
    /// Hertz = s⁻¹.
    pub const FREQUENCY: Dimension = Dimension::new(0, 0, -1, 0, 0);
    /// Ohm = V/A.
    pub const RESISTANCE: Dimension = Dimension::new(2, 1, -3, -2, 0);
    /// Siemens = A/V.
    pub const CONDUCTANCE: Dimension = Dimension::new(-2, -1, 3, 2, 0);
    /// Farad = C/V.
    pub const CAPACITANCE: Dimension = Dimension::new(-2, -1, 4, 2, 0);
    /// Henry = V·s/A.
    pub const INDUCTANCE: Dimension = Dimension::new(2, 1, -2, -2, 0);
    /// Watt = V·A.
    pub const POWER: Dimension = Dimension::new(2, 1, -3, 0, 0);
    /// Kelvin.
    pub const TEMPERATURE: Dimension = Dimension::new(0, 0, 0, 0, 1);
    /// Newton-metre = kg·m²·s⁻².
    pub const TORQUE: Dimension = Dimension::new(2, 1, -2, 0, 0);
    /// Radian/second = s⁻¹ (radians are dimensionless).
    pub const ANGULAR_VELOCITY: Dimension = Dimension::new(0, 0, -1, 0, 0);
    /// Volt/second — slope of a voltage signal.
    pub const VOLTAGE_RATE: Dimension = Dimension::new(2, 1, -4, -1, 0);

    /// Creates a dimension from raw exponents.
    pub const fn new(m: i8, kg: i8, s: i8, a: i8, k: i8) -> Self {
        Dimension { m, kg, s, a, k }
    }

    /// `true` if dimensionless.
    pub fn is_none(&self) -> bool {
        *self == Dimension::NONE
    }

    /// Dimension of this quantity's time derivative (÷ s).
    pub fn per_time(self) -> Dimension {
        Dimension {
            s: self.s - 1,
            ..self
        }
    }

    /// Dimension of this quantity's time integral (× s).
    pub fn times_time(self) -> Dimension {
        Dimension {
            s: self.s + 1,
            ..self
        }
    }

    /// Well-known name of the dimension, if it has one.
    pub fn canonical_name(&self) -> Option<&'static str> {
        // TORQUE and POWER share exponents only if their formulas coincide;
        // they do not (torque has s⁻², power s⁻³), so the match is exact.
        match *self {
            Dimension::NONE => Some("dimensionless"),
            Dimension::VOLTAGE => Some("voltage"),
            Dimension::CURRENT => Some("current"),
            Dimension::CHARGE => Some("charge"),
            Dimension::TIME => Some("time"),
            // FREQUENCY and ANGULAR_VELOCITY share s⁻¹.
            Dimension::FREQUENCY => Some("frequency"),
            Dimension::RESISTANCE => Some("resistance"),
            Dimension::CONDUCTANCE => Some("conductance"),
            Dimension::CAPACITANCE => Some("capacitance"),
            Dimension::INDUCTANCE => Some("inductance"),
            Dimension::POWER => Some("power"),
            Dimension::TEMPERATURE => Some("temperature"),
            Dimension::TORQUE => Some("torque"),
            Dimension::VOLTAGE_RATE => Some("voltage rate"),
            _ => None,
        }
    }
}

impl Mul for Dimension {
    type Output = Dimension;
    fn mul(self, rhs: Dimension) -> Dimension {
        Dimension {
            m: self.m + rhs.m,
            kg: self.kg + rhs.kg,
            s: self.s + rhs.s,
            a: self.a + rhs.a,
            k: self.k + rhs.k,
        }
    }
}

impl Div for Dimension {
    type Output = Dimension;
    fn div(self, rhs: Dimension) -> Dimension {
        Dimension {
            m: self.m - rhs.m,
            kg: self.kg - rhs.kg,
            s: self.s - rhs.s,
            a: self.a - rhs.a,
            k: self.k - rhs.k,
        }
    }
}

impl fmt::Display for Dimension {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(name) = self.canonical_name() {
            return write!(f, "{name}");
        }
        let mut parts = Vec::new();
        for (sym, e) in [
            ("m", self.m),
            ("kg", self.kg),
            ("s", self.s),
            ("A", self.a),
            ("K", self.k),
        ] {
            match e {
                0 => {}
                1 => parts.push(sym.to_string()),
                _ => parts.push(format!("{sym}^{e}")),
            }
        }
        write!(f, "{}", parts.join("·"))
    }
}

/// A value paired with its dimension — used by definition-card parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantity {
    /// Numeric value in SI units.
    pub value: f64,
    /// Physical dimension.
    pub dimension: Dimension,
}

impl Quantity {
    /// Creates a quantity.
    pub fn new(value: f64, dimension: Dimension) -> Self {
        Quantity { value, dimension }
    }

    /// A dimensionless number.
    pub fn number(value: f64) -> Self {
        Quantity::new(value, Dimension::NONE)
    }

    /// Volts shorthand.
    pub fn volts(value: f64) -> Self {
        Quantity::new(value, Dimension::VOLTAGE)
    }

    /// Amps shorthand.
    pub fn amps(value: f64) -> Self {
        Quantity::new(value, Dimension::CURRENT)
    }

    /// Ohms shorthand.
    pub fn ohms(value: f64) -> Self {
        Quantity::new(value, Dimension::RESISTANCE)
    }

    /// Siemens shorthand.
    pub fn siemens(value: f64) -> Self {
        Quantity::new(value, Dimension::CONDUCTANCE)
    }

    /// Farads shorthand.
    pub fn farads(value: f64) -> Self {
        Quantity::new(value, Dimension::CAPACITANCE)
    }

    /// Volts-per-second shorthand (slew rates).
    pub fn volts_per_second(value: f64) -> Self {
        Quantity::new(value, Dimension::VOLTAGE_RATE)
    }
}

impl fmt::Display for Quantity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.dimension.is_none() {
            write!(f, "{}", self.value)
        } else {
            write!(f, "{} [{}]", self.value, self.dimension)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ohms_law_dimensions() {
        assert_eq!(
            Dimension::VOLTAGE / Dimension::RESISTANCE,
            Dimension::CURRENT
        );
        assert_eq!(
            Dimension::CURRENT * Dimension::RESISTANCE,
            Dimension::VOLTAGE
        );
        assert_eq!(
            Dimension::VOLTAGE * Dimension::CONDUCTANCE,
            Dimension::CURRENT
        );
    }

    #[test]
    fn capacitor_current_dimension() {
        // i = C · dv/dt.
        let dv_dt = Dimension::VOLTAGE.per_time();
        assert_eq!(Dimension::CAPACITANCE * dv_dt, Dimension::CURRENT);
    }

    #[test]
    fn charge_is_current_times_time() {
        assert_eq!(Dimension::CURRENT.times_time(), Dimension::CHARGE);
        assert_eq!(Dimension::CHARGE.per_time(), Dimension::CURRENT);
    }

    #[test]
    fn torque_and_power_differ() {
        assert_ne!(Dimension::TORQUE, Dimension::POWER);
        // P = τ·ω.
        assert_eq!(
            Dimension::TORQUE * Dimension::ANGULAR_VELOCITY,
            Dimension::POWER
        );
    }

    #[test]
    fn oil_and_water_do_not_mix() {
        // The core rule: voltage and current are simply different dimensions.
        assert_ne!(Dimension::VOLTAGE, Dimension::CURRENT);
        assert_ne!(Dimension::VOLTAGE, Dimension::TORQUE);
    }

    #[test]
    fn display_names() {
        assert_eq!(Dimension::VOLTAGE.to_string(), "voltage");
        assert_eq!(Dimension::NONE.to_string(), "dimensionless");
        // An anonymous dimension prints exponents.
        let odd = Dimension::new(1, 0, 0, 0, 0);
        assert_eq!(odd.to_string(), "m");
        let odd2 = Dimension::new(3, -1, 0, 0, 0);
        assert!(odd2.to_string().contains("m^3"));
    }

    #[test]
    fn quantity_constructors() {
        assert_eq!(Quantity::volts(5.0).dimension, Dimension::VOLTAGE);
        assert_eq!(Quantity::ohms(50.0).dimension, Dimension::RESISTANCE);
        assert_eq!(Quantity::number(2.0).to_string(), "2");
        assert!(Quantity::amps(1.0).to_string().contains("current"));
    }

    #[test]
    fn slew_rate_dimension() {
        assert_eq!(Dimension::VOLTAGE.per_time(), Dimension::VOLTAGE_RATE);
    }
}
