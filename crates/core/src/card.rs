//! Definition cards — the first view of a model (§2.1).
//!
//! "The requirements for a new model are first listed in a textual form:
//! primary characteristics (transfer function, output impedance, etc.) and
//! second order effects (polarization current, PSRR, etc.). According to
//! this specification, an interface is defined in the form of a list of pins
//! and parameters. A graphical symbol, the interface and the list of
//! characteristics constitute the definition card."

use crate::quantity::Dimension;
use crate::CoreError;
use std::fmt;

/// Physical domain of a pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PinDomain {
    /// Electrical pin (voltage/current pair).
    Electrical,
    /// Rotational-mechanical pin (torque/angular-velocity pair) — §3.1a's
    /// "motor axle".
    RotationalMechanical,
    /// Thermal pin (temperature/heat-flow pair).
    Thermal,
}

/// A pin declaration on a definition card.
#[derive(Debug, Clone, PartialEq)]
pub struct PinDecl {
    /// Pin name.
    pub name: String,
    /// Physical domain.
    pub domain: PinDomain,
    /// Free-text description.
    pub description: String,
}

/// A parameter declaration on a definition card.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDecl {
    /// Parameter name (matches diagram property references).
    pub name: String,
    /// Default value in SI units.
    pub default: f64,
    /// Physical dimension.
    pub dimension: Dimension,
    /// Free-text description.
    pub description: String,
}

/// Importance class of a modelled characteristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CharacteristicClass {
    /// Primary characteristic (transfer function, output impedance, …).
    Primary,
    /// Second-order effect (polarization current, PSRR, …).
    SecondOrder,
}

/// One modelled characteristic listed on the card.
#[derive(Debug, Clone, PartialEq)]
pub struct Characteristic {
    /// Name, e.g. `"input impedance"`.
    pub name: String,
    /// Primary vs second-order.
    pub class: CharacteristicClass,
    /// Free-text description of the required behaviour.
    pub description: String,
}

/// The definition card: external view of a behavioural model.
///
/// # Example
///
/// ```
/// use gabm_core::card::{DefinitionCard, PinDomain, CharacteristicClass};
/// use gabm_core::quantity::Dimension;
///
/// # fn main() -> Result<(), gabm_core::CoreError> {
/// let card = DefinitionCard::builder("input_stage")
///     .describe("single-ended input stage")
///     .pin("in", PinDomain::Electrical, "signal input")
///     .parameter("gin", 1e-6, Dimension::CONDUCTANCE, "input conductance")
///     .parameter("cin", 5e-12, Dimension::CAPACITANCE, "input capacitance")
///     .characteristic("input impedance", CharacteristicClass::Primary, "Rin ∥ Cin")
///     .build()?;
/// assert_eq!(card.pins().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DefinitionCard {
    name: String,
    description: String,
    symbol_art: Option<String>,
    pins: Vec<PinDecl>,
    parameters: Vec<ParamDecl>,
    characteristics: Vec<Characteristic>,
}

impl DefinitionCard {
    /// Reassembles a card from its serialized parts (deserialization
    /// bypasses the builder's duplicate checks, matching what the card
    /// contained when written).
    pub(crate) fn from_parts(
        name: String,
        description: String,
        symbol_art: Option<String>,
        pins: Vec<PinDecl>,
        parameters: Vec<ParamDecl>,
        characteristics: Vec<Characteristic>,
    ) -> Self {
        DefinitionCard {
            name,
            description,
            symbol_art,
            pins,
            parameters,
            characteristics,
        }
    }

    /// Starts building a card for the named model.
    pub fn builder(name: &str) -> DefinitionCardBuilder {
        DefinitionCardBuilder {
            card: DefinitionCard {
                name: name.to_string(),
                description: String::new(),
                symbol_art: None,
                pins: Vec::new(),
                parameters: Vec::new(),
                characteristics: Vec::new(),
            },
        }
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Free-text description.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Declared pins.
    pub fn pins(&self) -> &[PinDecl] {
        &self.pins
    }

    /// Declared parameters.
    pub fn parameters(&self) -> &[ParamDecl] {
        &self.parameters
    }

    /// Modelled characteristics.
    pub fn characteristics(&self) -> &[Characteristic] {
        &self.characteristics
    }

    /// ASCII graphical symbol, if one was provided.
    pub fn symbol_art(&self) -> Option<&str> {
        self.symbol_art.as_deref()
    }

    /// Looks up a parameter by name.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotFound`] if absent.
    pub fn parameter(&self, name: &str) -> Result<&ParamDecl, CoreError> {
        self.parameters
            .iter()
            .find(|p| p.name == name)
            .ok_or_else(|| CoreError::NotFound(format!("parameter {name}")))
    }

    /// Checks that a functional diagram matches this card: every card pin
    /// appears as a diagram pin and every diagram parameter reference is
    /// declared here.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadCard`] describing the first mismatch.
    pub fn matches_diagram(
        &self,
        diagram: &crate::diagram::FunctionalDiagram,
    ) -> Result<(), CoreError> {
        let diagram_pins: Vec<String> = diagram.pins().into_iter().map(|(_, name)| name).collect();
        for pin in &self.pins {
            if !diagram_pins.contains(&pin.name) {
                return Err(CoreError::BadCard(format!(
                    "card pin '{}' has no pin symbol in the diagram",
                    pin.name
                )));
            }
        }
        for sym in diagram.symbols() {
            for value in sym.properties.values() {
                if let crate::symbol::PropertyValue::Param(p) = value {
                    if self.parameter(p).is_err() {
                        return Err(CoreError::BadCard(format!(
                            "diagram references parameter '{p}' not declared on the card"
                        )));
                    }
                }
            }
            if let crate::symbol::SymbolKind::Parameter { param, .. } = &sym.kind {
                if self.parameter(param).is_err() {
                    return Err(CoreError::BadCard(format!(
                        "parameter symbol '{param}' not declared on the card"
                    )));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for DefinitionCard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "┌─ definition card: {} ─", self.name)?;
        if !self.description.is_empty() {
            writeln!(f, "│ {}", self.description)?;
        }
        if let Some(art) = &self.symbol_art {
            for line in art.lines() {
                writeln!(f, "│   {line}")?;
            }
        }
        writeln!(f, "│ pins:")?;
        for p in &self.pins {
            writeln!(f, "│   {:<10} {:?}: {}", p.name, p.domain, p.description)?;
        }
        writeln!(f, "│ parameters:")?;
        for p in &self.parameters {
            writeln!(
                f,
                "│   {:<10} = {:<12e} [{}] {}",
                p.name, p.default, p.dimension, p.description
            )?;
        }
        writeln!(f, "│ characteristics:")?;
        for c in &self.characteristics {
            let class = match c.class {
                CharacteristicClass::Primary => "primary",
                CharacteristicClass::SecondOrder => "2nd-order",
            };
            writeln!(f, "│   [{class}] {}: {}", c.name, c.description)?;
        }
        write!(f, "└─")
    }
}

/// Builder for [`DefinitionCard`].
#[derive(Debug, Clone)]
pub struct DefinitionCardBuilder {
    card: DefinitionCard,
}

impl DefinitionCardBuilder {
    /// Sets the free-text description.
    pub fn describe(mut self, text: &str) -> Self {
        self.card.description = text.to_string();
        self
    }

    /// Attaches an ASCII graphical symbol.
    pub fn symbol_art(mut self, art: &str) -> Self {
        self.card.symbol_art = Some(art.to_string());
        self
    }

    /// Declares a pin.
    pub fn pin(mut self, name: &str, domain: PinDomain, description: &str) -> Self {
        self.card.pins.push(PinDecl {
            name: name.to_string(),
            domain,
            description: description.to_string(),
        });
        self
    }

    /// Declares a parameter.
    pub fn parameter(
        mut self,
        name: &str,
        default: f64,
        dimension: Dimension,
        description: &str,
    ) -> Self {
        self.card.parameters.push(ParamDecl {
            name: name.to_string(),
            default,
            dimension,
            description: description.to_string(),
        });
        self
    }

    /// Declares a modelled characteristic.
    pub fn characteristic(
        mut self,
        name: &str,
        class: CharacteristicClass,
        description: &str,
    ) -> Self {
        self.card.characteristics.push(Characteristic {
            name: name.to_string(),
            class,
            description: description.to_string(),
        });
        self
    }

    /// Finalizes the card.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadCard`] for duplicate pin or parameter names, or an
    /// empty pin list.
    pub fn build(self) -> Result<DefinitionCard, CoreError> {
        let card = self.card;
        if card.pins.is_empty() {
            return Err(CoreError::BadCard("a model needs at least one pin".into()));
        }
        for (i, p) in card.pins.iter().enumerate() {
            if card.pins[..i].iter().any(|q| q.name == p.name) {
                return Err(CoreError::BadCard(format!("duplicate pin '{}'", p.name)));
            }
        }
        for (i, p) in card.parameters.iter().enumerate() {
            if card.parameters[..i].iter().any(|q| q.name == p.name) {
                return Err(CoreError::BadCard(format!(
                    "duplicate parameter '{}'",
                    p.name
                )));
            }
        }
        Ok(card)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagram::FunctionalDiagram;
    use crate::symbol::{PropertyValue, SymbolKind};

    fn sample_card() -> DefinitionCard {
        DefinitionCard::builder("amp")
            .describe("test amplifier")
            .pin("in", PinDomain::Electrical, "input")
            .pin("out", PinDomain::Electrical, "output")
            .parameter("gain", 100.0, Dimension::NONE, "voltage gain")
            .characteristic("gain", CharacteristicClass::Primary, "A0 = 100")
            .build()
            .unwrap()
    }

    #[test]
    fn builder_and_accessors() {
        let c = sample_card();
        assert_eq!(c.name(), "amp");
        assert_eq!(c.pins().len(), 2);
        assert_eq!(c.parameters().len(), 1);
        assert_eq!(c.characteristics().len(), 1);
        assert_eq!(c.parameter("gain").unwrap().default, 100.0);
        assert!(c.parameter("zz").is_err());
    }

    #[test]
    fn duplicates_rejected() {
        let err = DefinitionCard::builder("x")
            .pin("a", PinDomain::Electrical, "")
            .pin("a", PinDomain::Electrical, "")
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::BadCard(_)));
        let err = DefinitionCard::builder("x")
            .pin("a", PinDomain::Electrical, "")
            .parameter("p", 1.0, Dimension::NONE, "")
            .parameter("p", 2.0, Dimension::NONE, "")
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::BadCard(_)));
    }

    #[test]
    fn needs_a_pin() {
        assert!(DefinitionCard::builder("x").build().is_err());
    }

    #[test]
    fn display_renders_card() {
        let c = sample_card();
        let s = c.to_string();
        assert!(s.contains("definition card: amp"));
        assert!(s.contains("gain"));
        assert!(s.contains("primary"));
    }

    #[test]
    fn diagram_match() {
        let c = sample_card();
        let mut d = FunctionalDiagram::new("amp");
        d.add_symbol(SymbolKind::Pin { name: "in".into() });
        d.add_symbol(SymbolKind::Pin { name: "out".into() });
        d.add_symbol_with(
            SymbolKind::Gain,
            &[("a", PropertyValue::Param("gain".into()))],
            None,
        );
        assert!(c.matches_diagram(&d).is_ok());
        // Missing pin.
        let mut d2 = FunctionalDiagram::new("amp");
        d2.add_symbol(SymbolKind::Pin { name: "in".into() });
        assert!(c.matches_diagram(&d2).is_err());
        // Undeclared parameter.
        let mut d3 = FunctionalDiagram::new("amp");
        d3.add_symbol(SymbolKind::Pin { name: "in".into() });
        d3.add_symbol(SymbolKind::Pin { name: "out".into() });
        d3.add_symbol_with(
            SymbolKind::Gain,
            &[("a", PropertyValue::Param("mystery".into()))],
            None,
        );
        assert!(c.matches_diagram(&d3).is_err());
    }

    #[test]
    fn mechanical_pins_supported() {
        let c = DefinitionCard::builder("motor")
            .pin("axle", PinDomain::RotationalMechanical, "output shaft")
            .build()
            .unwrap();
        assert_eq!(c.pins()[0].domain, PinDomain::RotationalMechanical);
    }
}
