//! Model libraries: behavioural models plus implementation-dependent
//! parameter sets.
//!
//! The paper's meet-in-the-middle workflow (§1): "specialists create
//! behavioural macro-models of existing functional blocks, accompanied by
//! sets of implementation-dependent parameters, which can then be used by
//! less experienced users through high-level selection and specification
//! tools." A [`ModelLibrary`] stores [`ModelEntry`]s — card + diagram + any
//! number of named parameter sets, each representing one known electrical
//! implementation — and supports selection by required characteristics
//! (§1c: "some help should be provided to the user in the selection of the
//! appropriate model according to his specification").

use crate::card::DefinitionCard;
use crate::diagram::FunctionalDiagram;
use crate::CoreError;
use std::collections::BTreeMap;

/// One named set of extracted parameter values — the link between a
/// behavioural model and a concrete circuit implementation ("the circuit is
/// realizable in the limits of extracted parameters").
#[derive(Debug, Clone, PartialEq)]
pub struct ParameterSet {
    /// Implementation name (e.g. `"cmos_1um_lp"`).
    pub name: String,
    /// Parameter values, keyed by card parameter name.
    pub values: BTreeMap<String, f64>,
    /// Provenance note (measurement, electrical simulation, …) — §2b: values
    /// "extracted from the circuit through electrical simulation or
    /// measurement in laboratory".
    pub provenance: String,
}

/// A library entry: the three views of a model plus its parameter sets.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelEntry {
    /// External view.
    pub card: DefinitionCard,
    /// Behavioural view.
    pub diagram: FunctionalDiagram,
    /// Known implementations.
    pub parameter_sets: Vec<ParameterSet>,
}

impl ModelEntry {
    /// Creates an entry after verifying card/diagram coherence.
    ///
    /// # Errors
    ///
    /// Propagates [`DefinitionCard::matches_diagram`] failures.
    pub fn new(card: DefinitionCard, diagram: FunctionalDiagram) -> Result<Self, CoreError> {
        card.matches_diagram(&diagram)?;
        Ok(ModelEntry {
            card,
            diagram,
            parameter_sets: Vec::new(),
        })
    }

    /// Adds a parameter set; unknown parameter names are rejected.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotFound`] for a value keyed by an undeclared parameter.
    pub fn add_parameter_set(&mut self, set: ParameterSet) -> Result<(), CoreError> {
        for key in set.values.keys() {
            self.card.parameter(key)?;
        }
        self.parameter_sets.push(set);
        Ok(())
    }

    /// Resolved parameter values for the named set: card defaults overlaid
    /// with the set's values.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotFound`] for an unknown set name.
    pub fn resolved_parameters(&self, set_name: &str) -> Result<BTreeMap<String, f64>, CoreError> {
        let set = self
            .parameter_sets
            .iter()
            .find(|s| s.name == set_name)
            .ok_or_else(|| CoreError::NotFound(format!("parameter set {set_name}")))?;
        let mut out: BTreeMap<String, f64> = self
            .card
            .parameters()
            .iter()
            .map(|p| (p.name.clone(), p.default))
            .collect();
        for (k, v) in &set.values {
            out.insert(k.clone(), *v);
        }
        Ok(out)
    }

    /// Default parameter values from the card.
    pub fn default_parameters(&self) -> BTreeMap<String, f64> {
        self.card
            .parameters()
            .iter()
            .map(|p| (p.name.clone(), p.default))
            .collect()
    }
}

/// A searchable collection of model entries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ModelLibrary {
    entries: Vec<ModelEntry>,
}

impl ModelLibrary {
    /// Creates an empty library.
    pub fn new() -> Self {
        ModelLibrary::default()
    }

    /// Reassembles a library from serialized entries.
    pub(crate) fn from_entries(entries: Vec<ModelEntry>) -> Self {
        ModelLibrary { entries }
    }

    /// Adds an entry.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadCard`] if a model of the same name already exists.
    pub fn add(&mut self, entry: ModelEntry) -> Result<(), CoreError> {
        if self.find(entry.card.name()).is_some() {
            return Err(CoreError::BadCard(format!(
                "model {} already in library",
                entry.card.name()
            )));
        }
        self.entries.push(entry);
        Ok(())
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up an entry by model name.
    pub fn find(&self, name: &str) -> Option<&ModelEntry> {
        self.entries.iter().find(|e| e.card.name() == name)
    }

    /// Iterates over all entries.
    pub fn iter(&self) -> impl Iterator<Item = &ModelEntry> {
        self.entries.iter()
    }

    /// Selects models whose cards list every requested characteristic —
    /// the high-level selection step of the paper's workflow.
    pub fn select_by_characteristics<'a>(
        &'a self,
        required: &'a [&str],
    ) -> impl Iterator<Item = &'a ModelEntry> + 'a {
        self.entries.iter().filter(move |e| {
            required.iter().all(|r| {
                e.card
                    .characteristics()
                    .iter()
                    .any(|c| c.name.eq_ignore_ascii_case(r))
            })
        })
    }

    /// Selects models with a pin of every requested name.
    pub fn select_by_pins<'a>(
        &'a self,
        required: &'a [&str],
    ) -> impl Iterator<Item = &'a ModelEntry> + 'a {
        self.entries.iter().filter(move |e| {
            required
                .iter()
                .all(|r| e.card.pins().iter().any(|p| p.name == *r))
        })
    }

    /// Selects `(model, parameter set)` pairs whose *resolved* parameter
    /// values satisfy every `(name, min, max)` requirement — the §1c
    /// selection step with the §1b realizability guarantee: a returned pair
    /// names a known implementation whose extracted parameters meet the
    /// specification ("the circuit is realizable in the limits of extracted
    /// parameters").
    pub fn select_by_requirements<'a>(
        &'a self,
        requirements: &'a [(&str, f64, f64)],
    ) -> Vec<(&'a ModelEntry, &'a ParameterSet)> {
        let mut out = Vec::new();
        for entry in &self.entries {
            for set in &entry.parameter_sets {
                let Ok(resolved) = entry.resolved_parameters(&set.name) else {
                    continue;
                };
                let ok = requirements.iter().all(|(name, lo, hi)| {
                    resolved
                        .get(*name)
                        .map(|v| *lo <= *v && *v <= *hi)
                        .unwrap_or(false)
                });
                if ok {
                    out.push((entry, set));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constructs::{InputStageSpec, OutputStageSpec};

    fn entry(spec: &InputStageSpec) -> ModelEntry {
        ModelEntry::new(spec.card().unwrap(), spec.diagram().unwrap()).unwrap()
    }

    #[test]
    fn entry_coherence_checked() {
        let spec = InputStageSpec::new("in", 1e-6, 5e-12);
        let other = OutputStageSpec::new("out", 1e-3);
        // Mismatched card/diagram is rejected.
        assert!(ModelEntry::new(spec.card().unwrap(), other.diagram().unwrap()).is_err());
    }

    #[test]
    fn parameter_sets() {
        let mut e = entry(&InputStageSpec::new("in", 1e-6, 5e-12));
        let mut values = BTreeMap::new();
        values.insert("gin".to_string(), 2e-6);
        e.add_parameter_set(ParameterSet {
            name: "cmos_a".into(),
            values,
            provenance: "electrical simulation".into(),
        })
        .unwrap();
        let resolved = e.resolved_parameters("cmos_a").unwrap();
        assert_eq!(resolved["gin"], 2e-6);
        // cin falls back to the card default.
        assert_eq!(resolved["cin"], 5e-12);
        assert!(e.resolved_parameters("zz").is_err());
    }

    #[test]
    fn unknown_parameter_in_set_rejected() {
        let mut e = entry(&InputStageSpec::new("in", 1e-6, 5e-12));
        let mut values = BTreeMap::new();
        values.insert("bogus".to_string(), 1.0);
        assert!(e
            .add_parameter_set(ParameterSet {
                name: "x".into(),
                values,
                provenance: String::new(),
            })
            .is_err());
    }

    #[test]
    fn library_add_find_select() {
        let mut lib = ModelLibrary::new();
        lib.add(entry(&InputStageSpec::new("in", 1e-6, 5e-12)))
            .unwrap();
        let out_spec = OutputStageSpec::new("out", 1e-3).with_current_limit(1e-2);
        lib.add(ModelEntry::new(out_spec.card().unwrap(), out_spec.diagram().unwrap()).unwrap())
            .unwrap();
        assert_eq!(lib.len(), 2);
        assert!(lib.find("input_stage_in").is_some());
        assert!(lib.find("zz").is_none());
        let by_char: Vec<_> = lib
            .select_by_characteristics(&["output impedance"])
            .collect();
        assert_eq!(by_char.len(), 1);
        let by_both: Vec<_> = lib
            .select_by_characteristics(&["output impedance", "current limitation"])
            .collect();
        assert_eq!(by_both.len(), 1);
        let none: Vec<_> = lib.select_by_characteristics(&["psrr"]).collect();
        assert!(none.is_empty());
        let by_pin: Vec<_> = lib.select_by_pins(&["out"]).collect();
        assert_eq!(by_pin.len(), 1);
    }

    #[test]
    fn selection_by_requirements() {
        let mut lib = ModelLibrary::new();
        let mut e = entry(&InputStageSpec::new("in", 1e-6, 5e-12));
        for (name, gin) in [("proc_a", 0.8e-6), ("proc_b", 2.0e-6)] {
            let mut values = BTreeMap::new();
            values.insert("gin".to_string(), gin);
            e.add_parameter_set(ParameterSet {
                name: name.into(),
                values,
                provenance: "extraction".into(),
            })
            .unwrap();
        }
        lib.add(e).unwrap();
        // Spec: input resistance >= 1 MΩ ⇔ gin in [0, 1e-6].
        let hits = lib.select_by_requirements(&[("gin", 0.0, 1.0e-6)]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1.name, "proc_a");
        // Both sets satisfy a loose requirement.
        let hits = lib.select_by_requirements(&[("gin", 0.0, 1.0e-5)]);
        assert_eq!(hits.len(), 2);
        // An unknown parameter never matches.
        assert!(lib.select_by_requirements(&[("zz", 0.0, 1.0)]).is_empty());
        // Multiple requirements are conjunctive.
        let hits = lib.select_by_requirements(&[("gin", 0.0, 1.0e-5), ("cin", 4.0e-12, 6.0e-12)]);
        assert_eq!(hits.len(), 2, "cin comes from the card default");
    }

    #[test]
    fn duplicate_model_rejected() {
        let mut lib = ModelLibrary::new();
        lib.add(entry(&InputStageSpec::new("in", 1e-6, 5e-12)))
            .unwrap();
        assert!(lib
            .add(entry(&InputStageSpec::new("in", 1e-6, 5e-12)))
            .is_err());
        assert!(!lib.is_empty());
    }
}
