//! The output-stage construct (paper Fig. 3).
//!
//! "An output stage is composed of one pin, interface elements, an output
//! conductance Gout — that may be replaced by an admittance — and an
//! optional current limitation block. The voltage on the pin is read: it
//! represents the voltage after Gout while the input variable of the block
//! is the desired voltage. These two values and Ohm's law determine the
//! current that has to be imposed on the pin."

use crate::card::{CharacteristicClass, DefinitionCard, PinDomain};
use crate::diagram::FunctionalDiagram;
use crate::quantity::Dimension;
use crate::symbol::{PropertyValue, SymbolKind};
use crate::CoreError;

/// Parameterized builder of the Fig. 3 output stage.
///
/// With the receptor sign convention of `curr.on` (current flowing from the
/// node into the model), the imposed current is `i = gout·(vout − vdesired)`,
/// optionally clipped to `±ilim`.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputStageSpec {
    /// External pin name.
    pub pin: String,
    /// Output conductance `gout = 1/Rout` (S).
    pub gout: f64,
    /// Optional symmetric current limit (A).
    pub ilim: Option<f64>,
    /// Parameter-name prefix.
    pub param_prefix: String,
}

impl OutputStageSpec {
    /// Creates a spec without current limitation.
    pub fn new(pin: &str, gout: f64) -> Self {
        OutputStageSpec {
            pin: pin.to_string(),
            gout,
            ilim: None,
            param_prefix: String::new(),
        }
    }

    /// Builder-style current limit.
    pub fn with_current_limit(mut self, ilim: f64) -> Self {
        self.ilim = Some(ilim);
        self
    }

    /// Builder-style parameter prefix.
    pub fn with_param_prefix(mut self, prefix: &str) -> Self {
        self.param_prefix = prefix.to_string();
        self
    }

    /// Equivalent output resistance in ohms.
    pub fn rout(&self) -> f64 {
        1.0 / self.gout
    }

    fn gout_name(&self) -> String {
        format!("{}gout", self.param_prefix)
    }

    fn ilim_name(&self) -> String {
        format!("{}ilim", self.param_prefix)
    }

    /// Builds the functional diagram. The desired voltage enters through the
    /// exposed input port `vin`.
    ///
    /// # Errors
    ///
    /// Propagates diagram-construction errors (none occur for valid specs).
    pub fn diagram(&self) -> Result<FunctionalDiagram, CoreError> {
        let mut d = FunctionalDiagram::new(&format!("output_stage_{}", self.pin));
        d.add_parameter(&self.gout_name(), self.gout, Dimension::CONDUCTANCE);
        if let Some(ilim) = self.ilim {
            d.add_parameter(&self.ilim_name(), ilim, Dimension::CURRENT);
        }
        let pin = d.add_symbol(SymbolKind::Pin {
            name: self.pin.clone(),
        });
        let probe = d.add_symbol(SymbolKind::Probe {
            quantity: Dimension::VOLTAGE,
        });
        let gen = d.add_symbol(SymbolKind::Generator {
            quantity: Dimension::CURRENT,
        });
        // vout − vdesired.
        let sub = d.add_symbol(SymbolKind::Adder {
            signs: vec![true, false],
        });
        let gain = d.add_symbol_with(
            SymbolKind::Gain,
            &[("a", PropertyValue::Param(self.gout_name()))],
            Some("Gout"),
        );
        let pin_port = d.port(pin, "pin")?;
        d.connect(pin_port, d.port(probe, "pin")?)?;
        d.connect(pin_port, d.port(gen, "pin")?)?;
        d.connect(d.port(probe, "out")?, d.port(sub, "in0")?)?;
        d.connect(d.port(sub, "out")?, d.port(gain, "in")?)?;
        let current_out = if self.ilim.is_some() {
            let lim = d.add_symbol_with(
                SymbolKind::Limiter,
                &[
                    ("min", PropertyValue::NegParam(self.ilim_name())),
                    ("max", PropertyValue::Param(self.ilim_name())),
                ],
                Some("Ilim"),
            );
            d.connect(d.port(gain, "out")?, d.port(lim, "in")?)?;
            d.port(lim, "out")?
        } else {
            d.port(gain, "out")?
        };
        d.connect(current_out, d.port(gen, "in")?)?;
        // Exposed desired-voltage input, a probe of the actual output, and
        // the stage current (consumed by the power-supply balance sheet).
        d.expose("vin", d.port(sub, "in1")?)?;
        d.expose("vout", d.port(probe, "out")?)?;
        d.expose("iout", current_out)?;
        Ok(d)
    }

    /// Builds the matching definition card.
    ///
    /// # Errors
    ///
    /// Propagates card validation errors (none occur for valid specs).
    pub fn card(&self) -> Result<DefinitionCard, CoreError> {
        let mut b = DefinitionCard::builder(&format!("output_stage_{}", self.pin))
            .describe("output stage with output conductance and optional current limitation")
            .pin(&self.pin, PinDomain::Electrical, "signal output pin")
            .parameter(
                &self.gout_name(),
                self.gout,
                Dimension::CONDUCTANCE,
                "output conductance 1/Rout",
            )
            .characteristic(
                "output impedance",
                CharacteristicClass::Primary,
                "Rout = 1/gout",
            );
        if let Some(ilim) = self.ilim {
            b = b
                .parameter(
                    &self.ilim_name(),
                    ilim,
                    Dimension::CURRENT,
                    "symmetric output current limit",
                )
                .characteristic(
                    "current limitation",
                    CharacteristicClass::SecondOrder,
                    "|iout| <= ilim",
                );
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_diagram;

    #[test]
    fn unlimited_stage_is_consistent() {
        let d = OutputStageSpec::new("out", 1e-3).diagram().unwrap();
        let r = check_diagram(&d);
        assert!(r.is_consistent(), "{:?}", r.diagnostics);
        assert_eq!(d.symbol_count(), 5);
    }

    #[test]
    fn limited_stage_adds_limiter() {
        let d = OutputStageSpec::new("out", 1e-3)
            .with_current_limit(10e-3)
            .diagram()
            .unwrap();
        assert_eq!(d.symbol_count(), 6);
        let r = check_diagram(&d);
        assert!(r.is_consistent(), "{:?}", r.diagnostics);
        assert!(d.symbols().any(|s| matches!(s.kind, SymbolKind::Limiter)));
    }

    #[test]
    fn current_dimension_via_ohms_law() {
        let d = OutputStageSpec::new("out", 1e-3)
            .with_current_limit(10e-3)
            .diagram()
            .unwrap();
        let r = check_diagram(&d);
        // Generator input (symbol 3 "in") must be CURRENT.
        let gen_in = d
            .net_of(d.port(crate::diagram::SymbolId(3), "in").unwrap())
            .unwrap();
        assert_eq!(r.net_dimensions.get(&gen_in.id), Some(&Dimension::CURRENT));
    }

    #[test]
    fn interface_ports() {
        let d = OutputStageSpec::new("out", 1e-3).diagram().unwrap();
        assert!(d.interface_port("vin").is_ok());
        assert!(d.interface_port("vout").is_ok());
    }

    #[test]
    fn card_matches() {
        let spec = OutputStageSpec::new("out", 2e-3).with_current_limit(5e-3);
        assert!((spec.rout() - 500.0).abs() < 1e-9);
        let card = spec.card().unwrap();
        assert_eq!(card.parameters().len(), 2);
        assert!(card.matches_diagram(&spec.diagram().unwrap()).is_ok());
    }
}
