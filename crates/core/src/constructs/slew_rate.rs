//! The slew-rate construct (paper Fig. 5).
//!
//! "The desired slope of the signal is calculated by dividing the difference
//! between the current value of the signal and its last value by the current
//! time step of the simulation engine. This slope is limited by a maximum
//! rise rate and a maximum fall rate determined by the parameters of the
//! block. The output value is then evaluated according to the computed
//! slope. … A variable delay element (duration: 1 current time step) is
//! introduced in order to get the last computed value of a signal. In the
//! present example, a calculated increase is added to the last value of the
//! output signal."

use crate::card::{CharacteristicClass, DefinitionCard, PinDomain};
use crate::diagram::FunctionalDiagram;
use crate::quantity::Dimension;
use crate::symbol::{PropertyValue, SimVar, SymbolKind};
use crate::CoreError;

/// Parameterized builder of the Fig. 5 slew-rate block.
///
/// Signal flow (`u` = desired value, `y` = slew-limited output):
///
/// ```text
/// ylast = delay_1step(y)
/// slope = (u − ylast) / timestep
/// slope_lim = limit(slope, −max_fall, +max_rise)
/// y = ylast + slope_lim · timestep
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SlewRateSpec {
    /// Maximum rising slope (V/s).
    pub max_rise: f64,
    /// Maximum falling slope magnitude (V/s).
    pub max_fall: f64,
    /// Parameter-name prefix.
    pub param_prefix: String,
}

impl SlewRateSpec {
    /// Creates a symmetric or asymmetric slew-rate spec.
    pub fn new(max_rise: f64, max_fall: f64) -> Self {
        SlewRateSpec {
            max_rise,
            max_fall,
            param_prefix: String::new(),
        }
    }

    /// Builder-style parameter prefix.
    pub fn with_param_prefix(mut self, prefix: &str) -> Self {
        self.param_prefix = prefix.to_string();
        self
    }

    fn rise_name(&self) -> String {
        format!("{}srise", self.param_prefix)
    }

    fn fall_name(&self) -> String {
        format!("{}sfall", self.param_prefix)
    }

    /// Builds the functional diagram with exposed ports `u` (input) and `y`
    /// (output).
    ///
    /// # Errors
    ///
    /// Propagates diagram-construction errors (none occur for valid specs).
    pub fn diagram(&self) -> Result<FunctionalDiagram, CoreError> {
        let mut d = FunctionalDiagram::new("slew_rate");
        d.add_parameter(&self.rise_name(), self.max_rise, Dimension::VOLTAGE_RATE);
        d.add_parameter(&self.fall_name(), self.max_fall, Dimension::VOLTAGE_RATE);

        let delay = d.add_symbol(SymbolKind::UnitDelay); // ylast
        let diff = d.add_symbol(SymbolKind::Adder {
            signs: vec![true, false],
        }); // u − ylast
        let dt = d.add_symbol(SymbolKind::SimVariable {
            var: SimVar::TimeStep,
        });
        let slope = d.add_symbol(SymbolKind::Multiplier {
            ops: vec![true, false],
        }); // (u − ylast) / dt
        let lim = d.add_symbol_with(
            SymbolKind::Limiter,
            &[
                ("min", PropertyValue::NegParam(self.fall_name())),
                ("max", PropertyValue::Param(self.rise_name())),
            ],
            Some("slope limit"),
        );
        let dy = d.add_symbol(SymbolKind::Multiplier {
            ops: vec![true, true],
        }); // slope_lim · dt
        let out = d.add_symbol(SymbolKind::Adder {
            signs: vec![true, true],
        }); // ylast + dy

        d.connect(d.port(delay, "out")?, d.port(diff, "in1")?)?;
        d.connect(d.port(diff, "out")?, d.port(slope, "in0")?)?;
        d.connect(d.port(dt, "out")?, d.port(slope, "in1")?)?;
        d.connect(d.port(slope, "out")?, d.port(lim, "in")?)?;
        d.connect(d.port(lim, "out")?, d.port(dy, "in0")?)?;
        d.connect(d.port(dt, "out")?, d.port(dy, "in1")?)?;
        d.connect(d.port(delay, "out")?, d.port(out, "in0")?)?;
        d.connect(d.port(dy, "out")?, d.port(out, "in1")?)?;
        // Close the loop through the one-step delay.
        d.connect(d.port(out, "out")?, d.port(delay, "in")?)?;

        d.expose("u", d.port(diff, "in0")?)?;
        d.expose("y", d.port(out, "out")?)?;
        Ok(d)
    }

    /// Builds a stand-alone definition card for the block (as a
    /// demonstration model with a buffer pinout).
    ///
    /// # Errors
    ///
    /// Propagates card validation errors (none occur for valid specs).
    pub fn card(&self) -> Result<DefinitionCard, CoreError> {
        DefinitionCard::builder("slew_rate")
            .describe("slope limitation with distinct maximum rise and fall rates")
            .pin("in", PinDomain::Electrical, "signal input (conceptual)")
            .pin(
                "out",
                PinDomain::Electrical,
                "slew-limited output (conceptual)",
            )
            .parameter(
                &self.rise_name(),
                self.max_rise,
                Dimension::VOLTAGE_RATE,
                "maximum rise rate",
            )
            .parameter(
                &self.fall_name(),
                self.max_fall,
                Dimension::VOLTAGE_RATE,
                "maximum fall rate",
            )
            .characteristic(
                "slew rate",
                CharacteristicClass::Primary,
                "output slope clipped to [-sfall, +srise]",
            )
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_diagram;

    #[test]
    fn diagram_is_consistent_despite_feedback() {
        let d = SlewRateSpec::new(1e6, 1e6).diagram().unwrap();
        let r = check_diagram(&d);
        // The feedback loop passes through the unit delay, so no algebraic
        // loop may be reported.
        assert!(r.is_consistent(), "{:?}", r.diagnostics);
    }

    #[test]
    fn dimension_chain() {
        let d = SlewRateSpec::new(1e6, 2e6).diagram().unwrap();
        let mut d2 = d.clone();
        // Drive u with a voltage parameter so inference has a seed.
        let src = d2.add_symbol(SymbolKind::Parameter {
            param: "u0".into(),
            dimension: Dimension::VOLTAGE,
        });
        let u = d2.interface_port("u").unwrap().inner;
        d2.connect(d2.port(src, "out").unwrap(), u).unwrap();
        let r = check_diagram(&d2);
        assert!(r.is_consistent(), "{:?}", r.diagnostics);
        // The limiter input net is a voltage rate.
        let lim = d2
            .symbols()
            .find(|s| matches!(s.kind, SymbolKind::Limiter))
            .unwrap();
        let net = d2
            .net_of(crate::diagram::PortRef {
                symbol: crate::diagram::SymbolId(lim.id),
                port: 0,
            })
            .unwrap();
        assert_eq!(
            r.net_dimensions.get(&net.id),
            Some(&Dimension::VOLTAGE_RATE)
        );
    }

    #[test]
    fn asymmetric_limits_in_properties() {
        let d = SlewRateSpec::new(5e6, 1e6).diagram().unwrap();
        let lim = d
            .symbols()
            .find(|s| matches!(s.kind, SymbolKind::Limiter))
            .unwrap();
        assert_eq!(
            lim.property("max"),
            Some(&PropertyValue::Param("srise".into()))
        );
        assert_eq!(
            lim.property("min"),
            Some(&PropertyValue::NegParam("sfall".into()))
        );
    }

    #[test]
    fn exposes_u_and_y() {
        let d = SlewRateSpec::new(1e6, 1e6).diagram().unwrap();
        assert!(d.interface_port("u").is_ok());
        assert!(d.interface_port("y").is_ok());
    }

    #[test]
    fn card_builds() {
        let card = SlewRateSpec::new(1e6, 2e6).card().unwrap();
        assert_eq!(card.parameters().len(), 2);
    }
}
