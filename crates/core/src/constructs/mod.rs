//! Basic functional constructs (§3.3).
//!
//! "Some basic functional groups can be defined. They are common to many
//! models and hence allow easy re-use of code." The four constructs of the
//! paper are provided as parameterized diagram builders:
//!
//! * [`InputStageSpec`] — Fig. 2: pin + interface elements + input
//!   impedance (Rin ∥ Cin), an expression of Ohm's law;
//! * [`OutputStageSpec`] — Fig. 3: pin, output conductance `Gout` and an
//!   optional current limitation, again Ohm's law;
//! * [`PowerSupplySpec`] — Fig. 4: supply pins + polarization pin current,
//!   an expression of Kirchhoff's current law ("balance sheet of all the
//!   currents in the model");
//! * [`SlewRateSpec`] — Fig. 5: analytical slope limitation built around a
//!   one-simulation-step delay element.
//!
//! Each builder returns a [`FunctionalDiagram`](crate::diagram::FunctionalDiagram) whose symbol numbering
//! follows the paper (the input stage reproduces the §4.2 listing variable
//! names `v2`, `yd4`, `yout5`, `yout6`, `yout7` exactly) plus a matching
//! [`DefinitionCard`](crate::card::DefinitionCard).

mod input_stage;
mod output_stage;
mod power_supply;
mod slew_rate;

pub use input_stage::InputStageSpec;
pub use output_stage::OutputStageSpec;
pub use power_supply::PowerSupplySpec;
pub use slew_rate::SlewRateSpec;
