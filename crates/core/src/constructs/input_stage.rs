//! The input-stage construct (paper Fig. 2).
//!
//! "An input stage contains one pin, interface elements and an input
//! impedance (Rin, Cin). The voltage is read on the pin, a current is then
//! imposed according to Ohm's law. Finally, a variable is delivered
//! representing the voltage on the input pin."

use crate::card::{CharacteristicClass, DefinitionCard, PinDomain};
use crate::diagram::FunctionalDiagram;
use crate::quantity::Dimension;
use crate::symbol::{PropertyValue, SymbolKind};
use crate::CoreError;

/// Parameterized builder of the Fig. 2 input stage.
///
/// The imposed current is `i = gin·v + cin·dv/dt` — the admittance of
/// `Rin = 1/gin` in parallel with `Cin`.
///
/// # Example
///
/// ```
/// use gabm_core::constructs::InputStageSpec;
///
/// # fn main() -> Result<(), gabm_core::CoreError> {
/// let spec = InputStageSpec::new("in", 1e-6, 5e-12);
/// let diagram = spec.diagram()?;
/// assert_eq!(diagram.symbol_count(), 7);
/// assert!(gabm_core::check_diagram(&diagram).is_consistent());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct InputStageSpec {
    /// External pin name.
    pub pin: String,
    /// Input conductance `gin = 1/Rin` (S).
    pub gin: f64,
    /// Input capacitance (F).
    pub cin: f64,
    /// Parameter-name prefix, letting several stages coexist in one model
    /// (empty = the paper's plain `gin` / `cin`).
    pub param_prefix: String,
}

impl InputStageSpec {
    /// Creates a spec with conductance `gin` and capacitance `cin`.
    pub fn new(pin: &str, gin: f64, cin: f64) -> Self {
        InputStageSpec {
            pin: pin.to_string(),
            gin,
            cin,
            param_prefix: String::new(),
        }
    }

    /// Builder-style parameter prefix (e.g. `"p"` → `pgin`, `pcin`).
    pub fn with_param_prefix(mut self, prefix: &str) -> Self {
        self.param_prefix = prefix.to_string();
        self
    }

    /// Equivalent input resistance in ohms.
    pub fn rin(&self) -> f64 {
        1.0 / self.gin
    }

    fn gin_name(&self) -> String {
        format!("{}gin", self.param_prefix)
    }

    fn cin_name(&self) -> String {
        format!("{}cin", self.param_prefix)
    }

    /// Builds the functional diagram.
    ///
    /// Symbol numbering matches the paper's §4.2 example: the probe is
    /// symbol 2 (`v2`), the differentiator symbol 4 (`yd4`), the two gains 5
    /// and 6, the adder 7.
    ///
    /// # Errors
    ///
    /// Propagates diagram-construction errors (none occur for valid specs).
    pub fn diagram(&self) -> Result<FunctionalDiagram, CoreError> {
        let mut d = FunctionalDiagram::new(&format!("input_stage_{}", self.pin));
        d.add_parameter(&self.gin_name(), self.gin, Dimension::CONDUCTANCE);
        d.add_parameter(&self.cin_name(), self.cin, Dimension::CAPACITANCE);
        // Order matters: ids appear in generated variable names.
        let pin = d.add_symbol(SymbolKind::Pin {
            name: self.pin.clone(),
        }); // 1
        let probe = d.add_symbol(SymbolKind::Probe {
            quantity: Dimension::VOLTAGE,
        }); // 2 → v2
        let gen = d.add_symbol(SymbolKind::Generator {
            quantity: Dimension::CURRENT,
        }); // 3 (current maker)
        let ddt = d.add_symbol(SymbolKind::Differentiator); // 4 → yd4
        let gain_c = d.add_symbol_with(
            SymbolKind::Gain,
            &[("a", PropertyValue::Param(self.cin_name()))],
            Some("Cin"),
        ); // 5 → yout5
        let gain_g = d.add_symbol_with(
            SymbolKind::Gain,
            &[("a", PropertyValue::Param(self.gin_name()))],
            Some("Gin"),
        ); // 6 → yout6
        let add = d.add_symbol(SymbolKind::Adder {
            signs: vec![true, true],
        }); // 7 → yout7

        let pin_port = d.port(pin, "pin")?;
        d.connect(pin_port, d.port(probe, "pin")?)?;
        d.connect(pin_port, d.port(gen, "pin")?)?;
        d.connect(d.port(probe, "out")?, d.port(ddt, "in")?)?;
        d.connect(d.port(ddt, "out")?, d.port(gain_c, "in")?)?;
        d.connect(d.port(probe, "out")?, d.port(gain_g, "in")?)?;
        d.connect(d.port(gain_c, "out")?, d.port(add, "in0")?)?;
        d.connect(d.port(gain_g, "out")?, d.port(add, "in1")?)?;
        d.connect(d.port(add, "out")?, d.port(gen, "in")?)?;
        // "A variable is delivered representing the voltage on the input
        // pin." The stage current is exposed too, for the power-supply
        // block's balance sheet (Fig. 4).
        d.expose("v", d.port(probe, "out")?)?;
        d.expose("iin", d.port(add, "out")?)?;
        Ok(d)
    }

    /// Builds the matching definition card.
    ///
    /// # Errors
    ///
    /// Propagates card validation errors (none occur for valid specs).
    pub fn card(&self) -> Result<DefinitionCard, CoreError> {
        DefinitionCard::builder(&format!("input_stage_{}", self.pin))
            .describe("single-ended input stage with input impedance Rin || Cin")
            .pin(&self.pin, PinDomain::Electrical, "signal input pin")
            .parameter(
                &self.gin_name(),
                self.gin,
                Dimension::CONDUCTANCE,
                "input conductance 1/Rin",
            )
            .parameter(
                &self.cin_name(),
                self.cin,
                Dimension::CAPACITANCE,
                "input capacitance",
            )
            .characteristic(
                "input impedance",
                CharacteristicClass::Primary,
                "Zin = Rin || 1/(s Cin)",
            )
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_diagram;

    #[test]
    fn paper_symbol_numbering() {
        let d = InputStageSpec::new("in", 1e-6, 5e-12).diagram().unwrap();
        // Probe is #2, differentiator #4, gains #5/#6, adder #7.
        assert_eq!(d.symbol_count(), 7);
        assert_eq!(
            d.symbol(crate::diagram::SymbolId(2)).unwrap().kind,
            SymbolKind::Probe {
                quantity: Dimension::VOLTAGE
            }
        );
        assert!(matches!(
            d.symbol(crate::diagram::SymbolId(4)).unwrap().kind,
            SymbolKind::Differentiator
        ));
        assert!(matches!(
            d.symbol(crate::diagram::SymbolId(7)).unwrap().kind,
            SymbolKind::Adder { .. }
        ));
    }

    #[test]
    fn diagram_is_consistent() {
        let d = InputStageSpec::new("in", 1e-6, 5e-12).diagram().unwrap();
        let r = check_diagram(&d);
        assert!(r.is_consistent(), "{:?}", r.diagnostics);
    }

    #[test]
    fn dimensions_flow_to_current() {
        let d = InputStageSpec::new("in", 1e-6, 5e-12).diagram().unwrap();
        let r = check_diagram(&d);
        // The adder output net (current generator input) must be CURRENT.
        let gen_in = d
            .net_of(d.port(crate::diagram::SymbolId(3), "in").unwrap())
            .unwrap();
        assert_eq!(r.net_dimensions.get(&gen_in.id), Some(&Dimension::CURRENT));
    }

    #[test]
    fn card_matches_diagram() {
        let spec = InputStageSpec::new("in", 1e-6, 5e-12);
        let card = spec.card().unwrap();
        let diagram = spec.diagram().unwrap();
        assert!(card.matches_diagram(&diagram).is_ok());
        assert!((spec.rin() - 1e6).abs() < 1.0);
    }

    #[test]
    fn prefix_namespaces_parameters() {
        let spec = InputStageSpec::new("inp", 1e-6, 5e-12).with_param_prefix("p_");
        let d = spec.diagram().unwrap();
        assert!(d.parameters().iter().any(|p| p.name == "p_gin"));
        assert!(d.parameters().iter().any(|p| p.name == "p_cin"));
    }

    #[test]
    fn exposes_voltage_variable() {
        let d = InputStageSpec::new("in", 1e-6, 5e-12).diagram().unwrap();
        let itf = d.interface_port("v").unwrap();
        assert_eq!(itf.dimension, Some(Dimension::VOLTAGE));
    }
}
