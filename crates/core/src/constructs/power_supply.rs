//! The power-supply construct (paper Fig. 4).
//!
//! "The power supply block includes both usual power supply pins and a
//! polarization pin. The polarization current is computed near to an
//! operating point which depends on the voltage read on the pin. The
//! currents on the other pins are computed by drawing the balance sheet of
//! all the currents in the model: all the currents that flow out of the
//! model (except through VSS) originate at VDD; all the currents that flow
//! into the model (except through VDD) go to VSS. An additional loss current
//! is defined as a parameter."

use crate::card::{CharacteristicClass, DefinitionCard, PinDomain};
use crate::diagram::FunctionalDiagram;
use crate::quantity::Dimension;
use crate::symbol::{PropertyValue, SymbolKind};
use crate::CoreError;

/// Parameterized builder of the Fig. 4 power-supply block.
///
/// Stage currents (`i_k` = current into the model at each signal pin, the
/// `curr.on` receptor convention) are fed in through exposed input ports.
/// Each is split by a separator element: negative parts (current sourced by
/// the model) are drawn from VDD, positive parts (current absorbed by the
/// model) are returned to VSS:
///
/// ```text
/// i_vdd = iloss + ipol − Σ min(i_k, 0)
/// i_vss = −iloss − ipol − Σ max(i_k, 0)
/// ```
///
/// which guarantees `i_vdd + i_vss + Σ i_k = 0` — the balance sheet.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerSupplySpec {
    /// Positive supply pin name.
    pub vdd_pin: String,
    /// Negative supply pin name.
    pub vss_pin: String,
    /// Polarization conductance: `ipol = gpol·(vdd − vss)` near the
    /// operating point (S).
    pub gpol: f64,
    /// Constant loss current (A).
    pub iloss: f64,
    /// Number of monitored stage currents.
    pub n_stages: usize,
}

impl PowerSupplySpec {
    /// Creates a spec with `n_stages` monitored stage currents.
    pub fn new(vdd_pin: &str, vss_pin: &str, gpol: f64, iloss: f64, n_stages: usize) -> Self {
        PowerSupplySpec {
            vdd_pin: vdd_pin.to_string(),
            vss_pin: vss_pin.to_string(),
            gpol,
            iloss,
            n_stages,
        }
    }

    /// Builds the functional diagram. Stage currents enter through exposed
    /// input ports `istage0…istage{n-1}`.
    ///
    /// # Errors
    ///
    /// Propagates diagram-construction errors (none occur for valid specs).
    pub fn diagram(&self) -> Result<FunctionalDiagram, CoreError> {
        let mut d = FunctionalDiagram::new("power_supply");
        d.add_parameter("gpol", self.gpol, Dimension::CONDUCTANCE);
        d.add_parameter("iloss", self.iloss, Dimension::CURRENT);

        let vdd = d.add_symbol(SymbolKind::Pin {
            name: self.vdd_pin.clone(),
        });
        let vdd_probe = d.add_symbol(SymbolKind::Probe {
            quantity: Dimension::VOLTAGE,
        });
        let vdd_gen = d.add_symbol(SymbolKind::Generator {
            quantity: Dimension::CURRENT,
        });
        let vss = d.add_symbol(SymbolKind::Pin {
            name: self.vss_pin.clone(),
        });
        let vss_probe = d.add_symbol(SymbolKind::Probe {
            quantity: Dimension::VOLTAGE,
        });
        let vss_gen = d.add_symbol(SymbolKind::Generator {
            quantity: Dimension::CURRENT,
        });
        d.connect(d.port(vdd, "pin")?, d.port(vdd_probe, "pin")?)?;
        d.connect(d.port(vdd, "pin")?, d.port(vdd_gen, "pin")?)?;
        d.connect(d.port(vss, "pin")?, d.port(vss_probe, "pin")?)?;
        d.connect(d.port(vss, "pin")?, d.port(vss_gen, "pin")?)?;

        // Polarization current near the operating point: gpol·(vdd − vss).
        let vsup = d.add_symbol(SymbolKind::Adder {
            signs: vec![true, false],
        });
        d.connect(d.port(vdd_probe, "out")?, d.port(vsup, "in0")?)?;
        d.connect(d.port(vss_probe, "out")?, d.port(vsup, "in1")?)?;
        let gpol = d.add_symbol_with(
            SymbolKind::Gain,
            &[("a", PropertyValue::Param("gpol".into()))],
            Some("polarization"),
        );
        d.connect(d.port(vsup, "out")?, d.port(gpol, "in")?)?;

        // Loss current parameter.
        let iloss = d.add_symbol(SymbolKind::Parameter {
            param: "iloss".into(),
            dimension: Dimension::CURRENT,
        });

        // Split each stage current into sourced (negative) and absorbed
        // (positive) parts.
        let mut separators = Vec::new();
        for _ in 0..self.n_stages {
            separators.push(d.add_symbol(SymbolKind::Separator));
        }

        // VDD balance: iloss + ipol − Σ neg_k.
        let mut vdd_signs = vec![true, true];
        vdd_signs.extend(std::iter::repeat_n(false, self.n_stages));
        let vdd_sum = d.add_symbol(SymbolKind::Adder { signs: vdd_signs });
        d.connect(d.port(iloss, "out")?, d.port(vdd_sum, "in0")?)?;
        d.connect(d.port(gpol, "out")?, d.port(vdd_sum, "in1")?)?;
        for (k, sep) in separators.iter().enumerate() {
            d.connect(
                d.port(*sep, "neg")?,
                d.port(vdd_sum, &format!("in{}", k + 2))?,
            )?;
        }
        d.connect(d.port(vdd_sum, "out")?, d.port(vdd_gen, "in")?)?;

        // VSS balance: −iloss − ipol − Σ pos_k.
        let mut vss_signs = vec![false, false];
        vss_signs.extend(std::iter::repeat_n(false, self.n_stages));
        let vss_sum = d.add_symbol(SymbolKind::Adder { signs: vss_signs });
        d.connect(d.port(iloss, "out")?, d.port(vss_sum, "in0")?)?;
        d.connect(d.port(gpol, "out")?, d.port(vss_sum, "in1")?)?;
        for (k, sep) in separators.iter().enumerate() {
            d.connect(
                d.port(*sep, "pos")?,
                d.port(vss_sum, &format!("in{}", k + 2))?,
            )?;
        }
        d.connect(d.port(vss_sum, "out")?, d.port(vss_gen, "in")?)?;

        // Expose the stage-current inputs.
        for (k, sep) in separators.iter().enumerate() {
            d.expose(&format!("istage{k}"), d.port(*sep, "in")?)?;
        }
        Ok(d)
    }

    /// Builds the matching definition card.
    ///
    /// # Errors
    ///
    /// Propagates card validation errors (none occur for valid specs).
    pub fn card(&self) -> Result<DefinitionCard, CoreError> {
        DefinitionCard::builder("power_supply")
            .describe("power supply block: polarization current + current balance sheet")
            .pin(&self.vdd_pin, PinDomain::Electrical, "positive supply")
            .pin(&self.vss_pin, PinDomain::Electrical, "negative supply")
            .parameter(
                "gpol",
                self.gpol,
                Dimension::CONDUCTANCE,
                "polarization conductance near the operating point",
            )
            .parameter("iloss", self.iloss, Dimension::CURRENT, "loss current")
            .characteristic(
                "supply current",
                CharacteristicClass::SecondOrder,
                "polarization + loss + stage balance",
            )
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_diagram;

    #[test]
    fn diagram_is_consistent() {
        let d = PowerSupplySpec::new("vdd", "vss", 1e-5, 1e-4, 2)
            .diagram()
            .unwrap();
        let r = check_diagram(&d);
        assert!(r.is_consistent(), "{:?}", r.diagnostics);
    }

    #[test]
    fn stage_inputs_exposed() {
        let d = PowerSupplySpec::new("vdd", "vss", 1e-5, 1e-4, 3)
            .diagram()
            .unwrap();
        for k in 0..3 {
            assert!(d.interface_port(&format!("istage{k}")).is_ok());
        }
        assert!(d.interface_port("istage3").is_err());
    }

    #[test]
    fn zero_stage_block_still_balances() {
        let d = PowerSupplySpec::new("vdd", "vss", 1e-5, 0.0, 0)
            .diagram()
            .unwrap();
        let r = check_diagram(&d);
        assert!(r.is_consistent(), "{:?}", r.diagnostics);
    }

    #[test]
    fn separator_count_matches_stages() {
        let d = PowerSupplySpec::new("vdd", "vss", 1e-5, 1e-4, 4)
            .diagram()
            .unwrap();
        let seps = d
            .symbols()
            .filter(|s| matches!(s.kind, SymbolKind::Separator))
            .count();
        assert_eq!(seps, 4);
    }

    #[test]
    fn card_matches() {
        let spec = PowerSupplySpec::new("vdd", "vss", 1e-5, 1e-4, 1);
        let card = spec.card().unwrap();
        assert!(card.matches_diagram(&spec.diagram().unwrap()).is_ok());
        assert_eq!(card.pins().len(), 2);
    }

    #[test]
    fn current_dimensions_inferred() {
        let d = PowerSupplySpec::new("vdd", "vss", 1e-5, 1e-4, 1)
            .diagram()
            .unwrap();
        let r = check_diagram(&d);
        // All adder outputs driving generators are CURRENT.
        for sym in d.symbols() {
            if matches!(sym.kind, SymbolKind::Generator { .. }) {
                let net = d
                    .net_of(crate::diagram::PortRef {
                        symbol: crate::diagram::SymbolId(sym.id),
                        port: 1,
                    })
                    .unwrap();
                assert_eq!(
                    r.net_dimensions.get(&net.id),
                    Some(&Dimension::CURRENT),
                    "generator {} input",
                    sym.id
                );
            }
        }
    }
}
