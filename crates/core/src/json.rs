//! Self-contained JSON support: value model, parser, writer, and
//! serialization of every persistable core type.
//!
//! The workspace builds in fully offline environments, so it cannot rely on
//! `serde`/`serde_json`; this module provides the small subset the project
//! needs — diagram/card/library persistence and the machine-readable output
//! of `gabm lint --format json`. The encoding matches what the previous
//! serde derives produced (externally tagged enums, unit variants as bare
//! strings), so documents written by earlier versions load unchanged.

use crate::card::{
    Characteristic, CharacteristicClass, DefinitionCard, ParamDecl, PinDecl, PinDomain,
};
use crate::diagram::{
    FunctionalDiagram, InterfacePort, Net, NetId, ParameterDecl, PortRef, SymbolId,
};
use crate::library::{ModelEntry, ModelLibrary, ParameterSet};
use crate::quantity::{Dimension, Quantity};
use crate::symbol::{FuncKind, PortDirection, PropertyValue, SimVar, Symbol, SymbolKind};
use std::collections::BTreeMap;
use std::fmt;

/// A JSON document. Object fields keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always held as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

/// Errors from parsing or decoding JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonError {
    /// Text was not syntactically valid JSON.
    Parse {
        /// Byte offset of the failure.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// Valid JSON that does not match the expected shape.
    Schema(String),
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Parse { offset, message } => {
                write!(f, "JSON parse error at byte {offset}: {message}")
            }
            JsonError::Schema(msg) => write!(f, "JSON schema error: {msg}"),
        }
    }
}

impl std::error::Error for JsonError {}

pub(crate) fn schema(msg: impl Into<String>) -> JsonError {
    JsonError::Schema(msg.into())
}

impl Value {
    /// Builds an object value from `(key, value)` pairs.
    pub fn object(fields: Vec<(&str, Value)>) -> Value {
        Value::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Builds a string value.
    pub fn string(s: impl Into<String>) -> Value {
        Value::String(s.into())
    }

    /// Field of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required object field.
    ///
    /// # Errors
    ///
    /// [`JsonError::Schema`] if missing or not an object.
    pub fn req(&self, key: &str) -> Result<&Value, JsonError> {
        self.get(key)
            .ok_or_else(|| schema(format!("missing field '{key}'")))
    }

    /// The number held, if any.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string held, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The bool held, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array held, if any.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object fields held, if any.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    pub(crate) fn num(&self) -> Result<f64, JsonError> {
        self.as_f64().ok_or_else(|| schema("expected a number"))
    }

    pub(crate) fn str(&self) -> Result<&str, JsonError> {
        self.as_str().ok_or_else(|| schema("expected a string"))
    }

    pub(crate) fn arr(&self) -> Result<&[Value], JsonError> {
        self.as_array().ok_or_else(|| schema("expected an array"))
    }

    pub(crate) fn usize_field(&self, key: &str) -> Result<usize, JsonError> {
        let n = self.req(key)?.num()?;
        if n < 0.0 || n.fract() != 0.0 {
            return Err(schema(format!("field '{key}' is not an unsigned integer")));
        }
        Ok(n as usize)
    }

    /// Parses JSON text.
    ///
    /// # Errors
    ///
    /// [`JsonError::Parse`] with the byte offset of the failure.
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Renders with two-space indentation (for human-facing output).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&format_json_number(*n)),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => write_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                items[i].write(out, ind);
            }),
            Value::Object(fields) => {
                write_seq(out, indent, '{', '}', fields.len(), |out, i, ind| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if ind.is_some() {
                        out.push(' ');
                    }
                    v.write(out, ind);
                })
            }
        }
    }
}

impl fmt::Display for Value {
    /// Compact (single-line) rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None);
        write!(f, "{out}")
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|d| d + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(d) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(d));
        }
        item(out, i, inner);
    }
    if let Some(d) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(d));
    }
    out.push(close);
}

/// Formats a finite `f64` as a JSON number that parses back exactly
/// (Rust's shortest-roundtrip `Display`, with exponent notation for
/// extreme magnitudes). Non-finite values have no JSON encoding and are
/// written as `null`.
fn format_json_number(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    let a = v.abs();
    if a != 0.0 && !(1e-5..1e17).contains(&a) {
        format!("{v:e}")
    } else {
        format!("{v}")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError::Parse {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{0008}'),
            b'f' => out.push('\u{000C}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: expect a matching \uXXXX low half.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00) & 0x3FF)
                    } else {
                        return Err(self.err("lone surrogate in \\u escape"));
                    }
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| self.err("invalid \\u escape"))?);
            }
            _ => return Err(self.err("unknown escape character")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit in \\u escape"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err(format!("bad number '{text}'")))
    }
}

/// Conversion into a JSON [`Value`].
pub trait ToJson {
    /// The JSON form of `self`.
    fn to_json(&self) -> Value;
}

/// Conversion back from a JSON [`Value`].
pub trait FromJson: Sized {
    /// Decodes `value`.
    ///
    /// # Errors
    ///
    /// [`JsonError::Schema`] if the value does not have the expected shape.
    fn from_json(value: &Value) -> Result<Self, JsonError>;
}

/// Serializes to a compact JSON string.
pub fn to_string<T: ToJson>(value: &T) -> String {
    value.to_json().to_string()
}

/// Serializes to indented JSON.
pub fn to_string_pretty<T: ToJson>(value: &T) -> String {
    value.to_json().to_pretty()
}

/// Parses and decodes in one step.
///
/// # Errors
///
/// [`JsonError`] on malformed text or mismatched shape.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&Value::parse(text)?)
}

// ---------------------------------------------------------------------------
// Primitive impls.

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Number(*self)
    }
}

impl FromJson for f64 {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        value.num()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        value.as_bool().ok_or_else(|| schema("expected a bool"))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl FromJson for String {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        Ok(value.str()?.to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        value.arr()?.iter().map(T::from_json).collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        match value {
            Value::Null => Ok(None),
            v => Ok(Some(T::from_json(v)?)),
        }
    }
}

// ---------------------------------------------------------------------------
// Quantities.

impl ToJson for Dimension {
    fn to_json(&self) -> Value {
        Value::object(vec![
            ("m", Value::Number(self.m as f64)),
            ("kg", Value::Number(self.kg as f64)),
            ("s", Value::Number(self.s as f64)),
            ("a", Value::Number(self.a as f64)),
            ("k", Value::Number(self.k as f64)),
        ])
    }
}

impl FromJson for Dimension {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let exp = |key: &str| -> Result<i8, JsonError> {
            let n = value.req(key)?.num()?;
            if n.fract() != 0.0 || !(-128.0..=127.0).contains(&n) {
                return Err(schema(format!("dimension exponent '{key}' out of range")));
            }
            Ok(n as i8)
        };
        Ok(Dimension::new(
            exp("m")?,
            exp("kg")?,
            exp("s")?,
            exp("a")?,
            exp("k")?,
        ))
    }
}

impl ToJson for Quantity {
    fn to_json(&self) -> Value {
        Value::object(vec![
            ("value", Value::Number(self.value)),
            ("dimension", self.dimension.to_json()),
        ])
    }
}

impl FromJson for Quantity {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        Ok(Quantity::new(
            value.req("value")?.num()?,
            Dimension::from_json(value.req("dimension")?)?,
        ))
    }
}

// ---------------------------------------------------------------------------
// Symbols.

/// Encodes a C-like enum as its variant name; decodes by exact match.
macro_rules! string_enum_json {
    ($ty:ty { $($variant:ident),+ $(,)? }) => {
        impl ToJson for $ty {
            fn to_json(&self) -> Value {
                let name = match self {
                    $(<$ty>::$variant => stringify!($variant),)+
                };
                Value::string(name)
            }
        }

        impl FromJson for $ty {
            fn from_json(value: &Value) -> Result<Self, JsonError> {
                match value.str()? {
                    $(stringify!($variant) => Ok(<$ty>::$variant),)+
                    other => Err(schema(format!(
                        concat!("unknown ", stringify!($ty), " '{}'"),
                        other
                    ))),
                }
            }
        }
    };
}

string_enum_json!(PortDirection {
    Input,
    Output,
    Bidir
});
string_enum_json!(SimVar {
    Time,
    Temperature,
    TimeStep
});
string_enum_json!(FuncKind {
    Sin,
    Cos,
    Exp,
    Ln,
    Abs,
    Sqrt,
    Tanh,
    Atan,
    Min,
    Max,
    Pow,
});
string_enum_json!(PinDomain {
    Electrical,
    RotationalMechanical,
    Thermal,
});
string_enum_json!(CharacteristicClass {
    Primary,
    SecondOrder
});

impl ToJson for PropertyValue {
    fn to_json(&self) -> Value {
        match self {
            PropertyValue::Number(v) => Value::object(vec![("Number", Value::Number(*v))]),
            PropertyValue::Param(p) => Value::object(vec![("Param", Value::string(p))]),
            PropertyValue::NegParam(p) => Value::object(vec![("NegParam", Value::string(p))]),
        }
    }
}

impl FromJson for PropertyValue {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        if let Some(v) = value.get("Number") {
            Ok(PropertyValue::Number(v.num()?))
        } else if let Some(v) = value.get("Param") {
            Ok(PropertyValue::Param(v.str()?.to_string()))
        } else if let Some(v) = value.get("NegParam") {
            Ok(PropertyValue::NegParam(v.str()?.to_string()))
        } else {
            Err(schema("unknown PropertyValue variant"))
        }
    }
}

impl ToJson for SymbolKind {
    fn to_json(&self) -> Value {
        let tagged = |tag: &str, fields: Vec<(&str, Value)>| {
            Value::object(vec![(tag, Value::object(fields))])
        };
        match self {
            SymbolKind::Pin { name } => tagged("Pin", vec![("name", Value::string(name))]),
            SymbolKind::Probe { quantity } => {
                tagged("Probe", vec![("quantity", quantity.to_json())])
            }
            SymbolKind::Generator { quantity } => {
                tagged("Generator", vec![("quantity", quantity.to_json())])
            }
            SymbolKind::Parameter { param, dimension } => tagged(
                "Parameter",
                vec![
                    ("param", Value::string(param)),
                    ("dimension", dimension.to_json()),
                ],
            ),
            SymbolKind::SimVariable { var } => tagged("SimVariable", vec![("var", var.to_json())]),
            SymbolKind::Constant { value } => {
                tagged("Constant", vec![("value", Value::Number(*value))])
            }
            SymbolKind::Gain => Value::string("Gain"),
            SymbolKind::Limiter => Value::string("Limiter"),
            SymbolKind::Differentiator => Value::string("Differentiator"),
            SymbolKind::Integrator => Value::string("Integrator"),
            SymbolKind::Delay => Value::string("Delay"),
            SymbolKind::UnitDelay => Value::string("UnitDelay"),
            SymbolKind::TransferFunction { num, den } => tagged(
                "TransferFunction",
                vec![("num", num.to_json()), ("den", den.to_json())],
            ),
            SymbolKind::Adder { signs } => tagged("Adder", vec![("signs", signs.to_json())]),
            SymbolKind::Multiplier { ops } => tagged("Multiplier", vec![("ops", ops.to_json())]),
            SymbolKind::Separator => Value::string("Separator"),
            SymbolKind::Function { func } => tagged("Function", vec![("func", func.to_json())]),
            SymbolKind::Hierarchical { name, diagram } => tagged(
                "Hierarchical",
                vec![
                    ("name", Value::string(name)),
                    ("diagram", diagram.to_json()),
                ],
            ),
        }
    }
}

impl FromJson for SymbolKind {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        if let Some(unit) = value.as_str() {
            return match unit {
                "Gain" => Ok(SymbolKind::Gain),
                "Limiter" => Ok(SymbolKind::Limiter),
                "Differentiator" => Ok(SymbolKind::Differentiator),
                "Integrator" => Ok(SymbolKind::Integrator),
                "Delay" => Ok(SymbolKind::Delay),
                "UnitDelay" => Ok(SymbolKind::UnitDelay),
                "Separator" => Ok(SymbolKind::Separator),
                other => Err(schema(format!("unknown SymbolKind '{other}'"))),
            };
        }
        let fields = value
            .as_object()
            .ok_or_else(|| schema("SymbolKind must be a string or one-key object"))?;
        let (tag, body) = fields
            .first()
            .ok_or_else(|| schema("empty SymbolKind object"))?;
        match tag.as_str() {
            "Pin" => Ok(SymbolKind::Pin {
                name: body.req("name")?.str()?.to_string(),
            }),
            "Probe" => Ok(SymbolKind::Probe {
                quantity: Dimension::from_json(body.req("quantity")?)?,
            }),
            "Generator" => Ok(SymbolKind::Generator {
                quantity: Dimension::from_json(body.req("quantity")?)?,
            }),
            "Parameter" => Ok(SymbolKind::Parameter {
                param: body.req("param")?.str()?.to_string(),
                dimension: Dimension::from_json(body.req("dimension")?)?,
            }),
            "SimVariable" => Ok(SymbolKind::SimVariable {
                var: SimVar::from_json(body.req("var")?)?,
            }),
            "Constant" => Ok(SymbolKind::Constant {
                value: body.req("value")?.num()?,
            }),
            "TransferFunction" => Ok(SymbolKind::TransferFunction {
                num: Vec::from_json(body.req("num")?)?,
                den: Vec::from_json(body.req("den")?)?,
            }),
            "Adder" => Ok(SymbolKind::Adder {
                signs: Vec::from_json(body.req("signs")?)?,
            }),
            "Multiplier" => Ok(SymbolKind::Multiplier {
                ops: Vec::from_json(body.req("ops")?)?,
            }),
            "Function" => Ok(SymbolKind::Function {
                func: FuncKind::from_json(body.req("func")?)?,
            }),
            "Hierarchical" => Ok(SymbolKind::Hierarchical {
                name: body.req("name")?.str()?.to_string(),
                diagram: Box::new(FunctionalDiagram::from_json(body.req("diagram")?)?),
            }),
            other => Err(schema(format!("unknown SymbolKind '{other}'"))),
        }
    }
}

impl ToJson for Symbol {
    fn to_json(&self) -> Value {
        let properties = Value::Object(
            self.properties
                .iter()
                .map(|(k, v)| (k.clone(), v.to_json()))
                .collect(),
        );
        Value::object(vec![
            ("id", Value::Number(self.id as f64)),
            ("kind", self.kind.to_json()),
            ("properties", properties),
            ("label", self.label.to_json()),
        ])
    }
}

impl FromJson for Symbol {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let mut properties = BTreeMap::new();
        for (k, v) in value
            .req("properties")?
            .as_object()
            .ok_or_else(|| schema("'properties' must be an object"))?
        {
            properties.insert(k.clone(), PropertyValue::from_json(v)?);
        }
        Ok(Symbol {
            id: value.usize_field("id")?,
            kind: SymbolKind::from_json(value.req("kind")?)?,
            properties,
            label: Option::from_json(value.req("label")?)?,
        })
    }
}

// ---------------------------------------------------------------------------
// Diagrams.

impl ToJson for PortRef {
    fn to_json(&self) -> Value {
        Value::object(vec![
            ("symbol", Value::Number(self.symbol.0 as f64)),
            ("port", Value::Number(self.port as f64)),
        ])
    }
}

impl FromJson for PortRef {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        Ok(PortRef {
            symbol: SymbolId(value.usize_field("symbol")?),
            port: value.usize_field("port")?,
        })
    }
}

impl ToJson for Net {
    fn to_json(&self) -> Value {
        Value::object(vec![
            ("id", Value::Number(self.id.0 as f64)),
            ("name", self.name.to_json()),
            ("ports", self.ports.to_json()),
        ])
    }
}

impl FromJson for Net {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        Ok(Net {
            id: NetId(value.usize_field("id")?),
            name: Option::from_json(value.req("name")?)?,
            ports: Vec::from_json(value.req("ports")?)?,
        })
    }
}

impl ToJson for InterfacePort {
    fn to_json(&self) -> Value {
        Value::object(vec![
            ("name", Value::string(&self.name)),
            ("direction", self.direction.to_json()),
            ("dimension", self.dimension.to_json()),
            ("inner", self.inner.to_json()),
        ])
    }
}

impl FromJson for InterfacePort {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        Ok(InterfacePort {
            name: value.req("name")?.str()?.to_string(),
            direction: PortDirection::from_json(value.req("direction")?)?,
            dimension: Option::from_json(value.req("dimension")?)?,
            inner: PortRef::from_json(value.req("inner")?)?,
        })
    }
}

impl ToJson for ParameterDecl {
    fn to_json(&self) -> Value {
        Value::object(vec![
            ("name", Value::string(&self.name)),
            ("default", Value::Number(self.default)),
            ("dimension", self.dimension.to_json()),
        ])
    }
}

impl FromJson for ParameterDecl {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        Ok(ParameterDecl {
            name: value.req("name")?.str()?.to_string(),
            default: value.req("default")?.num()?,
            dimension: Dimension::from_json(value.req("dimension")?)?,
        })
    }
}

impl ToJson for FunctionalDiagram {
    fn to_json(&self) -> Value {
        // `nets` is written as a sparse array (merged nets leave `null`
        // holes) because `NetId`s index into it.
        let nets = Value::Array(self.nets_raw().iter().map(ToJson::to_json).collect());
        Value::object(vec![
            ("name", Value::string(self.name())),
            (
                "symbols",
                Value::Array(self.symbols().map(ToJson::to_json).collect()),
            ),
            ("nets", nets),
            ("interface", self.interface().to_vec().to_json()),
            ("parameters", self.parameters().to_vec().to_json()),
        ])
    }
}

impl FromJson for FunctionalDiagram {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        Ok(FunctionalDiagram::from_parts(
            value.req("name")?.str()?.to_string(),
            Vec::from_json(value.req("symbols")?)?,
            Vec::from_json(value.req("nets")?)?,
            Vec::from_json(value.req("interface")?)?,
            Vec::from_json(value.req("parameters")?)?,
        ))
    }
}

// ---------------------------------------------------------------------------
// Definition cards.

impl ToJson for PinDecl {
    fn to_json(&self) -> Value {
        Value::object(vec![
            ("name", Value::string(&self.name)),
            ("domain", self.domain.to_json()),
            ("description", Value::string(&self.description)),
        ])
    }
}

impl FromJson for PinDecl {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        Ok(PinDecl {
            name: value.req("name")?.str()?.to_string(),
            domain: PinDomain::from_json(value.req("domain")?)?,
            description: value.req("description")?.str()?.to_string(),
        })
    }
}

impl ToJson for ParamDecl {
    fn to_json(&self) -> Value {
        Value::object(vec![
            ("name", Value::string(&self.name)),
            ("default", Value::Number(self.default)),
            ("dimension", self.dimension.to_json()),
            ("description", Value::string(&self.description)),
        ])
    }
}

impl FromJson for ParamDecl {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        Ok(ParamDecl {
            name: value.req("name")?.str()?.to_string(),
            default: value.req("default")?.num()?,
            dimension: Dimension::from_json(value.req("dimension")?)?,
            description: value.req("description")?.str()?.to_string(),
        })
    }
}

impl ToJson for Characteristic {
    fn to_json(&self) -> Value {
        Value::object(vec![
            ("name", Value::string(&self.name)),
            ("class", self.class.to_json()),
            ("description", Value::string(&self.description)),
        ])
    }
}

impl FromJson for Characteristic {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        Ok(Characteristic {
            name: value.req("name")?.str()?.to_string(),
            class: CharacteristicClass::from_json(value.req("class")?)?,
            description: value.req("description")?.str()?.to_string(),
        })
    }
}

impl ToJson for DefinitionCard {
    fn to_json(&self) -> Value {
        Value::object(vec![
            ("name", Value::string(self.name())),
            ("description", Value::string(self.description())),
            (
                "symbol_art",
                self.symbol_art().map(str::to_string).to_json(),
            ),
            ("pins", self.pins().to_vec().to_json()),
            ("parameters", self.parameters().to_vec().to_json()),
            ("characteristics", self.characteristics().to_vec().to_json()),
        ])
    }
}

impl FromJson for DefinitionCard {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        Ok(DefinitionCard::from_parts(
            value.req("name")?.str()?.to_string(),
            value.req("description")?.str()?.to_string(),
            Option::from_json(value.req("symbol_art")?)?,
            Vec::from_json(value.req("pins")?)?,
            Vec::from_json(value.req("parameters")?)?,
            Vec::from_json(value.req("characteristics")?)?,
        ))
    }
}

// ---------------------------------------------------------------------------
// Libraries.

impl ToJson for ParameterSet {
    fn to_json(&self) -> Value {
        let values = Value::Object(
            self.values
                .iter()
                .map(|(k, v)| (k.clone(), Value::Number(*v)))
                .collect(),
        );
        Value::object(vec![
            ("name", Value::string(&self.name)),
            ("values", values),
            ("provenance", Value::string(&self.provenance)),
        ])
    }
}

impl FromJson for ParameterSet {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let mut values = BTreeMap::new();
        for (k, v) in value
            .req("values")?
            .as_object()
            .ok_or_else(|| schema("'values' must be an object"))?
        {
            values.insert(k.clone(), v.num()?);
        }
        Ok(ParameterSet {
            name: value.req("name")?.str()?.to_string(),
            values,
            provenance: value.req("provenance")?.str()?.to_string(),
        })
    }
}

impl ToJson for ModelEntry {
    fn to_json(&self) -> Value {
        Value::object(vec![
            ("card", self.card.to_json()),
            ("diagram", self.diagram.to_json()),
            ("parameter_sets", self.parameter_sets.to_json()),
        ])
    }
}

impl FromJson for ModelEntry {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        Ok(ModelEntry {
            card: DefinitionCard::from_json(value.req("card")?)?,
            diagram: FunctionalDiagram::from_json(value.req("diagram")?)?,
            parameter_sets: Vec::from_json(value.req("parameter_sets")?)?,
        })
    }
}

impl ToJson for ModelLibrary {
    fn to_json(&self) -> Value {
        Value::object(vec![(
            "entries",
            Value::Array(self.iter().map(ToJson::to_json).collect()),
        )])
    }
}

impl FromJson for ModelLibrary {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        Ok(ModelLibrary::from_entries(Vec::from_json(
            value.req("entries")?,
        )?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse("true").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse(" -12.5e-1 ").unwrap(), Value::Number(-1.25));
        assert_eq!(
            Value::parse(r#""a\nbé""#).unwrap(),
            Value::String("a\nbé".into())
        );
    }

    #[test]
    fn parse_nested() {
        let v = Value::parse(r#"{"a": [1, null, {"b": false}], "c": ""}"#).unwrap();
        assert_eq!(v.req("a").unwrap().arr().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().as_str(), Some(""));
        assert!(v.get("zz").is_none());
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "1 2", "\"unterminated", "nul"] {
            assert!(Value::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = Value::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn writer_roundtrips_values() {
        let v = Value::parse(r#"{"s":"q\"\\","n":5e-12,"a":[true,null],"o":{}}"#).unwrap();
        let compact = v.to_string();
        assert_eq!(Value::parse(&compact).unwrap(), v);
        let pretty = v.to_pretty();
        assert_eq!(Value::parse(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn number_formatting_roundtrips() {
        for x in [0.0, -0.0, 1.0, 5e-12, 1.5e17, -3.25, 123456.789, 1e-300] {
            let s = format_json_number(x);
            assert_eq!(s.parse::<f64>().unwrap(), x, "{s}");
        }
        assert_eq!(format_json_number(f64::NAN), "null");
    }

    #[test]
    fn dimension_roundtrip() {
        let d = Dimension::VOLTAGE;
        let back: Dimension = from_str(&to_string(&d)).unwrap();
        assert_eq!(back, d);
    }
}
