//! Graphical Building Symbols (GBS) — the primary elements of the formalism
//! (§3.1 of the paper).
//!
//! Four families are defined, exactly following the paper:
//!
//! * **interface elements** (§3.1a): pins, probes, generators, parameter
//!   symbols and simulation-variable symbols;
//! * **function elements** (§3.1b): linear and non-linear gains and the
//!   time/frequency blocks (differentiation, integration, delay, transfer
//!   function) plus the one-simulation-step delay used by the slew-rate
//!   construct;
//! * **mathematical elements** (§3.1c): adders and multipliers with signed /
//!   divided inputs, and the separator that splits a signal into its
//!   positive and negative parts;
//! * **function generation elements** (§3.1d): sin, cos, exp, ….

use crate::quantity::Dimension;
use std::collections::BTreeMap;
use std::fmt;

/// Direction of a symbol port (§3.2: "Some ports consume signals … while
/// some other deliver signals").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDirection {
    /// Consumes a signal.
    Input,
    /// Delivers a signal (at most one per net).
    Output,
    /// Bidirectional pin connection (exempt from the single-driver rule).
    Bidir,
}

/// A port template of a symbol kind.
#[derive(Debug, Clone, PartialEq)]
pub struct PortSpec {
    /// Port name, unique within the symbol.
    pub name: String,
    /// Signal direction.
    pub direction: PortDirection,
    /// Physical dimension carried, when fixed by the symbol's semantics.
    pub dimension: Option<Dimension>,
}

impl PortSpec {
    fn new(name: &str, direction: PortDirection, dimension: Option<Dimension>) -> Self {
        PortSpec {
            name: name.to_string(),
            direction,
            dimension,
        }
    }
}

/// Simulator-internal variables exposed to models (§3.1a: "Simulation
/// variable symbols make the simulator's internal quantities like time or
/// temperature available to the model").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimVar {
    /// Simulated time (s).
    Time,
    /// Analysis temperature (K).
    Temperature,
    /// Current time step of the simulation engine (s) — the quantity the
    /// slew-rate construct divides by.
    TimeStep,
}

impl SimVar {
    /// Physical dimension of the variable.
    pub fn dimension(&self) -> Dimension {
        match self {
            SimVar::Time | SimVar::TimeStep => Dimension::TIME,
            SimVar::Temperature => Dimension::TEMPERATURE,
        }
    }

    /// Identifier of the variable in generated code.
    pub fn code_name(&self) -> &'static str {
        match self {
            SimVar::Time => "time",
            SimVar::Temperature => "temp",
            SimVar::TimeStep => "timestep",
        }
    }
}

/// Function-generation elements (§3.1d).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuncKind {
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Exponential.
    Exp,
    /// Natural logarithm.
    Ln,
    /// Absolute value.
    Abs,
    /// Square root.
    Sqrt,
    /// Hyperbolic tangent.
    Tanh,
    /// Arc tangent.
    Atan,
    /// Two-argument minimum.
    Min,
    /// Two-argument maximum.
    Max,
    /// Power `x^y`.
    Pow,
}

impl FuncKind {
    /// Number of input ports.
    pub fn arity(&self) -> usize {
        match self {
            FuncKind::Min | FuncKind::Max | FuncKind::Pow => 2,
            _ => 1,
        }
    }

    /// Name of the function in generated code.
    pub fn code_name(&self) -> &'static str {
        match self {
            FuncKind::Sin => "sin",
            FuncKind::Cos => "cos",
            FuncKind::Exp => "exp",
            FuncKind::Ln => "ln",
            FuncKind::Abs => "abs",
            FuncKind::Sqrt => "sqrt",
            FuncKind::Tanh => "tanh",
            FuncKind::Atan => "atan",
            FuncKind::Min => "min",
            FuncKind::Max => "max",
            FuncKind::Pow => "pow",
        }
    }
}

/// Value of a symbol property: either a literal or a reference to one of the
/// model's parameters (the definition card supplies defaults).
#[derive(Debug, Clone, PartialEq)]
pub enum PropertyValue {
    /// Literal number.
    Number(f64),
    /// Reference to a model parameter by name.
    Param(String),
    /// Negated reference to a model parameter (`-name`) — used e.g. for the
    /// slew-rate limiter's lower bound, `min = −max_fall_rate`.
    NegParam(String),
}

impl PropertyValue {
    /// Expression text of the property for code generation.
    pub fn code_expr(&self) -> String {
        match self {
            PropertyValue::Number(v) => format_number(*v),
            PropertyValue::Param(p) => p.clone(),
            PropertyValue::NegParam(p) => format!("(-{p})"),
        }
    }

    /// Resolves the numeric value given the model's parameter values.
    pub fn resolve(&self, params: &BTreeMap<String, f64>) -> Option<f64> {
        match self {
            PropertyValue::Number(v) => Some(*v),
            PropertyValue::Param(p) => params.get(p).copied(),
            PropertyValue::NegParam(p) => params.get(p).map(|v| -v),
        }
    }
}

/// Formats a number the way the generated HDL expects (shortest unambiguous
/// form; always parses back as a float).
pub fn format_number(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v:e}")
    }
}

/// The kind of a Graphical Building Symbol; determines its ports.
#[derive(Debug, Clone, PartialEq)]
pub enum SymbolKind {
    /// A bi-directional model pin (electrical pin, motor axle…). Probes and
    /// generators attach to its single internal port.
    Pin {
        /// External pin name (appears in the definition card and in
        /// generated code).
        name: String,
    },
    /// Reads a quantity from a pin (voltage probe, current probe, torque
    /// probe…). Ports: `pin` (bidir), `out`.
    Probe {
        /// Quantity read from the pin.
        quantity: Dimension,
    },
    /// Imposes a quantity on a pin (current generator, voltage generator…).
    /// Ports: `pin` (bidir), `in`.
    Generator {
        /// Quantity imposed on the pin.
        quantity: Dimension,
    },
    /// "An external source of constant numbers": a model parameter exposed
    /// as a signal. Ports: `out`.
    Parameter {
        /// Parameter name (matches a definition-card parameter).
        param: String,
        /// Dimension of the parameter.
        dimension: Dimension,
    },
    /// A simulator-internal variable. Ports: `out`.
    SimVariable {
        /// Which variable.
        var: SimVar,
    },
    /// A literal constant. Ports: `out`.
    Constant {
        /// The value.
        value: f64,
    },
    /// Linear gain (property `a`). Ports: `in`, `out`.
    Gain,
    /// Non-linear limitation (properties `min`, `max`). Ports: `in`, `out`.
    Limiter,
    /// Time differentiation d/dt. Ports: `in`, `out`.
    Differentiator,
    /// Time integration ∫dt. Ports: `in`, `out`.
    Integrator,
    /// Fixed time delay (property `td`). Ports: `in`, `out`.
    Delay,
    /// One-simulation-step delay — the paper's §3.3 "variable delay element
    /// (duration: 1 current time step)". Ports: `in`, `out`.
    UnitDelay,
    /// Laplace-domain transfer function with numerator/denominator
    /// coefficients in ascending powers of `s`. Ports: `in`, `out`.
    TransferFunction {
        /// Numerator coefficients.
        num: Vec<f64>,
        /// Denominator coefficients.
        den: Vec<f64>,
    },
    /// N-input adder; `signs[i]` is `+` (`true`) or `−`. Ports: `in0…`,
    /// `out`.
    Adder {
        /// Sign of each input.
        signs: Vec<bool>,
    },
    /// N-input multiplier; `ops[i]` is `*` (`true`) or `/`. Ports: `in0…`,
    /// `out`.
    Multiplier {
        /// Operation applied with each input.
        ops: Vec<bool>,
    },
    /// Splits a signal into positive and negative parts. Ports: `in`,
    /// `pos`, `neg`.
    Separator,
    /// Function-generation element. Ports: `in0…`, `out`.
    Function {
        /// The generated function.
        func: FuncKind,
    },
    /// A hierarchical GBS: a whole functional diagram used as one symbol
    /// (§3.1: "GBS can be hierarchical"). Its ports are the inner diagram's
    /// interface.
    Hierarchical {
        /// Name of the sub-model.
        name: String,
        /// The inner diagram.
        diagram: Box<crate::diagram::FunctionalDiagram>,
    },
}

impl SymbolKind {
    /// Port templates of this symbol kind, in canonical order.
    pub fn ports(&self) -> Vec<PortSpec> {
        use PortDirection::{Bidir, Input, Output};
        match self {
            SymbolKind::Pin { .. } => vec![PortSpec::new("pin", Bidir, None)],
            SymbolKind::Probe { quantity } => vec![
                PortSpec::new("pin", Bidir, None),
                PortSpec::new("out", Output, Some(*quantity)),
            ],
            SymbolKind::Generator { quantity } => vec![
                PortSpec::new("pin", Bidir, None),
                PortSpec::new("in", Input, Some(*quantity)),
            ],
            SymbolKind::Parameter { dimension, .. } => {
                vec![PortSpec::new("out", Output, Some(*dimension))]
            }
            SymbolKind::SimVariable { var } => {
                vec![PortSpec::new("out", Output, Some(var.dimension()))]
            }
            SymbolKind::Constant { .. } => {
                vec![PortSpec::new("out", Output, Some(Dimension::NONE))]
            }
            SymbolKind::Gain
            | SymbolKind::Limiter
            | SymbolKind::Differentiator
            | SymbolKind::Integrator
            | SymbolKind::Delay
            | SymbolKind::UnitDelay
            | SymbolKind::TransferFunction { .. } => vec![
                PortSpec::new("in", Input, None),
                PortSpec::new("out", Output, None),
            ],
            SymbolKind::Adder { signs } => {
                let mut ports: Vec<PortSpec> = (0..signs.len())
                    .map(|i| PortSpec::new(&format!("in{i}"), Input, None))
                    .collect();
                ports.push(PortSpec::new("out", Output, None));
                ports
            }
            SymbolKind::Multiplier { ops } => {
                let mut ports: Vec<PortSpec> = (0..ops.len())
                    .map(|i| PortSpec::new(&format!("in{i}"), Input, None))
                    .collect();
                ports.push(PortSpec::new("out", Output, None));
                ports
            }
            SymbolKind::Separator => vec![
                PortSpec::new("in", Input, None),
                PortSpec::new("pos", Output, None),
                PortSpec::new("neg", Output, None),
            ],
            SymbolKind::Function { func } => {
                let mut ports: Vec<PortSpec> = (0..func.arity())
                    .map(|i| PortSpec::new(&format!("in{i}"), Input, None))
                    .collect();
                ports.push(PortSpec::new("out", Output, Some(Dimension::NONE)));
                ports
            }
            SymbolKind::Hierarchical { diagram, .. } => diagram
                .interface()
                .iter()
                .map(|itf| PortSpec::new(&itf.name, itf.direction, itf.dimension))
                .collect(),
        }
    }

    /// Short mnemonic used for diagram rendering and variable naming.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            SymbolKind::Pin { .. } => "pin",
            SymbolKind::Probe { .. } => "probe",
            SymbolKind::Generator { .. } => "gen",
            SymbolKind::Parameter { .. } => "param",
            SymbolKind::SimVariable { .. } => "simvar",
            SymbolKind::Constant { .. } => "const",
            SymbolKind::Gain => "gain",
            SymbolKind::Limiter => "limit",
            SymbolKind::Differentiator => "ddt",
            SymbolKind::Integrator => "idt",
            SymbolKind::Delay => "delay",
            SymbolKind::UnitDelay => "zdelay",
            SymbolKind::TransferFunction { .. } => "tf",
            SymbolKind::Adder { .. } => "add",
            SymbolKind::Multiplier { .. } => "mul",
            SymbolKind::Separator => "sep",
            SymbolKind::Function { .. } => "func",
            SymbolKind::Hierarchical { .. } => "sub",
        }
    }
}

/// A placed symbol instance inside a functional diagram.
#[derive(Debug, Clone, PartialEq)]
pub struct Symbol {
    /// Instance id (1-based, assigned by the diagram).
    pub id: usize,
    /// The symbol kind.
    pub kind: SymbolKind,
    /// Properties: dimensioning values or parameter references (§3.1: "GBS
    /// have a set of properties that allows dimensioning of the model").
    pub properties: BTreeMap<String, PropertyValue>,
    /// Optional human-readable label.
    pub label: Option<String>,
}

impl Symbol {
    /// Looks up a property.
    pub fn property(&self, name: &str) -> Option<&PropertyValue> {
        self.properties.get(name)
    }

    /// Port templates (delegates to the kind).
    pub fn ports(&self) -> Vec<PortSpec> {
        self.kind.ports()
    }

    /// Index of the named port.
    pub fn port_index(&self, name: &str) -> Option<usize> {
        self.ports().iter().position(|p| p.name == name)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{} {}", self.id, self.kind.mnemonic())?;
        if let Some(label) = &self.label {
            write!(f, " ({label})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_derivation() {
        assert_eq!(SymbolKind::Gain.ports().len(), 2);
        assert_eq!(SymbolKind::Separator.ports().len(), 3);
        let add = SymbolKind::Adder {
            signs: vec![true, false, true],
        };
        let ports = add.ports();
        assert_eq!(ports.len(), 4);
        assert_eq!(ports[0].direction, PortDirection::Input);
        assert_eq!(ports[3].direction, PortDirection::Output);
        assert_eq!(ports[3].name, "out");
    }

    #[test]
    fn probe_carries_quantity() {
        let p = SymbolKind::Probe {
            quantity: Dimension::VOLTAGE,
        };
        let ports = p.ports();
        assert_eq!(ports[0].direction, PortDirection::Bidir);
        assert_eq!(ports[1].dimension, Some(Dimension::VOLTAGE));
    }

    #[test]
    fn function_arity() {
        assert_eq!(FuncKind::Sin.arity(), 1);
        assert_eq!(FuncKind::Pow.arity(), 2);
        let f = SymbolKind::Function {
            func: FuncKind::Max,
        };
        assert_eq!(f.ports().len(), 3);
        assert_eq!(FuncKind::Tanh.code_name(), "tanh");
    }

    #[test]
    fn simvar_dimensions() {
        assert_eq!(SimVar::Time.dimension(), Dimension::TIME);
        assert_eq!(SimVar::TimeStep.dimension(), Dimension::TIME);
        assert_eq!(SimVar::Temperature.dimension(), Dimension::TEMPERATURE);
        assert_eq!(SimVar::TimeStep.code_name(), "timestep");
    }

    #[test]
    fn property_code_expr() {
        assert_eq!(PropertyValue::Number(5.0).code_expr(), "5.0");
        assert_eq!(PropertyValue::Number(5e-12).code_expr(), "5e-12");
        assert_eq!(PropertyValue::Param("cin".into()).code_expr(), "cin");
        let mut params = BTreeMap::new();
        params.insert("cin".to_string(), 5e-12);
        assert_eq!(
            PropertyValue::Param("cin".into()).resolve(&params),
            Some(5e-12)
        );
        assert_eq!(PropertyValue::Param("zz".into()).resolve(&params), None);
    }

    #[test]
    fn symbol_display_and_ports() {
        let s = Symbol {
            id: 4,
            kind: SymbolKind::Differentiator,
            properties: BTreeMap::new(),
            label: Some("d/dt".into()),
        };
        assert_eq!(s.to_string(), "#4 ddt (d/dt)");
        assert_eq!(s.port_index("out"), Some(1));
        assert_eq!(s.port_index("zz"), None);
    }
}
