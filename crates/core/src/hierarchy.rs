//! Hierarchical GBS support (§3.1: "Moreover, GBS can be hierarchical").
//!
//! A whole [`FunctionalDiagram`] can be placed as one symbol
//! ([`SymbolKind::Hierarchical`]); its ports are the inner diagram's
//! interface. Code generation operates on flat diagrams, so [`flatten`]
//! inlines every hierarchical symbol (recursively), splicing the nets that
//! touched its ports onto the inner interface ports.

use crate::diagram::{FunctionalDiagram, PortRef, SymbolId};
use crate::symbol::SymbolKind;
use crate::CoreError;
use std::collections::HashMap;

/// Wraps a diagram as a hierarchical symbol kind, ready for
/// [`FunctionalDiagram::add_symbol`].
pub fn as_symbol(name: &str, diagram: FunctionalDiagram) -> SymbolKind {
    SymbolKind::Hierarchical {
        name: name.to_string(),
        diagram: Box::new(diagram),
    }
}

/// Returns a flat copy of `d`: hierarchical symbols are replaced by their
/// inner diagrams, recursively.
///
/// Parameters of inner diagrams are hoisted to the top level (first
/// declaration wins, like [`FunctionalDiagram::merge`]); the flat diagram
/// keeps only the outer interface.
///
/// # Errors
///
/// * [`CoreError::IllegalConnection`] if splicing violates the net rules.
/// * Propagates malformed inner diagrams.
pub fn flatten(d: &FunctionalDiagram) -> Result<FunctionalDiagram, CoreError> {
    let has_hier = d
        .symbols()
        .any(|s| matches!(s.kind, SymbolKind::Hierarchical { .. }));
    if !has_hier {
        return Ok(d.clone());
    }
    let mut out = FunctionalDiagram::new(d.name());
    for p in d.parameters() {
        out.add_parameter(&p.name, p.default, p.dimension);
    }
    // Where each old port now lives.
    let mut port_map: HashMap<PortRef, PortRef> = HashMap::new();
    for sym in d.symbols() {
        match &sym.kind {
            SymbolKind::Hierarchical { diagram, .. } => {
                let inner_flat = flatten(diagram)?;
                let interface: Vec<PortRef> =
                    inner_flat.interface().iter().map(|itf| itf.inner).collect();
                let offset = out.merge_internal(inner_flat);
                for (k, inner_pr) in interface.iter().enumerate() {
                    port_map.insert(
                        PortRef {
                            symbol: SymbolId(sym.id),
                            port: k,
                        },
                        PortRef {
                            symbol: SymbolId(inner_pr.symbol.0 + offset),
                            port: inner_pr.port,
                        },
                    );
                }
            }
            kind => {
                let props: Vec<(&str, crate::symbol::PropertyValue)> = sym
                    .properties
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.clone()))
                    .collect();
                let new_id = out.add_symbol_with(kind.clone(), &props, sym.label.as_deref());
                for port in 0..sym.ports().len() {
                    port_map.insert(
                        PortRef {
                            symbol: SymbolId(sym.id),
                            port,
                        },
                        PortRef {
                            symbol: new_id,
                            port,
                        },
                    );
                }
            }
        }
    }
    // Rebuild the outer nets through the map.
    for net in d.nets() {
        let mapped: Vec<PortRef> = net
            .ports
            .iter()
            .filter_map(|p| port_map.get(p).copied())
            .collect();
        for pair in mapped.windows(2) {
            out.connect(pair[0], pair[1])?;
        }
    }
    // Outer interface, remapped.
    for itf in d.interface() {
        if let Some(&inner) = port_map.get(&itf.inner) {
            out.expose(&itf.name, inner)?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_diagram;
    use crate::constructs::{InputStageSpec, SlewRateSpec};
    use crate::quantity::Dimension;
    use crate::symbol::PropertyValue;

    /// A buffer built with the slew-rate block as a *hierarchical* symbol.
    fn hierarchical_buffer() -> FunctionalDiagram {
        let mut d = FunctionalDiagram::new("hier_buffer");
        let slew_inner = SlewRateSpec::new(1e6, 1e6).diagram().unwrap();
        let slew = d.add_symbol(as_symbol("slew", slew_inner));
        // Drive u from a parameter, read y into a limiter (sink).
        d.add_parameter("u0", 1.0, Dimension::VOLTAGE);
        let src = d.add_symbol(SymbolKind::Parameter {
            param: "u0".into(),
            dimension: Dimension::VOLTAGE,
        });
        let sink = d.add_symbol_with(
            SymbolKind::Limiter,
            &[
                ("min", PropertyValue::Number(-10.0)),
                ("max", PropertyValue::Number(10.0)),
            ],
            None,
        );
        // Hierarchical ports follow the inner interface order: u then y.
        d.connect(
            d.port(src, "out").unwrap(),
            PortRef {
                symbol: slew,
                port: 0,
            },
        )
        .unwrap();
        d.connect(
            PortRef {
                symbol: slew,
                port: 1,
            },
            d.port(sink, "in").unwrap(),
        )
        .unwrap();
        d
    }

    #[test]
    fn flat_diagram_passes_through() {
        let d = InputStageSpec::new("in", 1e-6, 5e-12).diagram().unwrap();
        let f = flatten(&d).unwrap();
        assert_eq!(f, d);
    }

    #[test]
    fn hierarchical_symbol_exposes_interface_ports() {
        let slew_inner = SlewRateSpec::new(1e6, 1e6).diagram().unwrap();
        let kind = as_symbol("slew", slew_inner);
        let ports = kind.ports();
        assert_eq!(ports.len(), 2);
        assert_eq!(ports[0].name, "u");
        assert_eq!(ports[1].name, "y");
    }

    #[test]
    fn flatten_inlines_and_splices() {
        let d = hierarchical_buffer();
        let flat = flatten(&d).unwrap();
        // No hierarchical symbols remain.
        assert!(!flat
            .symbols()
            .any(|s| matches!(s.kind, SymbolKind::Hierarchical { .. })));
        // All the slew block's symbols (7) plus param source and limiter.
        assert_eq!(flat.symbol_count(), 9);
        let r = check_diagram(&flat);
        assert!(r.is_consistent(), "{:?}", r.diagnostics);
        // The parameter source now drives the inner difference adder.
        let src = flat
            .symbols()
            .find(|s| matches!(s.kind, SymbolKind::Parameter { .. }))
            .unwrap();
        let net = flat
            .net_of(PortRef {
                symbol: SymbolId(src.id),
                port: 0,
            })
            .unwrap();
        assert!(net.ports.len() >= 2);
    }

    #[test]
    fn nested_hierarchy_flattens_recursively() {
        // Wrap the hierarchical buffer itself as a symbol of a top diagram.
        let mut top = FunctionalDiagram::new("top");
        let inner = hierarchical_buffer();
        top.add_symbol(as_symbol("buffer", inner));
        let flat = flatten(&top).unwrap();
        assert!(!flat
            .symbols()
            .any(|s| matches!(s.kind, SymbolKind::Hierarchical { .. })));
        assert_eq!(flat.symbol_count(), 9);
    }

    #[test]
    fn inner_parameters_hoisted() {
        let d = hierarchical_buffer();
        let flat = flatten(&d).unwrap();
        assert!(flat.parameters().iter().any(|p| p.name == "srise"));
        assert!(flat.parameters().iter().any(|p| p.name == "u0"));
    }

    #[test]
    fn codegen_works_after_flattening() {
        // A hierarchical input stage wrapped and flattened must still
        // produce compilable FAS through the normal pipeline.
        let mut top = FunctionalDiagram::new("wrapped_input_stage");
        let inner = InputStageSpec::new("in", 1e-6, 5e-12).diagram().unwrap();
        top.add_symbol(as_symbol("stage", inner));
        let flat = flatten(&top).unwrap();
        // Pins survive the inlining.
        assert_eq!(flat.pins().len(), 1);
        assert!(check_diagram(&flat).is_consistent());
    }
}
