//! Functional diagrams: symbols wired into nets.
//!
//! The second view of a model (§2.2): "Symbols, each of which stands for an
//! analytical function, are interconnected using an existing schematic entry
//! tool. … the functional diagram gathers information on the specified
//! behaviour and on the foreseen code structure."

use crate::quantity::Dimension;
use crate::symbol::{PortDirection, PropertyValue, Symbol, SymbolKind};
use crate::CoreError;
use std::collections::{BTreeMap, HashMap};

/// Identifier of a symbol inside one diagram (1-based — the ids appear in
/// generated variable names such as `yout7`, exactly like the paper's §4.2
/// listing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymbolId(pub usize);

/// Identifier of a net inside one diagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub usize);

/// A reference to one port of one symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PortRef {
    /// The symbol.
    pub symbol: SymbolId,
    /// Port index within the symbol (see [`SymbolKind::ports`]).
    pub port: usize,
}

/// A net: an equipotential connection of symbol ports ("Nets are formed,
/// that correspond to signals").
#[derive(Debug, Clone, PartialEq)]
pub struct Net {
    /// Stable id of the net.
    pub id: NetId,
    /// Optional user-visible name.
    pub name: Option<String>,
    /// Connected ports.
    pub ports: Vec<PortRef>,
}

/// An externally visible port of the diagram (used when the diagram becomes
/// a hierarchical GBS).
#[derive(Debug, Clone, PartialEq)]
pub struct InterfacePort {
    /// External name.
    pub name: String,
    /// Direction, inherited from the bound internal port.
    pub direction: PortDirection,
    /// Dimension, inherited from the bound internal port.
    pub dimension: Option<Dimension>,
    /// The internal port this interface port is bound to.
    pub inner: PortRef,
}

/// A declared model parameter with its default value.
#[derive(Debug, Clone, PartialEq)]
pub struct ParameterDecl {
    /// Parameter name.
    pub name: String,
    /// Default value (SI units).
    pub default: f64,
    /// Physical dimension.
    pub dimension: Dimension,
}

/// A functional diagram: the graphical description of a model's behaviour.
///
/// # Example
///
/// ```
/// use gabm_core::diagram::FunctionalDiagram;
/// use gabm_core::symbol::SymbolKind;
/// use gabm_core::quantity::Dimension;
///
/// # fn main() -> Result<(), gabm_core::CoreError> {
/// let mut d = FunctionalDiagram::new("demo");
/// let pin = d.add_symbol(SymbolKind::Pin { name: "in".into() });
/// let probe = d.add_symbol(SymbolKind::Probe { quantity: Dimension::VOLTAGE });
/// d.connect(d.port(pin, "pin")?, d.port(probe, "pin")?)?;
/// assert_eq!(d.nets().count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FunctionalDiagram {
    name: String,
    symbols: Vec<Symbol>,
    nets: Vec<Option<Net>>,
    port_net: HashMap<PortRef, NetId>,
    interface: Vec<InterfacePort>,
    parameters: Vec<ParameterDecl>,
}

impl FunctionalDiagram {
    /// Reassembles a diagram from its serialized parts, rebuilding the
    /// port→net index (derived state that is never persisted).
    pub(crate) fn from_parts(
        name: String,
        symbols: Vec<Symbol>,
        nets: Vec<Option<Net>>,
        interface: Vec<InterfacePort>,
        parameters: Vec<ParameterDecl>,
    ) -> Self {
        let mut port_net = HashMap::new();
        for net in nets.iter().flatten() {
            for p in &net.ports {
                port_net.insert(*p, net.id);
            }
        }
        FunctionalDiagram {
            name,
            symbols,
            nets,
            port_net,
            interface,
            parameters,
        }
    }

    /// The raw net storage, including `None` holes left by merges
    /// ([`NetId`]s index into this vector).
    pub(crate) fn nets_raw(&self) -> &[Option<Net>] {
        &self.nets
    }
    /// Creates an empty diagram.
    pub fn new(name: &str) -> Self {
        FunctionalDiagram {
            name: name.to_string(),
            ..FunctionalDiagram::default()
        }
    }

    /// Diagram (model) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the diagram.
    pub fn set_name(&mut self, name: &str) {
        self.name = name.to_string();
    }

    /// Adds a symbol, returning its id.
    pub fn add_symbol(&mut self, kind: SymbolKind) -> SymbolId {
        let id = SymbolId(self.symbols.len() + 1);
        self.symbols.push(Symbol {
            id: id.0,
            kind,
            properties: BTreeMap::new(),
            label: None,
        });
        id
    }

    /// Adds a symbol with properties and an optional label.
    pub fn add_symbol_with(
        &mut self,
        kind: SymbolKind,
        properties: &[(&str, PropertyValue)],
        label: Option<&str>,
    ) -> SymbolId {
        let id = self.add_symbol(kind);
        let sym = &mut self.symbols[id.0 - 1];
        for (k, v) in properties {
            sym.properties.insert((*k).to_string(), v.clone());
        }
        sym.label = label.map(str::to_string);
        id
    }

    /// Sets a property on a symbol.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownSymbol`] for a foreign id.
    pub fn set_property(
        &mut self,
        symbol: SymbolId,
        name: &str,
        value: PropertyValue,
    ) -> Result<(), CoreError> {
        let sym = self
            .symbols
            .get_mut(symbol.0.wrapping_sub(1))
            .ok_or(CoreError::UnknownSymbol(symbol.0))?;
        sym.properties.insert(name.to_string(), value);
        Ok(())
    }

    /// Number of symbols.
    pub fn symbol_count(&self) -> usize {
        self.symbols.len()
    }

    /// Symbol by id.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownSymbol`] for a foreign id.
    pub fn symbol(&self, id: SymbolId) -> Result<&Symbol, CoreError> {
        self.symbols
            .get(id.0.wrapping_sub(1))
            .ok_or(CoreError::UnknownSymbol(id.0))
    }

    /// Iterates over all symbols in id order.
    pub fn symbols(&self) -> impl Iterator<Item = &Symbol> {
        self.symbols.iter()
    }

    /// Resolves a named port of a symbol into a [`PortRef`].
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownSymbol`] / [`CoreError::NotFound`] as applicable.
    pub fn port(&self, symbol: SymbolId, port_name: &str) -> Result<PortRef, CoreError> {
        let sym = self.symbol(symbol)?;
        let port = sym
            .port_index(port_name)
            .ok_or_else(|| CoreError::NotFound(format!("port {port_name} on {sym}")))?;
        Ok(PortRef { symbol, port })
    }

    fn validate_port(&self, p: PortRef) -> Result<PortDirection, CoreError> {
        let sym = self.symbol(p.symbol)?;
        let ports = sym.ports();
        let spec = ports.get(p.port).ok_or(CoreError::UnknownPort {
            symbol: p.symbol.0,
            port: p.port,
        })?;
        Ok(spec.direction)
    }

    fn net_output_count(&self, net: &Net) -> usize {
        net.ports
            .iter()
            .filter(|p| matches!(self.validate_port(**p), Ok(PortDirection::Output)))
            .count()
    }

    /// Connects two ports, creating or merging nets.
    ///
    /// The §3.2 single-driver rule is enforced eagerly: a (signal) net may
    /// carry at most one output port.
    ///
    /// # Errors
    ///
    /// [`CoreError::IllegalConnection`] on a second driver;
    /// [`CoreError::UnknownSymbol`]/[`CoreError::UnknownPort`] for bad refs.
    pub fn connect(&mut self, a: PortRef, b: PortRef) -> Result<NetId, CoreError> {
        self.validate_port(a)?;
        self.validate_port(b)?;
        let net_a = self.port_net.get(&a).copied();
        let net_b = self.port_net.get(&b).copied();
        let id = match (net_a, net_b) {
            (None, None) => {
                let id = NetId(self.nets.len());
                self.nets.push(Some(Net {
                    id,
                    name: None,
                    ports: vec![a, b],
                }));
                self.port_net.insert(a, id);
                self.port_net.insert(b, id);
                id
            }
            (Some(na), None) => {
                self.net_mut(na).ports.push(b);
                self.port_net.insert(b, na);
                na
            }
            (None, Some(nb)) => {
                self.net_mut(nb).ports.push(a);
                self.port_net.insert(a, nb);
                nb
            }
            (Some(na), Some(nb)) if na == nb => na,
            (Some(na), Some(nb)) => {
                // Merge nb into na.
                let moved = self.nets[nb.0].take().expect("net exists").ports;
                for p in &moved {
                    self.port_net.insert(*p, na);
                }
                self.net_mut(na).ports.extend(moved);
                na
            }
        };
        let net = self.nets[id.0].as_ref().expect("net exists");
        if self.net_output_count(net) > 1 {
            return Err(CoreError::IllegalConnection(format!(
                "net {} would have more than one driving output port",
                id.0
            )));
        }
        Ok(id)
    }

    /// Names a net (for rendering and code-generation readability).
    ///
    /// # Errors
    ///
    /// [`CoreError::NotFound`] for a dangling net id.
    pub fn name_net(&mut self, net: NetId, name: &str) -> Result<(), CoreError> {
        match self.nets.get_mut(net.0).and_then(Option::as_mut) {
            Some(n) => {
                n.name = Some(name.to_string());
                Ok(())
            }
            None => Err(CoreError::NotFound(format!("net {}", net.0))),
        }
    }

    fn net_mut(&mut self, id: NetId) -> &mut Net {
        self.nets[id.0].as_mut().expect("net exists")
    }

    /// Iterates over live nets.
    pub fn nets(&self) -> impl Iterator<Item = &Net> {
        self.nets.iter().filter_map(Option::as_ref)
    }

    /// The net a port is connected to, if any.
    pub fn net_of(&self, port: PortRef) -> Option<&Net> {
        self.port_net
            .get(&port)
            .and_then(|id| self.nets[id.0].as_ref())
    }

    /// Exposes an internal port as an external interface port.
    ///
    /// # Errors
    ///
    /// Propagates invalid port references.
    pub fn expose(&mut self, name: &str, inner: PortRef) -> Result<(), CoreError> {
        let direction = self.validate_port(inner)?;
        let sym = self.symbol(inner.symbol)?;
        let dimension = sym.ports()[inner.port].dimension;
        self.interface.push(InterfacePort {
            name: name.to_string(),
            direction,
            dimension,
            inner,
        });
        Ok(())
    }

    /// External interface ports (for hierarchical use).
    pub fn interface(&self) -> &[InterfacePort] {
        &self.interface
    }

    /// Declares a model parameter with its default value.
    pub fn add_parameter(&mut self, name: &str, default: f64, dimension: Dimension) {
        self.parameters.push(ParameterDecl {
            name: name.to_string(),
            default,
            dimension,
        });
    }

    /// Declared parameters.
    pub fn parameters(&self) -> &[ParameterDecl] {
        &self.parameters
    }

    /// All pin symbols (in id order) with their external names.
    pub fn pins(&self) -> Vec<(SymbolId, String)> {
        self.symbols
            .iter()
            .filter_map(|s| match &s.kind {
                SymbolKind::Pin { name } => Some((SymbolId(s.id), name.clone())),
                _ => None,
            })
            .collect()
    }

    /// Merges `other` into `self`, renumbering its symbols and nets.
    /// Returns the symbol-id offset: `other`'s symbol `SymbolId(k)` becomes
    /// `SymbolId(k + offset)`.
    ///
    /// Interface ports and parameters of `other` are appended (names are
    /// kept; callers compose uniquely-named fragments).
    pub fn merge(&mut self, other: FunctionalDiagram) -> usize {
        self.merge_with_interface(other, true)
    }

    /// Merge used by hierarchy flattening: inner interfaces are spliced,
    /// not re-exposed.
    pub(crate) fn merge_internal(&mut self, other: FunctionalDiagram) -> usize {
        self.merge_with_interface(other, false)
    }

    fn merge_with_interface(&mut self, other: FunctionalDiagram, keep_interface: bool) -> usize {
        let offset = self.symbols.len();
        for mut sym in other.symbols {
            sym.id += offset;
            self.symbols.push(sym);
        }
        let net_offset = self.nets.len();
        for net in other.nets.into_iter().flatten() {
            let id = NetId(net.id.0 + net_offset);
            let ports: Vec<PortRef> = net
                .ports
                .iter()
                .map(|p| PortRef {
                    symbol: SymbolId(p.symbol.0 + offset),
                    port: p.port,
                })
                .collect();
            for p in &ports {
                self.port_net.insert(*p, id);
            }
            self.nets.push(Some(Net {
                id,
                name: net.name,
                ports,
            }));
        }
        // Rebuild any gaps so net ids stay aligned with vec indices.
        while self.nets.len() < net_offset {
            self.nets.push(None);
        }
        if keep_interface {
            for itf in other.interface {
                self.interface.push(InterfacePort {
                    inner: PortRef {
                        symbol: SymbolId(itf.inner.symbol.0 + offset),
                        port: itf.inner.port,
                    },
                    ..itf
                });
            }
        }
        for p in other.parameters {
            if !self.parameters.iter().any(|q| q.name == p.name) {
                self.parameters.push(p);
            }
        }
        offset
    }

    /// Removes a symbol, dropping its net bindings and any interface port
    /// bound to it, and renumbering every higher symbol id down by one
    /// (ids stay 1-based and dense, as generated variable names require).
    ///
    /// Nets that lose their last port are deleted; nets left with a
    /// single port are kept, so an upstream driver whose only consumer
    /// disappeared is still reported (and fixed) by the dead-symbol lint
    /// on the next round rather than silently losing its connection.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownSymbol`] for a foreign id.
    pub fn remove_symbol(&mut self, id: SymbolId) -> Result<(), CoreError> {
        if id.0 == 0 || id.0 > self.symbols.len() {
            return Err(CoreError::UnknownSymbol(id.0));
        }
        self.symbols.remove(id.0 - 1);
        for sym in &mut self.symbols[id.0 - 1..] {
            sym.id -= 1;
        }
        let shift = |p: &PortRef| PortRef {
            symbol: SymbolId(p.symbol.0 - usize::from(p.symbol.0 > id.0)),
            port: p.port,
        };
        for slot in &mut self.nets {
            if let Some(net) = slot {
                net.ports.retain(|p| p.symbol != id);
                if net.ports.is_empty() {
                    *slot = None;
                } else {
                    for p in &mut net.ports {
                        *p = shift(p);
                    }
                }
            }
        }
        self.interface.retain(|itf| itf.inner.symbol != id);
        for itf in &mut self.interface {
            itf.inner = shift(&itf.inner);
        }
        self.port_net.clear();
        for net in self.nets.iter().flatten() {
            for p in &net.ports {
                self.port_net.insert(*p, net.id);
            }
        }
        Ok(())
    }

    /// Removes a parameter declaration by name. Returns whether a
    /// declaration was removed. Callers are responsible for ensuring no
    /// symbol property still references the parameter.
    pub fn remove_parameter(&mut self, name: &str) -> bool {
        let before = self.parameters.len();
        self.parameters.retain(|p| p.name != name);
        self.parameters.len() != before
    }

    /// Swaps the values of two properties on a symbol (e.g. a degenerate
    /// limiter's `min`/`max`).
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownSymbol`] for a foreign id;
    /// [`CoreError::NotFound`] if either property is absent.
    pub fn swap_properties(
        &mut self,
        symbol: SymbolId,
        first: &str,
        second: &str,
    ) -> Result<(), CoreError> {
        let sym = self
            .symbols
            .get_mut(symbol.0.wrapping_sub(1))
            .ok_or(CoreError::UnknownSymbol(symbol.0))?;
        let a = sym.properties.get(first).cloned().ok_or_else(|| {
            CoreError::NotFound(format!("property {first} on symbol {}", symbol.0))
        })?;
        let b = sym.properties.get(second).cloned().ok_or_else(|| {
            CoreError::NotFound(format!("property {second} on symbol {}", symbol.0))
        })?;
        sym.properties.insert(first.to_string(), b);
        sym.properties.insert(second.to_string(), a);
        Ok(())
    }

    /// Looks up an interface port by name.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotFound`] if absent.
    pub fn interface_port(&self, name: &str) -> Result<&InterfacePort, CoreError> {
        self.interface
            .iter()
            .find(|p| p.name == name)
            .ok_or_else(|| CoreError::NotFound(format!("interface port {name}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::FuncKind;

    fn gain_chain() -> (FunctionalDiagram, SymbolId, SymbolId) {
        let mut d = FunctionalDiagram::new("chain");
        let g1 = d.add_symbol(SymbolKind::Gain);
        let g2 = d.add_symbol(SymbolKind::Gain);
        let out1 = d.port(g1, "out").unwrap();
        let in2 = d.port(g2, "in").unwrap();
        d.connect(out1, in2).unwrap();
        (d, g1, g2)
    }

    #[test]
    fn ids_are_one_based_and_sequential() {
        let mut d = FunctionalDiagram::new("x");
        assert_eq!(d.add_symbol(SymbolKind::Gain), SymbolId(1));
        assert_eq!(d.add_symbol(SymbolKind::Gain), SymbolId(2));
        assert_eq!(d.symbol_count(), 2);
    }

    #[test]
    fn connect_creates_net() {
        let (d, g1, g2) = gain_chain();
        assert_eq!(d.nets().count(), 1);
        let net = d.net_of(d.port(g1, "out").unwrap()).unwrap();
        assert_eq!(net.ports.len(), 2);
        assert!(d.net_of(d.port(g2, "out").unwrap()).is_none());
    }

    #[test]
    fn single_driver_rule_enforced() {
        let mut d = FunctionalDiagram::new("bad");
        let g1 = d.add_symbol(SymbolKind::Gain);
        let g2 = d.add_symbol(SymbolKind::Gain);
        let g3 = d.add_symbol(SymbolKind::Gain);
        let in3 = d.port(g3, "in").unwrap();
        d.connect(d.port(g1, "out").unwrap(), in3).unwrap();
        let err = d.connect(d.port(g2, "out").unwrap(), in3).unwrap_err();
        assert!(matches!(err, CoreError::IllegalConnection(_)));
    }

    #[test]
    fn net_merging() {
        let mut d = FunctionalDiagram::new("merge");
        let g1 = d.add_symbol(SymbolKind::Gain);
        let a1 = d.add_symbol(SymbolKind::Adder {
            signs: vec![true, true],
        });
        let f1 = d.add_symbol(SymbolKind::Function {
            func: FuncKind::Sin,
        });
        // Connect g1.out → adder.in0 and separately g1.out → sin.in0: the
        // two nets must merge into one three-port net.
        let out = d.port(g1, "out").unwrap();
        d.connect(out, d.port(a1, "in0").unwrap()).unwrap();
        d.connect(out, d.port(f1, "in0").unwrap()).unwrap();
        assert_eq!(d.nets().count(), 1);
        assert_eq!(d.net_of(out).unwrap().ports.len(), 3);
    }

    #[test]
    fn merge_two_fanins_detects_double_driver() {
        let mut d = FunctionalDiagram::new("dd");
        let g1 = d.add_symbol(SymbolKind::Gain);
        let g2 = d.add_symbol(SymbolKind::Gain);
        let a = d.add_symbol(SymbolKind::Adder {
            signs: vec![true, true],
        });
        d.connect(d.port(g1, "out").unwrap(), d.port(a, "in0").unwrap())
            .unwrap();
        d.connect(d.port(g2, "out").unwrap(), d.port(a, "in1").unwrap())
            .unwrap();
        // Now join in0 and in1 — this would merge two driven nets.
        let err = d
            .connect(d.port(a, "in0").unwrap(), d.port(a, "in1").unwrap())
            .unwrap_err();
        assert!(matches!(err, CoreError::IllegalConnection(_)));
    }

    #[test]
    fn pin_nets_allow_multiple_attachments() {
        let mut d = FunctionalDiagram::new("pins");
        let pin = d.add_symbol(SymbolKind::Pin { name: "in".into() });
        let probe = d.add_symbol(SymbolKind::Probe {
            quantity: Dimension::VOLTAGE,
        });
        let gen = d.add_symbol(SymbolKind::Generator {
            quantity: Dimension::CURRENT,
        });
        let pp = d.port(pin, "pin").unwrap();
        d.connect(pp, d.port(probe, "pin").unwrap()).unwrap();
        d.connect(pp, d.port(gen, "pin").unwrap()).unwrap();
        assert_eq!(d.net_of(pp).unwrap().ports.len(), 3);
    }

    #[test]
    fn expose_and_lookup_interface() {
        let (mut d, g1, _) = gain_chain();
        d.expose("u", d.port(g1, "in").unwrap()).unwrap();
        let itf = d.interface_port("u").unwrap();
        assert_eq!(itf.direction, PortDirection::Input);
        assert!(d.interface_port("v").is_err());
    }

    #[test]
    fn parameters_declared() {
        let mut d = FunctionalDiagram::new("p");
        d.add_parameter("gin", 1e-6, Dimension::CONDUCTANCE);
        assert_eq!(d.parameters().len(), 1);
        assert_eq!(d.parameters()[0].default, 1e-6);
    }

    #[test]
    fn merge_renumbers() {
        let (mut d, _, _) = gain_chain();
        let (d2, _, _) = gain_chain();
        let before_nets = d.nets().count();
        let offset = d.merge(d2);
        assert_eq!(offset, 2);
        assert_eq!(d.symbol_count(), 4);
        assert_eq!(d.nets().count(), before_nets + 1);
        // Connectivity of the merged copy is intact: symbol 3's out drives
        // symbol 4's in.
        let out3 = d.port(SymbolId(3), "out").unwrap();
        let net = d.net_of(out3).unwrap();
        assert!(net
            .ports
            .iter()
            .any(|p| p.symbol == SymbolId(4) && p.port == 0));
    }

    #[test]
    fn pins_listing() {
        let mut d = FunctionalDiagram::new("pl");
        d.add_symbol(SymbolKind::Pin { name: "a".into() });
        d.add_symbol(SymbolKind::Gain);
        d.add_symbol(SymbolKind::Pin { name: "b".into() });
        let pins = d.pins();
        assert_eq!(pins.len(), 2);
        assert_eq!(pins[0].1, "a");
        assert_eq!(pins[1].0, SymbolId(3));
    }

    #[test]
    fn remove_symbol_renumbers_and_reindexes() {
        let mut d = FunctionalDiagram::new("rm");
        let g1 = d.add_symbol(SymbolKind::Gain);
        let g2 = d.add_symbol(SymbolKind::Gain);
        let g3 = d.add_symbol(SymbolKind::Gain);
        d.connect(d.port(g1, "out").unwrap(), d.port(g2, "in").unwrap())
            .unwrap();
        d.connect(d.port(g2, "out").unwrap(), d.port(g3, "in").unwrap())
            .unwrap();
        d.expose("u", d.port(g3, "out").unwrap()).unwrap();
        d.remove_symbol(g2).unwrap();
        assert_eq!(d.symbol_count(), 2);
        assert_eq!(d.symbol(SymbolId(2)).unwrap().id, 2);
        // Both nets survive with a single dangling port each; the old g3
        // is now symbol 2 everywhere.
        assert_eq!(d.nets().count(), 2);
        for net in d.nets() {
            assert_eq!(net.ports.len(), 1);
            assert!(net.ports[0].symbol.0 <= 2);
        }
        assert_eq!(d.interface()[0].inner.symbol, SymbolId(2));
        // Removing the last consumer empties its input net.
        let nets_before = d.nets().count();
        d.remove_symbol(SymbolId(2)).unwrap();
        assert!(d.nets().count() < nets_before);
        assert!(d.interface().is_empty());
        assert!(d.remove_symbol(SymbolId(9)).is_err());
    }

    #[test]
    fn remove_parameter_and_swap_properties() {
        let mut d = FunctionalDiagram::new("rp");
        d.add_parameter("tau", 1e-3, Dimension::NONE);
        assert!(d.remove_parameter("tau"));
        assert!(!d.remove_parameter("tau"));
        let lim = d.add_symbol_with(
            SymbolKind::Limiter,
            &[
                ("min", PropertyValue::Number(10.0)),
                ("max", PropertyValue::Number(-10.0)),
            ],
            None,
        );
        d.swap_properties(lim, "min", "max").unwrap();
        let sym = d.symbol(lim).unwrap();
        assert_eq!(
            sym.properties.get("min"),
            Some(&PropertyValue::Number(-10.0))
        );
        assert_eq!(
            sym.properties.get("max"),
            Some(&PropertyValue::Number(10.0))
        );
        assert!(d.swap_properties(lim, "min", "zz").is_err());
        assert!(d.swap_properties(SymbolId(9), "a", "b").is_err());
    }

    #[test]
    fn bad_refs_rejected() {
        let mut d = FunctionalDiagram::new("bad");
        let g = d.add_symbol(SymbolKind::Gain);
        assert!(d.symbol(SymbolId(9)).is_err());
        assert!(d.port(g, "zz").is_err());
        let bad = PortRef {
            symbol: g,
            port: 99,
        };
        assert!(d.connect(bad, bad).is_err());
        assert!(d
            .set_property(SymbolId(9), "a", PropertyValue::Number(1.0))
            .is_err());
    }
}
