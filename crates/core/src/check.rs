//! Diagram consistency checking (§3.2: "Once a diagram has been edited, a
//! consistency test can be performed").
//!
//! The test is organized as a sequence of named passes over the diagram
//! (see [`DIAGRAM_PASSES`]), each emitting coded [`Diagnostic`]s:
//!
//! 1. **structure** — every consumed net is driven by exactly one output
//!    port (GABM001/GABM002); no dangling inputs (GABM003–GABM005);
//!    required properties are present (GABM006) and well-formed (GABM011);
//! 2. **quantities** — physical dimensions are propagated through the
//!    symbols and conflicts are reported with the full inference chain
//!    ("oil and water will not mix", GABM007/GABM012);
//! 3. **causality** — algebraic loops (cycles not broken by a state element
//!    such as the unit delay of the slew-rate construct) are rejected with
//!    the full cycle path, since the generated sequential code could not be
//!    ordered (§4.1, GABM008);
//! 4. **liveness** — symbols whose outputs never reach a generator or the
//!    diagram interface (GABM009) and parameters referenced nowhere
//!    (GABM010) are flagged as diagram dead code.

use crate::diag::{Code, Diagnostic, Fix, FixEdit, Location, Severity};
use crate::diagram::{FunctionalDiagram, NetId, PortRef, SymbolId};
use crate::quantity::Dimension;
use crate::symbol::{PortDirection, PropertyValue, SymbolKind};
use std::collections::{HashMap, HashSet};

/// The outcome of [`check_diagram`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckReport {
    /// All findings.
    pub diagnostics: Vec<Diagnostic>,
    /// Inferred physical dimension of each net (where derivable).
    pub net_dimensions: HashMap<NetId, Dimension>,
}

impl CheckReport {
    /// Number of errors.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warnings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// `true` if no errors were found (warnings allowed).
    pub fn is_consistent(&self) -> bool {
        self.error_count() == 0
    }

    fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }
}

/// One diagram-level analysis pass.
pub type DiagramPass = fn(&FunctionalDiagram, &mut CheckReport);

/// All diagram-level passes in execution order, with stable names. The
/// `gabm-lint` registry reuses this table; [`check_diagram`] (and through
/// it every code-generation entry point) runs all of them, so generation
/// refuses a diagram carrying *any* diagram-level lint error.
pub const DIAGRAM_PASSES: &[(&str, DiagramPass)] = &[
    ("net-drivers", check_net_drivers),
    ("port-connections", check_port_connections),
    ("required-properties", check_required_properties),
    ("limiter-bounds", check_limiter_bounds),
    ("dimensions", infer_dimensions),
    ("algebraic-loops", check_algebraic_loops),
    ("dead-symbols", check_dead_symbols),
    ("unused-parameters", check_unused_parameters),
];

/// Runs the full consistency test on a diagram.
pub fn check_diagram(d: &FunctionalDiagram) -> CheckReport {
    let mut report = CheckReport::default();
    for (_, pass) in DIAGRAM_PASSES {
        pass(d, &mut report);
    }
    report
}

/// Dimension of a property value: literals are dimensionless; parameter
/// references inherit the declared parameter dimension.
fn property_dimension(d: &FunctionalDiagram, value: Option<&PropertyValue>) -> Dimension {
    match value {
        Some(PropertyValue::Param(p)) => d
            .parameters()
            .iter()
            .find(|decl| decl.name == *p)
            .map(|decl| decl.dimension)
            .unwrap_or(Dimension::NONE),
        _ => Dimension::NONE,
    }
}

/// Numeric value of a property, resolving parameter references to their
/// declared defaults. `None` when the referenced parameter is undeclared.
fn property_value(d: &FunctionalDiagram, value: &PropertyValue) -> Option<f64> {
    let default_of = |p: &str| {
        d.parameters()
            .iter()
            .find(|decl| decl.name == p)
            .map(|decl| decl.default)
    };
    match value {
        PropertyValue::Number(v) => Some(*v),
        PropertyValue::Param(p) => default_of(p),
        PropertyValue::NegParam(p) => default_of(p).map(|v| -v),
    }
}

/// Output ports that drive nothing — neither wired to a net nor exposed
/// on the diagram interface. These are the candidate sources offered by
/// the GABM002/GABM003 connection suggestions: (owning symbol id,
/// human-readable port description, fixed dimension if the symbol's
/// semantics pin one).
fn dangling_outputs(d: &FunctionalDiagram) -> Vec<(usize, String, Option<Dimension>)> {
    let exposed: Vec<PortRef> = d.interface().iter().map(|itf| itf.inner).collect();
    let mut out = Vec::new();
    for sym in d.symbols() {
        for (idx, spec) in sym.ports().iter().enumerate() {
            if spec.direction != PortDirection::Output {
                continue;
            }
            let pr = PortRef {
                symbol: SymbolId(sym.id),
                port: idx,
            };
            if d.net_of(pr).is_none() && !exposed.contains(&pr) {
                out.push((
                    sym.id,
                    format!("output port '{}' of {sym}", spec.name),
                    spec.dimension,
                ));
            }
        }
    }
    out
}

/// Whether a dangling output carrying `have` could legally feed a
/// consumer expecting `want`: fixed dimensions must agree; an unfixed
/// side is compatible with anything (its dimension is inferred from
/// context once connected).
fn dimensions_compatible(want: Option<Dimension>, have: Option<Dimension>) -> bool {
    match (want, have) {
        (Some(w), Some(h)) => w == h,
        _ => true,
    }
}

/// Renders a candidate connection as a `help:` suggestion — advisory
/// only, never an autofix: picking among several plausible sources is a
/// design decision the tool must not make (§3.2 leaves repair to the
/// editor).
fn suggest_candidates(
    mut diag: Diagnostic,
    candidates: &[(usize, String, Option<Dimension>)],
    exclude_symbol: Option<usize>,
    want: Option<Dimension>,
    verb: &str,
) -> Diagnostic {
    for (_, name, have) in candidates
        .iter()
        .filter(|(owner, _, _)| Some(*owner) != exclude_symbol)
        .filter(|(_, _, have)| dimensions_compatible(want, *have))
        .take(3)
    {
        let dim = match have {
            Some(dimension) => format!(" (carries {dimension})"),
            None => String::new(),
        };
        diag = diag.with_help(format!("{verb} the unconnected {name}{dim}"));
    }
    diag
}

/// GABM001/GABM002 — the net driver rule: "a net must be bound to one and
/// only one output port".
fn check_net_drivers(d: &FunctionalDiagram, report: &mut CheckReport) {
    for net in d.nets() {
        let mut drivers: Vec<String> = Vec::new();
        let mut inputs = 0usize;
        for p in &net.ports {
            if let Ok(sym) = d.symbol(p.symbol) {
                match sym.ports()[p.port].direction {
                    PortDirection::Output => drivers.push(sym.to_string()),
                    PortDirection::Input => inputs += 1,
                    PortDirection::Bidir => {}
                }
            }
        }
        if drivers.len() > 1 {
            let mut diag = Diagnostic::new(
                Code::MultipleDrivers,
                format!("net {} driven by {} output ports", net.id.0, drivers.len()),
                Location::Net(net.id),
            );
            for drv in &drivers {
                diag = diag.with_note(format!("driven by {drv}"));
            }
            report.push(diag);
        }
        if inputs > 0 && drivers.is_empty() {
            let diag = Diagnostic::new(
                Code::UndrivenNet,
                format!(
                    "net {} is consumed but bound to no output port (\"a net must be bound to one and only one output port\")",
                    net.id.0
                ),
                Location::Net(net.id),
            );
            // What the net's consumers require, when any of their input
            // ports fixes a dimension.
            let want = net.ports.iter().find_map(|p| {
                let sym = d.symbol(p.symbol).ok()?;
                let spec = &sym.ports()[p.port];
                if spec.direction == PortDirection::Input {
                    spec.dimension
                } else {
                    None
                }
            });
            report.push(suggest_candidates(
                diag,
                &dangling_outputs(d),
                None,
                want,
                "candidate driver: connect",
            ));
        }
    }
}

/// GABM003–GABM005 — the port connection rule. Ports exposed on the
/// diagram interface count as connected: they are wired from the outside
/// once the diagram is used hierarchically.
fn check_port_connections(d: &FunctionalDiagram, report: &mut CheckReport) {
    let exposed: Vec<PortRef> = d.interface().iter().map(|itf| itf.inner).collect();
    let candidates = dangling_outputs(d);
    for sym in d.symbols() {
        let ports = sym.ports();
        // Pass 1: per-port connectivity, so GABM004 below can tell
        // whether the whole symbol drives anything.
        let connected: Vec<bool> = (0..ports.len())
            .map(|idx| {
                let pr = PortRef {
                    symbol: SymbolId(sym.id),
                    port: idx,
                };
                d.net_of(pr).is_some() || exposed.contains(&pr)
            })
            .collect();
        let any_connected = connected.iter().any(|&c| c);
        // A symbol whose every output dangles is dead weight: nothing
        // downstream can observe it, so removing it is safe. (When no
        // port at all is connected, GABM005 below carries the removal
        // fix instead.)
        let fully_dead = ports
            .iter()
            .any(|spec| spec.direction == PortDirection::Output)
            && ports
                .iter()
                .zip(&connected)
                .all(|(spec, &conn)| spec.direction != PortDirection::Output || !conn);
        for (spec, &conn) in ports.iter().zip(&connected) {
            if !conn && spec.direction == PortDirection::Input {
                let diag = Diagnostic::new(
                    Code::UnconnectedInput,
                    format!("input port '{}' of {sym} is unconnected", spec.name),
                    Location::Port {
                        symbol: SymbolId(sym.id),
                        port: spec.name.clone(),
                    },
                );
                // Same-symbol outputs are excluded: wiring a symbol's
                // output straight back into its own input is an
                // algebraic loop (GABM008), not a repair.
                report.push(suggest_candidates(
                    diag,
                    &candidates,
                    Some(sym.id),
                    spec.dimension,
                    "candidate source: connect",
                ));
            }
            if !conn && spec.direction == PortDirection::Output {
                let mut diag = Diagnostic::new(
                    Code::UnconnectedOutput,
                    format!("output port '{}' of {sym} is unconnected", spec.name),
                    Location::Port {
                        symbol: SymbolId(sym.id),
                        port: spec.name.clone(),
                    },
                );
                if fully_dead && any_connected {
                    diag = diag.with_fix(Fix::new(
                        format!("remove {sym}: none of its outputs drive anything"),
                        vec![FixEdit::RemoveSymbol {
                            symbol: SymbolId(sym.id),
                        }],
                    ));
                }
                report.push(diag);
            }
        }
        if !any_connected && !ports.is_empty() {
            report.push(
                Diagnostic::new(
                    Code::DisconnectedSymbol,
                    format!("{sym} is not connected at all"),
                    Location::Symbol(SymbolId(sym.id)),
                )
                .with_fix(Fix::new(
                    format!("remove the disconnected {sym}"),
                    vec![FixEdit::RemoveSymbol {
                        symbol: SymbolId(sym.id),
                    }],
                )),
            );
        }
    }
}

/// GABM006 — required property presence.
fn check_required_properties(d: &FunctionalDiagram, report: &mut CheckReport) {
    for sym in d.symbols() {
        let missing: &[&str] = match &sym.kind {
            SymbolKind::Gain if sym.property("a").is_none() => &["a"],
            SymbolKind::Limiter => match (sym.property("min"), sym.property("max")) {
                (None, None) => &["min", "max"],
                (None, Some(_)) => &["min"],
                (Some(_), None) => &["max"],
                _ => &[],
            },
            SymbolKind::Delay if sym.property("td").is_none() => &["td"],
            _ => &[],
        };
        for prop in missing {
            report.push(Diagnostic::new(
                Code::MissingProperty,
                match &sym.kind {
                    SymbolKind::Gain => format!("{sym} is missing its gain property 'a'"),
                    _ => format!("{sym} is missing its property '{prop}'"),
                },
                Location::Symbol(SymbolId(sym.id)),
            ));
        }
    }
}

/// GABM011 — interval sanity: a limiter whose resolved lower bound exceeds
/// its upper bound clips to an empty interval.
fn check_limiter_bounds(d: &FunctionalDiagram, report: &mut CheckReport) {
    for sym in d.symbols() {
        if !matches!(sym.kind, SymbolKind::Limiter) {
            continue;
        }
        let (Some(min_p), Some(max_p)) = (sym.property("min"), sym.property("max")) else {
            continue; // GABM006 already reported
        };
        if let (Some(lo), Some(hi)) = (property_value(d, min_p), property_value(d, max_p)) {
            if lo > hi {
                report.push(
                    Diagnostic::new(
                        Code::DegenerateLimiter,
                        format!("{sym} has min {lo} > max {hi}: the pass band is empty"),
                        Location::Symbol(SymbolId(sym.id)),
                    )
                    .with_note(format!(
                        "'min' resolves to {lo}, 'max' resolves to {hi} (parameter defaults applied)"
                    ))
                    .with_fix(Fix::new(
                        "swap the 'min' and 'max' properties",
                        vec![FixEdit::SwapProperties {
                            symbol: SymbolId(sym.id),
                            first: "min".to_string(),
                            second: "max".to_string(),
                        }],
                    )),
                );
            }
        }
    }
}

/// GABM007/GABM012 — propagates dimensions over nets to a fixpoint,
/// reporting conflicts together with the inference chain that led to each
/// contradictory assignment.
fn infer_dimensions(d: &FunctionalDiagram, report: &mut CheckReport) {
    struct Infer {
        dims: HashMap<NetId, Dimension>,
        /// How each net got its dimension, one human-readable step per hop.
        chains: HashMap<NetId, Vec<String>>,
        /// (net, established, conflicting, chain of the conflicting side).
        conflicts: Vec<(NetId, Dimension, Dimension, Vec<String>)>,
    }

    impl Infer {
        fn assign(
            &mut self,
            net: NetId,
            dim: Dimension,
            step: String,
            from: Option<NetId>,
        ) -> bool {
            let chain_from = |s: &Self| {
                let mut chain = from
                    .and_then(|f| s.chains.get(&f).cloned())
                    .unwrap_or_default();
                chain.push(step.clone());
                chain
            };
            match self.dims.get(&net) {
                Some(existing) if *existing != dim => {
                    if !self.conflicts.iter().any(|(n, _, _, _)| *n == net) {
                        let chain = chain_from(self);
                        self.conflicts.push((net, *existing, dim, chain));
                    }
                    false
                }
                Some(_) => false,
                None => {
                    let chain = chain_from(self);
                    self.chains.insert(net, chain);
                    self.dims.insert(net, dim);
                    true
                }
            }
        }
    }

    let mut inf = Infer {
        dims: HashMap::new(),
        chains: HashMap::new(),
        conflicts: Vec::new(),
    };
    // GABM012 violations: (net, offending dimension, function symbol).
    let mut func_violations: Vec<(NetId, Dimension, SymbolId)> = Vec::new();

    // Seed from fixed port dimensions.
    for sym in d.symbols() {
        for (idx, spec) in sym.ports().iter().enumerate() {
            if let Some(dim) = spec.dimension {
                let pr = PortRef {
                    symbol: SymbolId(sym.id),
                    port: idx,
                };
                if let Some(net) = d.net_of(pr) {
                    inf.assign(
                        net.id,
                        dim,
                        format!("port '{}' of {sym} is fixed to {dim}", spec.name),
                        None,
                    );
                }
            }
        }
    }

    // Fixpoint propagation through symbol semantics.
    let net_at = |sym: &crate::symbol::Symbol, name: &str| -> Option<NetId> {
        sym.port_index(name).and_then(|idx| {
            d.net_of(PortRef {
                symbol: SymbolId(sym.id),
                port: idx,
            })
            .map(|n| n.id)
        })
    };

    let mut changed = true;
    let mut rounds = 0;
    while changed && rounds < 64 {
        changed = false;
        rounds += 1;
        for sym in d.symbols() {
            match &sym.kind {
                SymbolKind::Gain => {
                    let prop_dim = property_dimension(d, sym.property("a"));
                    if let (Some(i), Some(o)) = (net_at(sym, "in"), net_at(sym, "out")) {
                        if let Some(di) = inf.dims.get(&i).copied() {
                            let dim = di * prop_dim;
                            changed |= inf.assign(
                                o,
                                dim,
                                format!("{di} scaled by {sym} yields {dim}"),
                                Some(i),
                            );
                        } else if let Some(doo) = inf.dims.get(&o).copied() {
                            let dim = doo / prop_dim;
                            changed |= inf.assign(
                                i,
                                dim,
                                format!("{doo} back through {sym} yields {dim}"),
                                Some(o),
                            );
                        }
                    }
                }
                SymbolKind::Limiter
                | SymbolKind::Delay
                | SymbolKind::UnitDelay
                | SymbolKind::TransferFunction { .. } => {
                    if let (Some(i), Some(o)) = (net_at(sym, "in"), net_at(sym, "out")) {
                        if let Some(di) = inf.dims.get(&i).copied() {
                            changed |= inf.assign(
                                o,
                                di,
                                format!("{di} passes through {sym} unchanged"),
                                Some(i),
                            );
                        } else if let Some(doo) = inf.dims.get(&o).copied() {
                            changed |= inf.assign(
                                i,
                                doo,
                                format!("{doo} back through {sym} unchanged"),
                                Some(o),
                            );
                        }
                    }
                }
                SymbolKind::Differentiator => {
                    if let (Some(i), Some(o)) = (net_at(sym, "in"), net_at(sym, "out")) {
                        if let Some(di) = inf.dims.get(&i).copied() {
                            let dim = di.per_time();
                            changed |= inf.assign(
                                o,
                                dim,
                                format!("{di} differentiated by {sym} yields {dim}"),
                                Some(i),
                            );
                        } else if let Some(doo) = inf.dims.get(&o).copied() {
                            let dim = doo.times_time();
                            changed |= inf.assign(
                                i,
                                dim,
                                format!("{doo} back through {sym} yields {dim}"),
                                Some(o),
                            );
                        }
                    }
                }
                SymbolKind::Integrator => {
                    if let (Some(i), Some(o)) = (net_at(sym, "in"), net_at(sym, "out")) {
                        if let Some(di) = inf.dims.get(&i).copied() {
                            let dim = di.times_time();
                            changed |= inf.assign(
                                o,
                                dim,
                                format!("{di} integrated by {sym} yields {dim}"),
                                Some(i),
                            );
                        } else if let Some(doo) = inf.dims.get(&o).copied() {
                            let dim = doo.per_time();
                            changed |= inf.assign(
                                i,
                                dim,
                                format!("{doo} back through {sym} yields {dim}"),
                                Some(o),
                            );
                        }
                    }
                }
                SymbolKind::Adder { signs } => {
                    let nets: Vec<Option<NetId>> = (0..signs.len())
                        .map(|k| net_at(sym, &format!("in{k}")))
                        .chain([net_at(sym, "out")])
                        .collect();
                    let known = nets
                        .iter()
                        .flatten()
                        .find_map(|n| inf.dims.get(n).copied().map(|dim| (*n, dim)));
                    if let Some((src, dim)) = known {
                        for n in nets.iter().flatten() {
                            changed |= inf.assign(
                                *n,
                                dim,
                                format!("{sym} carries one quantity ({dim}) on every port"),
                                Some(src),
                            );
                        }
                    }
                }
                SymbolKind::Multiplier { ops } => {
                    let in_nets: Vec<Option<NetId>> = (0..ops.len())
                        .map(|k| net_at(sym, &format!("in{k}")))
                        .collect();
                    let out_net = net_at(sym, "out");
                    let in_dims: Vec<Option<Dimension>> = in_nets
                        .iter()
                        .map(|n| n.and_then(|n| inf.dims.get(&n).copied()))
                        .collect();
                    if in_dims.iter().all(Option::is_some) {
                        let mut acc = Dimension::NONE;
                        for (dim, mul) in in_dims.iter().zip(ops) {
                            let dim = dim.expect("checked above");
                            acc = if *mul { acc * dim } else { acc / dim };
                        }
                        if let Some(o) = out_net {
                            changed |= inf.assign(
                                o,
                                acc,
                                format!("{sym} combines its input quantities into {acc}"),
                                in_nets.first().copied().flatten(),
                            );
                        }
                    }
                }
                SymbolKind::Separator => {
                    if let Some(i) = net_at(sym, "in") {
                        if let Some(di) = inf.dims.get(&i).copied() {
                            for name in ["pos", "neg"] {
                                if let Some(o) = net_at(sym, name) {
                                    changed |= inf.assign(
                                        o,
                                        di,
                                        format!("{di} passes through {sym} unchanged"),
                                        Some(i),
                                    );
                                }
                            }
                        }
                    }
                }
                SymbolKind::Function { func } => {
                    for k in 0..func.arity() {
                        if let Some(i) = net_at(sym, &format!("in{k}")) {
                            if let Some(di) = inf.dims.get(&i).copied() {
                                if !di.is_none() && !func_violations.iter().any(|(n, _, _)| *n == i)
                                {
                                    func_violations.push((i, di, SymbolId(sym.id)));
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }

    for (net, a, b, chain) in inf.conflicts {
        let mut diag = Diagnostic::new(
            Code::DimensionConflict,
            format!(
                "net {} mixes incompatible quantities: {a} vs {b} (oil and water will not mix)",
                net.0
            ),
            Location::Net(net),
        );
        if let Some(established) = inf.chains.get(&net) {
            for step in established {
                diag = diag.with_note(format!("{a} established because {step}"));
            }
        }
        for step in &chain {
            diag = diag.with_note(format!("{b} inferred because {step}"));
        }
        report.push(diag);
    }
    for (net, dim, sym) in func_violations {
        let name = d
            .symbol(sym)
            .map(|s| s.to_string())
            .unwrap_or_else(|_| format!("symbol {}", sym.0));
        let mut diag = Diagnostic::new(
            Code::DimensionedFunctionInput,
            format!(
                "input of {name} must be dimensionless but net {} carries {dim}",
                net.0
            ),
            Location::Net(net),
        );
        if let Some(chain) = inf.chains.get(&net) {
            for step in chain {
                diag = diag.with_note(format!("{dim} established because {step}"));
            }
        }
        report.push(diag);
    }
    report.net_dimensions = inf.dims;
}

/// GABM008 — detects algebraic loops (cycles through combinational symbols
/// only) and reports the full cycle path.
fn check_algebraic_loops(d: &FunctionalDiagram, report: &mut CheckReport) {
    let n = d.symbol_count();
    // adjacency: driver symbol -> consumer symbol (combinational consumers
    // only; state elements break the loop).
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
    for net in d.nets() {
        let mut driver: Option<usize> = None;
        let mut consumers: Vec<usize> = Vec::new();
        for p in &net.ports {
            if let Ok(sym) = d.symbol(p.symbol) {
                match sym.ports()[p.port].direction {
                    PortDirection::Output => driver = Some(sym.id),
                    PortDirection::Input => consumers.push(sym.id),
                    PortDirection::Bidir => {}
                }
            }
        }
        if let Some(drv) = driver {
            for c in consumers {
                // Only pure delays break loops: the discretized integrator
                // and transfer function still reference their *current*
                // input, so a loop through them could not be ordered into
                // single-pass sequential code (§4.1).
                let stateful = matches!(
                    d.symbol(SymbolId(c)).map(|s| &s.kind),
                    Ok(SymbolKind::UnitDelay) | Ok(SymbolKind::Delay)
                );
                if !stateful {
                    adj[drv].push(c);
                }
            }
        }
    }
    // DFS three-colour cycle detection carrying the visit stack so the
    // whole cycle can be reported, not just one member.
    let mut colour = vec![0u8; n + 1];
    let mut stack: Vec<usize> = Vec::new();
    fn dfs(
        v: usize,
        adj: &[Vec<usize>],
        colour: &mut [u8],
        stack: &mut Vec<usize>,
    ) -> Option<Vec<usize>> {
        colour[v] = 1;
        stack.push(v);
        for &w in &adj[v] {
            if colour[w] == 1 {
                let start = stack
                    .iter()
                    .position(|&x| x == w)
                    .expect("grey node is on the stack");
                return Some(stack[start..].to_vec());
            }
            if colour[w] == 0 {
                if let Some(cycle) = dfs(w, adj, colour, stack) {
                    return Some(cycle);
                }
            }
        }
        stack.pop();
        colour[v] = 2;
        None
    }
    for v in 1..=n {
        if colour[v] == 0 {
            if let Some(cycle) = dfs(v, &adj, &mut colour, &mut stack) {
                let describe = |id: usize| {
                    d.symbol(SymbolId(id))
                        .map(|s| s.to_string())
                        .unwrap_or_else(|_| format!("symbol {id}"))
                };
                let path: Vec<String> = cycle
                    .iter()
                    .chain([&cycle[0]])
                    .map(|&id| describe(id))
                    .collect();
                report.push(
                    Diagnostic::new(
                        Code::AlgebraicLoop,
                        "algebraic loop: a combinational cycle must be broken by a delay element"
                            .to_string(),
                        Location::Symbol(SymbolId(cycle[0])),
                    )
                    .with_note(format!("cycle path: {}", path.join(" -> "))),
                );
                return;
            }
        }
    }
}

/// GABM009 — diagram dead code: a symbol with output ports none of whose
/// values (transitively) reach a generator, a pin, or the diagram
/// interface contributes nothing to the generated model.
fn check_dead_symbols(d: &FunctionalDiagram, report: &mut CheckReport) {
    let n = d.symbol_count();
    let exposed: Vec<PortRef> = d.interface().iter().map(|itf| itf.inner).collect();
    // reversed edges: consumer -> drivers feeding it.
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
    for net in d.nets() {
        let mut drivers: Vec<usize> = Vec::new();
        let mut consumers: Vec<usize> = Vec::new();
        for p in &net.ports {
            if let Ok(sym) = d.symbol(p.symbol) {
                match sym.ports()[p.port].direction {
                    PortDirection::Output => drivers.push(sym.id),
                    PortDirection::Input | PortDirection::Bidir => consumers.push(sym.id),
                }
            }
        }
        for &c in &consumers {
            for &drv in &drivers {
                rev[c].push(drv);
            }
        }
    }
    // Live seeds: sinks with externally observable effects.
    let mut live = vec![false; n + 1];
    let mut queue: Vec<usize> = Vec::new();
    for sym in d.symbols() {
        let is_sink = matches!(
            sym.kind,
            SymbolKind::Generator { .. } | SymbolKind::Pin { .. }
        ) || exposed.iter().any(|pr| pr.symbol.0 == sym.id);
        if is_sink {
            live[sym.id] = true;
            queue.push(sym.id);
        }
    }
    while let Some(v) = queue.pop() {
        for &w in &rev[v] {
            if !live[w] {
                live[w] = true;
                queue.push(w);
            }
        }
    }
    for sym in d.symbols() {
        if live[sym.id] {
            continue;
        }
        let has_output = sym
            .ports()
            .iter()
            .any(|p| p.direction == PortDirection::Output);
        let any_connected = sym.ports().iter().enumerate().any(|(idx, _)| {
            let pr = PortRef {
                symbol: SymbolId(sym.id),
                port: idx,
            };
            d.net_of(pr).is_some() || exposed.contains(&pr)
        });
        // Fully disconnected symbols are already GABM005.
        if has_output && any_connected {
            report.push(
                Diagnostic::new(
                    Code::DeadSymbol,
                    format!(
                        "{sym} is dead: its output never reaches a generator, pin, or interface port"
                    ),
                    Location::Symbol(SymbolId(sym.id)),
                )
                .with_fix(Fix::new(
                    format!("remove the dead {sym}"),
                    vec![FixEdit::RemoveSymbol {
                        symbol: SymbolId(sym.id),
                    }],
                )),
            );
        }
    }
}

/// GABM010 — a declared parameter that no property and no parameter symbol
/// references would silently disappear from the generated model's
/// behaviour (it still appears in the parameter list).
fn check_unused_parameters(d: &FunctionalDiagram, report: &mut CheckReport) {
    let mut used: HashSet<&str> = HashSet::new();
    for sym in d.symbols() {
        for value in sym.properties.values() {
            match value {
                PropertyValue::Param(p) | PropertyValue::NegParam(p) => {
                    used.insert(p.as_str());
                }
                PropertyValue::Number(_) => {}
            }
        }
        if let SymbolKind::Parameter { param, .. } = &sym.kind {
            used.insert(param.as_str());
        }
    }
    for decl in d.parameters() {
        if !used.contains(decl.name.as_str()) {
            report.push(
                Diagnostic::new(
                    Code::UnusedParameter,
                    format!("parameter '{}' is declared but never referenced", decl.name),
                    Location::None,
                )
                .with_fix(Fix::new(
                    format!("remove the unused parameter declaration '{}'", decl.name),
                    vec![FixEdit::RemoveParameter {
                        name: decl.name.clone(),
                    }],
                )),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::{FuncKind, PropertyValue};

    fn probe_to_gain() -> FunctionalDiagram {
        let mut d = FunctionalDiagram::new("t");
        d.add_parameter("gin", 1e-6, Dimension::CONDUCTANCE);
        let pin = d.add_symbol(SymbolKind::Pin { name: "in".into() });
        let probe = d.add_symbol(SymbolKind::Probe {
            quantity: Dimension::VOLTAGE,
        });
        let gain = d.add_symbol_with(
            SymbolKind::Gain,
            &[("a", PropertyValue::Param("gin".into()))],
            None,
        );
        let gen = d.add_symbol(SymbolKind::Generator {
            quantity: Dimension::CURRENT,
        });
        d.connect(d.port(pin, "pin").unwrap(), d.port(probe, "pin").unwrap())
            .unwrap();
        d.connect(d.port(pin, "pin").unwrap(), d.port(gen, "pin").unwrap())
            .unwrap();
        d.connect(d.port(probe, "out").unwrap(), d.port(gain, "in").unwrap())
            .unwrap();
        d.connect(d.port(gain, "out").unwrap(), d.port(gen, "in").unwrap())
            .unwrap();
        d
    }

    fn has_code(r: &CheckReport, code: Code) -> bool {
        r.diagnostics.iter().any(|di| di.code == code)
    }

    #[test]
    fn clean_diagram_passes() {
        let d = probe_to_gain();
        let r = check_diagram(&d);
        assert!(r.is_consistent(), "diagnostics: {:?}", r.diagnostics);
        assert_eq!(r.error_count(), 0);
        assert!(
            r.diagnostics.is_empty(),
            "no warnings either: {:?}",
            r.diagnostics
        );
    }

    #[test]
    fn dimension_inference_through_gain() {
        let d = probe_to_gain();
        let r = check_diagram(&d);
        // Net from gain.out to generator.in must be CURRENT:
        // VOLTAGE · CONDUCTANCE.
        let gen_in = d
            .net_of(d.port(crate::diagram::SymbolId(4), "in").unwrap())
            .unwrap();
        assert_eq!(r.net_dimensions.get(&gen_in.id), Some(&Dimension::CURRENT));
    }

    #[test]
    fn oil_and_water_detected() {
        // A voltage probe wired straight into a current generator: the gain
        // is missing, so the voltage net meets a current port.
        let mut d = FunctionalDiagram::new("bad");
        let pin = d.add_symbol(SymbolKind::Pin { name: "in".into() });
        let probe = d.add_symbol(SymbolKind::Probe {
            quantity: Dimension::VOLTAGE,
        });
        let gen = d.add_symbol(SymbolKind::Generator {
            quantity: Dimension::CURRENT,
        });
        d.connect(d.port(pin, "pin").unwrap(), d.port(probe, "pin").unwrap())
            .unwrap();
        d.connect(d.port(pin, "pin").unwrap(), d.port(gen, "pin").unwrap())
            .unwrap();
        d.connect(d.port(probe, "out").unwrap(), d.port(gen, "in").unwrap())
            .unwrap();
        let r = check_diagram(&d);
        assert!(!r.is_consistent());
        let conflict = r
            .diagnostics
            .iter()
            .find(|di| di.code == Code::DimensionConflict)
            .expect("GABM007 reported");
        assert!(conflict.message.contains("oil and water"));
        assert!(
            !conflict.notes.is_empty(),
            "conflict must explain its inference chain"
        );
    }

    #[test]
    fn undriven_input_detected() {
        let mut d = FunctionalDiagram::new("u");
        let g = d.add_symbol_with(SymbolKind::Gain, &[("a", PropertyValue::Number(1.0))], None);
        let f = d.add_symbol(SymbolKind::Function {
            func: FuncKind::Sin,
        });
        // Connect the two inputs together with no driver at all.
        d.connect(d.port(g, "in").unwrap(), d.port(f, "in0").unwrap())
            .unwrap();
        let r = check_diagram(&d);
        assert!(!r.is_consistent());
        assert!(has_code(&r, Code::UndrivenNet));
    }

    #[test]
    fn undriven_net_suggests_dimension_matched_drivers() {
        // A net consumed by a current generator with no driver. Of the
        // dangling outputs in the diagram, the current-dimensioned
        // parameter and the dimension-agnostic gain are plausible
        // drivers; the voltage probe is filtered out by its dimension.
        let mut d = FunctionalDiagram::new("suggest");
        let gen = d.add_symbol(SymbolKind::Generator {
            quantity: Dimension::CURRENT,
        });
        let g = d.add_symbol_with(SymbolKind::Gain, &[("a", PropertyValue::Number(1.0))], None);
        let probe = d.add_symbol(SymbolKind::Probe {
            quantity: Dimension::VOLTAGE,
        });
        let ipar = d.add_symbol(SymbolKind::Parameter {
            param: "ib".into(),
            dimension: Dimension::CURRENT,
        });
        // Two inputs tied together with no driver: GABM002.
        d.connect(d.port(gen, "in").unwrap(), d.port(g, "in").unwrap())
            .unwrap();
        let r = check_diagram(&d);
        let diag = r
            .diagnostics
            .iter()
            .find(|di| di.code == Code::UndrivenNet)
            .expect("GABM002 reported");
        let probe_sym = d.symbol(probe).unwrap().to_string();
        let ipar_sym = d.symbol(ipar).unwrap().to_string();
        let gain_sym = d.symbol(g).unwrap().to_string();
        assert!(
            diag.help.iter().any(|h| h.contains(&ipar_sym)),
            "current parameter suggested: {:?}",
            diag.help
        );
        assert!(
            diag.help.iter().any(|h| h.contains(&gain_sym)),
            "dimension-agnostic gain suggested: {:?}",
            diag.help
        );
        assert!(
            !diag.help.iter().any(|h| h.contains(&probe_sym)),
            "voltage probe must be filtered out: {:?}",
            diag.help
        );
        assert!(diag.fix.is_none(), "suggestions are help, not autofixes");
    }

    #[test]
    fn unconnected_input_suggests_sources_but_never_its_own_output() {
        // A generator input dangles next to a dangling voltage probe
        // output: the probe is suggested (dimension VOLTAGE matches the
        // voltage generator input); the generator's own port list holds
        // no outputs, and the gain's dangling output is suggested too —
        // but a symbol is never told to feed itself.
        let mut d = FunctionalDiagram::new("suggest2");
        let gen = d.add_symbol(SymbolKind::Generator {
            quantity: Dimension::VOLTAGE,
        });
        let probe = d.add_symbol(SymbolKind::Probe {
            quantity: Dimension::VOLTAGE,
        });
        // Tie the bidir pins together so both symbols are partly
        // connected and only the in/out ports dangle.
        d.connect(d.port(gen, "pin").unwrap(), d.port(probe, "pin").unwrap())
            .unwrap();
        let r = check_diagram(&d);
        let diag = r
            .diagnostics
            .iter()
            .find(|di| di.code == Code::UnconnectedInput)
            .expect("GABM003 reported");
        let probe_sym = d.symbol(probe).unwrap().to_string();
        assert!(
            diag.help.iter().any(|h| h.contains(&probe_sym)),
            "matching probe output suggested: {:?}",
            diag.help
        );

        // A lone gain: its own dangling output must not be offered as a
        // source for its own dangling input (that would be GABM008).
        let mut d = FunctionalDiagram::new("selfless");
        d.add_symbol_with(SymbolKind::Gain, &[("a", PropertyValue::Number(1.0))], None);
        let r = check_diagram(&d);
        let diag = r
            .diagnostics
            .iter()
            .find(|di| di.code == Code::UnconnectedInput)
            .expect("GABM003 reported");
        assert!(
            diag.help.is_empty(),
            "no self-loop suggestion: {:?}",
            diag.help
        );
    }

    #[test]
    fn connection_suggestions_are_capped_at_three() {
        let mut d = FunctionalDiagram::new("many");
        let gen = d.add_symbol(SymbolKind::Generator {
            quantity: Dimension::CURRENT,
        });
        let g = d.add_symbol_with(SymbolKind::Gain, &[("a", PropertyValue::Number(1.0))], None);
        d.connect(d.port(gen, "in").unwrap(), d.port(g, "in").unwrap())
            .unwrap();
        for k in 0..5 {
            d.add_symbol(SymbolKind::Parameter {
                param: format!("p{k}"),
                dimension: Dimension::CURRENT,
            });
        }
        let r = check_diagram(&d);
        let diag = r
            .diagnostics
            .iter()
            .find(|di| di.code == Code::UndrivenNet)
            .expect("GABM002 reported");
        assert_eq!(diag.help.len(), 3, "{:?}", diag.help);
    }

    #[test]
    fn dangling_input_detected() {
        let mut d = FunctionalDiagram::new("dangling");
        d.add_symbol_with(SymbolKind::Gain, &[("a", PropertyValue::Number(2.0))], None);
        let r = check_diagram(&d);
        assert!(!r.is_consistent());
        assert!(has_code(&r, Code::UnconnectedInput));
        assert!(has_code(&r, Code::DisconnectedSymbol));
    }

    #[test]
    fn missing_gain_property_detected() {
        let mut d = FunctionalDiagram::new("m");
        let g = d.add_symbol(SymbolKind::Gain);
        let c = d.add_symbol(SymbolKind::Constant { value: 1.0 });
        d.connect(d.port(c, "out").unwrap(), d.port(g, "in").unwrap())
            .unwrap();
        let r = check_diagram(&d);
        let diag = r
            .diagnostics
            .iter()
            .find(|di| di.code == Code::MissingProperty)
            .expect("GABM006 reported");
        assert!(diag.message.contains("gain property"));
    }

    #[test]
    fn degenerate_limiter_detected() {
        let mut d = FunctionalDiagram::new("lim");
        let c = d.add_symbol(SymbolKind::Constant { value: 1.0 });
        let lim = d.add_symbol_with(
            SymbolKind::Limiter,
            &[
                ("min", PropertyValue::Number(2.0)),
                ("max", PropertyValue::Number(-2.0)),
            ],
            None,
        );
        d.connect(d.port(c, "out").unwrap(), d.port(lim, "in").unwrap())
            .unwrap();
        let r = check_diagram(&d);
        assert!(!r.is_consistent());
        assert!(has_code(&r, Code::DegenerateLimiter));
    }

    #[test]
    fn degenerate_limiter_through_parameter_defaults() {
        let mut d = FunctionalDiagram::new("lim2");
        d.add_parameter("rate", -5.0, Dimension::NONE);
        let c = d.add_symbol(SymbolKind::Constant { value: 1.0 });
        // min = -rate = +5, max = rate = -5: empty band via defaults.
        let lim = d.add_symbol_with(
            SymbolKind::Limiter,
            &[
                ("min", PropertyValue::NegParam("rate".into())),
                ("max", PropertyValue::Param("rate".into())),
            ],
            None,
        );
        d.connect(d.port(c, "out").unwrap(), d.port(lim, "in").unwrap())
            .unwrap();
        let r = check_diagram(&d);
        assert!(has_code(&r, Code::DegenerateLimiter));
    }

    #[test]
    fn algebraic_loop_detected_with_full_path() {
        let mut d = FunctionalDiagram::new("loop");
        let g1 = d.add_symbol_with(SymbolKind::Gain, &[("a", PropertyValue::Number(1.0))], None);
        let g2 = d.add_symbol_with(SymbolKind::Gain, &[("a", PropertyValue::Number(1.0))], None);
        d.connect(d.port(g1, "out").unwrap(), d.port(g2, "in").unwrap())
            .unwrap();
        d.connect(d.port(g2, "out").unwrap(), d.port(g1, "in").unwrap())
            .unwrap();
        let r = check_diagram(&d);
        let diag = r
            .diagnostics
            .iter()
            .find(|di| di.code == Code::AlgebraicLoop)
            .expect("GABM008 reported");
        assert!(diag.message.contains("algebraic loop"));
        let path = diag
            .notes
            .iter()
            .find(|n| n.starts_with("cycle path:"))
            .expect("cycle path note");
        // Both loop members and the closing hop appear in the path.
        assert_eq!(path.matches("->").count(), 2, "path: {path}");
    }

    #[test]
    fn delay_breaks_loop() {
        // The slew-rate pattern: y feeds back through a unit delay — legal.
        let mut d = FunctionalDiagram::new("fb");
        let add = d.add_symbol(SymbolKind::Adder {
            signs: vec![true, true],
        });
        let dly = d.add_symbol(SymbolKind::UnitDelay);
        let c = d.add_symbol(SymbolKind::Constant { value: 1.0 });
        d.connect(d.port(c, "out").unwrap(), d.port(add, "in0").unwrap())
            .unwrap();
        d.connect(d.port(add, "out").unwrap(), d.port(dly, "in").unwrap())
            .unwrap();
        d.connect(d.port(dly, "out").unwrap(), d.port(add, "in1").unwrap())
            .unwrap();
        let r = check_diagram(&d);
        assert!(!has_code(&r, Code::AlgebraicLoop), "{:?}", r.diagnostics);
    }

    #[test]
    fn dead_symbol_detected() {
        // probe -> gain chain that reaches the generator, plus a second
        // gain hanging off the probe whose output goes nowhere.
        let mut d = probe_to_gain();
        let dead = d.add_symbol_with(SymbolKind::Gain, &[("a", PropertyValue::Number(2.0))], None);
        let probe_out = d.port(crate::diagram::SymbolId(2), "out").unwrap();
        d.connect(probe_out, d.port(dead, "in").unwrap()).unwrap();
        let r = check_diagram(&d);
        assert!(
            r.is_consistent(),
            "dead code is a warning: {:?}",
            r.diagnostics
        );
        let diag = r
            .diagnostics
            .iter()
            .find(|di| di.code == Code::DeadSymbol)
            .expect("GABM009 reported");
        assert_eq!(diag.symbol(), Some(dead));
    }

    #[test]
    fn unused_parameter_detected() {
        let mut d = probe_to_gain();
        d.add_parameter("ghost", 1.0, Dimension::NONE);
        let r = check_diagram(&d);
        assert!(r.is_consistent());
        let diag = r
            .diagnostics
            .iter()
            .find(|di| di.code == Code::UnusedParameter)
            .expect("GABM010 reported");
        assert!(diag.message.contains("ghost"));
    }

    #[test]
    fn adder_unifies_dimensions() {
        let mut d = FunctionalDiagram::new("a");
        d.add_parameter("ra", 1.0, Dimension::RESISTANCE);
        let p1 = d.add_symbol(SymbolKind::Parameter {
            param: "x".into(),
            dimension: Dimension::VOLTAGE,
        });
        let g = d.add_symbol_with(SymbolKind::Gain, &[("a", PropertyValue::Number(2.0))], None);
        let add = d.add_symbol(SymbolKind::Adder {
            signs: vec![true, false],
        });
        d.connect(d.port(p1, "out").unwrap(), d.port(add, "in0").unwrap())
            .unwrap();
        d.connect(d.port(g, "out").unwrap(), d.port(add, "in1").unwrap())
            .unwrap();
        // Gain input comes from the adder output (no loop: gain out → adder
        // in1, adder out → nothing; drive gain.in from p1 too).
        d.connect(d.port(p1, "out").unwrap(), d.port(g, "in").unwrap())
            .unwrap();
        let r = check_diagram(&d);
        // adder in1 (gain out of a dimensionless gain on voltage) = VOLTAGE;
        // unified with in0 (VOLTAGE) and out.
        let out_net = d.net_of(d.port(add, "in1").unwrap()).unwrap();
        assert_eq!(r.net_dimensions.get(&out_net.id), Some(&Dimension::VOLTAGE));
    }

    #[test]
    fn multiplier_combines_dimensions() {
        let mut d = FunctionalDiagram::new("m");
        let v = d.add_symbol(SymbolKind::Parameter {
            param: "v".into(),
            dimension: Dimension::VOLTAGE,
        });
        let i = d.add_symbol(SymbolKind::Parameter {
            param: "i".into(),
            dimension: Dimension::CURRENT,
        });
        let mul = d.add_symbol(SymbolKind::Multiplier {
            ops: vec![true, true],
        });
        let lim = d.add_symbol_with(
            SymbolKind::Limiter,
            &[
                ("min", PropertyValue::Number(0.0)),
                ("max", PropertyValue::Number(1.0)),
            ],
            None,
        );
        d.connect(d.port(v, "out").unwrap(), d.port(mul, "in0").unwrap())
            .unwrap();
        d.connect(d.port(i, "out").unwrap(), d.port(mul, "in1").unwrap())
            .unwrap();
        d.connect(d.port(mul, "out").unwrap(), d.port(lim, "in").unwrap())
            .unwrap();
        let r = check_diagram(&d);
        let out_net = d.net_of(d.port(lim, "in").unwrap()).unwrap();
        assert_eq!(r.net_dimensions.get(&out_net.id), Some(&Dimension::POWER));
        // And the limiter propagates it onward — but its out is dangling, so
        // just confirm no dimension errors occurred.
        assert!(!has_code(&r, Code::DimensionConflict));
    }

    #[test]
    fn function_requires_dimensionless_input() {
        let mut d = FunctionalDiagram::new("f");
        let v = d.add_symbol(SymbolKind::Parameter {
            param: "v".into(),
            dimension: Dimension::VOLTAGE,
        });
        let f = d.add_symbol(SymbolKind::Function {
            func: FuncKind::Sin,
        });
        d.connect(d.port(v, "out").unwrap(), d.port(f, "in0").unwrap())
            .unwrap();
        let r = check_diagram(&d);
        assert!(!r.is_consistent());
        assert!(has_code(&r, Code::DimensionedFunctionInput));
    }

    #[test]
    fn differentiator_shifts_dimension() {
        let mut d = FunctionalDiagram::new("dd");
        let v = d.add_symbol(SymbolKind::Parameter {
            param: "v".into(),
            dimension: Dimension::VOLTAGE,
        });
        let dt = d.add_symbol(SymbolKind::Differentiator);
        let lim = d.add_symbol_with(
            SymbolKind::Limiter,
            &[
                ("min", PropertyValue::Number(-1.0)),
                ("max", PropertyValue::Number(1.0)),
            ],
            None,
        );
        d.connect(d.port(v, "out").unwrap(), d.port(dt, "in").unwrap())
            .unwrap();
        d.connect(d.port(dt, "out").unwrap(), d.port(lim, "in").unwrap())
            .unwrap();
        let r = check_diagram(&d);
        let net = d.net_of(d.port(lim, "in").unwrap()).unwrap();
        assert_eq!(
            r.net_dimensions.get(&net.id),
            Some(&Dimension::VOLTAGE_RATE)
        );
    }
}
