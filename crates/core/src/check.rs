//! Diagram consistency checking (§3.2: "Once a diagram has been edited, a
//! consistency test can be performed").
//!
//! Three families of rules are enforced:
//!
//! 1. **structure** — every consumed net is driven by exactly one output
//!    port; no dangling inputs;
//! 2. **quantities** — physical dimensions are propagated through the
//!    symbols and conflicts are reported ("oil and water will not mix");
//! 3. **causality** — algebraic loops (cycles not broken by a state element
//!    such as the unit delay of the slew-rate construct) are rejected,
//!    since the generated sequential code could not be ordered (§4.1).

use crate::diagram::{FunctionalDiagram, NetId, PortRef, SymbolId};
use crate::quantity::Dimension;
use crate::symbol::{PortDirection, PropertyValue, SymbolKind};
use std::collections::HashMap;
use std::fmt;

/// Severity of a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Severity {
    /// The diagram cannot be code-generated.
    Error,
    /// Suspicious but tolerated.
    Warning,
}

/// One finding of the consistency test.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
    /// Offending symbol, when applicable.
    pub symbol: Option<SymbolId>,
    /// Offending net, when applicable.
    pub net: Option<NetId>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "{tag}: {}", self.message)
    }
}

/// The outcome of [`check_diagram`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckReport {
    /// All findings.
    pub diagnostics: Vec<Diagnostic>,
    /// Inferred physical dimension of each net (where derivable).
    pub net_dimensions: HashMap<NetId, Dimension>,
}

impl CheckReport {
    /// Number of errors.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warnings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// `true` if no errors were found (warnings allowed).
    pub fn is_consistent(&self) -> bool {
        self.error_count() == 0
    }

    fn error(&mut self, message: String, symbol: Option<SymbolId>, net: Option<NetId>) {
        self.diagnostics.push(Diagnostic {
            severity: Severity::Error,
            message,
            symbol,
            net,
        });
    }

    fn warn(&mut self, message: String, symbol: Option<SymbolId>, net: Option<NetId>) {
        self.diagnostics.push(Diagnostic {
            severity: Severity::Warning,
            message,
            symbol,
            net,
        });
    }
}

/// Dimension of a property value: literals are dimensionless; parameter
/// references inherit the declared parameter dimension.
fn property_dimension(d: &FunctionalDiagram, value: Option<&PropertyValue>) -> Dimension {
    match value {
        Some(PropertyValue::Param(p)) => d
            .parameters()
            .iter()
            .find(|decl| decl.name == *p)
            .map(|decl| decl.dimension)
            .unwrap_or(Dimension::NONE),
        _ => Dimension::NONE,
    }
}

/// Runs the full consistency test on a diagram.
pub fn check_diagram(d: &FunctionalDiagram) -> CheckReport {
    let mut report = CheckReport::default();
    check_structure(d, &mut report);
    infer_dimensions(d, &mut report);
    check_algebraic_loops(d, &mut report);
    report
}

fn check_structure(d: &FunctionalDiagram, report: &mut CheckReport) {
    // Net driver rule.
    for net in d.nets() {
        let mut outputs = 0usize;
        let mut inputs = 0usize;
        for p in &net.ports {
            if let Ok(sym) = d.symbol(p.symbol) {
                match sym.ports()[p.port].direction {
                    PortDirection::Output => outputs += 1,
                    PortDirection::Input => inputs += 1,
                    PortDirection::Bidir => {}
                }
            }
        }
        if outputs > 1 {
            report.error(
                format!("net {} driven by {} output ports", net.id.0, outputs),
                None,
                Some(net.id),
            );
        }
        if inputs > 0 && outputs == 0 {
            report.error(
                format!(
                    "net {} is consumed but bound to no output port (\"a net must be bound to one and only one output port\")",
                    net.id.0
                ),
                None,
                Some(net.id),
            );
        }
    }
    // Port connection rule. Ports exposed on the diagram interface are
    // connected from the outside once the diagram is used hierarchically.
    let exposed: Vec<PortRef> = d.interface().iter().map(|itf| itf.inner).collect();
    for sym in d.symbols() {
        let ports = sym.ports();
        let mut any_connected = false;
        for (idx, spec) in ports.iter().enumerate() {
            let pr = PortRef {
                symbol: SymbolId(sym.id),
                port: idx,
            };
            let connected = d.net_of(pr).is_some() || exposed.contains(&pr);
            any_connected |= connected;
            if !connected && spec.direction == PortDirection::Input {
                report.error(
                    format!("input port '{}' of {sym} is unconnected", spec.name),
                    Some(SymbolId(sym.id)),
                    None,
                );
            }
            if !connected && spec.direction == PortDirection::Output {
                report.warn(
                    format!("output port '{}' of {sym} is unconnected", spec.name),
                    Some(SymbolId(sym.id)),
                    None,
                );
            }
        }
        if !any_connected && !ports.is_empty() {
            report.warn(format!("{sym} is not connected at all"), Some(SymbolId(sym.id)), None);
        }
        // Property presence.
        if matches!(sym.kind, SymbolKind::Gain) && sym.property("a").is_none() {
            report.error(
                format!("{sym} is missing its gain property 'a'"),
                Some(SymbolId(sym.id)),
                None,
            );
        }
        if matches!(sym.kind, SymbolKind::Limiter)
            && (sym.property("min").is_none() || sym.property("max").is_none())
        {
            report.error(
                format!("{sym} needs 'min' and 'max' properties"),
                Some(SymbolId(sym.id)),
                None,
            );
        }
    }
}

/// Propagates dimensions over nets to a fixpoint, reporting conflicts.
fn infer_dimensions(d: &FunctionalDiagram, report: &mut CheckReport) {
    let mut dims: HashMap<NetId, Dimension> = HashMap::new();
    let mut conflicts: Vec<(NetId, Dimension, Dimension)> = Vec::new();

    let assign = |dims: &mut HashMap<NetId, Dimension>,
                      conflicts: &mut Vec<(NetId, Dimension, Dimension)>,
                      net: NetId,
                      dim: Dimension|
     -> bool {
        match dims.get(&net) {
            Some(existing) if *existing != dim => {
                if !conflicts.iter().any(|(n, _, _)| *n == net) {
                    conflicts.push((net, *existing, dim));
                }
                false
            }
            Some(_) => false,
            None => {
                dims.insert(net, dim);
                true
            }
        }
    };

    // Seed from fixed port dimensions.
    for sym in d.symbols() {
        for (idx, spec) in sym.ports().iter().enumerate() {
            if let Some(dim) = spec.dimension {
                let pr = PortRef {
                    symbol: SymbolId(sym.id),
                    port: idx,
                };
                if let Some(net) = d.net_of(pr) {
                    assign(&mut dims, &mut conflicts, net.id, dim);
                }
            }
        }
    }

    // Fixpoint propagation through symbol semantics.
    let net_at = |sym: &crate::symbol::Symbol, name: &str| -> Option<NetId> {
        sym.port_index(name).and_then(|idx| {
            d.net_of(PortRef {
                symbol: SymbolId(sym.id),
                port: idx,
            })
            .map(|n| n.id)
        })
    };

    let mut changed = true;
    let mut rounds = 0;
    while changed && rounds < 64 {
        changed = false;
        rounds += 1;
        for sym in d.symbols() {
            match &sym.kind {
                SymbolKind::Gain => {
                    let prop_dim = property_dimension(d, sym.property("a"));
                    if let (Some(i), Some(o)) = (net_at(sym, "in"), net_at(sym, "out")) {
                        if let Some(di) = dims.get(&i).copied() {
                            changed |= assign(&mut dims, &mut conflicts, o, di * prop_dim);
                        } else if let Some(doo) = dims.get(&o).copied() {
                            changed |= assign(&mut dims, &mut conflicts, i, doo / prop_dim);
                        }
                    }
                }
                SymbolKind::Limiter | SymbolKind::Delay | SymbolKind::UnitDelay
                | SymbolKind::TransferFunction { .. } => {
                    if let (Some(i), Some(o)) = (net_at(sym, "in"), net_at(sym, "out")) {
                        if let Some(di) = dims.get(&i).copied() {
                            changed |= assign(&mut dims, &mut conflicts, o, di);
                        } else if let Some(doo) = dims.get(&o).copied() {
                            changed |= assign(&mut dims, &mut conflicts, i, doo);
                        }
                    }
                }
                SymbolKind::Differentiator => {
                    if let (Some(i), Some(o)) = (net_at(sym, "in"), net_at(sym, "out")) {
                        if let Some(di) = dims.get(&i).copied() {
                            changed |= assign(&mut dims, &mut conflicts, o, di.per_time());
                        } else if let Some(doo) = dims.get(&o).copied() {
                            changed |= assign(&mut dims, &mut conflicts, i, doo.times_time());
                        }
                    }
                }
                SymbolKind::Integrator => {
                    if let (Some(i), Some(o)) = (net_at(sym, "in"), net_at(sym, "out")) {
                        if let Some(di) = dims.get(&i).copied() {
                            changed |= assign(&mut dims, &mut conflicts, o, di.times_time());
                        } else if let Some(doo) = dims.get(&o).copied() {
                            changed |= assign(&mut dims, &mut conflicts, i, doo.per_time());
                        }
                    }
                }
                SymbolKind::Adder { signs } => {
                    let nets: Vec<Option<NetId>> = (0..signs.len())
                        .map(|k| net_at(sym, &format!("in{k}")))
                        .chain([net_at(sym, "out")])
                        .collect();
                    let known = nets
                        .iter()
                        .flatten()
                        .find_map(|n| dims.get(n).copied());
                    if let Some(dim) = known {
                        for n in nets.iter().flatten() {
                            changed |= assign(&mut dims, &mut conflicts, *n, dim);
                        }
                    }
                }
                SymbolKind::Multiplier { ops } => {
                    let in_nets: Vec<Option<NetId>> = (0..ops.len())
                        .map(|k| net_at(sym, &format!("in{k}")))
                        .collect();
                    let out_net = net_at(sym, "out");
                    let in_dims: Vec<Option<Dimension>> = in_nets
                        .iter()
                        .map(|n| n.and_then(|n| dims.get(&n).copied()))
                        .collect();
                    if in_dims.iter().all(Option::is_some) {
                        let mut acc = Dimension::NONE;
                        for (dim, mul) in in_dims.iter().zip(ops) {
                            let dim = dim.expect("checked above");
                            acc = if *mul { acc * dim } else { acc / dim };
                        }
                        if let Some(o) = out_net {
                            changed |= assign(&mut dims, &mut conflicts, o, acc);
                        }
                    }
                }
                SymbolKind::Separator => {
                    if let Some(i) = net_at(sym, "in") {
                        if let Some(di) = dims.get(&i).copied() {
                            for name in ["pos", "neg"] {
                                if let Some(o) = net_at(sym, name) {
                                    changed |= assign(&mut dims, &mut conflicts, o, di);
                                }
                            }
                        }
                    }
                }
                SymbolKind::Function { func } => {
                    // Function inputs must be dimensionless.
                    for k in 0..func.arity() {
                        if let Some(i) = net_at(sym, &format!("in{k}")) {
                            if let Some(di) = dims.get(&i).copied() {
                                if !di.is_none() {
                                    if !conflicts.iter().any(|(n, _, _)| *n == i) {
                                        conflicts.push((i, di, Dimension::NONE));
                                    }
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }

    for (net, a, b) in conflicts {
        report.error(
            format!(
                "net {} mixes incompatible quantities: {a} vs {b} (oil and water will not mix)",
                net.0
            ),
            None,
            Some(net),
        );
    }
    report.net_dimensions = dims;
}

/// Detects algebraic loops: cycles through combinational symbols only.
fn check_algebraic_loops(d: &FunctionalDiagram, report: &mut CheckReport) {
    let n = d.symbol_count();
    // adjacency: driver symbol -> consumer symbol (combinational consumers
    // only; state elements break the loop).
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
    for net in d.nets() {
        let mut driver: Option<usize> = None;
        let mut consumers: Vec<usize> = Vec::new();
        for p in &net.ports {
            if let Ok(sym) = d.symbol(p.symbol) {
                match sym.ports()[p.port].direction {
                    PortDirection::Output => driver = Some(sym.id),
                    PortDirection::Input => consumers.push(sym.id),
                    PortDirection::Bidir => {}
                }
            }
        }
        if let Some(drv) = driver {
            for c in consumers {
                // Only pure delays break loops: the discretized integrator
                // and transfer function still reference their *current*
                // input, so a loop through them could not be ordered into
                // single-pass sequential code (§4.1).
                let stateful = matches!(
                    d.symbol(SymbolId(c)).map(|s| &s.kind),
                    Ok(SymbolKind::UnitDelay) | Ok(SymbolKind::Delay)
                );
                if !stateful {
                    adj[drv].push(c);
                }
            }
        }
    }
    // DFS three-colour cycle detection.
    let mut colour = vec![0u8; n + 1];
    fn dfs(v: usize, adj: &[Vec<usize>], colour: &mut [u8]) -> bool {
        colour[v] = 1;
        for &w in &adj[v] {
            if colour[w] == 1 {
                return true;
            }
            if colour[w] == 0 && dfs(w, adj, colour) {
                return true;
            }
        }
        colour[v] = 2;
        false
    }
    for v in 1..=n {
        if colour[v] == 0 && dfs(v, &adj, &mut colour) {
            report.error(
                "algebraic loop: a combinational cycle must be broken by a delay element"
                    .to_string(),
                Some(SymbolId(v)),
                None,
            );
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::{FuncKind, PropertyValue};

    fn probe_to_gain() -> FunctionalDiagram {
        let mut d = FunctionalDiagram::new("t");
        d.add_parameter("gin", 1e-6, Dimension::CONDUCTANCE);
        let pin = d.add_symbol(SymbolKind::Pin { name: "in".into() });
        let probe = d.add_symbol(SymbolKind::Probe {
            quantity: Dimension::VOLTAGE,
        });
        let gain = d.add_symbol_with(
            SymbolKind::Gain,
            &[("a", PropertyValue::Param("gin".into()))],
            None,
        );
        let gen = d.add_symbol(SymbolKind::Generator {
            quantity: Dimension::CURRENT,
        });
        d.connect(d.port(pin, "pin").unwrap(), d.port(probe, "pin").unwrap())
            .unwrap();
        d.connect(d.port(pin, "pin").unwrap(), d.port(gen, "pin").unwrap())
            .unwrap();
        d.connect(d.port(probe, "out").unwrap(), d.port(gain, "in").unwrap())
            .unwrap();
        d.connect(d.port(gain, "out").unwrap(), d.port(gen, "in").unwrap())
            .unwrap();
        d
    }

    #[test]
    fn clean_diagram_passes() {
        let d = probe_to_gain();
        let r = check_diagram(&d);
        assert!(r.is_consistent(), "diagnostics: {:?}", r.diagnostics);
        assert_eq!(r.error_count(), 0);
    }

    #[test]
    fn dimension_inference_through_gain() {
        let d = probe_to_gain();
        let r = check_diagram(&d);
        // Net from gain.out to generator.in must be CURRENT:
        // VOLTAGE · CONDUCTANCE.
        let gen_in = d
            .net_of(d.port(crate::diagram::SymbolId(4), "in").unwrap())
            .unwrap();
        assert_eq!(r.net_dimensions.get(&gen_in.id), Some(&Dimension::CURRENT));
    }

    #[test]
    fn oil_and_water_detected() {
        // A voltage probe wired straight into a current generator: the gain
        // is missing, so the voltage net meets a current port.
        let mut d = FunctionalDiagram::new("bad");
        let pin = d.add_symbol(SymbolKind::Pin { name: "in".into() });
        let probe = d.add_symbol(SymbolKind::Probe {
            quantity: Dimension::VOLTAGE,
        });
        let gen = d.add_symbol(SymbolKind::Generator {
            quantity: Dimension::CURRENT,
        });
        d.connect(d.port(pin, "pin").unwrap(), d.port(probe, "pin").unwrap())
            .unwrap();
        d.connect(d.port(pin, "pin").unwrap(), d.port(gen, "pin").unwrap())
            .unwrap();
        d.connect(d.port(probe, "out").unwrap(), d.port(gen, "in").unwrap())
            .unwrap();
        let r = check_diagram(&d);
        assert!(!r.is_consistent());
        assert!(r
            .diagnostics
            .iter()
            .any(|di| di.message.contains("oil and water")));
    }

    #[test]
    fn undriven_input_detected() {
        let mut d = FunctionalDiagram::new("u");
        let g = d.add_symbol_with(SymbolKind::Gain, &[("a", PropertyValue::Number(1.0))], None);
        let f = d.add_symbol(SymbolKind::Function {
            func: FuncKind::Sin,
        });
        // Connect the two inputs together with no driver at all.
        d.connect(d.port(g, "in").unwrap(), d.port(f, "in0").unwrap())
            .unwrap();
        let r = check_diagram(&d);
        assert!(!r.is_consistent());
        assert!(r
            .diagnostics
            .iter()
            .any(|di| di.message.contains("no output port")));
    }

    #[test]
    fn dangling_input_detected() {
        let mut d = FunctionalDiagram::new("dangling");
        d.add_symbol_with(SymbolKind::Gain, &[("a", PropertyValue::Number(2.0))], None);
        let r = check_diagram(&d);
        assert!(!r.is_consistent());
        assert!(r
            .diagnostics
            .iter()
            .any(|di| di.message.contains("unconnected")));
    }

    #[test]
    fn missing_gain_property_detected() {
        let mut d = FunctionalDiagram::new("m");
        let g = d.add_symbol(SymbolKind::Gain);
        let c = d.add_symbol(SymbolKind::Constant { value: 1.0 });
        d.connect(d.port(c, "out").unwrap(), d.port(g, "in").unwrap())
            .unwrap();
        let r = check_diagram(&d);
        assert!(r
            .diagnostics
            .iter()
            .any(|di| di.message.contains("gain property")));
    }

    #[test]
    fn algebraic_loop_detected() {
        let mut d = FunctionalDiagram::new("loop");
        let g1 = d.add_symbol_with(SymbolKind::Gain, &[("a", PropertyValue::Number(1.0))], None);
        let g2 = d.add_symbol_with(SymbolKind::Gain, &[("a", PropertyValue::Number(1.0))], None);
        d.connect(d.port(g1, "out").unwrap(), d.port(g2, "in").unwrap())
            .unwrap();
        d.connect(d.port(g2, "out").unwrap(), d.port(g1, "in").unwrap())
            .unwrap();
        let r = check_diagram(&d);
        assert!(r
            .diagnostics
            .iter()
            .any(|di| di.message.contains("algebraic loop")));
    }

    #[test]
    fn delay_breaks_loop() {
        // The slew-rate pattern: y feeds back through a unit delay — legal.
        let mut d = FunctionalDiagram::new("fb");
        let add = d.add_symbol(SymbolKind::Adder {
            signs: vec![true, true],
        });
        let dly = d.add_symbol(SymbolKind::UnitDelay);
        let c = d.add_symbol(SymbolKind::Constant { value: 1.0 });
        d.connect(d.port(c, "out").unwrap(), d.port(add, "in0").unwrap())
            .unwrap();
        d.connect(d.port(add, "out").unwrap(), d.port(dly, "in").unwrap())
            .unwrap();
        d.connect(d.port(dly, "out").unwrap(), d.port(add, "in1").unwrap())
            .unwrap();
        let r = check_diagram(&d);
        assert!(
            !r.diagnostics
                .iter()
                .any(|di| di.message.contains("algebraic loop")),
            "{:?}",
            r.diagnostics
        );
    }

    #[test]
    fn adder_unifies_dimensions() {
        let mut d = FunctionalDiagram::new("a");
        d.add_parameter("ra", 1.0, Dimension::RESISTANCE);
        let p1 = d.add_symbol(SymbolKind::Parameter {
            param: "x".into(),
            dimension: Dimension::VOLTAGE,
        });
        let g = d.add_symbol_with(SymbolKind::Gain, &[("a", PropertyValue::Number(2.0))], None);
        let add = d.add_symbol(SymbolKind::Adder {
            signs: vec![true, false],
        });
        d.connect(d.port(p1, "out").unwrap(), d.port(add, "in0").unwrap())
            .unwrap();
        d.connect(d.port(g, "out").unwrap(), d.port(add, "in1").unwrap())
            .unwrap();
        // Gain input comes from the adder output (no loop: gain out → adder
        // in1, adder out → nothing; drive gain.in from p1 too).
        d.connect(d.port(p1, "out").unwrap(), d.port(g, "in").unwrap())
            .unwrap();
        let r = check_diagram(&d);
        // adder in1 (gain out of a dimensionless gain on voltage) = VOLTAGE;
        // unified with in0 (VOLTAGE) and out.
        let out_net = d.net_of(d.port(add, "in1").unwrap()).unwrap();
        assert_eq!(
            r.net_dimensions.get(&out_net.id),
            Some(&Dimension::VOLTAGE)
        );
    }

    #[test]
    fn multiplier_combines_dimensions() {
        let mut d = FunctionalDiagram::new("m");
        let v = d.add_symbol(SymbolKind::Parameter {
            param: "v".into(),
            dimension: Dimension::VOLTAGE,
        });
        let i = d.add_symbol(SymbolKind::Parameter {
            param: "i".into(),
            dimension: Dimension::CURRENT,
        });
        let mul = d.add_symbol(SymbolKind::Multiplier {
            ops: vec![true, true],
        });
        let lim = d.add_symbol_with(
            SymbolKind::Limiter,
            &[
                ("min", PropertyValue::Number(0.0)),
                ("max", PropertyValue::Number(1.0)),
            ],
            None,
        );
        d.connect(d.port(v, "out").unwrap(), d.port(mul, "in0").unwrap())
            .unwrap();
        d.connect(d.port(i, "out").unwrap(), d.port(mul, "in1").unwrap())
            .unwrap();
        d.connect(d.port(mul, "out").unwrap(), d.port(lim, "in").unwrap())
            .unwrap();
        let r = check_diagram(&d);
        let out_net = d.net_of(d.port(lim, "in").unwrap()).unwrap();
        assert_eq!(r.net_dimensions.get(&out_net.id), Some(&Dimension::POWER));
        // And the limiter propagates it onward — but its out is dangling, so
        // just confirm no dimension errors occurred.
        assert!(!r
            .diagnostics
            .iter()
            .any(|di| di.message.contains("oil and water")));
    }

    #[test]
    fn function_requires_dimensionless_input() {
        let mut d = FunctionalDiagram::new("f");
        let v = d.add_symbol(SymbolKind::Parameter {
            param: "v".into(),
            dimension: Dimension::VOLTAGE,
        });
        let f = d.add_symbol(SymbolKind::Function {
            func: FuncKind::Sin,
        });
        d.connect(d.port(v, "out").unwrap(), d.port(f, "in0").unwrap())
            .unwrap();
        let r = check_diagram(&d);
        assert!(r
            .diagnostics
            .iter()
            .any(|di| di.message.contains("oil and water")));
    }

    #[test]
    fn differentiator_shifts_dimension() {
        let mut d = FunctionalDiagram::new("dd");
        let v = d.add_symbol(SymbolKind::Parameter {
            param: "v".into(),
            dimension: Dimension::VOLTAGE,
        });
        let dt = d.add_symbol(SymbolKind::Differentiator);
        let lim = d.add_symbol_with(
            SymbolKind::Limiter,
            &[
                ("min", PropertyValue::Number(-1.0)),
                ("max", PropertyValue::Number(1.0)),
            ],
            None,
        );
        d.connect(d.port(v, "out").unwrap(), d.port(dt, "in").unwrap())
            .unwrap();
        d.connect(d.port(dt, "out").unwrap(), d.port(lim, "in").unwrap())
            .unwrap();
        let r = check_diagram(&d);
        let net = d.net_of(d.port(lim, "in").unwrap()).unwrap();
        assert_eq!(
            r.net_dimensions.get(&net.id),
            Some(&Dimension::VOLTAGE_RATE)
        );
    }
}
