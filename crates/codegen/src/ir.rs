//! Backend-independent lowering of a functional diagram.
//!
//! The lowering performs the language-independent steps of §4.1: collect the
//! code segments per GBS instance, introduce property values, extract the
//! connection information (net → variable names), and order the segments by
//! signal flow. The backends then only render syntax.

use crate::CodegenError;
use gabm_core::check::check_diagram;
use gabm_core::diagram::{FunctionalDiagram, PortRef, SymbolId};
use gabm_core::quantity::Dimension;
use gabm_core::symbol::{
    format_number, FuncKind, PortDirection, PropertyValue, Symbol, SymbolKind,
};
use std::collections::{BTreeMap, HashMap};

/// Kind of pin access of a probe or generator, mapped from the quantity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PinQuantity {
    /// Across quantity: voltage (electrical).
    Volt,
    /// Through quantity: current (electrical).
    Curr,
    /// Across quantity: angular velocity (rotational).
    Omega,
    /// Through quantity: torque (rotational).
    Torque,
    /// Across quantity: temperature (thermal).
    Temp,
    /// Through quantity: heat flow (thermal).
    Heat,
}

impl PinQuantity {
    fn from_dimension(dim: Dimension, symbol: usize) -> Result<Self, CodegenError> {
        if dim == Dimension::VOLTAGE {
            Ok(PinQuantity::Volt)
        } else if dim == Dimension::CURRENT {
            Ok(PinQuantity::Curr)
        } else if dim == Dimension::ANGULAR_VELOCITY {
            Ok(PinQuantity::Omega)
        } else if dim == Dimension::TORQUE {
            Ok(PinQuantity::Torque)
        } else if dim == Dimension::TEMPERATURE {
            Ok(PinQuantity::Temp)
        } else if dim == Dimension::POWER {
            Ok(PinQuantity::Heat)
        } else {
            Err(CodegenError::Unsupported(format!(
                "symbol {symbol}: no pin access for quantity {dim}"
            )))
        }
    }

    /// The access prefix in FAS syntax (`volt.value(...)`, `curr.on(...)`).
    pub fn fas_prefix(&self) -> &'static str {
        match self {
            PinQuantity::Volt => "volt",
            PinQuantity::Curr => "curr",
            PinQuantity::Omega => "omega",
            PinQuantity::Torque => "torque",
            PinQuantity::Temp => "temp",
            PinQuantity::Heat => "heat",
        }
    }

    /// `true` for across quantities (read with `.value`), `false` for
    /// through quantities (imposed with `.on`).
    pub fn is_across(&self) -> bool {
        matches!(
            self,
            PinQuantity::Volt | PinQuantity::Omega | PinQuantity::Temp
        )
    }
}

/// Right-hand side of an assignment statement.
#[derive(Debug, Clone, PartialEq)]
pub enum IrRhs {
    /// `a · input` (gain element).
    Gain {
        /// Gain property expression.
        a: String,
        /// Input variable/expression.
        input: String,
    },
    /// Signed sum: `±t0 ±t1 …` (adder).
    Sum {
        /// `(positive?, term)` pairs.
        terms: Vec<(bool, String)>,
    },
    /// Product/quotient chain (multiplier).
    Prod {
        /// `(multiply?, factor)` pairs; `false` divides.
        factors: Vec<(bool, String)>,
    },
    /// `limit(input, lo, hi)` (limiter).
    Limit {
        /// Input expression.
        input: String,
        /// Lower bound expression.
        lo: String,
        /// Upper bound expression.
        hi: String,
    },
    /// `max(input, 0)` — separator positive part.
    PosPart {
        /// Input expression.
        input: String,
    },
    /// `min(input, 0)` — separator negative part.
    NegPart {
        /// Input expression.
        input: String,
    },
    /// Function call (sin, cos, …).
    Func {
        /// The function.
        func: FuncKind,
        /// Argument expressions.
        args: Vec<String>,
    },
    /// Plain copy.
    Copy {
        /// Input expression.
        input: String,
    },
}

/// One ordered code segment.
#[derive(Debug, Clone, PartialEq)]
pub enum IrStatement {
    /// Read an across quantity from a pin: `make var = volt.value(pin)`.
    Probe {
        /// Symbol id.
        id: usize,
        /// Target variable.
        var: String,
        /// Pin name.
        pin: String,
        /// Quantity accessed.
        quantity: PinQuantity,
    },
    /// Impose a through quantity on a pin: `make curr.on(pin) = expr`.
    Impose {
        /// Symbol id.
        id: usize,
        /// Pin name.
        pin: String,
        /// Quantity imposed.
        quantity: PinQuantity,
        /// Imposed expression.
        expr: String,
    },
    /// Impose an across quantity via a stiff through source:
    /// `curr.on(pin) = GBIG · (volt.value(pin) − target)`.
    ImposeAcross {
        /// Symbol id.
        id: usize,
        /// Pin name.
        pin: String,
        /// Target (across) expression.
        target: String,
    },
    /// Time derivative with DC guard (the paper's generic segment).
    Derivative {
        /// Symbol id.
        id: usize,
        /// Target variable (`yd{id}`).
        var: String,
        /// Differentiated variable.
        input: String,
    },
    /// Time integral.
    Integral {
        /// Symbol id.
        id: usize,
        /// Target variable (`yint{id}`).
        var: String,
        /// Integrated variable.
        input: String,
    },
    /// Ordinary assignment.
    Assign {
        /// Symbol id.
        id: usize,
        /// Target variable.
        var: String,
        /// Right-hand side.
        rhs: IrRhs,
    },
    /// One-simulation-step delay (`state.delay`).
    UnitDelay {
        /// Symbol id.
        id: usize,
        /// Target variable (`ylast{id}`).
        var: String,
        /// Delayed variable (may be defined later in the listing).
        input: String,
    },
    /// Fixed time delay (`state.delayt`).
    FixedDelay {
        /// Symbol id.
        id: usize,
        /// Target variable.
        var: String,
        /// Delayed variable.
        input: String,
        /// Delay time expression.
        td: String,
    },
    /// First-order lag `k/(1 + s·tau)` discretized with the one-step delay.
    FirstOrderLag {
        /// Symbol id.
        id: usize,
        /// Target variable.
        var: String,
        /// Input expression.
        input: String,
        /// DC gain expression.
        k: String,
        /// Time-constant expression.
        tau: String,
    },
}

impl IrStatement {
    /// The variable this statement defines, if any (impositions define
    /// none).
    pub fn target_var(&self) -> Option<&str> {
        match self {
            IrStatement::Probe { var, .. }
            | IrStatement::Derivative { var, .. }
            | IrStatement::Integral { var, .. }
            | IrStatement::Assign { var, .. }
            | IrStatement::UnitDelay { var, .. }
            | IrStatement::FixedDelay { var, .. }
            | IrStatement::FirstOrderLag { var, .. } => Some(var),
            IrStatement::Impose { .. } | IrStatement::ImposeAcross { .. } => None,
        }
    }

    /// Id of the symbol this statement was generated from.
    pub fn id(&self) -> usize {
        match self {
            IrStatement::Probe { id, .. }
            | IrStatement::Impose { id, .. }
            | IrStatement::ImposeAcross { id, .. }
            | IrStatement::Derivative { id, .. }
            | IrStatement::Integral { id, .. }
            | IrStatement::Assign { id, .. }
            | IrStatement::UnitDelay { id, .. }
            | IrStatement::FixedDelay { id, .. }
            | IrStatement::FirstOrderLag { id, .. } => *id,
        }
    }
}

/// A model parameter of the generated code.
#[derive(Debug, Clone, PartialEq)]
pub struct IrParam {
    /// Parameter name.
    pub name: String,
    /// Default value.
    pub default: f64,
    /// `true` when the parameter stands for an exposed-but-unconnected
    /// diagram input (open interface port).
    pub from_open_input: bool,
}

/// Lowered, ordered model ready for rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct CodeIr {
    /// Model name.
    pub model_name: String,
    /// Pin names in diagram order.
    pub pins: Vec<String>,
    /// Parameters (declared + open inputs).
    pub params: Vec<IrParam>,
    /// Statements in signal-flow order.
    pub statements: Vec<IrStatement>,
}

/// Variable name delivered by an output port of a symbol.
fn output_var(sym: &Symbol, port_name: &str) -> String {
    match &sym.kind {
        SymbolKind::Probe { .. } => format!("v{}", sym.id),
        SymbolKind::Parameter { param, .. } => param.clone(),
        SymbolKind::SimVariable { var } => var.code_name().to_string(),
        SymbolKind::Constant { value } => format_number(*value),
        SymbolKind::Differentiator => format!("yd{}", sym.id),
        SymbolKind::Integrator => format!("yint{}", sym.id),
        SymbolKind::UnitDelay => format!("ylast{}", sym.id),
        SymbolKind::Delay => format!("ydel{}", sym.id),
        SymbolKind::Separator => match port_name {
            "pos" => format!("ypos{}", sym.id),
            _ => format!("yneg{}", sym.id),
        },
        _ => format!("yout{}", sym.id),
    }
}

fn property_expr(sym: &Symbol, name: &str) -> Result<String, CodegenError> {
    sym.property(name)
        .map(PropertyValue::code_expr)
        .ok_or_else(|| CodegenError::MissingProperty {
            symbol: sym.id,
            property: name.to_string(),
        })
}

/// Lowers a diagram to ordered IR. Hierarchical symbols are flattened
/// first (§3.1: "GBS can be hierarchical" — generation always operates on
/// the flat expansion).
pub(crate) fn lower(d: &FunctionalDiagram) -> Result<CodeIr, CodegenError> {
    let flattened;
    let d = if d
        .symbols()
        .any(|s| matches!(s.kind, SymbolKind::Hierarchical { .. }))
    {
        flattened = gabm_core::hierarchy::flatten(d)?;
        &flattened
    } else {
        d
    };
    let report = check_diagram(d);
    if !report.is_consistent() {
        return Err(CodegenError::Inconsistent(report));
    }

    // --- connection information -----------------------------------------
    // Expression delivered on each net (from its driving output port).
    let mut net_expr: HashMap<usize, String> = HashMap::new();
    // Pin name on each net (for probe/generator resolution).
    let mut net_pin: HashMap<usize, String> = HashMap::new();
    for net in d.nets() {
        for p in &net.ports {
            let sym = d.symbol(p.symbol)?;
            let ports = sym.ports();
            let spec = &ports[p.port];
            match spec.direction {
                PortDirection::Output => {
                    net_expr.insert(net.id.0, output_var(sym, &spec.name));
                }
                PortDirection::Bidir => {
                    if let SymbolKind::Pin { name } = &sym.kind {
                        net_pin.insert(net.id.0, name.clone());
                    }
                }
                PortDirection::Input => {}
            }
        }
    }
    // Open interface inputs become parameters referenced by name.
    let mut open_inputs: Vec<String> = Vec::new();
    let mut open_input_expr: HashMap<PortRef, String> = HashMap::new();
    for itf in d.interface() {
        if itf.direction == PortDirection::Input && d.net_of(itf.inner).is_none() {
            open_inputs.push(itf.name.clone());
            open_input_expr.insert(itf.inner, itf.name.clone());
        }
    }

    // Expression consumed by an input port.
    let input_expr =
        |sym: &Symbol, port_name: &str| -> Result<String, CodegenError> {
            let idx = sym.port_index(port_name).ok_or(CodegenError::Core(
                gabm_core::CoreError::NotFound(format!("port {port_name}")),
            ))?;
            let pr = PortRef {
                symbol: SymbolId(sym.id),
                port: idx,
            };
            if let Some(net) = d.net_of(pr) {
                net_expr.get(&net.id.0).cloned().ok_or_else(|| {
                    CodegenError::Unsupported(format!("net {} has no driving expression", net.id.0))
                })
            } else if let Some(name) = open_input_expr.get(&pr) {
                Ok(name.clone())
            } else {
                Err(CodegenError::Unsupported(format!(
                    "input '{port_name}' of symbol {} is unconnected",
                    sym.id
                )))
            }
        };

    // Pin of a probe/generator symbol.
    let pin_of = |sym: &Symbol| -> Result<String, CodegenError> {
        let idx = sym.port_index("pin").expect("probe/generator has pin port");
        let pr = PortRef {
            symbol: SymbolId(sym.id),
            port: idx,
        };
        d.net_of(pr)
            .and_then(|net| net_pin.get(&net.id.0).cloned())
            .ok_or_else(|| {
                CodegenError::Unsupported(format!(
                    "symbol {} is not attached to a pin symbol",
                    sym.id
                ))
            })
    };

    // --- code segments per symbol ----------------------------------------
    let mut segments: BTreeMap<usize, Vec<IrStatement>> = BTreeMap::new();
    for sym in d.symbols() {
        let stmts: Vec<IrStatement> = match &sym.kind {
            SymbolKind::Pin { .. }
            | SymbolKind::Parameter { .. }
            | SymbolKind::SimVariable { .. }
            | SymbolKind::Constant { .. } => Vec::new(),
            SymbolKind::Probe { quantity } => {
                let q = PinQuantity::from_dimension(*quantity, sym.id)?;
                if !q.is_across() {
                    return Err(CodegenError::Unsupported(format!(
                        "symbol {}: probes of through quantities are not observable from a behavioural model",
                        sym.id
                    )));
                }
                vec![IrStatement::Probe {
                    id: sym.id,
                    var: output_var(sym, "out"),
                    pin: pin_of(sym)?,
                    quantity: q,
                }]
            }
            SymbolKind::Generator { quantity } => {
                let q = PinQuantity::from_dimension(*quantity, sym.id)?;
                let expr = input_expr(sym, "in")?;
                if q.is_across() {
                    vec![IrStatement::ImposeAcross {
                        id: sym.id,
                        pin: pin_of(sym)?,
                        target: expr,
                    }]
                } else {
                    vec![IrStatement::Impose {
                        id: sym.id,
                        pin: pin_of(sym)?,
                        quantity: q,
                        expr,
                    }]
                }
            }
            SymbolKind::Gain => vec![IrStatement::Assign {
                id: sym.id,
                var: output_var(sym, "out"),
                rhs: IrRhs::Gain {
                    a: property_expr(sym, "a")?,
                    input: input_expr(sym, "in")?,
                },
            }],
            SymbolKind::Limiter => vec![IrStatement::Assign {
                id: sym.id,
                var: output_var(sym, "out"),
                rhs: IrRhs::Limit {
                    input: input_expr(sym, "in")?,
                    lo: property_expr(sym, "min")?,
                    hi: property_expr(sym, "max")?,
                },
            }],
            SymbolKind::Differentiator => vec![IrStatement::Derivative {
                id: sym.id,
                var: output_var(sym, "out"),
                input: input_expr(sym, "in")?,
            }],
            SymbolKind::Integrator => vec![IrStatement::Integral {
                id: sym.id,
                var: output_var(sym, "out"),
                input: input_expr(sym, "in")?,
            }],
            SymbolKind::Delay => vec![IrStatement::FixedDelay {
                id: sym.id,
                var: output_var(sym, "out"),
                input: input_expr(sym, "in")?,
                td: property_expr(sym, "td")?,
            }],
            SymbolKind::UnitDelay => vec![IrStatement::UnitDelay {
                id: sym.id,
                var: output_var(sym, "out"),
                input: input_expr(sym, "in")?,
            }],
            SymbolKind::TransferFunction { num, den } => {
                if num.len() == 1 && den.len() == 2 {
                    let k = format_number(num[0] / den[0]);
                    let tau = format_number(den[1] / den[0]);
                    vec![IrStatement::FirstOrderLag {
                        id: sym.id,
                        var: output_var(sym, "out"),
                        input: input_expr(sym, "in")?,
                        k,
                        tau,
                    }]
                } else {
                    return Err(CodegenError::Unsupported(format!(
                        "symbol {}: only first-order transfer functions are generated",
                        sym.id
                    )));
                }
            }
            SymbolKind::Adder { signs } => {
                let mut terms = Vec::with_capacity(signs.len());
                for (k, sign) in signs.iter().enumerate() {
                    terms.push((*sign, input_expr(sym, &format!("in{k}"))?));
                }
                vec![IrStatement::Assign {
                    id: sym.id,
                    var: output_var(sym, "out"),
                    rhs: IrRhs::Sum { terms },
                }]
            }
            SymbolKind::Multiplier { ops } => {
                let mut factors = Vec::with_capacity(ops.len());
                for (k, op) in ops.iter().enumerate() {
                    factors.push((*op, input_expr(sym, &format!("in{k}"))?));
                }
                vec![IrStatement::Assign {
                    id: sym.id,
                    var: output_var(sym, "out"),
                    rhs: IrRhs::Prod { factors },
                }]
            }
            SymbolKind::Separator => {
                let input = input_expr(sym, "in")?;
                vec![
                    IrStatement::Assign {
                        id: sym.id,
                        var: output_var(sym, "pos"),
                        rhs: IrRhs::PosPart {
                            input: input.clone(),
                        },
                    },
                    IrStatement::Assign {
                        id: sym.id,
                        var: output_var(sym, "neg"),
                        rhs: IrRhs::NegPart { input },
                    },
                ]
            }
            SymbolKind::Function { func } => {
                let mut args = Vec::with_capacity(func.arity());
                for k in 0..func.arity() {
                    args.push(input_expr(sym, &format!("in{k}"))?);
                }
                vec![IrStatement::Assign {
                    id: sym.id,
                    var: output_var(sym, "out"),
                    rhs: IrRhs::Func { func: *func, args },
                }]
            }
            SymbolKind::Hierarchical { name, .. } => {
                return Err(CodegenError::Unsupported(format!(
                    "hierarchical symbol '{name}' must be flattened before code generation"
                )));
            }
        };
        if !stmts.is_empty() {
            segments.insert(sym.id, stmts);
        }
    }

    // --- ordering by signal flow (§4.1) ----------------------------------
    let order = topological_order(d, &segments)?;
    let mut statements = Vec::new();
    for id in order {
        if let Some(stmts) = segments.get(&id) {
            statements.extend(stmts.iter().cloned());
        }
    }

    // --- parameters -------------------------------------------------------
    let mut params: Vec<IrParam> = d
        .parameters()
        .iter()
        .map(|p| IrParam {
            name: p.name.clone(),
            default: p.default,
            from_open_input: false,
        })
        .collect();
    for name in open_inputs {
        if !params.iter().any(|p| p.name == name) {
            params.push(IrParam {
                name,
                default: 0.0,
                from_open_input: true,
            });
        }
    }

    Ok(CodeIr {
        model_name: d.name().to_string(),
        pins: d.pins().into_iter().map(|(_, n)| n).collect(),
        params,
        statements,
    })
}

/// Kahn's algorithm over the signal-flow graph, smallest symbol id first so
/// the emission order is deterministic and mirrors the paper's listing.
fn topological_order(
    d: &FunctionalDiagram,
    segments: &BTreeMap<usize, Vec<IrStatement>>,
) -> Result<Vec<usize>, CodegenError> {
    let mut indegree: BTreeMap<usize, usize> = segments.keys().map(|&k| (k, 0)).collect();
    let mut out_edges: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for net in d.nets() {
        let mut driver: Option<usize> = None;
        let mut consumers: Vec<usize> = Vec::new();
        for p in &net.ports {
            let sym = d.symbol(p.symbol)?;
            match sym.ports()[p.port].direction {
                PortDirection::Output => driver = Some(sym.id),
                PortDirection::Input => {
                    // Pure delays read committed state only — no ordering
                    // dependency on their input.
                    if !matches!(sym.kind, SymbolKind::UnitDelay | SymbolKind::Delay) {
                        consumers.push(sym.id);
                    }
                }
                PortDirection::Bidir => {}
            }
        }
        if let Some(drv) = driver {
            // Only edges between statement-emitting symbols matter; sources
            // without statements (params, constants) impose no order.
            if segments.contains_key(&drv) {
                for c in consumers {
                    if segments.contains_key(&c) {
                        out_edges.entry(drv).or_default().push(c);
                        *indegree.entry(c).or_insert(0) += 1;
                    }
                }
            }
        }
    }
    let mut ready: Vec<usize> = indegree
        .iter()
        .filter(|(_, deg)| **deg == 0)
        .map(|(id, _)| *id)
        .collect();
    ready.sort_unstable();
    let mut order = Vec::with_capacity(indegree.len());
    while let Some(&next) = ready.first() {
        ready.remove(0);
        order.push(next);
        if let Some(targets) = out_edges.get(&next) {
            for &t in targets {
                let deg = indegree.get_mut(&t).expect("edge target tracked");
                *deg -= 1;
                if *deg == 0 {
                    let pos = ready.partition_point(|&x| x < t);
                    ready.insert(pos, t);
                }
            }
        }
    }
    if order.len() != indegree.len() {
        return Err(CodegenError::Unsupported(
            "signal-flow cycle not broken by a delay element".to_string(),
        ));
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gabm_core::constructs::{InputStageSpec, SlewRateSpec};

    #[test]
    fn input_stage_lowering_matches_paper_order() {
        let d = InputStageSpec::new("in", 1e-6, 5e-12).diagram().unwrap();
        let ir = lower(&d).unwrap();
        assert_eq!(ir.pins, vec!["in".to_string()]);
        assert_eq!(ir.params.len(), 2);
        // Statement ids in paper order: probe(2), ddt(4), gain(5), gain(6),
        // adder(7), generator(3).
        let ids: Vec<usize> = ir.statements.iter().map(IrStatement::id).collect();
        assert_eq!(ids, vec![2, 4, 5, 6, 7, 3]);
    }

    #[test]
    fn input_stage_variables() {
        let d = InputStageSpec::new("in", 1e-6, 5e-12).diagram().unwrap();
        let ir = lower(&d).unwrap();
        match &ir.statements[0] {
            IrStatement::Probe { var, pin, .. } => {
                assert_eq!(var, "v2");
                assert_eq!(pin, "in");
            }
            other => panic!("expected probe, got {other:?}"),
        }
        match &ir.statements[1] {
            IrStatement::Derivative { var, input, .. } => {
                assert_eq!(var, "yd4");
                assert_eq!(input, "v2");
            }
            other => panic!("expected derivative, got {other:?}"),
        }
        match ir.statements.last().unwrap() {
            IrStatement::Impose { pin, expr, .. } => {
                assert_eq!(pin, "in");
                assert_eq!(expr, "yout7");
            }
            other => panic!("expected impose, got {other:?}"),
        }
    }

    #[test]
    fn slew_rate_open_input_becomes_param() {
        let d = SlewRateSpec::new(1e6, 1e6).diagram().unwrap();
        let ir = lower(&d).unwrap();
        assert!(ir.params.iter().any(|p| p.name == "u" && p.from_open_input));
        // The unit delay is emitted without waiting for its input.
        let first_ids: Vec<usize> = ir.statements.iter().map(IrStatement::id).collect();
        assert_eq!(
            first_ids[0], 1,
            "unit delay should come first: {first_ids:?}"
        );
    }

    #[test]
    fn pin_quantity_mapping() {
        assert_eq!(
            PinQuantity::from_dimension(Dimension::VOLTAGE, 1).unwrap(),
            PinQuantity::Volt
        );
        assert_eq!(
            PinQuantity::from_dimension(Dimension::TORQUE, 1).unwrap(),
            PinQuantity::Torque
        );
        assert!(PinQuantity::from_dimension(Dimension::CHARGE, 1).is_err());
        assert!(PinQuantity::Volt.is_across());
        assert!(!PinQuantity::Curr.is_across());
        assert_eq!(PinQuantity::Omega.fas_prefix(), "omega");
    }
}
