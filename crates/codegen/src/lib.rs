//! HDL code generation from functional diagrams (§4 of the paper).
//!
//! "For the translation of a functional diagram into HDL, a set of
//! elementary generic code segments is necessary, each code segment
//! corresponding to a graphical building symbol. The translation process
//! includes the following steps: the code segments are collected according
//! to the GBS instances to be found in the design; property values are
//! introduced; information is organized according to the syntax of the
//! language; code segments are ordered with respect to the orientation of
//! the arrows in the functional diagram; connection information extracted
//! from the functional diagram is added in the model code."
//!
//! Three backends demonstrate the formalism's HDL independence ("starting
//! from the same functional diagram, various HDLs \[can\] be supported"):
//!
//! * [`Backend::Fas`] — the ELDO-FAS dialect executed by `gabm-fas`;
//!   reproduces the paper's §4.2 listing character-for-character;
//! * [`Backend::VhdlAms`] — a VHDL-AMS-style simultaneous-equation view
//!   (the paper's "generation of models in standard VHDL-A … will be of
//!   great interest");
//! * [`Backend::Mast`] — a MAST-style template, after the paper's reference
//!   \[6\].

mod fas;
mod ir;
mod mast;
mod vhdl;

pub use ir::{CodeIr, IrParam, IrRhs, IrStatement, PinQuantity};

use gabm_core::check::CheckReport;
use gabm_core::diagram::FunctionalDiagram;
use std::fmt;

/// Target language of a generation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// ELDO-FAS dialect (executable via `gabm-fas`).
    Fas,
    /// VHDL-AMS-like simultaneous equations.
    VhdlAms,
    /// MAST-like template.
    Mast,
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Backend::Fas => write!(f, "ELDO-FAS"),
            Backend::VhdlAms => write!(f, "VHDL-AMS"),
            Backend::Mast => write!(f, "MAST"),
        }
    }
}

/// The generated model code.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedCode {
    /// Model name (from the diagram).
    pub model_name: String,
    /// Target language.
    pub backend: Backend,
    /// Complete code text.
    pub text: String,
}

/// Errors of the code generator.
#[derive(Debug, Clone, PartialEq)]
pub enum CodegenError {
    /// The diagram failed its consistency check.
    Inconsistent(CheckReport),
    /// A required property is missing on a symbol.
    MissingProperty {
        /// Symbol id.
        symbol: usize,
        /// Property name.
        property: String,
    },
    /// A symbol/feature has no code segment in the selected backend.
    Unsupported(String),
    /// Underlying diagram error.
    Core(gabm_core::CoreError),
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::Inconsistent(r) => {
                write!(f, "diagram inconsistent: {} error(s)", r.error_count())
            }
            CodegenError::MissingProperty { symbol, property } => {
                write!(f, "symbol {symbol} is missing property '{property}'")
            }
            CodegenError::Unsupported(what) => write!(f, "unsupported: {what}"),
            CodegenError::Core(e) => write!(f, "diagram error: {e}"),
        }
    }
}

impl std::error::Error for CodegenError {}

impl From<gabm_core::CoreError> for CodegenError {
    fn from(e: gabm_core::CoreError) -> Self {
        CodegenError::Core(e)
    }
}

/// Generates model code for `diagram` in the requested `backend` language.
///
/// The diagram is consistency-checked first; generation refuses on errors
/// (warnings pass).
///
/// # Errors
///
/// [`CodegenError::Inconsistent`] when the §3.2 rules are violated, or
/// backend-specific [`CodegenError::Unsupported`] conditions.
///
/// # Example
///
/// ```
/// use gabm_core::constructs::InputStageSpec;
/// use gabm_codegen::{generate, Backend};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let diagram = InputStageSpec::new("in", 1.0e-6, 5.0e-12).diagram()?;
/// let code = generate(&diagram, Backend::Fas)?;
/// assert!(code.text.contains("make v2 = volt.value(in)"));
/// # Ok(())
/// # }
/// ```
pub fn generate(
    diagram: &FunctionalDiagram,
    backend: Backend,
) -> Result<GeneratedCode, CodegenError> {
    let ir = ir::lower(diagram)?;
    render_ir(&ir, backend, diagram.name())
}

/// Lowers a diagram to its backend-independent [`CodeIr`] without
/// rendering. The diagram is consistency-checked first, exactly as
/// [`generate`] does: a diagram with lint errors is refused.
///
/// # Errors
///
/// [`CodegenError::Inconsistent`] on §3.2/§4.1 violations.
pub fn lower(diagram: &FunctionalDiagram) -> Result<CodeIr, CodegenError> {
    ir::lower(diagram)
}

fn render_ir(
    ir: &CodeIr,
    backend: Backend,
    model_name: &str,
) -> Result<GeneratedCode, CodegenError> {
    let text = match backend {
        Backend::Fas => fas::render(ir),
        Backend::VhdlAms => vhdl::render(ir),
        Backend::Mast => mast::render(ir),
    }?;
    Ok(GeneratedCode {
        model_name: model_name.to_string(),
        backend,
        text,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gabm_core::constructs::InputStageSpec;

    #[test]
    fn backend_display() {
        assert_eq!(Backend::Fas.to_string(), "ELDO-FAS");
        assert_eq!(Backend::VhdlAms.to_string(), "VHDL-AMS");
        assert_eq!(Backend::Mast.to_string(), "MAST");
    }

    #[test]
    fn all_backends_generate_input_stage() {
        let d = InputStageSpec::new("in", 1e-6, 5e-12).diagram().unwrap();
        for backend in [Backend::Fas, Backend::VhdlAms, Backend::Mast] {
            let code = generate(&d, backend).unwrap();
            assert!(!code.text.is_empty(), "{backend} produced empty code");
            assert_eq!(code.model_name, "input_stage_in");
        }
    }

    #[test]
    fn inconsistent_diagram_refused() {
        use gabm_core::symbol::SymbolKind;
        let mut d = FunctionalDiagram::new("bad");
        let g = d.add_symbol(SymbolKind::Gain); // missing property + dangling
        let f = d.add_symbol(SymbolKind::Function {
            func: gabm_core::symbol::FuncKind::Sin,
        });
        d.connect(d.port(g, "out").unwrap(), d.port(f, "in0").unwrap())
            .unwrap();
        let err = generate(&d, Backend::Fas).unwrap_err();
        assert!(matches!(err, CodegenError::Inconsistent(_)));
    }
}
