//! MAST-style backend (after the paper's reference [6], the Analogy MAST
//! analogue hardware description language).
//!
//! Like the VHDL-AMS backend this is a demonstration of HDL independence:
//! the ordered segment list renders as a `template` with `val` declarations
//! and an `equations` section.

use crate::ir::{CodeIr, IrRhs, IrStatement};
use crate::CodegenError;
use gabm_core::symbol::format_number;

fn render_rhs(rhs: &IrRhs) -> String {
    match rhs {
        IrRhs::Gain { a, input } => format!("{a} * {input}"),
        IrRhs::Sum { terms } => {
            let mut s = String::new();
            for (k, (pos, term)) in terms.iter().enumerate() {
                if k == 0 {
                    if *pos {
                        s.push_str(term);
                    } else {
                        s.push_str(&format!("-{term}"));
                    }
                } else if *pos {
                    s.push_str(&format!(" + {term}"));
                } else {
                    s.push_str(&format!(" - {term}"));
                }
            }
            s
        }
        IrRhs::Prod { factors } => {
            let mut s = String::new();
            for (k, (mul, factor)) in factors.iter().enumerate() {
                if k == 0 {
                    if *mul {
                        s.push_str(factor);
                    } else {
                        s.push_str(&format!("1.0 / {factor}"));
                    }
                } else if *mul {
                    s.push_str(&format!(" * {factor}"));
                } else {
                    s.push_str(&format!(" / {factor}"));
                }
            }
            s
        }
        IrRhs::Limit { input, lo, hi } => format!("limit({input}, {lo}, {hi})"),
        IrRhs::PosPart { input } => format!("max({input}, 0)"),
        IrRhs::NegPart { input } => format!("min({input}, 0)"),
        IrRhs::Func { func, args } => format!("{}({})", func.code_name(), args.join(", ")),
        IrRhs::Copy { input } => input.clone(),
    }
}

pub(crate) fn render(ir: &CodeIr) -> Result<String, CodegenError> {
    let mut out = String::new();
    out.push_str(&format!(
        "# {} -- generated from a functional diagram by gabm-codegen\n",
        ir.model_name
    ));
    let pins = ir.pins.join(" ");
    let params = ir
        .params
        .iter()
        .map(|p| format!("{}={}", p.name, format_number(p.default)))
        .collect::<Vec<_>>()
        .join(", ");
    out.push_str(&format!("template {} {pins} = {params}\n", ir.model_name));
    for pin in &ir.pins {
        out.push_str(&format!("electrical {pin}\n"));
    }
    out.push_str("{\n");
    for stmt in &ir.statements {
        if let Some(var) = stmt.target_var() {
            out.push_str(&format!("  val nu {var}\n"));
        }
    }
    out.push_str("  values {\n");
    for stmt in &ir.statements {
        match stmt {
            IrStatement::Probe { var, pin, .. } => {
                out.push_str(&format!("    {var} = v({pin})\n"));
            }
            IrStatement::Derivative { var, input, .. } => {
                out.push_str(&format!("    {var} = d_by_dt({input})\n"));
            }
            IrStatement::Integral { var, input, .. } => {
                out.push_str(&format!("    {var} = integ({input})\n"));
            }
            IrStatement::Assign { var, rhs, .. } => {
                out.push_str(&format!("    {var} = {}\n", render_rhs(rhs)));
            }
            IrStatement::UnitDelay { var, input, .. } => {
                out.push_str(&format!("    {var} = delay({input}, timestep)\n"));
            }
            IrStatement::FixedDelay { var, input, td, .. } => {
                out.push_str(&format!("    {var} = delay({input}, {td})\n"));
            }
            IrStatement::FirstOrderLag {
                var, input, k, tau, ..
            } => {
                out.push_str(&format!("    {var} = lp1({k} * {input}, {tau})\n"));
            }
            IrStatement::Impose { .. } | IrStatement::ImposeAcross { .. } => {}
        }
    }
    out.push_str("  }\n");
    out.push_str("  equations {\n");
    for stmt in &ir.statements {
        match stmt {
            IrStatement::Impose { pin, expr, .. } => {
                out.push_str(&format!("    i({pin}->0) += {expr}\n"));
            }
            IrStatement::ImposeAcross { pin, target, .. } => {
                out.push_str(&format!("    v({pin}) -= {target}\n"));
            }
            _ => {}
        }
    }
    out.push_str("  }\n");
    out.push_str("}\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use crate::{generate, Backend};
    use gabm_core::constructs::InputStageSpec;

    #[test]
    fn template_structure() {
        let d = InputStageSpec::new("in", 1e-6, 5e-12).diagram().unwrap();
        let code = generate(&d, Backend::Mast).unwrap();
        assert!(code.text.contains("template input_stage_in in ="));
        assert!(code.text.contains("electrical in"));
        assert!(code.text.contains("i(in->0) += yout7"));
        assert!(code.text.contains("d_by_dt(v2)"));
    }
}
