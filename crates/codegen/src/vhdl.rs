//! VHDL-AMS-style backend.
//!
//! The paper (§5): "The generation of models in standard VHDL-A or similar
//! language will be of great interest when a compiler and a simulator are
//! available." This backend demonstrates that the same functional diagram
//! and the same ordered segment list map onto a simultaneous-equation HDL:
//! every `make` becomes a `==` simultaneous statement, probes become
//! `across` quantities and generators `through` quantities.

use crate::ir::{CodeIr, IrRhs, IrStatement};
use crate::CodegenError;
use gabm_core::symbol::format_number;

fn render_rhs(rhs: &IrRhs) -> String {
    match rhs {
        IrRhs::Gain { a, input } => format!("{a} * {input}"),
        IrRhs::Sum { terms } => {
            let mut s = String::new();
            for (k, (pos, term)) in terms.iter().enumerate() {
                if k == 0 {
                    if *pos {
                        s.push_str(term);
                    } else {
                        s.push_str(&format!("-{term}"));
                    }
                } else if *pos {
                    s.push_str(&format!(" + {term}"));
                } else {
                    s.push_str(&format!(" - {term}"));
                }
            }
            s
        }
        IrRhs::Prod { factors } => {
            let mut s = String::new();
            for (k, (mul, factor)) in factors.iter().enumerate() {
                if k == 0 {
                    if *mul {
                        s.push_str(factor);
                    } else {
                        s.push_str(&format!("1.0 / {factor}"));
                    }
                } else if *mul {
                    s.push_str(&format!(" * {factor}"));
                } else {
                    s.push_str(&format!(" / {factor}"));
                }
            }
            s
        }
        // VHDL-AMS has no limit builtin; compose from min/max (IEEE
        // math_real: realmin/realmax).
        IrRhs::Limit { input, lo, hi } => {
            format!("realmin(realmax({input}, {lo}), {hi})")
        }
        IrRhs::PosPart { input } => format!("realmax({input}, 0.0)"),
        IrRhs::NegPart { input } => format!("realmin({input}, 0.0)"),
        IrRhs::Func { func, args } => format!("{}({})", func.code_name(), args.join(", ")),
        IrRhs::Copy { input } => input.clone(),
    }
}

pub(crate) fn render(ir: &CodeIr) -> Result<String, CodegenError> {
    let mut out = String::new();
    out.push_str(&format!(
        "-- {} -- generated from a functional diagram by gabm-codegen\n",
        ir.model_name
    ));
    out.push_str("library IEEE;\nuse IEEE.math_real.all;\nuse IEEE.electrical_systems.all;\n\n");
    out.push_str(&format!("entity {} is\n", ir.model_name));
    if !ir.params.is_empty() {
        let generics = ir
            .params
            .iter()
            .map(|p| format!("    {} : real := {}", p.name, format_number(p.default)))
            .collect::<Vec<_>>()
            .join(";\n");
        out.push_str(&format!("  generic (\n{generics}\n  );\n"));
    }
    if !ir.pins.is_empty() {
        let ports = ir
            .pins
            .iter()
            .map(|p| format!("    terminal {p} : electrical"))
            .collect::<Vec<_>>()
            .join(";\n");
        out.push_str(&format!("  port (\n{ports}\n  );\n"));
    }
    out.push_str(&format!("end entity {};\n\n", ir.model_name));
    out.push_str(&format!(
        "architecture behavioural of {} is\n",
        ir.model_name
    ));

    // Quantity declarations: one across/through pair per pin, one free
    // quantity per generated variable.
    for pin in &ir.pins {
        out.push_str(&format!(
            "  quantity v_{pin} across i_{pin} through {pin} to electrical_ref;\n"
        ));
    }
    for stmt in &ir.statements {
        if let Some(var) = stmt.target_var() {
            out.push_str(&format!("  quantity {var} : real;\n"));
        }
    }
    out.push_str("begin\n");
    for stmt in &ir.statements {
        match stmt {
            IrStatement::Probe { var, pin, .. } => {
                out.push_str(&format!("  {var} == v_{pin};\n"));
            }
            IrStatement::Impose { pin, expr, .. } => {
                out.push_str(&format!("  i_{pin} == {expr};\n"));
            }
            IrStatement::ImposeAcross { pin, target, .. } => {
                out.push_str(&format!("  v_{pin} == {target};\n"));
            }
            IrStatement::Derivative { var, input, .. } => {
                out.push_str(&format!("  {var} == {input}'dot;\n"));
            }
            IrStatement::Integral { var, input, .. } => {
                out.push_str(&format!("  {var} == {input}'integ;\n"));
            }
            IrStatement::Assign { var, rhs, .. } => {
                out.push_str(&format!("  {var} == {};\n", render_rhs(rhs)));
            }
            IrStatement::UnitDelay { var, input, .. } => {
                // VHDL-AMS has no "one solver step" notion; the canonical
                // mapping is a zero-time 'delayed, which yields the previous
                // solution point under a variable-step solver.
                out.push_str(&format!("  {var} == {input}'delayed(0.0);\n"));
            }
            IrStatement::FixedDelay { var, input, td, .. } => {
                out.push_str(&format!("  {var} == {input}'delayed({td});\n"));
            }
            IrStatement::FirstOrderLag {
                var, input, k, tau, ..
            } => {
                out.push_str(&format!(
                    "  {var} == {k} * {input}'ltf((0 => 1.0), (0 => 1.0, 1 => {tau}));\n"
                ));
            }
        }
    }
    out.push_str("end architecture behavioural;\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use crate::{generate, Backend};
    use gabm_core::constructs::{InputStageSpec, OutputStageSpec};

    #[test]
    fn entity_structure() {
        let d = InputStageSpec::new("in", 1e-6, 5e-12).diagram().unwrap();
        let code = generate(&d, Backend::VhdlAms).unwrap();
        assert!(code.text.contains("entity input_stage_in is"));
        assert!(code.text.contains("terminal in : electrical"));
        assert!(code.text.contains("gin : real := 1e-6"));
        assert!(code.text.contains("architecture behavioural"));
    }

    #[test]
    fn same_diagram_different_language() {
        // The core claim: one diagram, several HDLs. The FAS derivative is a
        // guarded state.dt; the VHDL-AMS one is the 'dot attribute.
        let d = InputStageSpec::new("in", 1e-6, 5e-12).diagram().unwrap();
        let vhdl = generate(&d, Backend::VhdlAms).unwrap();
        assert!(vhdl.text.contains("yd4 == v2'dot;"));
        assert!(vhdl.text.contains("i_in == yout7;"));
        let fas = generate(&d, Backend::Fas).unwrap();
        assert!(fas.text.contains("state.dt(v2)"));
    }

    #[test]
    fn limiter_uses_min_max() {
        let d = OutputStageSpec::new("out", 1e-3)
            .with_current_limit(1e-2)
            .diagram()
            .unwrap();
        let code = generate(&d, Backend::VhdlAms).unwrap();
        assert!(code.text.contains("realmin(realmax("));
    }
}
