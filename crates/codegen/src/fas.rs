//! ELDO-FAS backend.
//!
//! Renders the model exactly in the style of the paper's §4.2 listing:
//! a `model … analog … endanalog endmodel` file whose body lines are the
//! concatenated generic code segments.

use crate::ir::{CodeIr, IrRhs, IrStatement, PinQuantity};
use crate::CodegenError;
use gabm_core::symbol::format_number;

/// Stiff conductance used to impose across quantities (voltage generators).
const GBIG: &str = "1.0e6";

impl PinQuantity {
    /// Through counterpart of an across quantity (for stiff imposition).
    fn through_counterpart(self) -> PinQuantity {
        match self {
            PinQuantity::Volt => PinQuantity::Curr,
            PinQuantity::Omega => PinQuantity::Torque,
            PinQuantity::Temp => PinQuantity::Heat,
            other => other,
        }
    }
}

fn render_rhs(rhs: &IrRhs) -> String {
    match rhs {
        IrRhs::Gain { a, input } => format!("{a} * {input}"),
        IrRhs::Sum { terms } => {
            let mut s = String::new();
            for (k, (pos, term)) in terms.iter().enumerate() {
                if k == 0 {
                    if *pos {
                        s.push_str(term);
                    } else {
                        s.push_str(&format!("-{term}"));
                    }
                } else if *pos {
                    s.push_str(&format!(" + {term}"));
                } else {
                    s.push_str(&format!(" - {term}"));
                }
            }
            s
        }
        IrRhs::Prod { factors } => {
            let mut s = String::new();
            for (k, (mul, factor)) in factors.iter().enumerate() {
                if k == 0 {
                    if *mul {
                        s.push_str(factor);
                    } else {
                        s.push_str(&format!("1.0 / {factor}"));
                    }
                } else if *mul {
                    s.push_str(&format!(" * {factor}"));
                } else {
                    s.push_str(&format!(" / {factor}"));
                }
            }
            s
        }
        IrRhs::Limit { input, lo, hi } => format!("limit({input}, {lo}, {hi})"),
        IrRhs::PosPart { input } => format!("max({input}, 0.0)"),
        IrRhs::NegPart { input } => format!("min({input}, 0.0)"),
        IrRhs::Func { func, args } => format!("{}({})", func.code_name(), args.join(", ")),
        IrRhs::Copy { input } => input.clone(),
    }
}

pub(crate) fn render(ir: &CodeIr) -> Result<String, CodegenError> {
    let mut out = String::new();
    out.push_str(&format!(
        "* {} -- generated from a functional diagram by gabm-codegen\n",
        ir.model_name
    ));
    let pins = ir.pins.join(", ");
    let params = ir
        .params
        .iter()
        .map(|p| format!("{}={}", p.name, format_number(p.default)))
        .collect::<Vec<_>>()
        .join(", ");
    out.push_str(&format!("model {} pin ({pins})", ir.model_name));
    if !ir.params.is_empty() {
        out.push_str(&format!(" param ({params})"));
    }
    out.push('\n');
    out.push_str("analog\n");
    for stmt in &ir.statements {
        match stmt {
            IrStatement::Probe {
                var, pin, quantity, ..
            } => {
                out.push_str(&format!(
                    "make {var} = {}.value({pin})\n",
                    quantity.fas_prefix()
                ));
            }
            IrStatement::Impose {
                pin,
                quantity,
                expr,
                ..
            } => {
                out.push_str(&format!(
                    "make {}.on({pin}) = {expr}\n",
                    quantity.fas_prefix()
                ));
            }
            IrStatement::ImposeAcross { pin, target, .. } => {
                // Across quantities are imposed through a stiff conductance
                // (the "simulation expertise" of §4's note: a hard voltage
                // constraint inside a behavioural model is a convergence
                // hazard, a stiff Norton source is not).
                let across = PinQuantity::Volt.fas_prefix();
                let through = PinQuantity::Volt.through_counterpart().fas_prefix();
                out.push_str(&format!(
                    "make {through}.on({pin}) = {GBIG} * ({across}.value({pin}) - ({target}))\n"
                ));
            }
            IrStatement::Derivative { var, input, .. } => {
                out.push_str("if (mode=dc) then\n");
                out.push_str(&format!("make {var} = 0\n"));
                out.push_str("else\n");
                out.push_str(&format!("make {var} = state.dt({input})\n"));
                out.push_str("endif\n");
            }
            IrStatement::Integral { var, input, .. } => {
                out.push_str(&format!("make {var} = state.idt({input})\n"));
            }
            IrStatement::Assign { var, rhs, .. } => {
                out.push_str(&format!("make {var} = {}\n", render_rhs(rhs)));
            }
            IrStatement::UnitDelay { var, input, .. } => {
                out.push_str(&format!("make {var} = state.delay({input})\n"));
            }
            IrStatement::FixedDelay { var, input, td, .. } => {
                out.push_str(&format!("make {var} = state.delayt({input}, {td})\n"));
            }
            IrStatement::FirstOrderLag {
                var, input, k, tau, ..
            } => {
                out.push_str("if (mode=dc) then\n");
                out.push_str(&format!("make {var} = {k} * {input}\n"));
                out.push_str("else\n");
                out.push_str(&format!(
                    "make {var} = (state.delay({var}) + (timestep / {tau}) * {k} * {input}) / (1.0 + timestep / {tau})\n"
                ));
                out.push_str("endif\n");
            }
        }
    }
    out.push_str("endanalog\n");
    out.push_str("endmodel\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use crate::{generate, Backend};
    use gabm_core::constructs::{InputStageSpec, OutputStageSpec, SlewRateSpec};

    /// The paper's §4.2 listing, character for character (body only).
    const PAPER_LISTING: &str = "\
analog
make v2 = volt.value(in)
if (mode=dc) then
make yd4 = 0
else
make yd4 = state.dt(v2)
endif
make yout5 = cin * yd4
make yout6 = gin * v2
make yout7 = yout5 + yout6
make curr.on(in) = yout7
endanalog
";

    #[test]
    fn golden_paper_listing() {
        let d = InputStageSpec::new("in", 1e-6, 5e-12).diagram().unwrap();
        let code = generate(&d, Backend::Fas).unwrap();
        assert!(
            code.text.contains(PAPER_LISTING),
            "generated code does not embed the paper listing:\n{}",
            code.text
        );
    }

    #[test]
    fn header_declares_pins_and_params() {
        let d = InputStageSpec::new("in", 1e-6, 5e-12).diagram().unwrap();
        let code = generate(&d, Backend::Fas).unwrap();
        assert!(code.text.contains("model input_stage_in pin (in)"));
        assert!(code.text.contains("gin=1e-6"));
        assert!(code.text.contains("cin=5e-12"));
    }

    #[test]
    fn output_stage_has_limit() {
        let d = OutputStageSpec::new("out", 1e-3)
            .with_current_limit(10e-3)
            .diagram()
            .unwrap();
        let code = generate(&d, Backend::Fas).unwrap();
        assert!(code.text.contains("limit("));
        assert!(code.text.contains("(-ilim)"));
        assert!(code.text.contains("make curr.on(out)"));
    }

    #[test]
    fn slew_rate_uses_delay_and_timestep() {
        let d = SlewRateSpec::new(1e6, 1e6).diagram().unwrap();
        let code = generate(&d, Backend::Fas).unwrap();
        assert!(code.text.contains("state.delay("));
        assert!(code.text.contains("/ timestep"));
        // Division appears through the multiplier with a divide op.
        assert!(code.text.contains(" * timestep"));
    }

    #[test]
    fn separator_renders_min_max() {
        use gabm_core::diagram::FunctionalDiagram;
        use gabm_core::quantity::Dimension;
        use gabm_core::symbol::SymbolKind;
        let mut d = FunctionalDiagram::new("sep_demo");
        let p = d.add_symbol(SymbolKind::Parameter {
            param: "x".into(),
            dimension: Dimension::CURRENT,
        });
        d.add_parameter("x", 0.0, Dimension::CURRENT);
        let s = d.add_symbol(SymbolKind::Separator);
        let pin = d.add_symbol(SymbolKind::Pin { name: "p".into() });
        let gen = d.add_symbol(SymbolKind::Generator {
            quantity: Dimension::CURRENT,
        });
        d.connect(d.port(p, "out").unwrap(), d.port(s, "in").unwrap())
            .unwrap();
        d.connect(d.port(pin, "pin").unwrap(), d.port(gen, "pin").unwrap())
            .unwrap();
        d.connect(d.port(s, "pos").unwrap(), d.port(gen, "in").unwrap())
            .unwrap();
        let code = generate(&d, Backend::Fas).unwrap();
        assert!(code.text.contains("max(x, 0.0)"));
        assert!(code.text.contains("min(x, 0.0)"));
    }
}
