//! AC small-signal analysis against hand calculations: the MOS
//! linearization cached at the operating point must reproduce the classic
//! amplifier formulas.

use gabm_sim::analysis::ac::{AcSpec, AcSweep};
use gabm_sim::circuit::Circuit;
use gabm_sim::devices::vsource::Vsource;
use gabm_sim::devices::{MosType, MosfetParams, SourceWave};

fn nmos_params() -> MosfetParams {
    MosfetParams {
        vto: 0.8,
        kp: 100e-6,
        lambda: 0.02,
        gamma: 0.0,
        phi: 0.65,
        w: 5e-6,
        l: 1e-6,
        cgs: 0.0,
        cgd: 0.0,
        cgb: 0.0,
    }
}

/// Common-source amplifier: |A| = gm·(RD ∥ ro) at low frequency.
#[test]
fn common_source_gain_matches_hand_calc() {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let gate = ckt.node("gate");
    let drain = ckt.node("drain");
    ckt.add_vsource("VDD", vdd, Circuit::GROUND, SourceWave::dc(5.0));
    // Bias the gate at 1.5 V (vov = 0.7, safely saturated against the
    // 10 k load line) with the AC stimulus on top.
    ckt.add_device(Box::new(
        Vsource::new("VG", gate, Circuit::GROUND, SourceWave::dc(1.5)).with_ac(1.0),
    ))
    .unwrap();
    let rd = 10.0e3;
    ckt.add_resistor("RD", vdd, drain, rd).unwrap();
    ckt.add_mosfet(
        "M1",
        MosType::Nmos,
        drain,
        gate,
        Circuit::GROUND,
        Circuit::GROUND,
        nmos_params(),
    )
    .unwrap();
    let r = ckt
        .ac(&AcSpec {
            sweep: AcSweep::List(vec![1.0e3]),
        })
        .unwrap();
    let gain = r.voltage_at(0, drain).abs();

    // Hand calculation at the same bias. The drain settles where
    // id·RD = vdd − vds; solve the square law + load line numerically.
    let beta = 100e-6 * 5.0;
    let vov = 1.5 - 0.8;
    let lambda = 0.02;
    // Iterate the load line: id = beta/2·vov²·(1+λ·vds).
    let mut vds = 2.0;
    for _ in 0..50 {
        let id = 0.5 * beta * vov * vov * (1.0 + lambda * vds);
        vds = 5.0 - id * rd;
    }
    let id = 0.5 * beta * vov * vov * (1.0 + lambda * vds);
    let gm = beta * vov * (1.0 + lambda * vds);
    let gds = 0.5 * beta * vov * vov * lambda;
    let _ = id;
    assert!(vds > vov, "bias not in saturation: vds = {vds}");
    let expect = gm / (1.0 / rd + gds);
    assert!(
        (gain - expect).abs() / expect < 0.02,
        "gain {gain:.2} vs hand calc {expect:.2}"
    );
    // Inverting stage: phase ≈ 180°.
    let phase = r.phase_deg(drain)[0].abs();
    assert!((phase - 180.0).abs() < 1.0, "phase {phase}");
}

/// The gate capacitance makes the common-source stage a one-pole amplifier
/// from a resistive source: the AC magnitude must drop at high frequency.
#[test]
fn gate_capacitance_rolls_off() {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let src = ckt.node("src");
    let gate = ckt.node("gate");
    let drain = ckt.node("drain");
    ckt.add_vsource("VDD", vdd, Circuit::GROUND, SourceWave::dc(5.0));
    ckt.add_device(Box::new(
        Vsource::new("VG", src, Circuit::GROUND, SourceWave::dc(1.5)).with_ac(1.0),
    ))
    .unwrap();
    ckt.add_resistor("RS", src, gate, 100.0e3).unwrap();
    ckt.add_resistor("RD", vdd, drain, 10.0e3).unwrap();
    let params = MosfetParams {
        cgs: 10.0e-12,
        ..nmos_params()
    };
    ckt.add_mosfet(
        "M1",
        MosType::Nmos,
        drain,
        gate,
        Circuit::GROUND,
        Circuit::GROUND,
        params,
    )
    .unwrap();
    let r = ckt
        .ac(&AcSpec {
            sweep: AcSweep::List(vec![1.0e3, 10.0e6]),
        })
        .unwrap();
    let lf = r.voltage_at(0, drain).abs();
    let hf = r.voltage_at(1, drain).abs();
    // Pole at 1/(2π·100k·10p) ≈ 159 kHz: 10 MHz is ~63x past it.
    assert!(hf < lf / 20.0, "lf {lf}, hf {hf}");
}

/// Diode AC conductance: at forward bias the measured admittance equals
/// the OP-linearized gd = Is·e^{v/vt}/vt.
#[test]
fn diode_small_signal_conductance() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let d = ckt.node("d");
    ckt.add_device(Box::new(
        Vsource::new("V1", a, Circuit::GROUND, SourceWave::dc(5.0)).with_ac(1.0),
    ))
    .unwrap();
    ckt.add_resistor("R1", a, d, 10.0e3).unwrap();
    ckt.add_diode(
        "D1",
        d,
        Circuit::GROUND,
        gabm_sim::devices::DiodeParams::default(),
    );
    let op = ckt.op().unwrap();
    let vd = op.voltage(d);
    let gd = 1e-14 * (vd / 0.025861).exp() / 0.025861;
    let r = ckt
        .ac(&AcSpec {
            sweep: AcSweep::List(vec![1.0e3]),
        })
        .unwrap();
    // Voltage divider: vd_ac = gR/(gR + gd) with gR = 1e-4.
    let expect = 1.0e-4 / (1.0e-4 + gd);
    let measured = r.voltage_at(0, d).abs();
    assert!(
        (measured - expect).abs() / expect < 0.05,
        "measured {measured:.4e}, expected {expect:.4e}"
    );
}

/// AC through a behavioural device: the cached operating-point conductance
/// of a FAS-style model appears as a resistive admittance.
#[test]
fn behavioural_device_ac_conductance() {
    use gabm_sim::devices::{BehavioralModel, EvalCtx};

    /// A nonlinear behavioural load: i = g·v³ (small-signal g_ac = 3·g·v²).
    #[derive(Debug)]
    struct CubicLoad {
        g: f64,
    }
    impl BehavioralModel for CubicLoad {
        fn pin_count(&self) -> usize {
            1
        }
        fn eval(&mut self, _ctx: &EvalCtx, v: &[f64], i: &mut [f64]) {
            i[0] = self.g * v[0] * v[0] * v[0];
        }
        fn accept(&mut self, _ctx: &EvalCtx, _v: &[f64]) {}
    }

    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let d = ckt.node("d");
    ckt.add_device(Box::new(
        Vsource::new("V1", a, Circuit::GROUND, SourceWave::dc(2.0)).with_ac(1.0),
    ))
    .unwrap();
    ckt.add_resistor("R1", a, d, 1.0e3).unwrap();
    ckt.add_behavioral("XL", &[d], Box::new(CubicLoad { g: 1.0e-4 }))
        .unwrap();
    let op = ckt.op().unwrap();
    let vd = op.voltage(d);
    // Small-signal conductance of the cubic at the OP.
    let g_ac = 3.0 * 1.0e-4 * vd * vd;
    let r = ckt
        .ac(&AcSpec {
            sweep: AcSweep::List(vec![1.0e3]),
        })
        .unwrap();
    let measured = r.voltage_at(0, d).abs();
    let expect = 1.0e-3 / (1.0e-3 + g_ac);
    assert!(
        (measured - expect).abs() / expect < 0.02,
        "measured {measured:.4}, expected {expect:.4} (vd = {vd:.3}, g_ac = {g_ac:.3e})"
    );
}
