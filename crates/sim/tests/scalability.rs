//! Scalability: large circuits exercise the sparse matrix backend
//! (`Options::sparse_threshold`) and must produce the same answers as the
//! dense path.

use gabm_sim::analysis::tran::TranSpec;
use gabm_sim::circuit::{Circuit, NodeId};
use gabm_sim::devices::SourceWave;

/// Builds an n-stage RC ladder driven by a step.
fn ladder(n: usize, sparse_threshold: usize) -> (Circuit, Vec<NodeId>) {
    let mut ckt = Circuit::new();
    ckt.options.sparse_threshold = sparse_threshold;
    let mut nodes = Vec::with_capacity(n + 1);
    let input = ckt.node("in");
    nodes.push(input);
    ckt.add_vsource(
        "V1",
        input,
        Circuit::GROUND,
        SourceWave::pulse(0.0, 1.0, 0.0, 1e-9, 1e-9, 1.0, 0.0),
    );
    for k in 0..n {
        let next = ckt.node(&format!("n{k}"));
        ckt.add_resistor(&format!("R{k}"), nodes[k], next, 1.0e3)
            .expect("valid resistor");
        ckt.add_capacitor(&format!("C{k}"), next, Circuit::GROUND, 1.0e-9);
        nodes.push(next);
    }
    (ckt, nodes)
}

#[test]
fn sparse_and_dense_paths_agree() {
    let n = 80; // 81 nodes + 1 branch unknown
                // Diffusive settling of an n-stage RC line ~ 0.5 n^2 RC = 3.2 ms.
    let tstop = 20.0e-3;
    // Dense: threshold above the system size; sparse: threshold 1.
    let (mut dense, dn) = ladder(n, usize::MAX);
    let rd = dense.tran(&TranSpec::new(tstop)).expect("dense tran");
    let wd = rd.voltage_waveform(dn[n]).expect("waveform");
    let (mut sparse, sn) = ladder(n, 1);
    let rs = sparse.tran(&TranSpec::new(tstop)).expect("sparse tran");
    let ws = rs.voltage_waveform(sn[n]).expect("waveform");
    let rms = wd.rms_difference(&ws).expect("comparable");
    assert!(rms < 1e-6, "dense vs sparse RMS difference {rms}");
    // Both see the diffusion delay: the far end lags the input
    // substantially but eventually rises.
    assert!(wd.value_at(100.0e-6).unwrap() < 0.3);
    assert!(*wd.values().last().unwrap() > 0.8);
}

#[test]
fn large_ladder_op_solves_on_sparse_path() {
    let (mut ckt, nodes) = ladder(300, 64);
    assert!(ckt.n_unknowns() > 64, "must exceed the sparse threshold");
    let op = ckt.op().expect("sparse OP converges");
    // DC: no current flows, the whole ladder sits at the source value.
    assert!((op.voltage(nodes[300]) - 0.0).abs() < 1e-9);
}
