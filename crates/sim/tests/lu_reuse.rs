//! Transient-level checks of the sparse-LU refactorization cache: the
//! reuse path must not change results (bitwise), must survive across time
//! steps, and must be switchable off via [`gabm_sim::Options::reuse_lu`].

use gabm_sim::analysis::tran::TranSpec;
use gabm_sim::devices::{DiodeParams, SourceWave};
use gabm_sim::Circuit;

/// A diode-clamped RC ladder driven by a sine — nonlinear and reactive,
/// so the transient engine runs many Newton iterations per step.
fn ladder(reuse_lu: bool) -> (Circuit, gabm_sim::NodeId) {
    let mut c = Circuit::new();
    c.options.sparse_threshold = 1; // force the sparse backend
    c.options.reuse_lu = reuse_lu;
    let input = c.node("in");
    c.add_vsource(
        "VIN",
        input,
        Circuit::GROUND,
        SourceWave::sine(0.0, 3.0, 50.0e3),
    );
    let mut prev = input;
    let mut last = input;
    for k in 0..5 {
        let n = c.node(&format!("n{k}"));
        c.add_resistor(&format!("R{k}"), prev, n, 1.0e3).unwrap();
        c.add_capacitor(&format!("C{k}"), n, Circuit::GROUND, 1.0e-9);
        if k % 2 == 0 {
            c.add_diode(&format!("D{k}"), n, Circuit::GROUND, DiodeParams::default());
        }
        prev = n;
        last = n;
    }
    (c, last)
}

#[test]
fn transient_reuse_matches_full_factorization_bitwise() {
    let tstop = 60.0e-6;
    let run = |reuse: bool| {
        let (mut ckt, out) = ladder(reuse);
        let r = ckt.tran(&TranSpec::new(tstop)).expect("transient runs");
        let w = r.voltage_waveform(out).expect("waveform");
        (r.stats, w)
    };
    let (stats_full, w_full) = run(false);
    let (stats_reuse, w_reuse) = run(true);

    // Identical trajectory — not merely close: the refactorization replays
    // the same floating-point operations as the full factorization.
    assert_eq!(stats_full.accepted_steps, stats_reuse.accepted_steps);
    assert_eq!(stats_full.newton_iterations, stats_reuse.newton_iterations);
    let rms = w_full.rms_difference(&w_reuse).expect("comparable grids");
    assert_eq!(rms, 0.0, "reuse changed the waveform (rms {rms:e})");

    // The reuse run replaces nearly every factorization with a numeric
    // refactorization; the solve count stays the same.
    assert_eq!(stats_full.refactorizations, 0);
    assert!(
        stats_reuse.refactorizations > stats_reuse.factorizations * 10,
        "expected refactorizations to dominate: {} refactors vs {} full",
        stats_reuse.refactorizations,
        stats_reuse.factorizations
    );
    assert_eq!(
        stats_full.factorizations,
        stats_reuse.factorizations + stats_reuse.refactorizations
    );
}
