//! DC sweep analysis.

use crate::analysis::op::solve_op_guess;
use crate::circuit::{Circuit, NodeId};
use crate::options::SimStats;
use crate::SimError;

/// Result of a DC sweep: one solved operating point per source value.
#[derive(Debug, Clone)]
pub struct DcResult {
    values: Vec<f64>,
    solutions: Vec<Vec<f64>>,
    n_nodes: usize,
    /// Work counters accumulated over the whole sweep.
    pub stats: SimStats,
}

impl DcResult {
    /// The swept source values.
    pub fn sweep_values(&self) -> &[f64] {
        &self.values
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the sweep is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Voltage of `node` at sweep point `idx`.
    pub fn voltage_at(&self, idx: usize, node: NodeId) -> f64 {
        if node.is_ground() {
            0.0
        } else {
            self.solutions[idx][node.index() - 1]
        }
    }

    /// The voltage of `node` across the whole sweep, parallel to
    /// [`DcResult::sweep_values`].
    pub fn voltage_series(&self, node: NodeId) -> Vec<f64> {
        (0..self.len()).map(|i| self.voltage_at(i, node)).collect()
    }

    /// Branch current by global index at sweep point `idx`.
    pub fn branch_current_at(&self, idx: usize, branch: usize) -> f64 {
        self.solutions[idx][self.n_nodes + branch]
    }
}

/// Sweeps the DC value of the named independent source from `from` to `to`
/// (inclusive, within half a step) in increments of `step`, tracking each
/// point's solution as the next point's initial guess.
pub(crate) fn sweep(
    circuit: &mut Circuit,
    source: &str,
    from: f64,
    to: f64,
    step: f64,
) -> Result<DcResult, SimError> {
    if step == 0.0 || (to - from) * step < 0.0 {
        return Err(SimError::BadAnalysis(format!(
            "inconsistent sweep: from {from} to {to} step {step}"
        )));
    }
    let idx = circuit
        .device_index(source)
        .ok_or_else(|| SimError::UnknownDevice(source.to_string()))?;

    let _span = gabm_trace::span("sim.dc");
    let wall_start = std::time::Instant::now();
    let n = circuit.n_unknowns();
    let mut guess = vec![0.0; n];
    let mut values = Vec::new();
    let mut solutions = Vec::new();
    let mut stats = SimStats::default();

    let count = ((to - from) / step).round() as isize;
    for k in 0..=count.max(0) {
        let v = from + step * k as f64;
        if !circuit.devices_mut()[idx].set_dc_value(v) {
            return Err(SimError::UnknownDevice(format!(
                "{source} is not an independent source"
            )));
        }
        let (x, s) = solve_op_guess(circuit, &guess)?;
        stats.absorb(s);
        guess.copy_from_slice(&x);
        values.push(v);
        solutions.push(x);
    }
    stats.wall_s = wall_start.elapsed().as_secs_f64();
    Ok(DcResult {
        values,
        solutions,
        n_nodes: circuit.n_nodes(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{DiodeParams, SourceWave};

    #[test]
    fn linear_sweep_tracks_divider() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GROUND, SourceWave::dc(0.0));
        c.add_resistor("R1", a, b, 1.0e3).unwrap();
        c.add_resistor("R2", b, Circuit::GROUND, 1.0e3).unwrap();
        let r = c.dc_sweep("V1", 0.0, 10.0, 1.0).unwrap();
        assert_eq!(r.len(), 11);
        assert_eq!(r.sweep_values()[0], 0.0);
        assert_eq!(r.sweep_values()[10], 10.0);
        let vb = r.voltage_series(b);
        for (v, out) in r.sweep_values().iter().zip(&vb) {
            assert!((out - v / 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn diode_iv_curve_is_exponentialish() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource("V1", a, Circuit::GROUND, SourceWave::dc(0.0));
        c.add_diode("D1", a, Circuit::GROUND, DiodeParams::default());
        let r = c.dc_sweep("V1", 0.0, 0.7, 0.05).unwrap();
        // Source current grows superlinearly (exponential diode).
        let i_mid = -r.branch_current_at(7, 0);
        let i_end = -r.branch_current_at(14, 0);
        assert!(i_end > 10.0 * i_mid, "i_mid={i_mid}, i_end={i_end}");
    }

    #[test]
    fn descending_sweep() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource("V1", a, Circuit::GROUND, SourceWave::dc(0.0));
        c.add_resistor("R1", a, Circuit::GROUND, 1.0).unwrap();
        let r = c.dc_sweep("V1", 1.0, -1.0, -0.5).unwrap();
        assert_eq!(r.sweep_values(), &[1.0, 0.5, 0.0, -0.5, -1.0]);
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource("V1", a, Circuit::GROUND, SourceWave::dc(0.0));
        c.add_resistor("R1", a, Circuit::GROUND, 1.0).unwrap();
        assert!(c.dc_sweep("V1", 0.0, 1.0, 0.0).is_err());
        assert!(c.dc_sweep("V1", 0.0, 1.0, -0.1).is_err());
        assert!(c.dc_sweep("VX", 0.0, 1.0, 0.1).is_err());
        assert!(c.dc_sweep("R1", 0.0, 1.0, 0.1).is_err());
    }
}
