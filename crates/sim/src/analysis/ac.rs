//! AC small-signal analysis.
//!
//! Linearizes the circuit about its DC operating point and solves the
//! complex MNA system at each frequency. Sources marked with an AC magnitude
//! (see [`crate::devices::vsource::Vsource::with_ac`]) provide the stimulus.

use crate::circuit::{Circuit, NodeId};
use crate::device::AcStamper;
use crate::options::SimStats;
use crate::SimError;
use gabm_numeric::{Complex64, LuFactor};

/// Frequency grid of an AC sweep.
#[derive(Debug, Clone, PartialEq)]
pub enum AcSweep {
    /// `points_per_decade` logarithmically spaced points per decade from
    /// `fstart` to `fstop`.
    Decade {
        /// Points per decade.
        points_per_decade: usize,
        /// Start frequency (Hz), must be positive.
        fstart: f64,
        /// Stop frequency (Hz).
        fstop: f64,
    },
    /// `n` linearly spaced points from `fstart` to `fstop`.
    Linear {
        /// Number of points (≥ 2).
        n: usize,
        /// Start frequency (Hz).
        fstart: f64,
        /// Stop frequency (Hz).
        fstop: f64,
    },
    /// Explicit frequency list (Hz).
    List(Vec<f64>),
}

impl AcSweep {
    /// Expands the sweep into a concrete frequency list.
    ///
    /// # Errors
    ///
    /// [`SimError::BadAnalysis`] for inconsistent bounds.
    pub fn frequencies(&self) -> Result<Vec<f64>, SimError> {
        match self {
            AcSweep::Decade {
                points_per_decade,
                fstart,
                fstop,
            } => {
                if *fstart <= 0.0 || fstop <= fstart || *points_per_decade == 0 {
                    return Err(SimError::BadAnalysis(
                        "decade sweep needs 0 < fstart < fstop and points > 0".into(),
                    ));
                }
                let decades = (fstop / fstart).log10();
                let total = (decades * *points_per_decade as f64).ceil() as usize;
                let mut out = Vec::with_capacity(total + 1);
                for k in 0..=total {
                    out.push(fstart * 10f64.powf(k as f64 / *points_per_decade as f64));
                }
                if let Some(last) = out.last_mut() {
                    *last = last.min(*fstop);
                }
                Ok(out)
            }
            AcSweep::Linear { n, fstart, fstop } => {
                if *n < 2 || fstop <= fstart {
                    return Err(SimError::BadAnalysis(
                        "linear sweep needs n >= 2 and fstart < fstop".into(),
                    ));
                }
                let step = (fstop - fstart) / (*n as f64 - 1.0);
                Ok((0..*n).map(|k| fstart + step * k as f64).collect())
            }
            AcSweep::List(fs) => {
                if fs.is_empty() {
                    return Err(SimError::BadAnalysis("empty frequency list".into()));
                }
                Ok(fs.clone())
            }
        }
    }
}

/// Specification of an AC analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct AcSpec {
    /// Frequency grid.
    pub sweep: AcSweep,
}

impl AcSpec {
    /// Decade sweep shorthand.
    pub fn decade(points_per_decade: usize, fstart: f64, fstop: f64) -> Self {
        AcSpec {
            sweep: AcSweep::Decade {
                points_per_decade,
                fstart,
                fstop,
            },
        }
    }
}

/// Result of an AC analysis: complex node voltages per frequency.
#[derive(Debug, Clone)]
pub struct AcResult {
    freqs: Vec<f64>,
    solutions: Vec<Vec<Complex64>>,
    n_nodes: usize,
    /// Work counters (includes the implicit OP solve).
    pub stats: SimStats,
}

impl AcResult {
    /// The analysis frequencies (Hz).
    pub fn frequencies(&self) -> &[f64] {
        &self.freqs
    }

    /// Number of frequency points.
    pub fn len(&self) -> usize {
        self.freqs.len()
    }

    /// `true` if the sweep is empty.
    pub fn is_empty(&self) -> bool {
        self.freqs.is_empty()
    }

    /// Complex voltage of `node` at frequency point `idx`.
    pub fn voltage_at(&self, idx: usize, node: NodeId) -> Complex64 {
        if node.is_ground() {
            Complex64::ZERO
        } else {
            self.solutions[idx][node.index() - 1]
        }
    }

    /// Complex branch current by global index at point `idx`.
    pub fn branch_current_at(&self, idx: usize, branch: usize) -> Complex64 {
        self.solutions[idx][self.n_nodes + branch]
    }

    /// Magnitude (in dB) of `node`'s voltage across the sweep.
    pub fn magnitude_db(&self, node: NodeId) -> Vec<f64> {
        (0..self.len())
            .map(|i| self.voltage_at(i, node).abs_db())
            .collect()
    }

    /// Phase (degrees) of `node`'s voltage across the sweep.
    pub fn phase_deg(&self, node: NodeId) -> Vec<f64> {
        (0..self.len())
            .map(|i| self.voltage_at(i, node).arg_deg())
            .collect()
    }
}

pub(crate) fn solve_ac(circuit: &mut Circuit, spec: &AcSpec) -> Result<AcResult, SimError> {
    let _span = gabm_trace::span("sim.ac");
    let wall_start = std::time::Instant::now();
    let freqs = spec.sweep.frequencies()?;
    // Linearize about the operating point (devices cache gm/gds/...).
    let op = circuit.op()?;
    let mut stats = op.stats;
    let n_nodes = circuit.n_nodes();
    let n_branches = circuit.n_branches();
    let mut stamper = AcStamper::new(n_nodes, n_branches, 0.0);
    let mut solutions = Vec::with_capacity(freqs.len());
    for &f in &freqs {
        let omega = 2.0 * std::f64::consts::PI * f;
        stamper.reset(omega);
        for d in circuit.devices_mut() {
            d.stamp_ac(&mut stamper);
        }
        stats.device_evals += 1;
        let (mat, rhs) = stamper.finish();
        let lu = LuFactor::new(mat)?;
        stats.factorizations += 1;
        solutions.push(lu.solve(rhs)?);
    }
    stats.wall_s = wall_start.elapsed().as_secs_f64();
    Ok(AcResult {
        freqs,
        solutions,
        n_nodes,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::vsource::Vsource;
    use crate::devices::SourceWave;

    #[test]
    fn sweep_expansion() {
        let f = AcSweep::Decade {
            points_per_decade: 1,
            fstart: 1.0,
            fstop: 1000.0,
        }
        .frequencies()
        .unwrap();
        assert_eq!(f.len(), 4);
        assert!((f[3] - 1000.0).abs() < 1e-9);
        let f = AcSweep::Linear {
            n: 3,
            fstart: 0.0,
            fstop: 10.0,
        }
        .frequencies()
        .unwrap();
        assert_eq!(f, vec![0.0, 5.0, 10.0]);
        assert!(AcSweep::List(vec![]).frequencies().is_err());
        assert!(AcSweep::Decade {
            points_per_decade: 0,
            fstart: 1.0,
            fstop: 10.0
        }
        .frequencies()
        .is_err());
    }

    #[test]
    fn rc_lowpass_bode() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_device(Box::new(
            Vsource::new("V1", a, Circuit::GROUND, SourceWave::dc(0.0)).with_ac(1.0),
        ))
        .unwrap();
        c.add_resistor("R1", a, b, 1.0e3).unwrap();
        c.add_capacitor("C1", b, Circuit::GROUND, 1.0e-6);
        // Pole at 159.15 Hz.
        let r = c
            .ac(&AcSpec {
                sweep: AcSweep::List(vec![1.0, 159.1549, 100.0e3]),
            })
            .unwrap();
        let mag = r.magnitude_db(b);
        assert!(mag[0].abs() < 0.01, "passband gain {} dB", mag[0]);
        assert!((mag[1] + 3.0103).abs() < 0.1, "corner gain {} dB", mag[1]);
        assert!(mag[2] < -50.0, "stopband gain {} dB", mag[2]);
        let ph = r.phase_deg(b);
        assert!((ph[1] + 45.0).abs() < 1.0, "corner phase {}", ph[1]);
    }

    #[test]
    fn rlc_resonance_peak() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_device(Box::new(
            Vsource::new("V1", a, Circuit::GROUND, SourceWave::dc(0.0)).with_ac(1.0),
        ))
        .unwrap();
        c.add_resistor("R1", a, b, 10.0).unwrap();
        c.add_inductor("L1", b, Circuit::GROUND, 1.0e-3).unwrap();
        // Series resistance keeps the inductor's DC short from fighting the
        // source: measure across the capacitor in a series RLC.
        let mut c2 = Circuit::new();
        let a2 = c2.node("a");
        let m = c2.node("m");
        let o = c2.node("o");
        c2.add_device(Box::new(
            Vsource::new("V1", a2, Circuit::GROUND, SourceWave::dc(0.0)).with_ac(1.0),
        ))
        .unwrap();
        c2.add_resistor("R1", a2, m, 10.0).unwrap();
        c2.add_inductor("L1", m, o, 1.0e-3).unwrap();
        c2.add_capacitor("C1", o, Circuit::GROUND, 1.0e-6);
        // f0 = 5.03 kHz; Q = (1/R)√(L/C) = 3.16 ⇒ |V(o)| peaks ≈ Q.
        let r = c2
            .ac(&AcSpec {
                sweep: AcSweep::List(vec![5.0329e3]),
            })
            .unwrap();
        let vo = r.voltage_at(0, o).abs();
        assert!((vo - 3.162).abs() < 0.05, "peak gain {vo}");
    }
}
