//! Circuit analyses: operating point, DC sweep, transient, AC.

pub mod ac;
pub mod dc;
pub(crate) mod engine;
pub mod op;
pub mod tran;
