//! DC operating-point analysis with gmin and source stepping.

use crate::analysis::engine::{newton_solve, SolveSetup};
use crate::circuit::{Circuit, NodeId};
use crate::device::{Mode, StateView};
use crate::options::SimStats;
use crate::SimError;

/// Result of an operating-point solve.
#[derive(Debug, Clone)]
pub struct OpResult {
    x: Vec<f64>,
    n_nodes: usize,
    /// Work counters accumulated during the solve.
    pub stats: SimStats,
}

impl OpResult {
    pub(crate) fn new(x: Vec<f64>, n_nodes: usize, stats: SimStats) -> Self {
        OpResult { x, n_nodes, stats }
    }

    /// Node voltage at the operating point.
    pub fn voltage(&self, node: NodeId) -> f64 {
        if node.is_ground() {
            0.0
        } else {
            self.x[node.index() - 1]
        }
    }

    /// Branch current by global branch index.
    pub fn branch_current(&self, idx: usize) -> f64 {
        self.x[self.n_nodes + idx]
    }

    /// Current through a named branch device (voltage source or inductor),
    /// positive from its `plus`/`a` terminal through the device.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownDevice`] if the device is absent or has no branch.
    pub fn current_through(&self, circuit: &Circuit, device: &str) -> Result<f64, SimError> {
        let idx = circuit
            .device_index(device)
            .ok_or_else(|| SimError::UnknownDevice(device.to_string()))?;
        let branch = circuit.devices()[idx]
            .branch_index()
            .ok_or_else(|| SimError::UnknownDevice(format!("{device} has no branch current")))?;
        Ok(self.branch_current(branch))
    }

    /// Full solution vector (node voltages, then branch currents).
    pub fn solution(&self) -> &[f64] {
        &self.x
    }
}

/// Solves the operating point: plain Newton first, then gmin stepping, then
/// source stepping — the same escalation ladder SPICE/ELDO use.
pub(crate) fn solve_op(circuit: &mut Circuit) -> Result<OpResult, SimError> {
    let (x, stats) = solve_op_internal(circuit, None)?;
    commit(circuit, &x);
    Ok(OpResult::new(x, circuit.n_nodes(), stats))
}

/// Operating point with an initial guess (used by DC sweeps to track the
/// previous point's solution) — does *not* commit device state.
pub(crate) fn solve_op_guess(
    circuit: &mut Circuit,
    guess: &[f64],
) -> Result<(Vec<f64>, SimStats), SimError> {
    solve_op_internal(circuit, Some(guess))
}

fn solve_op_internal(
    circuit: &mut Circuit,
    guess: Option<&[f64]>,
) -> Result<(Vec<f64>, SimStats), SimError> {
    let _span = gabm_trace::span("sim.op");
    let wall_start = std::time::Instant::now();
    let n = circuit.n_unknowns();
    if n == 0 {
        return Ok((Vec::new(), SimStats::default()));
    }
    let zero = vec![0.0; n];
    let x0: Vec<f64> = guess.map(|g| g.to_vec()).unwrap_or(zero);
    let mut stats = SimStats::default();

    // 1. Plain Newton.
    match newton_solve(circuit, Mode::Dc, &x0, SolveSetup::default(), &mut stats) {
        Ok(out) => {
            stats.wall_s = wall_start.elapsed().as_secs_f64();
            return Ok((out.x, stats));
        }
        Err(SimError::SingularMatrix { detail }) => {
            return Err(SimError::SingularMatrix { detail })
        }
        Err(_) => {}
    }

    // 2. gmin stepping: solve with a strong shunt everywhere, then relax it
    //    decade by decade, carrying the solution.
    let opts = circuit.options.clone();
    if opts.gmin_steps > 0 {
        let mut x = x0.clone();
        let mut ok = true;
        let mut gshunt = 1e-2;
        for _ in 0..opts.gmin_steps {
            match newton_solve(
                circuit,
                Mode::Dc,
                &x,
                SolveSetup {
                    gshunt,
                    source_scale: 1.0,
                },
                &mut stats,
            ) {
                Ok(out) => x = out.x,
                Err(_) => {
                    ok = false;
                    break;
                }
            }
            gshunt /= 10.0;
        }
        if ok {
            // Final solve with the shunt removed entirely.
            if let Ok(out) = newton_solve(circuit, Mode::Dc, &x, SolveSetup::default(), &mut stats)
            {
                stats.wall_s = wall_start.elapsed().as_secs_f64();
                return Ok((out.x, stats));
            }
        }
    }

    // 3. Source stepping: ramp the sources from 0 to 100 %.
    if opts.source_steps > 0 {
        let mut x = vec![0.0; n];
        let mut ok = true;
        for k in 1..=opts.source_steps {
            let scale = k as f64 / opts.source_steps as f64;
            match newton_solve(
                circuit,
                Mode::Dc,
                &x,
                SolveSetup {
                    gshunt: 0.0,
                    source_scale: scale,
                },
                &mut stats,
            ) {
                Ok(out) => x = out.x,
                Err(_) => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            stats.wall_s = wall_start.elapsed().as_secs_f64();
            return Ok((x, stats));
        }
    }

    Err(SimError::NoConvergence {
        analysis: "op",
        detail: "plain Newton, gmin stepping and source stepping all failed".to_string(),
    })
}

/// Commits the operating point into every device's state (capacitor voltages
/// etc.), making it the initial condition for a following transient.
pub(crate) fn commit(circuit: &mut Circuit, x: &[f64]) {
    let n_nodes = circuit.n_nodes();
    let sv = StateView {
        x,
        n_nodes,
        time: 0.0,
        mode: Mode::Dc,
    };
    for d in circuit.devices_mut() {
        d.accept_step(&sv);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{DiodeParams, SourceWave};

    #[test]
    fn resistive_divider() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GROUND, SourceWave::dc(9.0));
        c.add_resistor("R1", a, b, 2.0e3).unwrap();
        c.add_resistor("R2", b, Circuit::GROUND, 1.0e3).unwrap();
        let op = c.op().unwrap();
        assert!((op.voltage(b) - 3.0).abs() < 1e-9);
        assert!((op.voltage(a) - 9.0).abs() < 1e-9);
        assert_eq!(op.voltage(Circuit::GROUND), 0.0);
        let i = op.current_through(&c, "V1").unwrap();
        assert!((i + 3.0e-3).abs() < 1e-9);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_isource("I1", Circuit::GROUND, a, SourceWave::dc(1.0e-3));
        c.add_resistor("R1", a, Circuit::GROUND, 1.0e3).unwrap();
        let op = c.op().unwrap();
        assert!((op.voltage(a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn diode_clamp() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let d = c.node("d");
        c.add_vsource("V1", a, Circuit::GROUND, SourceWave::dc(5.0));
        c.add_resistor("R1", a, d, 1.0e3).unwrap();
        c.add_diode("D1", d, Circuit::GROUND, DiodeParams::default());
        let op = c.op().unwrap();
        let vd = op.voltage(d);
        assert!((0.5..0.9).contains(&vd), "vd = {vd}");
    }

    #[test]
    fn unknown_device_error() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource("V1", a, Circuit::GROUND, SourceWave::dc(1.0));
        c.add_resistor("R1", a, Circuit::GROUND, 1.0).unwrap();
        let op = c.op().unwrap();
        assert!(op.current_through(&c, "VX").is_err());
        assert!(op.current_through(&c, "R1").is_err());
    }

    #[test]
    fn empty_circuit_solves() {
        let mut c = Circuit::new();
        let op = c.op().unwrap();
        assert!(op.solution().is_empty());
    }

    #[test]
    fn back_to_back_diodes_need_homotopy() {
        // A floating-ish midpoint between two diodes biased hard: a stress
        // test that commonly requires gmin stepping.
        let mut c = Circuit::new();
        let a = c.node("a");
        let m = c.node("m");
        c.add_vsource("V1", a, Circuit::GROUND, SourceWave::dc(1.4));
        c.add_diode("D1", a, m, DiodeParams::default());
        c.add_diode("D2", m, Circuit::GROUND, DiodeParams::default());
        let op = c.op().unwrap();
        // Symmetric stack: midpoint at half the supply.
        assert!((op.voltage(m) - 0.7).abs() < 0.05, "vm = {}", op.voltage(m));
    }
}
