//! Adaptive-step transient analysis.
//!
//! Implements the variable-time-interval engine the paper's §3.3 note
//! presupposes: an implicit integration method, Newton at every candidate
//! point, local-truncation-error step control, breakpoint handling at source
//! corners and step-halving retries on convergence failures (the
//! "simulation expertise" of §4's note on discontinuities).

use crate::analysis::engine::{newton_solve, SolveSetup};
use crate::circuit::{Circuit, NodeId};
use crate::device::{Mode, StateView};
use crate::options::SimStats;
use crate::SimError;
use gabm_numeric::integrate::{
    local_truncation_error, Coefficients, Method, StepController, StepOutcome,
};
use gabm_numeric::Waveform;

/// Specification of a transient run.
#[derive(Debug, Clone, PartialEq)]
pub struct TranSpec {
    /// Stop time in seconds.
    pub tstop: f64,
    /// Initial/seed step (default `tstop / 1000`).
    pub dt_init: Option<f64>,
    /// Smallest allowed step (default `tstop · 1e-9`).
    pub dt_min: Option<f64>,
    /// Largest allowed step (default `tstop / 50`).
    pub dt_max: Option<f64>,
    /// Integration method override (default: from [`crate::Options`]).
    pub method: Option<Method>,
}

impl TranSpec {
    /// Creates a spec with default step bounds.
    pub fn new(tstop: f64) -> Self {
        TranSpec {
            tstop,
            dt_init: None,
            dt_min: None,
            dt_max: None,
            method: None,
        }
    }

    /// Builder-style maximum-step override.
    pub fn with_dt_max(mut self, dt_max: f64) -> Self {
        self.dt_max = Some(dt_max);
        self
    }

    /// Builder-style method override.
    pub fn with_method(mut self, method: Method) -> Self {
        self.method = Some(method);
        self
    }
}

/// Result of a transient analysis: the full solution at every accepted time
/// point.
#[derive(Debug, Clone)]
pub struct TranResult {
    times: Vec<f64>,
    states: Vec<Vec<f64>>,
    n_nodes: usize,
    /// Work counters for the whole run.
    pub stats: SimStats,
}

impl TranResult {
    /// Accepted time points (starting at 0).
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` if no points were stored.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Voltage of `node` at stored point `idx`.
    pub fn voltage_at(&self, idx: usize, node: NodeId) -> f64 {
        if node.is_ground() {
            0.0
        } else {
            self.states[idx][node.index() - 1]
        }
    }

    /// Branch current by global index at stored point `idx`.
    pub fn branch_current_at(&self, idx: usize, branch: usize) -> f64 {
        self.states[idx][self.n_nodes + branch]
    }

    /// The voltage of `node` over time as a [`Waveform`].
    ///
    /// # Errors
    ///
    /// [`SimError::MissingResult`] if the run stored no points.
    pub fn voltage_waveform(&self, node: NodeId) -> Result<Waveform, SimError> {
        if self.is_empty() {
            return Err(SimError::MissingResult("empty transient result".into()));
        }
        let values = (0..self.len()).map(|i| self.voltage_at(i, node)).collect();
        Waveform::from_samples(self.times.clone(), values)
            .map_err(|e| SimError::BadAnalysis(e.to_string()))
    }

    /// The current of global `branch` over time as a [`Waveform`].
    ///
    /// # Errors
    ///
    /// [`SimError::MissingResult`] if the run stored no points.
    pub fn branch_waveform(&self, branch: usize) -> Result<Waveform, SimError> {
        if self.is_empty() {
            return Err(SimError::MissingResult("empty transient result".into()));
        }
        let values = (0..self.len())
            .map(|i| self.branch_current_at(i, branch))
            .collect();
        Waveform::from_samples(self.times.clone(), values)
            .map_err(|e| SimError::BadAnalysis(e.to_string()))
    }

    /// Current waveform through a named branch device (voltage source or
    /// inductor).
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownDevice`] for devices without a branch current.
    pub fn current_waveform(&self, circuit: &Circuit, device: &str) -> Result<Waveform, SimError> {
        let idx = circuit
            .device_index(device)
            .ok_or_else(|| SimError::UnknownDevice(device.to_string()))?;
        let branch = circuit.devices()[idx]
            .branch_index()
            .ok_or_else(|| SimError::UnknownDevice(format!("{device} has no branch current")))?;
        self.branch_waveform(branch)
    }
}

/// Relative tolerance used when merging breakpoints.
const BP_MERGE: f64 = 1e-12;

pub(crate) fn solve_tran(circuit: &mut Circuit, spec: &TranSpec) -> Result<TranResult, SimError> {
    if !(spec.tstop > 0.0 && spec.tstop.is_finite()) {
        return Err(SimError::BadAnalysis(format!(
            "tstop must be positive, got {}",
            spec.tstop
        )));
    }
    let _span = gabm_trace::span("sim.tran");
    let wall_start = std::time::Instant::now();
    let tstop = spec.tstop;
    let dt_init = spec.dt_init.unwrap_or(tstop / 1000.0);
    let dt_min = spec.dt_min.unwrap_or(tstop * 1e-9).min(dt_init);
    let dt_max = spec.dt_max.unwrap_or(tstop / 50.0).max(dt_init);
    let method = spec.method.unwrap_or(circuit.options.method);
    let n_nodes = circuit.n_nodes();
    let n = circuit.n_unknowns();

    // Initial condition: DC operating point, committed into device state.
    let op_result = circuit.op()?;
    let mut stats = op_result.stats;
    let mut x = op_result.solution().to_vec();
    if n == 0 {
        stats.wall_s = wall_start.elapsed().as_secs_f64();
        return Ok(TranResult {
            times: vec![0.0],
            states: vec![x],
            n_nodes,
            stats,
        });
    }

    // Breakpoints from all devices, merged and sorted.
    let mut breakpoints: Vec<f64> = circuit
        .devices()
        .iter()
        .flat_map(|d| d.breakpoints(tstop))
        .collect();
    breakpoints.push(tstop);
    breakpoints.sort_by(|a, b| a.partial_cmp(b).expect("breakpoints are finite"));
    breakpoints.dedup_by(|a, b| (*a - *b).abs() <= BP_MERGE * tstop);
    let mut bp_iter = breakpoints.into_iter().peekable();

    let mut controller = StepController::new(dt_init, dt_min, dt_max);
    controller.tol = circuit.options.tran_tol;

    let mut times = vec![0.0];
    let mut states = vec![x.clone()];
    // Voltage history for LTE: (t, v) of the last two accepted points.
    let mut hist_t = [0.0f64, 0.0];
    let mut hist_x: [Vec<f64>; 2] = [x.clone(), x.clone()];
    let mut dt_prev = 0.0f64;
    let mut t = 0.0f64;

    while t < tstop * (1.0 - 1e-12) {
        // Advance past consumed breakpoints.
        while let Some(&bp) = bp_iter.peek() {
            if bp <= t * (1.0 + BP_MERGE) + dt_min * 0.5 {
                bp_iter.next();
            } else {
                break;
            }
        }
        let next_bp = bp_iter.peek().copied().unwrap_or(tstop);
        let mut dt = controller.current_dt();
        let mut hit_bp = false;
        if t + dt >= next_bp - dt_min * 0.5 {
            dt = next_bp - t;
            hit_bp = true;
        }
        if t + dt > tstop {
            dt = tstop - t;
        }
        let coeffs = Coefficients::new(method, dt, dt_prev);
        let mode = Mode::Tran {
            time: t + dt,
            coeffs,
        };
        let step_span = gabm_trace::span("sim.tran.step");
        let solved = newton_solve(circuit, mode, &x, SolveSetup::default(), &mut stats);
        drop(step_span);
        match solved {
            Err(SimError::SingularMatrix { detail }) => {
                return Err(SimError::SingularMatrix { detail });
            }
            Err(_) => {
                stats.rejected_steps += 1;
                gabm_trace::add("sim.tran.rejected", 1);
                match controller.newton_failure() {
                    Some(_) => continue,
                    None => return Err(SimError::TimestepTooSmall { time: t }),
                }
            }
            Ok(out) => {
                // Local truncation error over node voltages.
                let mut lte_max = 0.0f64;
                if dt_prev > 0.0 {
                    #[allow(clippy::needless_range_loop)]
                    for i in 0..n_nodes {
                        let lte = local_truncation_error(
                            method,
                            dt,
                            out.x[i],
                            hist_x[0][i],
                            hist_x[1][i],
                            hist_t[0] - hist_t[1],
                        );
                        lte_max = lte_max.max(lte);
                    }
                }
                match controller.advance(lte_max) {
                    StepOutcome::Reject { .. } if dt > dt_min * 1.5 => {
                        stats.rejected_steps += 1;
                        gabm_trace::add("sim.tran.rejected", 1);
                        continue;
                    }
                    _ => {}
                }
                // Accept.
                let t_new = t + dt;
                let sv = StateView {
                    x: &out.x,
                    n_nodes,
                    time: t_new,
                    mode,
                };
                for d in circuit.devices_mut() {
                    d.accept_step(&sv);
                }
                hist_x[1] = std::mem::replace(&mut hist_x[0], out.x.clone());
                hist_t[1] = hist_t[0];
                hist_t[0] = t_new;
                x = out.x;
                times.push(t_new);
                states.push(x.clone());
                stats.accepted_steps += 1;
                gabm_trace::add("sim.tran.accepted", 1);
                t = t_new;
                dt_prev = dt;
                if hit_bp {
                    // Restart cautiously after a discontinuity.
                    controller.clamp_to(dt_init);
                    dt_prev = 0.0;
                }
            }
        }
        // Runaway guard: an implausible number of points indicates a step
        // collapse; fail loudly rather than filling memory.
        if times.len() > 2_000_000 {
            return Err(SimError::NoConvergence {
                analysis: "tran",
                detail: format!("more than 2e6 time points at t = {t:.3e}"),
            });
        }
    }

    // The whole-run wall time, not the sum of the parts (the absorbed OP
    // pre-solve already carried its own `wall_s`).
    stats.wall_s = wall_start.elapsed().as_secs_f64();
    Ok(TranResult {
        times,
        states,
        n_nodes,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::SourceWave;

    #[test]
    fn rejects_bad_tstop() {
        let mut c = Circuit::new();
        assert!(c.tran(&TranSpec::new(0.0)).is_err());
        assert!(c.tran(&TranSpec::new(-1.0)).is_err());
    }

    #[test]
    fn rc_charge_curve() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GROUND, SourceWave::dc(1.0));
        c.add_resistor("R1", a, b, 1.0e3).unwrap();
        c.add_capacitor("C1", b, Circuit::GROUND, 1.0e-6);
        // DC op gives the capacitor 1 V already (steady state); use a pulse
        // so the transient actually starts at 0.
        let mut c2 = Circuit::new();
        let a2 = c2.node("a");
        let b2 = c2.node("b");
        c2.add_vsource(
            "V1",
            a2,
            Circuit::GROUND,
            SourceWave::pulse(0.0, 1.0, 0.0, 1e-9, 1e-9, 1.0, 0.0),
        );
        c2.add_resistor("R1", a2, b2, 1.0e3).unwrap();
        c2.add_capacitor("C1", b2, Circuit::GROUND, 1.0e-6);
        let r = c2.tran(&TranSpec::new(5.0e-3)).unwrap();
        let w = r.voltage_waveform(b2).unwrap();
        // v(t) = 1 − e^{−t/RC}; at t = 1 ms = 1 RC: 0.632.
        let v_tau = w.value_at(1.0e-3).unwrap();
        assert!((v_tau - 0.632).abs() < 0.02, "v(tau) = {v_tau}");
        // At t = 5 RC the exact value is 1 − e⁻⁵ ≈ 0.99326.
        let v_end = *w.values().last().unwrap();
        assert!((v_end - 0.99326).abs() < 2e-3, "v(end) = {v_end}");
    }

    #[test]
    fn sine_through_rc_attenuates() {
        // 1 kHz sine, RC pole at 159 Hz → gain ≈ 0.157.
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GROUND, SourceWave::sine(0.0, 1.0, 1.0e3));
        c.add_resistor("R1", a, b, 1.0e3).unwrap();
        c.add_capacitor("C1", b, Circuit::GROUND, 1.0e-6);
        let r = c.tran(&TranSpec::new(5.0e-3)).unwrap();
        let w = r.voltage_waveform(b).unwrap();
        // Steady-state amplitude over the last two cycles.
        let tail: Vec<f64> = w
            .times()
            .iter()
            .zip(w.values())
            .filter(|(t, _)| **t > 3.0e-3)
            .map(|(_, v)| *v)
            .collect();
        let peak = tail.iter().cloned().fold(0.0f64, f64::max);
        let expect = 1.0 / (1.0 + (2.0 * std::f64::consts::PI * 1.0e3 * 1.0e-3).powi(2)).sqrt();
        assert!((peak - expect).abs() < 0.05, "peak {peak} vs {expect}");
    }

    #[test]
    fn lc_oscillation_frequency() {
        // An LC tank kicked by an initial inductor current via a pulse.
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_isource(
            "I1",
            Circuit::GROUND,
            a,
            SourceWave::pulse(0.0, 1e-3, 0.0, 1e-9, 1e-9, 1e-4, 1.0),
        );
        c.add_inductor("L1", a, Circuit::GROUND, 1.0e-3).unwrap();
        c.add_capacitor("C1", a, Circuit::GROUND, 1.0e-6);
        c.add_resistor("R1", a, Circuit::GROUND, 1.0e5).unwrap();
        let r = c.tran(&TranSpec::new(1.0e-3).with_dt_max(2e-6)).unwrap();
        let w = r.voltage_waveform(a).unwrap();
        // f0 = 1/(2π√(LC)) ≈ 5.03 kHz → period 198.7 µs. Count zero
        // crossings in the ringing tail.
        let crossings =
            gabm_numeric::measure::crossings(&w, 0.0, gabm_numeric::measure::Edge::Rising).unwrap();
        assert!(crossings.len() >= 2, "no oscillation detected");
        let period = crossings[crossings.len() - 1] - crossings[crossings.len() - 2];
        assert!((period - 198.7e-6).abs() < 20e-6, "period = {period:.3e} s");
    }

    #[test]
    fn breakpoints_are_hit() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource(
            "V1",
            a,
            Circuit::GROUND,
            SourceWave::pulse(0.0, 1.0, 0.5e-3, 1e-6, 1e-6, 0.2e-3, 0.0),
        );
        c.add_resistor("R1", a, Circuit::GROUND, 1.0e3).unwrap();
        let r = c.tran(&TranSpec::new(1.0e-3)).unwrap();
        // The pulse edges must appear as exact time points.
        let has = |t0: f64| r.times().iter().any(|t| (t - t0).abs() < 1e-12);
        assert!(has(0.5e-3), "missing breakpoint at pulse start");
        assert!(has(0.5e-3 + 1e-6), "missing breakpoint at rise end");
    }

    #[test]
    fn stats_are_populated() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource("V1", a, Circuit::GROUND, SourceWave::sine(0.0, 1.0, 1.0e3));
        c.add_resistor("R1", a, Circuit::GROUND, 1.0e3).unwrap();
        let r = c.tran(&TranSpec::new(1.0e-3)).unwrap();
        assert!(r.stats.accepted_steps > 10);
        assert!(r.stats.newton_iterations >= r.stats.accepted_steps);
        assert_eq!(r.times().len(), r.stats.accepted_steps + 1);
    }
}
