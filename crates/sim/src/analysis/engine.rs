//! The damped Newton–Raphson core shared by all real-valued analyses.

use crate::circuit::Circuit;
use crate::device::{Mode, Stamper};
use crate::options::SimStats;
use crate::SimError;
use gabm_numeric::newton::damp_update;
use gabm_numeric::{LuFactor, SparseLu};

/// Result of one Newton solve.
#[derive(Debug, Clone)]
pub(crate) struct NewtonOutcome {
    /// Converged solution.
    pub x: Vec<f64>,
    /// Iterations used (exposed for diagnostics and the engine tests).
    #[cfg_attr(not(test), allow(dead_code))]
    pub iterations: usize,
}

/// Extra knobs for the homotopy (continuation) strategies.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SolveSetup {
    /// Shunt conductance to ground on every node (gmin stepping).
    pub gshunt: f64,
    /// Scale factor applied to independent sources (source stepping).
    pub source_scale: f64,
}

impl Default for SolveSetup {
    fn default() -> Self {
        SolveSetup {
            gshunt: 0.0,
            source_scale: 1.0,
        }
    }
}

/// Runs a damped Newton iteration for the given mode, starting from `x0`.
///
/// Uses the Norton-companion formulation: each assembled linear system yields
/// the *next iterate* directly, and damping interpolates between iterates
/// when a step is too violent.
pub(crate) fn newton_solve(
    circuit: &mut Circuit,
    mode: Mode,
    x0: &[f64],
    setup: SolveSetup,
    stats: &mut SimStats,
) -> Result<NewtonOutcome, SimError> {
    let _span = gabm_trace::span("sim.newton");
    // The cached sparse factorization lives on the circuit so its
    // symbolic analysis survives across solves (and time steps). Take it
    // out for the iteration and put it back on every exit path.
    let mut lu_cache = circuit.lu_cache.take();
    let iters_before = stats.newton_iterations;
    let result = newton_iterate(circuit, mode, x0, setup, stats, &mut lu_cache);
    circuit.lu_cache = lu_cache;
    gabm_trace::add(
        "sim.newton.iterations",
        (stats.newton_iterations - iters_before) as u64,
    );
    result
}

fn newton_iterate(
    circuit: &mut Circuit,
    mode: Mode,
    x0: &[f64],
    setup: SolveSetup,
    stats: &mut SimStats,
    lu_cache: &mut Option<SparseLu>,
) -> Result<NewtonOutcome, SimError> {
    let n_nodes = circuit.n_nodes();
    let n = circuit.n_unknowns();
    debug_assert_eq!(x0.len(), n, "initial guess length mismatch");
    let opts = circuit.options.clone();
    let nonlinear = circuit.is_nonlinear();
    let is_voltage: Vec<bool> = (0..n).map(|i| i < n_nodes).collect();

    let sparse = n >= opts.sparse_threshold;
    let mut stamper = Stamper::with_backend(n_nodes, n - n_nodes, mode, sparse);
    stamper.gmin = opts.gmin;
    stamper.vt = opts.thermal_voltage();
    stamper.source_scale = setup.source_scale;
    stamper.gshunt = setup.gshunt;

    for d in circuit.devices_mut() {
        d.begin_solve();
    }

    let mut x = x0.to_vec();
    let max_iters = if nonlinear { opts.max_newton_iters } else { 1 };
    for iter in 0..max_iters {
        stamper.reset(&x, mode);
        stamper.gmin = opts.gmin;
        stamper.vt = opts.thermal_voltage();
        stamper.source_scale = setup.source_scale;
        stamper.gshunt = setup.gshunt;
        for d in circuit.devices_mut() {
            d.stamp(&mut stamper);
        }
        stats.device_evals += 1;
        let limited = stamper.was_limited();
        let (mat, rhs) = stamper.finish();
        let singular = |e: gabm_numeric::NumericError| match e {
            gabm_numeric::NumericError::Singular { pivot } => SimError::SingularMatrix {
                detail: unknown_name(circuit, pivot, n_nodes),
            },
            other => SimError::from(other),
        };
        let x_new = match mat {
            crate::device::MatrixStore::Dense(m) => {
                let lu = LuFactor::new(m).map_err(singular)?;
                stats.factorizations += 1;
                gabm_trace::add("sim.lu.full", 1);
                lu.solve(rhs)?
            }
            crate::device::MatrixStore::Sparse(t) => {
                let a = t.to_csc();
                // Numeric-only refactorization while the pattern holds; a
                // pivot collapsing under the frozen order (or a pattern
                // change from e.g. gmin stepping) falls back to a full
                // re-pivoting factorization.
                let cached = if opts.reuse_lu { lu_cache.take() } else { None };
                let lu = match cached {
                    Some(mut lu) if lu.pattern_matches(&a) => match lu.refactor(&a) {
                        Ok(()) => {
                            stats.refactorizations += 1;
                            gabm_trace::add("sim.lu.refactor", 1);
                            lu
                        }
                        Err(_) => {
                            stats.factorizations += 1;
                            gabm_trace::add("sim.lu.full", 1);
                            SparseLu::new(&a).map_err(singular)?
                        }
                    },
                    _ => {
                        stats.factorizations += 1;
                        gabm_trace::add("sim.lu.full", 1);
                        SparseLu::new(&a).map_err(singular)?
                    }
                };
                let solved = lu.solve(rhs)?;
                if opts.reuse_lu {
                    *lu_cache = Some(lu);
                }
                solved
            }
        };
        stats.newton_iterations += 1;
        if !nonlinear {
            return Ok(NewtonOutcome {
                x: x_new,
                iterations: 1,
            });
        }
        // Damped update.
        let mut delta: Vec<f64> = x_new.iter().zip(&x).map(|(a, b)| a - b).collect();
        let scale = damp_update(&mut delta, opts.max_voltage_step);
        let x_next: Vec<f64> = x.iter().zip(&delta).map(|(a, d)| a + d).collect();
        let converged =
            scale == 1.0 && !limited && opts.tolerances.converged(&x_next, &x, &is_voltage);
        x = x_next;
        if converged {
            return Ok(NewtonOutcome {
                x,
                iterations: iter + 1,
            });
        }
    }
    Err(SimError::NoConvergence {
        analysis: "newton",
        detail: format!("no convergence in {max_iters} iterations"),
    })
}

/// Human-readable name of MNA unknown `idx` for singular-matrix diagnostics.
fn unknown_name(circuit: &Circuit, idx: usize, n_nodes: usize) -> String {
    if idx < n_nodes {
        format!(
            "node '{}'",
            circuit.node_name(crate::circuit::NodeId::from_index(idx + 1))
        )
    } else {
        format!("branch current #{}", idx - n_nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::SourceWave;

    #[test]
    fn linear_divider_single_iteration() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GROUND, SourceWave::dc(10.0));
        c.add_resistor("R1", a, b, 1.0e3).unwrap();
        c.add_resistor("R2", b, Circuit::GROUND, 1.0e3).unwrap();
        let n = c.n_unknowns();
        let mut stats = SimStats::default();
        let out = newton_solve(
            &mut c,
            Mode::Dc,
            &vec![0.0; n],
            SolveSetup::default(),
            &mut stats,
        )
        .unwrap();
        assert_eq!(out.iterations, 1);
        // b is node index 2 → x[1].
        assert!((out.x[1] - 5.0).abs() < 1e-9);
        // Source current = −10/2k = −5 mA (into + terminal).
        assert!((out.x[2] + 5.0e-3).abs() < 1e-9);
    }

    #[test]
    fn floating_node_reports_singular() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("floating");
        c.add_resistor("R1", a, Circuit::GROUND, 1.0e3).unwrap();
        // b only connects to a resistor to itself-ish: make it truly floating
        // by adding a resistor between b and b (no-op is impossible) — use a
        // node with no devices instead.
        let _ = b;
        let n = c.n_unknowns();
        let mut stats = SimStats::default();
        let err = newton_solve(
            &mut c,
            Mode::Dc,
            &vec![0.0; n],
            SolveSetup::default(),
            &mut stats,
        )
        .unwrap_err();
        match err {
            SimError::SingularMatrix { detail } => {
                assert!(detail.contains("floating"), "detail: {detail}");
            }
            other => panic!("expected singular matrix, got {other:?}"),
        }
    }

    /// Nonlinear diode/resistor ladder, forced onto the sparse backend.
    fn diode_ladder(reuse_lu: bool) -> Circuit {
        let mut c = Circuit::new();
        c.options.sparse_threshold = 1;
        c.options.reuse_lu = reuse_lu;
        let top = c.node("top");
        c.add_vsource("V1", top, Circuit::GROUND, SourceWave::dc(5.0));
        let mut prev = top;
        for k in 0..6 {
            let n = c.node(&format!("n{k}"));
            c.add_resistor(&format!("R{k}"), prev, n, 500.0).unwrap();
            c.add_diode(
                &format!("D{k}"),
                n,
                Circuit::GROUND,
                crate::devices::DiodeParams::default(),
            );
            prev = n;
        }
        c
    }

    #[test]
    fn sparse_lu_reuse_is_bitwise_identical_to_full_factorization() {
        let solve = |reuse: bool| {
            let mut c = diode_ladder(reuse);
            let n = c.n_unknowns();
            let mut stats = SimStats::default();
            let out = newton_solve(
                &mut c,
                Mode::Dc,
                &vec![0.0; n],
                SolveSetup::default(),
                &mut stats,
            )
            .unwrap();
            (out, stats)
        };
        let (out_full, stats_full) = solve(false);
        let (out_reuse, stats_reuse) = solve(true);
        assert_eq!(out_full.iterations, out_reuse.iterations);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&out_full.x), bits(&out_reuse.x));
        // Without reuse every iteration refactors from scratch; with it,
        // only the first does.
        assert_eq!(stats_full.refactorizations, 0);
        assert_eq!(stats_full.factorizations, out_full.iterations);
        assert_eq!(stats_reuse.factorizations, 1);
        assert_eq!(stats_reuse.refactorizations, out_reuse.iterations - 1);
    }

    #[test]
    fn lu_cache_survives_consecutive_solves() {
        let mut c = diode_ladder(true);
        let n = c.n_unknowns();
        let mut stats = SimStats::default();
        let out = newton_solve(
            &mut c,
            Mode::Dc,
            &vec![0.0; n],
            SolveSetup::default(),
            &mut stats,
        )
        .unwrap();
        // Second solve from the converged point: same pattern, so no new
        // full factorization at all.
        newton_solve(&mut c, Mode::Dc, &out.x, SolveSetup::default(), &mut stats).unwrap();
        assert_eq!(stats.factorizations, 1);
        assert!(stats.refactorizations >= out.iterations);
    }

    #[test]
    fn diode_resistor_converges() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let d = c.node("d");
        c.add_vsource("V1", a, Circuit::GROUND, SourceWave::dc(5.0));
        c.add_resistor("R1", a, d, 1.0e3).unwrap();
        c.add_diode(
            "D1",
            d,
            Circuit::GROUND,
            crate::devices::DiodeParams::default(),
        );
        let n = c.n_unknowns();
        let mut stats = SimStats::default();
        let out = newton_solve(
            &mut c,
            Mode::Dc,
            &vec![0.0; n],
            SolveSetup::default(),
            &mut stats,
        )
        .unwrap();
        // Diode drop should be ~0.6–0.8 V.
        let vd = out.x[1];
        assert!((0.5..0.9).contains(&vd), "vd = {vd}");
        assert!(out.iterations > 1);
        // KCL: (5 − vd)/1k = Is(e^{vd/vt} − 1) within tolerance.
        let i_r = (5.0 - vd) / 1.0e3;
        let i_d = 1e-14 * ((vd / 0.025861).exp() - 1.0);
        assert!((i_r - i_d).abs() / i_r < 1e-2, "ir={i_r}, id={i_d}");
    }
}
