//! Independent current source.

use crate::circuit::NodeId;
use crate::device::{AcStamper, Device, Mode, Stamper, Unknown};
use crate::devices::wave::SourceWave;
use gabm_numeric::Complex64;

/// An independent current source.
///
/// Positive current flows from `plus` through the source into `minus`
/// (i.e. out of the `plus` node).
#[derive(Debug, Clone)]
pub struct Isource {
    name: String,
    plus: NodeId,
    minus: NodeId,
    /// Waveform delivered by the source.
    pub wave: SourceWave,
    /// AC small-signal magnitude (amps).
    pub ac_magnitude: f64,
}

impl Isource {
    /// Creates a current source between `plus` and `minus`.
    pub fn new(name: &str, plus: NodeId, minus: NodeId, wave: SourceWave) -> Self {
        Isource {
            name: name.to_string(),
            plus,
            minus,
            wave,
            ac_magnitude: 0.0,
        }
    }

    /// Builder-style setter marking this source as the AC stimulus.
    pub fn with_ac(mut self, magnitude: f64) -> Self {
        self.ac_magnitude = magnitude;
        self
    }
}

impl Device for Isource {
    fn name(&self) -> &str {
        &self.name
    }

    fn set_dc_value(&mut self, value: f64) -> bool {
        self.wave.set_dc(value);
        true
    }

    fn stamp(&mut self, s: &mut Stamper) {
        let value = match s.mode {
            Mode::Dc => self.wave.dc_value(),
            Mode::Tran { time, .. } => self.wave.value_at(time),
        };
        s.stamp_current(self.plus, self.minus, value * s.source_scale);
    }

    fn stamp_ac(&mut self, s: &mut AcStamper) {
        let i = Complex64::from_real(self.ac_magnitude);
        s.add_rhs(Unknown::Node(self.plus), -i);
        s.add_rhs(Unknown::Node(self.minus), i);
    }

    fn breakpoints(&self, tstop: f64) -> Vec<f64> {
        self.wave.breakpoints(tstop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_rhs_only() {
        let p = NodeId::from_index(1);
        let m = NodeId::from_index(2);
        let mut i = Isource::new("I1", p, m, SourceWave::dc(1e-3));
        let mut s = Stamper::new(2, 0, Mode::Dc);
        i.stamp(&mut s);
        let (mat, rhs) = s.finish();
        assert_eq!(mat[(0, 0)], 0.0);
        assert_eq!(rhs[0], -1e-3);
        assert_eq!(rhs[1], 1e-3);
    }

    #[test]
    fn tran_uses_waveform() {
        let p = NodeId::from_index(1);
        let mut i = Isource::new(
            "I1",
            p,
            NodeId::ground(),
            SourceWave::Pwl(vec![(0.0, 0.0), (1.0, 1.0)]),
        );
        let coeffs = gabm_numeric::integrate::Coefficients::new(
            gabm_numeric::integrate::Method::BackwardEuler,
            0.5,
            0.0,
        );
        let mode = Mode::Tran { time: 0.5, coeffs };
        let mut s = Stamper::new(1, 0, mode);
        i.stamp(&mut s);
        let (_, rhs) = s.finish();
        assert!((rhs[0] + 0.5).abs() < 1e-12);
    }

    #[test]
    fn ac_stimulus() {
        let p = NodeId::from_index(1);
        let mut i = Isource::new("I1", p, NodeId::ground(), SourceWave::dc(0.0)).with_ac(2.0);
        let mut s = AcStamper::new(1, 0, 1.0);
        i.stamp_ac(&mut s);
        let (_, rhs) = s.finish();
        assert_eq!(rhs[0], Complex64::from_real(-2.0));
    }
}
