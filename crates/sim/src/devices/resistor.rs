//! Linear resistor.

use crate::circuit::NodeId;
use crate::device::{AcStamper, Device, Stamper};
use crate::SimError;
use gabm_numeric::Complex64;

/// A two-terminal linear resistor.
#[derive(Debug, Clone)]
pub struct Resistor {
    name: String,
    a: NodeId,
    b: NodeId,
    conductance: f64,
}

impl Resistor {
    /// Creates a resistor of `ohms` between `a` and `b`.
    ///
    /// # Errors
    ///
    /// [`SimError::BadParameter`] unless `ohms > 0` and finite.
    pub fn new(name: &str, a: NodeId, b: NodeId, ohms: f64) -> Result<Self, SimError> {
        if !(ohms > 0.0 && ohms.is_finite()) {
            return Err(SimError::BadParameter {
                device: name.to_string(),
                message: format!("resistance must be positive and finite, got {ohms}"),
            });
        }
        Ok(Resistor {
            name: name.to_string(),
            a,
            b,
            conductance: 1.0 / ohms,
        })
    }

    /// Resistance in ohms.
    pub fn ohms(&self) -> f64 {
        1.0 / self.conductance
    }
}

impl Device for Resistor {
    fn name(&self) -> &str {
        &self.name
    }

    fn stamp(&mut self, s: &mut Stamper) {
        s.stamp_conductance(self.a, self.b, self.conductance);
    }

    fn stamp_ac(&mut self, s: &mut AcStamper) {
        s.stamp_admittance(self.a, self.b, Complex64::from_real(self.conductance));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Mode;

    #[test]
    fn rejects_bad_values() {
        let a = NodeId::from_index(1);
        let g = NodeId::ground();
        assert!(Resistor::new("R", a, g, 0.0).is_err());
        assert!(Resistor::new("R", a, g, -5.0).is_err());
        assert!(Resistor::new("R", a, g, f64::INFINITY).is_err());
        assert!(Resistor::new("R", a, g, f64::NAN).is_err());
    }

    #[test]
    fn stamps_conductance() {
        let a = NodeId::from_index(1);
        let mut r = Resistor::new("R1", a, NodeId::ground(), 100.0).unwrap();
        assert_eq!(r.ohms(), 100.0);
        let mut s = Stamper::new(1, 0, Mode::Dc);
        r.stamp(&mut s);
        let (m, _) = s.finish();
        assert!((m[(0, 0)] - 0.01).abs() < 1e-15);
    }

    #[test]
    fn ac_stamp_is_real() {
        let a = NodeId::from_index(1);
        let mut r = Resistor::new("R1", a, NodeId::ground(), 50.0).unwrap();
        let mut s = AcStamper::new(1, 0, 1.0e3);
        r.stamp_ac(&mut s);
        let (m, _) = s.finish();
        assert_eq!(m[(0, 0)], Complex64::from_real(0.02));
    }
}
