//! Linear capacitor with companion-model transient stamping.

use crate::circuit::NodeId;
use crate::device::{AcStamper, Device, Mode, Stamper, StateView};
use gabm_numeric::Complex64;

/// A two-terminal linear capacitor.
///
/// In DC analyses the capacitor is an open circuit (plus a tiny `gmin` leak
/// keeping otherwise-floating nodes solvable). In transient analyses it
/// stamps the companion model `i = C·(coeff0·v + history)` for the active
/// integration method.
#[derive(Debug, Clone)]
pub struct Capacitor {
    name: String,
    a: NodeId,
    b: NodeId,
    farads: f64,
    // Committed state from the last accepted time point.
    v_prev: f64,
    dvdt_prev: f64,
    v_prev2: f64,
}

impl Capacitor {
    /// Creates a capacitor of `farads` between `a` and `b`. Negative values
    /// are clamped to zero (a zero capacitor only stamps its DC leak).
    pub fn new(name: &str, a: NodeId, b: NodeId, farads: f64) -> Self {
        Capacitor {
            name: name.to_string(),
            a,
            b,
            farads: farads.max(0.0),
            v_prev: 0.0,
            dvdt_prev: 0.0,
            v_prev2: 0.0,
        }
    }

    /// Capacitance in farads.
    pub fn farads(&self) -> f64 {
        self.farads
    }

    /// Committed branch voltage from the last accepted point (test hook).
    pub fn committed_voltage(&self) -> f64 {
        self.v_prev
    }
}

impl Device for Capacitor {
    fn name(&self) -> &str {
        &self.name
    }

    fn stamp(&mut self, s: &mut Stamper) {
        match s.mode {
            Mode::Dc => {
                // Open in DC; leak keeps cap-only nodes non-singular.
                let g = s.gmin;
                s.stamp_conductance(self.a, self.b, g);
            }
            Mode::Tran { coeffs, .. } => {
                let geq = self.farads * coeffs.coeff0;
                let hist = coeffs.history(self.v_prev, self.dvdt_prev, self.v_prev2);
                let ieq = self.farads * hist;
                s.stamp_conductance(self.a, self.b, geq);
                s.stamp_current(self.a, self.b, ieq);
            }
        }
    }

    fn stamp_ac(&mut self, s: &mut AcStamper) {
        let y = Complex64::new(0.0, s.omega * self.farads);
        s.stamp_admittance(self.a, self.b, y);
    }

    fn accept_step(&mut self, state: &StateView<'_>) {
        let v = state.v(self.a) - state.v(self.b);
        match state.mode {
            Mode::Dc => {
                self.v_prev = v;
                self.v_prev2 = v;
                self.dvdt_prev = 0.0;
            }
            Mode::Tran { coeffs, .. } => {
                let hist = coeffs.history(self.v_prev, self.dvdt_prev, self.v_prev2);
                let dvdt = coeffs.coeff0 * v + hist;
                self.v_prev2 = self.v_prev;
                self.v_prev = v;
                self.dvdt_prev = dvdt;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gabm_numeric::integrate::{Coefficients, Method};

    #[test]
    fn dc_stamp_is_leak_only() {
        let a = NodeId::from_index(1);
        let mut c = Capacitor::new("C1", a, NodeId::ground(), 1e-6);
        let mut s = Stamper::new(1, 0, Mode::Dc);
        s.gmin = 1e-12;
        c.stamp(&mut s);
        let (m, rhs) = s.finish();
        assert!((m[(0, 0)] - 1e-12).abs() < 1e-24);
        assert_eq!(rhs[0], 0.0);
    }

    #[test]
    fn tran_stamp_backward_euler() {
        let a = NodeId::from_index(1);
        let mut c = Capacitor::new("C1", a, NodeId::ground(), 1e-6);
        // Committed state: 2 V across the cap.
        c.v_prev = 2.0;
        let coeffs = Coefficients::new(Method::BackwardEuler, 1e-3, 0.0);
        let mode = Mode::Tran { time: 1e-3, coeffs };
        let mut s = Stamper::new(1, 0, mode);
        s.reset(&[2.0], mode);
        c.stamp(&mut s);
        let (m, rhs) = s.finish();
        // geq = C/dt = 1e-3; ieq = -C*vprev/dt = -2e-3 leaving node a.
        assert!((m[(0, 0)] - 1e-3).abs() < 1e-15);
        assert!((rhs[0] - 2e-3).abs() < 1e-15);
    }

    #[test]
    fn accept_rotates_history() {
        let a = NodeId::from_index(1);
        let mut c = Capacitor::new("C1", a, NodeId::ground(), 1e-6);
        let coeffs = Coefficients::new(Method::BackwardEuler, 1.0, 0.0);
        let x = [3.0];
        let sv = StateView {
            x: &x,
            n_nodes: 1,
            time: 1.0,
            mode: Mode::Tran { time: 1.0, coeffs },
        };
        c.accept_step(&sv);
        assert_eq!(c.committed_voltage(), 3.0);
        // dv/dt = (3-0)/1 = 3.
        assert!((c.dvdt_prev - 3.0).abs() < 1e-15);
    }

    #[test]
    fn dc_accept_clears_derivative() {
        let a = NodeId::from_index(1);
        let mut c = Capacitor::new("C1", a, NodeId::ground(), 1e-6);
        c.dvdt_prev = 42.0;
        let x = [1.5];
        let sv = StateView {
            x: &x,
            n_nodes: 1,
            time: 0.0,
            mode: Mode::Dc,
        };
        c.accept_step(&sv);
        assert_eq!(c.dvdt_prev, 0.0);
        assert_eq!(c.committed_voltage(), 1.5);
    }

    #[test]
    fn negative_capacitance_clamped() {
        let c = Capacitor::new("C", NodeId::from_index(1), NodeId::ground(), -1.0);
        assert_eq!(c.farads(), 0.0);
    }

    #[test]
    fn ac_admittance() {
        let a = NodeId::from_index(1);
        let mut c = Capacitor::new("C1", a, NodeId::ground(), 1e-6);
        let omega = 2.0 * std::f64::consts::PI * 1000.0;
        let mut s = AcStamper::new(1, 0, omega);
        c.stamp_ac(&mut s);
        let (m, _) = s.finish();
        assert!((m[(0, 0)].im - omega * 1e-6).abs() < 1e-12);
        assert_eq!(m[(0, 0)].re, 0.0);
    }
}
