//! Smooth voltage-controlled switch.

use crate::circuit::NodeId;
use crate::device::{AcStamper, Device, Stamper};
use gabm_numeric::Complex64;

/// A voltage-controlled switch with a smooth (tanh) conductance transition.
///
/// Hard on/off switches are a classic source of the convergence problems the
/// paper's §4 note warns about; interpolating the log-conductance through a
/// `tanh` keeps the Jacobian continuous.
#[derive(Debug, Clone)]
pub struct VSwitch {
    name: String,
    a: NodeId,
    b: NodeId,
    ctl_p: NodeId,
    ctl_m: NodeId,
    v_threshold: f64,
    /// Transition half-width in volts.
    pub v_width: f64,
    g_on: f64,
    g_off: f64,
    g_last: f64,
}

impl VSwitch {
    /// Creates a switch between `a` and `b`, closed when
    /// `v(ctl_p) − v(ctl_m) > v_threshold`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &str,
        a: NodeId,
        b: NodeId,
        ctl_p: NodeId,
        ctl_m: NodeId,
        v_threshold: f64,
        r_on: f64,
        r_off: f64,
    ) -> Self {
        VSwitch {
            name: name.to_string(),
            a,
            b,
            ctl_p,
            ctl_m,
            v_threshold,
            v_width: 0.1,
            g_on: 1.0 / r_on.max(1e-3),
            g_off: 1.0 / r_off.clamp(1.0, 1e12),
            g_last: 0.0,
        }
    }

    /// Conductance for a control voltage `vc`.
    fn conductance(&self, vc: f64) -> f64 {
        // Interpolate log g so the off/on ratio (often 1e9) stays smooth.
        let x = ((vc - self.v_threshold) / self.v_width).tanh();
        let lg_on = self.g_on.ln();
        let lg_off = self.g_off.ln();
        (0.5 * (lg_on + lg_off) + 0.5 * x * (lg_on - lg_off)).exp()
    }
}

impl Device for VSwitch {
    fn name(&self) -> &str {
        &self.name
    }

    fn is_nonlinear(&self) -> bool {
        true
    }

    fn stamp(&mut self, s: &mut Stamper) {
        let vc = s.v(self.ctl_p) - s.v(self.ctl_m);
        let g = self.conductance(vc);
        self.g_last = g;
        // The control-voltage dependence of g is deliberately left out of
        // the Jacobian (treated as a secant term); the smooth transition
        // keeps the fixed point stable.
        s.stamp_conductance(self.a, self.b, g);
    }

    fn stamp_ac(&mut self, s: &mut AcStamper) {
        s.stamp_admittance(self.a, self.b, Complex64::from_real(self.g_last));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sw() -> VSwitch {
        VSwitch::new(
            "S1",
            NodeId::from_index(1),
            NodeId::ground(),
            NodeId::from_index(2),
            NodeId::ground(),
            0.5,
            1.0,
            1e9,
        )
    }

    #[test]
    fn extremes() {
        let s = sw();
        assert!((s.conductance(5.0) - 1.0).abs() / 1.0 < 1e-3);
        assert!(s.conductance(-5.0) < 2e-9);
    }

    #[test]
    fn midpoint_is_geometric_mean() {
        let s = sw();
        let g_mid = s.conductance(0.5);
        let geo = (1.0f64 * 1e-9).sqrt();
        assert!((g_mid - geo).abs() / geo < 1e-6);
    }

    #[test]
    fn monotone_transition() {
        let s = sw();
        let mut prev = 0.0;
        for k in 0..100 {
            let vc = -1.0 + 2.0 * k as f64 / 99.0;
            let g = s.conductance(vc);
            assert!(g >= prev);
            prev = g;
        }
    }

    #[test]
    fn stamp_uses_control_voltage() {
        use crate::device::Mode;
        let mut s_dev = sw();
        let mut st = Stamper::new(2, 0, Mode::Dc);
        st.reset(&[0.0, 5.0], Mode::Dc); // control high → on
        s_dev.stamp(&mut st);
        let (m, _) = st.finish();
        assert!(m[(0, 0)] > 0.9);
    }
}
