//! Linear inductor (one extra MNA branch).

use crate::circuit::NodeId;
use crate::device::{AcStamper, Device, Mode, Stamper, StateView, Unknown};
use crate::SimError;
use gabm_numeric::Complex64;

/// A two-terminal linear inductor.
///
/// Carries its current as an extra MNA unknown. DC: a short circuit
/// (`v_a − v_b = 0`); transient: `v_a − v_b = L·di/dt` via the companion
/// model of the active integration method.
#[derive(Debug, Clone)]
pub struct Inductor {
    name: String,
    a: NodeId,
    b: NodeId,
    henries: f64,
    branch: usize,
    i_prev: f64,
    didt_prev: f64,
    i_prev2: f64,
}

impl Inductor {
    /// Creates an inductor of `henries` between `a` and `b`.
    ///
    /// # Errors
    ///
    /// [`SimError::BadParameter`] unless `henries > 0` and finite.
    pub fn new(name: &str, a: NodeId, b: NodeId, henries: f64) -> Result<Self, SimError> {
        if !(henries > 0.0 && henries.is_finite()) {
            return Err(SimError::BadParameter {
                device: name.to_string(),
                message: format!("inductance must be positive and finite, got {henries}"),
            });
        }
        Ok(Inductor {
            name: name.to_string(),
            a,
            b,
            henries,
            branch: usize::MAX,
            i_prev: 0.0,
            didt_prev: 0.0,
            i_prev2: 0.0,
        })
    }

    /// Inductance in henries.
    pub fn henries(&self) -> f64 {
        self.henries
    }
}

impl Device for Inductor {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_branches(&self) -> usize {
        1
    }

    fn set_branch_base(&mut self, base: usize) {
        self.branch = base;
    }

    fn branch_index(&self) -> Option<usize> {
        Some(self.branch)
    }

    fn stamp(&mut self, s: &mut Stamper) {
        let br = Unknown::Branch(self.branch);
        let na = Unknown::Node(self.a);
        let nb = Unknown::Node(self.b);
        // KCL: branch current leaves a, enters b.
        s.add(na, br, 1.0);
        s.add(nb, br, -1.0);
        // Branch equation.
        s.add(br, na, 1.0);
        s.add(br, nb, -1.0);
        match s.mode {
            Mode::Dc => {
                // v_a - v_b = 0 — nothing more to stamp.
            }
            Mode::Tran { coeffs, .. } => {
                // v_a - v_b - L(coeff0·i + hist) = 0.
                let hist = coeffs.history(self.i_prev, self.didt_prev, self.i_prev2);
                s.add(br, br, -self.henries * coeffs.coeff0);
                s.add_rhs(br, self.henries * hist);
            }
        }
    }

    fn stamp_ac(&mut self, s: &mut AcStamper) {
        let br = Unknown::Branch(self.branch);
        let na = Unknown::Node(self.a);
        let nb = Unknown::Node(self.b);
        s.add(na, br, Complex64::ONE);
        s.add(nb, br, -Complex64::ONE);
        s.add(br, na, Complex64::ONE);
        s.add(br, nb, -Complex64::ONE);
        s.add(br, br, Complex64::new(0.0, -s.omega * self.henries));
    }

    fn accept_step(&mut self, state: &StateView<'_>) {
        let i = state.branch_current(self.branch);
        match state.mode {
            Mode::Dc => {
                self.i_prev = i;
                self.i_prev2 = i;
                self.didt_prev = 0.0;
            }
            Mode::Tran { coeffs, .. } => {
                let hist = coeffs.history(self.i_prev, self.didt_prev, self.i_prev2);
                let didt = coeffs.coeff0 * i + hist;
                self.i_prev2 = self.i_prev;
                self.i_prev = i;
                self.didt_prev = didt;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gabm_numeric::integrate::{Coefficients, Method};

    #[test]
    fn rejects_bad_values() {
        let a = NodeId::from_index(1);
        assert!(Inductor::new("L", a, NodeId::ground(), 0.0).is_err());
        assert!(Inductor::new("L", a, NodeId::ground(), -1.0).is_err());
    }

    #[test]
    fn dc_stamp_is_short() {
        let a = NodeId::from_index(1);
        let mut l = Inductor::new("L1", a, NodeId::ground(), 1e-3).unwrap();
        l.set_branch_base(0);
        assert_eq!(l.branch_index(), Some(0));
        let mut s = Stamper::new(1, 1, Mode::Dc);
        l.stamp(&mut s);
        let (m, rhs) = s.finish();
        // KCL column and branch row, no branch-branch term in DC.
        assert_eq!(m[(0, 1)], 1.0);
        assert_eq!(m[(1, 0)], 1.0);
        assert_eq!(m[(1, 1)], 0.0);
        assert_eq!(rhs[1], 0.0);
    }

    #[test]
    fn tran_stamp_includes_l_terms() {
        let a = NodeId::from_index(1);
        let mut l = Inductor::new("L1", a, NodeId::ground(), 2e-3).unwrap();
        l.set_branch_base(0);
        l.i_prev = 1.0;
        let coeffs = Coefficients::new(Method::BackwardEuler, 1e-3, 0.0);
        let mode = Mode::Tran { time: 1e-3, coeffs };
        let mut s = Stamper::new(1, 1, mode);
        s.reset(&[0.0, 1.0], mode);
        l.stamp(&mut s);
        let (m, rhs) = s.finish();
        // -L/dt = -2.0 on the branch diagonal.
        assert!((m[(1, 1)] + 2.0).abs() < 1e-12);
        // rhs = L·(-i_prev/dt) = -2.0.
        assert!((rhs[1] + 2.0).abs() < 1e-12);
    }

    #[test]
    fn accept_tracks_current() {
        let a = NodeId::from_index(1);
        let mut l = Inductor::new("L1", a, NodeId::ground(), 1e-3).unwrap();
        l.set_branch_base(0);
        let x = [0.0, 0.5];
        let sv = StateView {
            x: &x,
            n_nodes: 1,
            time: 0.0,
            mode: Mode::Dc,
        };
        l.accept_step(&sv);
        assert_eq!(l.i_prev, 0.5);
        assert_eq!(l.didt_prev, 0.0);
    }
}
