//! Junction diode with pn-junction voltage limiting.

use crate::circuit::NodeId;
use crate::device::{AcStamper, Device, Mode, Stamper, StateView};
use gabm_numeric::newton::{critical_voltage, pnjlim};
use gabm_numeric::Complex64;

/// Diode model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiodeParams {
    /// Saturation current (A).
    pub is: f64,
    /// Emission coefficient (ideality factor).
    pub n: f64,
    /// Junction capacitance at zero bias (F); stamped as a constant
    /// capacitance (no bias dependence).
    pub cj0: f64,
}

impl Default for DiodeParams {
    fn default() -> Self {
        DiodeParams {
            is: 1e-14,
            n: 1.0,
            cj0: 0.0,
        }
    }
}

/// A pn-junction diode: `i = Is·(exp(v/(n·Vt)) − 1) + gmin·v`.
///
/// The per-iteration junction voltage is limited with the classic SPICE
/// `pnjlim` to keep the exponential bounded (part of the "simulation
/// expertise" the paper's §4 note asks the code generator to bake in).
#[derive(Debug, Clone)]
pub struct Diode {
    name: String,
    anode: NodeId,
    cathode: NodeId,
    params: DiodeParams,
    /// Junction voltage used in the previous iteration (for limiting).
    v_iter: f64,
    /// Small-signal conductance at the last computed point (for AC).
    gd_last: f64,
    // Committed capacitor state.
    v_prev: f64,
    dvdt_prev: f64,
    v_prev2: f64,
}

impl Diode {
    /// Creates a diode from `anode` to `cathode`.
    pub fn new(name: &str, anode: NodeId, cathode: NodeId, params: DiodeParams) -> Self {
        Diode {
            name: name.to_string(),
            anode,
            cathode,
            params,
            v_iter: 0.0,
            gd_last: 0.0,
            v_prev: 0.0,
            dvdt_prev: 0.0,
            v_prev2: 0.0,
        }
    }

    /// Current and conductance at junction voltage `v`.
    fn iv(&self, v: f64, vt_eff: f64, gmin: f64) -> (f64, f64) {
        // Clip the exponent: beyond this the limiter should have fired, but a
        // hard cap makes the device safe under any iterate.
        let x = (v / vt_eff).min(200.0);
        let e = x.exp();
        let i = self.params.is * (e - 1.0) + gmin * v;
        let g = self.params.is * e / vt_eff + gmin;
        (i, g)
    }
}

impl Device for Diode {
    fn name(&self) -> &str {
        &self.name
    }

    fn is_nonlinear(&self) -> bool {
        true
    }

    fn begin_solve(&mut self) {
        // Start each solve from a mildly forward-biased guess so that the
        // limiter has a sensible reference.
        self.v_iter = self.v_iter.clamp(-10.0, 0.8);
    }

    fn stamp(&mut self, s: &mut Stamper) {
        let vt_eff = self.params.n * s.vt;
        let v_raw = s.v(self.anode) - s.v(self.cathode);
        let v_crit = critical_voltage(self.params.is, vt_eff);
        let v = pnjlim(v_raw, self.v_iter, vt_eff, v_crit);
        if (v - v_raw).abs() > 1e-15 {
            s.mark_limited();
        }
        self.v_iter = v;
        let (i, g) = self.iv(v, vt_eff, s.gmin);
        self.gd_last = g;
        // Norton companion: i(v) ≈ i0 + g·(v_new − v) ⇒ source i0 − g·v.
        s.stamp_conductance(self.anode, self.cathode, g);
        s.stamp_current(self.anode, self.cathode, i - g * v);
        // Constant junction capacitance in transient.
        if self.params.cj0 > 0.0 {
            if let Mode::Tran { coeffs, .. } = s.mode {
                let geq = self.params.cj0 * coeffs.coeff0;
                let hist = coeffs.history(self.v_prev, self.dvdt_prev, self.v_prev2);
                s.stamp_conductance(self.anode, self.cathode, geq);
                s.stamp_current(self.anode, self.cathode, self.params.cj0 * hist);
            }
        }
    }

    fn stamp_ac(&mut self, s: &mut AcStamper) {
        let y = Complex64::new(self.gd_last, s.omega * self.params.cj0);
        s.stamp_admittance(self.anode, self.cathode, y);
    }

    fn accept_step(&mut self, state: &StateView<'_>) {
        let v = state.v(self.anode) - state.v(self.cathode);
        self.v_iter = v;
        match state.mode {
            Mode::Dc => {
                self.v_prev = v;
                self.v_prev2 = v;
                self.dvdt_prev = 0.0;
            }
            Mode::Tran { coeffs, .. } => {
                let hist = coeffs.history(self.v_prev, self.dvdt_prev, self.v_prev2);
                let dvdt = coeffs.coeff0 * v + hist;
                self.v_prev2 = self.v_prev;
                self.v_prev = v;
                self.dvdt_prev = dvdt;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamper_at(v: f64) -> Stamper {
        let mut s = Stamper::new(1, 0, Mode::Dc);
        s.reset(&[v], Mode::Dc);
        s
    }

    #[test]
    fn reverse_bias_leaks_gmin() {
        let a = NodeId::from_index(1);
        let mut d = Diode::new("D1", a, NodeId::ground(), DiodeParams::default());
        let mut s = stamper_at(-5.0);
        d.stamp(&mut s);
        let (m, _) = s.finish();
        // Conductance ≈ gmin in reverse bias.
        assert!(m[(0, 0)] < 1e-11, "g = {}", m[(0, 0)]);
    }

    #[test]
    fn forward_bias_conducts() {
        let a = NodeId::from_index(1);
        let mut d = Diode::new("D1", a, NodeId::ground(), DiodeParams::default());
        d.v_iter = 0.6;
        let mut s = stamper_at(0.6);
        d.stamp(&mut s);
        let (m, _) = s.finish();
        // ~1e-14 · e^{0.6/0.02585} / 0.02585 ≈ large conductance.
        assert!(m[(0, 0)] > 1e-5, "g = {}", m[(0, 0)]);
    }

    #[test]
    fn wild_iterate_is_limited() {
        let a = NodeId::from_index(1);
        let mut d = Diode::new("D1", a, NodeId::ground(), DiodeParams::default());
        d.v_iter = 0.6;
        let mut s = stamper_at(50.0);
        d.stamp(&mut s);
        assert!(s.was_limited());
        // The limited voltage stays near the junction scale.
        assert!(d.v_iter < 2.0, "v_iter = {}", d.v_iter);
    }

    #[test]
    fn iv_consistency() {
        let a = NodeId::from_index(1);
        let d = Diode::new("D1", a, NodeId::ground(), DiodeParams::default());
        let (i, g) = d.iv(0.6, 0.02585, 1e-12);
        // Finite-difference check of the conductance.
        let (i2, _) = d.iv(0.6001, 0.02585, 1e-12);
        let g_fd = (i2 - i) / 0.0001;
        assert!((g - g_fd).abs() / g < 1e-2, "g={g}, fd={g_fd}");
    }

    #[test]
    fn accept_commits_voltage() {
        let a = NodeId::from_index(1);
        let mut d = Diode::new("D1", a, NodeId::ground(), DiodeParams::default());
        let x = [0.7];
        let sv = StateView {
            x: &x,
            n_nodes: 1,
            time: 0.0,
            mode: Mode::Dc,
        };
        d.accept_step(&sv);
        assert_eq!(d.v_iter, 0.7);
        assert_eq!(d.v_prev, 0.7);
    }
}
