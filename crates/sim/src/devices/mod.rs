//! Device library: passives, sources, semiconductors and the behavioural
//! bridge.

pub mod behavioral;
pub mod capacitor;
pub mod controlled;
pub mod diode;
pub mod inductor;
pub mod isource;
pub mod mosfet;
pub mod resistor;
pub mod switch;
pub mod vsource;
pub mod wave;

pub use behavioral::{BehavioralModel, EvalCtx};
pub use diode::DiodeParams;
pub use mosfet::{MosType, MosfetParams};
pub use wave::SourceWave;
