//! Time-dependent source waveforms (DC, sine, pulse, piecewise-linear).

/// The waveform of an independent source.
///
/// # Example
///
/// ```
/// use gabm_sim::devices::SourceWave;
///
/// let w = SourceWave::pulse(0.0, 5.0, 1e-6, 1e-9, 1e-9, 2e-6, 5e-6);
/// assert_eq!(w.value_at(0.0), 0.0);
/// assert_eq!(w.value_at(2e-6), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum SourceWave {
    /// Constant value.
    Dc(f64),
    /// `offset + ampl·sin(2πf·(t-delay) + phase)`, zero-slope before `delay`.
    Sine {
        /// DC offset.
        offset: f64,
        /// Amplitude.
        ampl: f64,
        /// Frequency in hertz.
        freq: f64,
        /// Start delay in seconds.
        delay: f64,
        /// Initial phase in radians.
        phase: f64,
    },
    /// SPICE PULSE: initial value, pulsed value, delay, rise, fall, width,
    /// period.
    Pulse {
        /// Initial (resting) value.
        v1: f64,
        /// Pulsed value.
        v2: f64,
        /// Delay before the first edge.
        delay: f64,
        /// Rise time (0 treated as 1 ps).
        rise: f64,
        /// Fall time (0 treated as 1 ps).
        fall: f64,
        /// Pulse width at `v2`.
        width: f64,
        /// Repetition period (0 = single pulse).
        period: f64,
    },
    /// Piecewise linear `(time, value)` corners; clamped outside.
    Pwl(Vec<(f64, f64)>),
}

/// Minimum edge time substituted for zero rise/fall specifications, keeping
/// the transient Jacobian bounded.
const MIN_EDGE: f64 = 1e-12;

impl SourceWave {
    /// Convenience constructor for a DC source.
    pub fn dc(value: f64) -> SourceWave {
        SourceWave::Dc(value)
    }

    /// Convenience constructor for an un-delayed, zero-phase sine.
    pub fn sine(offset: f64, ampl: f64, freq: f64) -> SourceWave {
        SourceWave::Sine {
            offset,
            ampl,
            freq,
            delay: 0.0,
            phase: 0.0,
        }
    }

    /// Convenience constructor matching SPICE's `PULSE(...)` order.
    pub fn pulse(
        v1: f64,
        v2: f64,
        delay: f64,
        rise: f64,
        fall: f64,
        width: f64,
        period: f64,
    ) -> SourceWave {
        SourceWave::Pulse {
            v1,
            v2,
            delay,
            rise,
            fall,
            width,
            period,
        }
    }

    /// Value of the waveform at time `t`.
    pub fn value_at(&self, t: f64) -> f64 {
        match self {
            SourceWave::Dc(v) => *v,
            SourceWave::Sine {
                offset,
                ampl,
                freq,
                delay,
                phase,
            } => {
                if t < *delay {
                    offset + ampl * phase.sin()
                } else {
                    offset + ampl * (2.0 * std::f64::consts::PI * freq * (t - delay) + phase).sin()
                }
            }
            SourceWave::Pulse {
                v1,
                v2,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < *delay {
                    return *v1;
                }
                let rise = rise.max(MIN_EDGE);
                let fall = fall.max(MIN_EDGE);
                let mut tau = t - delay;
                if *period > 0.0 {
                    tau %= period;
                }
                if tau < rise {
                    v1 + (v2 - v1) * tau / rise
                } else if tau < rise + width {
                    *v2
                } else if tau < rise + width + fall {
                    v2 + (v1 - v2) * (tau - rise - width) / fall
                } else {
                    *v1
                }
            }
            SourceWave::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                let last = points[points.len() - 1];
                if t >= last.0 {
                    return last.1;
                }
                for w in points.windows(2) {
                    let (t0, v0) = w[0];
                    let (t1, v1) = w[1];
                    if t >= t0 && t <= t1 {
                        if t1 == t0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                last.1
            }
        }
    }

    /// DC (t = 0) value of the waveform, used by the operating-point solve.
    pub fn dc_value(&self) -> f64 {
        self.value_at(0.0)
    }

    /// Corner times in `(0, tstop)` the transient must hit exactly.
    pub fn breakpoints(&self, tstop: f64) -> Vec<f64> {
        let mut out = Vec::new();
        match self {
            SourceWave::Dc(_) | SourceWave::Sine { .. } => {}
            SourceWave::Pulse {
                delay,
                rise,
                fall,
                width,
                period,
                ..
            } => {
                let rise = rise.max(MIN_EDGE);
                let fall = fall.max(MIN_EDGE);
                let cycle = [0.0, rise, rise + width, rise + width + fall];
                let mut base = *delay;
                loop {
                    for c in cycle {
                        let t = base + c;
                        if t > 0.0 && t < tstop {
                            out.push(t);
                        }
                    }
                    if *period <= 0.0 || base + period >= tstop {
                        break;
                    }
                    base += period;
                }
            }
            SourceWave::Pwl(points) => {
                out.extend(points.iter().map(|p| p.0).filter(|&t| t > 0.0 && t < tstop));
            }
        }
        out
    }

    /// Replaces the DC level (used by DC sweeps). For non-DC waveforms the
    /// whole waveform is replaced by a DC value.
    pub fn set_dc(&mut self, value: f64) {
        *self = SourceWave::Dc(value);
    }
}

impl Default for SourceWave {
    fn default() -> Self {
        SourceWave::Dc(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_wave() {
        let w = SourceWave::dc(2.5);
        assert_eq!(w.value_at(0.0), 2.5);
        assert_eq!(w.value_at(1.0), 2.5);
        assert!(w.breakpoints(1.0).is_empty());
    }

    #[test]
    fn sine_wave() {
        let w = SourceWave::sine(1.0, 2.0, 1.0);
        assert!((w.value_at(0.0) - 1.0).abs() < 1e-12);
        assert!((w.value_at(0.25) - 3.0).abs() < 1e-12);
        assert!((w.value_at(0.75) + 1.0).abs() < 1e-12);
        // Before the delay the source sits at its phase value.
        let d = SourceWave::Sine {
            offset: 0.0,
            ampl: 1.0,
            freq: 1.0,
            delay: 1.0,
            phase: 0.0,
        };
        assert_eq!(d.value_at(0.5), 0.0);
    }

    #[test]
    fn pulse_shape() {
        let w = SourceWave::pulse(0.0, 1.0, 1.0, 0.1, 0.2, 0.5, 0.0);
        assert_eq!(w.value_at(0.5), 0.0);
        assert!((w.value_at(1.05) - 0.5).abs() < 1e-12); // mid-rise
        assert_eq!(w.value_at(1.3), 1.0); // flat top
        assert!((w.value_at(1.7) - 0.5).abs() < 1e-12); // mid-fall
        assert_eq!(w.value_at(2.5), 0.0); // back to v1
    }

    #[test]
    fn pulse_periodic() {
        let w = SourceWave::pulse(0.0, 1.0, 0.0, 0.1, 0.1, 0.3, 1.0);
        assert_eq!(w.value_at(0.2), 1.0);
        assert_eq!(w.value_at(1.2), 1.0);
        assert_eq!(w.value_at(2.7), 0.0);
    }

    #[test]
    fn pulse_zero_edges_safe() {
        let w = SourceWave::pulse(0.0, 1.0, 0.0, 0.0, 0.0, 0.5, 0.0);
        assert_eq!(w.value_at(0.25), 1.0);
        assert_eq!(w.value_at(0.75), 0.0);
    }

    #[test]
    fn pwl_interpolation_and_clamping() {
        let w = SourceWave::Pwl(vec![(0.0, 0.0), (1.0, 2.0), (2.0, 2.0)]);
        assert_eq!(w.value_at(-1.0), 0.0);
        assert_eq!(w.value_at(0.5), 1.0);
        assert_eq!(w.value_at(1.5), 2.0);
        assert_eq!(w.value_at(5.0), 2.0);
        assert_eq!(SourceWave::Pwl(vec![]).value_at(1.0), 0.0);
    }

    #[test]
    fn pulse_breakpoints() {
        let w = SourceWave::pulse(0.0, 1.0, 1.0, 0.1, 0.2, 0.5, 0.0);
        let bp = w.breakpoints(10.0);
        assert_eq!(bp, vec![1.0, 1.1, 1.6, 1.8]);
        // Truncated by tstop.
        assert_eq!(w.breakpoints(1.05), vec![1.0]);
    }

    #[test]
    fn periodic_pulse_breakpoints() {
        let w = SourceWave::pulse(0.0, 1.0, 0.0, 0.1, 0.1, 0.3, 1.0);
        let bp = w.breakpoints(2.0);
        assert!(bp.contains(&0.1));
        assert!(bp.contains(&1.1));
        assert!(bp.iter().all(|&t| t > 0.0 && t < 2.0));
    }

    #[test]
    fn pwl_breakpoints() {
        let w = SourceWave::Pwl(vec![(0.0, 0.0), (0.5, 1.0), (3.0, 1.0)]);
        assert_eq!(w.breakpoints(2.0), vec![0.5]);
    }

    #[test]
    fn set_dc_replaces() {
        let mut w = SourceWave::sine(0.0, 1.0, 1.0);
        w.set_dc(3.0);
        assert_eq!(w, SourceWave::Dc(3.0));
    }
}
