//! The behavioural bridge: couples an arbitrary pin-current model (e.g. a
//! compiled FAS program) into the Newton iteration.
//!
//! This is the crate's analogue of ELDO's FAS runtime. A
//! [`BehavioralModel`] reads its pin voltages and returns the currents it
//! imposes on each pin — exactly the probe/generator interface-element
//! semantics of the paper's §3.1a. The wrapping [`BehavioralDevice`]
//! linearizes the model numerically (finite-difference Jacobian) and stamps
//! Norton companions so the coupled behavioural/electrical system converges
//! like any other nonlinear circuit.

use crate::circuit::NodeId;
use crate::device::{AcStamper, Device, Mode, Stamper, StateView, Unknown};
use crate::SimError;
use gabm_numeric::Complex64;
use std::fmt;

/// Evaluation context handed to behavioural models.
///
/// Mirrors the simulator variables a FAS model may access: the analysis
/// `mode`, the current `time` and the current time step `dt` (the paper's
/// slew-rate construct divides by "the current time step of the simulation
/// engine").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalCtx {
    /// `true` during DC solves — time derivatives must evaluate to zero,
    /// matching the generated `if (mode = dc)` branches.
    pub mode_dc: bool,
    /// Simulated time (0 in DC).
    pub time: f64,
    /// Current step size (0 in DC).
    pub dt: f64,
    /// Analysis temperature in kelvin.
    pub temperature: f64,
}

/// A behavioural model: computes the current *into each pin* from the pin
/// voltages.
///
/// Implementations must be **pure with respect to committed state** during
/// [`BehavioralModel::eval`]: the engine calls `eval` many times per Newton
/// iteration (for the finite-difference Jacobian) and across rejected steps.
/// State (delays, previous values) is only committed in
/// [`BehavioralModel::accept`].
pub trait BehavioralModel: fmt::Debug {
    /// Number of electrical pins.
    fn pin_count(&self) -> usize;

    /// Computes `currents[k]` = current flowing *into* the model through pin
    /// `k`, given `pin_voltages[k]`.
    fn eval(&mut self, ctx: &EvalCtx, pin_voltages: &[f64], currents: &mut [f64]);

    /// Computes currents **and** the exact pin Jacobian
    /// `jacobian[k·n + j] = ∂i_k/∂v_j` in one pass (e.g. by forward-mode
    /// automatic differentiation). Returns `false` when unsupported, in
    /// which case the device falls back to `pins + 1` finite-difference
    /// evaluations per Newton iteration — the dominant cost of behavioural
    /// simulation, so implementing this is how a model earns the paper's
    /// §5 speedup.
    fn eval_with_jacobian(
        &mut self,
        _ctx: &EvalCtx,
        _pin_voltages: &[f64],
        _currents: &mut [f64],
        _jacobian: &mut [f64],
    ) -> bool {
        false
    }

    /// Commits internal state after an accepted time point.
    fn accept(&mut self, ctx: &EvalCtx, pin_voltages: &[f64]);

    /// Called before every Newton solve (optional hook).
    fn begin_solve(&mut self) {}
}

/// MNA device wrapping a [`BehavioralModel`].
#[derive(Debug)]
pub struct BehavioralDevice {
    name: String,
    pins: Vec<NodeId>,
    model: Box<dyn BehavioralModel>,
    // Scratch buffers reused across iterations.
    v: Vec<f64>,
    i0: Vec<f64>,
    i_pert: Vec<f64>,
    gv0: Vec<f64>,
    jac: Vec<f64>,
    // Last conductances, (row pin, col pin, g) — the resistive small-signal
    // linearization replayed by stamp_ac.
    g_last: Vec<(usize, usize, f64)>,
}

/// Relative perturbation used for the finite-difference Jacobian.
const FD_REL: f64 = 1e-6;
/// Absolute perturbation floor (volts).
const FD_ABS: f64 = 1e-6;

impl BehavioralDevice {
    /// Wraps `model`, connecting its pins to `pins` in order.
    ///
    /// # Errors
    ///
    /// [`SimError::BadParameter`] if the pin counts disagree.
    pub fn new(
        name: &str,
        pins: &[NodeId],
        model: Box<dyn BehavioralModel>,
    ) -> Result<Self, SimError> {
        if pins.len() != model.pin_count() {
            return Err(SimError::BadParameter {
                device: name.to_string(),
                message: format!(
                    "model has {} pins, {} nodes supplied",
                    model.pin_count(),
                    pins.len()
                ),
            });
        }
        let n = pins.len();
        Ok(BehavioralDevice {
            name: name.to_string(),
            pins: pins.to_vec(),
            model,
            v: vec![0.0; n],
            i0: vec![0.0; n],
            i_pert: vec![0.0; n],
            gv0: vec![0.0; n],
            jac: vec![0.0; n * n],
            g_last: Vec::new(),
        })
    }

    fn ctx_of(s_mode: Mode, temperature: f64) -> EvalCtx {
        match s_mode {
            Mode::Dc => EvalCtx {
                mode_dc: true,
                time: 0.0,
                dt: 0.0,
                temperature,
            },
            Mode::Tran { time, coeffs } => EvalCtx {
                mode_dc: false,
                time,
                dt: coeffs.dt(),
                temperature,
            },
        }
    }
}

impl Device for BehavioralDevice {
    fn name(&self) -> &str {
        &self.name
    }

    fn is_nonlinear(&self) -> bool {
        true
    }

    fn begin_solve(&mut self) {
        self.model.begin_solve();
    }

    fn stamp(&mut self, s: &mut Stamper) {
        let n = self.pins.len();
        let ctx = Self::ctx_of(s.mode, 300.15);
        for (k, pin) in self.pins.iter().enumerate() {
            self.v[k] = s.v(*pin);
        }
        // Jacobian G[k][j] = ∂i_k/∂v_j: analytic (one AD evaluation) when
        // the model supports it, finite differences (pins + 1 evaluations)
        // otherwise; stamp i(v) ≈ i0 + G·(v_new − v0).
        //
        // KCL: the current into the model leaves node k, so the matrix gets
        // +G and the right-hand side −(i0 − G·v0).
        for g in &mut self.gv0 {
            *g = 0.0;
        }
        let mut gv0 = std::mem::take(&mut self.gv0);
        self.g_last.clear();
        self.jac.resize(n * n, 0.0);
        let mut jac = std::mem::take(&mut self.jac);
        let mut analytic = self
            .model
            .eval_with_jacobian(&ctx, &self.v, &mut self.i0, &mut jac);
        // At pathological iterates (e.g. a 1/T model evaluated at T = 0)
        // exact derivative propagation can produce non-finite tangents where
        // the value itself is still benign; fall back to finite differences
        // for that iteration, which inherit the value's saturation.
        if analytic
            && (jac[..n * n].iter().any(|g| !g.is_finite())
                || self.i0.iter().any(|i| !i.is_finite()))
        {
            analytic = false;
        }
        if analytic {
            for k in 0..n {
                for j in 0..n {
                    let g = jac[k * n + j];
                    if g != 0.0 {
                        s.add(Unknown::Node(self.pins[k]), Unknown::Node(self.pins[j]), g);
                        gv0[k] += g * self.v[j];
                        self.g_last.push((k, j, g));
                    }
                }
            }
        } else {
            self.model.eval(&ctx, &self.v, &mut self.i0);
            for j in 0..n {
                let vj = self.v[j];
                let dv = FD_ABS.max(vj.abs() * FD_REL);
                self.v[j] = vj + dv;
                self.model.eval(&ctx, &self.v, &mut self.i_pert);
                self.v[j] = vj;
                let col = Unknown::Node(self.pins[j]);
                #[allow(clippy::needless_range_loop)]
                for k in 0..n {
                    let g = (self.i_pert[k] - self.i0[k]) / dv;
                    if g != 0.0 {
                        s.add(Unknown::Node(self.pins[k]), col, g);
                        gv0[k] += g * vj;
                        self.g_last.push((k, j, g));
                    }
                }
            }
        }
        self.jac = jac;
        #[allow(clippy::needless_range_loop)]
        for k in 0..n {
            let offset = self.i0[k] - gv0[k];
            s.add_rhs(Unknown::Node(self.pins[k]), -offset);
        }
        self.gv0 = gv0;
        // gmin floor: in saturated model regions (current limiters, clipped
        // rails) the finite-difference Jacobian is exactly zero and the pin
        // would float; the junction-conductance floor keeps the MNA matrix
        // non-singular, exactly as ELDO's GMIN does for devices.
        let gmin = s.gmin;
        for pin in self.pins.clone() {
            s.stamp_conductance(pin, crate::circuit::Circuit::GROUND, gmin);
        }
    }

    fn stamp_ac(&mut self, s: &mut AcStamper) {
        // Resistive small-signal model from the last (operating-point)
        // finite-difference linearization. Reactive behaviour inside the
        // model (its `state.dt` terms) vanishes at the DC point, so AC
        // through behavioural devices sees conductances only — documented
        // limitation; use the transient frequency-response rig for full
        // dynamics.
        for &(k, j, g) in &self.g_last {
            s.add(
                Unknown::Node(self.pins[k]),
                Unknown::Node(self.pins[j]),
                Complex64::from_real(g),
            );
        }
        let gmin = Complex64::from_real(1e-12);
        for pin in &self.pins {
            s.add(Unknown::Node(*pin), Unknown::Node(*pin), gmin);
        }
    }

    fn accept_step(&mut self, state: &StateView<'_>) {
        let ctx = Self::ctx_of(state.mode, 300.15);
        for (k, pin) in self.pins.iter().enumerate() {
            self.v[k] = state.v(*pin);
        }
        self.model.accept(&ctx, &self.v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A behavioural resistor-to-ground on each pin plus a cross
    /// transconductance: i0 = g·v0 + gm·v1, i1 = g·v1.
    #[derive(Debug)]
    struct TestModel {
        g: f64,
        gm: f64,
        accepted: usize,
    }

    impl BehavioralModel for TestModel {
        fn pin_count(&self) -> usize {
            2
        }
        fn eval(&mut self, _ctx: &EvalCtx, v: &[f64], i: &mut [f64]) {
            i[0] = self.g * v[0] + self.gm * v[1];
            i[1] = self.g * v[1];
        }
        fn accept(&mut self, _ctx: &EvalCtx, _v: &[f64]) {
            self.accepted += 1;
        }
    }

    #[test]
    fn pin_count_checked() {
        let m = Box::new(TestModel {
            g: 1.0,
            gm: 0.0,
            accepted: 0,
        });
        let err = BehavioralDevice::new("X1", &[NodeId::from_index(1)], m).unwrap_err();
        assert!(matches!(err, SimError::BadParameter { .. }));
    }

    #[test]
    fn jacobian_matches_model() {
        let m = Box::new(TestModel {
            g: 1e-3,
            gm: 2e-3,
            accepted: 0,
        });
        let pins = [NodeId::from_index(1), NodeId::from_index(2)];
        let mut dev = BehavioralDevice::new("X1", &pins, m).unwrap();
        let mut s = Stamper::new(2, 0, Mode::Dc);
        s.reset(&[1.0, 2.0], Mode::Dc);
        dev.stamp(&mut s);
        let (mat, rhs) = s.finish();
        // The current into the model leaves the node, so the conductances
        // appear with positive sign on the left-hand side.
        assert!((mat[(0, 0)] - 1e-3).abs() < 1e-9, "got {}", mat[(0, 0)]);
        assert!((mat[(0, 1)] - 2e-3).abs() < 1e-9);
        assert!((mat[(1, 1)] - 1e-3).abs() < 1e-9);
        // The model is linear ⇒ the affine offset must vanish.
        assert!(rhs[0].abs() < 1e-9);
        assert!(rhs[1].abs() < 1e-9);
    }

    #[test]
    fn accept_commits() {
        let m = Box::new(TestModel {
            g: 1.0,
            gm: 0.0,
            accepted: 0,
        });
        let pins = [NodeId::from_index(1), NodeId::from_index(2)];
        let mut dev = BehavioralDevice::new("X1", &pins, m).unwrap();
        let x = [0.5, 0.25];
        let sv = StateView {
            x: &x,
            n_nodes: 2,
            time: 0.0,
            mode: Mode::Dc,
        };
        dev.accept_step(&sv);
        // Downcast not available; observe via Debug formatting.
        let dbg = format!("{dev:?}");
        assert!(dbg.contains("accepted: 1"), "{dbg}");
    }
}
