//! The four linear controlled sources (VCVS, VCCS, CCCS, CCVS).

use crate::circuit::NodeId;
use crate::device::{AcStamper, Device, Stamper, Unknown};
use gabm_numeric::Complex64;

/// Voltage-controlled voltage source (`E` element): `v_out = mu·v_ctl`.
/// Owns one branch unknown for its output current.
#[derive(Debug, Clone)]
pub struct Vcvs {
    name: String,
    out_p: NodeId,
    out_m: NodeId,
    ctl_p: NodeId,
    ctl_m: NodeId,
    mu: f64,
    branch: usize,
}

impl Vcvs {
    /// Creates a VCVS with voltage gain `mu`.
    pub fn new(
        name: &str,
        out_p: NodeId,
        out_m: NodeId,
        ctl_p: NodeId,
        ctl_m: NodeId,
        mu: f64,
    ) -> Self {
        Vcvs {
            name: name.to_string(),
            out_p,
            out_m,
            ctl_p,
            ctl_m,
            mu,
            branch: usize::MAX,
        }
    }
}

impl Device for Vcvs {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_branches(&self) -> usize {
        1
    }

    fn set_branch_base(&mut self, base: usize) {
        self.branch = base;
    }

    fn branch_index(&self) -> Option<usize> {
        Some(self.branch)
    }

    fn stamp(&mut self, s: &mut Stamper) {
        let br = Unknown::Branch(self.branch);
        s.add(Unknown::Node(self.out_p), br, 1.0);
        s.add(Unknown::Node(self.out_m), br, -1.0);
        // v_outp - v_outm - mu(v_ctlp - v_ctlm) = 0.
        s.add(br, Unknown::Node(self.out_p), 1.0);
        s.add(br, Unknown::Node(self.out_m), -1.0);
        s.add(br, Unknown::Node(self.ctl_p), -self.mu);
        s.add(br, Unknown::Node(self.ctl_m), self.mu);
    }

    fn stamp_ac(&mut self, s: &mut AcStamper) {
        let br = Unknown::Branch(self.branch);
        let one = Complex64::ONE;
        s.add(Unknown::Node(self.out_p), br, one);
        s.add(Unknown::Node(self.out_m), br, -one);
        s.add(br, Unknown::Node(self.out_p), one);
        s.add(br, Unknown::Node(self.out_m), -one);
        s.add(
            br,
            Unknown::Node(self.ctl_p),
            Complex64::from_real(-self.mu),
        );
        s.add(br, Unknown::Node(self.ctl_m), Complex64::from_real(self.mu));
    }
}

/// Voltage-controlled current source (`G` element): `i_out = gm·v_ctl`,
/// flowing from `out_p` through the source into `out_m`.
#[derive(Debug, Clone)]
pub struct Vccs {
    name: String,
    out_p: NodeId,
    out_m: NodeId,
    ctl_p: NodeId,
    ctl_m: NodeId,
    gm: f64,
}

impl Vccs {
    /// Creates a VCCS with transconductance `gm` (siemens).
    pub fn new(
        name: &str,
        out_p: NodeId,
        out_m: NodeId,
        ctl_p: NodeId,
        ctl_m: NodeId,
        gm: f64,
    ) -> Self {
        Vccs {
            name: name.to_string(),
            out_p,
            out_m,
            ctl_p,
            ctl_m,
            gm,
        }
    }
}

impl Device for Vccs {
    fn name(&self) -> &str {
        &self.name
    }

    fn stamp(&mut self, s: &mut Stamper) {
        let (op, om) = (Unknown::Node(self.out_p), Unknown::Node(self.out_m));
        let (cp, cm) = (Unknown::Node(self.ctl_p), Unknown::Node(self.ctl_m));
        s.add(op, cp, self.gm);
        s.add(op, cm, -self.gm);
        s.add(om, cp, -self.gm);
        s.add(om, cm, self.gm);
    }

    fn stamp_ac(&mut self, s: &mut AcStamper) {
        let g = Complex64::from_real(self.gm);
        let (op, om) = (Unknown::Node(self.out_p), Unknown::Node(self.out_m));
        let (cp, cm) = (Unknown::Node(self.ctl_p), Unknown::Node(self.ctl_m));
        s.add(op, cp, g);
        s.add(op, cm, -g);
        s.add(om, cp, -g);
        s.add(om, cm, g);
    }
}

/// Current-controlled current source (`F` element): `i_out = gain·i_ctl`,
/// where `i_ctl` is the branch current of a named voltage source.
#[derive(Debug, Clone)]
pub struct Cccs {
    name: String,
    out_p: NodeId,
    out_m: NodeId,
    ctl_branch: usize,
    gain: f64,
}

impl Cccs {
    /// Creates a CCCS referencing the controlling source's branch index.
    pub fn new(name: &str, out_p: NodeId, out_m: NodeId, ctl_branch: usize, gain: f64) -> Self {
        Cccs {
            name: name.to_string(),
            out_p,
            out_m,
            ctl_branch,
            gain,
        }
    }
}

impl Device for Cccs {
    fn name(&self) -> &str {
        &self.name
    }

    fn stamp(&mut self, s: &mut Stamper) {
        let br = Unknown::Branch(self.ctl_branch);
        s.add(Unknown::Node(self.out_p), br, self.gain);
        s.add(Unknown::Node(self.out_m), br, -self.gain);
    }

    fn stamp_ac(&mut self, s: &mut AcStamper) {
        let br = Unknown::Branch(self.ctl_branch);
        let g = Complex64::from_real(self.gain);
        s.add(Unknown::Node(self.out_p), br, g);
        s.add(Unknown::Node(self.out_m), br, -g);
    }
}

/// Current-controlled voltage source (`H` element): `v_out = rm·i_ctl`.
/// Owns one branch unknown for its output current.
#[derive(Debug, Clone)]
pub struct Ccvs {
    name: String,
    out_p: NodeId,
    out_m: NodeId,
    ctl_branch: usize,
    rm: f64,
    branch: usize,
}

impl Ccvs {
    /// Creates a CCVS with transresistance `rm` (ohms).
    pub fn new(name: &str, out_p: NodeId, out_m: NodeId, ctl_branch: usize, rm: f64) -> Self {
        Ccvs {
            name: name.to_string(),
            out_p,
            out_m,
            ctl_branch,
            rm,
            branch: usize::MAX,
        }
    }
}

impl Device for Ccvs {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_branches(&self) -> usize {
        1
    }

    fn set_branch_base(&mut self, base: usize) {
        self.branch = base;
    }

    fn branch_index(&self) -> Option<usize> {
        Some(self.branch)
    }

    fn stamp(&mut self, s: &mut Stamper) {
        let br = Unknown::Branch(self.branch);
        s.add(Unknown::Node(self.out_p), br, 1.0);
        s.add(Unknown::Node(self.out_m), br, -1.0);
        // v_outp - v_outm - rm·i_ctl = 0.
        s.add(br, Unknown::Node(self.out_p), 1.0);
        s.add(br, Unknown::Node(self.out_m), -1.0);
        s.add(br, Unknown::Branch(self.ctl_branch), -self.rm);
    }

    fn stamp_ac(&mut self, s: &mut AcStamper) {
        let br = Unknown::Branch(self.branch);
        let one = Complex64::ONE;
        s.add(Unknown::Node(self.out_p), br, one);
        s.add(Unknown::Node(self.out_m), br, -one);
        s.add(br, Unknown::Node(self.out_p), one);
        s.add(br, Unknown::Node(self.out_m), -one);
        s.add(
            br,
            Unknown::Branch(self.ctl_branch),
            Complex64::from_real(-self.rm),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Mode;

    #[test]
    fn vcvs_stamp_pattern() {
        let n1 = NodeId::from_index(1);
        let n2 = NodeId::from_index(2);
        let mut e = Vcvs::new("E1", n1, NodeId::ground(), n2, NodeId::ground(), 10.0);
        e.set_branch_base(0);
        let mut s = Stamper::new(2, 1, Mode::Dc);
        e.stamp(&mut s);
        let (m, _) = s.finish();
        assert_eq!(m[(0, 2)], 1.0); // KCL out_p
        assert_eq!(m[(2, 0)], 1.0); // branch row: +v_outp
        assert_eq!(m[(2, 1)], -10.0); // branch row: -mu·v_ctlp
    }

    #[test]
    fn vccs_stamp_pattern() {
        let n1 = NodeId::from_index(1);
        let n2 = NodeId::from_index(2);
        let mut g = Vccs::new("G1", n1, NodeId::ground(), n2, NodeId::ground(), 1e-3);
        let mut s = Stamper::new(2, 0, Mode::Dc);
        g.stamp(&mut s);
        let (m, _) = s.finish();
        assert_eq!(m[(0, 1)], 1e-3);
    }

    #[test]
    fn cccs_uses_control_branch() {
        let n1 = NodeId::from_index(1);
        let mut f = Cccs::new("F1", n1, NodeId::ground(), 0, 5.0);
        let mut s = Stamper::new(1, 1, Mode::Dc);
        f.stamp(&mut s);
        let (m, _) = s.finish();
        assert_eq!(m[(0, 1)], 5.0);
    }

    #[test]
    fn ccvs_couples_branches() {
        let n1 = NodeId::from_index(1);
        let mut h = Ccvs::new("H1", n1, NodeId::ground(), 0, 100.0);
        h.set_branch_base(1);
        let mut s = Stamper::new(1, 2, Mode::Dc);
        h.stamp(&mut s);
        let (m, _) = s.finish();
        // Output branch row (index 1+1=2) couples to control branch (col 1).
        assert_eq!(m[(2, 1)], -100.0);
        assert_eq!(m[(2, 0)], 1.0);
    }
}
