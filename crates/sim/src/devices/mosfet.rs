//! Level-1 (Shichman–Hodges) MOSFET.
//!
//! The era-accurate transistor model for the paper's 11-MOS CMOS comparator
//! baseline: square-law drain current with channel-length modulation and
//! body effect, plus constant gate capacitances for transient dynamics.

use crate::circuit::NodeId;
use crate::device::{AcStamper, Device, Mode, Stamper, StateView, Unknown};
use crate::SimError;
use gabm_numeric::Complex64;

/// Transistor polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosType {
    /// N-channel.
    Nmos,
    /// P-channel.
    Pmos,
}

/// Level-1 model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosfetParams {
    /// Zero-bias threshold voltage (V). Positive for NMOS, negative for PMOS
    /// by SPICE convention; the sign is handled internally, so pass e.g.
    /// `-0.8` for a PMOS.
    pub vto: f64,
    /// Transconductance parameter KP = µ·Cox (A/V²).
    pub kp: f64,
    /// Channel-length modulation λ (1/V).
    pub lambda: f64,
    /// Body-effect coefficient γ (√V).
    pub gamma: f64,
    /// Surface potential 2φF (V).
    pub phi: f64,
    /// Channel width (m).
    pub w: f64,
    /// Channel length (m).
    pub l: f64,
    /// Constant gate–source capacitance (F).
    pub cgs: f64,
    /// Constant gate–drain capacitance (F).
    pub cgd: f64,
    /// Constant gate–bulk capacitance (F).
    pub cgb: f64,
}

impl Default for MosfetParams {
    fn default() -> Self {
        MosfetParams {
            vto: 0.8,
            kp: 50e-6,
            lambda: 0.02,
            gamma: 0.4,
            phi: 0.65,
            w: 10e-6,
            l: 1e-6,
            cgs: 0.0,
            cgd: 0.0,
            cgb: 0.0,
        }
    }
}

/// Committed state of one linear capacitance inside the transistor.
#[derive(Debug, Clone, Copy, Default)]
struct CapState {
    v_prev: f64,
    dvdt_prev: f64,
    v_prev2: f64,
}

impl CapState {
    fn stamp(&self, c: f64, a: NodeId, b: NodeId, s: &mut Stamper) {
        if c <= 0.0 {
            return;
        }
        if let Mode::Tran { coeffs, .. } = s.mode {
            let geq = c * coeffs.coeff0;
            let hist = coeffs.history(self.v_prev, self.dvdt_prev, self.v_prev2);
            s.stamp_conductance(a, b, geq);
            s.stamp_current(a, b, c * hist);
        }
    }

    fn accept(&mut self, v: f64, mode: Mode) {
        match mode {
            Mode::Dc => {
                self.v_prev = v;
                self.v_prev2 = v;
                self.dvdt_prev = 0.0;
            }
            Mode::Tran { coeffs, .. } => {
                let hist = coeffs.history(self.v_prev, self.dvdt_prev, self.v_prev2);
                let dvdt = coeffs.coeff0 * v + hist;
                self.v_prev2 = self.v_prev;
                self.v_prev = v;
                self.dvdt_prev = dvdt;
            }
        }
    }
}

/// DC solution of the square-law equations at one bias point.
#[derive(Debug, Clone, Copy, Default)]
struct MosOp {
    ids: f64,
    gm: f64,
    gds: f64,
    gmbs: f64,
}

/// A four-terminal level-1 MOSFET (drain, gate, source, bulk).
#[derive(Debug, Clone)]
pub struct Mosfet {
    name: String,
    mos_type: MosType,
    d: NodeId,
    g: NodeId,
    s: NodeId,
    b: NodeId,
    params: MosfetParams,
    beta: f64,
    // NMOS-space bias of the previous iteration, for step limiting.
    vgs_iter: f64,
    vds_iter: f64,
    // Last linearization (for AC).
    op_last: MosOp,
    swapped_last: bool,
    // Gate capacitance states.
    cgs_state: CapState,
    cgd_state: CapState,
    cgb_state: CapState,
}

/// Maximum per-iteration change of the NMOS-space gate and drain voltages
/// before the device clamps the step (simplified `fetlim`).
const MAX_FET_STEP: f64 = 0.5;

impl Mosfet {
    /// Creates a level-1 MOSFET.
    ///
    /// # Errors
    ///
    /// [`SimError::BadParameter`] for non-positive `W`, `L` or `KP`.
    pub fn new(
        name: &str,
        mos_type: MosType,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        b: NodeId,
        params: MosfetParams,
    ) -> Result<Self, SimError> {
        if params.w <= 0.0 || params.l <= 0.0 || params.kp <= 0.0 {
            return Err(SimError::BadParameter {
                device: name.to_string(),
                message: "W, L and KP must be positive".to_string(),
            });
        }
        let beta = params.kp * params.w / params.l;
        Ok(Mosfet {
            name: name.to_string(),
            mos_type,
            d,
            g,
            s,
            b,
            params,
            beta,
            vgs_iter: 0.0,
            vds_iter: 0.0,
            op_last: MosOp::default(),
            swapped_last: false,
            cgs_state: CapState::default(),
            cgd_state: CapState::default(),
            cgb_state: CapState::default(),
        })
    }

    fn polarity(&self) -> f64 {
        match self.mos_type {
            MosType::Nmos => 1.0,
            MosType::Pmos => -1.0,
        }
    }

    /// Square-law evaluation in NMOS space (`vds >= 0` assumed).
    fn square_law(&self, vgs: f64, vds: f64, vbs: f64) -> MosOp {
        let p = &self.params;
        // Body effect: vth = vto' + γ(√(φ − vbs) − √φ), with vto' the
        // NMOS-space magnitude of the threshold.
        let vto = p.vto * self.polarity();
        let phi_vbs = (p.phi - vbs).max(1e-6);
        let sqrt_phi_vbs = phi_vbs.sqrt();
        let vth = vto + p.gamma * (sqrt_phi_vbs - p.phi.max(0.0).sqrt());
        let dvth_dvbs = -p.gamma / (2.0 * sqrt_phi_vbs);
        let vov = vgs - vth;
        if vov <= 0.0 {
            return MosOp::default();
        }
        let clm = 1.0 + p.lambda * vds;
        if vds < vov {
            // Linear (triode) region.
            let ids = self.beta * (vov * vds - 0.5 * vds * vds) * clm;
            let gm = self.beta * vds * clm;
            let gds = self.beta * ((vov - vds) * clm + (vov * vds - 0.5 * vds * vds) * p.lambda);
            let gmbs = gm * (-dvth_dvbs);
            MosOp { ids, gm, gds, gmbs }
        } else {
            // Saturation.
            let ids = 0.5 * self.beta * vov * vov * clm;
            let gm = self.beta * vov * clm;
            let gds = 0.5 * self.beta * vov * vov * p.lambda;
            let gmbs = gm * (-dvth_dvbs);
            MosOp { ids, gm, gds, gmbs }
        }
    }

    fn limit(&mut self, vgs: f64, vds: f64, s: &mut Stamper) -> (f64, f64) {
        let mut out = (vgs, vds);
        if (vgs - self.vgs_iter).abs() > 2.0 * MAX_FET_STEP {
            out.0 = self.vgs_iter + MAX_FET_STEP * (vgs - self.vgs_iter).signum();
            s.mark_limited();
        }
        if (vds - self.vds_iter).abs() > 2.0 * MAX_FET_STEP {
            out.1 = self.vds_iter + MAX_FET_STEP * (vds - self.vds_iter).signum();
            s.mark_limited();
        }
        self.vgs_iter = out.0;
        self.vds_iter = out.1;
        out
    }
}

impl Device for Mosfet {
    fn name(&self) -> &str {
        &self.name
    }

    fn is_nonlinear(&self) -> bool {
        true
    }

    fn stamp(&mut self, st: &mut Stamper) {
        let p = self.polarity();
        let (vd, vg, vs, vb) = (st.v(self.d), st.v(self.g), st.v(self.s), st.v(self.b));
        // Source/drain swap so the effective vds is non-negative in NMOS
        // space.
        let swapped = p * (vd - vs) < 0.0;
        let (nd, ns) = if swapped {
            (self.s, self.d)
        } else {
            (self.d, self.s)
        };
        let (vd_e, vs_e) = if swapped { (vs, vd) } else { (vd, vs) };
        let vgs_raw = p * (vg - vs_e);
        let vds_raw = p * (vd_e - vs_e);
        let vbs = p * (vb - vs_e);
        let (vgs, vds) = self.limit(vgs_raw, vds_raw, st);
        let op = self.square_law(vgs, vds, vbs.min(0.0));
        self.op_last = op;
        self.swapped_last = swapped;

        let gm = op.gm;
        let gds = op.gds + st.gmin;
        let gmbs = op.gmbs;
        let gss = gm + gds + gmbs;
        let i_d = p * op.ids; // physical current into effective drain

        let (und, uns) = (Unknown::Node(nd), Unknown::Node(ns));
        let ung = Unknown::Node(self.g);
        let unb = Unknown::Node(self.b);
        // Jacobian (identical signs for NMOS/PMOS after the p-flips cancel).
        st.add(und, ung, gm);
        st.add(und, und, gds);
        st.add(und, unb, gmbs);
        st.add(und, uns, -gss);
        st.add(uns, ung, -gm);
        st.add(uns, und, -gds);
        st.add(uns, unb, -gmbs);
        st.add(uns, uns, gss);
        // Norton right-hand side. Note the linearization uses the *limited*
        // bias, so reconstruct terminal voltages from it.
        let vg_lin = vs_e + p * vgs;
        let vd_lin = vs_e + p * vds;
        let ieq = i_d - gm * vg_lin - gds * vd_lin - gmbs * vb + gss * vs_e;
        st.add_rhs(und, -ieq);
        st.add_rhs(uns, ieq);

        // Gate capacitances (physical terminals, not swapped).
        let cgs_state = self.cgs_state;
        let cgd_state = self.cgd_state;
        let cgb_state = self.cgb_state;
        cgs_state.stamp(self.params.cgs, self.g, self.s, st);
        cgd_state.stamp(self.params.cgd, self.g, self.d, st);
        cgb_state.stamp(self.params.cgb, self.g, self.b, st);
    }

    fn stamp_ac(&mut self, s: &mut AcStamper) {
        // Small-signal model about the last linearization. Terminal roles
        // follow the last swap state.
        let (nd, ns) = if self.swapped_last {
            (self.s, self.d)
        } else {
            (self.d, self.s)
        };
        let op = self.op_last;
        let (und, uns) = (Unknown::Node(nd), Unknown::Node(ns));
        let ung = Unknown::Node(self.g);
        let unb = Unknown::Node(self.b);
        let gm = Complex64::from_real(op.gm);
        let gds = Complex64::from_real(op.gds);
        let gmbs = Complex64::from_real(op.gmbs);
        let gss = gm + gds + gmbs;
        s.add(und, ung, gm);
        s.add(und, und, gds);
        s.add(und, unb, gmbs);
        s.add(und, uns, -gss);
        s.add(uns, ung, -gm);
        s.add(uns, und, -gds);
        s.add(uns, unb, -gmbs);
        s.add(uns, uns, gss);
        s.stamp_admittance(
            self.g,
            self.s,
            Complex64::new(0.0, s.omega * self.params.cgs),
        );
        s.stamp_admittance(
            self.g,
            self.d,
            Complex64::new(0.0, s.omega * self.params.cgd),
        );
        s.stamp_admittance(
            self.g,
            self.b,
            Complex64::new(0.0, s.omega * self.params.cgb),
        );
    }

    fn accept_step(&mut self, state: &StateView<'_>) {
        let (vd, vg, vs, vb) = (
            state.v(self.d),
            state.v(self.g),
            state.v(self.s),
            state.v(self.b),
        );
        let p = self.polarity();
        // Refresh limiting references in NMOS space of the (possibly
        // swapped) configuration.
        let swapped = p * (vd - vs) < 0.0;
        let vs_e = if swapped { vd } else { vs };
        let vd_e = if swapped { vs } else { vd };
        self.vgs_iter = p * (vg - vs_e);
        self.vds_iter = p * (vd_e - vs_e);
        self.cgs_state.accept(vg - vs, state.mode);
        self.cgd_state.accept(vg - vd, state.mode);
        self.cgb_state.accept(vg - vb, state.mode);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nmos() -> Mosfet {
        Mosfet::new(
            "M1",
            MosType::Nmos,
            NodeId::from_index(1), // d
            NodeId::from_index(2), // g
            NodeId::ground(),      // s
            NodeId::ground(),      // b
            MosfetParams {
                lambda: 0.0,
                gamma: 0.0,
                ..MosfetParams::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn rejects_bad_geometry() {
        let p = MosfetParams {
            w: 0.0,
            ..MosfetParams::default()
        };
        assert!(Mosfet::new(
            "M",
            MosType::Nmos,
            NodeId::from_index(1),
            NodeId::from_index(2),
            NodeId::ground(),
            NodeId::ground(),
            p
        )
        .is_err());
    }

    #[test]
    fn cutoff_region() {
        let m = nmos();
        let op = m.square_law(0.5, 1.0, 0.0); // vgs < vto = 0.8
        assert_eq!(op.ids, 0.0);
        assert_eq!(op.gm, 0.0);
    }

    #[test]
    fn saturation_current_square_law() {
        let m = nmos();
        // beta = 50e-6 * 10 = 5e-4; vov = 1.0 ⇒ ids = 0.5·5e-4 = 2.5e-4.
        let op = m.square_law(1.8, 3.0, 0.0);
        assert!((op.ids - 2.5e-4).abs() < 1e-9, "ids = {}", op.ids);
        assert!((op.gm - 5e-4).abs() < 1e-9);
        assert_eq!(op.gds, 0.0); // lambda = 0
    }

    #[test]
    fn triode_region() {
        let m = nmos();
        // vov = 1.0, vds = 0.5 < vov ⇒ triode.
        let op = m.square_law(1.8, 0.5, 0.0);
        let expect = 5e-4 * (1.0 * 0.5 - 0.125);
        assert!((op.ids - expect).abs() < 1e-9);
        assert!(op.gds > 0.0);
    }

    #[test]
    fn current_continuity_at_pinchoff() {
        let m = nmos();
        let below = m.square_law(1.8, 1.0 - 1e-9, 0.0);
        let above = m.square_law(1.8, 1.0 + 1e-9, 0.0);
        assert!((below.ids - above.ids).abs() < 1e-9);
        assert!((below.gm - above.gm).abs() < 1e-9);
    }

    #[test]
    fn body_effect_raises_threshold() {
        let mut m = nmos();
        m.params.gamma = 0.4;
        let no_bias = m.square_law(1.8, 3.0, 0.0);
        let reverse = m.square_law(1.8, 3.0, -2.0);
        assert!(reverse.ids < no_bias.ids);
        assert!(reverse.gmbs > 0.0);
    }

    #[test]
    fn gm_matches_finite_difference() {
        let m = nmos();
        let op = m.square_law(1.8, 3.0, 0.0);
        let dv = 1e-6;
        let ids2 = m.square_law(1.8 + dv, 3.0, 0.0).ids;
        let gm_fd = (ids2 - op.ids) / dv;
        assert!((op.gm - gm_fd).abs() / op.gm < 1e-4);
    }

    #[test]
    fn lambda_gives_output_conductance() {
        let mut m = nmos();
        m.params.lambda = 0.05;
        let op = m.square_law(1.8, 3.0, 0.0);
        let dv = 1e-6;
        let ids2 = m.square_law(1.8, 3.0 + dv, 0.0).ids;
        let gds_fd = (ids2 - op.ids) / dv;
        assert!((op.gds - gds_fd).abs() / op.gds < 1e-3);
    }

    #[test]
    fn stamp_in_saturation_produces_current() {
        let mut m = nmos();
        let mode = Mode::Dc;
        let mut s = Stamper::new(2, 0, mode);
        // vd = 3 V, vg = 1.8 V.
        s.reset(&[3.0, 1.8], mode);
        m.vgs_iter = 1.8;
        m.vds_iter = 3.0;
        m.stamp(&mut s);
        let (mat, rhs) = s.finish();
        // gm entry row d (index 0), col g (index 1).
        assert!((mat[(0, 1)] - 5e-4).abs() < 1e-9);
        // The companion model must reproduce ids at the linearization point:
        // G·v − rhs = current leaving node d = ids = 2.5e-4 A.
        let i_left = mat[(0, 0)] * 3.0 + mat[(0, 1)] * 1.8 - rhs[0];
        assert!((i_left - 2.5e-4).abs() < 1e-8, "i = {i_left}");
    }

    #[test]
    fn pmos_mirror_symmetry() {
        // A PMOS with vto = -0.8 biased with vsg = 1.8, vsd = 3 must mirror
        // the NMOS current.
        let m = Mosfet::new(
            "MP",
            MosType::Pmos,
            NodeId::from_index(1),
            NodeId::from_index(2),
            NodeId::ground(),
            NodeId::ground(),
            MosfetParams {
                vto: -0.8,
                lambda: 0.0,
                gamma: 0.0,
                ..MosfetParams::default()
            },
        )
        .unwrap();
        // NMOS-space: vgs = p·(vg − vs) with p = −1 … square_law sees the
        // magnitudes directly.
        let op = m.square_law(1.8, 3.0, 0.0);
        assert!((op.ids - 2.5e-4).abs() < 1e-9);
    }

    #[test]
    fn limiting_fires_on_big_steps() {
        let mut m = nmos();
        m.vgs_iter = 0.0;
        m.vds_iter = 0.0;
        let mode = Mode::Dc;
        let mut s = Stamper::new(2, 0, mode);
        s.reset(&[10.0, 10.0], mode);
        m.stamp(&mut s);
        assert!(s.was_limited());
        assert!(m.vgs_iter <= MAX_FET_STEP + 1e-12);
    }
}
