//! Independent voltage source.

use crate::circuit::NodeId;
use crate::device::{AcStamper, Device, Mode, Stamper, Unknown};
use crate::devices::wave::SourceWave;
use gabm_numeric::Complex64;

/// An independent voltage source with one extra MNA branch.
///
/// The branch current flows from `plus` through the source to `minus`
/// (positive current = the source sinks current at its + terminal, SPICE
/// convention).
#[derive(Debug, Clone)]
pub struct Vsource {
    name: String,
    plus: NodeId,
    minus: NodeId,
    /// Waveform delivered by the source.
    pub wave: SourceWave,
    /// AC small-signal magnitude (volts); 0 for sources that are quiet in AC.
    pub ac_magnitude: f64,
    branch: usize,
}

impl Vsource {
    /// Creates a voltage source from `plus` to `minus`.
    pub fn new(name: &str, plus: NodeId, minus: NodeId, wave: SourceWave) -> Self {
        Vsource {
            name: name.to_string(),
            plus,
            minus,
            wave,
            ac_magnitude: 0.0,
            branch: usize::MAX,
        }
    }

    /// Builder-style setter marking this source as the AC stimulus.
    pub fn with_ac(mut self, magnitude: f64) -> Self {
        self.ac_magnitude = magnitude;
        self
    }
}

impl Device for Vsource {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_branches(&self) -> usize {
        1
    }

    fn set_branch_base(&mut self, base: usize) {
        self.branch = base;
    }

    fn branch_index(&self) -> Option<usize> {
        Some(self.branch)
    }

    fn set_dc_value(&mut self, value: f64) -> bool {
        self.wave.set_dc(value);
        true
    }

    fn stamp(&mut self, s: &mut Stamper) {
        let br = Unknown::Branch(self.branch);
        let np = Unknown::Node(self.plus);
        let nm = Unknown::Node(self.minus);
        s.add(np, br, 1.0);
        s.add(nm, br, -1.0);
        s.add(br, np, 1.0);
        s.add(br, nm, -1.0);
        let value = match s.mode {
            Mode::Dc => self.wave.dc_value(),
            Mode::Tran { time, .. } => self.wave.value_at(time),
        };
        s.add_rhs(br, value * s.source_scale);
    }

    fn stamp_ac(&mut self, s: &mut AcStamper) {
        let br = Unknown::Branch(self.branch);
        let np = Unknown::Node(self.plus);
        let nm = Unknown::Node(self.minus);
        s.add(np, br, Complex64::ONE);
        s.add(nm, br, -Complex64::ONE);
        s.add(br, np, Complex64::ONE);
        s.add(br, nm, -Complex64::ONE);
        s.add_rhs(br, Complex64::from_real(self.ac_magnitude));
    }

    fn breakpoints(&self, tstop: f64) -> Vec<f64> {
        self.wave.breakpoints(tstop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_branch_equation() {
        let p = NodeId::from_index(1);
        let mut v = Vsource::new("V1", p, NodeId::ground(), SourceWave::dc(5.0));
        v.set_branch_base(0);
        let mut s = Stamper::new(1, 1, Mode::Dc);
        v.stamp(&mut s);
        let (m, rhs) = s.finish();
        assert_eq!(m[(0, 1)], 1.0);
        assert_eq!(m[(1, 0)], 1.0);
        assert_eq!(rhs[1], 5.0);
    }

    #[test]
    fn source_scale_applies() {
        let p = NodeId::from_index(1);
        let mut v = Vsource::new("V1", p, NodeId::ground(), SourceWave::dc(10.0));
        v.set_branch_base(0);
        let mut s = Stamper::new(1, 1, Mode::Dc);
        s.source_scale = 0.5;
        v.stamp(&mut s);
        let (_, rhs) = s.finish();
        assert_eq!(rhs[1], 5.0);
    }

    #[test]
    fn dc_sweep_hook() {
        let p = NodeId::from_index(1);
        let mut v = Vsource::new("V1", p, NodeId::ground(), SourceWave::sine(0.0, 1.0, 50.0));
        assert!(v.set_dc_value(2.0));
        assert_eq!(v.wave, SourceWave::Dc(2.0));
    }

    #[test]
    fn ac_rhs_uses_magnitude() {
        let p = NodeId::from_index(1);
        let mut v = Vsource::new("V1", p, NodeId::ground(), SourceWave::dc(0.0)).with_ac(1.0);
        v.set_branch_base(0);
        let mut s = AcStamper::new(1, 1, 1.0);
        v.stamp_ac(&mut s);
        let (_, rhs) = s.finish();
        assert_eq!(rhs[1], Complex64::ONE);
    }

    #[test]
    fn pulse_reports_breakpoints() {
        let p = NodeId::from_index(1);
        let v = Vsource::new(
            "V1",
            p,
            NodeId::ground(),
            SourceWave::pulse(0.0, 1.0, 1e-6, 1e-9, 1e-9, 1e-6, 0.0),
        );
        assert!(!v.breakpoints(1e-3).is_empty());
    }
}
