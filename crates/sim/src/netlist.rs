//! SPICE-style netlist parsing.
//!
//! The paper's baseline is "a CMOS comparator described at SPICE level";
//! this module accepts the classic card format so circuits can be given as
//! text:
//!
//! ```text
//! * title line (ignored)
//! V1 in 0 DC 5
//! VIN in 0 SIN(0 1 1k)
//! VCK ck 0 PULSE(0 5 1u 1n 1n 2u 5u)
//! R1 in out 10k
//! C1 out 0 1u
//! L1 a b 1m
//! D1 a 0 DMOD
//! M1 d g s b NMOD W=10u L=1u
//! E1 out 0 a b 2.0        * VCVS
//! G1 out 0 a b 1m         * VCCS
//! F1 out 0 V1 5           * CCCS
//! H1 out 0 V1 100         * CCVS
//! S1 a b c 0 VT=0.5 RON=1 ROFF=1e9
//! .model DMOD D IS=1e-14 N=1.0
//! .model NMOD NMOS VTO=0.8 KP=60u LAMBDA=0.03
//! .end
//! ```
//!
//! Engineering suffixes `f p n u m k meg g t` are understood, `.model`
//! cards may appear anywhere, `+` continues the previous card, and
//! everything after `;` or `$` on a line is a comment.

use crate::circuit::Circuit;
use crate::devices::diode::DiodeParams;
use crate::devices::mosfet::{MosType, MosfetParams};
use crate::devices::SourceWave;
use crate::SimError;
use std::collections::HashMap;

/// Parses a numeric field with SPICE engineering suffixes.
///
/// # Errors
///
/// [`SimError::BadAnalysis`] on malformed numbers.
pub fn parse_value(text: &str) -> Result<f64, SimError> {
    let lower = text.to_ascii_lowercase();
    let (mantissa, scale): (&str, f64) = if let Some(stripped) = lower.strip_suffix("meg") {
        (stripped, 1e6)
    } else if let Some(stripped) = lower.strip_suffix("mil") {
        (stripped, 25.4e-6)
    } else {
        match lower.as_bytes().last() {
            Some(b'f') => (&lower[..lower.len() - 1], 1e-15),
            Some(b'p') => (&lower[..lower.len() - 1], 1e-12),
            Some(b'n') => (&lower[..lower.len() - 1], 1e-9),
            Some(b'u') => (&lower[..lower.len() - 1], 1e-6),
            Some(b'm') => (&lower[..lower.len() - 1], 1e-3),
            Some(b'k') => (&lower[..lower.len() - 1], 1e3),
            Some(b'g') => (&lower[..lower.len() - 1], 1e9),
            Some(b't') => (&lower[..lower.len() - 1], 1e12),
            _ => (lower.as_str(), 1.0),
        }
    };
    mantissa
        .parse::<f64>()
        .map(|v| v * scale)
        .map_err(|_| SimError::BadAnalysis(format!("malformed number '{text}'")))
}

#[derive(Debug, Clone)]
enum ModelCard {
    Diode(DiodeParams),
    Mos(MosType, MosfetParams),
}

/// Key=value pairs of a card tail.
fn parse_kv(fields: &[&str]) -> Result<HashMap<String, f64>, SimError> {
    let mut out = HashMap::new();
    for f in fields {
        let Some((k, v)) = f.split_once('=') else {
            return Err(SimError::BadAnalysis(format!(
                "expected key=value, found '{f}'"
            )));
        };
        out.insert(k.to_ascii_lowercase(), parse_value(v)?);
    }
    Ok(out)
}

fn parse_model_card(fields: &[&str]) -> Result<(String, ModelCard), SimError> {
    // .model NAME TYPE key=value...
    if fields.len() < 3 {
        return Err(SimError::BadAnalysis(
            ".model needs a name and a type".into(),
        ));
    }
    let name = fields[1].to_ascii_uppercase();
    let kind = fields[2].to_ascii_uppercase();
    let kv = parse_kv(&fields[3..])?;
    let card = match kind.as_str() {
        "D" => {
            let mut p = DiodeParams::default();
            if let Some(v) = kv.get("is") {
                p.is = *v;
            }
            if let Some(v) = kv.get("n") {
                p.n = *v;
            }
            if let Some(v) = kv.get("cj0") {
                p.cj0 = *v;
            }
            ModelCard::Diode(p)
        }
        "NMOS" | "PMOS" => {
            let mut p = MosfetParams::default();
            if kind == "PMOS" {
                p.vto = -p.vto;
            }
            for (key, field) in [
                ("vto", 0usize),
                ("kp", 1),
                ("lambda", 2),
                ("gamma", 3),
                ("phi", 4),
                ("cgs", 5),
                ("cgd", 6),
                ("cgb", 7),
            ] {
                if let Some(v) = kv.get(key) {
                    match field {
                        0 => p.vto = *v,
                        1 => p.kp = *v,
                        2 => p.lambda = *v,
                        3 => p.gamma = *v,
                        4 => p.phi = *v,
                        5 => p.cgs = *v,
                        6 => p.cgd = *v,
                        _ => p.cgb = *v,
                    }
                }
            }
            let t = if kind == "NMOS" {
                MosType::Nmos
            } else {
                MosType::Pmos
            };
            ModelCard::Mos(t, p)
        }
        other => {
            return Err(SimError::BadAnalysis(format!(
                "unsupported .model type '{other}'"
            )))
        }
    };
    Ok((name, card))
}

/// Parses a source specification tail: `DC v`, bare value, `SIN(...)` or
/// `PULSE(...)`.
fn parse_source(fields: &[&str]) -> Result<SourceWave, SimError> {
    if fields.is_empty() {
        return Ok(SourceWave::dc(0.0));
    }
    let joined = fields.join(" ");
    let upper = joined.to_ascii_uppercase();
    let args_of = |name: &str| -> Result<Vec<f64>, SimError> {
        let start = upper.find('(').ok_or_else(|| {
            SimError::BadAnalysis(format!("{name} needs parenthesized arguments"))
        })?;
        let end = upper
            .rfind(')')
            .ok_or_else(|| SimError::BadAnalysis(format!("unterminated {name} argument list")))?;
        joined[start + 1..end]
            .split_whitespace()
            .map(parse_value)
            .collect()
    };
    if upper.starts_with("SIN") {
        let a = args_of("SIN")?;
        if a.len() < 3 {
            return Err(SimError::BadAnalysis(
                "SIN needs at least (offset ampl freq)".into(),
            ));
        }
        return Ok(SourceWave::Sine {
            offset: a[0],
            ampl: a[1],
            freq: a[2],
            delay: a.get(3).copied().unwrap_or(0.0),
            phase: a.get(4).copied().unwrap_or(0.0),
        });
    }
    if upper.starts_with("PULSE") {
        let a = args_of("PULSE")?;
        if a.len() < 6 {
            return Err(SimError::BadAnalysis(
                "PULSE needs (v1 v2 delay rise fall width [period])".into(),
            ));
        }
        return Ok(SourceWave::pulse(
            a[0],
            a[1],
            a[2],
            a[3],
            a[4],
            a[5],
            a.get(6).copied().unwrap_or(0.0),
        ));
    }
    if upper.starts_with("PWL") {
        let a = args_of("PWL")?;
        if a.len() % 2 != 0 {
            return Err(SimError::BadAnalysis("PWL needs time/value pairs".into()));
        }
        let pts = a.chunks(2).map(|c| (c[0], c[1])).collect();
        return Ok(SourceWave::Pwl(pts));
    }
    // `DC value` or a bare value.
    let value_field = if upper.starts_with("DC") {
        fields
            .get(1)
            .copied()
            .ok_or_else(|| SimError::BadAnalysis("DC needs a value".into()))?
    } else {
        fields[0]
    };
    Ok(SourceWave::dc(parse_value(value_field)?))
}

/// Parses a complete netlist into a [`Circuit`]. The first line is the
/// title (ignored), SPICE-style.
///
/// # Errors
///
/// [`SimError::BadAnalysis`] with the offending line number, or device
/// construction errors.
pub fn parse_netlist(src: &str) -> Result<Circuit, SimError> {
    // Join continuation lines first.
    let mut cards: Vec<(usize, String)> = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let line = match raw.find([';', '$']) {
            Some(p) => &raw[..p],
            None => raw,
        };
        let trimmed = line.trim();
        if idx == 0 || trimmed.is_empty() || trimmed.starts_with('*') {
            continue;
        }
        if let Some(cont) = trimmed.strip_prefix('+') {
            if let Some(last) = cards.last_mut() {
                last.1.push(' ');
                last.1.push_str(cont.trim());
                continue;
            }
        }
        cards.push((idx + 1, trimmed.to_string()));
    }

    // First pass: models.
    let mut models: HashMap<String, ModelCard> = HashMap::new();
    for (line_no, card) in &cards {
        let fields: Vec<&str> = card.split_whitespace().collect();
        if fields[0].eq_ignore_ascii_case(".model") {
            let (name, model) = parse_model_card(&fields)
                .map_err(|e| SimError::BadAnalysis(format!("line {line_no}: {e}")))?;
            models.insert(name, model);
        }
    }

    let mut ckt = Circuit::new();
    let err_at = |line_no: usize, msg: String| -> SimError {
        SimError::BadAnalysis(format!("line {line_no}: {msg}"))
    };
    for (line_no, card) in &cards {
        let fields: Vec<&str> = card.split_whitespace().collect();
        let head = fields[0];
        if head.starts_with('.') {
            match head.to_ascii_lowercase().as_str() {
                ".model" | ".end" => continue,
                other => {
                    return Err(err_at(
                        *line_no,
                        format!("unsupported control card '{other}'"),
                    ))
                }
            }
        }
        let name = head.to_string();
        let kind = head
            .chars()
            .next()
            .map(|c| c.to_ascii_uppercase())
            .unwrap_or(' ');
        let need = |n: usize| -> Result<(), SimError> {
            if fields.len() < n + 1 {
                Err(err_at(
                    *line_no,
                    format!("{name} needs at least {n} fields"),
                ))
            } else {
                Ok(())
            }
        };
        let result: Result<(), SimError> = (|| match kind {
            'R' => {
                need(3)?;
                let a = ckt.node(fields[1]);
                let b = ckt.node(fields[2]);
                ckt.add_resistor(&name, a, b, parse_value(fields[3])?)
            }
            'C' => {
                need(3)?;
                let a = ckt.node(fields[1]);
                let b = ckt.node(fields[2]);
                ckt.add_capacitor(&name, a, b, parse_value(fields[3])?);
                Ok(())
            }
            'L' => {
                need(3)?;
                let a = ckt.node(fields[1]);
                let b = ckt.node(fields[2]);
                ckt.add_inductor(&name, a, b, parse_value(fields[3])?)
            }
            'V' => {
                need(2)?;
                let p = ckt.node(fields[1]);
                let m = ckt.node(fields[2]);
                let wave = parse_source(&fields[3..])?;
                ckt.add_vsource(&name, p, m, wave);
                Ok(())
            }
            'I' => {
                need(2)?;
                let p = ckt.node(fields[1]);
                let m = ckt.node(fields[2]);
                let wave = parse_source(&fields[3..])?;
                ckt.add_isource(&name, p, m, wave);
                Ok(())
            }
            'E' => {
                need(5)?;
                let op = ckt.node(fields[1]);
                let om = ckt.node(fields[2]);
                let cp = ckt.node(fields[3]);
                let cm = ckt.node(fields[4]);
                ckt.add_vcvs(&name, op, om, cp, cm, parse_value(fields[5])?);
                Ok(())
            }
            'G' => {
                need(5)?;
                let op = ckt.node(fields[1]);
                let om = ckt.node(fields[2]);
                let cp = ckt.node(fields[3]);
                let cm = ckt.node(fields[4]);
                ckt.add_vccs(&name, op, om, cp, cm, parse_value(fields[5])?);
                Ok(())
            }
            'F' => {
                need(4)?;
                let op = ckt.node(fields[1]);
                let om = ckt.node(fields[2]);
                ckt.add_cccs(&name, op, om, fields[3], parse_value(fields[4])?)
            }
            'H' => {
                need(4)?;
                let op = ckt.node(fields[1]);
                let om = ckt.node(fields[2]);
                ckt.add_ccvs(&name, op, om, fields[3], parse_value(fields[4])?)
            }
            'D' => {
                need(3)?;
                let a = ckt.node(fields[1]);
                let c = ckt.node(fields[2]);
                let model = models.get(&fields[3].to_ascii_uppercase()).ok_or_else(|| {
                    SimError::BadAnalysis(format!("unknown model '{}'", fields[3]))
                })?;
                let ModelCard::Diode(p) = model else {
                    return Err(SimError::BadAnalysis(format!(
                        "'{}' is not a diode model",
                        fields[3]
                    )));
                };
                ckt.add_diode(&name, a, c, *p);
                Ok(())
            }
            'M' => {
                need(5)?;
                let d = ckt.node(fields[1]);
                let g = ckt.node(fields[2]);
                let s = ckt.node(fields[3]);
                let b = ckt.node(fields[4]);
                let model = models.get(&fields[5].to_ascii_uppercase()).ok_or_else(|| {
                    SimError::BadAnalysis(format!("unknown model '{}'", fields[5]))
                })?;
                let ModelCard::Mos(t, base) = model else {
                    return Err(SimError::BadAnalysis(format!(
                        "'{}' is not a MOS model",
                        fields[5]
                    )));
                };
                let mut p = *base;
                let kv = parse_kv(&fields[6..])?;
                if let Some(v) = kv.get("w") {
                    p.w = *v;
                }
                if let Some(v) = kv.get("l") {
                    p.l = *v;
                }
                ckt.add_mosfet(&name, *t, d, g, s, b, p)
            }
            'S' => {
                need(4)?;
                let a = ckt.node(fields[1]);
                let b = ckt.node(fields[2]);
                let cp = ckt.node(fields[3]);
                let cm = ckt.node(fields[4]);
                let kv = parse_kv(&fields[5..])?;
                ckt.add_vswitch(
                    &name,
                    a,
                    b,
                    cp,
                    cm,
                    kv.get("vt").copied().unwrap_or(0.0),
                    kv.get("ron").copied().unwrap_or(1.0),
                    kv.get("roff").copied().unwrap_or(1.0e9),
                );
                Ok(())
            }
            other => Err(SimError::BadAnalysis(format!(
                "unknown element type '{other}'"
            ))),
        })();
        result.map_err(|e| err_at(*line_no, e.to_string()))?;
    }
    Ok(ckt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::tran::TranSpec;

    #[test]
    fn engineering_suffixes() {
        let close = |text: &str, expect: f64| {
            let v = parse_value(text).unwrap();
            assert!(
                ((v - expect) / expect).abs() < 1e-12,
                "{text}: {v} vs {expect}"
            );
        };
        close("10k", 10.0e3);
        close("1meg", 1.0e6);
        close("5p", 5.0e-12);
        close("2.5u", 2.5e-6);
        close("3m", 3.0e-3);
        close("1e-3", 1.0e-3);
        close("-4.7n", -4.7e-9);
        assert!(parse_value("abc").is_err());
    }

    #[test]
    fn divider_netlist() {
        let src = "\
divider test
V1 in 0 DC 9
R1 in out 2k
R2 out 0 1k
.end
";
        let mut ckt = parse_netlist(src).unwrap();
        let out = ckt.find_node("out").unwrap();
        let op = ckt.op().unwrap();
        assert!((op.voltage(out) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn continuation_and_comments() {
        let src = "\
title
V1 in 0 $ supply
+ DC 5
* a comment line
R1 in 0 1k ; load
";
        let mut ckt = parse_netlist(src).unwrap();
        let op = ckt.op().unwrap();
        let i = op.current_through(&ckt, "V1").unwrap();
        assert!((i + 5.0e-3).abs() < 1e-9);
    }

    #[test]
    fn sources_parse() {
        let src = "\
t
V1 a 0 SIN(0 1 1k)
V2 b 0 PULSE(0 5 1u 1n 1n 2u 5u)
V3 c 0 PWL(0 0 1m 1)
I1 d 0 DC 1m
R1 a 0 1k
R2 b 0 1k
R3 c 0 1k
R4 d 0 1k
";
        let ckt = parse_netlist(src).unwrap();
        assert_eq!(ckt.n_devices(), 8);
    }

    #[test]
    fn diode_and_mos_models() {
        let src = "\
t
.model DX D IS=1e-12 N=1.2
.model MN NMOS VTO=0.7 KP=100u LAMBDA=0.02
V1 in 0 DC 3
R1 in a 1k
D1 a 0 DX
M1 out in 0 0 MN W=100u L=1u
R2 out 0 10k
V2 vdd 0 DC 5
R3 vdd out 1k
";
        let mut ckt = parse_netlist(src).unwrap();
        let op = ckt.op().unwrap();
        let a = ckt.find_node("a").unwrap();
        // Diode with N=1.2 drops roughly 0.6-0.9 V.
        let vd = op.voltage(a);
        assert!((0.4..1.0).contains(&vd), "vd = {vd}");
        // The NMOS with vgs = 3 V is on: out pulled below the divider value.
        let out = ckt.find_node("out").unwrap();
        assert!(op.voltage(out) < 1.0);
    }

    #[test]
    fn controlled_sources() {
        let src = "\
t
V1 in 0 DC 1
E1 e 0 in 0 2
R1 e 0 1k
G1 0 g in 0 1m
R2 g 0 1k
F1 0 f V1 2
R3 f 0 1k
H1 h 0 V1 500
R4 h 0 1k
";
        let mut ckt = parse_netlist(src).unwrap();
        let op = ckt.op().unwrap();
        assert!((op.voltage(ckt.find_node("e").unwrap()) - 2.0).abs() < 1e-9);
        assert!((op.voltage(ckt.find_node("g").unwrap()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rc_transient_from_netlist() {
        let src = "\
t
V1 in 0 PULSE(0 1 0 1n 1n 1 0)
R1 in out 1k
C1 out 0 1u
";
        let mut ckt = parse_netlist(src).unwrap();
        let r = ckt.tran(&TranSpec::new(5e-3)).unwrap();
        let out = ckt.find_node("out").unwrap();
        let w = r.voltage_waveform(out).unwrap();
        assert!((w.values().last().unwrap() - 0.9932).abs() < 5e-3);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_netlist("t\nR1 a 0 abc\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = parse_netlist("t\nQ1 a b c\n").unwrap_err();
        assert!(err.to_string().contains("unknown element"), "{err}");
        let err = parse_netlist("t\nD1 a 0 NOPE\n").unwrap_err();
        assert!(err.to_string().contains("unknown model"), "{err}");
        let err = parse_netlist("t\n.tran 1u 1m\n").unwrap_err();
        assert!(
            err.to_string().contains("unsupported control card"),
            "{err}"
        );
    }

    #[test]
    fn switch_card() {
        let src = "\
t
V1 c 0 DC 5
V2 in 0 DC 1
S1 in out c 0 VT=0.5 RON=10 ROFF=1e9
R1 out 0 90
";
        let mut ckt = parse_netlist(src).unwrap();
        let op = ckt.op().unwrap();
        let out = ckt.find_node("out").unwrap();
        // Closed switch: divider 90/(10+90).
        assert!((op.voltage(out) - 0.9).abs() < 1e-3);
    }
}
