//! A SPICE-class analogue circuit simulator.
//!
//! This crate is the *electrical simulator substrate* of the `gabm`
//! workspace: it plays the role ANACAD's ELDO plays in the paper — the engine
//! that simulates both transistor-level circuits and behavioural (FAS)
//! models, coupled in one nodal system.
//!
//! # Architecture
//!
//! * [`circuit`] — the netlist: named nodes and a list of devices;
//! * [`device`] — the [`Device`](device::Device) trait and the
//!   [`Stamper`](device::Stamper) each device writes its modified-nodal-
//!   analysis (MNA) contribution into;
//! * [`devices`] — R, C, L, independent V/I sources (DC, sine, pulse, PWL),
//!   the four controlled sources, diode, MOSFET level 1, a smooth switch and
//!   the [`BehavioralModel`](devices::BehavioralModel) bridge that lets `gabm-fas`
//!   models participate in the Newton iteration;
//! * [`analysis`] — operating point (with gmin and source stepping),
//!   DC sweeps, adaptive-step transient and AC small-signal analysis.
//!
//! # Example: RC low-pass step response
//!
//! ```
//! use gabm_sim::circuit::Circuit;
//! use gabm_sim::devices::SourceWave;
//! use gabm_sim::analysis::tran::TranSpec;
//!
//! # fn main() -> Result<(), gabm_sim::SimError> {
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("in");
//! let vout = ckt.node("out");
//! ckt.add_vsource("V1", vin, Circuit::GROUND, SourceWave::dc(1.0));
//! ckt.add_resistor("R1", vin, vout, 1.0e3)?;
//! ckt.add_capacitor("C1", vout, Circuit::GROUND, 1.0e-6);
//! let result = ckt.tran(&TranSpec::new(5.0e-3))?;
//! let w = result.voltage_waveform(vout)?;
//! // After 5 time constants the output has settled at the input value.
//! assert!((w.values().last().unwrap() - 1.0).abs() < 1e-2);
//! # Ok(())
//! # }
//! ```

pub mod analysis;
pub mod circuit;
pub mod device;
pub mod devices;
pub mod netlist;
pub mod options;

pub use circuit::{Circuit, NodeId};
pub use options::Options;

use std::fmt;

/// Errors produced by netlist construction and the analyses.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A device parameter was out of its legal range.
    BadParameter {
        /// Device instance name.
        device: String,
        /// Explanation of the violation.
        message: String,
    },
    /// Two devices share an instance name.
    DuplicateDevice(String),
    /// A node id did not come from this circuit.
    UnknownNode(usize),
    /// A named element was not found (e.g. DC-sweep source).
    UnknownDevice(String),
    /// The Newton iteration failed to converge.
    NoConvergence {
        /// Analysis that failed ("op", "dc", "tran").
        analysis: &'static str,
        /// Extra context (e.g. the time point).
        detail: String,
    },
    /// The MNA matrix was singular — usually a floating node or a loop of
    /// voltage sources.
    SingularMatrix {
        /// Human-readable hint naming the offending unknown if known.
        detail: String,
    },
    /// The transient step controller hit its minimum step ("timestep too
    /// small" in SPICE terms).
    TimestepTooSmall {
        /// Simulated time reached before the failure.
        time: f64,
    },
    /// A result was queried for a quantity that was not stored.
    MissingResult(String),
    /// Invalid analysis specification.
    BadAnalysis(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadParameter { device, message } => {
                write!(f, "bad parameter on {device}: {message}")
            }
            SimError::DuplicateDevice(name) => write!(f, "duplicate device name {name}"),
            SimError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            SimError::UnknownDevice(name) => write!(f, "unknown device {name}"),
            SimError::NoConvergence { analysis, detail } => {
                write!(f, "{analysis} analysis failed to converge: {detail}")
            }
            SimError::SingularMatrix { detail } => {
                write!(f, "singular MNA matrix: {detail}")
            }
            SimError::TimestepTooSmall { time } => {
                write!(f, "timestep too small at t = {time:.6e} s")
            }
            SimError::MissingResult(what) => write!(f, "missing result: {what}"),
            SimError::BadAnalysis(msg) => write!(f, "bad analysis spec: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<gabm_numeric::NumericError> for SimError {
    fn from(e: gabm_numeric::NumericError) -> Self {
        match e {
            gabm_numeric::NumericError::Singular { pivot } => SimError::SingularMatrix {
                detail: format!("pivot {pivot}"),
            },
            other => SimError::BadAnalysis(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = SimError::NoConvergence {
            analysis: "tran",
            detail: "t=1e-6".into(),
        };
        assert!(e.to_string().contains("tran"));
        let e = SimError::TimestepTooSmall { time: 1e-6 };
        assert!(e.to_string().contains("timestep"));
    }

    #[test]
    fn numeric_error_conversion() {
        let e: SimError = gabm_numeric::NumericError::Singular { pivot: 2 }.into();
        assert!(matches!(e, SimError::SingularMatrix { .. }));
    }
}
