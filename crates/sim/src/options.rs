//! Simulator options: tolerances, iteration limits, integration method.

use gabm_numeric::integrate::Method;
use gabm_numeric::newton::Tolerances;

/// Global simulator options, the analogue of SPICE's `.OPTIONS` card.
///
/// # Example
///
/// ```
/// use gabm_sim::Options;
///
/// let opts = Options {
///     gmin: 1e-12,
///     ..Options::default()
/// };
/// assert_eq!(opts.max_newton_iters, 250);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Newton convergence tolerances (RELTOL / VNTOL / ABSTOL).
    pub tolerances: Tolerances,
    /// Minimum conductance placed across nonlinear junctions (SPICE `GMIN`).
    pub gmin: f64,
    /// Maximum Newton iterations per solve attempt (SPICE `ITL1`).
    pub max_newton_iters: usize,
    /// Number of gmin-stepping decades tried when the plain operating-point
    /// solve fails.
    pub gmin_steps: usize,
    /// Number of source-stepping points tried when gmin stepping also fails.
    pub source_steps: usize,
    /// Integration method for transient analysis.
    pub method: Method,
    /// Transient local-truncation-error tolerance (volts per step).
    pub tran_tol: f64,
    /// Maximum voltage change per Newton iteration before damping kicks in.
    pub max_voltage_step: f64,
    /// Analysis temperature in kelvin (default 300.15 K = 27 °C).
    pub temperature: f64,
    /// Switch to the sparse matrix backend above this many unknowns.
    pub sparse_threshold: usize,
    /// Reuse the sparse LU symbolic analysis and pivot order across Newton
    /// iterations and time steps (numeric-only refactorization) while the
    /// matrix pattern is unchanged. Disable to force a full factorization
    /// per iteration (the pre-reuse behaviour, kept for benchmarking).
    pub reuse_lu: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            tolerances: Tolerances::default(),
            gmin: 1e-12,
            max_newton_iters: 250,
            gmin_steps: 12,
            source_steps: 10,
            method: Method::Trapezoidal,
            tran_tol: 1e-3,
            max_voltage_step: 2.0,
            temperature: 300.15,
            sparse_threshold: 64,
            reuse_lu: true,
        }
    }
}

impl Options {
    /// Thermal voltage `kT/q` at the configured temperature.
    pub fn thermal_voltage(&self) -> f64 {
        const K_OVER_Q: f64 = 8.617_333_262e-5; // volts per kelvin
        K_OVER_Q * self.temperature
    }
}

/// Cumulative work counters, used by the benchmark harness to report the
/// paper's §5 cost comparison in machine-independent terms as well as
/// wall-clock.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimStats {
    /// Accepted time steps.
    pub accepted_steps: usize,
    /// Rejected (redone) time steps.
    pub rejected_steps: usize,
    /// Total Newton iterations across all solves.
    pub newton_iterations: usize,
    /// Full matrix factorizations (symbolic analysis + pivoting + numerics).
    pub factorizations: usize,
    /// Numeric-only sparse refactorizations served from the cached
    /// symbolic analysis (see [`Options::reuse_lu`]).
    pub refactorizations: usize,
    /// Total device evaluation sweeps.
    pub device_evals: usize,
    /// Wall-clock seconds spent in the analysis that produced these stats
    /// (set by each analysis entry point; [`SimStats::absorb`] sums, and a
    /// composite analysis overwrites with its own total).
    pub wall_s: f64,
}

impl SimStats {
    /// Merges the counters of `other` into `self`.
    pub fn absorb(&mut self, other: SimStats) {
        self.accepted_steps += other.accepted_steps;
        self.rejected_steps += other.rejected_steps;
        self.newton_iterations += other.newton_iterations;
        self.factorizations += other.factorizations;
        self.refactorizations += other.refactorizations;
        self.device_evals += other.device_evals;
        self.wall_s += other.wall_s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_spice_like() {
        let o = Options::default();
        assert_eq!(o.gmin, 1e-12);
        assert_eq!(o.tolerances.reltol, 1e-3);
        assert_eq!(o.method, Method::Trapezoidal);
        // kT/q at 27 °C ≈ 25.9 mV.
        assert!((o.thermal_voltage() - 0.02585).abs() < 1e-4);
    }

    #[test]
    fn stats_absorb() {
        let mut a = SimStats {
            accepted_steps: 1,
            newton_iterations: 3,
            ..SimStats::default()
        };
        a.absorb(SimStats {
            accepted_steps: 2,
            rejected_steps: 1,
            newton_iterations: 4,
            factorizations: 5,
            refactorizations: 7,
            device_evals: 6,
            wall_s: 0.25,
        });
        assert_eq!(a.accepted_steps, 3);
        assert_eq!(a.rejected_steps, 1);
        assert_eq!(a.newton_iterations, 7);
        assert_eq!(a.factorizations, 5);
        assert_eq!(a.refactorizations, 7);
        assert_eq!(a.device_evals, 6);
        assert_eq!(a.wall_s, 0.25);
    }
}
