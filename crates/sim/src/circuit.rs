//! The netlist: named nodes plus a device list.

use crate::analysis::ac::{AcResult, AcSpec};
use crate::analysis::dc::DcResult;
use crate::analysis::op::OpResult;
use crate::analysis::tran::{TranResult, TranSpec};
use crate::device::Device;
use crate::devices::behavioral::{BehavioralDevice, BehavioralModel};
use crate::devices::capacitor::Capacitor;
use crate::devices::controlled::{Cccs, Ccvs, Vccs, Vcvs};
use crate::devices::diode::{Diode, DiodeParams};
use crate::devices::inductor::Inductor;
use crate::devices::isource::Isource;
use crate::devices::mosfet::{MosType, Mosfet, MosfetParams};
use crate::devices::resistor::Resistor;
use crate::devices::switch::VSwitch;
use crate::devices::vsource::Vsource;
use crate::devices::SourceWave;
use crate::options::Options;
use crate::SimError;
use std::collections::HashMap;

/// Identifier of a circuit node.
///
/// Node 0 is always ground. Ids are created by [`Circuit::node`] and are only
/// meaningful for the circuit that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(usize);

impl NodeId {
    /// The ground node (node 0).
    pub fn ground() -> NodeId {
        NodeId(0)
    }

    /// `true` if this is the ground node.
    pub fn is_ground(&self) -> bool {
        self.0 == 0
    }

    /// Raw index (0 = ground, 1.. = circuit nodes).
    pub fn index(&self) -> usize {
        self.0
    }

    /// Builds a `NodeId` from a raw index. Prefer [`Circuit::node`]; this
    /// exists for tests and for results processing.
    pub fn from_index(index: usize) -> NodeId {
        NodeId(index)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_ground() {
            write!(f, "0")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

/// A circuit under construction and analysis.
///
/// See the [crate-level example](crate) for typical usage.
#[derive(Debug, Default)]
pub struct Circuit {
    node_names: Vec<String>,
    name_to_node: HashMap<String, NodeId>,
    devices: Vec<Box<dyn Device>>,
    device_names: HashMap<String, usize>,
    n_branches: usize,
    /// Simulator options used by all analyses on this circuit.
    pub options: Options,
    /// Cached sparse factorization: the symbolic analysis and pivot order
    /// survive across Newton solves and time steps, so iterations with an
    /// unchanged matrix pattern only pay a numeric refactorization (see
    /// [`Options::reuse_lu`]).
    pub(crate) lu_cache: Option<gabm_numeric::SparseLu>,
}

impl Circuit {
    /// The ground node, shared by every circuit.
    pub const GROUND: NodeId = NodeId(0);

    /// Creates an empty circuit with default [`Options`].
    pub fn new() -> Self {
        Circuit {
            node_names: vec!["0".to_string()],
            name_to_node: HashMap::new(),
            devices: Vec::new(),
            device_names: HashMap::new(),
            n_branches: 0,
            options: Options::default(),
            lu_cache: None,
        }
    }

    /// Returns the node with the given name, creating it if necessary.
    /// The names `"0"`, `"gnd"` and `"GND"` alias ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return Circuit::GROUND;
        }
        if let Some(&id) = self.name_to_node.get(name) {
            return id;
        }
        let id = NodeId(self.node_names.len());
        self.node_names.push(name.to_string());
        self.name_to_node.insert(name.to_string(), id);
        id
    }

    /// Looks up an existing node by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return Some(Circuit::GROUND);
        }
        self.name_to_node.get(name).copied()
    }

    /// Name of a node (for reporting).
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.index()]
    }

    /// Number of non-ground nodes.
    pub fn n_nodes(&self) -> usize {
        self.node_names.len() - 1
    }

    /// Number of extra branch-current unknowns.
    pub fn n_branches(&self) -> usize {
        self.n_branches
    }

    /// Total MNA unknowns (node voltages + branch currents).
    pub fn n_unknowns(&self) -> usize {
        self.n_nodes() + self.n_branches
    }

    /// Number of devices.
    pub fn n_devices(&self) -> usize {
        self.devices.len()
    }

    /// Adds an already-constructed device, assigning its branch unknowns.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DuplicateDevice`] if the instance name is taken.
    pub fn add_device(&mut self, mut device: Box<dyn Device>) -> Result<(), SimError> {
        let name = device.name().to_string();
        if self.device_names.contains_key(&name) {
            return Err(SimError::DuplicateDevice(name));
        }
        let nb = device.num_branches();
        device.set_branch_base(self.n_branches);
        self.n_branches += nb;
        self.device_names.insert(name, self.devices.len());
        self.devices.push(device);
        Ok(())
    }

    /// Mutable access to the device list (used by the analyses).
    pub(crate) fn devices_mut(&mut self) -> &mut [Box<dyn Device>] {
        &mut self.devices
    }

    /// Shared access to the device list.
    pub fn devices(&self) -> &[Box<dyn Device>] {
        &self.devices
    }

    /// Index of the named device.
    pub(crate) fn device_index(&self, name: &str) -> Option<usize> {
        self.device_names.get(name).copied()
    }

    /// `true` if any device is nonlinear.
    pub fn is_nonlinear(&self) -> bool {
        self.devices.iter().any(|d| d.is_nonlinear())
    }

    // ------------------------------------------------------------------
    // Convenience constructors for the primitive devices.
    // ------------------------------------------------------------------

    /// Adds a resistor.
    ///
    /// # Errors
    ///
    /// [`SimError::BadParameter`] for non-positive resistance;
    /// [`SimError::DuplicateDevice`] on a name clash.
    pub fn add_resistor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        ohms: f64,
    ) -> Result<(), SimError> {
        self.add_device(Box::new(Resistor::new(name, a, b, ohms)?))
    }

    /// Adds a capacitor (farads).
    ///
    /// Accepts any non-negative capacitance; a zero capacitor is a no-op.
    pub fn add_capacitor(&mut self, name: &str, a: NodeId, b: NodeId, farads: f64) {
        let _ = self.add_device(Box::new(Capacitor::new(name, a, b, farads)));
    }

    /// Adds an inductor (henries). Introduces one branch unknown.
    ///
    /// # Errors
    ///
    /// [`SimError::BadParameter`] for non-positive inductance.
    pub fn add_inductor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        henries: f64,
    ) -> Result<(), SimError> {
        self.add_device(Box::new(Inductor::new(name, a, b, henries)?))
    }

    /// Adds an independent voltage source from `plus` to `minus`.
    pub fn add_vsource(&mut self, name: &str, plus: NodeId, minus: NodeId, wave: SourceWave) {
        let _ = self.add_device(Box::new(Vsource::new(name, plus, minus, wave)));
    }

    /// Adds an independent current source driving current from `plus`
    /// through the source into `minus`.
    pub fn add_isource(&mut self, name: &str, plus: NodeId, minus: NodeId, wave: SourceWave) {
        let _ = self.add_device(Box::new(Isource::new(name, plus, minus, wave)));
    }

    /// Adds a voltage-controlled voltage source (gain `mu`).
    pub fn add_vcvs(
        &mut self,
        name: &str,
        out_p: NodeId,
        out_m: NodeId,
        ctl_p: NodeId,
        ctl_m: NodeId,
        mu: f64,
    ) {
        let _ = self.add_device(Box::new(Vcvs::new(name, out_p, out_m, ctl_p, ctl_m, mu)));
    }

    /// Adds a voltage-controlled current source (transconductance `gm`).
    pub fn add_vccs(
        &mut self,
        name: &str,
        out_p: NodeId,
        out_m: NodeId,
        ctl_p: NodeId,
        ctl_m: NodeId,
        gm: f64,
    ) {
        let _ = self.add_device(Box::new(Vccs::new(name, out_p, out_m, ctl_p, ctl_m, gm)));
    }

    /// Adds a current-controlled current source. The controlling current is
    /// that of the named voltage source (by its branch), SPICE-style.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownDevice`] if the controlling source is absent.
    pub fn add_cccs(
        &mut self,
        name: &str,
        out_p: NodeId,
        out_m: NodeId,
        vsource_name: &str,
        gain: f64,
    ) -> Result<(), SimError> {
        let branch = self.branch_of_vsource(vsource_name)?;
        self.add_device(Box::new(Cccs::new(name, out_p, out_m, branch, gain)))
    }

    /// Adds a current-controlled voltage source (transresistance `rm`).
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownDevice`] if the controlling source is absent.
    pub fn add_ccvs(
        &mut self,
        name: &str,
        out_p: NodeId,
        out_m: NodeId,
        vsource_name: &str,
        rm: f64,
    ) -> Result<(), SimError> {
        let branch = self.branch_of_vsource(vsource_name)?;
        self.add_device(Box::new(Ccvs::new(name, out_p, out_m, branch, rm)))
    }

    /// Adds a diode (anode, cathode).
    pub fn add_diode(&mut self, name: &str, anode: NodeId, cathode: NodeId, params: DiodeParams) {
        let _ = self.add_device(Box::new(Diode::new(name, anode, cathode, params)));
    }

    /// Adds a level-1 MOSFET (drain, gate, source, bulk).
    ///
    /// # Errors
    ///
    /// [`SimError::BadParameter`] for non-positive `W`/`L`.
    #[allow(clippy::too_many_arguments)]
    pub fn add_mosfet(
        &mut self,
        name: &str,
        mos_type: MosType,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        b: NodeId,
        params: MosfetParams,
    ) -> Result<(), SimError> {
        self.add_device(Box::new(Mosfet::new(name, mos_type, d, g, s, b, params)?))
    }

    /// Adds a smooth voltage-controlled switch.
    #[allow(clippy::too_many_arguments)]
    pub fn add_vswitch(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        ctl_p: NodeId,
        ctl_m: NodeId,
        v_threshold: f64,
        r_on: f64,
        r_off: f64,
    ) {
        let _ = self.add_device(Box::new(VSwitch::new(
            name,
            a,
            b,
            ctl_p,
            ctl_m,
            v_threshold,
            r_on,
            r_off,
        )));
    }

    /// Wraps a behavioural model (e.g. a compiled FAS program) as a device
    /// connected to the given circuit nodes, in pin order.
    ///
    /// # Errors
    ///
    /// [`SimError::BadParameter`] if `pins.len()` does not match the model's
    /// pin count; [`SimError::DuplicateDevice`] on a name clash.
    pub fn add_behavioral(
        &mut self,
        name: &str,
        pins: &[NodeId],
        model: Box<dyn BehavioralModel>,
    ) -> Result<(), SimError> {
        self.add_device(Box::new(BehavioralDevice::new(name, pins, model)?))
    }

    fn branch_of_vsource(&self, name: &str) -> Result<usize, SimError> {
        let idx = self
            .device_index(name)
            .ok_or_else(|| SimError::UnknownDevice(name.to_string()))?;
        self.devices[idx]
            .branch_index()
            .ok_or_else(|| SimError::UnknownDevice(format!("{name} has no branch current")))
    }

    // ------------------------------------------------------------------
    // Analyses (thin wrappers over the `analysis` module).
    // ------------------------------------------------------------------

    /// Solves the DC operating point.
    ///
    /// # Errors
    ///
    /// [`SimError::NoConvergence`] or [`SimError::SingularMatrix`] on solver
    /// failure.
    pub fn op(&mut self) -> Result<OpResult, SimError> {
        crate::analysis::op::solve_op(self)
    }

    /// Sweeps the DC value of the named independent source.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownDevice`] for a bad source name, or solver errors.
    pub fn dc_sweep(
        &mut self,
        source: &str,
        from: f64,
        to: f64,
        step: f64,
    ) -> Result<DcResult, SimError> {
        crate::analysis::dc::sweep(self, source, from, to, step)
    }

    /// Runs a transient analysis.
    ///
    /// # Errors
    ///
    /// Solver errors, or [`SimError::TimestepTooSmall`] when the step
    /// controller cannot recover.
    pub fn tran(&mut self, spec: &TranSpec) -> Result<TranResult, SimError> {
        crate::analysis::tran::solve_tran(self, spec)
    }

    /// Runs an AC small-signal analysis about the last operating point.
    ///
    /// # Errors
    ///
    /// Solver errors from the OP pre-solve or the complex solves.
    pub fn ac(&mut self, spec: &AcSpec) -> Result<AcResult, SimError> {
        crate::analysis::ac::solve_ac(self, spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_aliases() {
        let mut c = Circuit::new();
        assert_eq!(c.node("0"), Circuit::GROUND);
        assert_eq!(c.node("gnd"), Circuit::GROUND);
        assert_eq!(c.node("GND"), Circuit::GROUND);
        assert!(Circuit::GROUND.is_ground());
    }

    #[test]
    fn node_creation_is_idempotent() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let a2 = c.node("a");
        assert_eq!(a, a2);
        assert_eq!(c.n_nodes(), 1);
        assert_eq!(c.node_name(a), "a");
        assert_eq!(c.find_node("a"), Some(a));
        assert_eq!(c.find_node("zz"), None);
    }

    #[test]
    fn duplicate_device_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_resistor("R1", a, Circuit::GROUND, 1.0).unwrap();
        let err = c.add_resistor("R1", a, Circuit::GROUND, 2.0).unwrap_err();
        assert!(matches!(err, SimError::DuplicateDevice(_)));
    }

    #[test]
    fn branch_allocation() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GROUND, SourceWave::dc(1.0));
        c.add_inductor("L1", a, b, 1e-3).unwrap();
        assert_eq!(c.n_branches(), 2);
        assert_eq!(c.n_unknowns(), 4);
    }

    #[test]
    fn node_display() {
        assert_eq!(NodeId::ground().to_string(), "0");
        assert_eq!(NodeId::from_index(3).to_string(), "n3");
    }

    #[test]
    fn nonlinear_detection() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_resistor("R1", a, Circuit::GROUND, 1.0).unwrap();
        assert!(!c.is_nonlinear());
        c.add_diode("D1", a, Circuit::GROUND, DiodeParams::default());
        assert!(c.is_nonlinear());
    }
}
