//! The [`Device`] trait and the MNA [`Stamper`].
//!
//! Every circuit element — primitive or behavioural — participates in the
//! analyses by *stamping* its linearized contribution into the modified nodal
//! analysis (MNA) system once per Newton iteration. The [`Stamper`] hides the
//! unknown numbering (ground elision, branch currents after node voltages)
//! and exposes the current iterate so nonlinear devices can evaluate their
//! companion models.

use crate::circuit::NodeId;
use gabm_numeric::integrate::Coefficients;
use gabm_numeric::{Complex64, DenseMatrix, TripletBuilder};
use std::fmt;

/// An MNA unknown: a node voltage or a branch current.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Unknown {
    /// The voltage of a (non-ground) node.
    Node(NodeId),
    /// The current of an extra MNA branch (voltage sources, inductors, …).
    Branch(usize),
}

/// Analysis mode a stamp is requested for.
///
/// Mirrors the FAS `mode` variable that the paper's generated code branches
/// on (`if (mode = dc) then … else … endif`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// DC: capacitors open, inductors short, time derivatives are zero.
    Dc,
    /// Transient at time `time` with the current discretization.
    Tran {
        /// Simulated time of the point being solved.
        time: f64,
        /// Integration coefficients for the current step.
        coeffs: Coefficients,
    },
}

impl Mode {
    /// `true` in DC mode.
    pub fn is_dc(&self) -> bool {
        matches!(self, Mode::Dc)
    }

    /// Simulated time (0 in DC mode).
    pub fn time(&self) -> f64 {
        match self {
            Mode::Dc => 0.0,
            Mode::Tran { time, .. } => *time,
        }
    }

    /// Integration coefficients, if in transient mode.
    pub fn coeffs(&self) -> Option<Coefficients> {
        match self {
            Mode::Dc => None,
            Mode::Tran { coeffs, .. } => Some(*coeffs),
        }
    }
}

/// Assembly surface for one Newton iteration of a real (DC or transient)
/// solve.
/// Backing store for the assembled Jacobian: dense for small systems,
/// coordinate triplets (solved by the sparse LU) above the
/// `sparse_threshold` option.
#[derive(Debug)]
pub(crate) enum MatrixStore {
    /// Dense row-major storage.
    Dense(DenseMatrix<f64>),
    /// Sparse triplet accumulation.
    Sparse(TripletBuilder),
}

impl MatrixStore {
    fn add_at(&mut self, row: usize, col: usize, val: f64) {
        match self {
            MatrixStore::Dense(m) => m.add_at(row, col, val),
            MatrixStore::Sparse(t) => t.push(row, col, val),
        }
    }

    fn clear(&mut self) {
        match self {
            MatrixStore::Dense(m) => m.clear(),
            MatrixStore::Sparse(t) => t.clear(),
        }
    }
}

impl std::ops::Index<(usize, usize)> for MatrixStore {
    type Output = f64;
    fn index(&self, (row, col): (usize, usize)) -> &f64 {
        match self {
            MatrixStore::Dense(m) => &m[(row, col)],
            MatrixStore::Sparse(_) => {
                panic!("indexing a sparse store by reference is not supported")
            }
        }
    }
}

#[derive(Debug)]
pub struct Stamper {
    n_nodes: usize,
    mat: MatrixStore,
    rhs: Vec<f64>,
    x: Vec<f64>,
    /// Analysis mode of this solve.
    pub mode: Mode,
    /// Junction conductance floor (options `GMIN`).
    pub gmin: f64,
    /// Thermal voltage at the analysis temperature.
    pub vt: f64,
    /// Source-stepping scale in `[0, 1]`; independent sources multiply their
    /// value by this factor.
    pub source_scale: f64,
    /// Extra conductance to ground on every node (gmin stepping).
    pub gshunt: f64,
    limited: bool,
}

impl Stamper {
    /// Creates a stamper for `n_nodes` node voltages plus `n_branches`
    /// branch currents.
    pub fn new(n_nodes: usize, n_branches: usize, mode: Mode) -> Self {
        Stamper::with_backend(n_nodes, n_branches, mode, false)
    }

    /// Creates a stamper with an explicit matrix backend (`sparse = true`
    /// accumulates triplets for the sparse LU).
    pub fn with_backend(n_nodes: usize, n_branches: usize, mode: Mode, sparse: bool) -> Self {
        let n = n_nodes + n_branches;
        Stamper {
            n_nodes,
            mat: if sparse {
                MatrixStore::Sparse(TripletBuilder::new(n, n))
            } else {
                MatrixStore::Dense(DenseMatrix::zeros(n, n))
            },
            rhs: vec![0.0; n],
            x: vec![0.0; n],
            mode,
            gmin: 1e-12,
            vt: 0.02585,
            source_scale: 1.0,
            gshunt: 0.0,
            limited: false,
        }
    }

    /// Total number of unknowns.
    pub fn n_unknowns(&self) -> usize {
        self.rhs.len()
    }

    /// Number of node-voltage unknowns.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Resets matrix, right-hand side and the limiting flag; loads the
    /// iterate `x` the devices will linearize around.
    pub fn reset(&mut self, x: &[f64], mode: Mode) {
        self.mat.clear();
        for r in &mut self.rhs {
            *r = 0.0;
        }
        self.x.copy_from_slice(x);
        self.mode = mode;
        self.limited = false;
    }

    fn row_of(&self, u: Unknown) -> Option<usize> {
        match u {
            Unknown::Node(n) => {
                if n.is_ground() {
                    None
                } else {
                    Some(n.index() - 1)
                }
            }
            Unknown::Branch(b) => Some(self.n_nodes + b),
        }
    }

    /// Voltage of `node` in the current iterate (0 for ground).
    pub fn v(&self, node: NodeId) -> f64 {
        if node.is_ground() {
            0.0
        } else {
            self.x[node.index() - 1]
        }
    }

    /// Branch current `idx` in the current iterate.
    pub fn branch_current(&self, idx: usize) -> f64 {
        self.x[self.n_nodes + idx]
    }

    /// Adds `val` to the Jacobian entry `(row, col)`, silently skipping
    /// ground rows/columns.
    pub fn add(&mut self, row: Unknown, col: Unknown, val: f64) {
        if let (Some(r), Some(c)) = (self.row_of(row), self.row_of(col)) {
            self.mat.add_at(r, c, val);
        }
    }

    /// Adds `val` to the right-hand side at `row` (skipping ground).
    pub fn add_rhs(&mut self, row: Unknown, val: f64) {
        if let Some(r) = self.row_of(row) {
            self.rhs[r] += val;
        }
    }

    /// Stamps a conductance `g` between nodes `a` and `b`.
    pub fn stamp_conductance(&mut self, a: NodeId, b: NodeId, g: f64) {
        self.add(Unknown::Node(a), Unknown::Node(a), g);
        self.add(Unknown::Node(b), Unknown::Node(b), g);
        self.add(Unknown::Node(a), Unknown::Node(b), -g);
        self.add(Unknown::Node(b), Unknown::Node(a), -g);
    }

    /// Stamps a current source driving `i` amps from node `a` through the
    /// device into node `b` (i.e. `i` leaves node `a`).
    pub fn stamp_current(&mut self, a: NodeId, b: NodeId, i: f64) {
        self.add_rhs(Unknown::Node(a), -i);
        self.add_rhs(Unknown::Node(b), i);
    }

    /// Records that a device applied junction/FET limiting this iteration —
    /// convergence is deferred until an un-limited iteration.
    pub fn mark_limited(&mut self) {
        self.limited = true;
    }

    /// Whether any device limited during the last assembly.
    pub fn was_limited(&self) -> bool {
        self.limited
    }

    /// Finishes assembly: applies the gmin-stepping shunt and hands the
    /// system to the linear solver.
    pub(crate) fn finish(&mut self) -> (&MatrixStore, &[f64]) {
        if self.gshunt > 0.0 {
            for i in 0..self.n_nodes {
                self.mat.add_at(i, i, self.gshunt);
            }
        }
        (&self.mat, &self.rhs)
    }
}

/// Assembly surface for a complex-valued AC small-signal solve.
#[derive(Debug)]
pub struct AcStamper {
    n_nodes: usize,
    mat: DenseMatrix<Complex64>,
    rhs: Vec<Complex64>,
    /// Angular frequency ω = 2πf of the current analysis point.
    pub omega: f64,
}

impl AcStamper {
    /// Creates an AC stamper for the given unknown counts and angular
    /// frequency.
    pub fn new(n_nodes: usize, n_branches: usize, omega: f64) -> Self {
        let n = n_nodes + n_branches;
        AcStamper {
            n_nodes,
            mat: DenseMatrix::zeros(n, n),
            rhs: vec![Complex64::ZERO; n],
            omega,
        }
    }

    /// Clears matrix and right-hand side for the next frequency point.
    pub fn reset(&mut self, omega: f64) {
        self.mat.clear();
        for r in &mut self.rhs {
            *r = Complex64::ZERO;
        }
        self.omega = omega;
    }

    fn row_of(&self, u: Unknown) -> Option<usize> {
        match u {
            Unknown::Node(n) => {
                if n.is_ground() {
                    None
                } else {
                    Some(n.index() - 1)
                }
            }
            Unknown::Branch(b) => Some(self.n_nodes + b),
        }
    }

    /// Adds a complex admittance entry.
    pub fn add(&mut self, row: Unknown, col: Unknown, val: Complex64) {
        if let (Some(r), Some(c)) = (self.row_of(row), self.row_of(col)) {
            self.mat.add_at(r, c, val);
        }
    }

    /// Adds to the complex right-hand side.
    pub fn add_rhs(&mut self, row: Unknown, val: Complex64) {
        if let Some(r) = self.row_of(row) {
            self.rhs[r] += val;
        }
    }

    /// Stamps a complex admittance `y` between nodes `a` and `b`.
    pub fn stamp_admittance(&mut self, a: NodeId, b: NodeId, y: Complex64) {
        self.add(Unknown::Node(a), Unknown::Node(a), y);
        self.add(Unknown::Node(b), Unknown::Node(b), y);
        self.add(Unknown::Node(a), Unknown::Node(b), -y);
        self.add(Unknown::Node(b), Unknown::Node(a), -y);
    }

    pub(crate) fn finish(&self) -> (&DenseMatrix<Complex64>, &[Complex64]) {
        (&self.mat, &self.rhs)
    }
}

/// Read-only view of an accepted solution, handed to
/// [`Device::accept_step`].
#[derive(Debug, Clone, Copy)]
pub struct StateView<'a> {
    /// Full solution vector (node voltages then branch currents).
    pub x: &'a [f64],
    /// Number of node unknowns in `x`.
    pub n_nodes: usize,
    /// Accepted simulated time.
    pub time: f64,
    /// Mode of the accepted point.
    pub mode: Mode,
}

impl StateView<'_> {
    /// Voltage of `node` in the accepted solution (0 for ground).
    pub fn v(&self, node: NodeId) -> f64 {
        if node.is_ground() {
            0.0
        } else {
            self.x[node.index() - 1]
        }
    }

    /// Branch current `idx` in the accepted solution.
    pub fn branch_current(&self, idx: usize) -> f64 {
        self.x[self.n_nodes + idx]
    }
}

/// A circuit element.
///
/// Implementations stamp a *linearized companion model* each Newton
/// iteration: nonlinear devices read the current iterate from the
/// [`Stamper`], linearize about it, and stamp conductances plus Norton
/// current sources.
pub trait Device: fmt::Debug {
    /// Unique instance name (`"R1"`, `"M3"`, `"XCOMP"`).
    fn name(&self) -> &str;

    /// Number of extra branch-current unknowns this device needs.
    fn num_branches(&self) -> usize {
        0
    }

    /// Receives the global index of this device's first branch unknown.
    fn set_branch_base(&mut self, _base: usize) {}

    /// `true` if the device's stamp depends on the iterate (forces Newton
    /// iteration rather than a single linear solve).
    fn is_nonlinear(&self) -> bool {
        false
    }

    /// Called once before each Newton solve begins; resets limiting state.
    fn begin_solve(&mut self) {}

    /// Writes the device's contribution for the current iterate.
    fn stamp(&mut self, s: &mut Stamper);

    /// Writes the AC small-signal contribution, linearized about the most
    /// recent operating point. Default: no contribution (open circuit).
    fn stamp_ac(&mut self, _s: &mut AcStamper) {}

    /// Commits internal state after a time step (or the operating point) is
    /// accepted.
    fn accept_step(&mut self, _state: &StateView<'_>) {}

    /// Time points in `(0, tstop)` the transient must land on exactly
    /// (source corners, strobe edges).
    fn breakpoints(&self, _tstop: f64) -> Vec<f64> {
        Vec::new()
    }

    /// Global index of this device's branch current, if it owns exactly one
    /// (voltage sources, inductors). Used by current-controlled sources and
    /// the current probes of the extraction rigs.
    fn branch_index(&self) -> Option<usize> {
        None
    }

    /// DC value accessor/mutator used by DC sweeps; only independent sources
    /// implement it.
    fn set_dc_value(&mut self, _value: f64) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::NodeId;

    #[test]
    fn stamper_skips_ground() {
        let mut s = Stamper::new(2, 0, Mode::Dc);
        let gnd = NodeId::ground();
        let n1 = NodeId::from_index(1);
        s.stamp_conductance(n1, gnd, 0.5);
        let (m, _) = s.finish();
        assert_eq!(m[(0, 0)], 0.5);
        // Only the (n1, n1) entry exists; ground row/col were skipped.
        assert_eq!(m[(1, 1)], 0.0);
    }

    #[test]
    fn stamper_conductance_pattern() {
        let mut s = Stamper::new(2, 0, Mode::Dc);
        let n1 = NodeId::from_index(1);
        let n2 = NodeId::from_index(2);
        s.stamp_conductance(n1, n2, 2.0);
        let (m, _) = s.finish();
        assert_eq!(m[(0, 0)], 2.0);
        assert_eq!(m[(1, 1)], 2.0);
        assert_eq!(m[(0, 1)], -2.0);
        assert_eq!(m[(1, 0)], -2.0);
    }

    #[test]
    fn stamper_current_direction() {
        let mut s = Stamper::new(2, 0, Mode::Dc);
        let n1 = NodeId::from_index(1);
        let n2 = NodeId::from_index(2);
        // 1 A leaves n1, enters n2.
        s.stamp_current(n1, n2, 1.0);
        let (_, rhs) = s.finish();
        assert_eq!(rhs[0], -1.0);
        assert_eq!(rhs[1], 1.0);
    }

    #[test]
    fn stamper_branch_rows() {
        let mut s = Stamper::new(1, 1, Mode::Dc);
        let n1 = NodeId::from_index(1);
        s.add(Unknown::Branch(0), Unknown::Node(n1), 1.0);
        s.add_rhs(Unknown::Branch(0), 5.0);
        let (m, rhs) = s.finish();
        assert_eq!(m[(1, 0)], 1.0);
        assert_eq!(rhs[1], 5.0);
    }

    #[test]
    fn stamper_iterate_access() {
        let mut s = Stamper::new(2, 1, Mode::Dc);
        s.reset(&[1.0, 2.0, 0.5], Mode::Dc);
        assert_eq!(s.v(NodeId::ground()), 0.0);
        assert_eq!(s.v(NodeId::from_index(1)), 1.0);
        assert_eq!(s.v(NodeId::from_index(2)), 2.0);
        assert_eq!(s.branch_current(0), 0.5);
    }

    #[test]
    fn gshunt_applied_on_finish() {
        let mut s = Stamper::new(2, 0, Mode::Dc);
        s.gshunt = 1e-3;
        let (m, _) = s.finish();
        assert_eq!(m[(0, 0)], 1e-3);
        assert_eq!(m[(1, 1)], 1e-3);
        assert_eq!(m[(0, 1)], 0.0);
    }

    #[test]
    fn limited_flag_roundtrip() {
        let mut s = Stamper::new(1, 0, Mode::Dc);
        assert!(!s.was_limited());
        s.mark_limited();
        assert!(s.was_limited());
        s.reset(&[0.0], Mode::Dc);
        assert!(!s.was_limited());
    }

    #[test]
    fn mode_helpers() {
        assert!(Mode::Dc.is_dc());
        assert_eq!(Mode::Dc.time(), 0.0);
        assert!(Mode::Dc.coeffs().is_none());
        let c = Coefficients::new(gabm_numeric::integrate::Method::BackwardEuler, 1e-6, 0.0);
        let m = Mode::Tran {
            time: 2e-6,
            coeffs: c,
        };
        assert!(!m.is_dc());
        assert_eq!(m.time(), 2e-6);
        assert!(m.coeffs().is_some());
    }

    #[test]
    fn state_view_access() {
        let x = [3.0, 4.0, 0.1];
        let sv = StateView {
            x: &x,
            n_nodes: 2,
            time: 0.0,
            mode: Mode::Dc,
        };
        assert_eq!(sv.v(NodeId::from_index(2)), 4.0);
        assert_eq!(sv.branch_current(0), 0.1);
    }

    #[test]
    fn ac_stamper_admittance() {
        let mut s = AcStamper::new(2, 0, 1.0);
        let n1 = NodeId::from_index(1);
        let n2 = NodeId::from_index(2);
        s.stamp_admittance(n1, n2, Complex64::new(0.0, 1.0));
        let (m, _) = s.finish();
        assert_eq!(m[(0, 0)], Complex64::new(0.0, 1.0));
        assert_eq!(m[(0, 1)], Complex64::new(0.0, -1.0));
    }
}
