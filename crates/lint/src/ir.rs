//! Dataflow lints over the lowered, backend-independent [`CodeIr`].
//!
//! These run after the diagram-level passes (which live in
//! `gabm_core::check`): the IR is the ordered statement list every backend
//! renders (§4.1), so anything suspicious here — a variable read before any
//! statement defines it, an assignment nothing consumes, an arithmetic
//! error visible at constant-folding time — will be suspicious in every
//! generated language.

use gabm_codegen::{CodeIr, IrRhs, IrStatement};
use gabm_core::diag::{Code, Diagnostic, Fix, FixEdit, Location};
use gabm_core::symbol::FuncKind;
use std::collections::HashSet;

/// One IR-level analysis pass.
pub type IrPass = fn(&CodeIr, &mut Vec<Diagnostic>);

/// All IR-level passes in execution order, with stable names.
pub const IR_PASSES: &[(&str, IrPass)] = &[
    ("ir-use-before-def", check_use_before_def),
    ("ir-dead-assignments", check_dead_assignments),
    ("ir-const-fold", check_const_fold),
];

/// Runs every IR pass on `ir` and returns the findings.
pub fn lint_ir(ir: &CodeIr) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (_, pass) in IR_PASSES {
        pass(ir, &mut diags);
    }
    diags
}

/// Simulator-provided names that are defined without any statement.
const BUILTINS: &[&str] = &["time", "timestep", "temp"];

/// Extracts identifier tokens from a lowered expression string. The
/// lowered expressions are flat (single variables, parameter references
/// like `-rate`, or numeric literals), so a lexical split is exact.
fn idents(expr: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut rest = expr;
    while let Some(start) = rest.find(|c: char| c.is_ascii_alphanumeric() || c == '_') {
        let tail = &rest[start..];
        let end = tail
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .unwrap_or(tail.len());
        let token = &tail[..end];
        if token
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        {
            out.push(token);
        }
        rest = &tail[end..];
    }
    out
}

/// Numeric value of a lowered expression, when it is a literal.
fn literal(expr: &str) -> Option<f64> {
    expr.trim().parse::<f64>().ok()
}

/// Expressions a statement reads, split into ordering-relevant references
/// and references that may legally point forward (delay inputs read
/// committed state from the previous time point only).
fn stmt_refs(stmt: &IrStatement) -> (Vec<&str>, Vec<&str>) {
    let mut ordered: Vec<&str> = Vec::new();
    let mut late: Vec<&str> = Vec::new();
    match stmt {
        IrStatement::Probe { .. } => {}
        IrStatement::Impose { expr, .. } => ordered.push(expr),
        IrStatement::ImposeAcross { target, .. } => ordered.push(target),
        IrStatement::Derivative { input, .. } | IrStatement::Integral { input, .. } => {
            ordered.push(input)
        }
        IrStatement::UnitDelay { input, .. } => late.push(input),
        IrStatement::FixedDelay { input, td, .. } => {
            late.push(input);
            ordered.push(td);
        }
        IrStatement::FirstOrderLag { input, k, tau, .. } => {
            ordered.push(input);
            ordered.push(k);
            ordered.push(tau);
        }
        IrStatement::Assign { rhs, .. } => match rhs {
            IrRhs::Gain { a, input } => {
                ordered.push(a);
                ordered.push(input);
            }
            IrRhs::Sum { terms } => ordered.extend(terms.iter().map(|(_, t)| t.as_str())),
            IrRhs::Prod { factors } => ordered.extend(factors.iter().map(|(_, f)| f.as_str())),
            IrRhs::Limit { input, lo, hi } => {
                ordered.push(input);
                ordered.push(lo);
                ordered.push(hi);
            }
            IrRhs::PosPart { input } | IrRhs::NegPart { input } | IrRhs::Copy { input } => {
                ordered.push(input)
            }
            IrRhs::Func { args, .. } => ordered.extend(args.iter().map(String::as_str)),
        },
    }
    (ordered, late)
}

/// GABM020 — a statement reads a variable no earlier statement defined.
/// The topological ordering (§4.1) guarantees this never happens for IR
/// lowered from a consistent diagram, so a hit means hand-built or
/// corrupted IR.
fn check_use_before_def(ir: &CodeIr, diags: &mut Vec<Diagnostic>) {
    let mut defined: HashSet<&str> = BUILTINS.iter().copied().collect();
    for p in &ir.params {
        defined.insert(&p.name);
    }
    let all_targets: HashSet<&str> = ir
        .statements
        .iter()
        .filter_map(IrStatement::target_var)
        .collect();
    for (i, stmt) in ir.statements.iter().enumerate() {
        let (ordered, _) = stmt_refs(stmt);
        for expr in ordered {
            for name in idents(expr) {
                if !defined.contains(name) {
                    let why = if all_targets.contains(name) {
                        format!("variable '{name}' is read before its definition")
                    } else {
                        format!("variable '{name}' is never defined")
                    };
                    diags.push(Diagnostic::new(
                        Code::IrUseBeforeDef,
                        why,
                        Location::Statement(i),
                    ));
                }
            }
        }
        if let Some(var) = stmt.target_var() {
            defined.insert(var);
        }
    }
}

/// GABM021 — an assignment whose target no other statement reads (delay
/// inputs count as reads) contributes nothing to any imposed quantity.
fn check_dead_assignments(ir: &CodeIr, diags: &mut Vec<Diagnostic>) {
    let mut used: HashSet<&str> = HashSet::new();
    for stmt in &ir.statements {
        let (ordered, late) = stmt_refs(stmt);
        for expr in ordered.into_iter().chain(late) {
            used.extend(idents(expr));
        }
    }
    for (i, stmt) in ir.statements.iter().enumerate() {
        if let Some(var) = stmt.target_var() {
            if !used.contains(var) {
                diags.push(
                    Diagnostic::new(
                        Code::IrDeadAssignment,
                        format!("variable '{var}' is assigned but never read"),
                        Location::Statement(i),
                    )
                    .with_fix(Fix::new(
                        format!("remove the dead assignment to '{var}'"),
                        vec![FixEdit::RemoveIrStatement { index: i }],
                    )),
                );
            }
        }
    }
}

/// GABM022 — constant folding over lowered expressions: division by a
/// constant zero, intrinsic domain errors, and empty limit intervals that
/// are visible without running the model.
fn check_const_fold(ir: &CodeIr, diags: &mut Vec<Diagnostic>) {
    for (i, stmt) in ir.statements.iter().enumerate() {
        let IrStatement::Assign { rhs, .. } = stmt else {
            continue;
        };
        match rhs {
            IrRhs::Prod { factors } => {
                for (mul, factor) in factors {
                    if !mul && literal(factor) == Some(0.0) {
                        diags.push(Diagnostic::new(
                            Code::IrConstFoldError,
                            "division by constant zero".to_string(),
                            Location::Statement(i),
                        ));
                    }
                }
            }
            IrRhs::Limit { lo, hi, .. } => {
                if let (Some(l), Some(h)) = (literal(lo), literal(hi)) {
                    if l > h {
                        diags.push(
                            Diagnostic::new(
                                Code::IrConstFoldError,
                                format!("limit interval is empty: lo {l} > hi {h}"),
                                Location::Statement(i),
                            )
                            .with_fix(Fix::new(
                                "swap the limit bounds",
                                vec![FixEdit::SwapIrLimitBounds { index: i }],
                            )),
                        );
                    }
                }
            }
            IrRhs::Func { func, args } => {
                let vals: Vec<Option<f64>> = args.iter().map(|a| literal(a)).collect();
                let bad = match func {
                    FuncKind::Sqrt => vals[0].is_some_and(|v| v < 0.0),
                    FuncKind::Ln => vals[0].is_some_and(|v| v <= 0.0),
                    FuncKind::Pow => {
                        vals[0].is_some_and(|b| b < 0.0)
                            && vals[1].is_some_and(|e| e.fract() != 0.0)
                    }
                    _ => false,
                };
                if bad {
                    diags.push(Diagnostic::new(
                        Code::IrConstFoldError,
                        format!(
                            "constant argument outside the domain of {}",
                            func.code_name()
                        ),
                        Location::Statement(i),
                    ));
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gabm_codegen::IrParam;

    fn assign(id: usize, var: &str, rhs: IrRhs) -> IrStatement {
        IrStatement::Assign {
            id,
            var: var.to_string(),
            rhs,
        }
    }

    fn ir(statements: Vec<IrStatement>) -> CodeIr {
        CodeIr {
            model_name: "t".into(),
            pins: vec!["a".into()],
            params: vec![IrParam {
                name: "g".into(),
                default: 1.0,
                from_open_input: false,
            }],
            statements,
        }
    }

    #[test]
    fn idents_splits_lowered_expressions() {
        assert_eq!(idents("-rate"), vec!["rate"]);
        assert_eq!(idents("1e-6"), Vec::<&str>::new());
        assert_eq!(idents("yout7"), vec!["yout7"]);
    }

    #[test]
    fn use_before_def_detected() {
        let m = ir(vec![
            assign(1, "x", IrRhs::Copy { input: "y".into() }),
            assign(2, "y", IrRhs::Copy { input: "g".into() }),
            IrStatement::Impose {
                id: 3,
                pin: "a".into(),
                quantity: gabm_codegen::PinQuantity::Curr,
                expr: "x".into(),
            },
        ]);
        let diags = lint_ir(&m);
        let ubd: Vec<_> = diags
            .iter()
            .filter(|d| d.code == Code::IrUseBeforeDef)
            .collect();
        assert_eq!(ubd.len(), 1);
        assert!(ubd[0].message.contains("'y'"));
        assert_eq!(ubd[0].location, Location::Statement(0));
    }

    #[test]
    fn delay_input_may_point_forward() {
        let m = ir(vec![
            IrStatement::UnitDelay {
                id: 1,
                var: "ylast1".into(),
                input: "x".into(),
            },
            assign(
                2,
                "x",
                IrRhs::Copy {
                    input: "ylast1".into(),
                },
            ),
            IrStatement::Impose {
                id: 3,
                pin: "a".into(),
                quantity: gabm_codegen::PinQuantity::Curr,
                expr: "x".into(),
            },
        ]);
        let diags = lint_ir(&m);
        assert!(
            !diags.iter().any(|d| d.code == Code::IrUseBeforeDef),
            "{diags:?}"
        );
    }

    #[test]
    fn dead_assignment_detected() {
        let m = ir(vec![
            assign(1, "x", IrRhs::Copy { input: "g".into() }),
            assign(2, "orphan", IrRhs::Copy { input: "g".into() }),
            IrStatement::Impose {
                id: 3,
                pin: "a".into(),
                quantity: gabm_codegen::PinQuantity::Curr,
                expr: "x".into(),
            },
        ]);
        let diags = lint_ir(&m);
        let dead: Vec<_> = diags
            .iter()
            .filter(|d| d.code == Code::IrDeadAssignment)
            .collect();
        assert_eq!(dead.len(), 1);
        assert!(dead[0].message.contains("'orphan'"));
    }

    #[test]
    fn const_fold_reports_div_by_zero_and_domains() {
        let m = ir(vec![
            assign(
                1,
                "x",
                IrRhs::Prod {
                    factors: vec![(true, "g".into()), (false, "0".into())],
                },
            ),
            assign(
                2,
                "y",
                IrRhs::Func {
                    func: FuncKind::Sqrt,
                    args: vec!["-4".into()],
                },
            ),
            IrStatement::Impose {
                id: 3,
                pin: "a".into(),
                quantity: gabm_codegen::PinQuantity::Curr,
                expr: "x".into(),
            },
            IrStatement::Impose {
                id: 4,
                pin: "a".into(),
                quantity: gabm_codegen::PinQuantity::Curr,
                expr: "y".into(),
            },
        ]);
        let diags = lint_ir(&m);
        assert_eq!(
            diags
                .iter()
                .filter(|d| d.code == Code::IrConstFoldError)
                .count(),
            2
        );
    }
}
