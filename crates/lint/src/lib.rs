//! Static analysis for the GABM toolchain.
//!
//! `gabm-lint` runs diagnostics across the three representations a model
//! passes through:
//!
//! * **functional diagrams** — the §3.2 consistency rules (net drivers,
//!   port connections, dimension propagation) plus structural lints such
//!   as dead symbols, unused parameters, and algebraic loops with the full
//!   cycle path (§4.1);
//! * **lowered codegen IR** — dataflow over the ordered statement list
//!   every backend renders: use-before-definition, dead assignments, and
//!   constant-folding errors;
//! * **FAS source** — the same analyses applied to hand-written textual
//!   models (§4.2), located by line and column.
//!
//! Every finding carries a stable `GABM0xx` code, a severity, and a
//! location, and renders both human-readably and as JSON (see [`render`]).
//! The `gabm lint` command-line tool is a thin front end over
//! [`registry::lint_diagram`] and [`registry::lint_fas_source`].
//!
//! Beyond reporting, the linter *repairs*: diagnostics whose defect has a
//! single safe remedy carry a machine-applicable [`gabm_core::diag::Fix`],
//! and the [`fix`] module applies them to a fixpoint (`gabm lint --fix`).
//! Re-lints of unchanged inputs are served from a content-hash keyed
//! per-pass [`cache`].
//!
//! The diagram-level passes live in `gabm_core::check` so that the code
//! generator itself refuses any diagram with a lint error — the lint tool
//! and the generator can never disagree about validity.

pub mod cache;
pub mod fas;
pub mod fix;
pub mod ir;
pub mod registry;
pub mod render;

pub use cache::{content_hash, CacheStats, LintCache};
pub use fix::{attach_fas_fixes, fix_code_ir, fix_diagram, fix_fas_source, FixOutcome};
pub use gabm_core::diag::{Code, Diagnostic, Fix, FixEdit, Location, Severity};
pub use registry::{
    lint_diagram, lint_diagram_cached, lint_fas_source, lint_fas_source_cached, passes, Layer,
};
pub use render::{render_json, render_text, summarize, to_json, to_json_with_cache};
