//! Static analysis for the GABM toolchain.
//!
//! `gabm-lint` runs diagnostics across the three representations a model
//! passes through:
//!
//! * **functional diagrams** — the §3.2 consistency rules (net drivers,
//!   port connections, dimension propagation) plus structural lints such
//!   as dead symbols, unused parameters, and algebraic loops with the full
//!   cycle path (§4.1);
//! * **lowered codegen IR** — dataflow over the ordered statement list
//!   every backend renders: use-before-definition, dead assignments, and
//!   constant-folding errors;
//! * **FAS source** — the same analyses applied to hand-written textual
//!   models (§4.2), located by line and column.
//!
//! Every finding carries a stable `GABM0xx` code, a severity, and a
//! location, and renders both human-readably and as JSON (see [`render`]).
//! The `gabm lint` command-line tool is a thin front end over
//! [`registry::lint_diagram`] and [`registry::lint_fas_source`].
//!
//! The diagram-level passes live in `gabm_core::check` so that the code
//! generator itself refuses any diagram with a lint error — the lint tool
//! and the generator can never disagree about validity.

pub mod fas;
pub mod ir;
pub mod registry;
pub mod render;

pub use gabm_core::diag::{Code, Diagnostic, Location, Severity};
pub use registry::{lint_diagram, lint_fas_source, passes, Layer};
pub use render::{render_json, render_text, to_json};
