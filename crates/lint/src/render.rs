//! Human-readable and machine-readable rendering of lint results.

use crate::cache::CacheStats;
use gabm_core::diag::{Diagnostic, Severity};
use gabm_core::json::Value;

/// Counts diagnostics by severity: `(errors, warnings, notes)`.
///
/// Each severity is counted explicitly — "everything that is not an error
/// is a warning" silently misclassifies notes (and any severity added
/// later) and once over-reported the warning total.
pub fn summarize(diags: &[Diagnostic]) -> (usize, usize, usize) {
    let mut errors = 0;
    let mut warnings = 0;
    let mut notes = 0;
    for d in diags {
        match d.severity {
            Severity::Error => errors += 1,
            Severity::Warning => warnings += 1,
            Severity::Note => notes += 1,
        }
    }
    (errors, warnings, notes)
}

/// Renders diagnostics the way a compiler prints them: one block per
/// diagnostic, followed by a summary line.
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    let (errors, warnings, notes) = summarize(diags);
    if diags.is_empty() {
        out.push_str("no diagnostics\n");
    } else if notes > 0 {
        out.push_str(&format!(
            "{errors} error(s), {warnings} warning(s), {notes} note(s)\n"
        ));
    } else {
        out.push_str(&format!("{errors} error(s), {warnings} warning(s)\n"));
    }
    out
}

/// JSON form: `{"diagnostics": [...], "errors": n, "warnings": n, "notes": n}`.
pub fn to_json(diags: &[Diagnostic]) -> Value {
    let (errors, warnings, notes) = summarize(diags);
    Value::Object(vec![
        (
            "diagnostics".to_string(),
            Value::Array(diags.iter().map(Diagnostic::to_json).collect()),
        ),
        ("errors".to_string(), Value::Number(errors as f64)),
        ("warnings".to_string(), Value::Number(warnings as f64)),
        ("notes".to_string(), Value::Number(notes as f64)),
    ])
}

/// [`to_json`] plus a `"cache"` object reporting pass-execution accounting
/// for the run: `{"passes_total": n, "passes_run": n, "passes_skipped": n}`.
pub fn to_json_with_cache(diags: &[Diagnostic], stats: &CacheStats) -> Value {
    let Value::Object(mut fields) = to_json(diags) else {
        unreachable!("to_json always returns an object");
    };
    fields.push((
        "cache".to_string(),
        Value::Object(vec![
            (
                "passes_total".to_string(),
                Value::Number(stats.total() as f64),
            ),
            (
                "passes_run".to_string(),
                Value::Number(stats.passes_run as f64),
            ),
            (
                "passes_skipped".to_string(),
                Value::Number(stats.passes_skipped as f64),
            ),
        ]),
    ));
    Value::Object(fields)
}

/// [`to_json`] serialized to text.
pub fn render_json(diags: &[Diagnostic]) -> String {
    to_json(diags).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gabm_core::diag::{Code, Location};

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic::new(
                Code::UndrivenNet,
                "net 'n1' has no driver".to_string(),
                Location::None,
            ),
            Diagnostic::new(
                Code::FasUnusedVariable,
                "variable 'x' is assigned but never used".to_string(),
                Location::Source { line: 3, col: 1 },
            ),
        ]
    }

    fn with_note() -> Vec<Diagnostic> {
        let mut diags = sample();
        let mut note = Diagnostic::new(
            Code::FasDeadBranch,
            "condition is always true; the else branch never runs".to_string(),
            Location::Source { line: 5, col: 1 },
        );
        note.severity = Severity::Note;
        diags.push(note);
        diags
    }

    #[test]
    fn text_includes_codes_and_summary() {
        let text = render_text(&sample());
        assert!(text.contains("error[GABM002]"));
        assert!(text.contains("warning[GABM031]"));
        assert!(text.contains("1 error(s), 1 warning(s)"));
        assert!(render_text(&[]).contains("no diagnostics"));
    }

    #[test]
    fn json_roundtrips_with_counts() {
        let v = Value::parse(&render_json(&sample())).expect("valid JSON");
        assert_eq!(v.get("errors").and_then(Value::as_f64), Some(1.0));
        assert_eq!(v.get("warnings").and_then(Value::as_f64), Some(1.0));
        assert_eq!(v.get("notes").and_then(Value::as_f64), Some(0.0));
        let diags = v.get("diagnostics").unwrap();
        match diags {
            Value::Array(items) => assert_eq!(items.len(), 2),
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn notes_are_not_counted_as_warnings() {
        let diags = with_note();
        let (errors, warnings, notes) = summarize(&diags);
        assert_eq!((errors, warnings, notes), (1, 1, 1));
        let v = to_json(&diags);
        assert_eq!(v.get("warnings").and_then(Value::as_f64), Some(1.0));
        assert_eq!(v.get("notes").and_then(Value::as_f64), Some(1.0));
        let text = render_text(&diags);
        assert!(text.contains("1 error(s), 1 warning(s), 1 note(s)"));
    }

    #[test]
    fn cache_stats_appear_in_json() {
        let stats = CacheStats {
            passes_run: 3,
            passes_skipped: 12,
        };
        let v = to_json_with_cache(&sample(), &stats);
        let cache = v.get("cache").expect("cache object");
        assert_eq!(
            cache.get("passes_total").and_then(Value::as_f64),
            Some(15.0)
        );
        assert_eq!(cache.get("passes_run").and_then(Value::as_f64), Some(3.0));
        assert_eq!(
            cache.get("passes_skipped").and_then(Value::as_f64),
            Some(12.0)
        );
    }
}
