//! Human-readable and machine-readable rendering of lint results.

use gabm_core::diag::{Diagnostic, Severity};
use gabm_core::json::Value;

/// Renders diagnostics the way a compiler prints them: one block per
/// diagnostic, followed by a summary line.
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    if diags.is_empty() {
        out.push_str("no diagnostics\n");
    } else {
        out.push_str(&format!("{errors} error(s), {warnings} warning(s)\n"));
    }
    out
}

/// JSON form: `{"diagnostics": [...], "errors": n, "warnings": n}`.
pub fn to_json(diags: &[Diagnostic]) -> Value {
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    Value::Object(vec![
        (
            "diagnostics".to_string(),
            Value::Array(diags.iter().map(Diagnostic::to_json).collect()),
        ),
        ("errors".to_string(), Value::Number(errors as f64)),
        ("warnings".to_string(), Value::Number(warnings as f64)),
    ])
}

/// [`to_json`] serialized to text.
pub fn render_json(diags: &[Diagnostic]) -> String {
    to_json(diags).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gabm_core::diag::{Code, Location};

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic::new(
                Code::UndrivenNet,
                "net 'n1' has no driver".to_string(),
                Location::None,
            ),
            Diagnostic::new(
                Code::FasUnusedVariable,
                "variable 'x' is assigned but never used".to_string(),
                Location::Source { line: 3, col: 1 },
            ),
        ]
    }

    #[test]
    fn text_includes_codes_and_summary() {
        let text = render_text(&sample());
        assert!(text.contains("error[GABM002]"));
        assert!(text.contains("warning[GABM031]"));
        assert!(text.contains("1 error(s), 1 warning(s)"));
        assert!(render_text(&[]).contains("no diagnostics"));
    }

    #[test]
    fn json_roundtrips_with_counts() {
        let v = Value::parse(&render_json(&sample())).expect("valid JSON");
        assert_eq!(v.get("errors").and_then(Value::as_f64), Some(1.0));
        assert_eq!(v.get("warnings").and_then(Value::as_f64), Some(1.0));
        let diags = v.get("diagnostics").unwrap();
        match diags {
            Value::Array(items) => assert_eq!(items.len(), 2),
            other => panic!("expected array, got {other:?}"),
        }
    }
}
