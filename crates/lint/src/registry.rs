//! The pass registry: one place that knows every analysis the toolchain
//! can run, across all three representations.

use crate::fas::{lint_fas, FAS_PASSES};
use crate::ir::{lint_ir, IR_PASSES};
use gabm_codegen::{lower, CodeIr, CodegenError};
use gabm_core::check::DIAGRAM_PASSES;
use gabm_core::diag::Diagnostic;
use gabm_core::diagram::FunctionalDiagram;
use gabm_core::Severity;
use gabm_fas::ast::Model;
use gabm_fas::FasError;

/// Analysis layer a pass belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layer {
    /// Functional-diagram consistency (§3.2/§4.1).
    Diagram,
    /// Lowered codegen IR dataflow.
    Ir,
    /// FAS source.
    Fas,
}

impl std::fmt::Display for Layer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Layer::Diagram => write!(f, "diagram"),
            Layer::Ir => write!(f, "ir"),
            Layer::Fas => write!(f, "fas"),
        }
    }
}

/// Every registered pass, as `(layer, name)` pairs in execution order.
pub fn passes() -> Vec<(Layer, &'static str)> {
    let mut out = Vec::new();
    out.extend(DIAGRAM_PASSES.iter().map(|(n, _)| (Layer::Diagram, *n)));
    out.extend(IR_PASSES.iter().map(|(n, _)| (Layer::Ir, *n)));
    out.extend(FAS_PASSES.iter().map(|(n, _)| (Layer::Fas, *n)));
    out
}

/// Lints a diagram end to end: all diagram-level passes first, then — when
/// the diagram is clean enough to lower (no errors) — the dataflow passes
/// over its lowered IR.
///
/// Mirrors what `gabm_codegen::generate` enforces: a diagram with errors
/// never reaches lowering, so IR diagnostics only appear on diagrams the
/// generator would accept.
pub fn lint_diagram(diagram: &FunctionalDiagram) -> Vec<Diagnostic> {
    let report = gabm_core::check_diagram(diagram);
    let mut diags = report.diagnostics;
    let has_errors = diags.iter().any(|d| d.severity == Severity::Error);
    if !has_errors {
        match lower(diagram) {
            Ok(ir) => diags.extend(lint_ir(&ir)),
            // Lowering can still refuse (e.g. unsupported feature); that is
            // a generation failure, not a lint finding.
            Err(CodegenError::Inconsistent(r)) => diags.extend(r.diagnostics),
            Err(_) => {}
        }
    }
    diags
}

/// Lints a hand-built or externally produced [`CodeIr`].
pub fn lint_code_ir(ir: &CodeIr) -> Vec<Diagnostic> {
    lint_ir(ir)
}

/// Lints a parsed FAS model.
pub fn lint_fas_model(model: &Model) -> Vec<Diagnostic> {
    lint_fas(model)
}

/// Parses and lints FAS source text.
///
/// # Errors
///
/// Propagates parse errors ([`FasError`]); lint findings on a model that
/// parses are returned as diagnostics, never as errors.
pub fn lint_fas_source(src: &str) -> Result<Vec<Diagnostic>, FasError> {
    let model = gabm_fas::parse(src)?;
    Ok(lint_fas(&model))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gabm_core::constructs::InputStageSpec;
    use gabm_core::diag::Code;
    use gabm_core::symbol::SymbolKind;

    #[test]
    fn registry_lists_all_layers() {
        let all = passes();
        assert!(all.iter().any(|(l, _)| *l == Layer::Diagram));
        assert!(all.iter().any(|(l, _)| *l == Layer::Ir));
        assert!(all.iter().any(|(l, _)| *l == Layer::Fas));
        // Pass names are unique across layers.
        let mut names: Vec<_> = all.iter().map(|(_, n)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn clean_construct_lints_clean_through_ir() {
        let d = InputStageSpec::new("in", 1e-6, 5e-12).diagram().unwrap();
        let diags = lint_diagram(&d);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn erroneous_diagram_reports_without_lowering() {
        let mut d = FunctionalDiagram::new("bad");
        let g = d.add_symbol(SymbolKind::Gain); // no 'a', dangling ports
        let _ = g;
        let diags = lint_diagram(&d);
        assert!(diags.iter().any(|d| d.code == Code::MissingProperty));
    }

    #[test]
    fn fas_source_lints_from_text() {
        let src = "model t pin(a, b) analog\nmake x = volt.value(a)\nmake dead = 1\nmake curr.on(b) = x\nendanalog endmodel\n";
        let diags = lint_fas_source(src).unwrap();
        assert!(diags.iter().any(|d| d.code == Code::FasUnusedVariable));
    }
}
