//! The pass registry: one place that knows every analysis the toolchain
//! can run, across all three representations.

use crate::cache::{content_hash, LintCache, PassResults};
use crate::fas::{lint_fas, FAS_PASSES};
use crate::fix::attach_fas_fixes;
use crate::ir::{lint_ir, IR_PASSES};
use gabm_codegen::{lower, CodeIr, CodegenError};
use gabm_core::check::{CheckReport, DIAGRAM_PASSES};
use gabm_core::diag::Diagnostic;
use gabm_core::diagram::FunctionalDiagram;
use gabm_core::Severity;
use gabm_fas::ast::Model;
use gabm_fas::FasError;

/// Analysis layer a pass belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layer {
    /// Functional-diagram consistency (§3.2/§4.1).
    Diagram,
    /// Lowered codegen IR dataflow.
    Ir,
    /// FAS source.
    Fas,
}

impl std::fmt::Display for Layer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Layer::Diagram => write!(f, "diagram"),
            Layer::Ir => write!(f, "ir"),
            Layer::Fas => write!(f, "fas"),
        }
    }
}

/// Every registered pass, as `(layer, name)` pairs in execution order.
pub fn passes() -> Vec<(Layer, &'static str)> {
    let mut out = Vec::new();
    out.extend(DIAGRAM_PASSES.iter().map(|(n, _)| (Layer::Diagram, *n)));
    out.extend(IR_PASSES.iter().map(|(n, _)| (Layer::Ir, *n)));
    out.extend(FAS_PASSES.iter().map(|(n, _)| (Layer::Fas, *n)));
    out
}

/// Lints a diagram end to end: all diagram-level passes first, then — when
/// the diagram is clean enough to lower (no errors) — the dataflow passes
/// over its lowered IR.
///
/// Mirrors what `gabm_codegen::generate` enforces: a diagram with errors
/// never reaches lowering, so IR diagnostics only appear on diagrams the
/// generator would accept.
pub fn lint_diagram(diagram: &FunctionalDiagram) -> Vec<Diagnostic> {
    let report = gabm_core::check_diagram(diagram);
    let mut diags = report.diagnostics;
    let has_errors = diags.iter().any(|d| d.severity == Severity::Error);
    if !has_errors {
        match lower(diagram) {
            Ok(ir) => diags.extend(lint_ir(&ir)),
            // Lowering can still refuse (e.g. unsupported feature); that is
            // a generation failure, not a lint finding.
            Err(CodegenError::Inconsistent(r)) => diags.extend(r.diagnostics),
            Err(_) => {}
        }
    }
    diags
}

/// Lints a hand-built or externally produced [`CodeIr`].
pub fn lint_code_ir(ir: &CodeIr) -> Vec<Diagnostic> {
    lint_ir(ir)
}

/// Lints a parsed FAS model.
pub fn lint_fas_model(model: &Model) -> Vec<Diagnostic> {
    lint_fas(model)
}

/// Parses and lints FAS source text.
///
/// # Errors
///
/// Propagates parse errors ([`FasError`]); lint findings on a model that
/// parses are returned as diagnostics, never as errors.
pub fn lint_fas_source(src: &str) -> Result<Vec<Diagnostic>, FasError> {
    let model = gabm_fas::parse(src)?;
    let mut diags = lint_fas(&model);
    attach_fas_fixes(src, &mut diags);
    Ok(diags)
}

fn flatten(results: PassResults) -> Vec<Diagnostic> {
    results.into_iter().flat_map(|(_, d)| d).collect()
}

/// [`lint_fas_source`] with per-pass result caching keyed by the source's
/// content hash. A hit replays every pass's diagnostics (fixes included)
/// without parsing or analysing; a miss runs the passes individually so
/// their results can be stored for the next run.
///
/// # Errors
///
/// Propagates parse errors ([`FasError`]) on a cache miss; a hit cannot
/// fail (an unparseable source never produced a cache entry).
pub fn lint_fas_source_cached(
    src: &str,
    cache: &mut LintCache,
) -> Result<Vec<Diagnostic>, FasError> {
    let key = content_hash(src);
    if let Some(stored) = cache.load("fas", key) {
        return Ok(flatten(stored));
    }
    let model = gabm_fas::parse(src)?;
    let mut results: PassResults = Vec::with_capacity(FAS_PASSES.len());
    for (name, pass) in FAS_PASSES {
        let mut diags = Vec::new();
        pass(&model, &mut diags);
        attach_fas_fixes(src, &mut diags);
        cache.stats.passes_run += 1;
        results.push(((*name).to_string(), diags));
    }
    cache.store("fas", key, &results);
    Ok(flatten(results))
}

/// [`lint_diagram`] with per-pass result caching keyed by the content hash
/// of the diagram's serialized JSON (`src_text`). Diagram passes share no
/// state through the [`CheckReport`] (dimension inference both derives and
/// reports within one pass), so running each into a fresh report yields
/// the same diagnostics in the same order as [`gabm_core::check_diagram`].
pub fn lint_diagram_cached(
    diagram: &FunctionalDiagram,
    src_text: &str,
    cache: &mut LintCache,
) -> Vec<Diagnostic> {
    let key = content_hash(src_text);
    if let Some(stored) = cache.load("diagram", key) {
        return flatten(stored);
    }
    let mut results: PassResults = Vec::with_capacity(DIAGRAM_PASSES.len() + IR_PASSES.len());
    for (name, pass) in DIAGRAM_PASSES {
        let mut report = CheckReport::default();
        pass(diagram, &mut report);
        cache.stats.passes_run += 1;
        results.push(((*name).to_string(), report.diagnostics));
    }
    let has_errors = results
        .iter()
        .flat_map(|(_, d)| d)
        .any(|d| d.severity == Severity::Error);
    if !has_errors {
        match lower(diagram) {
            Ok(ir) => {
                for (name, pass) in IR_PASSES {
                    let mut diags = Vec::new();
                    pass(&ir, &mut diags);
                    cache.stats.passes_run += 1;
                    results.push(((*name).to_string(), diags));
                }
            }
            Err(CodegenError::Inconsistent(r)) => {
                results.push(("lowering".to_string(), r.diagnostics));
            }
            Err(_) => {}
        }
    }
    cache.store("diagram", key, &results);
    flatten(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gabm_core::constructs::InputStageSpec;
    use gabm_core::diag::Code;
    use gabm_core::symbol::SymbolKind;

    #[test]
    fn registry_lists_all_layers() {
        let all = passes();
        assert!(all.iter().any(|(l, _)| *l == Layer::Diagram));
        assert!(all.iter().any(|(l, _)| *l == Layer::Ir));
        assert!(all.iter().any(|(l, _)| *l == Layer::Fas));
        // Pass names are unique across layers.
        let mut names: Vec<_> = all.iter().map(|(_, n)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn clean_construct_lints_clean_through_ir() {
        let d = InputStageSpec::new("in", 1e-6, 5e-12).diagram().unwrap();
        let diags = lint_diagram(&d);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn erroneous_diagram_reports_without_lowering() {
        let mut d = FunctionalDiagram::new("bad");
        let g = d.add_symbol(SymbolKind::Gain); // no 'a', dangling ports
        let _ = g;
        let diags = lint_diagram(&d);
        assert!(diags.iter().any(|d| d.code == Code::MissingProperty));
    }

    #[test]
    fn fas_source_lints_from_text() {
        let src = "model t pin(a, b) analog\nmake x = volt.value(a)\nmake dead = 1\nmake curr.on(b) = x\nendanalog endmodel\n";
        let diags = lint_fas_source(src).unwrap();
        let unused = diags
            .iter()
            .find(|d| d.code == Code::FasUnusedVariable)
            .expect("unused-variable diagnostic");
        assert!(unused.fix.is_some(), "source lint attaches autofixes");
    }

    #[test]
    fn cached_fas_lint_matches_uncached_and_hits_on_second_run() {
        let src = "model t pin(a, b) analog\nmake x = volt.value(a)\nmake dead = 1\nmake curr.on(b) = x\nendanalog endmodel\n";
        let dir = std::env::temp_dir().join(format!("gabm-reg-fas-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cache = LintCache::new(dir.clone());
        let cold = lint_fas_source_cached(src, &mut cache).unwrap();
        assert_eq!(cold, lint_fas_source(src).unwrap());
        assert_eq!(cache.stats.passes_run, FAS_PASSES.len());
        assert_eq!(cache.stats.passes_skipped, 0);

        let mut warm = LintCache::new(dir.clone());
        let replayed = lint_fas_source_cached(src, &mut warm).unwrap();
        assert_eq!(replayed, cold);
        assert_eq!(warm.stats.passes_run, 0);
        assert_eq!(warm.stats.passes_skipped, FAS_PASSES.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cached_diagram_lint_matches_uncached_and_hits_on_second_run() {
        let d = InputStageSpec::new("in", 1e-6, 5e-12).diagram().unwrap();
        let text = gabm_core::json::to_string_pretty(&d);
        let dir = std::env::temp_dir().join(format!("gabm-reg-diag-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cache = LintCache::new(dir.clone());
        let cold = lint_diagram_cached(&d, &text, &mut cache);
        assert_eq!(cold, lint_diagram(&d));
        assert_eq!(
            cache.stats.passes_run,
            DIAGRAM_PASSES.len() + IR_PASSES.len()
        );

        let mut warm = LintCache::new(dir.clone());
        assert_eq!(lint_diagram_cached(&d, &text, &mut warm), cold);
        assert_eq!(warm.stats.passes_run, 0);
        assert_eq!(
            warm.stats.passes_skipped,
            DIAGRAM_PASSES.len() + IR_PASSES.len()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn erroneous_diagram_cached_skips_ir_passes() {
        let mut d = FunctionalDiagram::new("bad");
        let _ = d.add_symbol(SymbolKind::Gain);
        let text = gabm_core::json::to_string_pretty(&d);
        let mut cache = LintCache::disabled();
        let diags = lint_diagram_cached(&d, &text, &mut cache);
        assert_eq!(diags, lint_diagram(&d));
        assert_eq!(cache.stats.passes_run, DIAGRAM_PASSES.len());
    }
}
