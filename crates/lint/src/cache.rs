//! Incremental re-lint cache: per-pass results keyed by a content hash.
//!
//! Linting a large model library re-reads mostly unchanged inputs. Every
//! pass is a pure function of its input text (diagram JSON or FAS
//! source), so its diagnostics — fixes included — can be replayed from
//! disk whenever the input's content hash matches. Entries live under
//! `target/gabm-lint-cache/` (override with `GABM_LINT_CACHE_DIR`) as one
//! JSON file per `(layer, content-hash)` pair, written with `core::json`.
//!
//! Invalidation is the file name: any edit to the input changes its
//! FNV-1a hash and so misses the cache; stale entries are simply never
//! read again. A `version` field guards against diagnostic-schema drift
//! across toolchain versions. All I/O is best-effort — a missing,
//! corrupt, or unwritable cache degrades to a cold run, never an error.

use gabm_core::diag::Diagnostic;
use gabm_core::json::Value;
use std::fs;
use std::path::PathBuf;

/// Bump when the serialized diagnostic shape changes; mismatching entries
/// are treated as misses.
const FORMAT_VERSION: f64 = 1.0;

/// 64-bit FNV-1a hash of the input text: fast, dependency-free, and
/// stable across runs and platforms.
pub fn content_hash(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Pass-execution accounting for one lint run, reported in the JSON
/// output so speedups are measurable ("passes skipped" is the metric: a
/// warm re-lint of unchanged inputs runs zero passes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Passes actually executed.
    pub passes_run: usize,
    /// Passes whose stored results were replayed.
    pub passes_skipped: usize,
}

impl CacheStats {
    /// Total passes accounted for.
    pub fn total(&self) -> usize {
        self.passes_run + self.passes_skipped
    }
}

/// The diagnostics of every pass that ran on one input, in execution
/// order. What [`LintCache`] stores and replays.
pub type PassResults = Vec<(String, Vec<Diagnostic>)>;

/// A directory-backed per-pass result cache. A disabled cache (no
/// directory) still counts executed passes, so `--no-cache` runs report
/// comparable stats.
#[derive(Debug)]
pub struct LintCache {
    dir: Option<PathBuf>,
    /// Accounting across every lookup/run on this cache.
    pub stats: CacheStats,
}

impl LintCache {
    /// A cache rooted at `dir` (created lazily on first store).
    pub fn new(dir: PathBuf) -> Self {
        LintCache {
            dir: Some(dir),
            stats: CacheStats::default(),
        }
    }

    /// A cache that never hits and never writes (`--no-cache`).
    pub fn disabled() -> Self {
        LintCache {
            dir: None,
            stats: CacheStats::default(),
        }
    }

    /// The default cache root: `$GABM_LINT_CACHE_DIR` or
    /// `target/gabm-lint-cache` relative to the working directory.
    pub fn default_dir() -> PathBuf {
        std::env::var_os("GABM_LINT_CACHE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("target").join("gabm-lint-cache"))
    }

    fn entry_path(&self, layer: &str, key: u64) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{layer}-{key:016x}.json")))
    }

    /// Replays the stored pass results for `(layer, key)`, if present and
    /// well-formed. Updates the skip counter on a hit.
    pub fn load(&mut self, layer: &str, key: u64) -> Option<PassResults> {
        let path = self.entry_path(layer, key)?;
        let text = fs::read_to_string(path).ok()?;
        let value = Value::parse(&text).ok()?;
        if value.get("version").and_then(Value::as_f64) != Some(FORMAT_VERSION) {
            return None;
        }
        let mut out = Vec::new();
        for entry in value.get("passes")?.as_array()? {
            let name = entry.get("name")?.as_str()?.to_string();
            let mut diags = Vec::new();
            for d in entry.get("diagnostics")?.as_array()? {
                diags.push(Diagnostic::from_json(d).ok()?);
            }
            out.push((name, diags));
        }
        self.stats.passes_skipped += out.len();
        Some(out)
    }

    /// Stores the pass results for `(layer, key)`. Best-effort: failures
    /// to create the directory or write the file are ignored.
    pub fn store(&self, layer: &str, key: u64, passes: &PassResults) {
        let Some(path) = self.entry_path(layer, key) else {
            return;
        };
        if let Some(parent) = path.parent() {
            if fs::create_dir_all(parent).is_err() {
                return;
            }
        }
        let value = Value::Object(vec![
            ("version".to_string(), Value::Number(FORMAT_VERSION)),
            (
                "passes".to_string(),
                Value::Array(
                    passes
                        .iter()
                        .map(|(name, diags)| {
                            Value::Object(vec![
                                ("name".to_string(), Value::String(name.clone())),
                                (
                                    "diagnostics".to_string(),
                                    Value::Array(diags.iter().map(Diagnostic::to_json).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        let _ = fs::write(path, value.to_pretty());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gabm_core::diag::{Code, Fix, FixEdit, Location};

    #[test]
    fn fnv1a_matches_reference_vectors() {
        assert_eq!(content_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(content_hash("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(content_hash("foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn disabled_cache_never_hits() {
        let mut cache = LintCache::disabled();
        cache.store("fas", 1, &vec![("p".to_string(), Vec::new())]);
        assert!(cache.load("fas", 1).is_none());
        assert_eq!(cache.stats.passes_skipped, 0);
    }

    #[test]
    fn round_trips_pass_results_with_fixes() {
        let dir = std::env::temp_dir().join(format!("gabm-lint-cache-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut cache = LintCache::new(dir.clone());
        let diag = Diagnostic::new(
            Code::FasUnusedVariable,
            "variable 'x' is assigned but never used",
            Location::Source { line: 3, col: 1 },
        )
        .with_fix(Fix::new(
            "delete the unused assignment",
            vec![FixEdit::ReplaceText {
                start: 40,
                end: 61,
                text: String::new(),
            }],
        ));
        let results: PassResults = vec![
            ("fas-use-before-def".to_string(), Vec::new()),
            ("fas-unused-variables".to_string(), vec![diag]),
        ];
        cache.store("fas", 42, &results);
        assert_eq!(cache.load("fas", 42), Some(results));
        assert_eq!(cache.stats.passes_skipped, 2);
        assert!(cache.load("fas", 43).is_none(), "different key misses");
        assert!(cache.load("diagram", 42).is_none(), "layers are separate");
        let _ = fs::remove_dir_all(&dir);
    }
}
