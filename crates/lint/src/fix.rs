//! Machine-applicable fix synthesis and application.
//!
//! The reporting half of the method (§3.2's consistency test) tells the
//! modeller what is wrong; this module is the repairing half: it attaches
//! a [`Fix`] to every finding where a safe, behaviour-preserving (or
//! behaviour-restoring) edit exists, and applies non-overlapping fixes
//! until a fixpoint is reached.
//!
//! Three edit vocabularies, one per representation:
//!
//! * **FAS source** — byte-span text edits ([`FixEdit::ReplaceText`]),
//!   synthesized here from the token stream so spans are exact even with
//!   trailing comments and multi-line statements;
//! * **diagrams** — structured symbol/net edits applied through
//!   [`FunctionalDiagram`]'s mutation API;
//! * **lowered IR** — statement-index edits on [`CodeIr`].
//!
//! Application is atomic per fix and conservative across fixes: a fix
//! whose edits overlap edits already accepted in the same round is
//! refused and picked up (or invalidated) by the next re-lint round.

use gabm_codegen::{CodeIr, IrRhs, IrStatement};
use gabm_core::diag::{Code, Diagnostic, Fix, FixEdit, Location};
use gabm_core::diagram::{FunctionalDiagram, SymbolId};
use gabm_fas::lexer::{tokenize, Spanned, Token};
use gabm_fas::{FasError, Pos};

/// Upper bound on fix→re-lint rounds; reaching it means a fix oscillates,
/// which would be a bug in fix synthesis.
const MAX_ROUNDS: usize = 16;

/// What a fixpoint run did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FixOutcome {
    /// Number of fix→re-lint rounds executed (0 if nothing was fixable).
    pub rounds: usize,
    /// Fixes applied across all rounds.
    pub applied: usize,
    /// Fixes refused because their edits overlapped an accepted fix (they
    /// are retried on the next round, so a non-zero count here with a
    /// clean final lint is normal).
    pub refused: usize,
    /// Distinct diagnostic codes repaired, in first-seen order.
    pub fixed_codes: Vec<Code>,
    /// Diagnostics still present after the final re-lint.
    pub remaining: Vec<Diagnostic>,
}

impl FixOutcome {
    fn record(&mut self, code: Code) {
        if !self.fixed_codes.contains(&code) {
            self.fixed_codes.push(code);
        }
        self.applied += 1;
    }
}

// ---------------------------------------------------------------------------
// FAS source: fix synthesis from the token stream
// ---------------------------------------------------------------------------

/// Byte offset of the start of every line (index 0 = line 1).
fn line_starts(src: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in src.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// Context shared by the per-diagnostic FAS fix builders.
struct FasSpans<'a> {
    src: &'a str,
    tokens: Vec<Spanned>,
    starts: Vec<usize>,
}

/// Keywords that begin or close a statement; a statement's token extent
/// runs from its first token to the next boundary keyword.
const BOUNDARY_KEYWORDS: &[&str] = &["make", "if", "else", "endif", "endanalog"];

impl<'a> FasSpans<'a> {
    fn new(src: &'a str) -> Option<Self> {
        let tokens = tokenize(src).ok()?;
        Some(FasSpans {
            src,
            tokens,
            starts: line_starts(src),
        })
    }

    /// Byte offset of a token position.
    fn offset(&self, pos: Pos) -> usize {
        self.starts[pos.line - 1] + pos.col - 1
    }

    /// Byte offset one past the end of `line` (after its `\n`).
    fn line_end(&self, line: usize) -> usize {
        if line < self.starts.len() {
            self.starts[line]
        } else {
            self.src.len()
        }
    }

    /// Index of the token at exactly this source position.
    fn token_at(&self, line: usize, col: usize) -> Option<usize> {
        self.tokens
            .iter()
            .position(|t| t.pos.line == line && t.pos.col == col)
    }

    /// Index of the first boundary keyword at or after `from`.
    fn next_boundary(&self, from: usize) -> usize {
        (from..self.tokens.len())
            .find(|&i| match &self.tokens[i].token {
                Token::Ident(s) => BOUNDARY_KEYWORDS.contains(&s.as_str()),
                Token::Eof => true,
                _ => false,
            })
            .unwrap_or(self.tokens.len() - 1)
    }

    /// Deletion span for the statement whose first token is `start`: from
    /// that token through either the start of the next boundary token (if
    /// it shares a line with the statement's last token) or the end of the
    /// last token's line, newline included.
    fn stmt_deletion_span(&self, start: usize) -> (usize, usize) {
        let s = self.offset(self.tokens[start].pos);
        let boundary = self.next_boundary(start + 1);
        let last = &self.tokens[boundary - 1];
        let bnd = &self.tokens[boundary];
        if matches!(bnd.token, Token::Eof) || bnd.pos.line > last.pos.line {
            (s, self.line_end(last.pos.line))
        } else {
            (s, self.offset(bnd.pos))
        }
    }

    /// For the `if` statement whose `if` token is `start`, the indices of
    /// its `then`, optional depth-0 `else`, and matching `endif` tokens.
    fn if_shape(&self, start: usize) -> Option<(usize, Option<usize>, usize)> {
        let mut then_idx = None;
        let mut else_idx = None;
        let mut depth = 0usize;
        for i in start + 1..self.tokens.len() {
            let Token::Ident(s) = &self.tokens[i].token else {
                continue;
            };
            match s.as_str() {
                "if" => depth += 1,
                "then" if depth == 0 && then_idx.is_none() => then_idx = Some(i),
                "else" if depth == 0 => else_idx = Some(i),
                "endif" => {
                    if depth == 0 {
                        return Some((then_idx?, else_idx, i));
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        None
    }

    /// Trimmed text span starting at token `first` and ending before token
    /// `stop` (used for `limit` argument swapping).
    fn arg_span(&self, first: usize, stop: usize) -> (usize, usize) {
        let s = self.offset(self.tokens[first].pos);
        let e = self.offset(self.tokens[stop].pos);
        let trimmed = self.src[s..e].trim_end();
        (s, s + trimmed.len())
    }
}

/// Attaches text-span fixes to FAS diagnostics that support them
/// (GABM031 unused variable, GABM032 dead branch, GABM035 degenerate
/// limit). Diagnostics whose repair would be ambiguous — e.g. more than
/// one `limit` call in the offending statement — are left without a fix.
pub fn attach_fas_fixes(src: &str, diags: &mut [Diagnostic]) {
    let Some(spans) = FasSpans::new(src) else {
        return;
    };
    for diag in diags.iter_mut() {
        let Location::Source { line, col } = diag.location else {
            continue;
        };
        let Some(start) = spans.token_at(line, col) else {
            continue;
        };
        diag.fix = match diag.code {
            Code::FasUnusedVariable => {
                let (s, e) = spans.stmt_deletion_span(start);
                Some(Fix::new(
                    "delete the unused assignment",
                    vec![FixEdit::ReplaceText {
                        start: s,
                        end: e,
                        text: String::new(),
                    }],
                ))
            }
            Code::FasDeadBranch => dead_branch_fix(&spans, start, &diag.message),
            Code::FasDegenerateLimit => degenerate_limit_fix(&spans, start),
            _ => continue,
        };
    }
}

/// Unwraps an `if` whose condition folds to a constant: the taken branch
/// is kept in place, the keywords and the dead branch are deleted.
fn dead_branch_fix(spans: &FasSpans<'_>, start: usize, message: &str) -> Option<Fix> {
    let (then_idx, else_idx, endif_idx) = spans.if_shape(start)?;
    let dead_then = message.contains("the then branch");
    let if_off = spans.offset(spans.tokens[start].pos);
    let endif_off = spans.offset(spans.tokens[endif_idx].pos);
    let endif_end = endif_off + "endif".len();
    let delete = |s: usize, e: usize| FixEdit::ReplaceText {
        start: s,
        end: e,
        text: String::new(),
    };
    let edits = if dead_then {
        match else_idx {
            // `if (c) then DEAD else KEPT endif` → keep the else branch:
            // delete through the first kept token, and the `endif`.
            Some(e) => vec![
                delete(if_off, spans.offset(spans.tokens[e + 1].pos)),
                delete(endif_off, endif_end),
            ],
            // No else branch: the whole block is dead text.
            None => vec![delete(if_off, endif_end)],
        }
    } else {
        // `if (c) then KEPT [else DEAD] endif` → keep the then branch.
        let kept_start = spans.offset(spans.tokens[then_idx + 1].pos);
        let mut edits = vec![delete(if_off, kept_start)];
        match else_idx {
            Some(e) => edits.push(delete(spans.offset(spans.tokens[e].pos), endif_end)),
            None => edits.push(delete(endif_off, endif_end)),
        }
        edits
    };
    Some(Fix::new(
        if dead_then {
            "delete the dead then branch and unwrap the if"
        } else {
            "delete the dead else branch and unwrap the if"
        },
        edits,
    ))
}

/// Swaps the `lo`/`hi` argument texts of the single `limit` call in the
/// statement at token `start`. Returns `None` (no fix) when the statement
/// holds more than one `limit` call: the diagnostic's statement-level
/// anchor cannot tell them apart.
fn degenerate_limit_fix(spans: &FasSpans<'_>, start: usize) -> Option<Fix> {
    let boundary = spans.next_boundary(start + 1);
    let mut calls = Vec::new();
    for i in start..boundary.saturating_sub(1) {
        if let Token::Ident(s) = &spans.tokens[i].token {
            if s == "limit" && matches!(spans.tokens[i + 1].token, Token::LParen) {
                calls.push(i);
            }
        }
    }
    let [call] = calls[..] else {
        return None; // zero or ambiguous: several limit calls in one statement
    };
    // Split the argument list at depth-1 commas.
    let mut depth = 0usize;
    let mut commas = Vec::new();
    let mut rparen = None;
    for i in call + 1..spans.tokens.len() {
        match spans.tokens[i].token {
            Token::LParen => depth += 1,
            Token::RParen => {
                depth -= 1;
                if depth == 0 {
                    rparen = Some(i);
                    break;
                }
            }
            Token::Comma if depth == 1 => commas.push(i),
            _ => {}
        }
    }
    let rparen = rparen?;
    let [c1, c2] = commas[..] else {
        return None; // not a 3-argument call shape
    };
    let (lo_s, lo_e) = spans.arg_span(c1 + 1, c2);
    let (hi_s, hi_e) = spans.arg_span(c2 + 1, rparen);
    let lo_text = spans.src[lo_s..lo_e].to_string();
    let hi_text = spans.src[hi_s..hi_e].to_string();
    Some(Fix::new(
        "swap the limit bounds",
        vec![
            FixEdit::ReplaceText {
                start: lo_s,
                end: lo_e,
                text: hi_text,
            },
            FixEdit::ReplaceText {
                start: hi_s,
                end: hi_e,
                text: lo_text,
            },
        ],
    ))
}

// ---------------------------------------------------------------------------
// Application: one round of non-overlapping fixes
// ---------------------------------------------------------------------------

fn spans_overlap(a: (usize, usize), b: (usize, usize)) -> bool {
    a.0 < b.1 && b.0 < a.1
}

/// Applies one round of text fixes to FAS source. Fixes whose spans
/// overlap an already-accepted fix are refused (returned in `.1`); edits
/// are applied back to front so earlier spans stay valid.
fn apply_text_round(src: &str, diags: &[Diagnostic], outcome: &mut FixOutcome) -> Option<String> {
    let mut accepted: Vec<(usize, usize)> = Vec::new();
    let mut edits: Vec<(usize, usize, &str)> = Vec::new();
    let mut any = false;
    for diag in diags {
        let Some(fix) = &diag.fix else { continue };
        let spans: Vec<(usize, usize)> = fix
            .edits
            .iter()
            .filter_map(|e| match e {
                FixEdit::ReplaceText { start, end, .. } => Some((*start, *end)),
                _ => None,
            })
            .collect();
        if spans.len() != fix.edits.len() {
            continue; // not a text fix
        }
        let ok = spans.iter().all(|s| {
            s.0 <= s.1
                && s.1 <= src.len()
                && accepted.iter().all(|a| !spans_overlap(*a, *s))
                && spans
                    .iter()
                    .filter(|o| *o != s)
                    .all(|o| !spans_overlap(*o, *s))
        });
        if !ok {
            outcome.refused += 1;
            continue;
        }
        accepted.extend(&spans);
        for e in &fix.edits {
            if let FixEdit::ReplaceText { start, end, text } = e {
                edits.push((*start, *end, text));
            }
        }
        outcome.record(diag.code);
        any = true;
    }
    if !any {
        return None;
    }
    edits.sort_by_key(|e| std::cmp::Reverse(e.0));
    let mut out = src.to_string();
    for (s, e, text) in edits {
        out.replace_range(s..e, text);
    }
    Some(out)
}

/// Applies fixable FAS diagnostics to `src` and re-lints until no fix
/// applies, returning the repaired source and what happened.
///
/// # Errors
///
/// A [`FasError`] if the original source does not parse, or — which would
/// be a fix-synthesis bug — if an applied round produces source that no
/// longer parses.
pub fn fix_fas_source(src: &str) -> Result<(String, FixOutcome), FasError> {
    let mut current = src.to_string();
    let mut outcome = FixOutcome::default();
    loop {
        let diags = crate::registry::lint_fas_source(&current)?;
        if outcome.rounds >= MAX_ROUNDS {
            outcome.remaining = diags;
            return Ok((current, outcome));
        }
        match apply_text_round(&current, &diags, &mut outcome) {
            Some(next) => {
                outcome.rounds += 1;
                current = next;
            }
            None => {
                outcome.remaining = diags;
                return Ok((current, outcome));
            }
        }
    }
}

/// Applies one round of structured diagram fixes: property swaps and
/// parameter removals first (they do not renumber anything), then symbol
/// removals in descending id order so earlier removals cannot shift the
/// ids later removals refer to.
fn apply_diagram_round(
    d: &mut FunctionalDiagram,
    diags: &[Diagnostic],
    outcome: &mut FixOutcome,
) -> bool {
    let mut removals: Vec<(SymbolId, Code)> = Vec::new();
    let mut any = false;
    for diag in diags {
        let Some(fix) = &diag.fix else { continue };
        for edit in &fix.edits {
            match edit {
                FixEdit::SwapProperties {
                    symbol,
                    first,
                    second,
                } => {
                    let swapped = d.swap_properties(*symbol, first, second).is_ok();
                    if swapped {
                        outcome.record(diag.code);
                        any = true;
                    }
                }
                FixEdit::RemoveParameter { name } => {
                    let removed = d.remove_parameter(name);
                    if removed {
                        outcome.record(diag.code);
                        any = true;
                    }
                }
                FixEdit::RemoveSymbol { symbol } => {
                    let seen = removals.iter().any(|(s, _)| s == symbol);
                    if !seen {
                        removals.push((*symbol, diag.code));
                    }
                }
                _ => {}
            }
        }
    }
    removals.sort_by_key(|r| std::cmp::Reverse(r.0));
    for (symbol, code) in removals {
        if d.remove_symbol(symbol).is_ok() {
            outcome.record(code);
            any = true;
        }
    }
    any
}

/// Applies fixable diagram diagnostics in place and re-lints until no fix
/// applies. Only diagram-layer edits are applied: IR findings surfaced by
/// `lint_diagram` describe the *lowered* form and cannot be routed back
/// into the diagram mechanically.
pub fn fix_diagram(d: &mut FunctionalDiagram) -> FixOutcome {
    let mut outcome = FixOutcome::default();
    loop {
        let diags = crate::registry::lint_diagram(d);
        if outcome.rounds >= MAX_ROUNDS {
            outcome.remaining = diags;
            return outcome;
        }
        if !apply_diagram_round(d, &diags, &mut outcome) {
            outcome.remaining = diags;
            return outcome;
        }
        outcome.rounds += 1;
    }
}

/// Applies one round of IR statement fixes: bound swaps first (they keep
/// every index valid), then removals in descending index order.
fn apply_ir_round(ir: &mut CodeIr, diags: &[Diagnostic], outcome: &mut FixOutcome) -> bool {
    let mut removals: Vec<(usize, Code)> = Vec::new();
    let mut any = false;
    for diag in diags {
        let Some(fix) = &diag.fix else { continue };
        for edit in &fix.edits {
            match edit {
                FixEdit::SwapIrLimitBounds { index } => {
                    if let Some(IrStatement::Assign {
                        rhs: IrRhs::Limit { lo, hi, .. },
                        ..
                    }) = ir.statements.get_mut(*index)
                    {
                        std::mem::swap(lo, hi);
                        outcome.record(diag.code);
                        any = true;
                    }
                }
                FixEdit::RemoveIrStatement { index } => {
                    let seen = removals.iter().any(|(i, _)| i == index);
                    if !seen {
                        removals.push((*index, diag.code));
                    }
                }
                _ => {}
            }
        }
    }
    removals.sort_by_key(|r| std::cmp::Reverse(r.0));
    for (index, code) in removals {
        if index < ir.statements.len() {
            ir.statements.remove(index);
            outcome.record(code);
            any = true;
        }
    }
    any
}

/// Applies fixable IR diagnostics in place and re-lints until no fix
/// applies (dead assignments cascade: removing one may orphan its inputs).
pub fn fix_code_ir(ir: &mut CodeIr) -> FixOutcome {
    let mut outcome = FixOutcome::default();
    loop {
        let diags = crate::registry::lint_code_ir(ir);
        if outcome.rounds >= MAX_ROUNDS {
            outcome.remaining = diags;
            return outcome;
        }
        if !apply_ir_round(ir, &diags, &mut outcome) {
            outcome.remaining = diags;
            return outcome;
        }
        outcome.rounds += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gabm_core::symbol::{PropertyValue, SymbolKind};

    fn wrap(body: &str) -> String {
        format!("model t pin(a, b) param(g=1.0) analog\n{body}\nendanalog endmodel\n")
    }

    #[test]
    fn unused_variable_is_deleted() {
        let src = wrap("make x = g * volt.value(a)\nmake scratch = x * 2\nmake curr.on(b) = x");
        let (fixed, outcome) = fix_fas_source(&src).unwrap();
        assert!(!fixed.contains("scratch"), "{fixed}");
        assert_eq!(outcome.fixed_codes, vec![Code::FasUnusedVariable]);
        assert!(outcome.remaining.is_empty(), "{:?}", outcome.remaining);
    }

    #[test]
    fn unused_variable_with_trailing_comment_deleted_cleanly() {
        let src = wrap("make x = g\nmake scratch = x * 2 // obsolete\nmake curr.on(b) = x");
        let (fixed, _) = fix_fas_source(&src).unwrap();
        assert!(!fixed.contains("scratch"));
        assert!(!fixed.contains("obsolete"));
        assert!(gabm_fas::parse(&fixed).is_ok());
    }

    #[test]
    fn dead_else_branch_unwrapped() {
        let src =
            wrap("if (1 < 2) then\nmake x = g\nelse\nmake x = -g\nendif\nmake curr.on(b) = x");
        let (fixed, outcome) = fix_fas_source(&src).unwrap();
        assert!(!fixed.contains("if"), "{fixed}");
        assert!(fixed.contains("make x = g"));
        assert!(!fixed.contains("-g"));
        assert!(outcome.fixed_codes.contains(&Code::FasDeadBranch));
        assert!(outcome.remaining.is_empty(), "{:?}", outcome.remaining);
    }

    #[test]
    fn dead_then_branch_without_else_removes_block() {
        let src = wrap("make x = g\nif (1 >= 2) then\nmake x = 0\nendif\nmake curr.on(b) = x");
        let (fixed, outcome) = fix_fas_source(&src).unwrap();
        assert!(!fixed.contains("if"), "{fixed}");
        assert!(!fixed.contains("endif"));
        assert!(outcome.fixed_codes.contains(&Code::FasDeadBranch));
        assert!(outcome.remaining.is_empty(), "{:?}", outcome.remaining);
    }

    #[test]
    fn degenerate_limit_bounds_swapped() {
        let src = wrap("make x = limit(volt.value(a), 10, -10)\nmake curr.on(b) = x");
        let (fixed, outcome) = fix_fas_source(&src).unwrap();
        assert!(fixed.contains("limit(volt.value(a), -10, 10)"), "{fixed}");
        assert_eq!(outcome.fixed_codes, vec![Code::FasDegenerateLimit]);
        assert!(outcome.remaining.is_empty(), "{:?}", outcome.remaining);
    }

    #[test]
    fn ambiguous_double_limit_left_alone() {
        let src = wrap("make x = limit(g, 5, 1) + limit(g, 9, 2)\nmake curr.on(b) = x");
        let diags = crate::registry::lint_fas_source(&src).unwrap();
        for d in diags.iter().filter(|d| d.code == Code::FasDegenerateLimit) {
            assert!(d.fix.is_none(), "ambiguous fix must be refused: {d:?}");
        }
        let (fixed, outcome) = fix_fas_source(&src).unwrap();
        assert_eq!(fixed, src);
        assert_eq!(outcome.applied, 0);
    }

    #[test]
    fn fixpoint_is_idempotent() {
        let src = wrap(
            "make x = g\nmake scratch = x * 2\nif (1 > 2) then\nmake x = 0\nendif\nmake y = limit(x, 3, -3)\nmake curr.on(b) = y",
        );
        let (once, o1) = fix_fas_source(&src).unwrap();
        let (twice, o2) = fix_fas_source(&once).unwrap();
        assert_eq!(once, twice);
        assert!(o1.applied >= 3, "{o1:?}");
        assert_eq!(o2.applied, 0);
    }

    #[test]
    fn diagram_fixpoint_cascades_dead_symbol_into_unused_parameter() {
        let mut d = FunctionalDiagram::new("dead-limiter");
        d.add_parameter("lo", -5.0, gabm_core::Dimension::NONE);
        let pin = d.add_symbol(SymbolKind::Pin { name: "a".into() });
        let probe = d.add_symbol(SymbolKind::Probe {
            quantity: gabm_core::Dimension::VOLTAGE,
        });
        let g1 = d.add_symbol_with(SymbolKind::Gain, &[("a", PropertyValue::Number(2.0))], None);
        let lim = d.add_symbol_with(
            SymbolKind::Limiter,
            &[
                ("min", PropertyValue::Param("lo".into())),
                ("max", PropertyValue::Number(5.0)),
            ],
            None,
        );
        let pin_b = d.add_symbol(SymbolKind::Pin { name: "b".into() });
        let gen = d.add_symbol(SymbolKind::Generator {
            quantity: gabm_core::Dimension::VOLTAGE,
        });
        d.connect(d.port(pin, "pin").unwrap(), d.port(probe, "pin").unwrap())
            .unwrap();
        // Live chain: probe → g1 → voltage generator on pin b.
        d.connect(d.port(probe, "out").unwrap(), d.port(g1, "in").unwrap())
            .unwrap();
        d.connect(d.port(g1, "out").unwrap(), d.port(gen, "in").unwrap())
            .unwrap();
        d.connect(d.port(gen, "pin").unwrap(), d.port(pin_b, "pin").unwrap())
            .unwrap();
        // Dead side chain: probe → limiter → tail gain, tail output
        // unconnected. The tail is removed via GABM004 (all outputs
        // dangle), the limiter via GABM009 (transitively dead), and
        // removing the limiter (round 1) orphans parameter 'lo'
        // (round 2).
        let tail = d.add_symbol_with(SymbolKind::Gain, &[("a", PropertyValue::Number(1.0))], None);
        d.connect(d.port(probe, "out").unwrap(), d.port(lim, "in").unwrap())
            .unwrap();
        d.connect(d.port(lim, "out").unwrap(), d.port(tail, "in").unwrap())
            .unwrap();
        let outcome = fix_diagram(&mut d);
        assert_eq!(outcome.rounds, 2, "{outcome:?}");
        assert!(outcome.fixed_codes.contains(&Code::DeadSymbol));
        assert!(outcome.fixed_codes.contains(&Code::UnconnectedOutput));
        assert!(outcome.fixed_codes.contains(&Code::UnusedParameter));
        assert_eq!(d.symbol_count(), 5, "pins, probe, gain, generator survive");
        assert!(d.parameters().is_empty());
        assert!(outcome.remaining.is_empty(), "{:?}", outcome.remaining);
    }

    #[test]
    fn diagram_swap_and_disconnected_fixes_apply() {
        let mut d = FunctionalDiagram::new("swap");
        let pin = d.add_symbol(SymbolKind::Pin { name: "a".into() });
        let probe = d.add_symbol(SymbolKind::Probe {
            quantity: gabm_core::Dimension::VOLTAGE,
        });
        let lim = d.add_symbol_with(
            SymbolKind::Limiter,
            &[
                ("min", PropertyValue::Number(5.0)),
                ("max", PropertyValue::Number(-5.0)),
            ],
            None,
        );
        let orphan =
            d.add_symbol_with(SymbolKind::Gain, &[("a", PropertyValue::Number(1.0))], None);
        let pin_b = d.add_symbol(SymbolKind::Pin { name: "b".into() });
        let gen = d.add_symbol(SymbolKind::Generator {
            quantity: gabm_core::Dimension::VOLTAGE,
        });
        d.connect(d.port(pin, "pin").unwrap(), d.port(probe, "pin").unwrap())
            .unwrap();
        d.connect(d.port(probe, "out").unwrap(), d.port(lim, "in").unwrap())
            .unwrap();
        d.connect(d.port(lim, "out").unwrap(), d.port(gen, "in").unwrap())
            .unwrap();
        d.connect(d.port(gen, "pin").unwrap(), d.port(pin_b, "pin").unwrap())
            .unwrap();
        let _ = orphan;
        let outcome = fix_diagram(&mut d);
        assert!(outcome.fixed_codes.contains(&Code::DegenerateLimiter));
        assert!(outcome.fixed_codes.contains(&Code::DisconnectedSymbol));
        assert_eq!(d.symbol_count(), 5);
        let lim_sym = d.symbol(lim).unwrap();
        assert_eq!(
            lim_sym.properties.get("min"),
            Some(&PropertyValue::Number(-5.0))
        );
        assert!(outcome.remaining.is_empty(), "{:?}", outcome.remaining);
    }

    #[test]
    fn ir_dead_assignments_cascade() {
        use gabm_codegen::IrParam;
        let mut ir = CodeIr {
            model_name: "t".into(),
            pins: vec!["a".into()],
            params: vec![IrParam {
                name: "g".into(),
                default: 1.0,
                from_open_input: false,
            }],
            statements: vec![
                IrStatement::Assign {
                    id: 1,
                    var: "x".into(),
                    rhs: IrRhs::Copy { input: "g".into() },
                },
                // y reads x, nothing reads y: removing y orphans x.
                IrStatement::Assign {
                    id: 2,
                    var: "y".into(),
                    rhs: IrRhs::Copy { input: "x".into() },
                },
                IrStatement::Assign {
                    id: 3,
                    var: "z".into(),
                    rhs: IrRhs::Limit {
                        input: "g".into(),
                        lo: "5".into(),
                        hi: "-5".into(),
                    },
                },
                IrStatement::Impose {
                    id: 4,
                    pin: "a".into(),
                    quantity: gabm_codegen::PinQuantity::Curr,
                    expr: "z".into(),
                },
            ],
        };
        let outcome = fix_code_ir(&mut ir);
        assert!(outcome.fixed_codes.contains(&Code::IrDeadAssignment));
        assert!(outcome.fixed_codes.contains(&Code::IrConstFoldError));
        assert_eq!(ir.statements.len(), 2, "{:?}", ir.statements);
        assert!(outcome.remaining.is_empty(), "{:?}", outcome.remaining);
        if let IrStatement::Assign {
            rhs: IrRhs::Limit { lo, hi, .. },
            ..
        } = &ir.statements[0]
        {
            assert_eq!((lo.as_str(), hi.as_str()), ("-5", "5"));
        } else {
            panic!("limit assign expected first");
        }
    }
}
