//! Source-level lints over parsed FAS models (§4.2).
//!
//! The FAS compiler already rejects hard errors (unknown identifiers,
//! assignments to parameters). These passes report what the compiler
//! accepts but the author probably did not mean: values computed and never
//! used, branches that can never run, and arithmetic that is guaranteed to
//! blow up at the first evaluated time point.

use gabm_core::diag::{Code, Diagnostic, Location};
use gabm_fas::ast::{BinOp, Cond, Expr, Model, Stmt, UnaryOp};
use gabm_fas::Pos;
use std::collections::HashSet;

/// One FAS-level analysis pass.
pub type FasPass = fn(&Model, &mut Vec<Diagnostic>);

/// All FAS-level passes in execution order, with stable names.
pub const FAS_PASSES: &[(&str, FasPass)] = &[
    ("fas-use-before-def", check_use_before_def),
    ("fas-unused-variables", check_unused_variables),
    ("fas-dead-branches", check_dead_branches),
    ("fas-const-arithmetic", check_const_arithmetic),
];

/// Runs every FAS pass on `model` and returns the findings.
pub fn lint_fas(model: &Model) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (_, pass) in FAS_PASSES {
        pass(model, &mut diags);
    }
    diags
}

fn source(pos: Pos) -> Location {
    Location::Source {
        line: pos.line,
        col: pos.col,
    }
}

/// Names the simulator defines without any `make`.
const BUILTINS: &[&str] = &["time", "temp", "timestep"];

/// Collects variable names read by `expr`. References inside
/// `state.delay`/`state.delayt` look at the previous time point, so they
/// are legal forward references and are skipped.
fn expr_reads<'a>(expr: &'a Expr, out: &mut Vec<&'a str>) {
    match expr {
        Expr::Num(_) | Expr::PinValue { .. } | Expr::StateDelay { .. } => {}
        Expr::Var(name) => out.push(name),
        Expr::Unary(_, e) | Expr::StateDt { arg: e, .. } | Expr::StateIdt { arg: e, .. } => {
            expr_reads(e, out)
        }
        Expr::Binary(_, a, b) => {
            expr_reads(a, out);
            expr_reads(b, out);
        }
        Expr::Call { args, .. } => {
            for a in args {
                expr_reads(a, out);
            }
        }
        Expr::StateDelayT { td, .. } => expr_reads(td, out),
    }
}

/// Like [`expr_reads`] but including the delayed variable itself — used by
/// the liveness pass, where a delayed read still keeps its variable alive.
fn expr_reads_with_delays<'a>(expr: &'a Expr, out: &mut Vec<&'a str>) {
    match expr {
        Expr::StateDelay { var } => out.push(var),
        Expr::StateDelayT { var, td, .. } => {
            out.push(var);
            expr_reads_with_delays(td, out);
        }
        Expr::Num(_) | Expr::PinValue { .. } => {}
        Expr::Var(name) => out.push(name),
        Expr::Unary(_, e) | Expr::StateDt { arg: e, .. } | Expr::StateIdt { arg: e, .. } => {
            expr_reads_with_delays(e, out)
        }
        Expr::Binary(_, a, b) => {
            expr_reads_with_delays(a, out);
            expr_reads_with_delays(b, out);
        }
        Expr::Call { args, .. } => {
            for a in args {
                expr_reads_with_delays(a, out);
            }
        }
    }
}

/// All `make var` targets in a statement list, recursively.
fn collect_targets<'a>(stmts: &'a [Stmt], out: &mut HashSet<&'a str>) {
    for stmt in stmts {
        match stmt {
            Stmt::Make { var, .. } => {
                out.insert(var);
            }
            Stmt::Impose { .. } => {}
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_targets(then_branch, out);
                collect_targets(else_branch, out);
            }
        }
    }
}

/// GABM030 — a variable is read before any `make` on the control path
/// assigns it. Mirrors the compiler's ordering rule: after an `if`, only
/// variables assigned on *both* branches count as defined (§4.1's
/// execution-order requirement applied to textual models).
fn check_use_before_def(model: &Model, diags: &mut Vec<Diagnostic>) {
    let params: HashSet<&str> = model.params.iter().map(|(p, _)| p.as_str()).collect();
    let mut targets = HashSet::new();
    collect_targets(&model.body, &mut targets);
    let mut defined: HashSet<&str> = HashSet::new();

    fn walk<'a>(
        stmts: &'a [Stmt],
        params: &HashSet<&str>,
        targets: &HashSet<&str>,
        defined: &mut HashSet<&'a str>,
        diags: &mut Vec<Diagnostic>,
    ) {
        let check =
            |expr: &Expr, pos: Pos, defined: &HashSet<&str>, diags: &mut Vec<Diagnostic>| {
                let mut reads = Vec::new();
                expr_reads(expr, &mut reads);
                for name in reads {
                    if params.contains(name) || BUILTINS.contains(&name) || defined.contains(name) {
                        continue;
                    }
                    let why = if targets.contains(name) {
                        format!(
                            "variable '{name}' is read before it is assigned \
                         (forward references are only legal inside state.delay)"
                        )
                    } else {
                        format!("variable '{name}' is never assigned")
                    };
                    diags.push(Diagnostic::new(Code::FasUseBeforeDef, why, source(pos)));
                }
            };
        for stmt in stmts {
            match stmt {
                Stmt::Make { var, expr, pos } => {
                    check(expr, *pos, defined, diags);
                    defined.insert(var);
                }
                Stmt::Impose { expr, pos, .. } => check(expr, *pos, defined, diags),
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                    pos,
                } => {
                    if let Cond::Cmp(_, a, b) = cond {
                        check(a, *pos, defined, diags);
                        check(b, *pos, defined, diags);
                    }
                    let mut then_defined = defined.clone();
                    walk(then_branch, params, targets, &mut then_defined, diags);
                    let mut else_defined = defined.clone();
                    walk(else_branch, params, targets, &mut else_defined, diags);
                    for v in then_defined.intersection(&else_defined) {
                        defined.insert(v);
                    }
                }
            }
        }
    }
    walk(&model.body, &params, &targets, &mut defined, diags);
}

/// GABM031 — a `make` target no expression ever reads (including through
/// `state.delay`). The assignment costs evaluation time every step and
/// suggests a misspelt reference elsewhere.
fn check_unused_variables(model: &Model, diags: &mut Vec<Diagnostic>) {
    let mut used: HashSet<&str> = HashSet::new();
    fn gather<'a>(stmts: &'a [Stmt], used: &mut HashSet<&'a str>) {
        for stmt in stmts {
            match stmt {
                Stmt::Make { expr, .. } | Stmt::Impose { expr, .. } => {
                    let mut reads = Vec::new();
                    expr_reads_with_delays(expr, &mut reads);
                    used.extend(reads);
                }
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                    ..
                } => {
                    if let Cond::Cmp(_, a, b) = cond {
                        let mut reads = Vec::new();
                        expr_reads_with_delays(a, &mut reads);
                        expr_reads_with_delays(b, &mut reads);
                        used.extend(reads);
                    }
                    gather(then_branch, used);
                    gather(else_branch, used);
                }
            }
        }
    }
    gather(&model.body, &mut used);

    fn report(
        stmts: &[Stmt],
        used: &HashSet<&str>,
        seen: &mut HashSet<String>,
        diags: &mut Vec<Diagnostic>,
    ) {
        for stmt in stmts {
            match stmt {
                Stmt::Make { var, pos, .. } => {
                    if !used.contains(var.as_str()) && seen.insert(var.clone()) {
                        diags.push(Diagnostic::new(
                            Code::FasUnusedVariable,
                            format!("variable '{var}' is assigned but never used"),
                            source(*pos),
                        ));
                    }
                }
                Stmt::Impose { .. } => {}
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    report(then_branch, used, seen, diags);
                    report(else_branch, used, seen, diags);
                }
            }
        }
    }
    let mut seen = HashSet::new();
    report(&model.body, &used, &mut seen, diags);
}

/// Constant value of an expression, when it folds without any variable,
/// pin, or state access.
fn const_value(expr: &Expr) -> Option<f64> {
    match expr {
        Expr::Num(v) => Some(*v),
        Expr::Unary(UnaryOp::Neg, e) => Some(-const_value(e)?),
        Expr::Binary(op, a, b) => {
            let (a, b) = (const_value(a)?, const_value(b)?);
            Some(match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0.0 {
                        return None; // reported separately by GABM033
                    }
                    a / b
                }
            })
        }
        _ => None,
    }
}

/// GABM032 — an `if` whose comparison folds to a constant always takes the
/// same branch; the other branch is dead text.
fn check_dead_branches(model: &Model, diags: &mut Vec<Diagnostic>) {
    fn walk(stmts: &[Stmt], diags: &mut Vec<Diagnostic>) {
        for stmt in stmts {
            if let Stmt::If {
                cond,
                then_branch,
                else_branch,
                pos,
            } = stmt
            {
                if let Cond::Cmp(op, a, b) = cond {
                    if let (Some(a), Some(b)) = (const_value(a), const_value(b)) {
                        let taken = op.apply(a, b);
                        let dead = if taken { "else" } else { "then" };
                        diags.push(
                            Diagnostic::new(
                                Code::FasDeadBranch,
                                format!(
                                    "condition is always {taken}; the {dead} branch never runs"
                                ),
                                source(*pos),
                            )
                            .with_note(format!(
                                "both comparison operands fold to constants ({a} and {b})"
                            )),
                        );
                    }
                }
                walk(then_branch, diags);
                walk(else_branch, diags);
            }
        }
    }
    walk(&model.body, diags);
}

/// GABM033/034/035 — arithmetic that is guaranteed to fail: division by a
/// constant zero, intrinsic calls with constant out-of-domain arguments,
/// and `limit` bounds that form an empty interval.
fn check_const_arithmetic(model: &Model, diags: &mut Vec<Diagnostic>) {
    fn walk_expr(expr: &Expr, pos: Pos, diags: &mut Vec<Diagnostic>) {
        match expr {
            Expr::Binary(op, a, b) => {
                if *op == BinOp::Div && const_value(b) == Some(0.0) {
                    diags.push(Diagnostic::new(
                        Code::FasDivisionByZero,
                        "division by constant zero".to_string(),
                        source(pos),
                    ));
                }
                walk_expr(a, pos, diags);
                walk_expr(b, pos, diags);
            }
            Expr::Unary(_, e) | Expr::StateDt { arg: e, .. } | Expr::StateIdt { arg: e, .. } => {
                walk_expr(e, pos, diags)
            }
            Expr::StateDelayT { td, .. } => walk_expr(td, pos, diags),
            Expr::Call { func, args } => {
                match (func.as_str(), args.len()) {
                    ("sqrt", 1) if const_value(&args[0]).is_some_and(|v| v < 0.0) => {
                        diags.push(Diagnostic::new(
                            Code::FasDomainError,
                            "sqrt of a negative constant".to_string(),
                            source(pos),
                        ));
                    }
                    ("ln", 1) if const_value(&args[0]).is_some_and(|v| v <= 0.0) => {
                        diags.push(Diagnostic::new(
                            Code::FasDomainError,
                            "ln of a non-positive constant".to_string(),
                            source(pos),
                        ));
                    }
                    ("limit", 3) => {
                        if let (Some(lo), Some(hi)) = (const_value(&args[1]), const_value(&args[2]))
                        {
                            if lo > hi {
                                diags.push(Diagnostic::new(
                                    Code::FasDegenerateLimit,
                                    format!("limit interval is empty: min {lo} > max {hi}"),
                                    source(pos),
                                ));
                            }
                        }
                    }
                    _ => {}
                }
                for a in args {
                    walk_expr(a, pos, diags);
                }
            }
            Expr::Num(_) | Expr::Var(_) | Expr::PinValue { .. } | Expr::StateDelay { .. } => {}
        }
    }
    fn walk(stmts: &[Stmt], diags: &mut Vec<Diagnostic>) {
        for stmt in stmts {
            match stmt {
                Stmt::Make { expr, pos, .. } | Stmt::Impose { expr, pos, .. } => {
                    walk_expr(expr, *pos, diags)
                }
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                    pos,
                } => {
                    if let Cond::Cmp(_, a, b) = cond {
                        walk_expr(a, *pos, diags);
                        walk_expr(b, *pos, diags);
                    }
                    walk(then_branch, diags);
                    walk(else_branch, diags);
                }
            }
        }
    }
    walk(&model.body, diags);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gabm_fas::parse;

    fn model(body: &str) -> Model {
        let text = format!("model t pin(a, b) param(g=1.0) analog\n{body}\nendanalog endmodel\n");
        parse(&text).unwrap()
    }

    #[test]
    fn clean_model_lints_clean() {
        let m = model("make x = g * volt.value(a)\nmake curr.on(b) = x");
        assert!(lint_fas(&m).is_empty());
    }

    #[test]
    fn use_before_def_detected_with_position() {
        let m = model("make x = y\nmake y = g\nmake curr.on(b) = x + y");
        let d = lint_fas(&m);
        let ubd: Vec<_> = d
            .iter()
            .filter(|d| d.code == Code::FasUseBeforeDef)
            .collect();
        assert_eq!(ubd.len(), 1);
        assert!(ubd[0].message.contains("'y'"));
        assert!(matches!(ubd[0].location, Location::Source { line: 2, .. }));
    }

    #[test]
    fn state_delay_forward_reference_is_legal() {
        let m = model("make x = state.delay(y)\nmake y = g\nmake curr.on(b) = x + y");
        let d = lint_fas(&m);
        assert!(!d.iter().any(|d| d.code == Code::FasUseBeforeDef), "{d:?}");
        assert!(
            !d.iter().any(|d| d.code == Code::FasUnusedVariable),
            "{d:?}"
        );
    }

    #[test]
    fn branch_only_definition_not_definite() {
        let m = model("if (g > 0) then\nmake x = g\nendif\nmake curr.on(b) = x");
        let d = lint_fas(&m);
        assert!(d.iter().any(|d| d.code == Code::FasUseBeforeDef), "{d:?}");
    }

    #[test]
    fn both_branch_definition_is_definite() {
        let m = model("if (g > 0) then\nmake x = g\nelse\nmake x = -g\nendif\nmake curr.on(b) = x");
        let d = lint_fas(&m);
        assert!(!d.iter().any(|d| d.code == Code::FasUseBeforeDef), "{d:?}");
    }

    #[test]
    fn unused_variable_detected() {
        let m = model("make x = g\nmake unused = g + 1\nmake curr.on(b) = x");
        let d = lint_fas(&m);
        let unused: Vec<_> = d
            .iter()
            .filter(|d| d.code == Code::FasUnusedVariable)
            .collect();
        assert_eq!(unused.len(), 1);
        assert!(unused[0].message.contains("'unused'"));
    }

    #[test]
    fn dead_branch_detected() {
        let m = model("make x = g\nif (1 > 2) then\nmake x = 0\nendif\nmake curr.on(b) = x");
        let d = lint_fas(&m);
        let dead: Vec<_> = d.iter().filter(|d| d.code == Code::FasDeadBranch).collect();
        assert_eq!(dead.len(), 1);
        assert!(dead[0].message.contains("always false"));
    }

    #[test]
    fn const_arithmetic_detected() {
        let m = model(
            "make va = g / (2 - 2)\nmake vb = sqrt(-1)\nmake vc = limit(g, 5, 1)\nmake curr.on(b) = va + vb + vc",
        );
        let d = lint_fas(&m);
        assert!(d.iter().any(|d| d.code == Code::FasDivisionByZero), "{d:?}");
        assert!(d.iter().any(|d| d.code == Code::FasDomainError), "{d:?}");
        assert!(
            d.iter().any(|d| d.code == Code::FasDegenerateLimit),
            "{d:?}"
        );
    }
}
