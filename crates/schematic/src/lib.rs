//! Schematic entry substrate.
//!
//! The paper reuses "an existing schematic entry tool" to draw functional
//! diagrams (§2.2, §3.2). This crate provides that service for the `gabm`
//! workspace:
//!
//! * [`sheet`] — a drawing sheet: GBS placed on a grid with orthogonal
//!   wires, T-junction detection and connectivity extraction into a
//!   [`FunctionalDiagram`](gabm_core::diagram::FunctionalDiagram);
//! * [`layout`] — automatic signal-flow layout of an existing diagram
//!   (symbols in topological columns), used by the renderers;
//! * [`render`] — ASCII and SVG renderers that regenerate the paper's
//!   diagram figures (Figs. 2–6).

pub mod layout;
pub mod render;
pub mod sheet;

pub use render::{render_ascii, render_svg};
pub use sheet::{Placement, Sheet, Wire};

use std::fmt;

/// Errors of the schematic layer.
#[derive(Debug, Clone, PartialEq)]
pub enum SchematicError {
    /// Two symbols overlap on the sheet.
    Overlap {
        /// First placement index.
        first: usize,
        /// Second placement index.
        second: usize,
    },
    /// A wire is neither horizontal nor vertical.
    DiagonalWire {
        /// Wire index.
        wire: usize,
    },
    /// Connectivity extraction failed structurally.
    Extraction(gabm_core::CoreError),
}

impl fmt::Display for SchematicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchematicError::Overlap { first, second } => {
                write!(f, "placements {first} and {second} overlap")
            }
            SchematicError::DiagonalWire { wire } => {
                write!(f, "wire {wire} is not orthogonal")
            }
            SchematicError::Extraction(e) => write!(f, "extraction failed: {e}"),
        }
    }
}

impl std::error::Error for SchematicError {}

impl From<gabm_core::CoreError> for SchematicError {
    fn from(e: gabm_core::CoreError) -> Self {
        SchematicError::Extraction(e)
    }
}

/// An integer grid point on the sheet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Point {
    /// Horizontal coordinate (grid units).
    pub x: i32,
    /// Vertical coordinate (grid units).
    pub y: i32,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: i32, y: i32) -> Self {
        Point { x, y }
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_display() {
        assert_eq!(Point::new(1, -2).to_string(), "(1, -2)");
    }

    #[test]
    fn error_display() {
        let e = SchematicError::Overlap {
            first: 0,
            second: 3,
        };
        assert!(e.to_string().contains("overlap"));
        assert!(SchematicError::DiagonalWire { wire: 2 }
            .to_string()
            .contains("orthogonal"));
    }
}
