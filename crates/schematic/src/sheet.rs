//! Drawing sheets: symbol placement, wiring, and connectivity extraction.

use crate::{Point, SchematicError};
use gabm_core::diagram::{FunctionalDiagram, PortRef, SymbolId};
use gabm_core::symbol::{PortDirection, PropertyValue, SymbolKind};
use std::collections::BTreeMap;

/// A placed symbol on the sheet.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// What symbol is placed.
    pub kind: SymbolKind,
    /// Grid position of the symbol's anchor (centre).
    pub at: Point,
    /// Properties carried into the extracted diagram.
    pub properties: Vec<(String, PropertyValue)>,
    /// Optional label.
    pub label: Option<String>,
}

/// An orthogonal wire segment between two grid points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wire {
    /// One end.
    pub a: Point,
    /// Other end.
    pub b: Point,
}

impl Wire {
    /// `true` if the segment is horizontal or vertical.
    pub fn is_orthogonal(&self) -> bool {
        self.a.x == self.b.x || self.a.y == self.b.y
    }

    /// `true` if `p` lies on the segment (inclusive).
    pub fn contains(&self, p: Point) -> bool {
        if !self.is_orthogonal() {
            return false;
        }
        let (lox, hix) = (self.a.x.min(self.b.x), self.a.x.max(self.b.x));
        let (loy, hiy) = (self.a.y.min(self.b.y), self.a.y.max(self.b.y));
        (lox..=hix).contains(&p.x) && (loy..=hiy).contains(&p.y)
    }
}

/// Grid offsets of a symbol's ports: inputs stacked on the left edge,
/// outputs on the right, bidirectional pin connections on the bottom —
/// a deliberately simple, deterministic footprint model.
pub fn port_offsets(kind: &SymbolKind) -> Vec<(String, PortDirection, Point)> {
    let ports = kind.ports();
    let n_in = ports
        .iter()
        .filter(|p| p.direction == PortDirection::Input)
        .count();
    let n_out = ports
        .iter()
        .filter(|p| p.direction == PortDirection::Output)
        .count();
    let mut in_seen = 0i32;
    let mut out_seen = 0i32;
    let mut bidir_seen = 0i32;
    ports
        .into_iter()
        .map(|p| {
            let at = match p.direction {
                PortDirection::Input => {
                    let y = in_seen - (n_in as i32 - 1) / 2;
                    in_seen += 1;
                    Point::new(-2, y)
                }
                PortDirection::Output => {
                    let y = out_seen - (n_out as i32 - 1) / 2;
                    out_seen += 1;
                    Point::new(2, y)
                }
                PortDirection::Bidir => {
                    let x = bidir_seen;
                    bidir_seen += 1;
                    Point::new(x, 2)
                }
            };
            (p.name, p.direction, at)
        })
        .collect()
}

/// A drawing sheet: placements plus wires.
///
/// # Example
///
/// ```
/// use gabm_schematic::{Sheet, Point};
/// use gabm_core::symbol::SymbolKind;
/// use gabm_core::quantity::Dimension;
///
/// # fn main() -> Result<(), gabm_schematic::SchematicError> {
/// let mut sheet = Sheet::new("demo");
/// let pin = sheet.place(SymbolKind::Pin { name: "in".into() }, Point::new(0, 0));
/// let probe = sheet.place(
///     SymbolKind::Probe { quantity: Dimension::VOLTAGE },
///     Point::new(0, 6),
/// );
/// sheet.wire_ports(pin, "pin", probe, "pin");
/// let diagram = sheet.extract()?;
/// assert_eq!(diagram.symbol_count(), 2);
/// assert_eq!(diagram.nets().count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Sheet {
    name: String,
    placements: Vec<Placement>,
    wires: Vec<Wire>,
}

impl Sheet {
    /// Creates an empty sheet.
    pub fn new(name: &str) -> Self {
        Sheet {
            name: name.to_string(),
            ..Sheet::default()
        }
    }

    /// Sheet name (becomes the diagram name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Places a symbol; returns its placement index.
    pub fn place(&mut self, kind: SymbolKind, at: Point) -> usize {
        self.placements.push(Placement {
            kind,
            at,
            properties: Vec::new(),
            label: None,
        });
        self.placements.len() - 1
    }

    /// Places a symbol with properties.
    pub fn place_with(
        &mut self,
        kind: SymbolKind,
        at: Point,
        properties: &[(&str, PropertyValue)],
        label: Option<&str>,
    ) -> usize {
        let idx = self.place(kind, at);
        self.placements[idx].properties = properties
            .iter()
            .map(|(k, v)| ((*k).to_string(), v.clone()))
            .collect();
        self.placements[idx].label = label.map(str::to_string);
        idx
    }

    /// Number of placements.
    pub fn placement_count(&self) -> usize {
        self.placements.len()
    }

    /// Number of wires.
    pub fn wire_count(&self) -> usize {
        self.wires.len()
    }

    /// Absolute position of a placed symbol's named port.
    ///
    /// # Panics
    ///
    /// Panics if the placement index or port name is unknown (programming
    /// error in test-bench construction).
    pub fn port_position(&self, placement: usize, port: &str) -> Point {
        let p = &self.placements[placement];
        let (_, _, off) = port_offsets(&p.kind)
            .into_iter()
            .find(|(name, _, _)| name == port)
            .unwrap_or_else(|| panic!("no port '{port}' on placement {placement}"));
        Point::new(p.at.x + off.x, p.at.y + off.y)
    }

    /// Adds a raw wire segment.
    pub fn wire(&mut self, a: Point, b: Point) {
        self.wires.push(Wire { a, b });
    }

    /// Wires two ports together with an L-shaped (two-segment) route.
    pub fn wire_ports(&mut self, from: usize, from_port: &str, to: usize, to_port: &str) {
        let a = self.port_position(from, from_port);
        let b = self.port_position(to, to_port);
        if a.x == b.x || a.y == b.y {
            self.wire(a, b);
        } else {
            let corner = Point::new(b.x, a.y);
            self.wire(a, corner);
            self.wire(corner, b);
        }
    }

    /// Extracts the connectivity into a [`FunctionalDiagram`]: ports touch
    /// a net when their position lies on a wire; wires sharing a point
    /// (including T junctions) are merged.
    ///
    /// # Errors
    ///
    /// * [`SchematicError::DiagonalWire`] for a non-orthogonal wire.
    /// * [`SchematicError::Extraction`] if a connection violates §3.2 rules.
    pub fn extract(&self) -> Result<FunctionalDiagram, SchematicError> {
        for (i, w) in self.wires.iter().enumerate() {
            if !w.is_orthogonal() {
                return Err(SchematicError::DiagonalWire { wire: i });
            }
        }
        // Union-find over wires.
        let n = self.wires.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, i: usize) -> usize {
            if parent[i] != i {
                let r = find(parent, parent[i]);
                parent[i] = r;
                r
            } else {
                i
            }
        }
        for i in 0..n {
            for j in (i + 1)..n {
                let wi = self.wires[i];
                let wj = self.wires[j];
                let touch = wi.contains(wj.a)
                    || wi.contains(wj.b)
                    || wj.contains(wi.a)
                    || wj.contains(wi.b);
                if touch {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[ri] = rj;
                    }
                }
            }
        }
        // Build the diagram.
        let mut diagram = FunctionalDiagram::new(&self.name);
        let mut ids: Vec<SymbolId> = Vec::with_capacity(self.placements.len());
        for p in &self.placements {
            let props: Vec<(&str, PropertyValue)> = p
                .properties
                .iter()
                .map(|(k, v)| (k.as_str(), v.clone()))
                .collect();
            ids.push(diagram.add_symbol_with(p.kind.clone(), &props, p.label.as_deref()));
        }
        // Group ports by wire component.
        let mut groups: BTreeMap<usize, Vec<PortRef>> = BTreeMap::new();
        for (pi, p) in self.placements.iter().enumerate() {
            for (port_idx, (_, _, off)) in port_offsets(&p.kind).iter().enumerate() {
                let pos = Point::new(p.at.x + off.x, p.at.y + off.y);
                for (wi, w) in self.wires.iter().enumerate() {
                    if w.contains(pos) {
                        let root = find(&mut parent, wi);
                        groups.entry(root).or_default().push(PortRef {
                            symbol: ids[pi],
                            port: port_idx,
                        });
                        break;
                    }
                }
            }
        }
        for ports in groups.values() {
            for pair in ports.windows(2) {
                diagram.connect(pair[0], pair[1])?;
            }
        }
        Ok(diagram)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gabm_core::quantity::Dimension;

    #[test]
    fn wire_geometry() {
        let w = Wire {
            a: Point::new(0, 0),
            b: Point::new(5, 0),
        };
        assert!(w.is_orthogonal());
        assert!(w.contains(Point::new(3, 0)));
        assert!(!w.contains(Point::new(3, 1)));
        let d = Wire {
            a: Point::new(0, 0),
            b: Point::new(1, 1),
        };
        assert!(!d.is_orthogonal());
        assert!(!d.contains(Point::new(0, 0)));
    }

    #[test]
    fn port_offsets_deterministic() {
        let add = SymbolKind::Adder {
            signs: vec![true, true, false],
        };
        let offs = port_offsets(&add);
        assert_eq!(offs.len(), 4);
        // Inputs on the left, output on the right.
        assert!(offs[0].2.x < 0);
        assert!(offs[3].2.x > 0);
        // Pins sit on the bottom edge.
        let pin = SymbolKind::Pin { name: "p".into() };
        assert_eq!(port_offsets(&pin)[0].2, Point::new(0, 2));
    }

    #[test]
    fn extraction_builds_net() {
        let mut sheet = Sheet::new("t");
        let g1 = sheet.place(SymbolKind::Gain, Point::new(0, 0));
        let g2 = sheet.place(SymbolKind::Gain, Point::new(10, 0));
        sheet.wire_ports(g1, "out", g2, "in");
        let d = sheet.extract().unwrap();
        assert_eq!(d.nets().count(), 1);
        let net = d.nets().next().unwrap();
        assert_eq!(net.ports.len(), 2);
    }

    #[test]
    fn t_junction_merges() {
        let mut sheet = Sheet::new("t");
        let g1 = sheet.place(SymbolKind::Gain, Point::new(0, 0));
        let g2 = sheet.place(SymbolKind::Gain, Point::new(20, 0));
        let g3 = sheet.place(SymbolKind::Gain, Point::new(10, 10));
        // Straight bus from g1.out to g2.in, plus a stub dropping to g3.in.
        sheet.wire_ports(g1, "out", g2, "in");
        let mid = Point::new(8, 0);
        let g3_in = sheet.port_position(g3, "in");
        sheet.wire(mid, Point::new(8, g3_in.y));
        sheet.wire(Point::new(8, g3_in.y), g3_in);
        let d = sheet.extract().unwrap();
        assert_eq!(d.nets().count(), 1);
        assert_eq!(d.nets().next().unwrap().ports.len(), 3);
    }

    #[test]
    fn diagonal_wire_rejected() {
        let mut sheet = Sheet::new("d");
        sheet.wire(Point::new(0, 0), Point::new(3, 4));
        assert!(matches!(
            sheet.extract(),
            Err(SchematicError::DiagonalWire { wire: 0 })
        ));
    }

    #[test]
    fn double_driver_rejected_at_extraction() {
        let mut sheet = Sheet::new("dd");
        let g1 = sheet.place(SymbolKind::Gain, Point::new(0, 0));
        let g2 = sheet.place(SymbolKind::Gain, Point::new(0, 10));
        let g3 = sheet.place(SymbolKind::Gain, Point::new(10, 5));
        sheet.wire_ports(g1, "out", g3, "in");
        sheet.wire_ports(g2, "out", g3, "in");
        assert!(matches!(
            sheet.extract(),
            Err(SchematicError::Extraction(_))
        ));
    }

    #[test]
    fn properties_carried_through() {
        let mut sheet = Sheet::new("p");
        sheet.place_with(
            SymbolKind::Gain,
            Point::new(0, 0),
            &[("a", PropertyValue::Number(2.0))],
            Some("x2"),
        );
        let d = sheet.extract().unwrap();
        let sym = d.symbols().next().unwrap();
        assert_eq!(sym.property("a"), Some(&PropertyValue::Number(2.0)));
        assert_eq!(sym.label.as_deref(), Some("x2"));
    }

    #[test]
    fn full_probe_chain_extracts_consistently() {
        let mut sheet = Sheet::new("probe_chain");
        let pin = sheet.place(SymbolKind::Pin { name: "in".into() }, Point::new(0, 0));
        let probe = sheet.place(
            SymbolKind::Probe {
                quantity: Dimension::VOLTAGE,
            },
            Point::new(10, 0),
        );
        sheet.wire_ports(pin, "pin", probe, "pin");
        let d = sheet.extract().unwrap();
        assert_eq!(d.pins().len(), 1);
        assert_eq!(d.nets().count(), 1);
    }
}
