//! ASCII and SVG renderers for functional diagrams (regenerate the paper's
//! Figs. 2–6).

use crate::layout::layout;
use gabm_core::diagram::{FunctionalDiagram, PortRef, SymbolId};
use gabm_core::symbol::{PortDirection, SymbolKind};
use std::fmt::Write as _;

/// Short label for a symbol box.
fn symbol_label(kind: &SymbolKind) -> String {
    match kind {
        SymbolKind::Pin { name } => format!("pin:{name}"),
        SymbolKind::Probe { quantity } => format!("probe {quantity}"),
        SymbolKind::Generator { quantity } => format!("gen {quantity}"),
        SymbolKind::Parameter { param, .. } => format!("param {param}"),
        SymbolKind::SimVariable { var } => var.code_name().to_string(),
        SymbolKind::Constant { value } => format!("{value}"),
        SymbolKind::Gain => "gain".to_string(),
        SymbolKind::Limiter => "limit".to_string(),
        SymbolKind::Differentiator => "d/dt".to_string(),
        SymbolKind::Integrator => "integ".to_string(),
        SymbolKind::Delay => "delay".to_string(),
        SymbolKind::UnitDelay => "z^-1".to_string(),
        SymbolKind::TransferFunction { .. } => "H(s)".to_string(),
        SymbolKind::Adder { signs } => {
            let ops: String = signs.iter().map(|s| if *s { '+' } else { '-' }).collect();
            format!("add({ops})")
        }
        SymbolKind::Multiplier { ops } => {
            let o: String = ops.iter().map(|s| if *s { '*' } else { '/' }).collect();
            format!("mul({o})")
        }
        SymbolKind::Separator => "sep +/-".to_string(),
        SymbolKind::Function { func } => func.code_name().to_string(),
        SymbolKind::Hierarchical { name, .. } => format!("[{name}]"),
    }
}

/// Renders a functional diagram as ASCII: one box per symbol placed in
/// signal-flow columns, followed by the net list.
///
/// The output is deterministic, making it suitable for golden tests and for
/// the harness that regenerates the paper's figures in a terminal.
pub fn render_ascii(d: &FunctionalDiagram) -> String {
    let l = layout(d);
    let mut out = String::new();
    let _ = writeln!(out, "functional diagram: {}", d.name());
    // Grid of boxes, column-major print.
    const CELL_W: usize = 18;
    for row in 0..l.n_rows.max(1) {
        let mut line = String::new();
        for col in 0..l.n_cols {
            let here = d.symbols().find(|s| l.positions[&s.id] == (col, row));
            match here {
                Some(sym) => {
                    let label = format!("[{}:{}]", sym.id, symbol_label(&sym.kind));
                    let _ = write!(line, "{label:<CELL_W$}");
                }
                None => {
                    let _ = write!(line, "{:CELL_W$}", "");
                }
            }
        }
        let trimmed = line.trim_end();
        if !trimmed.is_empty() {
            let _ = writeln!(out, "{trimmed}");
        }
    }
    let _ = writeln!(out, "nets:");
    for net in d.nets() {
        let mut parts: Vec<String> = Vec::new();
        for p in &net.ports {
            if let Ok(sym) = d.symbol(p.symbol) {
                let ports = sym.ports();
                let spec = &ports[p.port];
                let arrow = match spec.direction {
                    PortDirection::Output => ">",
                    PortDirection::Input => "<",
                    PortDirection::Bidir => "=",
                };
                parts.push(format!("{}{}.{}", arrow, sym.id, spec.name));
            }
        }
        let _ = writeln!(out, "  n{}: {}", net.id.0, parts.join(" "));
    }
    out
}

/// Renders a functional diagram as a standalone SVG document.
pub fn render_svg(d: &FunctionalDiagram) -> String {
    let l = layout(d);
    const BOX_W: i32 = 120;
    const BOX_H: i32 = 40;
    const GAP_X: i32 = 60;
    const GAP_Y: i32 = 30;
    const MARGIN: i32 = 20;
    let width = MARGIN * 2 + l.n_cols.max(1) as i32 * (BOX_W + GAP_X);
    let height = MARGIN * 2 + l.n_rows.max(1) as i32 * (BOX_H + GAP_Y);
    let pos = |id: usize| -> (i32, i32) {
        let (col, row) = l.positions[&id];
        (
            MARGIN + col as i32 * (BOX_W + GAP_X),
            MARGIN + row as i32 * (BOX_H + GAP_Y),
        )
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\" viewBox=\"0 0 {width} {height}\">"
    );
    let _ = writeln!(out, "  <title>{} (functional diagram)</title>", d.name());
    let _ = writeln!(
        out,
        "  <style>rect{{fill:#f8f8f4;stroke:#333;}}text{{font:11px monospace;}}line{{stroke:#555;}}</style>"
    );
    // Edges first (under boxes): driver centre-right to consumer
    // centre-left.
    for net in d.nets() {
        let mut driver: Option<usize> = None;
        let mut others: Vec<usize> = Vec::new();
        for p in &net.ports {
            if let Ok(sym) = d.symbol(p.symbol) {
                match sym.ports()[p.port].direction {
                    PortDirection::Output => driver = Some(sym.id),
                    _ => others.push(sym.id),
                }
            }
        }
        let endpoints: Vec<usize> = match driver {
            Some(drv) => {
                others.retain(|&o| o != drv);
                others.iter().flat_map(|&o| [drv, o]).collect()
            }
            None => others.windows(2).flat_map(|w| [w[0], w[1]]).collect(),
        };
        for pair in endpoints.chunks(2) {
            if let [a, b] = pair {
                let (ax, ay) = pos(*a);
                let (bx, by) = pos(*b);
                let _ = writeln!(
                    out,
                    "  <line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\"/>",
                    ax + BOX_W,
                    ay + BOX_H / 2,
                    bx,
                    by + BOX_H / 2
                );
            }
        }
    }
    for sym in d.symbols() {
        let (x, y) = pos(sym.id);
        let _ = writeln!(
            out,
            "  <rect x=\"{x}\" y=\"{y}\" width=\"{BOX_W}\" height=\"{BOX_H}\" rx=\"4\"/>"
        );
        let label = symbol_label(&sym.kind);
        let _ = writeln!(
            out,
            "  <text x=\"{}\" y=\"{}\">#{} {}</text>",
            x + 6,
            y + BOX_H / 2 + 4,
            sym.id,
            xml_escape(&label)
        );
    }
    let _ = writeln!(out, "</svg>");
    out
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Convenience: the positions of a diagram's pins in the rendered SVG are
/// often needed by callers embedding the figure; expose the layout.
pub fn diagram_layout(d: &FunctionalDiagram) -> crate::layout::Layout {
    layout(d)
}

/// Renders the connectivity of one symbol (diagnostic helper).
pub fn describe_symbol(d: &FunctionalDiagram, id: SymbolId) -> String {
    let Ok(sym) = d.symbol(id) else {
        return format!("unknown symbol {}", id.0);
    };
    let mut out = format!("{sym}:");
    for (idx, spec) in sym.ports().iter().enumerate() {
        let pr = PortRef {
            symbol: id,
            port: idx,
        };
        match d.net_of(pr) {
            Some(net) => {
                let _ = write!(out, " {}→n{}", spec.name, net.id.0);
            }
            None => {
                let _ = write!(out, " {}→(open)", spec.name);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gabm_core::constructs::{InputStageSpec, SlewRateSpec};

    #[test]
    fn ascii_contains_all_symbols() {
        let d = InputStageSpec::new("in", 1e-6, 5e-12).diagram().unwrap();
        let a = render_ascii(&d);
        assert!(a.contains("pin:in"));
        assert!(a.contains("d/dt"));
        assert!(a.contains("add(++)"));
        assert!(a.contains("nets:"));
        // Deterministic output.
        assert_eq!(a, render_ascii(&d));
    }

    #[test]
    fn svg_well_formed() {
        let d = SlewRateSpec::new(1e6, 1e6).diagram().unwrap();
        let s = render_svg(&d);
        assert!(s.starts_with("<svg"));
        assert!(s.trim_end().ends_with("</svg>"));
        assert_eq!(s.matches("<rect").count(), d.symbol_count());
        assert!(s.contains("z^-1"));
    }

    #[test]
    fn describe_symbol_reports_nets() {
        let d = InputStageSpec::new("in", 1e-6, 5e-12).diagram().unwrap();
        let s = describe_symbol(&d, SymbolId(2));
        assert!(s.contains("probe"));
        assert!(s.contains("→n"));
        assert!(describe_symbol(&d, SymbolId(99)).contains("unknown"));
    }
}
