//! Automatic signal-flow layout of a functional diagram.
//!
//! Places symbols in columns by topological depth (sources left, sinks
//! right), the conventional left-to-right reading order of the paper's
//! figures. Used by both renderers.

use gabm_core::diagram::{FunctionalDiagram, SymbolId};
use gabm_core::symbol::{PortDirection, SymbolKind};
use std::collections::BTreeMap;

/// Layout result: a column (depth) and a row for every symbol.
#[derive(Debug, Clone, PartialEq)]
pub struct Layout {
    /// `positions[id] = (column, row)`, keyed by symbol id.
    pub positions: BTreeMap<usize, (usize, usize)>,
    /// Number of columns.
    pub n_cols: usize,
    /// Height of the tallest column.
    pub n_rows: usize,
}

/// Computes the signal-flow layout.
pub fn layout(d: &FunctionalDiagram) -> Layout {
    // Edges: net driver -> consumers (delays don't cut layout edges; the
    // figure still reads left to right through them, but feedback edges are
    // ignored to keep depths finite).
    let n = d.symbol_count();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for net in d.nets() {
        let mut driver = None;
        let mut consumers = Vec::new();
        for p in &net.ports {
            if let Ok(sym) = d.symbol(p.symbol) {
                match sym.ports()[p.port].direction {
                    PortDirection::Output => driver = Some(sym.id),
                    PortDirection::Input => consumers.push(sym.id),
                    PortDirection::Bidir => {}
                }
            }
        }
        if let Some(drv) = driver {
            for c in consumers {
                // Delay inputs are feedback: skip to keep the DAG acyclic.
                let stateful = matches!(
                    d.symbol(SymbolId(c)).map(|s| &s.kind),
                    Ok(SymbolKind::UnitDelay) | Ok(SymbolKind::Delay)
                );
                if !stateful {
                    edges.push((drv, c));
                }
            }
        }
    }
    // Longest-path depth.
    let mut depth: Vec<usize> = vec![0; n + 1];
    // Relax repeatedly (graph is small; O(V·E) is fine).
    for _ in 0..n {
        let mut changed = false;
        for &(a, b) in &edges {
            if depth[b] < depth[a] + 1 {
                depth[b] = depth[a] + 1;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Pins at column 0 visually (they are interface, usually sources).
    let mut positions = BTreeMap::new();
    let mut col_fill: BTreeMap<usize, usize> = BTreeMap::new();
    for sym in d.symbols() {
        let col = depth[sym.id];
        let row = *col_fill.entry(col).or_insert(0);
        col_fill.insert(col, row + 1);
        positions.insert(sym.id, (col, row));
    }
    let n_cols = col_fill.keys().max().map(|c| c + 1).unwrap_or(0);
    let n_rows = col_fill.values().max().copied().unwrap_or(0);
    Layout {
        positions,
        n_cols,
        n_rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gabm_core::constructs::{InputStageSpec, SlewRateSpec};

    #[test]
    fn input_stage_layout_depths() {
        let d = InputStageSpec::new("in", 1e-6, 5e-12).diagram().unwrap();
        let l = layout(&d);
        // probe (2) before ddt (4) before gain (5) before adder (7) before
        // nothing... adder feeds the generator (3).
        let col = |id: usize| l.positions[&id].0;
        assert!(col(2) < col(4));
        assert!(col(4) < col(5));
        assert!(col(5) < col(7));
        assert!(col(7) < col(3));
        assert!(l.n_cols >= 4);
        assert!(l.n_rows >= 1);
    }

    #[test]
    fn feedback_does_not_blow_up() {
        let d = SlewRateSpec::new(1e6, 1e6).diagram().unwrap();
        let l = layout(&d);
        assert!(l.n_cols < 10, "layout diverged: {} cols", l.n_cols);
        assert_eq!(l.positions.len(), d.symbol_count());
    }

    #[test]
    fn empty_diagram() {
        let d = gabm_core::diagram::FunctionalDiagram::new("e");
        let l = layout(&d);
        assert_eq!(l.n_cols, 0);
        assert_eq!(l.n_rows, 0);
    }
}
