//! CLI surface of the `harness` binary: the shared `--threads` /
//! `--trace` flag parsers must reject bad values with the same
//! flag-naming messages as `gabm`, and `--trace` must record the
//! instrumented layers of whatever experiment ran.

use std::process::{Command, Output};

fn harness_in(dir: &std::path::Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_harness"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("harness binary runs")
}

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("no signal")
}

#[test]
fn threads_flag_errors_name_the_flag() {
    let dir = tmpdir("gabm_harness_cli_threads");
    for bad in ["zero", "0", "-3"] {
        let out = harness_in(&dir, &["--threads", bad, "fig1"]);
        assert_eq!(exit_code(&out), 2, "value {bad:?}: {out:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(&format!(
                "invalid value '{bad}' for --threads: expected a positive integer"
            )),
            "value {bad:?}: {stderr}"
        );
    }
    let out = harness_in(&dir, &["fig1", "--threads"]);
    assert_eq!(exit_code(&out), 2, "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--threads requires a value"),
        "{out:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_flag_errors_name_the_flag() {
    let dir = tmpdir("gabm_harness_cli_trace_err");
    let out = harness_in(&dir, &["fig1", "--trace"]);
    assert_eq!(exit_code(&out), 2, "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--trace requires a value"),
        "{out:?}"
    );
    let out = harness_in(&dir, &["--trace", "--threads", "2", "fig1"]);
    assert_eq!(exit_code(&out), 2, "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("invalid value '--threads' for --trace"),
        "{out:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_flag_records_an_experiment() {
    let dir = tmpdir("gabm_harness_cli_trace_run");
    // fig1 is the cheapest experiment that reaches the simulator (its
    // input-resistance rig solves operating points).
    let out = harness_in(
        &dir,
        &["--trace", "fig1_trace.json", "--threads", "2", "fig1"],
    );
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let text = std::fs::read_to_string(dir.join("fig1_trace.json")).expect("trace written");
    assert!(text.contains("\"traceEvents\""), "{text}");
    assert!(text.contains("\"sim."), "simulator spans recorded: {text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_experiment_exits_two() {
    let dir = tmpdir("gabm_harness_cli_unknown");
    let out = harness_in(&dir, &["frobnicate"]);
    assert_eq!(exit_code(&out), 2, "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unknown experiment 'frobnicate'"),
        "{out:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
