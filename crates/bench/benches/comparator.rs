//! E9 — the paper's §5 timing comparison: the same 60 µs triggered-
//! comparator transient on the FAS behavioural model vs the transistor
//! (11-MOS) circuit. The paper reports 4.9 s vs 15.2 s of ELDO CPU time
//! (≈ 3.1× behavioural speedup) on a Sun Sparc 10/30; the reproduced claim
//! is the *direction and rough magnitude* of that ratio.

use gabm_bench::experiments::comparator_bench::{
    behavioural_comparator_circuit, cmos_comparator_circuit, ComparatorStimulus,
};
use gabm_bench::quick::BenchGroup;
use gabm_sim::analysis::tran::TranSpec;
use std::hint::black_box;

fn main() {
    let stim = ComparatorStimulus::default();
    let tstop = 60.0e-6;
    let mut group = BenchGroup::new("table1_comparator_tran_60us");
    group.sample_size(10);
    group.bench_function("fas_behavioural_model", || {
        let (mut ckt, _) = behavioural_comparator_circuit(&stim).expect("bench builds");
        let r = ckt.tran(&TranSpec::new(tstop)).expect("tran runs");
        black_box(r.stats.accepted_steps);
    });
    group.bench_function("cmos_circuit_11_mos", || {
        let (mut ckt, _) = cmos_comparator_circuit(&stim).expect("bench builds");
        let r = ckt.tran(&TranSpec::new(tstop)).expect("tran runs");
        black_box(r.stats.accepted_steps);
    });
}
