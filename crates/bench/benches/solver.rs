//! Ablation — dense vs sparse LU on RC-ladder MNA systems of growing size.
//!
//! Quantifies the simulator-substrate design choice called out in
//! DESIGN.md: small MNA systems (the paper's models are ~10–20 unknowns)
//! favour the dense factorization; the sparse left-looking LU wins as the
//! ladder grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gabm_numeric::{DenseMatrix, LuFactor, SparseLu, TripletBuilder};
use std::hint::black_box;

/// Builds the tridiagonal conductance matrix of an n-stage RC ladder.
fn ladder_dense(n: usize) -> DenseMatrix<f64> {
    let mut m = DenseMatrix::zeros(n, n);
    for i in 0..n {
        m[(i, i)] = 2.0;
        if i > 0 {
            m[(i, i - 1)] = -1.0;
        }
        if i + 1 < n {
            m[(i, i + 1)] = -1.0;
        }
    }
    m
}

fn ladder_sparse(n: usize) -> gabm_numeric::SparseMatrix {
    let mut b = TripletBuilder::new(n, n);
    for i in 0..n {
        b.push(i, i, 2.0);
        if i > 0 {
            b.push(i, i - 1, -1.0);
        }
        if i + 1 < n {
            b.push(i, i + 1, -1.0);
        }
    }
    b.to_csc()
}

fn bench_lu(c: &mut Criterion) {
    let mut group = c.benchmark_group("lu_factor_solve_ladder");
    for &n in &[8usize, 32, 128, 512] {
        let dense = ladder_dense(n);
        let sparse = ladder_sparse(n);
        let rhs = vec![1.0; n];
        group.bench_with_input(BenchmarkId::new("dense", n), &n, |b, _| {
            b.iter(|| {
                let lu = LuFactor::new(&dense).expect("factorizes");
                black_box(lu.solve(&rhs).expect("solves"))
            })
        });
        group.bench_with_input(BenchmarkId::new("sparse", n), &n, |b, _| {
            b.iter(|| {
                let lu = SparseLu::new(&sparse).expect("factorizes");
                black_box(lu.solve(&rhs).expect("solves"))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lu);
criterion_main!(benches);
