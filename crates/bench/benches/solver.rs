//! Ablation — dense vs sparse LU on RC-ladder MNA systems of growing size.
//!
//! Quantifies the simulator-substrate design choice called out in
//! DESIGN.md: small MNA systems (the paper's models are ~10–20 unknowns)
//! favour the dense factorization; the sparse left-looking LU wins as the
//! ladder grows.

use gabm_bench::quick::BenchGroup;
use gabm_numeric::{DenseMatrix, LuFactor, SparseLu, TripletBuilder};
use std::hint::black_box;

/// Builds the tridiagonal conductance matrix of an n-stage RC ladder.
fn ladder_dense(n: usize) -> DenseMatrix<f64> {
    let mut m = DenseMatrix::zeros(n, n);
    for i in 0..n {
        m[(i, i)] = 2.0;
        if i > 0 {
            m[(i, i - 1)] = -1.0;
        }
        if i + 1 < n {
            m[(i, i + 1)] = -1.0;
        }
    }
    m
}

fn ladder_sparse(n: usize) -> gabm_numeric::SparseMatrix {
    let mut b = TripletBuilder::new(n, n);
    for i in 0..n {
        b.push(i, i, 2.0);
        if i > 0 {
            b.push(i, i - 1, -1.0);
        }
        if i + 1 < n {
            b.push(i, i + 1, -1.0);
        }
    }
    b.to_csc()
}

fn main() {
    let mut group = BenchGroup::new("lu_factor_solve_ladder");
    group.sample_size(20);
    for &n in &[8usize, 32, 128, 512] {
        let dense = ladder_dense(n);
        let sparse = ladder_sparse(n);
        let rhs = vec![1.0; n];
        group.bench_function(&format!("dense/{n}"), || {
            let lu = LuFactor::new(&dense).expect("factorizes");
            black_box(lu.solve(&rhs).expect("solves"));
        });
        group.bench_function(&format!("sparse/{n}"), || {
            let lu = SparseLu::new(&sparse).expect("factorizes");
            black_box(lu.solve(&rhs).expect("solves"));
        });
    }
}
