//! Interpreter vs bytecode VM vs native devices on the §5 comparator
//! transient (the E8/E9 vehicle).
//!
//! All three benches run the same stimulus and transient span, so the
//! wall-clock ratios isolate the cost of the FAS execution engine:
//! `fas_interpreter` re-walks the statement tree every Newton
//! iteration, `fas_bytecode_vm` dispatches the pre-compiled register
//! program, and `cmos_native` is the 11-MOS transistor baseline.

use gabm_bench::experiments::comparator_bench::{
    behavioural_comparator_circuit_with, cmos_comparator_circuit, ComparatorStimulus,
};
use gabm_bench::quick::BenchGroup;
use gabm_fasvm::FasBackend;
use gabm_sim::analysis::tran::TranSpec;
use std::hint::black_box;

const TSTOP: f64 = 60.0e-6;

fn main() {
    let stim = ComparatorStimulus::default();
    let mut group = BenchGroup::new("fas_vm_comparator_tran");
    group.bench_function("fas_interpreter", || {
        let (mut ckt, _) =
            behavioural_comparator_circuit_with(&stim, FasBackend::Interp).expect("interp bench");
        let r = ckt.tran(&TranSpec::new(TSTOP)).expect("tran runs");
        black_box(r.stats.newton_iterations);
    });
    group.bench_function("fas_bytecode_vm", || {
        let (mut ckt, _) =
            behavioural_comparator_circuit_with(&stim, FasBackend::Vm).expect("vm bench");
        let r = ckt.tran(&TranSpec::new(TSTOP)).expect("tran runs");
        black_box(r.stats.newton_iterations);
    });
    group.bench_function("cmos_native", || {
        let (mut ckt, _) = cmos_comparator_circuit(&stim).expect("cmos bench");
        let r = ckt.tran(&TranSpec::new(TSTOP)).expect("tran runs");
        black_box(r.stats.newton_iterations);
    });
}
