//! Ablation — integration method and step control.
//!
//! * backward Euler vs trapezoidal vs Gear-2 on the same RLC transient;
//! * LTE-adaptive stepping vs a (quasi-)fixed fine step — the variable
//!   time interval the paper's §3.3 note presupposes is also a performance
//!   feature.

use gabm_bench::quick::BenchGroup;
use gabm_numeric::integrate::Method;
use gabm_sim::analysis::tran::TranSpec;
use gabm_sim::circuit::Circuit;
use gabm_sim::devices::SourceWave;
use std::hint::black_box;

fn rlc_circuit() -> Circuit {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let m = ckt.node("m");
    let o = ckt.node("o");
    ckt.add_vsource("V1", a, Circuit::GROUND, SourceWave::sine(0.0, 1.0, 5.0e3));
    ckt.add_resistor("R1", a, m, 50.0).expect("valid resistor");
    ckt.add_inductor("L1", m, o, 1.0e-3)
        .expect("valid inductor");
    ckt.add_capacitor("C1", o, Circuit::GROUND, 1.0e-6);
    ckt
}

fn main() {
    let mut group = BenchGroup::new("integration_method_rlc_2ms");
    for (name, method) in [
        ("backward_euler", Method::BackwardEuler),
        ("trapezoidal", Method::Trapezoidal),
        ("gear2", Method::Gear2),
    ] {
        group.bench_function(name, || {
            let mut ckt = rlc_circuit();
            let r = ckt
                .tran(&TranSpec::new(2.0e-3).with_method(method))
                .expect("tran runs");
            black_box(r.stats.accepted_steps);
        });
    }

    let mut group = BenchGroup::new("step_control_rlc_2ms");
    group.bench_function("adaptive_lte", || {
        let mut ckt = rlc_circuit();
        let r = ckt.tran(&TranSpec::new(2.0e-3)).expect("tran runs");
        black_box(r.stats.accepted_steps);
    });
    group.bench_function("quasi_fixed_fine_step", || {
        let mut ckt = rlc_circuit();
        let spec = TranSpec {
            dt_init: Some(2.0e-7),
            dt_max: Some(2.0e-7),
            ..TranSpec::new(2.0e-3)
        };
        let r = ckt.tran(&spec).expect("tran runs");
        black_box(r.stats.accepted_steps);
    });
}
