//! Ablation — cost of the FAS interpretation layer.
//!
//! The same R ∥ C input load simulated three ways: native primitive
//! devices, the compiled FAS input-stage model (interpreter + numerical
//! Jacobian), and the full generate-compile-simulate pipeline including
//! code generation each iteration. Quantifies what the behavioural
//! abstraction costs on top of raw device evaluation.

use gabm_bench::quick::BenchGroup;
use gabm_codegen::{generate, Backend};
use gabm_core::constructs::InputStageSpec;
use gabm_fas::compile;
use gabm_sim::analysis::tran::TranSpec;
use gabm_sim::circuit::Circuit;
use gabm_sim::devices::SourceWave;
use std::collections::BTreeMap;
use std::hint::black_box;

const RIN: f64 = 1.0e6;
const CIN: f64 = 100.0e-12;
const TSTOP: f64 = 50.0e-6;

fn drive(ckt: &mut Circuit) -> gabm_sim::NodeId {
    let src = ckt.node("src");
    let inn = ckt.node("in");
    ckt.add_vsource(
        "V1",
        src,
        Circuit::GROUND,
        SourceWave::sine(0.0, 1.0, 100.0e3),
    );
    ckt.add_resistor("RS", src, inn, 1.0e5)
        .expect("valid resistor");
    inn
}

fn main() {
    let mut group = BenchGroup::new("fas_vs_native_rc_load");
    group.bench_function("native_r_and_c", || {
        let mut ckt = Circuit::new();
        let inn = drive(&mut ckt);
        ckt.add_resistor("RIN", inn, Circuit::GROUND, RIN)
            .expect("valid resistor");
        ckt.add_capacitor("CIN", inn, Circuit::GROUND, CIN);
        let r = ckt.tran(&TranSpec::new(TSTOP)).expect("tran runs");
        black_box(r.stats.accepted_steps);
    });
    // Compile once, simulate many times (the realistic usage).
    let code = generate(
        &InputStageSpec::new("in", 1.0 / RIN, CIN)
            .diagram()
            .expect("diagram builds"),
        Backend::Fas,
    )
    .expect("generates");
    let model = compile(&code.text).expect("compiles");
    group.bench_function("fas_interpreted_model", || {
        let mut ckt = Circuit::new();
        let inn = drive(&mut ckt);
        let machine = model.instantiate(&BTreeMap::new()).expect("instantiates");
        ckt.add_behavioral("XIN", &[inn], Box::new(machine))
            .expect("attaches");
        let r = ckt.tran(&TranSpec::new(TSTOP)).expect("tran runs");
        black_box(r.stats.accepted_steps);
    });
    group.bench_function("full_pipeline_incl_codegen", || {
        let diagram = InputStageSpec::new("in", 1.0 / RIN, CIN)
            .diagram()
            .expect("diagram builds");
        let code = generate(&diagram, Backend::Fas).expect("generates");
        let model = compile(&code.text).expect("compiles");
        let mut ckt = Circuit::new();
        let inn = drive(&mut ckt);
        let machine = model.instantiate(&BTreeMap::new()).expect("instantiates");
        ckt.add_behavioral("XIN", &[inn], Box::new(machine))
            .expect("attaches");
        let r = ckt.tran(&TranSpec::new(TSTOP)).expect("tran runs");
        black_box(r.stats.accepted_steps);
    });
}
