//! Experiment builders for the construct figures (Figs. 2–5): each §3.3
//! construct is generated, compiled, simulated and re-measured.

use gabm_charac::{Dut, FnDut};
use gabm_codegen::{generate, Backend};
use gabm_core::constructs::{InputStageSpec, OutputStageSpec, SlewRateSpec};
use gabm_core::diagram::{FunctionalDiagram, PortRef, SymbolId};
use gabm_fas::compile;
use gabm_sim::circuit::{Circuit, NodeId};
use gabm_sim::SimError;
use std::collections::BTreeMap;

/// Builds a [`Dut`] from any functional diagram via generated FAS code.
///
/// # Errors
///
/// Code generation or compilation failures (returned as strings — the
/// harness prints them).
pub fn diagram_dut(diagram: &FunctionalDiagram) -> Result<impl Dut, String> {
    let code = generate(diagram, Backend::Fas).map_err(|e| e.to_string())?;
    let model = compile(&code.text).map_err(|e| e.to_string())?;
    let pins: Vec<String> = model.pins().iter().map(|p| p.to_string()).collect();
    let pin_refs: Vec<&str> = pins.iter().map(String::as_str).collect();
    let build = move |ckt: &mut Circuit, name: &str, nodes: &[NodeId]| -> Result<(), SimError> {
        let machine = model
            .instantiate(&BTreeMap::new())
            .expect("defaults always instantiate");
        ckt.add_behavioral(name, nodes, Box::new(machine))
    };
    Ok(FnDut::new(&pin_refs, build))
}

/// A slew-limited unity buffer: input stage → slew-rate block → output
/// stage. The smallest complete model exercising Fig. 5 electrically.
#[derive(Debug, Clone, PartialEq)]
pub struct SlewBufferSpec {
    /// Input resistance (Ω).
    pub rin: f64,
    /// Input capacitance (F).
    pub cin: f64,
    /// Output conductance (S).
    pub gout: f64,
    /// Max rise rate (V/s).
    pub slew_rise: f64,
    /// Max fall rate (V/s).
    pub slew_fall: f64,
}

impl Default for SlewBufferSpec {
    fn default() -> Self {
        SlewBufferSpec {
            rin: 1.0e6,
            cin: 1.0e-12,
            gout: 1.0e-2,
            slew_rise: 1.0e6,
            slew_fall: 0.5e6,
        }
    }
}

fn merged_port(
    sub: &FunctionalDiagram,
    name: &str,
    offset: usize,
) -> Result<PortRef, gabm_core::CoreError> {
    let itf = sub.interface_port(name)?;
    Ok(PortRef {
        symbol: SymbolId(itf.inner.symbol.0 + offset),
        port: itf.inner.port,
    })
}

impl SlewBufferSpec {
    /// Builds the composed diagram (pins: `in`, `out`).
    ///
    /// # Errors
    ///
    /// Diagram construction errors.
    pub fn diagram(&self) -> Result<FunctionalDiagram, gabm_core::CoreError> {
        let mut d = FunctionalDiagram::new("slew_buffer");
        let in_sub = InputStageSpec::new("in", 1.0 / self.rin, self.cin).diagram()?;
        let o_in = d.merge(in_sub.clone());
        let slew_sub = SlewRateSpec::new(self.slew_rise, self.slew_fall).diagram()?;
        let o_slew = d.merge(slew_sub.clone());
        let out_sub = OutputStageSpec::new("out", self.gout).diagram()?;
        let o_out = d.merge(out_sub.clone());
        d.connect(
            merged_port(&in_sub, "v", o_in)?,
            merged_port(&slew_sub, "u", o_slew)?,
        )?;
        d.connect(
            merged_port(&slew_sub, "y", o_slew)?,
            merged_port(&out_sub, "vin", o_out)?,
        )?;
        Ok(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gabm_charac::rigs;

    #[test]
    fn input_stage_dut_extracts_parameters() {
        let spec = InputStageSpec::new("in", 1.0 / 1.0e6, 5.0e-12);
        let dut = diagram_dut(&spec.diagram().unwrap()).unwrap();
        let rin = rigs::input_resistance(&dut, "in", &[]).unwrap();
        assert!(
            (rin.value - 1.0e6).abs() / 1.0e6 < 1e-3,
            "rin = {}",
            rin.value
        );
        let cin = rigs::input_capacitance(&dut, "in", &[], 5.0e-12).unwrap();
        assert!(
            (cin.value - 5.0e-12).abs() / 5.0e-12 < 0.15,
            "cin = {:.3e}",
            cin.value
        );
    }

    #[test]
    fn output_stage_dut_extracts_rout_and_ilim() {
        let spec = OutputStageSpec::new("out", 1.0e-3).with_current_limit(10.0e-3);
        let dut = diagram_dut(&spec.diagram().unwrap()).unwrap();
        let rout = rigs::output_resistance(&dut, "out", &[], 1.0e-4).unwrap();
        assert!(
            (rout.value - 1.0e3).abs() / 1.0e3 < 1e-2,
            "rout = {}",
            rout.value
        );
        let ilim = rigs::output_current_limit(&dut, "out", &[], 0.1, 0.5).unwrap();
        assert!(
            (ilim.value - 10.0e-3).abs() / 10.0e-3 < 0.2,
            "ilim = {:.3e}",
            ilim.value
        );
    }

    #[test]
    fn slew_buffer_limits_slopes() {
        let spec = SlewBufferSpec::default();
        let dut = diagram_dut(&spec.diagram().unwrap()).unwrap();
        let (rise, fall) = rigs::slew_rates(&dut, "in", "out", &[], -1.0, 1.0, 40.0e-6).unwrap();
        assert!(
            (rise.value - spec.slew_rise).abs() / spec.slew_rise < 0.2,
            "rise = {:.3e}",
            rise.value
        );
        assert!(
            (fall.value - spec.slew_fall).abs() / spec.slew_fall < 0.2,
            "fall = {:.3e}",
            fall.value
        );
    }
}
