//! One module per paper experiment (see DESIGN.md §4).

pub mod comparator_bench;
pub mod constructs_bench;
