//! The §5 evaluation vehicle: the triggered comparator, behavioural (FAS)
//! and transistor-level (11 MOS), under the same stimulus.
//!
//! Used by Fig. 7 (waveform comparison) and the timing table ("ELDO needed
//! 4.9 s … to simulate the FAS model and 15.2 s to simulate the circuit").

use gabm_fasvm::FasBackend;
use gabm_models::comparator::{ComparatorSpec, OffState};
use gabm_models::CmosComparator;
use gabm_sim::circuit::{Circuit, NodeId};
use gabm_sim::devices::SourceWave;
use gabm_sim::SimError;

/// The common Fig. 7 stimulus: a differential input sine plus a strobe
/// pulse train, on ±2.5 V supplies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComparatorStimulus {
    /// Differential input amplitude (V).
    pub amplitude: f64,
    /// Differential input frequency (Hz).
    pub input_freq: f64,
    /// Strobe period (s).
    pub strobe_period: f64,
    /// Strobe active width (s).
    pub strobe_width: f64,
    /// Supply magnitude (V).
    pub supply: f64,
}

impl Default for ComparatorStimulus {
    fn default() -> Self {
        ComparatorStimulus {
            amplitude: 0.5,
            input_freq: 50.0e3,
            strobe_period: 10.0e-6,
            strobe_width: 4.0e-6,
            supply: 2.5,
        }
    }
}

impl ComparatorStimulus {
    fn add_sources(&self, ckt: &mut Circuit, inp: NodeId, inn: NodeId, strobe: NodeId) {
        ckt.add_vsource(
            "VINP",
            inp,
            Circuit::GROUND,
            SourceWave::sine(0.0, self.amplitude / 2.0, self.input_freq),
        );
        ckt.add_vsource(
            "VINN",
            inn,
            Circuit::GROUND,
            SourceWave::Sine {
                offset: 0.0,
                ampl: self.amplitude / 2.0,
                freq: self.input_freq,
                delay: 0.0,
                phase: std::f64::consts::PI,
            },
        );
        ckt.add_vsource(
            "VSTB",
            strobe,
            Circuit::GROUND,
            SourceWave::pulse(
                -self.supply,
                self.supply,
                self.strobe_period / 4.0,
                50.0e-9,
                50.0e-9,
                self.strobe_width,
                self.strobe_period,
            ),
        );
    }

    /// Time windows (within `tstop`) where the strobe is fully active —
    /// where behavioural and transistor outputs are comparable.
    pub fn strobe_windows(&self, tstop: f64) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        let mut base = self.strobe_period / 4.0;
        while base < tstop {
            let lo = base + 0.5e-6;
            let hi = (base + self.strobe_width - 0.2e-6).min(tstop);
            if hi > lo {
                out.push((lo, hi));
            }
            base += self.strobe_period;
        }
        out
    }
}

/// Builds the behavioural (FAS) comparator test bench on the
/// interpreter backend. Returns the circuit and the nodes
/// `(inp, inn, strobe, outp, outn)`.
///
/// # Errors
///
/// Model-pipeline or netlist errors.
pub fn behavioural_comparator_circuit(
    stim: &ComparatorStimulus,
) -> Result<(Circuit, [NodeId; 5]), SimError> {
    behavioural_comparator_circuit_with(stim, FasBackend::Interp)
}

/// Builds the behavioural comparator test bench on a chosen FAS
/// execution backend — tree-walking interpreter or bytecode VM.
///
/// # Errors
///
/// Model-pipeline or netlist errors.
pub fn behavioural_comparator_circuit_with(
    stim: &ComparatorStimulus,
    backend: FasBackend,
) -> Result<(Circuit, [NodeId; 5]), SimError> {
    // `Hold` mirrors the transistor circuit's dynamic behaviour: with the
    // tail current cut, the CMOS second stage keeps its last state on the
    // gate capacitances for (much longer than) one strobe period.
    let spec = ComparatorSpec {
        v_high: stim.supply - 0.5,
        v_low: -(stim.supply - 0.5),
        off_state: OffState::Hold,
        ..ComparatorSpec::default()
    };
    let machine = spec
        .instance(backend)
        .map_err(|e| SimError::BadAnalysis(e.to_string()))?;
    let mut ckt = Circuit::new();
    let inp = ckt.node("inp");
    let inn = ckt.node("inn");
    let strobe = ckt.node("strobe");
    let outp = ckt.node("outp");
    let outn = ckt.node("outn");
    let vdd = ckt.node("vdd");
    let vss = ckt.node("vss");
    ckt.add_behavioral("XCMP", &[inp, inn, strobe, outp, outn, vdd, vss], machine)?;
    ckt.add_vsource("VDD", vdd, Circuit::GROUND, SourceWave::dc(stim.supply));
    ckt.add_vsource("VSS", vss, Circuit::GROUND, SourceWave::dc(-stim.supply));
    stim.add_sources(&mut ckt, inp, inn, strobe);
    ckt.add_resistor("RLP", outp, Circuit::GROUND, 10.0e3)?;
    ckt.add_resistor("RLN", outn, Circuit::GROUND, 10.0e3)?;
    Ok((ckt, [inp, inn, strobe, outp, outn]))
}

/// Builds the transistor-level (11 MOS) comparator test bench. Returns the
/// circuit and the nodes `(inp, inn, strobe, out)`.
///
/// # Errors
///
/// Netlist errors.
pub fn cmos_comparator_circuit(
    stim: &ComparatorStimulus,
) -> Result<(Circuit, [NodeId; 4]), SimError> {
    let mut ckt = Circuit::new();
    let nodes: Vec<NodeId> = CmosComparator::pin_order()
        .iter()
        .map(|p| ckt.node(p))
        .collect();
    CmosComparator::new()
        .instantiate(&mut ckt, "XCMP", &nodes)
        .map_err(|e| SimError::BadAnalysis(e.to_string()))?;
    let (inp, inn, strobe, out, vdd, vss) =
        (nodes[0], nodes[1], nodes[2], nodes[3], nodes[4], nodes[5]);
    ckt.add_vsource("VDD", vdd, Circuit::GROUND, SourceWave::dc(stim.supply));
    ckt.add_vsource("VSS", vss, Circuit::GROUND, SourceWave::dc(-stim.supply));
    stim.add_sources(&mut ckt, inp, inn, strobe);
    ckt.add_resistor("RL", out, Circuit::GROUND, 10.0e3)?;
    Ok((ckt, [inp, inn, strobe, out]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gabm_sim::analysis::tran::TranSpec;

    #[test]
    fn strobe_windows_cover_run() {
        let stim = ComparatorStimulus::default();
        let w = stim.strobe_windows(60e-6);
        assert!(w.len() >= 5, "windows: {w:?}");
        assert!(w.iter().all(|(lo, hi)| hi > lo));
    }

    /// The headline §5 experiment in miniature: both benches run the same
    /// transient, the decisions agree inside strobe windows, and the
    /// behavioural model costs less.
    #[test]
    fn behavioural_and_cmos_agree_in_strobe_windows() {
        let stim = ComparatorStimulus::default();
        let tstop = 60.0e-6;
        let (mut beh, bn) = behavioural_comparator_circuit(&stim).unwrap();
        let rb = beh.tran(&TranSpec::new(tstop)).unwrap();
        let wb = rb.voltage_waveform(bn[3]).unwrap();
        let (mut cmos, cn) = cmos_comparator_circuit(&stim).unwrap();
        let rc = cmos.tran(&TranSpec::new(tstop)).unwrap();
        let wc = rc.voltage_waveform(cn[3]).unwrap();
        let mut checked = 0;
        for (lo, hi) in stim.strobe_windows(tstop) {
            // Sample the window centre: decisions must agree in sign.
            let t = 0.5 * (lo + hi);
            let vb = wb.value_at(t).unwrap();
            let vc = wc.value_at(t).unwrap();
            if vb.abs() > 0.5 && vc.abs() > 0.5 {
                assert_eq!(
                    vb.signum(),
                    vc.signum(),
                    "decision mismatch at t = {t:.2e}: beh {vb:.2}, cmos {vc:.2}"
                );
                checked += 1;
            }
        }
        assert!(checked >= 3, "only {checked} comparable windows");
        // Cost comparison (machine-independent): the behavioural run needs
        // fewer device-evaluation sweeps per unknown… assert on the overall
        // Newton work, the quantity wall-clock follows.
        let work_beh = rb.stats.newton_iterations * beh.n_unknowns();
        let work_cmos = rc.stats.newton_iterations * cmos.n_unknowns();
        assert!(
            work_cmos > work_beh,
            "expected the transistor circuit to cost more: beh {work_beh}, cmos {work_cmos}"
        );
    }
}
