//! Experiment builders regenerating every table and figure of the paper.
//!
//! Each module of [`experiments`] owns one experiment from DESIGN.md's
//! index; the `harness` binary prints the rows/series, and the micro-bench
//! targets ([`quick`]) reuse the same builders for the timing comparisons.

pub mod experiments;
pub mod quick;

pub use experiments::comparator_bench::{
    behavioural_comparator_circuit, cmos_comparator_circuit, ComparatorStimulus,
};
pub use experiments::constructs_bench::{diagram_dut, SlewBufferSpec};
