//! Minimal micro-benchmark runner for the `cargo bench` targets.
//!
//! The workspace builds with no network access, so the bench targets
//! cannot depend on Criterion; this runner keeps the same shape (groups
//! of named benchmark functions, warm-up then timed samples, a stats
//! line per function) at a fraction of the machinery. It is deliberately
//! simple: wall-clock timing, median-of-samples reporting.

use std::time::{Duration, Instant};

/// A named group of benchmark functions, mirroring Criterion's
/// `benchmark_group` API closely enough to keep the bench sources simple.
pub struct BenchGroup {
    name: String,
    samples: usize,
}

impl BenchGroup {
    /// Creates a group; by default each function is sampled 10 times.
    pub fn new(name: &str) -> Self {
        BenchGroup {
            name: name.to_string(),
            samples: 10,
        }
    }

    /// Sets the per-function sample count.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Runs `f` once as warm-up and then `samples` timed times, printing
    /// min / median / mean wall-clock duration.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut()) -> &mut Self {
        f(); // warm-up (page in code, fill caches)
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            f();
            times.push(start.elapsed());
        }
        times.sort();
        let min = times[0];
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        println!(
            "{}/{name:<32} min {:>12.3?}  median {:>12.3?}  mean {:>12.3?}  ({} samples)",
            self.name, min, median, mean, self.samples
        );
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_counts_samples() {
        let mut calls = 0usize;
        BenchGroup::new("t")
            .sample_size(3)
            .bench_function("f", || calls += 1);
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }
}
