//! Regenerates every table and figure of the paper (see DESIGN.md §4).
//!
//! ```text
//! harness [experiment]
//!   fig1       model development steps (definition card → diagram → code → simulation)
//!   fig2       input stage: diagram + extracted Rin/Cin
//!   fig3       output stage: diagram + extracted Rout/Ilim
//!   fig4       power supply: current balance sheet of the comparator
//!   fig5       slew rate: extracted rise/fall slopes
//!   listing42  the generated §4.2 ELDO-FAS listing
//!   fig6       comparator functional diagram
//!   fig7       triggered-comparator transient, behavioural vs 11-MOS CMOS
//!   table1     CPU-cost comparison (the paper's 4.9 s vs 15.2 s result)
//!   modelcheck extracted vs assigned parameters (§2.4)
//!   validity   range-of-validity scan (§2.4)
//!   ablation   transient tolerance / integration-method cost sweep
//!   bode       open-loop Bode of the behavioural opamp vs the analytic pole
//!   fasvm      FAS interpreter vs bytecode VM vs CMOS (writes BENCH_fasvm.json)
//!   all        everything above (default)
//! ```
//!
//! SVG renderings of the diagrams are written to `figures/`.

use gabm_bench::experiments::comparator_bench::{
    behavioural_comparator_circuit, behavioural_comparator_circuit_with, cmos_comparator_circuit,
    ComparatorStimulus,
};
use gabm_bench::experiments::constructs_bench::{diagram_dut, SlewBufferSpec};
use gabm_charac::{check_model, rigs, validity, Bias};
use gabm_codegen::{generate, Backend};
use gabm_core::check::check_diagram;
use gabm_core::constructs::{InputStageSpec, OutputStageSpec, PowerSupplySpec, SlewRateSpec};
use gabm_core::diagram::FunctionalDiagram;
use gabm_models::comparator::ComparatorSpec;
use gabm_schematic::{render_ascii, render_svg};
use gabm_sim::analysis::tran::TranSpec;
use std::time::Instant;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let all = which == "all";
    std::fs::create_dir_all("figures").ok();
    let mut ran = false;
    if all || which == "fig1" {
        fig1();
        ran = true;
    }
    if all || which == "fig2" {
        fig2();
        ran = true;
    }
    if all || which == "fig3" {
        fig3();
        ran = true;
    }
    if all || which == "fig4" {
        fig4();
        ran = true;
    }
    if all || which == "fig5" {
        fig5();
        ran = true;
    }
    if all || which == "listing42" {
        listing42();
        ran = true;
    }
    if all || which == "fig6" {
        fig6();
        ran = true;
    }
    if all || which == "fig7" {
        fig7();
        ran = true;
    }
    if all || which == "table1" {
        table1();
        ran = true;
    }
    if all || which == "modelcheck" {
        modelcheck();
        ran = true;
    }
    if all || which == "validity" {
        validity_scan();
        ran = true;
    }
    if all || which == "ablation" {
        ablation();
        ran = true;
    }
    if all || which == "bode" {
        bode();
        ran = true;
    }
    if all || which == "fasvm" {
        fasvm();
        ran = true;
    }
    if !ran {
        eprintln!("unknown experiment '{which}' — see the module docs for the list");
        std::process::exit(2);
    }
}

fn banner(title: &str) {
    println!("\n==================================================================");
    println!("  {title}");
    println!("==================================================================");
}

fn save_svg(d: &FunctionalDiagram, file: &str) {
    let svg = render_svg(d);
    let path = format!("figures/{file}");
    if std::fs::write(&path, svg).is_ok() {
        println!("  [svg written to {path}]");
    }
}

/// E1 / Fig. 1 — the model development steps.
fn fig1() {
    banner("Fig. 1 — model development steps: card -> diagram -> code -> simulation");
    let spec = InputStageSpec::new("in", 1.0e-6, 5.0e-12);
    let card = spec.card().expect("card builds");
    println!("{card}");
    let diagram = spec.diagram().expect("diagram builds");
    let report = check_diagram(&diagram);
    println!(
        "consistency check: {} errors, {} warnings",
        report.error_count(),
        report.warning_count()
    );
    print!("{}", render_ascii(&diagram));
    let code = generate(&diagram, Backend::Fas).expect("code generates");
    println!("{}", code.text);
    // Simulate: the model must load a 1 V source with 1 µA.
    let dut = diagram_dut(&diagram).expect("dut builds");
    let rin = rigs::input_resistance(&dut, "in", &[]).expect("rig runs");
    println!("simulated: {rin} (assigned 1e6 ohm)");
}

/// E2 / Fig. 2 — input stage.
fn fig2() {
    banner("Fig. 2 — input stage: functional diagram and extraction");
    let assigned_rin = 1.0e6;
    let assigned_cin = 5.0e-12;
    let spec = InputStageSpec::new("in", 1.0 / assigned_rin, assigned_cin);
    let diagram = spec.diagram().expect("diagram builds");
    print!("{}", render_ascii(&diagram));
    save_svg(&diagram, "fig2_input_stage.svg");
    let dut = diagram_dut(&diagram).expect("dut builds");
    let rin = rigs::input_resistance(&dut, "in", &[]).expect("rin rig");
    let cin = rigs::input_capacitance(&dut, "in", &[], assigned_cin).expect("cin rig");
    println!("{:<12} {:>14} {:>14}", "parameter", "assigned", "extracted");
    println!(
        "{:<12} {:>14.4e} {:>14.4e}",
        "rin [ohm]", assigned_rin, rin.value
    );
    println!(
        "{:<12} {:>14.4e} {:>14.4e}",
        "cin [F]", assigned_cin, cin.value
    );
}

/// E3 / Fig. 3 — output stage.
fn fig3() {
    banner("Fig. 3 — output stage: functional diagram and extraction");
    let gout = 1.0e-3;
    let ilim = 10.0e-3;
    let spec = OutputStageSpec::new("out", gout).with_current_limit(ilim);
    let diagram = spec.diagram().expect("diagram builds");
    print!("{}", render_ascii(&diagram));
    save_svg(&diagram, "fig3_output_stage.svg");
    let dut = diagram_dut(&diagram).expect("dut builds");
    let rout = rigs::output_resistance(&dut, "out", &[], 1.0e-4).expect("rout rig");
    let ilim_x = rigs::output_current_limit(&dut, "out", &[], 0.1, 0.5).expect("ilim rig");
    println!("{:<12} {:>14} {:>14}", "parameter", "assigned", "extracted");
    println!(
        "{:<12} {:>14.4e} {:>14.4e}",
        "rout [ohm]",
        1.0 / gout,
        rout.value
    );
    println!("{:<12} {:>14.4e} {:>14.4e}", "ilim [A]", ilim, ilim_x.value);
}

/// E4 / Fig. 4 — power supply balance sheet.
fn fig4() {
    banner("Fig. 4 — power supply: current balance sheet");
    let psu = PowerSupplySpec::new("vdd", "vss", 1.0e-5, 1.0e-4, 2);
    let diagram = psu.diagram().expect("diagram builds");
    print!("{}", render_ascii(&diagram));
    save_svg(&diagram, "fig4_power_supply.svg");
    // Measure the balance on the full comparator model.
    let spec = ComparatorSpec::default();
    let model = gabm_fas::compile(&spec.fas_code().expect("code")).expect("compiles");
    let dut = gabm_models::dut::fas_dut(model, Default::default()).expect("dut");
    let xs = rigs::supply_currents(
        &dut,
        "vdd",
        "vss",
        &[
            ("inp", Bias::Voltage(0.2)),
            ("inn", Bias::Voltage(-0.2)),
            ("strobe", Bias::Voltage(1.0)),
            ("vdd", Bias::Voltage(2.5)),
            ("vss", Bias::Voltage(-2.5)),
        ],
    )
    .expect("supply rig");
    for x in &xs {
        println!("  {x}");
    }
    let analytic = spec.gpol * 5.0 + spec.iloss;
    println!("  analytic i_vdd ~ gpol*(vdd-vss) + iloss = {analytic:.4e} A (plus stage currents)");
}

/// E5 / Fig. 5 — slew rate.
fn fig5() {
    banner("Fig. 5 — slew-rate block: diagram and extracted slopes");
    let slew = SlewRateSpec::new(1.0e6, 0.5e6);
    let diagram = slew.diagram().expect("diagram builds");
    print!("{}", render_ascii(&diagram));
    save_svg(&diagram, "fig5_slew_rate.svg");
    let buffer = SlewBufferSpec::default();
    let dut = diagram_dut(&buffer.diagram().expect("buffer diagram")).expect("dut");
    let (rise, fall) =
        rigs::slew_rates(&dut, "in", "out", &[], -1.0, 1.0, 40.0e-6).expect("slew rig");
    println!("{:<14} {:>14} {:>14}", "parameter", "assigned", "extracted");
    println!(
        "{:<14} {:>14.4e} {:>14.4e}",
        "srise [V/s]", buffer.slew_rise, rise.value
    );
    println!(
        "{:<14} {:>14.4e} {:>14.4e}",
        "sfall [V/s]", buffer.slew_fall, fall.value
    );
}

/// E6 / §4.2 — the generated FAS listing.
fn listing42() {
    banner("Section 4.2 — generated ELDO-FAS code of the input stage");
    let diagram = InputStageSpec::new("in", 1.0e-6, 5.0e-12)
        .diagram()
        .expect("diagram builds");
    let code = generate(&diagram, Backend::Fas).expect("generates");
    println!("{}", code.text);
    println!("--- the same diagram in VHDL-AMS ---");
    println!(
        "{}",
        generate(&diagram, Backend::VhdlAms).expect("vhdl").text
    );
    println!("--- and in MAST ---");
    println!("{}", generate(&diagram, Backend::Mast).expect("mast").text);
}

/// E7 / Fig. 6 — the comparator functional diagram.
fn fig6() {
    banner("Fig. 6 — functional diagram of the triggered comparator");
    let spec = ComparatorSpec::default();
    println!("{}", spec.card().expect("card builds"));
    let diagram = spec.diagram().expect("diagram builds");
    let report = check_diagram(&diagram);
    println!(
        "symbols: {}, nets: {}, consistency: {} errors / {} warnings",
        diagram.symbol_count(),
        diagram.nets().count(),
        report.error_count(),
        report.warning_count()
    );
    print!("{}", render_ascii(&diagram));
    save_svg(&diagram, "fig6_comparator.svg");
}

/// E8 / Fig. 7 — transient waveforms, behavioural vs transistor-level.
fn fig7() {
    banner("Fig. 7 — simulation of the triggered comparator (60 us)");
    let stim = ComparatorStimulus::default();
    let tstop = 60.0e-6;
    let (mut beh, bn) = behavioural_comparator_circuit(&stim).expect("behavioural bench");
    let rb = beh.tran(&TranSpec::new(tstop)).expect("behavioural tran");
    let w_beh = rb.voltage_waveform(bn[3]).expect("waveform");
    let w_in = rb.voltage_waveform(bn[0]).expect("waveform");
    let w_stb = rb.voltage_waveform(bn[2]).expect("waveform");
    let (mut cmos, cn) = cmos_comparator_circuit(&stim).expect("cmos bench");
    let rc = cmos.tran(&TranSpec::new(tstop)).expect("cmos tran");
    let w_cmos = rc.voltage_waveform(cn[3]).expect("waveform");

    // Terminal oscillogram, like the paper's figure.
    let opts = gabm_numeric::plot::PlotOptions {
        width: 96,
        height: 14,
        y_range: Some((-2.8, 2.8)),
    };
    if let Ok(plot) = gabm_numeric::plot::ascii_plot(
        &[
            ("input (inp)", &w_in),
            ("out behavioural", &w_beh),
            ("out CMOS", &w_cmos),
        ],
        &opts,
    ) {
        println!("{plot}");
    }
    println!("time_us,vin_p,strobe,out_behavioural,out_cmos");
    let n = 120;
    for k in 0..=n {
        let t = tstop * k as f64 / n as f64;
        println!(
            "{:8.3},{:8.4},{:8.3},{:8.4},{:8.4}",
            t * 1e6,
            w_in.value_at(t).unwrap_or(0.0),
            w_stb.value_at(t).unwrap_or(0.0),
            w_beh.value_at(t).unwrap_or(0.0),
            w_cmos.value_at(t).unwrap_or(0.0)
        );
    }
    // Decision agreement inside strobe windows.
    let mut agree = 0;
    let mut total = 0;
    for (lo, hi) in stim.strobe_windows(tstop) {
        let t = 0.5 * (lo + hi);
        let vb = w_beh.value_at(t).unwrap_or(0.0);
        let vc = w_cmos.value_at(t).unwrap_or(0.0);
        if vb.abs() > 0.5 && vc.abs() > 0.5 {
            total += 1;
            if vb.signum() == vc.signum() {
                agree += 1;
            }
        }
    }
    println!("decision agreement inside strobe windows: {agree}/{total}");
    std::fs::write(
        "figures/fig7_behavioural.csv",
        w_beh.to_csv("out_behavioural"),
    )
    .ok();
    std::fs::write("figures/fig7_cmos.csv", w_cmos.to_csv("out_cmos")).ok();
    println!("  [series written to figures/fig7_*.csv]");
}

/// E9 / the §5 timing table. Each transient is repeated and the fastest
/// run reported (the runs are milliseconds long, so scheduling noise
/// otherwise dominates).
fn table1() {
    banner("Table — CPU cost: FAS model vs transistor circuit (paper: 4.9 s vs 15.2 s)");
    let stim = ComparatorStimulus::default();
    let tstop = 60.0e-6;
    const REPS: usize = 7;

    let mut t_beh = f64::INFINITY;
    let mut rb = None;
    let mut beh_unknowns = 0;
    for _ in 0..REPS {
        let (mut beh, _) = behavioural_comparator_circuit(&stim).expect("behavioural bench");
        beh_unknowns = beh.n_unknowns();
        let t0 = Instant::now();
        let r = beh.tran(&TranSpec::new(tstop)).expect("behavioural tran");
        t_beh = t_beh.min(t0.elapsed().as_secs_f64());
        rb = Some(r);
    }
    let rb = rb.expect("at least one repetition");

    let mut t_cmos = f64::INFINITY;
    let mut rc = None;
    let mut cmos_unknowns = 0;
    for _ in 0..REPS {
        let (mut cmos, _) = cmos_comparator_circuit(&stim).expect("cmos bench");
        cmos_unknowns = cmos.n_unknowns();
        let t0 = Instant::now();
        let r = cmos.tran(&TranSpec::new(tstop)).expect("cmos tran");
        t_cmos = t_cmos.min(t0.elapsed().as_secs_f64());
        rc = Some(r);
    }
    let rc = rc.expect("at least one repetition");

    println!(
        "{:<24} {:>9} {:>8} {:>9} {:>10} {:>10}",
        "model", "unknowns", "steps", "NR iters", "time [s]", "vs paper"
    );
    println!(
        "{:<24} {:>9} {:>8} {:>9} {:>10.3} {:>10}",
        "FAS behavioural",
        beh_unknowns,
        rb.stats.accepted_steps,
        rb.stats.newton_iterations,
        t_beh,
        "4.9 s"
    );
    println!(
        "{:<24} {:>9} {:>8} {:>9} {:>10.3} {:>10}",
        "CMOS circuit (11 MOS)",
        cmos_unknowns,
        rc.stats.accepted_steps,
        rc.stats.newton_iterations,
        t_cmos,
        "15.2 s"
    );
    println!(
        "speedup: measured {:.2}x — paper reports 15.2/4.9 = 3.1x (Sun Sparc 10/30)",
        t_cmos / t_beh
    );
}

/// E10 / §2.4 — the model check.
fn modelcheck() {
    banner("Section 2.4 — model check: extracted vs assigned parameters");
    // Input stage.
    let rin = 1.0e6;
    let cin = 5.0e-12;
    let in_spec = InputStageSpec::new("in", 1.0 / rin, cin);
    let dut = diagram_dut(&in_spec.diagram().expect("diagram")).expect("dut");
    let x_rin = rigs::input_resistance(&dut, "in", &[]).expect("rin");
    let x_cin = rigs::input_capacitance(&dut, "in", &[], cin).expect("cin");
    let report = check_model(
        "input_stage",
        &[(("rin", rin), &x_rin), (("cin", cin), &x_cin)],
        0.15,
    );
    println!("{report}\n");
    // Slew buffer.
    let buffer = SlewBufferSpec::default();
    let dut = diagram_dut(&buffer.diagram().expect("diagram")).expect("dut");
    let (x_rise, x_fall) =
        rigs::slew_rates(&dut, "in", "out", &[], -1.0, 1.0, 40.0e-6).expect("slew");
    let rout = rigs::output_resistance(&dut, "out", &[], 1.0e-4).expect("rout");
    let report = check_model(
        "slew_buffer",
        &[
            (("srise", buffer.slew_rise), &x_rise),
            (("sfall", buffer.slew_fall), &x_fall),
            (("rout", 1.0 / buffer.gout), &rout),
        ],
        0.2,
    );
    println!("{report}");
}

/// §2.4 — range of validity: the slew buffer tracks a sine only while the
/// demanded slope stays below its slew limit.
fn validity_scan() {
    banner("Section 2.4 — range of validity of the slew buffer vs input frequency");
    let buffer = SlewBufferSpec::default();
    let diagram = buffer.diagram().expect("diagram");
    let amplitude = 1.0;
    let result = validity::scan_validity("frequency [Hz]", 1.0e3, 3.0e6, 13, 0.2, |f| {
        let dut = diagram_dut(&diagram).map_err(gabm_charac::CharacError::BadRig)?;
        let (mut ckt, nodes) = gabm_charac_scaffold(&dut)?;
        ckt.add_vsource(
            "VIN",
            nodes.0,
            gabm_sim::Circuit::GROUND,
            gabm_sim::devices::SourceWave::sine(0.0, amplitude, f),
        );
        let periods = 3.0;
        let r = ckt
            .tran(&TranSpec::new(periods / f))
            .map_err(gabm_charac::CharacError::Sim)?;
        let w_out = r
            .voltage_waveform(nodes.1)
            .map_err(gabm_charac::CharacError::Sim)?;
        let w_in = r
            .voltage_waveform(nodes.0)
            .map_err(gabm_charac::CharacError::Sim)?;
        let rms = w_out
            .rms_difference(&w_in)
            .map_err(|e| gabm_charac::CharacError::ExtractionFailed(e.to_string()))?;
        Ok(rms / amplitude)
    })
    .expect("scan runs");
    let predicted = buffer.slew_fall / (2.0 * std::f64::consts::PI * amplitude);
    println!(
        "valid from {:.3e} Hz to {:.3e} Hz ({} runs); slew-limit prediction ~{:.3e} Hz",
        result.lo, result.hi, result.evaluations, predicted
    );
}

/// Extension: open-loop Bode plot of the behavioural opamp, extracted with
/// the transient frequency-response rig and compared against the analytic
/// single-pole law A0/√(1+(f/fp)²) — the transfer-function GBS (§3.1b) made
/// measurable.
fn bode() {
    banner("Extension — open-loop Bode of the behavioural opamp (single pole)");
    let a0 = 100.0;
    let pole_hz = 1.0e3;
    let spec = gabm_models::OpampSpec {
        a0,
        pole_hz,
        ..gabm_models::OpampSpec::default()
    };
    let model = gabm_fas::compile(&spec.fas_code().expect("code")).expect("compiles");
    let dut = gabm_models::dut::fas_dut(model, Default::default()).expect("dut");
    let freqs = [
        pole_hz / 100.0,
        pole_hz / 10.0,
        pole_hz,
        pole_hz * 10.0,
        pole_hz * 30.0,
    ];
    let pts = rigs::frequency_response(
        &dut,
        "inp",
        "out",
        &[("inn", Bias::Ground)],
        &freqs,
        1.0e-3,
        3,
    )
    .expect("frequency response");
    println!(
        "{:>12} {:>12} {:>12} {:>10}",
        "f [Hz]", "gain meas", "gain analytic", "phase [deg]"
    );
    for p in &pts {
        let analytic = a0 / (1.0 + (p.freq / pole_hz).powi(2)).sqrt();
        println!(
            "{:>12.3e} {:>12.3} {:>12.3} {:>10.1}",
            p.freq, p.gain, analytic, p.phase_deg
        );
    }
}

/// Ablation: accuracy vs cost of the transient engine on the behavioural
/// comparator — LTE tolerance and integration method sweeps. Quantifies the
/// "variable time intervals" design point of §3.3 and the discontinuity
/// handling of §4.
fn ablation() {
    banner("Ablation — transient tolerance & integration method (behavioural comparator)");
    let stim = ComparatorStimulus::default();
    let tstop = 60.0e-6;
    // Reference: tight tolerance.
    let reference = {
        let (mut ckt, n) = behavioural_comparator_circuit(&stim).expect("bench builds");
        ckt.options.tran_tol = 1e-5;
        let r = ckt.tran(&TranSpec::new(tstop)).expect("reference tran");
        r.voltage_waveform(n[3]).expect("waveform")
    };
    println!(
        "{:<26} {:>8} {:>10} {:>14}",
        "configuration", "steps", "NR iters", "RMS vs ref [V]"
    );
    for (label, tol, method) in [
        ("tol=1e-2, trapezoidal", 1e-2, None),
        ("tol=1e-3, trapezoidal", 1e-3, None),
        ("tol=1e-4, trapezoidal", 1e-4, None),
        (
            "tol=1e-3, backward Euler",
            1e-3,
            Some(gabm_numeric::integrate::Method::BackwardEuler),
        ),
        (
            "tol=1e-3, Gear-2",
            1e-3,
            Some(gabm_numeric::integrate::Method::Gear2),
        ),
    ] {
        let (mut ckt, n) = behavioural_comparator_circuit(&stim).expect("bench builds");
        ckt.options.tran_tol = tol;
        let mut spec = TranSpec::new(tstop);
        if let Some(m) = method {
            spec = spec.with_method(m);
        }
        let r = ckt.tran(&spec).expect("tran runs");
        let w = r.voltage_waveform(n[3]).expect("waveform");
        let rms = w.rms_difference(&reference).unwrap_or(f64::NAN);
        println!(
            "{label:<26} {:>8} {:>10} {:>14.4e}",
            r.stats.accepted_steps, r.stats.newton_iterations, rms
        );
    }
}

/// Tiny local scaffold for the validity scan: DUT with in/out nodes.
fn gabm_charac_scaffold(
    dut: &impl gabm_charac::Dut,
) -> Result<(gabm_sim::Circuit, (gabm_sim::NodeId, gabm_sim::NodeId)), gabm_charac::CharacError> {
    let mut ckt = gabm_sim::Circuit::new();
    let n_in = ckt.node("in");
    let n_out = ckt.node("out");
    dut.instantiate(&mut ckt, "DUT", &[n_in, n_out])
        .map_err(gabm_charac::CharacError::Sim)?;
    ckt.add_resistor("RL", n_out, gabm_sim::Circuit::GROUND, 10.0e3)
        .map_err(gabm_charac::CharacError::Sim)?;
    Ok((ckt, (n_in, n_out)))
}

/// E8/E9 perf row — FAS interpreter vs bytecode VM vs CMOS baseline on
/// the comparator transient, with the speedup recorded in
/// `BENCH_fasvm.json` for the performance trajectory.
fn fasvm() {
    use gabm_fasvm::FasBackend;

    banner("FAS execution backends — interpreter vs bytecode VM (comparator transient)");
    let stim = ComparatorStimulus::default();
    let tstop = 60.0e-6;
    const REPS: usize = 7;

    // The VM must agree with the interpreter before its time matters:
    // compare the output waveform of one run of each.
    let spec = gabm_models::comparator::ComparatorSpec::default();
    let model = spec.model().expect("comparator model compiles");
    let prog = gabm_fasvm::compile_program(&model).expect("comparator bytecode compiles");
    let st = prog.stats();
    println!(
        "bytecode: {} ops, {} regs ({} vinsts lowered; {} folded, {} selects, {} dce'd)",
        prog.op_count(),
        prog.reg_count(),
        st.vinsts,
        st.folded,
        st.selects,
        st.dce_removed
    );

    let run = |backend: FasBackend| {
        let mut best = f64::INFINITY;
        let mut out = None;
        for _ in 0..REPS {
            let (mut ckt, nodes) =
                behavioural_comparator_circuit_with(&stim, backend).expect("bench builds");
            let t0 = Instant::now();
            let r = ckt.tran(&TranSpec::new(tstop)).expect("tran runs");
            best = best.min(t0.elapsed().as_secs_f64());
            let outp = nodes[3];
            out = Some((
                r.stats.newton_iterations,
                r.voltage_waveform(outp).expect("outp waveform"),
            ));
        }
        let (nr, w) = out.expect("at least one repetition");
        (best, nr, w)
    };
    let (t_interp, nr_interp, w_interp) = run(FasBackend::Interp);
    let (t_vm, nr_vm, w_vm) = run(FasBackend::Vm);
    assert_eq!(
        nr_interp, nr_vm,
        "backends must take the same Newton trajectory"
    );
    let rms = w_interp.rms_difference(&w_vm).unwrap_or(f64::NAN);
    assert!(
        rms < 1.0e-9,
        "interpreter and VM transient outputs diverge: rms {rms:e}"
    );

    let mut t_cmos = f64::INFINITY;
    for _ in 0..REPS {
        let (mut ckt, _) = cmos_comparator_circuit(&stim).expect("cmos bench");
        let t0 = Instant::now();
        ckt.tran(&TranSpec::new(tstop)).expect("cmos tran");
        t_cmos = t_cmos.min(t0.elapsed().as_secs_f64());
    }

    let speedup = t_interp / t_vm;
    println!("{:<24} {:>10} {:>12}", "engine", "NR iters", "time [s]");
    println!(
        "{:<24} {:>10} {:>12.4}",
        "FAS interpreter", nr_interp, t_interp
    );
    println!("{:<24} {:>10} {:>12.4}", "FAS bytecode VM", nr_vm, t_vm);
    println!("{:<24} {:>10} {:>12.4}", "CMOS (11 MOS)", "-", t_cmos);
    println!("VM speedup over interpreter: {speedup:.2}x (outputs agree, rms {rms:.1e})");

    let json = format!(
        "{{\n  \"experiment\": \"fasvm\",\n  \"tstop\": {tstop:e},\n  \"reps\": {REPS},\n  \
         \"ops\": {},\n  \"regs\": {},\n  \"interp_s\": {t_interp:.6},\n  \"vm_s\": {t_vm:.6},\n  \
         \"cmos_s\": {t_cmos:.6},\n  \"newton_iterations\": {nr_interp},\n  \
         \"speedup_vm_over_interp\": {speedup:.4},\n  \"waveform_rms_diff\": {rms:e}\n}}\n",
        prog.op_count(),
        prog.reg_count()
    );
    if std::fs::write("BENCH_fasvm.json", &json).is_ok() {
        println!("  [written to BENCH_fasvm.json]");
    }
}
