//! Regenerates every table and figure of the paper (see DESIGN.md §4).
//!
//! ```text
//! harness [--threads <n>] [experiment]
//!   fig1       model development steps (definition card → diagram → code → simulation)
//!   fig2       input stage: diagram + extracted Rin/Cin
//!   fig3       output stage: diagram + extracted Rout/Ilim
//!   fig4       power supply: current balance sheet of the comparator
//!   fig5       slew rate: extracted rise/fall slopes
//!   listing42  the generated §4.2 ELDO-FAS listing
//!   fig6       comparator functional diagram
//!   fig7       triggered-comparator transient, behavioural vs 11-MOS CMOS
//!   table1     CPU-cost comparison (the paper's 4.9 s vs 15.2 s result)
//!   modelcheck extracted vs assigned parameters (§2.4)
//!   validity   range-of-validity scan (§2.4)
//!   ablation   transient tolerance / integration-method cost sweep
//!   bode       open-loop Bode of the behavioural opamp vs the analytic pole
//!   fasvm      FAS interpreter vs bytecode VM vs CMOS (writes BENCH_fasvm.json)
//!   parchar    parallel characterization + LU reuse (writes BENCH_parchar.json)
//!   traceov    tracing overhead: disabled-probe cost on the comparator
//!              transient + a fully traced all-layer run (writes
//!              BENCH_traceov.json and TRACE_traceov.json)
//!   all        everything above (default)
//! ```
//!
//! `--threads <n>` (or env `GABM_THREADS`) sizes the worker pool used by
//! the parallel characterization flows. `--trace <out.json>` (or env
//! `GABM_TRACE`) records a Chrome trace-event file of the whole
//! invocation and `--trace-summary` prints the hierarchical text summary;
//! both use the same shared flag parser as `gabm`. SVG renderings of the
//! diagrams are written to `figures/`.

use gabm_bench::experiments::comparator_bench::{
    behavioural_comparator_circuit, behavioural_comparator_circuit_with, cmos_comparator_circuit,
    ComparatorStimulus,
};
use gabm_bench::experiments::constructs_bench::{diagram_dut, SlewBufferSpec};
use gabm_charac::{check_model_rigs, rigs, validity, Bias, RigCheck};
use gabm_codegen::{generate, Backend};
use gabm_core::check::check_diagram;
use gabm_core::constructs::{InputStageSpec, OutputStageSpec, PowerSupplySpec, SlewRateSpec};
use gabm_core::diagram::FunctionalDiagram;
use gabm_models::comparator::ComparatorSpec;
use gabm_schematic::{render_ascii, render_svg};
use gabm_sim::analysis::tran::TranSpec;
use std::time::Instant;

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    // The flag parsers are shared with `gabm` (gabm_trace::cli) so both
    // binaries reject bad values with identical flag-naming messages.
    let trace_cfg = match gabm_trace::cli::take_trace_flags(&mut argv) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    let threads = match gabm_trace::cli::take_threads_flag(&mut argv) {
        Ok(Some(n)) => Some(n),
        Ok(None) => match gabm_par::env_threads() {
            Ok(n) => n,
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        },
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    if let Some(n) = threads {
        gabm_par::set_global_threads(n);
    }
    gabm_trace::cli::maybe_enable(&trace_cfg);
    let which = argv.into_iter().next().unwrap_or_else(|| "all".to_string());
    let all = which == "all";
    std::fs::create_dir_all("figures").ok();
    let mut ran = false;
    if all || which == "fig1" {
        fig1();
        ran = true;
    }
    if all || which == "fig2" {
        fig2();
        ran = true;
    }
    if all || which == "fig3" {
        fig3();
        ran = true;
    }
    if all || which == "fig4" {
        fig4();
        ran = true;
    }
    if all || which == "fig5" {
        fig5();
        ran = true;
    }
    if all || which == "listing42" {
        listing42();
        ran = true;
    }
    if all || which == "fig6" {
        fig6();
        ran = true;
    }
    if all || which == "fig7" {
        fig7();
        ran = true;
    }
    if all || which == "table1" {
        table1();
        ran = true;
    }
    if all || which == "modelcheck" {
        modelcheck();
        ran = true;
    }
    if all || which == "validity" {
        validity_scan();
        ran = true;
    }
    if all || which == "ablation" {
        ablation();
        ran = true;
    }
    if all || which == "bode" {
        bode();
        ran = true;
    }
    if all || which == "fasvm" {
        fasvm();
        ran = true;
    }
    if all || which == "parchar" {
        parchar();
        ran = true;
    }
    if all || which == "traceov" {
        traceov();
        ran = true;
    }
    if !ran {
        eprintln!("unknown experiment '{which}' — see the module docs for the list");
        std::process::exit(2);
    }
    if let Err(msg) = gabm_trace::cli::finalize(&trace_cfg) {
        eprintln!("error: {msg}");
        std::process::exit(2);
    }
}

fn banner(title: &str) {
    println!("\n==================================================================");
    println!("  {title}");
    println!("==================================================================");
}

fn save_svg(d: &FunctionalDiagram, file: &str) {
    let svg = render_svg(d);
    let path = format!("figures/{file}");
    if std::fs::write(&path, svg).is_ok() {
        println!("  [svg written to {path}]");
    }
}

/// E1 / Fig. 1 — the model development steps.
fn fig1() {
    banner("Fig. 1 — model development steps: card -> diagram -> code -> simulation");
    let spec = InputStageSpec::new("in", 1.0e-6, 5.0e-12);
    let card = spec.card().expect("card builds");
    println!("{card}");
    let diagram = spec.diagram().expect("diagram builds");
    let report = check_diagram(&diagram);
    println!(
        "consistency check: {} errors, {} warnings",
        report.error_count(),
        report.warning_count()
    );
    print!("{}", render_ascii(&diagram));
    let code = generate(&diagram, Backend::Fas).expect("code generates");
    println!("{}", code.text);
    // Simulate: the model must load a 1 V source with 1 µA.
    let dut = diagram_dut(&diagram).expect("dut builds");
    let rin = rigs::input_resistance(&dut, "in", &[]).expect("rig runs");
    println!("simulated: {rin} (assigned 1e6 ohm)");
}

/// E2 / Fig. 2 — input stage.
fn fig2() {
    banner("Fig. 2 — input stage: functional diagram and extraction");
    let assigned_rin = 1.0e6;
    let assigned_cin = 5.0e-12;
    let spec = InputStageSpec::new("in", 1.0 / assigned_rin, assigned_cin);
    let diagram = spec.diagram().expect("diagram builds");
    print!("{}", render_ascii(&diagram));
    save_svg(&diagram, "fig2_input_stage.svg");
    let dut = diagram_dut(&diagram).expect("dut builds");
    let rin = rigs::input_resistance(&dut, "in", &[]).expect("rin rig");
    let cin = rigs::input_capacitance(&dut, "in", &[], assigned_cin).expect("cin rig");
    println!("{:<12} {:>14} {:>14}", "parameter", "assigned", "extracted");
    println!(
        "{:<12} {:>14.4e} {:>14.4e}",
        "rin [ohm]", assigned_rin, rin.value
    );
    println!(
        "{:<12} {:>14.4e} {:>14.4e}",
        "cin [F]", assigned_cin, cin.value
    );
}

/// E3 / Fig. 3 — output stage.
fn fig3() {
    banner("Fig. 3 — output stage: functional diagram and extraction");
    let gout = 1.0e-3;
    let ilim = 10.0e-3;
    let spec = OutputStageSpec::new("out", gout).with_current_limit(ilim);
    let diagram = spec.diagram().expect("diagram builds");
    print!("{}", render_ascii(&diagram));
    save_svg(&diagram, "fig3_output_stage.svg");
    let dut = diagram_dut(&diagram).expect("dut builds");
    let rout = rigs::output_resistance(&dut, "out", &[], 1.0e-4).expect("rout rig");
    let ilim_x = rigs::output_current_limit(&dut, "out", &[], 0.1, 0.5).expect("ilim rig");
    println!("{:<12} {:>14} {:>14}", "parameter", "assigned", "extracted");
    println!(
        "{:<12} {:>14.4e} {:>14.4e}",
        "rout [ohm]",
        1.0 / gout,
        rout.value
    );
    println!("{:<12} {:>14.4e} {:>14.4e}", "ilim [A]", ilim, ilim_x.value);
}

/// E4 / Fig. 4 — power supply balance sheet.
fn fig4() {
    banner("Fig. 4 — power supply: current balance sheet");
    let psu = PowerSupplySpec::new("vdd", "vss", 1.0e-5, 1.0e-4, 2);
    let diagram = psu.diagram().expect("diagram builds");
    print!("{}", render_ascii(&diagram));
    save_svg(&diagram, "fig4_power_supply.svg");
    // Measure the balance on the full comparator model.
    let spec = ComparatorSpec::default();
    let model = gabm_fas::compile(&spec.fas_code().expect("code")).expect("compiles");
    let dut = gabm_models::dut::fas_dut(model, Default::default()).expect("dut");
    let xs = rigs::supply_currents(
        &dut,
        "vdd",
        "vss",
        &[
            ("inp", Bias::Voltage(0.2)),
            ("inn", Bias::Voltage(-0.2)),
            ("strobe", Bias::Voltage(1.0)),
            ("vdd", Bias::Voltage(2.5)),
            ("vss", Bias::Voltage(-2.5)),
        ],
    )
    .expect("supply rig");
    for x in &xs {
        println!("  {x}");
    }
    let analytic = spec.gpol * 5.0 + spec.iloss;
    println!("  analytic i_vdd ~ gpol*(vdd-vss) + iloss = {analytic:.4e} A (plus stage currents)");
}

/// E5 / Fig. 5 — slew rate.
fn fig5() {
    banner("Fig. 5 — slew-rate block: diagram and extracted slopes");
    let slew = SlewRateSpec::new(1.0e6, 0.5e6);
    let diagram = slew.diagram().expect("diagram builds");
    print!("{}", render_ascii(&diagram));
    save_svg(&diagram, "fig5_slew_rate.svg");
    let buffer = SlewBufferSpec::default();
    let dut = diagram_dut(&buffer.diagram().expect("buffer diagram")).expect("dut");
    let (rise, fall) =
        rigs::slew_rates(&dut, "in", "out", &[], -1.0, 1.0, 40.0e-6).expect("slew rig");
    println!("{:<14} {:>14} {:>14}", "parameter", "assigned", "extracted");
    println!(
        "{:<14} {:>14.4e} {:>14.4e}",
        "srise [V/s]", buffer.slew_rise, rise.value
    );
    println!(
        "{:<14} {:>14.4e} {:>14.4e}",
        "sfall [V/s]", buffer.slew_fall, fall.value
    );
}

/// E6 / §4.2 — the generated FAS listing.
fn listing42() {
    banner("Section 4.2 — generated ELDO-FAS code of the input stage");
    let diagram = InputStageSpec::new("in", 1.0e-6, 5.0e-12)
        .diagram()
        .expect("diagram builds");
    let code = generate(&diagram, Backend::Fas).expect("generates");
    println!("{}", code.text);
    println!("--- the same diagram in VHDL-AMS ---");
    println!(
        "{}",
        generate(&diagram, Backend::VhdlAms).expect("vhdl").text
    );
    println!("--- and in MAST ---");
    println!("{}", generate(&diagram, Backend::Mast).expect("mast").text);
}

/// E7 / Fig. 6 — the comparator functional diagram.
fn fig6() {
    banner("Fig. 6 — functional diagram of the triggered comparator");
    let spec = ComparatorSpec::default();
    println!("{}", spec.card().expect("card builds"));
    let diagram = spec.diagram().expect("diagram builds");
    let report = check_diagram(&diagram);
    println!(
        "symbols: {}, nets: {}, consistency: {} errors / {} warnings",
        diagram.symbol_count(),
        diagram.nets().count(),
        report.error_count(),
        report.warning_count()
    );
    print!("{}", render_ascii(&diagram));
    save_svg(&diagram, "fig6_comparator.svg");
}

/// E8 / Fig. 7 — transient waveforms, behavioural vs transistor-level.
fn fig7() {
    banner("Fig. 7 — simulation of the triggered comparator (60 us)");
    let stim = ComparatorStimulus::default();
    let tstop = 60.0e-6;
    let (mut beh, bn) = behavioural_comparator_circuit(&stim).expect("behavioural bench");
    let rb = beh.tran(&TranSpec::new(tstop)).expect("behavioural tran");
    let w_beh = rb.voltage_waveform(bn[3]).expect("waveform");
    let w_in = rb.voltage_waveform(bn[0]).expect("waveform");
    let w_stb = rb.voltage_waveform(bn[2]).expect("waveform");
    let (mut cmos, cn) = cmos_comparator_circuit(&stim).expect("cmos bench");
    let rc = cmos.tran(&TranSpec::new(tstop)).expect("cmos tran");
    let w_cmos = rc.voltage_waveform(cn[3]).expect("waveform");

    // Terminal oscillogram, like the paper's figure.
    let opts = gabm_numeric::plot::PlotOptions {
        width: 96,
        height: 14,
        y_range: Some((-2.8, 2.8)),
    };
    if let Ok(plot) = gabm_numeric::plot::ascii_plot(
        &[
            ("input (inp)", &w_in),
            ("out behavioural", &w_beh),
            ("out CMOS", &w_cmos),
        ],
        &opts,
    ) {
        println!("{plot}");
    }
    println!("time_us,vin_p,strobe,out_behavioural,out_cmos");
    let n = 120;
    for k in 0..=n {
        let t = tstop * k as f64 / n as f64;
        println!(
            "{:8.3},{:8.4},{:8.3},{:8.4},{:8.4}",
            t * 1e6,
            w_in.value_at(t).unwrap_or(0.0),
            w_stb.value_at(t).unwrap_or(0.0),
            w_beh.value_at(t).unwrap_or(0.0),
            w_cmos.value_at(t).unwrap_or(0.0)
        );
    }
    // Decision agreement inside strobe windows.
    let mut agree = 0;
    let mut total = 0;
    for (lo, hi) in stim.strobe_windows(tstop) {
        let t = 0.5 * (lo + hi);
        let vb = w_beh.value_at(t).unwrap_or(0.0);
        let vc = w_cmos.value_at(t).unwrap_or(0.0);
        if vb.abs() > 0.5 && vc.abs() > 0.5 {
            total += 1;
            if vb.signum() == vc.signum() {
                agree += 1;
            }
        }
    }
    println!("decision agreement inside strobe windows: {agree}/{total}");
    std::fs::write(
        "figures/fig7_behavioural.csv",
        w_beh.to_csv("out_behavioural"),
    )
    .ok();
    std::fs::write("figures/fig7_cmos.csv", w_cmos.to_csv("out_cmos")).ok();
    println!("  [series written to figures/fig7_*.csv]");
}

/// E9 / the §5 timing table. Each transient is repeated and the fastest
/// run reported (the runs are milliseconds long, so scheduling noise
/// otherwise dominates).
fn table1() {
    banner("Table — CPU cost: FAS model vs transistor circuit (paper: 4.9 s vs 15.2 s)");
    let stim = ComparatorStimulus::default();
    let tstop = 60.0e-6;
    const REPS: usize = 7;

    let mut t_beh = f64::INFINITY;
    let mut rb = None;
    let mut beh_unknowns = 0;
    for _ in 0..REPS {
        let (mut beh, _) = behavioural_comparator_circuit(&stim).expect("behavioural bench");
        beh_unknowns = beh.n_unknowns();
        let t0 = Instant::now();
        let r = beh.tran(&TranSpec::new(tstop)).expect("behavioural tran");
        t_beh = t_beh.min(t0.elapsed().as_secs_f64());
        rb = Some(r);
    }
    let rb = rb.expect("at least one repetition");

    let mut t_cmos = f64::INFINITY;
    let mut rc = None;
    let mut cmos_unknowns = 0;
    for _ in 0..REPS {
        let (mut cmos, _) = cmos_comparator_circuit(&stim).expect("cmos bench");
        cmos_unknowns = cmos.n_unknowns();
        let t0 = Instant::now();
        let r = cmos.tran(&TranSpec::new(tstop)).expect("cmos tran");
        t_cmos = t_cmos.min(t0.elapsed().as_secs_f64());
        rc = Some(r);
    }
    let rc = rc.expect("at least one repetition");

    println!(
        "{:<24} {:>9} {:>8} {:>9} {:>10} {:>10}",
        "model", "unknowns", "steps", "NR iters", "time [s]", "vs paper"
    );
    println!(
        "{:<24} {:>9} {:>8} {:>9} {:>10.3} {:>10}",
        "FAS behavioural",
        beh_unknowns,
        rb.stats.accepted_steps,
        rb.stats.newton_iterations,
        t_beh,
        "4.9 s"
    );
    println!(
        "{:<24} {:>9} {:>8} {:>9} {:>10.3} {:>10}",
        "CMOS circuit (11 MOS)",
        cmos_unknowns,
        rc.stats.accepted_steps,
        rc.stats.newton_iterations,
        t_cmos,
        "15.2 s"
    );
    println!(
        "speedup: measured {:.2}x — paper reports 15.2/4.9 = 3.1x (Sun Sparc 10/30)",
        t_cmos / t_beh
    );
}

/// E10 / §2.4 — the model check. Each rig is a [`RigCheck`]; the rigs of
/// one model run concurrently on the worker pool.
fn modelcheck() {
    banner("Section 2.4 — model check: extracted vs assigned parameters");
    // Input stage.
    let rin = 1.0e6;
    let cin = 5.0e-12;
    let in_spec = InputStageSpec::new("in", 1.0 / rin, cin);
    let dut = diagram_dut(&in_spec.diagram().expect("diagram")).expect("dut");
    let report = check_model_rigs(
        "input_stage",
        &[
            RigCheck {
                parameter: "rin",
                assigned: rin,
                extract: &|| rigs::input_resistance(&dut, "in", &[]),
            },
            RigCheck {
                parameter: "cin",
                assigned: cin,
                extract: &|| rigs::input_capacitance(&dut, "in", &[], cin),
            },
        ],
        0.15,
    )
    .expect("input-stage rigs run");
    println!("{report}\n");
    // Slew buffer. The slew rig extracts both slopes in one transient; the
    // rise/fall checks each pick their half.
    let buffer = SlewBufferSpec::default();
    let dut = diagram_dut(&buffer.diagram().expect("diagram")).expect("dut");
    let slew = |pick_rise: bool| {
        let (rise, fall) = rigs::slew_rates(&dut, "in", "out", &[], -1.0, 1.0, 40.0e-6)?;
        Ok(if pick_rise { rise } else { fall })
    };
    let report = check_model_rigs(
        "slew_buffer",
        &[
            RigCheck {
                parameter: "srise",
                assigned: buffer.slew_rise,
                extract: &|| slew(true),
            },
            RigCheck {
                parameter: "sfall",
                assigned: buffer.slew_fall,
                extract: &|| slew(false),
            },
            RigCheck {
                parameter: "rout",
                assigned: 1.0 / buffer.gout,
                extract: &|| rigs::output_resistance(&dut, "out", &[], 1.0e-4),
            },
        ],
        0.2,
    )
    .expect("slew-buffer rigs run");
    println!("{report}");
}

/// §2.4 — range of validity: the slew buffer tracks a sine only while the
/// demanded slope stays below its slew limit.
fn validity_scan() {
    banner("Section 2.4 — range of validity of the slew buffer vs input frequency");
    let buffer = SlewBufferSpec::default();
    let diagram = buffer.diagram().expect("diagram");
    let amplitude = 1.0;
    let result = validity::scan_validity("frequency [Hz]", 1.0e3, 3.0e6, 13, 0.2, |f| {
        let dut = diagram_dut(&diagram).map_err(gabm_charac::CharacError::BadRig)?;
        let (mut ckt, nodes) = gabm_charac_scaffold(&dut)?;
        ckt.add_vsource(
            "VIN",
            nodes.0,
            gabm_sim::Circuit::GROUND,
            gabm_sim::devices::SourceWave::sine(0.0, amplitude, f),
        );
        let periods = 3.0;
        let r = ckt
            .tran(&TranSpec::new(periods / f))
            .map_err(gabm_charac::CharacError::Sim)?;
        let w_out = r
            .voltage_waveform(nodes.1)
            .map_err(gabm_charac::CharacError::Sim)?;
        let w_in = r
            .voltage_waveform(nodes.0)
            .map_err(gabm_charac::CharacError::Sim)?;
        let rms = w_out
            .rms_difference(&w_in)
            .map_err(|e| gabm_charac::CharacError::ExtractionFailed(e.to_string()))?;
        Ok(rms / amplitude)
    })
    .expect("scan runs");
    let predicted = buffer.slew_fall / (2.0 * std::f64::consts::PI * amplitude);
    println!(
        "valid from {:.3e} Hz to {:.3e} Hz ({} runs); slew-limit prediction ~{:.3e} Hz",
        result.lo, result.hi, result.evaluations, predicted
    );
}

/// Extension: open-loop Bode plot of the behavioural opamp, extracted with
/// the transient frequency-response rig and compared against the analytic
/// single-pole law A0/√(1+(f/fp)²) — the transfer-function GBS (§3.1b) made
/// measurable.
fn bode() {
    banner("Extension — open-loop Bode of the behavioural opamp (single pole)");
    let a0 = 100.0;
    let pole_hz = 1.0e3;
    let spec = gabm_models::OpampSpec {
        a0,
        pole_hz,
        ..gabm_models::OpampSpec::default()
    };
    let model = gabm_fas::compile(&spec.fas_code().expect("code")).expect("compiles");
    let dut = gabm_models::dut::fas_dut(model, Default::default()).expect("dut");
    let freqs = [
        pole_hz / 100.0,
        pole_hz / 10.0,
        pole_hz,
        pole_hz * 10.0,
        pole_hz * 30.0,
    ];
    let pts = rigs::frequency_response(
        &dut,
        "inp",
        "out",
        &[("inn", Bias::Ground)],
        &freqs,
        1.0e-3,
        3,
    )
    .expect("frequency response");
    println!(
        "{:>12} {:>12} {:>12} {:>10}",
        "f [Hz]", "gain meas", "gain analytic", "phase [deg]"
    );
    for p in &pts {
        let analytic = a0 / (1.0 + (p.freq / pole_hz).powi(2)).sqrt();
        println!(
            "{:>12.3e} {:>12.3} {:>12.3} {:>10.1}",
            p.freq, p.gain, analytic, p.phase_deg
        );
    }
}

/// Ablation: accuracy vs cost of the transient engine on the behavioural
/// comparator — LTE tolerance and integration method sweeps. Quantifies the
/// "variable time intervals" design point of §3.3 and the discontinuity
/// handling of §4.
fn ablation() {
    banner("Ablation — transient tolerance & integration method (behavioural comparator)");
    let stim = ComparatorStimulus::default();
    let tstop = 60.0e-6;
    // Reference: tight tolerance.
    let reference = {
        let (mut ckt, n) = behavioural_comparator_circuit(&stim).expect("bench builds");
        ckt.options.tran_tol = 1e-5;
        let r = ckt.tran(&TranSpec::new(tstop)).expect("reference tran");
        r.voltage_waveform(n[3]).expect("waveform")
    };
    println!(
        "{:<26} {:>8} {:>10} {:>14}",
        "configuration", "steps", "NR iters", "RMS vs ref [V]"
    );
    for (label, tol, method) in [
        ("tol=1e-2, trapezoidal", 1e-2, None),
        ("tol=1e-3, trapezoidal", 1e-3, None),
        ("tol=1e-4, trapezoidal", 1e-4, None),
        (
            "tol=1e-3, backward Euler",
            1e-3,
            Some(gabm_numeric::integrate::Method::BackwardEuler),
        ),
        (
            "tol=1e-3, Gear-2",
            1e-3,
            Some(gabm_numeric::integrate::Method::Gear2),
        ),
    ] {
        let (mut ckt, n) = behavioural_comparator_circuit(&stim).expect("bench builds");
        ckt.options.tran_tol = tol;
        let mut spec = TranSpec::new(tstop);
        if let Some(m) = method {
            spec = spec.with_method(m);
        }
        let r = ckt.tran(&spec).expect("tran runs");
        let w = r.voltage_waveform(n[3]).expect("waveform");
        let rms = w.rms_difference(&reference).unwrap_or(f64::NAN);
        println!(
            "{label:<26} {:>8} {:>10} {:>14.4e}",
            r.stats.accepted_steps, r.stats.newton_iterations, rms
        );
    }
}

/// Tiny local scaffold for the validity scan: DUT with in/out nodes.
fn gabm_charac_scaffold(
    dut: &impl gabm_charac::Dut,
) -> Result<(gabm_sim::Circuit, (gabm_sim::NodeId, gabm_sim::NodeId)), gabm_charac::CharacError> {
    let mut ckt = gabm_sim::Circuit::new();
    let n_in = ckt.node("in");
    let n_out = ckt.node("out");
    dut.instantiate(&mut ckt, "DUT", &[n_in, n_out])
        .map_err(gabm_charac::CharacError::Sim)?;
    ckt.add_resistor("RL", n_out, gabm_sim::Circuit::GROUND, 10.0e3)
        .map_err(gabm_charac::CharacError::Sim)?;
    Ok((ckt, (n_in, n_out)))
}

/// E8/E9 perf row — FAS interpreter vs bytecode VM vs CMOS baseline on
/// the comparator transient, with the speedup recorded in
/// `BENCH_fasvm.json` for the performance trajectory.
fn fasvm() {
    use gabm_fasvm::FasBackend;

    banner("FAS execution backends — interpreter vs bytecode VM (comparator transient)");
    let stim = ComparatorStimulus::default();
    let tstop = 60.0e-6;
    const REPS: usize = 7;

    // The VM must agree with the interpreter before its time matters:
    // compare the output waveform of one run of each.
    let spec = gabm_models::comparator::ComparatorSpec::default();
    let model = spec.model().expect("comparator model compiles");
    let prog = gabm_fasvm::compile_program(&model).expect("comparator bytecode compiles");
    let st = prog.stats();
    println!(
        "bytecode: {} ops, {} regs ({} vinsts lowered; {} folded, {} selects, {} dce'd)",
        prog.op_count(),
        prog.reg_count(),
        st.vinsts,
        st.folded,
        st.selects,
        st.dce_removed
    );

    let run = |backend: FasBackend| {
        let mut best = f64::INFINITY;
        let mut out = None;
        for _ in 0..REPS {
            let (mut ckt, nodes) =
                behavioural_comparator_circuit_with(&stim, backend).expect("bench builds");
            let t0 = Instant::now();
            let r = ckt.tran(&TranSpec::new(tstop)).expect("tran runs");
            best = best.min(t0.elapsed().as_secs_f64());
            let outp = nodes[3];
            out = Some((r.stats, r.voltage_waveform(outp).expect("outp waveform")));
        }
        let (stats, w) = out.expect("at least one repetition");
        (best, stats, w)
    };
    let (t_interp, s_interp, w_interp) = run(FasBackend::Interp);
    let (t_vm, s_vm, w_vm) = run(FasBackend::Vm);
    let (nr_interp, nr_vm) = (s_interp.newton_iterations, s_vm.newton_iterations);
    assert_eq!(
        nr_interp, nr_vm,
        "backends must take the same Newton trajectory"
    );
    let rms = w_interp.rms_difference(&w_vm).unwrap_or(f64::NAN);
    assert!(
        rms < 1.0e-9,
        "interpreter and VM transient outputs diverge: rms {rms:e}"
    );

    let mut t_cmos = f64::INFINITY;
    for _ in 0..REPS {
        let (mut ckt, _) = cmos_comparator_circuit(&stim).expect("cmos bench");
        let t0 = Instant::now();
        ckt.tran(&TranSpec::new(tstop)).expect("cmos tran");
        t_cmos = t_cmos.min(t0.elapsed().as_secs_f64());
    }

    let speedup = t_interp / t_vm;
    println!("{:<24} {:>10} {:>12}", "engine", "NR iters", "time [s]");
    println!(
        "{:<24} {:>10} {:>12.4}",
        "FAS interpreter", nr_interp, t_interp
    );
    println!("{:<24} {:>10} {:>12.4}", "FAS bytecode VM", nr_vm, t_vm);
    println!("{:<24} {:>10} {:>12.4}", "CMOS (11 MOS)", "-", t_cmos);
    println!("VM speedup over interpreter: {speedup:.2}x (outputs agree, rms {rms:.1e})");

    let json = format!(
        "{{\n  \"experiment\": \"fasvm\",\n  \"tstop\": {tstop:e},\n  \"reps\": {REPS},\n  \
         \"ops\": {},\n  \"regs\": {},\n  \"interp_s\": {t_interp:.6},\n  \"vm_s\": {t_vm:.6},\n  \
         \"cmos_s\": {t_cmos:.6},\n  \"newton_iterations\": {nr_interp},\n  \
         \"accepted_steps\": {},\n  \"rejected_steps\": {},\n  \"vm_tran_wall_s\": {:.6},\n  \
         \"speedup_vm_over_interp\": {speedup:.4},\n  \"waveform_rms_diff\": {rms:e}\n}}\n",
        prog.op_count(),
        prog.reg_count(),
        s_vm.accepted_steps,
        s_vm.rejected_steps,
        s_vm.wall_s
    );
    if std::fs::write("BENCH_fasvm.json", &json).is_ok() {
        println!("  [written to BENCH_fasvm.json]");
    }
}

/// Perf row for the parallel characterization engine: Monte-Carlo over the
/// comparator's strobe-to-decision delay at several pool sizes (bitwise
/// identical by construction), plus the sparse-LU refactorization-reuse
/// speedup on the 60 µs comparator transient. Writes `BENCH_parchar.json`.
fn parchar() {
    use gabm_charac::monte_carlo::{monte_carlo_on, Distribution, Scatter};
    use gabm_charac::{CharacError, ThreadPool};
    use gabm_fasvm::FasBackend;
    use std::collections::BTreeMap;

    banner("Parallel characterization + sparse-LU refactorization reuse");
    let hardware_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "hardware threads: {hardware_threads}, global pool: {} workers",
        gabm_par::global().threads()
    );

    // --- Monte-Carlo: slew-rate scatter -> response-time distribution. ---
    const SAMPLES: usize = 24;
    const SEED: u64 = 1994;
    const REPS: usize = 3;
    let nominal = ComparatorSpec::default();
    let mut scatters = BTreeMap::new();
    scatters.insert("srise".to_string(), Scatter::new(nominal.slew_rise, 0.1));
    scatters.insert("sfall".to_string(), Scatter::new(nominal.slew_fall, 0.1));
    let measure = |p: &BTreeMap<String, f64>| -> Result<f64, CharacError> {
        let spec = ComparatorSpec {
            slew_rise: p["srise"],
            slew_fall: p["sfall"],
            ..ComparatorSpec::default()
        };
        let model = spec
            .model()
            .map_err(|e| CharacError::BadRig(e.to_string()))?;
        let dut = gabm_models::dut::fas_dut(model, BTreeMap::new())
            .map_err(|e| CharacError::BadRig(e.to_string()))?;
        let bias = [
            ("inp", Bias::Voltage(0.3)),
            ("inn", Bias::Voltage(-0.3)),
            ("outp", Bias::Open),
            ("outn", Bias::Open),
            ("vdd", Bias::Voltage(2.5)),
            ("vss", Bias::Voltage(-2.5)),
        ];
        Ok(rigs::response_time(&dut, "strobe", "outp", &bias, -1.0, 1.0, 1.0, 40.0e-6)?.value)
    };
    let mc_run = |pool: &ThreadPool| {
        let mut best = f64::INFINITY;
        let mut result = None;
        for _ in 0..REPS {
            let t0 = Instant::now();
            let r = monte_carlo_on(pool, &scatters, SAMPLES, SEED, measure).expect("MC runs");
            best = best.min(t0.elapsed().as_secs_f64());
            result = Some(r);
        }
        let (dist, failures) = result.expect("at least one repetition");
        (best, dist, failures)
    };
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>9}",
        "threads", "time [s]", "mean [s]", "std [s]", "failures"
    );
    let mut times: BTreeMap<usize, f64> = BTreeMap::new();
    let mut reference: Option<(Distribution, usize)> = None;
    let assert_same = |a: &(Distribution, usize), b: &(Distribution, usize), threads: usize| {
        assert_eq!(a.0.n, b.0.n, "sample count changed at {threads} threads");
        assert_eq!(a.1, b.1, "failure count changed at {threads} threads");
        for (name, x, y) in [
            ("mean", a.0.mean, b.0.mean),
            ("std", a.0.std_dev, b.0.std_dev),
            ("min", a.0.min, b.0.min),
            ("max", a.0.max, b.0.max),
        ] {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{name} not bitwise identical at {threads} threads"
            );
        }
    };
    for threads in [1usize, 2, 4, 8] {
        let pool = ThreadPool::new(threads);
        let (t, dist, failures) = mc_run(&pool);
        println!(
            "{threads:<8} {t:>10.4} {:>12.4e} {:>12.4e} {failures:>9}",
            dist.mean, dist.std_dev
        );
        match &reference {
            None => reference = Some((dist, failures)),
            Some(r) => assert_same(r, &(dist, failures), threads),
        }
        times.insert(threads, t);
    }
    // One run on the global pool (sized by --threads / GABM_THREADS): the
    // PARCHAR-DIST fingerprint below is what ci.sh diffs across thread
    // settings, so it must come from the pool those settings control.
    let (_, dist, failures) = mc_run(gabm_par::global());
    let reference = reference.expect("fixed-size runs happened");
    assert_same(
        &reference,
        &(dist.clone(), failures),
        gabm_par::global().threads(),
    );
    println!(
        "PARCHAR-DIST n={} failures={} mean={:016x} std={:016x} min={:016x} max={:016x}",
        dist.n,
        failures,
        dist.mean.to_bits(),
        dist.std_dev.to_bits(),
        dist.min.to_bits(),
        dist.max.to_bits()
    );
    let speedup_mc_4t = times[&1] / times[&4];
    println!(
        "4-thread speedup: {speedup_mc_4t:.2}x over serial \
         (meaningful only when hardware threads >= 4; this host has {hardware_threads})"
    );

    // --- Sparse-LU refactorization reuse on the comparator transient. ---
    let stim = ComparatorStimulus::default();
    let tstop = 60.0e-6;
    const LU_REPS: usize = 7;
    let lu_run = |force_sparse: bool, reuse: bool| {
        let mut best = f64::INFINITY;
        let mut stats = None;
        for _ in 0..LU_REPS {
            let (mut ckt, _) =
                behavioural_comparator_circuit_with(&stim, FasBackend::Vm).expect("bench builds");
            if force_sparse {
                ckt.options.sparse_threshold = 1;
            }
            ckt.options.reuse_lu = reuse;
            let t0 = Instant::now();
            let r = ckt.tran(&TranSpec::new(tstop)).expect("tran runs");
            best = best.min(t0.elapsed().as_secs_f64());
            stats = Some(r.stats);
        }
        (best, stats.expect("at least one repetition"))
    };
    let (t_off, s_off) = lu_run(true, false);
    let (t_on, s_on) = lu_run(true, true);
    let (t_dense, _) = lu_run(false, true);
    assert_eq!(
        s_off.newton_iterations, s_on.newton_iterations,
        "LU reuse must not change the Newton trajectory"
    );
    let speedup_lu = t_off / t_on;
    println!(
        "\n{:<30} {:>10} {:>8} {:>10}",
        "sparse backend (threshold=1)", "time [s]", "factor", "refactor"
    );
    println!(
        "{:<30} {:>10.4} {:>8} {:>10}",
        "full factorization each iter", t_off, s_off.factorizations, s_off.refactorizations
    );
    println!(
        "{:<30} {:>10.4} {:>8} {:>10}",
        "numeric refactorization reuse", t_on, s_on.factorizations, s_on.refactorizations
    );
    println!(
        "LU-reuse speedup: {speedup_lu:.2}x ({} Newton iterations; \
         dense default path for context: {t_dense:.4} s)",
        s_on.newton_iterations
    );

    let json = format!(
        "{{\n  \"experiment\": \"parchar\",\n  \"hardware_threads\": {hardware_threads},\n  \
         \"samples\": {SAMPLES},\n  \"seed\": {SEED},\n  \"reps\": {REPS},\n  \
         \"mc_serial_s\": {:.6},\n  \"mc_2t_s\": {:.6},\n  \"mc_4t_s\": {:.6},\n  \
         \"mc_8t_s\": {:.6},\n  \"speedup_mc_4t\": {speedup_mc_4t:.4},\n  \
         \"mc_mean_s\": {:.6e},\n  \"mc_std_s\": {:.6e},\n  \"mc_failures\": {failures},\n  \
         \"lu_reuse_off_s\": {t_off:.6},\n  \"lu_reuse_on_s\": {t_on:.6},\n  \
         \"speedup_lu_reuse\": {speedup_lu:.4},\n  \"factorizations\": {},\n  \
         \"refactorizations\": {},\n  \"newton_iterations\": {},\n  \
         \"accepted_steps\": {},\n  \"rejected_steps\": {},\n  \"tran_wall_s\": {:.6},\n  \
         \"dense_default_s\": {t_dense:.6}\n}}\n",
        times[&1],
        times[&2],
        times[&4],
        times[&8],
        dist.mean,
        dist.std_dev,
        s_on.factorizations,
        s_on.refactorizations,
        s_on.newton_iterations,
        s_on.accepted_steps,
        s_on.rejected_steps,
        s_on.wall_s
    );
    if std::fs::write("BENCH_parchar.json", &json).is_ok() {
        println!("  [written to BENCH_parchar.json]");
    }
}

/// Tracing-overhead gate: the compiled-in instrumentation must cost no
/// more than 2% of the comparator transient while tracing is disabled.
/// The disabled probe cost is measured directly (a tight span loop) and
/// scaled by the number of probe sites one run passes; a fully traced
/// all-layer run (sim + fasvm + charac + par) is then recorded and its
/// Chrome JSON written to `TRACE_traceov.json` for CI validation.
/// Writes `BENCH_traceov.json`.
fn traceov() {
    use gabm_charac::monte_carlo::{monte_carlo_on, Scatter};
    use gabm_charac::{CharacError, ThreadPool};
    use gabm_fasvm::FasBackend;
    use std::collections::BTreeMap;

    banner("Tracing overhead — disabled-probe cost and a fully traced run");
    let was_enabled = gabm_trace::enabled();
    if was_enabled {
        println!("  [note: traceov drives tracing itself; the --trace file restarts here]");
    }
    gabm_trace::disable();

    let stim = ComparatorStimulus::default();
    let tstop = 60.0e-6;
    const REPS: usize = 5;
    let (mut t_disabled, mut stats) = (f64::INFINITY, None);
    for _ in 0..REPS {
        let (mut ckt, _) =
            behavioural_comparator_circuit_with(&stim, FasBackend::Vm).expect("bench builds");
        let t0 = Instant::now();
        let r = ckt.tran(&TranSpec::new(tstop)).expect("tran runs");
        t_disabled = t_disabled.min(t0.elapsed().as_secs_f64());
        stats = Some(r.stats);
    }
    let stats = stats.expect("at least one repetition");

    // Disabled probe cost: constructing and dropping a span with tracing
    // off is the exact code the hot paths execute.
    const PROBES: u32 = 1_000_000;
    let t0 = Instant::now();
    for _ in 0..PROBES {
        let _ = std::hint::black_box(gabm_trace::span("traceov.probe"));
    }
    let ns_per_probe = t0.elapsed().as_nanos() as f64 / f64::from(PROBES);

    // Probe sites one disabled transient passes: the tran/step/newton
    // spans plus every counter bump in the engine (the OP pre-solve adds
    // one more step-less Newton solve).
    let attempts = stats.accepted_steps + stats.rejected_steps;
    let probes_per_run = (1
        + attempts                                      // sim.tran.step spans
        + 2 * (attempts + 1)                            // sim.newton spans + iteration counters
        + stats.factorizations + stats.refactorizations // LU counters
        + attempts) as f64; // accepted/rejected counters
    let overhead_disabled_pct = probes_per_run * ns_per_probe / (t_disabled * 1e9) * 100.0;

    // The traced phase drives every instrumented layer once: bytecode
    // compilation (fasvm), the comparator transient (sim), and a small
    // Monte-Carlo on a 2-worker pool (charac + par).
    gabm_trace::enable();
    let spec = ComparatorSpec::default();
    let model = spec.model().expect("comparator model compiles");
    gabm_fasvm::compile_program(&model).expect("comparator bytecode compiles");
    let (mut ckt, _) =
        behavioural_comparator_circuit_with(&stim, FasBackend::Vm).expect("bench builds");
    let t0 = Instant::now();
    ckt.tran(&TranSpec::new(tstop)).expect("traced tran runs");
    let t_enabled = t0.elapsed().as_secs_f64();
    let mut scatters = BTreeMap::new();
    scatters.insert("r".to_string(), Scatter::new(1.0e3, 0.05));
    let pool = ThreadPool::new(2);
    let measure = |p: &BTreeMap<String, f64>| -> Result<f64, CharacError> {
        let mut ckt = gabm_sim::Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource(
            "V1",
            a,
            gabm_sim::Circuit::GROUND,
            gabm_sim::devices::SourceWave::dc(1.0),
        );
        ckt.add_resistor("R1", a, b, p["r"])
            .map_err(CharacError::Sim)?;
        ckt.add_resistor("R2", b, gabm_sim::Circuit::GROUND, 1.0e3)
            .map_err(CharacError::Sim)?;
        let op = ckt.op().map_err(CharacError::Sim)?;
        Ok(op.voltage(b))
    };
    monte_carlo_on(&pool, &scatters, 8, 1994, measure).expect("MC runs");
    let trace = gabm_trace::finish();
    let spans = trace.span_count();
    if std::fs::write("TRACE_traceov.json", trace.to_chrome_json(false)).is_ok() {
        println!("  [traced all-layer run written to TRACE_traceov.json]");
    }
    print!("{}", trace.summary());
    if was_enabled {
        gabm_trace::enable();
    }

    let overhead_enabled_pct = (t_enabled / t_disabled - 1.0) * 100.0;
    println!(
        "\ncomparator transient: disabled {t_disabled:.4} s, traced {t_enabled:.4} s \
         ({overhead_enabled_pct:+.1}% measured, noisy)"
    );
    println!(
        "disabled probe: {ns_per_probe:.2} ns x {probes_per_run:.0} sites/run \
         = {overhead_disabled_pct:.4}% of the transient"
    );
    assert!(
        overhead_disabled_pct <= 2.0,
        "disabled tracing overhead {overhead_disabled_pct:.3}% exceeds the 2% budget"
    );
    println!("TRACEOV-OK overhead_disabled_pct={overhead_disabled_pct:.4}");

    let json = format!(
        "{{\n  \"experiment\": \"traceov\",\n  \"tstop\": {tstop:e},\n  \"reps\": {REPS},\n  \
         \"tran_disabled_s\": {t_disabled:.6},\n  \"tran_enabled_s\": {t_enabled:.6},\n  \
         \"ns_per_disabled_probe\": {ns_per_probe:.3},\n  \"probes_per_run\": {probes_per_run},\n  \
         \"overhead_disabled_pct\": {overhead_disabled_pct:.4},\n  \
         \"overhead_enabled_pct\": {overhead_enabled_pct:.4},\n  \"traced_spans\": {spans},\n  \
         \"accepted_steps\": {},\n  \"rejected_steps\": {},\n  \"tran_wall_s\": {:.6}\n}}\n",
        stats.accepted_steps, stats.rejected_steps, stats.wall_s
    );
    if std::fs::write("BENCH_traceov.json", &json).is_ok() {
        println!("  [written to BENCH_traceov.json]");
    }
}
