//! The model check: extracted vs assigned parameter values (§2.4).

use crate::{CharacError, Extraction};
use gabm_par::ThreadPool;
use std::fmt;

/// One row of a model-check report.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckRow {
    /// Parameter name.
    pub parameter: String,
    /// Value assigned to the model instance.
    pub assigned: f64,
    /// Value the rig extracted back.
    pub extracted: f64,
    /// Relative error `|extracted − assigned| / |assigned|`.
    pub rel_error: f64,
    /// Whether the row is within tolerance.
    pub pass: bool,
}

/// The outcome of checking one model.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ModelCheckReport {
    /// Model name.
    pub model: String,
    /// Per-parameter rows.
    pub rows: Vec<CheckRow>,
    /// Tolerance used.
    pub tolerance: f64,
}

impl ModelCheckReport {
    /// `true` if every row passed.
    pub fn passed(&self) -> bool {
        self.rows.iter().all(|r| r.pass)
    }

    /// Number of failing rows.
    pub fn failures(&self) -> usize {
        self.rows.iter().filter(|r| !r.pass).count()
    }
}

impl fmt::Display for ModelCheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "model check: {} (tolerance {:.1}%)",
            self.model,
            self.tolerance * 100.0
        )?;
        writeln!(
            f,
            "{:<14} {:>14} {:>14} {:>9}  result",
            "parameter", "assigned", "extracted", "error"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<14} {:>14.6e} {:>14.6e} {:>8.2}%  {}",
                r.parameter,
                r.assigned,
                r.extracted,
                r.rel_error * 100.0,
                if r.pass { "PASS" } else { "FAIL" }
            )?;
        }
        write!(
            f,
            "=> {}",
            if self.passed() {
                "model behaves as specified"
            } else {
                "model deviates from its parameters"
            }
        )
    }
}

/// Compares extracted values with assigned parameter values.
///
/// `pairs` maps an assigned `(name, value)` to the extraction that should
/// reproduce it. "If the model runs correctly, the values extracted should
/// match the ones assigned to the input parameters."
pub fn check_model(
    model: &str,
    pairs: &[((&str, f64), &Extraction)],
    tolerance: f64,
) -> ModelCheckReport {
    let rows = pairs
        .iter()
        .map(|((name, assigned), extraction)| {
            let rel_error = if *assigned == 0.0 {
                extraction.value.abs()
            } else {
                (extraction.value - assigned).abs() / assigned.abs()
            };
            CheckRow {
                parameter: (*name).to_string(),
                assigned: *assigned,
                extracted: extraction.value,
                rel_error,
                pass: rel_error <= tolerance,
            }
        })
        .collect();
    ModelCheckReport {
        model: model.to_string(),
        rows,
        tolerance,
    }
}

/// One parameter check driven by an extraction rig: the assigned value and
/// the rig closure that should extract it back.
pub struct RigCheck<'a> {
    /// Parameter name (also used for the report row).
    pub parameter: &'a str,
    /// Value assigned to the model instance.
    pub assigned: f64,
    /// Runs the extraction rig. Must be `Sync`: [`check_model_rigs`] fans
    /// the rigs out over the thread pool.
    pub extract: &'a (dyn Fn() -> Result<Extraction, CharacError> + Sync),
}

impl fmt::Debug for RigCheck<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RigCheck")
            .field("parameter", &self.parameter)
            .field("assigned", &self.assigned)
            .finish_non_exhaustive()
    }
}

/// Runs every rig in `checks` on the global thread pool and compares the
/// extracted values against the assigned ones via [`check_model`].
///
/// # Errors
///
/// The first failing rig (in `checks` order) aborts the check — a rig that
/// cannot run at all is a tooling problem, not a model deviation.
pub fn check_model_rigs(
    model: &str,
    checks: &[RigCheck<'_>],
    tolerance: f64,
) -> Result<ModelCheckReport, CharacError> {
    check_model_rigs_on(gabm_par::global(), model, checks, tolerance)
}

/// [`check_model_rigs`] on an explicit pool.
///
/// Rigs run concurrently but results are compared in `checks` order, so the
/// report (and which error wins when several rigs fail) does not depend on
/// `pool.threads()` or scheduling.
///
/// # Errors
///
/// The first failing rig (in `checks` order) aborts the check.
pub fn check_model_rigs_on(
    pool: &ThreadPool,
    model: &str,
    checks: &[RigCheck<'_>],
    tolerance: f64,
) -> Result<ModelCheckReport, CharacError> {
    let _span = gabm_trace::span_with("charac.model_check", "model", || model.to_string());
    let outcomes = pool.par_map(checks, |_, check| {
        let _s =
            gabm_trace::span_with("charac.mc.rig", "parameter", || check.parameter.to_string());
        (check.extract)()
    });
    let mut extractions = Vec::with_capacity(checks.len());
    for outcome in outcomes {
        extractions.push(outcome?);
    }
    let pairs: Vec<((&str, f64), &Extraction)> = checks
        .iter()
        .zip(&extractions)
        .map(|(check, x)| ((check.parameter, check.assigned), x))
        .collect();
    Ok(check_model(model, &pairs, tolerance))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x(name: &str, value: f64) -> Extraction {
        Extraction {
            name: name.to_string(),
            value,
            unit: "",
        }
    }

    #[test]
    fn passing_check() {
        let e = x("rin", 1.001e6);
        let report = check_model("input_stage", &[(("rin", 1.0e6), &e)], 0.01);
        assert!(report.passed());
        assert_eq!(report.failures(), 0);
        assert!(report.rows[0].rel_error < 0.01);
    }

    #[test]
    fn failing_check() {
        let e = x("rin", 2.0e6);
        let report = check_model("input_stage", &[(("rin", 1.0e6), &e)], 0.01);
        assert!(!report.passed());
        assert_eq!(report.failures(), 1);
    }

    #[test]
    fn zero_assigned_uses_absolute() {
        // With a zero assigned value the absolute extraction is the error.
        let big = x("offset", 0.1);
        let report = check_model("m", &[(("offset", 0.0), &big)], 0.01);
        assert!(!report.passed());
        let small = x("offset", 1e-3);
        let report2 = check_model("m", &[(("offset", 0.0), &small)], 0.01);
        assert_eq!(report2.rows[0].rel_error, 1e-3);
        assert!(report2.passed());
    }

    #[test]
    fn rig_checks_run_and_compare() {
        let checks = [
            RigCheck {
                parameter: "rin",
                assigned: 1.0e6,
                extract: &|| Ok(x("rin", 1.002e6)),
            },
            RigCheck {
                parameter: "rout",
                assigned: 50.0,
                extract: &|| Ok(x("rout", 80.0)),
            },
        ];
        let report = check_model_rigs("stage", &checks, 0.05).unwrap();
        assert_eq!(report.rows.len(), 2);
        assert!(report.rows[0].pass);
        assert!(!report.rows[1].pass);
        assert_eq!(report.failures(), 1);
    }

    #[test]
    fn first_rig_error_in_order_wins() {
        let checks = [
            RigCheck {
                parameter: "a",
                assigned: 1.0,
                extract: &|| Err(CharacError::ExtractionFailed("first".into())),
            },
            RigCheck {
                parameter: "b",
                assigned: 1.0,
                extract: &|| Err(CharacError::ExtractionFailed("second".into())),
            },
        ];
        // Regardless of which rig finishes first on the pool, the error
        // reported is the first one in `checks` order.
        for threads in [1, 2, 7] {
            let pool = ThreadPool::new(threads);
            let err = check_model_rigs_on(&pool, "m", &checks, 0.05).unwrap_err();
            assert_eq!(err, CharacError::ExtractionFailed("first".into()));
        }
    }

    #[test]
    fn display_renders_table() {
        let e = x("rin", 1.0e6);
        let report = check_model("input_stage", &[(("rin", 1.0e6), &e)], 0.05);
        let s = report.to_string();
        assert!(s.contains("PASS"));
        assert!(s.contains("input_stage"));
        assert!(s.contains("behaves as specified"));
    }
}
