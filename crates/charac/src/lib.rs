//! Automatic characterization of behavioural models (the paper's §2.4).
//!
//! "Using a flexible, automatic characterization tool, the validity of the
//! behavioural model generated can be verified. In order to do this, the
//! characterization tool will surround the model with some extraction rigs
//! and perform many analogue simulation runs in order to extract the model
//! instance parameters. If the model runs correctly, the values extracted
//! should match the ones assigned to the input parameters. This method can
//! also be used to determine the range of validity of models."
//!
//! This crate is the stand-in for CSEM's SimBoy tool (paper refs \[8\], \[9\]):
//!
//! * [`Dut`] — anything that can instantiate itself into a circuit (a
//!   compiled FAS model, a transistor netlist, a hand-written behavioural
//!   device);
//! * [`rigs`] — extraction rigs: DC transfer, input impedance, output
//!   impedance & current limit, slew rate, supply current;
//! * [`model_check`] — runs rigs, compares extracted vs assigned parameter
//!   values, and renders a pass/fail report;
//! * [`validity`] — bisects a stimulus range for the boundary where a
//!   model stops tracking an expected value.

pub mod model_check;
pub mod monte_carlo;
pub mod rigs;
pub mod validity;

pub use gabm_par::ThreadPool;
pub use model_check::{check_model, check_model_rigs, CheckRow, ModelCheckReport, RigCheck};

use gabm_sim::circuit::{Circuit, NodeId};
use gabm_sim::SimError;
use std::fmt;

/// A device under test: can instantiate a fresh copy of itself into a rig
/// circuit.
///
/// Implementations must be repeatable — rigs build many circuits, each with
/// its own DUT instance — and `Sync`, because the characterization flows
/// ([`monte_carlo`], [`validity`], [`check_model_rigs`]) fan rigs out over
/// the [`ThreadPool`] and instantiate the DUT from several threads at once.
pub trait Dut: Sync {
    /// Pin names, defining the order of `nodes` in [`Dut::instantiate`].
    fn pin_names(&self) -> Vec<String>;

    /// Adds one instance of the DUT to `ckt`, connected to `nodes` (same
    /// order as [`Dut::pin_names`]).
    ///
    /// # Errors
    ///
    /// Propagates netlist-construction errors.
    fn instantiate(&self, ckt: &mut Circuit, name: &str, nodes: &[NodeId]) -> Result<(), SimError>;

    /// Index of the named pin.
    fn pin_index(&self, name: &str) -> Option<usize> {
        self.pin_names().iter().position(|p| p == name)
    }
}

/// A [`Dut`] built from a closure — the easiest way to wrap a compiled FAS
/// model or a transistor-level subcircuit.
pub struct FnDut<F> {
    pins: Vec<String>,
    build: F,
}

impl<F> FnDut<F>
where
    F: Fn(&mut Circuit, &str, &[NodeId]) -> Result<(), SimError> + Sync,
{
    /// Creates a DUT with the given pin names and instantiation closure.
    pub fn new(pins: &[&str], build: F) -> Self {
        FnDut {
            pins: pins.iter().map(|p| p.to_string()).collect(),
            build,
        }
    }
}

impl<F> fmt::Debug for FnDut<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FnDut").field("pins", &self.pins).finish()
    }
}

impl<F> Dut for FnDut<F>
where
    F: Fn(&mut Circuit, &str, &[NodeId]) -> Result<(), SimError> + Sync,
{
    fn pin_names(&self) -> Vec<String> {
        self.pins.clone()
    }

    fn instantiate(&self, ckt: &mut Circuit, name: &str, nodes: &[NodeId]) -> Result<(), SimError> {
        (self.build)(ckt, name, nodes)
    }
}

/// Fixed bias applied to a non-stimulated DUT pin during an extraction run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Bias {
    /// Tie to a DC voltage.
    Voltage(f64),
    /// Tie to ground.
    Ground,
    /// Leave floating (a weak 1 GΩ bleeder keeps the matrix non-singular).
    Open,
}

/// One extracted value.
#[derive(Debug, Clone, PartialEq)]
pub struct Extraction {
    /// Quantity name (e.g. `"rin"`).
    pub name: String,
    /// Extracted value in SI units.
    pub value: f64,
    /// Unit label for reports.
    pub unit: &'static str,
}

impl fmt::Display for Extraction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {:.6e} {}", self.name, self.value, self.unit)
    }
}

/// Errors of the characterization tool.
#[derive(Debug, Clone, PartialEq)]
pub enum CharacError {
    /// Simulation of a rig failed.
    Sim(SimError),
    /// A rig could not derive its value from the simulation traces.
    ExtractionFailed(String),
    /// Rig configuration error (unknown pin, inconsistent sweep).
    BadRig(String),
}

impl fmt::Display for CharacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CharacError::Sim(e) => write!(f, "simulation failed: {e}"),
            CharacError::ExtractionFailed(msg) => write!(f, "extraction failed: {msg}"),
            CharacError::BadRig(msg) => write!(f, "bad rig: {msg}"),
        }
    }
}

impl std::error::Error for CharacError {}

impl From<SimError> for CharacError {
    fn from(e: SimError) -> Self {
        CharacError::Sim(e)
    }
}

impl From<gabm_numeric::NumericError> for CharacError {
    fn from(e: gabm_numeric::NumericError) -> Self {
        CharacError::ExtractionFailed(e.to_string())
    }
}

/// Builds the standard rig scaffold: a circuit with the DUT instantiated and
/// every pin in `bias` tied off. Returns the circuit and the node of each
/// DUT pin.
pub(crate) fn scaffold(
    dut: &dyn Dut,
    bias: &[(&str, Bias)],
) -> Result<(Circuit, Vec<NodeId>), CharacError> {
    let mut ckt = Circuit::new();
    let pins = dut.pin_names();
    let nodes: Vec<NodeId> = pins.iter().map(|p| ckt.node(&format!("dut_{p}"))).collect();
    dut.instantiate(&mut ckt, "DUT", &nodes)?;
    for (pin, b) in bias {
        let idx = dut
            .pin_index(pin)
            .ok_or_else(|| CharacError::BadRig(format!("unknown DUT pin '{pin}'")))?;
        let node = nodes[idx];
        match b {
            Bias::Voltage(v) => {
                ckt.add_vsource(
                    &format!("VB_{pin}"),
                    node,
                    Circuit::GROUND,
                    gabm_sim::devices::SourceWave::dc(*v),
                );
            }
            Bias::Ground => {
                ckt.add_vsource(
                    &format!("VB_{pin}"),
                    node,
                    Circuit::GROUND,
                    gabm_sim::devices::SourceWave::dc(0.0),
                );
            }
            Bias::Open => {
                ckt.add_resistor(&format!("RB_{pin}"), node, Circuit::GROUND, 1.0e9)
                    .map_err(CharacError::Sim)?;
            }
        }
    }
    Ok((ckt, nodes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gabm_sim::devices::SourceWave;

    fn resistor_dut(ohms: f64) -> impl Dut {
        FnDut::new(&["a", "b"], move |ckt, name, nodes| {
            ckt.add_resistor(name, nodes[0], nodes[1], ohms)
        })
    }

    #[test]
    fn fn_dut_roundtrip() {
        let dut = resistor_dut(100.0);
        assert_eq!(dut.pin_names(), vec!["a", "b"]);
        assert_eq!(dut.pin_index("b"), Some(1));
        assert_eq!(dut.pin_index("z"), None);
    }

    #[test]
    fn scaffold_biases_pins() {
        let dut = resistor_dut(1000.0);
        let (mut ckt, nodes) = scaffold(&dut, &[("b", Bias::Ground)]).unwrap();
        // Drive pin a and solve.
        ckt.add_vsource("VS", nodes[0], Circuit::GROUND, SourceWave::dc(1.0));
        let op = ckt.op().unwrap();
        assert!((op.voltage(nodes[0]) - 1.0).abs() < 1e-9);
        assert!(op.voltage(nodes[1]).abs() < 1e-9);
    }

    #[test]
    fn scaffold_rejects_unknown_pin() {
        let dut = resistor_dut(1000.0);
        assert!(matches!(
            scaffold(&dut, &[("zz", Bias::Ground)]),
            Err(CharacError::BadRig(_))
        ));
    }

    #[test]
    fn error_conversions() {
        let e: CharacError = SimError::UnknownDevice("x".into()).into();
        assert!(e.to_string().contains("simulation failed"));
        let e: CharacError = gabm_numeric::NumericError::Empty.into();
        assert!(matches!(e, CharacError::ExtractionFailed(_)));
    }

    #[test]
    fn extraction_display() {
        let x = Extraction {
            name: "rin".into(),
            value: 1e6,
            unit: "ohm",
        };
        assert!(x.to_string().contains("rin"));
        assert!(x.to_string().contains("ohm"));
    }
}
