//! Extraction rigs.
//!
//! Each rig surrounds the DUT with sources and loads, runs one or more
//! analogue analyses, and measures model instance parameters from the
//! traces — "many analogue simulation runs in order to extract the model
//! instance parameters" (§2.4).

use crate::{scaffold, Bias, CharacError, Dut, Extraction};
use gabm_numeric::measure;
use gabm_sim::analysis::tran::TranSpec;
use gabm_sim::circuit::Circuit;
use gabm_sim::devices::SourceWave;

/// Extracts the DC input resistance seen into `pin`: two-point I/V probe
/// with a current source.
///
/// # Errors
///
/// Simulation or extraction failures.
pub fn input_resistance(
    dut: &dyn Dut,
    pin: &str,
    bias: &[(&str, Bias)],
) -> Result<Extraction, CharacError> {
    let probe = |current: f64| -> Result<f64, CharacError> {
        let (mut ckt, nodes) = scaffold(dut, bias)?;
        let idx = dut
            .pin_index(pin)
            .ok_or_else(|| CharacError::BadRig(format!("unknown pin '{pin}'")))?;
        ckt.add_isource(
            "IPROBE",
            Circuit::GROUND,
            nodes[idx],
            SourceWave::dc(current),
        );
        let op = ckt.op()?;
        Ok(op.voltage(nodes[idx]))
    };
    let i0 = 0.0;
    let i1 = 1.0e-9;
    let v0 = probe(i0)?;
    let v1 = probe(i1)?;
    let rin = (v1 - v0) / (i1 - i0);
    Ok(Extraction {
        name: format!("rin_{pin}"),
        value: rin,
        unit: "ohm",
    })
}

/// Extracts the input capacitance at `pin` from the RC time constant of a
/// step response through a known series resistor.
///
/// The DUT's input resistance is measured first so the Thévenin resistance
/// is known: `cin = tau / (rs ∥ rin)`.
///
/// # Errors
///
/// Simulation or extraction failures.
pub fn input_capacitance(
    dut: &dyn Dut,
    pin: &str,
    bias: &[(&str, Bias)],
    expected_scale: f64,
) -> Result<Extraction, CharacError> {
    let rin = input_resistance(dut, pin, bias)?.value;
    // Series resistor comparable to rin gives a well-conditioned divider.
    let rs = rin.clamp(1.0e3, 1.0e9);
    let rth = rs * rin / (rs + rin);
    // Expected tau guides the transient length.
    let tau_guess = rth * expected_scale.max(1.0e-15);
    let tstop = 10.0 * tau_guess;
    let (mut ckt, nodes) = scaffold(dut, bias)?;
    let idx = dut
        .pin_index(pin)
        .ok_or_else(|| CharacError::BadRig(format!("unknown pin '{pin}'")))?;
    let src = ckt.node("rig_src");
    ckt.add_vsource(
        "VSTEP",
        src,
        Circuit::GROUND,
        SourceWave::pulse(
            0.0,
            1.0,
            tstop * 0.01,
            tstop * 1e-4,
            tstop * 1e-4,
            tstop,
            0.0,
        ),
    );
    ckt.add_resistor("RS", src, nodes[idx], rs)?;
    let result = ckt.tran(&TranSpec::new(tstop))?;
    let w = result.voltage_waveform(nodes[idx])?;
    // Final value and 63.2 % crossing give tau.
    let v_end = *w
        .values()
        .last()
        .ok_or_else(|| CharacError::ExtractionFailed("empty transient".to_string()))?;
    let t0 = tstop * 0.01;
    let target = 0.632 * v_end;
    let t63 = measure::first_crossing_after(&w, target, measure::Edge::Rising, t0)?
        .ok_or_else(|| CharacError::ExtractionFailed("no 63% crossing".to_string()))?;
    let tau = t63 - t0;
    Ok(Extraction {
        name: format!("cin_{pin}"),
        value: tau / rth,
        unit: "F",
    })
}

/// Extracts the DC output resistance at `pin` by loading it with two test
/// currents and measuring the voltage droop.
///
/// # Errors
///
/// Simulation or extraction failures.
pub fn output_resistance(
    dut: &dyn Dut,
    pin: &str,
    bias: &[(&str, Bias)],
    test_current: f64,
) -> Result<Extraction, CharacError> {
    let probe = |current: f64| -> Result<f64, CharacError> {
        let (mut ckt, nodes) = scaffold(dut, bias)?;
        let idx = dut
            .pin_index(pin)
            .ok_or_else(|| CharacError::BadRig(format!("unknown pin '{pin}'")))?;
        ckt.add_isource(
            "ILOAD",
            nodes[idx],
            Circuit::GROUND,
            SourceWave::dc(current),
        );
        let op = ckt.op()?;
        Ok(op.voltage(nodes[idx]))
    };
    let v0 = probe(0.0)?;
    let v1 = probe(test_current)?;
    Ok(Extraction {
        name: format!("rout_{pin}"),
        value: (v0 - v1) / test_current,
        unit: "ohm",
    })
}

/// Extracts a symmetric output current limit by sweeping the load current
/// until the output voltage collapses away from its unloaded value.
///
/// Returns the largest load current for which the output still tracks
/// within `droop_limit` volts of a linear extrapolation.
///
/// # Errors
///
/// Simulation or extraction failures.
pub fn output_current_limit(
    dut: &dyn Dut,
    pin: &str,
    bias: &[(&str, Bias)],
    i_max: f64,
    droop_limit: f64,
) -> Result<Extraction, CharacError> {
    let rout = output_resistance(dut, pin, bias, i_max * 1e-3)?.value;
    let probe = |current: f64| -> Result<f64, CharacError> {
        let (mut ckt, nodes) = scaffold(dut, bias)?;
        let idx = dut
            .pin_index(pin)
            .ok_or_else(|| CharacError::BadRig(format!("unknown pin '{pin}'")))?;
        ckt.add_isource(
            "ILOAD",
            nodes[idx],
            Circuit::GROUND,
            SourceWave::dc(current),
        );
        let op = ckt.op()?;
        Ok(op.voltage(nodes[idx]))
    };
    let v0 = probe(0.0)?;
    // Log sweep from i_max/1000 to i_max.
    let steps = 60;
    let mut last_ok = 0.0;
    for k in 0..=steps {
        let i = i_max * 10f64.powf(-3.0 + 3.0 * k as f64 / steps as f64);
        // Past the limit the output node may become practically floating —
        // a convergence failure there *is* the limit signature.
        let Ok(v) = probe(i) else { break };
        let expected = v0 - rout * i;
        if (v - expected).abs() > droop_limit {
            break;
        }
        last_ok = i;
    }
    if last_ok == 0.0 {
        return Err(CharacError::ExtractionFailed(
            "output never tracked the linear model".to_string(),
        ));
    }
    Ok(Extraction {
        name: format!("ilim_{pin}"),
        value: last_ok,
        unit: "A",
    })
}

/// Extracts maximum rise and fall slew rates from a large-signal square-wave
/// response.
///
/// # Errors
///
/// Simulation or extraction failures.
pub fn slew_rates(
    dut: &dyn Dut,
    in_pin: &str,
    out_pin: &str,
    bias: &[(&str, Bias)],
    v_low: f64,
    v_high: f64,
    period: f64,
) -> Result<(Extraction, Extraction), CharacError> {
    let (mut ckt, nodes) = scaffold(dut, bias)?;
    let in_idx = dut
        .pin_index(in_pin)
        .ok_or_else(|| CharacError::BadRig(format!("unknown pin '{in_pin}'")))?;
    let out_idx = dut
        .pin_index(out_pin)
        .ok_or_else(|| CharacError::BadRig(format!("unknown pin '{out_pin}'")))?;
    ckt.add_vsource(
        "VSQ",
        nodes[in_idx],
        Circuit::GROUND,
        SourceWave::pulse(
            v_low,
            v_high,
            period * 0.05,
            period * 1e-4,
            period * 1e-4,
            period * 0.45,
            period,
        ),
    );
    let result = ckt.tran(&TranSpec::new(2.0 * period))?;
    let w = result.voltage_waveform(nodes[out_idx])?;
    let rise = measure::max_rise_rate(&w)?;
    let fall = measure::max_fall_rate(&w)?;
    Ok((
        Extraction {
            name: "slew_rise".to_string(),
            value: rise,
            unit: "V/s",
        },
        Extraction {
            name: "slew_fall".to_string(),
            value: fall,
            unit: "V/s",
        },
    ))
}

/// Measures the DC transfer curve `out(in)` and extracts small-signal gain
/// (max slope), input offset (input at the steepest point) and the output
/// swing.
///
/// # Errors
///
/// Simulation or extraction failures.
pub fn dc_transfer(
    dut: &dyn Dut,
    in_pin: &str,
    out_pin: &str,
    bias: &[(&str, Bias)],
    from: f64,
    to: f64,
    step: f64,
) -> Result<Vec<Extraction>, CharacError> {
    let (mut ckt, nodes) = scaffold(dut, bias)?;
    let in_idx = dut
        .pin_index(in_pin)
        .ok_or_else(|| CharacError::BadRig(format!("unknown pin '{in_pin}'")))?;
    let out_idx = dut
        .pin_index(out_pin)
        .ok_or_else(|| CharacError::BadRig(format!("unknown pin '{out_pin}'")))?;
    ckt.add_vsource(
        "VSWEEP",
        nodes[in_idx],
        Circuit::GROUND,
        SourceWave::dc(from),
    );
    let sweep = ckt.dc_sweep("VSWEEP", from, to, step)?;
    let vin = sweep.sweep_values().to_vec();
    let vout = sweep.voltage_series(nodes[out_idx]);
    if vin.len() < 3 {
        return Err(CharacError::BadRig("sweep needs at least 3 points".into()));
    }
    let mut best_slope = 0.0f64;
    let mut best_vin = vin[0];
    for k in 0..vin.len() - 1 {
        let slope = (vout[k + 1] - vout[k]) / (vin[k + 1] - vin[k]);
        if slope.abs() > best_slope.abs() {
            best_slope = slope;
            best_vin = 0.5 * (vin[k] + vin[k + 1]);
        }
    }
    let out_min = vout.iter().cloned().fold(f64::INFINITY, f64::min);
    let out_max = vout.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    Ok(vec![
        Extraction {
            name: "gain".to_string(),
            value: best_slope,
            unit: "V/V",
        },
        Extraction {
            name: "offset".to_string(),
            value: best_vin,
            unit: "V",
        },
        Extraction {
            name: "out_low".to_string(),
            value: out_min,
            unit: "V",
        },
        Extraction {
            name: "out_high".to_string(),
            value: out_max,
            unit: "V",
        },
    ])
}

/// Measures the response time from a step on `trigger_pin` (crossing
/// `trigger_level`) to the output crossing `output_level` — e.g. the
/// strobe-to-decision delay of a triggered comparator.
///
/// `bias` must hold every other pin at its operating value; the trigger is
/// driven from `v_idle` to `v_active` at one quarter of `window`.
///
/// # Errors
///
/// Simulation failures, or [`CharacError::ExtractionFailed`] when either
/// crossing is absent.
#[allow(clippy::too_many_arguments)]
pub fn response_time(
    dut: &dyn Dut,
    trigger_pin: &str,
    out_pin: &str,
    bias: &[(&str, Bias)],
    v_idle: f64,
    v_active: f64,
    output_level: f64,
    window: f64,
) -> Result<Extraction, CharacError> {
    let (mut ckt, nodes) = scaffold(dut, bias)?;
    let trig_idx = dut
        .pin_index(trigger_pin)
        .ok_or_else(|| CharacError::BadRig(format!("unknown pin '{trigger_pin}'")))?;
    let out_idx = dut
        .pin_index(out_pin)
        .ok_or_else(|| CharacError::BadRig(format!("unknown pin '{out_pin}'")))?;
    let t_edge = window / 4.0;
    ckt.add_vsource(
        "VTRIG",
        nodes[trig_idx],
        Circuit::GROUND,
        SourceWave::pulse(
            v_idle,
            v_active,
            t_edge,
            window * 1e-4,
            window * 1e-4,
            window,
            0.0,
        ),
    );
    let result = ckt.tran(&TranSpec::new(window))?;
    let w_out = result.voltage_waveform(nodes[out_idx])?;
    let edge = if output_level >= w_out.value_at(t_edge).unwrap_or(0.0) {
        measure::Edge::Rising
    } else {
        measure::Edge::Falling
    };
    let t_cross =
        measure::first_crossing_after(&w_out, output_level, edge, t_edge)?.ok_or_else(|| {
            CharacError::ExtractionFailed(format!(
                "output never crossed {output_level} after the trigger"
            ))
        })?;
    Ok(Extraction {
        name: format!("t_response_{out_pin}"),
        value: t_cross - t_edge,
        unit: "s",
    })
}

/// One point of a frequency response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResponsePoint {
    /// Stimulus frequency (Hz).
    pub freq: f64,
    /// Magnitude of out/in.
    pub gain: f64,
    /// Phase of out/in in degrees.
    pub phase_deg: f64,
}

/// Measures the small-signal frequency response `out/in` by running one
/// transient sine per frequency and correlating the settled cycles — the
/// "many analogue simulation runs" style of the paper's characterization
/// tool, and the only method that works for arbitrary behavioural DUTs
/// (whose AC linearization the simulator does not know).
///
/// `amplitude` is the drive amplitude; `settle_periods` cycles are
/// discarded before the correlation window (at least 2 recommended).
///
/// # Errors
///
/// Simulation or extraction failures.
pub fn frequency_response(
    dut: &dyn Dut,
    in_pin: &str,
    out_pin: &str,
    bias: &[(&str, Bias)],
    freqs: &[f64],
    amplitude: f64,
    settle_periods: usize,
) -> Result<Vec<ResponsePoint>, CharacError> {
    let mut out = Vec::with_capacity(freqs.len());
    for &f in freqs {
        if f <= 0.0 {
            return Err(CharacError::BadRig(format!("non-positive frequency {f}")));
        }
        let (mut ckt, nodes) = scaffold(dut, bias)?;
        let in_idx = dut
            .pin_index(in_pin)
            .ok_or_else(|| CharacError::BadRig(format!("unknown pin '{in_pin}'")))?;
        let out_idx = dut
            .pin_index(out_pin)
            .ok_or_else(|| CharacError::BadRig(format!("unknown pin '{out_pin}'")))?;
        ckt.add_vsource(
            "VAC",
            nodes[in_idx],
            Circuit::GROUND,
            SourceWave::sine(0.0, amplitude, f),
        );
        let periods = settle_periods.max(1) + 3;
        let tstop = periods as f64 / f;
        let spec = TranSpec {
            dt_max: Some(1.0 / (f * 40.0)),
            ..TranSpec::new(tstop)
        };
        let result = ckt.tran(&spec)?;
        let w_in = result.voltage_waveform(nodes[in_idx])?;
        let w_out = result.voltage_waveform(nodes[out_idx])?;
        let t_settle = settle_periods.max(1) as f64 / f;
        let x_in = gabm_numeric::measure::fourier_component(&w_in, f, t_settle)?;
        let x_out = gabm_numeric::measure::fourier_component(&w_out, f, t_settle)?;
        if x_in.abs() == 0.0 {
            return Err(CharacError::ExtractionFailed(format!(
                "no input component at {f} Hz"
            )));
        }
        let h = x_out / x_in;
        out.push(ResponsePoint {
            freq: f,
            gain: h.abs(),
            phase_deg: h.arg_deg(),
        });
    }
    Ok(out)
}

/// Measures the quiescent supply currents and the whole-model current
/// balance `Σ i_pin` (which must vanish by the Fig. 4 balance sheet).
///
/// Every pin listed in `bias` is driven by a voltage source, so each pin
/// current is observable; un-biased pins are grounded.
///
/// # Errors
///
/// Simulation failures.
pub fn supply_currents(
    dut: &dyn Dut,
    vdd_pin: &str,
    vss_pin: &str,
    bias: &[(&str, Bias)],
) -> Result<Vec<Extraction>, CharacError> {
    // Bias every pin with a source so all pin currents are measurable.
    let pins = dut.pin_names();
    let mut full_bias: Vec<(String, Bias)> = Vec::new();
    for p in &pins {
        let given = bias.iter().find(|(name, _)| name == p);
        match given {
            Some((_, b)) => full_bias.push((p.clone(), *b)),
            None => full_bias.push((p.clone(), Bias::Ground)),
        }
    }
    let bias_refs: Vec<(&str, Bias)> = full_bias.iter().map(|(n, b)| (n.as_str(), *b)).collect();
    let (mut ckt, _nodes) = scaffold(dut, &bias_refs)?;
    let op = ckt.op()?;
    let mut out = Vec::new();
    let mut total = 0.0;
    for p in &pins {
        // Source current: positive into the source's + terminal = out of
        // the DUT pin; pin current into the DUT = −i_source... The bias
        // source is wired (pin → ground), so its branch current is the
        // current flowing from the pin into the source, i.e. *out of* the
        // DUT. Current into the DUT at this pin is the negative.
        let i_src = op.current_through(&ckt, &format!("VB_{p}"))?;
        let into_dut = -i_src;
        total += into_dut;
        if p == vdd_pin {
            out.push(Extraction {
                name: "i_vdd".to_string(),
                value: into_dut,
                unit: "A",
            });
        } else if p == vss_pin {
            out.push(Extraction {
                name: "i_vss".to_string(),
                value: into_dut,
                unit: "A",
            });
        }
    }
    out.push(Extraction {
        name: "i_balance".to_string(),
        value: total,
        unit: "A",
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnDut;

    /// Reference DUT: explicit R_in ∥ C_in network (what the behavioural
    /// input stage models).
    fn rc_dut(rin: f64, cin: f64) -> impl Dut {
        FnDut::new(&["in"], move |ckt, name, nodes| {
            ckt.add_resistor(&format!("{name}_R"), nodes[0], Circuit::GROUND, rin)?;
            ckt.add_capacitor(&format!("{name}_C"), nodes[0], Circuit::GROUND, cin);
            Ok(())
        })
    }

    #[test]
    fn extracts_input_resistance() {
        let dut = rc_dut(1.0e6, 5.0e-12);
        let x = input_resistance(&dut, "in", &[]).unwrap();
        assert!((x.value - 1.0e6).abs() / 1.0e6 < 1e-3, "rin = {}", x.value);
    }

    #[test]
    fn extracts_input_capacitance() {
        let dut = rc_dut(1.0e6, 5.0e-12);
        let x = input_capacitance(&dut, "in", &[], 5.0e-12).unwrap();
        assert!(
            (x.value - 5.0e-12).abs() / 5.0e-12 < 0.1,
            "cin = {:.3e}",
            x.value
        );
    }

    #[test]
    fn extracts_output_resistance() {
        // A Thévenin source: 2 V behind 50 Ω.
        let dut = FnDut::new(&["out"], |ckt, name, nodes| {
            let inner = ckt.node(&format!("{name}_src"));
            ckt.add_vsource(
                &format!("{name}_V"),
                inner,
                Circuit::GROUND,
                SourceWave::dc(2.0),
            );
            ckt.add_resistor(&format!("{name}_R"), inner, nodes[0], 50.0)
        });
        let x = output_resistance(&dut, "out", &[], 1.0e-3).unwrap();
        assert!((x.value - 50.0).abs() < 0.1, "rout = {}", x.value);
    }

    #[test]
    fn dc_transfer_of_divider() {
        let dut = FnDut::new(&["a", "b"], |ckt, name, nodes| {
            let mid = nodes[1];
            ckt.add_resistor(&format!("{name}_R1"), nodes[0], mid, 1.0e3)?;
            ckt.add_resistor(&format!("{name}_R2"), mid, Circuit::GROUND, 1.0e3)
        });
        let xs = dc_transfer(&dut, "a", "b", &[], -1.0, 1.0, 0.1).unwrap();
        let gain = xs.iter().find(|x| x.name == "gain").unwrap();
        assert!((gain.value - 0.5).abs() < 1e-6);
        let hi = xs.iter().find(|x| x.name == "out_high").unwrap();
        assert!((hi.value - 0.5).abs() < 1e-6);
    }

    #[test]
    fn supply_balance_of_passive_network() {
        // A resistor from vdd to vss: i_vdd = -i_vss, balance = 0.
        let dut = FnDut::new(&["vdd", "vss"], |ckt, name, nodes| {
            ckt.add_resistor(&format!("{name}_R"), nodes[0], nodes[1], 1.0e3)
        });
        let xs = supply_currents(
            &dut,
            "vdd",
            "vss",
            &[("vdd", Bias::Voltage(2.5)), ("vss", Bias::Voltage(-2.5))],
        )
        .unwrap();
        let ivdd = xs.iter().find(|x| x.name == "i_vdd").unwrap().value;
        let ivss = xs.iter().find(|x| x.name == "i_vss").unwrap().value;
        let bal = xs.iter().find(|x| x.name == "i_balance").unwrap().value;
        assert!((ivdd - 5.0e-3).abs() < 1e-8, "i_vdd = {ivdd}");
        assert!((ivss + 5.0e-3).abs() < 1e-8, "i_vss = {ivss}");
        assert!(bal.abs() < 1e-9, "balance = {bal}");
    }

    #[test]
    fn frequency_response_of_rc_divider() {
        // 1 kΩ into 1 µF to ground, output across the capacitor:
        // pole at 159 Hz.
        let dut = FnDut::new(&["a", "b"], |ckt, name, nodes| {
            ckt.add_resistor(&format!("{name}_R"), nodes[0], nodes[1], 1.0e3)?;
            ckt.add_capacitor(&format!("{name}_C"), nodes[1], Circuit::GROUND, 1.0e-6);
            Ok(())
        });
        let pts =
            frequency_response(&dut, "a", "b", &[], &[10.0, 159.1549, 5.0e3], 1.0, 3).unwrap();
        assert!((pts[0].gain - 1.0).abs() < 0.02, "LF gain {}", pts[0].gain);
        assert!(
            (pts[1].gain - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.03,
            "corner gain {}",
            pts[1].gain
        );
        assert!(pts[2].gain < 0.05, "HF gain {}", pts[2].gain);
        assert!(
            (pts[1].phase_deg + 45.0).abs() < 4.0,
            "corner phase {}",
            pts[1].phase_deg
        );
    }

    #[test]
    fn frequency_response_rejects_bad_freq() {
        let dut = rc_dut(1e6, 1e-12);
        assert!(frequency_response(&dut, "in", "in", &[], &[0.0], 1.0, 2).is_err());
    }

    #[test]
    fn unknown_pins_rejected() {
        let dut = rc_dut(1e6, 1e-12);
        assert!(input_resistance(&dut, "zz", &[]).is_err());
        assert!(output_resistance(&dut, "zz", &[], 1e-3).is_err());
        assert!(dc_transfer(&dut, "zz", "in", &[], 0.0, 1.0, 0.1).is_err());
    }
}
