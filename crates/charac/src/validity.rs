//! Validity-range determination (§2.4: "This method can also be used to
//! determine the range of validity of models").

use crate::CharacError;
use gabm_par::ThreadPool;

/// Result of a validity scan over one stimulus axis.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidityRange {
    /// Name of the swept stimulus (e.g. `"frequency"`).
    pub axis: String,
    /// Lowest stimulus value at which the model was still valid.
    pub lo: f64,
    /// Highest stimulus value at which the model was still valid.
    pub hi: f64,
    /// Number of probe evaluations performed.
    pub evaluations: usize,
    /// Number of grid points where the probe itself failed (e.g. the rig
    /// simulation did not converge). Failed points count as *invalid* —
    /// a corner the model cannot even simulate is outside its validity
    /// range — mirroring the failure accounting of
    /// [`monte_carlo`](crate::monte_carlo::monte_carlo).
    pub failures: usize,
}

impl ValidityRange {
    /// `true` if any valid interval was found.
    pub fn is_valid_anywhere(&self) -> bool {
        self.lo <= self.hi
    }
}

/// Scans `probe` over a logarithmic grid from `lo` to `hi` on the global
/// thread pool and returns the longest contiguous valid range.
///
/// `probe(x)` returns the model's relative deviation from its expectation at
/// stimulus `x`; a point is *valid* when the deviation is `<= tol`. A probe
/// error does **not** abort the scan: the point is recorded as invalid and
/// counted in [`ValidityRange::failures`].
///
/// # Errors
///
/// [`CharacError::BadRig`] for inconsistent bounds.
pub fn scan_validity(
    axis: &str,
    lo: f64,
    hi: f64,
    points: usize,
    tol: f64,
    probe: impl Fn(f64) -> Result<f64, CharacError> + Sync,
) -> Result<ValidityRange, CharacError> {
    scan_validity_on(gabm_par::global(), axis, lo, hi, points, tol, probe)
}

/// [`scan_validity`] on an explicit pool (e.g. for thread-scaling
/// benchmarks).
///
/// Each grid point is a pure function of the scan bounds and its index, and
/// the valid/invalid verdicts are combined in grid order, so the result does
/// not depend on `pool.threads()` or scheduling.
///
/// # Errors
///
/// [`CharacError::BadRig`] for inconsistent bounds.
pub fn scan_validity_on(
    pool: &ThreadPool,
    axis: &str,
    lo: f64,
    hi: f64,
    points: usize,
    tol: f64,
    probe: impl Fn(f64) -> Result<f64, CharacError> + Sync,
) -> Result<ValidityRange, CharacError> {
    if !(lo > 0.0 && hi > lo && points >= 2) {
        return Err(CharacError::BadRig(format!(
            "scan needs 0 < lo < hi and >= 2 points (got {lo}, {hi}, {points})"
        )));
    }
    let grid: Vec<f64> = (0..points)
        .map(|k| lo * (hi / lo).powf(k as f64 / (points - 1) as f64))
        .collect();
    let _span = gabm_trace::span_with("charac.validity", "axis", || axis.to_string());
    let outcomes = pool.par_map(&grid, |k, &x| {
        let _s = gabm_trace::span_with("charac.validity.probe", "k", || k.to_string());
        probe(x)
    });
    let mut failures = 0usize;
    let valid: Vec<bool> = outcomes
        .into_iter()
        .map(|outcome| match outcome {
            Ok(dev) => dev <= tol,
            Err(_) => {
                failures += 1;
                false
            }
        })
        .collect();
    // Find the longest contiguous valid run.
    let mut best: Option<(usize, usize)> = None;
    let mut start: Option<usize> = None;
    for (k, v) in valid.iter().enumerate() {
        match (*v, start) {
            (true, None) => start = Some(k),
            (false, Some(s)) => {
                let len = k - s;
                if best.map(|(bs, be)| be - bs).unwrap_or(0) < len {
                    best = Some((s, k));
                }
                start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = start {
        let len = points - s;
        if best.map(|(bs, be)| be - bs).unwrap_or(0) < len {
            best = Some((s, points));
        }
    }
    match best {
        Some((s, e)) => Ok(ValidityRange {
            axis: axis.to_string(),
            lo: grid[s],
            hi: grid[e - 1],
            evaluations: points,
            failures,
        }),
        None => Ok(ValidityRange {
            axis: axis.to_string(),
            lo: f64::INFINITY,
            hi: f64::NEG_INFINITY,
            evaluations: points,
            failures,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_low_pass_validity() {
        // A model valid below a 1 kHz corner: deviation grows with f/fc.
        let r = scan_validity("frequency", 1.0, 1.0e6, 61, 0.1, |f| Ok(f / 1.0e4)).unwrap();
        assert!(r.is_valid_anywhere());
        assert_eq!(r.lo, 1.0);
        // Valid up to deviation 0.1 → f = 1 kHz (within grid resolution).
        assert!(
            (r.hi / 1.0e3) < 1.3 && (r.hi / 1.0e3) > 0.7,
            "hi = {}",
            r.hi
        );
        assert_eq!(r.evaluations, 61);
        assert_eq!(r.failures, 0);
    }

    #[test]
    fn nowhere_valid() {
        let r = scan_validity("x", 1.0, 10.0, 5, 0.1, |_| Ok(1.0)).unwrap();
        assert!(!r.is_valid_anywhere());
    }

    #[test]
    fn everywhere_valid() {
        let r = scan_validity("x", 1.0, 10.0, 5, 0.1, |_| Ok(0.0)).unwrap();
        assert_eq!(r.lo, 1.0);
        assert_eq!(r.hi, 10.0);
    }

    #[test]
    fn band_validity() {
        // Valid only in the middle of the range.
        let r = scan_validity("x", 1.0, 100.0, 21, 0.1, |x| {
            Ok(if (3.0..30.0).contains(&x) { 0.0 } else { 1.0 })
        })
        .unwrap();
        assert!(r.lo > 2.9 && r.lo < 4.0, "lo = {}", r.lo);
        assert!(r.hi > 20.0 && r.hi < 31.0, "hi = {}", r.hi);
    }

    #[test]
    fn bad_bounds_rejected() {
        assert!(scan_validity("x", 0.0, 1.0, 5, 0.1, |_| Ok(0.0)).is_err());
        assert!(scan_validity("x", 2.0, 1.0, 5, 0.1, |_| Ok(0.0)).is_err());
        assert!(scan_validity("x", 1.0, 2.0, 1, 0.1, |_| Ok(0.0)).is_err());
    }

    #[test]
    fn probe_failures_count_as_invalid_points() {
        // Regression: a probe error used to abort the whole scan. A failed
        // grid point must instead bound the valid range, like any other
        // invalid point.
        let r = scan_validity("x", 1.0, 100.0, 21, 0.1, |x| {
            if x > 30.0 {
                Err(CharacError::ExtractionFailed("no convergence".into()))
            } else {
                Ok(0.0)
            }
        })
        .unwrap();
        assert!(r.is_valid_anywhere());
        assert_eq!(r.lo, 1.0);
        assert!(r.hi <= 30.0, "hi = {}", r.hi);
        assert_eq!(r.evaluations, 21);
        assert!(r.failures > 0);
        // Count of failing grid points: x > 30 on the 21-point log grid.
        let expected = (0..21)
            .filter(|&k| 100.0f64.powf(k as f64 / 20.0) > 30.0)
            .count();
        assert_eq!(r.failures, expected);
    }

    #[test]
    fn all_probes_failing_is_nowhere_valid() {
        let r = scan_validity("x", 1.0, 10.0, 3, 0.1, |_| {
            Err::<f64, _>(CharacError::ExtractionFailed("boom".into()))
        })
        .unwrap();
        assert!(!r.is_valid_anywhere());
        assert_eq!(r.failures, 3);
        assert_eq!(r.evaluations, 3);
    }
}
