//! Monte-Carlo characterization: parameter scatter → performance scatter.
//!
//! The paper's workflow attaches *sets of implementation-dependent
//! parameters* to each behavioural model (§1). Real implementations
//! scatter; this module samples parameter sets, re-runs an extraction per
//! sample, and reports the distribution — the statistical view a design
//! library needs before sign-off.
//!
//! Samples are independent, so the extraction runs fan out over a
//! [`ThreadPool`](gabm_par::ThreadPool). Sample `k`'s parameter set is drawn
//! from its own RNG stream, [`Rng::split(seed, k)`](Rng::split) — a pure
//! function of `(seed, k)` — so the distribution is **bitwise identical** at
//! any thread count, including the serial path.

use crate::CharacError;
use gabm_numeric::rng::Rng;
use gabm_par::ThreadPool;
use std::collections::BTreeMap;

/// A parameter scatter specification: nominal value and relative standard
/// deviation (uniform ±3σ sampling — bounded, no outliers).
#[derive(Debug, Clone, PartialEq)]
pub struct Scatter {
    /// Nominal value.
    pub nominal: f64,
    /// Relative standard deviation (e.g. 0.05 = 5 %).
    pub rel_sigma: f64,
}

impl Scatter {
    /// Creates a scatter spec.
    pub fn new(nominal: f64, rel_sigma: f64) -> Self {
        Scatter { nominal, rel_sigma }
    }
}

/// Distribution summary of one measured quantity over the samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Distribution {
    /// Number of successful samples.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (unbiased).
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Distribution {
    fn from_samples(samples: &[f64]) -> Option<Distribution> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Some(Distribution {
            n,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        })
    }
}

/// Draws sample `k`'s parameter set. Pure in `(scatters, seed, k)`, which is
/// what makes the parallel fan-out deterministic.
fn draw_params(scatters: &BTreeMap<String, Scatter>, seed: u64, k: usize) -> BTreeMap<String, f64> {
    let mut rng = Rng::split(seed, k as u64);
    let mut params = BTreeMap::new();
    for (name, sc) in scatters {
        // Uniform over ±3σ: bounded support keeps rigs out of absurd
        // corners while matching the requested dispersion scale.
        let span = 3.0 * sc.rel_sigma * sc.nominal;
        let value = sc.nominal + rng.symmetric() * span;
        params.insert(name.clone(), value);
    }
    params
}

/// Runs a Monte-Carlo analysis on the global thread pool: `samples`
/// parameter sets are drawn from `scatters` (deterministic with `seed`) and
/// `measure` is invoked per set; its scalar result is aggregated into a
/// [`Distribution`].
///
/// `measure` failures are counted but excluded from the statistics (a
/// corner that fails to converge is itself a finding).
///
/// Returns the distribution and the number of failed samples. The result is
/// bitwise identical at any thread count (see [`monte_carlo_on`]).
///
/// # Errors
///
/// [`CharacError::BadRig`] if no sample succeeds or `samples == 0`.
pub fn monte_carlo(
    scatters: &BTreeMap<String, Scatter>,
    samples: usize,
    seed: u64,
    measure: impl Fn(&BTreeMap<String, f64>) -> Result<f64, CharacError> + Sync,
) -> Result<(Distribution, usize), CharacError> {
    monte_carlo_on(gabm_par::global(), scatters, samples, seed, measure)
}

/// [`monte_carlo`] on an explicit pool (e.g. for thread-scaling benchmarks).
///
/// Sample `k` is measured against parameters drawn from the split stream
/// `Rng::split(seed, k)` and results are aggregated in sample order, so the
/// outcome does not depend on `pool.threads()` or scheduling.
///
/// # Errors
///
/// [`CharacError::BadRig`] if no sample succeeds or `samples == 0`.
pub fn monte_carlo_on(
    pool: &ThreadPool,
    scatters: &BTreeMap<String, Scatter>,
    samples: usize,
    seed: u64,
    measure: impl Fn(&BTreeMap<String, f64>) -> Result<f64, CharacError> + Sync,
) -> Result<(Distribution, usize), CharacError> {
    if samples == 0 {
        return Err(CharacError::BadRig("need at least one sample".into()));
    }
    let _span = gabm_trace::span("charac.monte_carlo");
    let outcomes = pool.par_map_n(samples, |k| {
        let _s = gabm_trace::span_with("charac.mc.sample", "k", || k.to_string());
        measure(&draw_params(scatters, seed, k))
    });
    let mut values = Vec::with_capacity(samples);
    let mut failures = 0usize;
    for outcome in outcomes {
        match outcome {
            Ok(v) => values.push(v),
            Err(_) => failures += 1,
        }
    }
    let dist = Distribution::from_samples(&values)
        .ok_or_else(|| CharacError::BadRig("every Monte-Carlo sample failed".into()))?;
    Ok((dist, failures))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scatter_of(name: &str, nominal: f64, sigma: f64) -> BTreeMap<String, Scatter> {
        let mut m = BTreeMap::new();
        m.insert(name.to_string(), Scatter::new(nominal, sigma));
        m
    }

    #[test]
    fn distribution_statistics() {
        let d = Distribution::from_samples(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(d.n, 3);
        assert!((d.mean - 2.0).abs() < 1e-12);
        assert!((d.std_dev - 1.0).abs() < 1e-12);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.max, 3.0);
        assert!(Distribution::from_samples(&[]).is_none());
    }

    #[test]
    fn identity_measurement_reproduces_scatter() {
        let scatters = scatter_of("g", 1.0e-3, 0.05);
        let (dist, failures) = monte_carlo(&scatters, 400, 42, |p| Ok(p["g"])).unwrap();
        assert_eq!(failures, 0);
        assert!(
            (dist.mean - 1.0e-3).abs() / 1.0e-3 < 0.02,
            "mean {}",
            dist.mean
        );
        // Uniform ±3σ ⇒ std = 3σ/√3 = √3·σ ≈ 8.66e-5.
        let expect_std = 3.0 * 0.05e-3 / 3.0f64.sqrt();
        assert!(
            (dist.std_dev - expect_std).abs() / expect_std < 0.15,
            "std {}",
            dist.std_dev
        );
        assert!(dist.min >= 1.0e-3 * 0.85 - 1e-12);
        assert!(dist.max <= 1.0e-3 * 1.15 + 1e-12);
    }

    #[test]
    fn deterministic_with_seed() {
        let scatters = scatter_of("x", 1.0, 0.1);
        let (a, _) = monte_carlo(&scatters, 16, 7, |p| Ok(p["x"])).unwrap();
        let (b, _) = monte_carlo(&scatters, 16, 7, |p| Ok(p["x"])).unwrap();
        assert_eq!(a, b);
        let (c, _) = monte_carlo(&scatters, 16, 8, |p| Ok(p["x"])).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn failures_are_counted_not_fatal() {
        let scatters = scatter_of("x", 1.0, 0.2);
        let (dist, failures) = monte_carlo(&scatters, 64, 3, |p| {
            if p["x"] > 1.0 {
                Err(CharacError::ExtractionFailed("corner".into()))
            } else {
                Ok(p["x"])
            }
        })
        .unwrap();
        assert!(failures > 0);
        assert!(dist.n + failures == 64);
        assert!(dist.max <= 1.0);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        let scatters = scatter_of("x", 1.0, 0.1);
        assert!(monte_carlo(&scatters, 0, 1, |p| Ok(p["x"])).is_err());
        let all_fail = monte_carlo(&scatters, 4, 1, |_| {
            Err::<f64, _>(CharacError::ExtractionFailed("x".into()))
        });
        assert!(all_fail.is_err());
    }

    #[test]
    fn pool_size_does_not_change_the_distribution() {
        let scatters = scatter_of("x", 1.0, 0.1);
        let run = |threads: usize| {
            let pool = ThreadPool::new(threads);
            monte_carlo_on(&pool, &scatters, 33, 17, |p| Ok(p["x"])).unwrap()
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(7));
    }
}
