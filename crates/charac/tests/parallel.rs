//! Bitwise determinism of the parallel characterization flows: the same
//! seed must produce the same bits at any thread count, because per-sample
//! RNG streams are split from the seed rather than drawn sequentially.

use gabm_charac::monte_carlo::{monte_carlo_on, Distribution, Scatter};
use gabm_charac::validity::scan_validity_on;
use gabm_charac::{rigs, CharacError, FnDut, ThreadPool};
use gabm_sim::devices::{DiodeParams, SourceWave};
use gabm_sim::Circuit;
use std::collections::BTreeMap;

const THREAD_COUNTS: [usize; 3] = [1, 2, 7];

fn bits(d: &Distribution) -> (usize, u64, u64, u64, u64) {
    (
        d.n,
        d.mean.to_bits(),
        d.std_dev.to_bits(),
        d.min.to_bits(),
        d.max.to_bits(),
    )
}

#[test]
fn monte_carlo_is_bitwise_identical_across_thread_counts() {
    let mut scatters = BTreeMap::new();
    scatters.insert("r".to_string(), Scatter::new(1.0e3, 0.1));
    scatters.insert("g".to_string(), Scatter::new(2.0e-3, 0.05));
    for seed in [1, 42, 1994] {
        let run = |threads: usize| {
            let pool = ThreadPool::new(threads);
            monte_carlo_on(&pool, &scatters, 57, seed, |p| {
                // A mildly nonlinear measurement with a failing corner, so
                // both the value stream and the failure accounting are
                // exercised.
                let v = p["r"] * p["g"];
                if v > 2.25 {
                    Err(CharacError::ExtractionFailed("corner".into()))
                } else {
                    Ok(v.sin() + p["r"].sqrt())
                }
            })
            .unwrap()
        };
        let (dist_1t, failures_1t) = run(1);
        for &threads in &THREAD_COUNTS[1..] {
            let (dist, failures) = run(threads);
            assert_eq!(
                bits(&dist_1t),
                bits(&dist),
                "seed {seed}, {threads} threads"
            );
            assert_eq!(failures_1t, failures, "seed {seed}, {threads} threads");
        }
    }
}

#[test]
fn monte_carlo_on_a_real_rig_is_bitwise_identical() {
    // Scatter a resistive divider's lower leg and extract the DC gain with
    // the dc_transfer rig — each sample builds and sweeps a real circuit
    // on the pool.
    let mut scatters = BTreeMap::new();
    scatters.insert("r2".to_string(), Scatter::new(1.0e3, 0.1));
    let run = |threads: usize| {
        let pool = ThreadPool::new(threads);
        monte_carlo_on(&pool, &scatters, 12, 7, |p| {
            let r2 = p["r2"];
            let dut = FnDut::new(&["in", "out"], move |ckt, name, nodes| {
                ckt.add_resistor(&format!("{name}_R1"), nodes[0], nodes[1], 1.0e3)?;
                ckt.add_resistor(&format!("{name}_R2"), nodes[1], Circuit::GROUND, r2)?;
                Ok(())
            });
            let xs = rigs::dc_transfer(&dut, "in", "out", &[], -1.0, 1.0, 0.5)?;
            let gain = xs
                .iter()
                .find(|x| x.name == "gain")
                .ok_or_else(|| CharacError::ExtractionFailed("no gain".into()))?;
            Ok(gain.value)
        })
        .unwrap()
    };
    let (dist_1t, failures_1t) = run(1);
    assert_eq!(failures_1t, 0);
    // Divider gain r2/(r1+r2) with r2 ∈ 1 kΩ ± 30 %: centred near 0.5.
    assert!(
        (dist_1t.mean - 0.5).abs() < 0.05,
        "mean gain {}",
        dist_1t.mean
    );
    for &threads in &THREAD_COUNTS[1..] {
        let (dist, failures) = run(threads);
        assert_eq!(bits(&dist_1t), bits(&dist), "{threads} threads");
        assert_eq!(failures, 0);
    }
}

#[test]
fn scan_validity_is_bitwise_identical_across_thread_counts() {
    let run = |threads: usize| {
        let pool = ThreadPool::new(threads);
        scan_validity_on(&pool, "frequency", 1.0, 1.0e5, 41, 0.1, |f| {
            if f > 3.0e4 {
                Err(CharacError::ExtractionFailed("no convergence".into()))
            } else {
                Ok(f / 1.0e4)
            }
        })
        .unwrap()
    };
    let r_1t = run(1);
    for &threads in &THREAD_COUNTS[1..] {
        let r = run(threads);
        assert_eq!(r_1t.lo.to_bits(), r.lo.to_bits(), "{threads} threads");
        assert_eq!(r_1t.hi.to_bits(), r.hi.to_bits(), "{threads} threads");
        assert_eq!(r_1t.evaluations, r.evaluations);
        assert_eq!(r_1t.failures, r.failures);
    }
    assert!(r_1t.failures > 0, "the scan should hit the failing corner");
}

#[test]
fn validity_scan_on_a_real_circuit_bounds_a_bias_range() {
    // A diode-clamped divider stops tracking the ideal divider once the
    // diode turns on; every probe solves a real operating point on the
    // pool, and the verdict must not depend on the thread count.
    let probe = |vin: f64| -> Result<f64, CharacError> {
        let mut ckt = Circuit::new();
        let input = ckt.node("in");
        let mid = ckt.node("mid");
        ckt.add_vsource("VIN", input, Circuit::GROUND, SourceWave::dc(vin));
        ckt.add_resistor("R1", input, mid, 1.0e3)?;
        ckt.add_resistor("R2", mid, Circuit::GROUND, 1.0e3)?;
        ckt.add_diode("D1", mid, Circuit::GROUND, DiodeParams::default());
        let op = ckt.op()?;
        let ideal = vin / 2.0;
        Ok((op.voltage(mid) - ideal).abs() / ideal.abs().max(1e-12))
    };
    let run = |threads: usize| {
        let pool = ThreadPool::new(threads);
        scan_validity_on(&pool, "vin", 0.01, 10.0, 31, 0.05, probe).unwrap()
    };
    let r_1t = run(1);
    assert!(r_1t.is_valid_anywhere());
    assert!(
        r_1t.hi < 2.0,
        "diode clamp should cap validity, hi = {}",
        r_1t.hi
    );
    for &threads in &THREAD_COUNTS[1..] {
        let r = run(threads);
        assert_eq!(r_1t.lo.to_bits(), r.lo.to_bits());
        assert_eq!(r_1t.hi.to_bits(), r.hi.to_bits());
        assert_eq!(r_1t.failures, r.failures);
    }
}
