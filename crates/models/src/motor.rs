//! A DC-motor behavioural model — the non-electrical extension of §2/§3.1a.
//!
//! "For the extension to non-electrical system, new conversion symbols alone
//! have to be defined (e.g. torque, angular velocity probes and
//! generators) … microsystem integration becomes possible."
//!
//! The rotational domain is mapped onto the nodal solver with the mobility
//! analogy: angular velocity is the across quantity (like voltage), torque
//! the through quantity (like current). Inertia then appears as a capacitor
//! (`J` farads), viscous friction as a resistor (`1/b` ohms) on the axle
//! node.
//!
//! Motor equations (armature inductance neglected):
//!
//! ```text
//! i = (v_a − v_b − ke·ω) / R      (electrical port, back-EMF)
//! τ = kt·i                        (torque delivered to the axle)
//! ```

use crate::ModelError;
use gabm_codegen::{generate, Backend};
use gabm_core::card::{CharacteristicClass, DefinitionCard, PinDomain};
use gabm_core::diagram::FunctionalDiagram;
use gabm_core::quantity::Dimension;
use gabm_core::symbol::{PropertyValue, SymbolKind};
use gabm_fas::{compile, FasMachine};
use std::collections::BTreeMap;

/// Parameterized brushed DC motor.
#[derive(Debug, Clone, PartialEq)]
pub struct DcMotorSpec {
    /// Armature resistance (Ω).
    pub resistance: f64,
    /// Back-EMF constant (V·s/rad).
    pub ke: f64,
    /// Torque constant (N·m/A).
    pub kt: f64,
}

impl Default for DcMotorSpec {
    fn default() -> Self {
        DcMotorSpec {
            resistance: 2.0,
            ke: 0.05,
            kt: 0.05,
        }
    }
}

impl DcMotorSpec {
    /// Builds the functional diagram (pins: `ta`, `tb` electrical, `axle`
    /// rotational).
    ///
    /// # Errors
    ///
    /// Diagram-construction errors (none occur for valid specs).
    pub fn diagram(&self) -> Result<FunctionalDiagram, ModelError> {
        let mut d = FunctionalDiagram::new("dc_motor");
        d.add_parameter("rm", self.resistance, Dimension::RESISTANCE);
        // ke: volts per (rad/s) = V·s.
        d.add_parameter(
            "ke",
            self.ke,
            Dimension::VOLTAGE / Dimension::ANGULAR_VELOCITY,
        );
        // kt: torque per ampere.
        d.add_parameter("kt", self.kt, Dimension::TORQUE / Dimension::CURRENT);

        // Electrical pins with voltage probes and current generators.
        let ta = d.add_symbol(SymbolKind::Pin { name: "ta".into() });
        let pa = d.add_symbol(SymbolKind::Probe {
            quantity: Dimension::VOLTAGE,
        });
        let ga = d.add_symbol(SymbolKind::Generator {
            quantity: Dimension::CURRENT,
        });
        let tb = d.add_symbol(SymbolKind::Pin { name: "tb".into() });
        let pb = d.add_symbol(SymbolKind::Probe {
            quantity: Dimension::VOLTAGE,
        });
        let gb = d.add_symbol(SymbolKind::Generator {
            quantity: Dimension::CURRENT,
        });
        d.connect(d.port(ta, "pin")?, d.port(pa, "pin")?)?;
        d.connect(d.port(ta, "pin")?, d.port(ga, "pin")?)?;
        d.connect(d.port(tb, "pin")?, d.port(pb, "pin")?)?;
        d.connect(d.port(tb, "pin")?, d.port(gb, "pin")?)?;

        // Mechanical pin: angular-velocity probe + torque generator — the
        // "new conversion symbols" of §3.1a.
        let axle = d.add_symbol(SymbolKind::Pin {
            name: "axle".into(),
        });
        let pw = d.add_symbol(SymbolKind::Probe {
            quantity: Dimension::ANGULAR_VELOCITY,
        });
        let gt = d.add_symbol(SymbolKind::Generator {
            quantity: Dimension::TORQUE,
        });
        d.connect(d.port(axle, "pin")?, d.port(pw, "pin")?)?;
        d.connect(d.port(axle, "pin")?, d.port(gt, "pin")?)?;

        // i = (va − vb − ke·ω)/rm.
        let bemf = d.add_symbol_with(
            SymbolKind::Gain,
            &[("a", PropertyValue::Param("ke".into()))],
            Some("back-EMF"),
        );
        d.connect(d.port(pw, "out")?, d.port(bemf, "in")?)?;
        let vsum = d.add_symbol(SymbolKind::Adder {
            signs: vec![true, false, false],
        });
        d.connect(d.port(pa, "out")?, d.port(vsum, "in0")?)?;
        d.connect(d.port(pb, "out")?, d.port(vsum, "in1")?)?;
        d.connect(d.port(bemf, "out")?, d.port(vsum, "in2")?)?;
        let rm = d.add_symbol(SymbolKind::Parameter {
            param: "rm".into(),
            dimension: Dimension::RESISTANCE,
        });
        let idiv = d.add_symbol(SymbolKind::Multiplier {
            ops: vec![true, false],
        });
        d.connect(d.port(vsum, "out")?, d.port(idiv, "in0")?)?;
        d.connect(d.port(rm, "out")?, d.port(idiv, "in1")?)?;
        // Armature current enters at ta, leaves at tb (receptor sign).
        d.connect(d.port(idiv, "out")?, d.port(ga, "in")?)?;
        let neg = d.add_symbol_with(
            SymbolKind::Gain,
            &[("a", PropertyValue::Number(-1.0))],
            None,
        );
        d.connect(d.port(idiv, "out")?, d.port(neg, "in")?)?;
        d.connect(d.port(neg, "out")?, d.port(gb, "in")?)?;

        // Torque delivered to the axle: receptor convention means the model
        // absorbs −kt·i.
        let torque = d.add_symbol_with(
            SymbolKind::Gain,
            &[("a", PropertyValue::Param("kt".into()))],
            Some("torque constant"),
        );
        d.connect(d.port(idiv, "out")?, d.port(torque, "in")?)?;
        let tneg = d.add_symbol_with(
            SymbolKind::Gain,
            &[("a", PropertyValue::Number(-1.0))],
            None,
        );
        d.connect(d.port(torque, "out")?, d.port(tneg, "in")?)?;
        d.connect(d.port(tneg, "out")?, d.port(gt, "in")?)?;
        Ok(d)
    }

    /// Builds the definition card.
    ///
    /// # Errors
    ///
    /// Card validation errors (none occur for valid specs).
    pub fn card(&self) -> Result<DefinitionCard, ModelError> {
        Ok(DefinitionCard::builder("dc_motor")
            .describe("brushed DC motor: electrical port + rotational axle")
            .pin("ta", PinDomain::Electrical, "armature terminal +")
            .pin("tb", PinDomain::Electrical, "armature terminal -")
            .pin("axle", PinDomain::RotationalMechanical, "output shaft")
            .parameter(
                "rm",
                self.resistance,
                Dimension::RESISTANCE,
                "armature resistance",
            )
            .parameter(
                "ke",
                self.ke,
                Dimension::VOLTAGE / Dimension::ANGULAR_VELOCITY,
                "back-EMF constant",
            )
            .parameter(
                "kt",
                self.kt,
                Dimension::TORQUE / Dimension::CURRENT,
                "torque constant",
            )
            .characteristic(
                "torque constant",
                CharacteristicClass::Primary,
                "tau = kt * i",
            )
            .characteristic("back-EMF", CharacteristicClass::Primary, "e = ke * omega")
            .build()?)
    }

    /// Generates the FAS code.
    ///
    /// # Errors
    ///
    /// Diagram or generation errors.
    pub fn fas_code(&self) -> Result<String, ModelError> {
        Ok(generate(&self.diagram()?, Backend::Fas)?.text)
    }

    /// Compiles and instantiates the model.
    ///
    /// # Errors
    ///
    /// Any pipeline stage error.
    pub fn machine(&self) -> Result<FasMachine, ModelError> {
        Ok(compile(&self.fas_code()?)?.instantiate(&BTreeMap::new())?)
    }

    /// Pin order of the generated model.
    pub fn pin_order() -> [&'static str; 3] {
        ["ta", "tb", "axle"]
    }

    /// No-load steady-state speed for a given armature voltage.
    pub fn no_load_speed(&self, volts: f64, friction: f64) -> f64 {
        // kt·(v − ke·ω)/R = b·ω  ⇒  ω = kt·v / (R·b + kt·ke).
        self.kt * volts / (self.resistance * friction + self.kt * self.ke)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gabm_core::check::check_diagram;
    use gabm_sim::analysis::tran::TranSpec;
    use gabm_sim::circuit::Circuit;
    use gabm_sim::devices::SourceWave;

    #[test]
    fn diagram_mixes_domains_consistently() {
        let d = DcMotorSpec::default().diagram().unwrap();
        let r = check_diagram(&d);
        assert!(r.is_consistent(), "{:?}", r.diagnostics);
    }

    #[test]
    fn oil_and_water_guard_still_fires() {
        // Sanity: wiring the torque output into the current generator must
        // be caught by the quantity check.
        let spec = DcMotorSpec::default();
        let mut d = spec.diagram().unwrap();
        // Add a direct (wrong) connection torque → electrical generator of
        // a fresh pin.
        let pin = d.add_symbol(SymbolKind::Pin { name: "x".into() });
        let gen = d.add_symbol(SymbolKind::Generator {
            quantity: Dimension::CURRENT,
        });
        d.connect(d.port(pin, "pin").unwrap(), d.port(gen, "pin").unwrap())
            .unwrap();
        // torque gain is the symbol labelled "torque constant".
        let torque_sym = d
            .symbols()
            .find(|s| s.label.as_deref() == Some("torque constant"))
            .map(|s| gabm_core::diagram::SymbolId(s.id))
            .unwrap();
        d.connect(
            d.port(torque_sym, "out").unwrap(),
            d.port(gen, "in").unwrap(),
        )
        .unwrap();
        let r = check_diagram(&d);
        assert!(r
            .diagnostics
            .iter()
            .any(|di| di.message.contains("oil and water")));
    }

    #[test]
    fn fas_code_uses_mechanical_accesses() {
        let code = DcMotorSpec::default().fas_code().unwrap();
        assert!(code.contains("omega.value(axle)"), "{code}");
        assert!(code.contains("torque.on(axle)"), "{code}");
        assert!(compile(&code).is_ok());
    }

    /// Spin-up test: motor drives an inertia+friction load; steady-state
    /// speed must match the analytic no-load formula.
    #[test]
    fn spin_up_reaches_analytic_speed() {
        let spec = DcMotorSpec::default();
        let machine = spec.machine().unwrap();
        let mut ckt = Circuit::new();
        let ta = ckt.node("ta");
        let tb = ckt.node("tb");
        let axle = ckt.node("axle");
        ckt.add_behavioral("XM", &[ta, tb, axle], Box::new(machine))
            .unwrap();
        ckt.add_vsource("VARM", ta, Circuit::GROUND, SourceWave::dc(12.0));
        ckt.add_resistor("RRET", tb, Circuit::GROUND, 1e-3).unwrap();
        // Mechanical load via the mobility analogy: friction b = 1e-3
        // N·m·s/rad ⇒ resistor 1/b; inertia J = 1e-4 kg·m² ⇒ capacitor J.
        let friction = 1e-3;
        let inertia = 1e-4;
        ckt.add_resistor("RFRIC", axle, Circuit::GROUND, 1.0 / friction)
            .unwrap();
        ckt.add_capacitor("CJ", axle, Circuit::GROUND, inertia);
        // Mechanical time constant ≈ J·(R·b + kt·ke)/(R·b) … run long.
        let result = ckt.tran(&TranSpec::new(0.5)).unwrap();
        let w = result.voltage_waveform(axle).unwrap();
        let omega_end = *w.values().last().unwrap();
        let expect = spec.no_load_speed(12.0, friction);
        assert!(
            (omega_end - expect).abs() / expect < 0.02,
            "omega = {omega_end}, expected {expect}"
        );
        // The spin-up is first-order: monotonic rise.
        assert!(w.value_at(0.01).unwrap() < omega_end);
    }

    #[test]
    fn analytic_helper() {
        let m = DcMotorSpec::default();
        let w = m.no_load_speed(12.0, 1e-3);
        // kt·v/(R·b + kt·ke) = 0.05·12/(2e-3 + 2.5e-3) = 133.3 rad/s.
        assert!((w - 133.333).abs() < 0.1, "w = {w}");
    }
}
