//! The triggered comparator of the paper's Fig. 6.
//!
//! "It includes a differential input stage, a fully balanced output stage
//! with current-limitation, a complete power-supply and an extra input for
//! the strobe signal. The slew-rate is also modelled."
//!
//! The model is assembled graphically from the §3.3 constructs, generated
//! to FAS, compiled, and instantiated as a behavioural simulator device —
//! the complete Fig. 1 pipeline.

use crate::ModelError;
use gabm_codegen::{generate, Backend};
use gabm_core::card::{CharacteristicClass, DefinitionCard, PinDomain};
use gabm_core::constructs::{InputStageSpec, OutputStageSpec, PowerSupplySpec, SlewRateSpec};
use gabm_core::diagram::{FunctionalDiagram, PortRef, SymbolId};
use gabm_core::quantity::Dimension;
use gabm_core::symbol::{PropertyValue, SymbolKind};
use gabm_fas::{compile, CompiledModel, FasMachine};
use gabm_fasvm::FasBackend;
use gabm_sim::devices::BehavioralModel;
use std::collections::BTreeMap;

/// Behaviour of the comparator output while the strobe is inactive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OffState {
    /// Latch: hold the last decided value (one-step-delay memory).
    Hold,
    /// Drive a fixed level (what the simple CMOS realization does: its
    /// second stage collapses to a rail when the tail current is cut).
    Level(f64),
}

/// Parameterized triggered comparator.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparatorSpec {
    /// Decision gain (V/V).
    pub gain: f64,
    /// High output rail (V).
    pub v_high: f64,
    /// Low output rail (V).
    pub v_low: f64,
    /// Strobe threshold (V).
    pub v_strobe: f64,
    /// Input resistance of each input (Ω).
    pub rin: f64,
    /// Input capacitance of each input (F).
    pub cin: f64,
    /// Output conductance of each output stage (S).
    pub gout: f64,
    /// Output current limit (A).
    pub ilim: f64,
    /// Maximum rising slew (V/s).
    pub slew_rise: f64,
    /// Maximum falling slew (V/s).
    pub slew_fall: f64,
    /// Supply polarization conductance (S).
    pub gpol: f64,
    /// Supply loss current (A).
    pub iloss: f64,
    /// Output behaviour when un-strobed.
    pub off_state: OffState,
}

impl Default for ComparatorSpec {
    fn default() -> Self {
        ComparatorSpec {
            gain: 1.0e4,
            v_high: 2.0,
            v_low: -2.0,
            v_strobe: 0.0,
            rin: 1.0e6,
            cin: 2.0e-12,
            gout: 1.0e-2,
            ilim: 20.0e-3,
            slew_rise: 2.0e6,
            slew_fall: 2.0e6,
            gpol: 40.0e-6,
            iloss: 10.0e-6,
            off_state: OffState::Hold,
        }
    }
}

/// Resolves an interface port of a merged sub-diagram into the parent's
/// symbol numbering.
fn merged_port(sub: &FunctionalDiagram, name: &str, offset: usize) -> Result<PortRef, ModelError> {
    let itf = sub.interface_port(name)?;
    Ok(PortRef {
        symbol: SymbolId(itf.inner.symbol.0 + offset),
        port: itf.inner.port,
    })
}

impl ComparatorSpec {
    /// Builds the Fig. 6 functional diagram.
    ///
    /// # Errors
    ///
    /// Diagram-construction errors (none occur for valid specs).
    pub fn diagram(&self) -> Result<FunctionalDiagram, ModelError> {
        let mut d = FunctionalDiagram::new("comparator");
        d.add_parameter("gain", self.gain, Dimension::NONE);
        d.add_parameter("vhigh", self.v_high, Dimension::VOLTAGE);
        d.add_parameter("vlow", self.v_low, Dimension::VOLTAGE);
        d.add_parameter("vstrobe", self.v_strobe, Dimension::VOLTAGE);
        // Gate sharpness in 1/V.
        d.add_parameter("kgate", 20.0, Dimension::NONE / Dimension::VOLTAGE);

        // Differential + strobe input stages (Fig. 2 instances).
        let inp_sub = InputStageSpec::new("inp", 1.0 / self.rin, self.cin)
            .with_param_prefix("inp_")
            .diagram()?;
        let o_inp = d.merge(inp_sub.clone());
        let v_p = merged_port(&inp_sub, "v", o_inp)?;

        let inn_sub = InputStageSpec::new("inn", 1.0 / self.rin, self.cin)
            .with_param_prefix("inn_")
            .diagram()?;
        let o_inn = d.merge(inn_sub.clone());
        let v_n = merged_port(&inn_sub, "v", o_inn)?;

        let stb_sub = InputStageSpec::new("strobe", 1.0 / self.rin, self.cin)
            .with_param_prefix("stb_")
            .diagram()?;
        let o_stb = d.merge(stb_sub.clone());
        let v_s = merged_port(&stb_sub, "v", o_stb)?;

        // Decision path: vdec = limit(gain·(vp − vn), vlow, vhigh).
        let diff = d.add_symbol(SymbolKind::Adder {
            signs: vec![true, false],
        });
        d.connect(v_p, d.port(diff, "in0")?)?;
        d.connect(v_n, d.port(diff, "in1")?)?;
        let amp = d.add_symbol_with(
            SymbolKind::Gain,
            &[("a", PropertyValue::Param("gain".into()))],
            Some("decision gain"),
        );
        d.connect(d.port(diff, "out")?, d.port(amp, "in")?)?;
        let clip = d.add_symbol_with(
            SymbolKind::Limiter,
            &[
                ("min", PropertyValue::Param("vlow".into())),
                ("max", PropertyValue::Param("vhigh".into())),
            ],
            Some("rails"),
        );
        d.connect(d.port(amp, "out")?, d.port(clip, "in")?)?;

        // Strobe gate: g = limit(kgate·(vs − vstrobe), 0, 1).
        let vth = d.add_symbol(SymbolKind::Parameter {
            param: "vstrobe".into(),
            dimension: Dimension::VOLTAGE,
        });
        let sdiff = d.add_symbol(SymbolKind::Adder {
            signs: vec![true, false],
        });
        d.connect(v_s, d.port(sdiff, "in0")?)?;
        d.connect(d.port(vth, "out")?, d.port(sdiff, "in1")?)?;
        let sgain = d.add_symbol_with(
            SymbolKind::Gain,
            &[("a", PropertyValue::Param("kgate".into()))],
            Some("gate sharpness"),
        );
        d.connect(d.port(sdiff, "out")?, d.port(sgain, "in")?)?;
        let sgate = d.add_symbol_with(
            SymbolKind::Limiter,
            &[
                ("min", PropertyValue::Number(0.0)),
                ("max", PropertyValue::Number(1.0)),
            ],
            Some("gate"),
        );
        d.connect(d.port(sgain, "out")?, d.port(sgate, "in")?)?;

        // Gated target: y_t = g·vdec + (1 − g)·off_value.
        let gated = d.add_symbol(SymbolKind::Multiplier {
            ops: vec![true, true],
        });
        d.connect(d.port(sgate, "out")?, d.port(gated, "in0")?)?;
        d.connect(d.port(clip, "out")?, d.port(gated, "in1")?)?;
        let one = d.add_symbol(SymbolKind::Constant { value: 1.0 });
        let inv_g = d.add_symbol(SymbolKind::Adder {
            signs: vec![true, false],
        });
        d.connect(d.port(one, "out")?, d.port(inv_g, "in0")?)?;
        d.connect(d.port(sgate, "out")?, d.port(inv_g, "in1")?)?;
        let off_mul = d.add_symbol(SymbolKind::Multiplier {
            ops: vec![true, true],
        });
        d.connect(d.port(inv_g, "out")?, d.port(off_mul, "in0")?)?;
        // Off-state source: latch memory or a fixed level parameter.
        let hold_delay = match self.off_state {
            OffState::Hold => {
                let delay = d.add_symbol(SymbolKind::UnitDelay);
                d.connect(d.port(delay, "out")?, d.port(off_mul, "in1")?)?;
                Some(delay)
            }
            OffState::Level(level) => {
                d.add_parameter("voff", level, Dimension::VOLTAGE);
                let voff = d.add_symbol(SymbolKind::Parameter {
                    param: "voff".into(),
                    dimension: Dimension::VOLTAGE,
                });
                d.connect(d.port(voff, "out")?, d.port(off_mul, "in1")?)?;
                None
            }
        };
        let target = d.add_symbol(SymbolKind::Adder {
            signs: vec![true, true],
        });
        d.connect(d.port(gated, "out")?, d.port(target, "in0")?)?;
        d.connect(d.port(off_mul, "out")?, d.port(target, "in1")?)?;

        // Slew-rate block (Fig. 5).
        let slew_sub = SlewRateSpec::new(self.slew_rise, self.slew_fall).diagram()?;
        let o_slew = d.merge(slew_sub.clone());
        let u = merged_port(&slew_sub, "u", o_slew)?;
        let y = merged_port(&slew_sub, "y", o_slew)?;
        d.connect(d.port(target, "out")?, u)?;
        if let Some(delay) = hold_delay {
            d.connect(y, d.port(delay, "in")?)?;
        }

        // Fully balanced outputs (Fig. 3 instances): out_p follows y,
        // out_m follows −y.
        let outp_sub = OutputStageSpec::new("outp", self.gout)
            .with_current_limit(self.ilim)
            .with_param_prefix("outp_")
            .diagram()?;
        let o_outp = d.merge(outp_sub.clone());
        d.connect(y, merged_port(&outp_sub, "vin", o_outp)?)?;

        let mirror = d.add_symbol_with(
            SymbolKind::Gain,
            &[("a", PropertyValue::Number(-1.0))],
            Some("balance"),
        );
        d.connect(y, d.port(mirror, "in")?)?;
        let outn_sub = OutputStageSpec::new("outn", self.gout)
            .with_current_limit(self.ilim)
            .with_param_prefix("outn_")
            .diagram()?;
        let o_outn = d.merge(outn_sub.clone());
        d.connect(
            d.port(mirror, "out")?,
            merged_port(&outn_sub, "vin", o_outn)?,
        )?;

        // Power supply (Fig. 4): the balance sheet covers *all* stage
        // currents — both output stages and the three input stages.
        let psu_sub = PowerSupplySpec::new("vdd", "vss", self.gpol, self.iloss, 5).diagram()?;
        let o_psu = d.merge(psu_sub.clone());
        let stage_currents = [
            merged_port(&outp_sub, "iout", o_outp)?,
            merged_port(&outn_sub, "iout", o_outn)?,
            merged_port(&inp_sub, "iin", o_inp)?,
            merged_port(&inn_sub, "iin", o_inn)?,
            merged_port(&stb_sub, "iin", o_stb)?,
        ];
        for (k, src) in stage_currents.into_iter().enumerate() {
            d.connect(src, merged_port(&psu_sub, &format!("istage{k}"), o_psu)?)?;
        }
        Ok(d)
    }

    /// Builds the definition card (§2.1 view).
    ///
    /// # Errors
    ///
    /// Card validation errors (none occur for valid specs).
    pub fn card(&self) -> Result<DefinitionCard, ModelError> {
        let mut b = DefinitionCard::builder("comparator")
            .describe("triggered comparator: differential input, strobe, balanced current-limited outputs, slew rate, full power supply")
            .pin("inp", PinDomain::Electrical, "non-inverting input")
            .pin("inn", PinDomain::Electrical, "inverting input")
            .pin("strobe", PinDomain::Electrical, "strobe (trigger) input")
            .pin("outp", PinDomain::Electrical, "non-inverted output")
            .pin("outn", PinDomain::Electrical, "inverted output")
            .pin("vdd", PinDomain::Electrical, "positive supply")
            .pin("vss", PinDomain::Electrical, "negative supply")
            .parameter("gain", self.gain, Dimension::NONE, "decision gain")
            .parameter("vhigh", self.v_high, Dimension::VOLTAGE, "high output rail")
            .parameter("vlow", self.v_low, Dimension::VOLTAGE, "low output rail")
            .parameter(
                "vstrobe",
                self.v_strobe,
                Dimension::VOLTAGE,
                "strobe threshold",
            )
            .parameter(
                "kgate",
                20.0,
                Dimension::NONE / Dimension::VOLTAGE,
                "strobe gate sharpness",
            )
            .characteristic("transfer function", CharacteristicClass::Primary, "sign(vp - vn) scaled to the rails")
            .characteristic("input impedance", CharacteristicClass::Primary, "Rin || Cin per input")
            .characteristic("output impedance", CharacteristicClass::Primary, "1/gout per output")
            .characteristic("current limitation", CharacteristicClass::SecondOrder, "|iout| <= ilim")
            .characteristic("slew rate", CharacteristicClass::SecondOrder, "output slope limited")
            .characteristic("supply current", CharacteristicClass::SecondOrder, "polarization + loss + balance");
        for (prefix, what) in [
            ("inp_", "non-inverting input"),
            ("inn_", "inverting input"),
            ("stb_", "strobe input"),
        ] {
            b = b
                .parameter(
                    &format!("{prefix}gin"),
                    1.0 / self.rin,
                    Dimension::CONDUCTANCE,
                    &format!("{what} conductance"),
                )
                .parameter(
                    &format!("{prefix}cin"),
                    self.cin,
                    Dimension::CAPACITANCE,
                    &format!("{what} capacitance"),
                );
        }
        for prefix in ["outp_", "outn_"] {
            b = b
                .parameter(
                    &format!("{prefix}gout"),
                    self.gout,
                    Dimension::CONDUCTANCE,
                    "output conductance",
                )
                .parameter(
                    &format!("{prefix}ilim"),
                    self.ilim,
                    Dimension::CURRENT,
                    "output current limit",
                );
        }
        b = b
            .parameter(
                "srise",
                self.slew_rise,
                Dimension::VOLTAGE_RATE,
                "max rise rate",
            )
            .parameter(
                "sfall",
                self.slew_fall,
                Dimension::VOLTAGE_RATE,
                "max fall rate",
            )
            .parameter(
                "gpol",
                self.gpol,
                Dimension::CONDUCTANCE,
                "polarization conductance",
            )
            .parameter("iloss", self.iloss, Dimension::CURRENT, "loss current");
        if let OffState::Level(level) = self.off_state {
            b = b.parameter("voff", level, Dimension::VOLTAGE, "un-strobed output level");
        }
        Ok(b.build()?)
    }

    /// Generates the FAS code of the model.
    ///
    /// # Errors
    ///
    /// Diagram or code-generation errors.
    pub fn fas_code(&self) -> Result<String, ModelError> {
        let d = self.diagram()?;
        Ok(generate(&d, Backend::Fas)?.text)
    }

    /// Runs the diagram through the code generator and FAS front end,
    /// yielding the compiled model (backend-independent).
    ///
    /// # Errors
    ///
    /// Diagram, code-generation or FAS compilation errors.
    pub fn model(&self) -> Result<CompiledModel, ModelError> {
        let code = self.fas_code()?;
        Ok(compile(&code)?)
    }

    /// Compiles and instantiates the model on the tree-walking
    /// interpreter.
    ///
    /// # Errors
    ///
    /// Any pipeline stage error.
    pub fn machine(&self) -> Result<FasMachine, ModelError> {
        Ok(self.model()?.instantiate(&BTreeMap::new())?)
    }

    /// Compiles and instantiates the model on a chosen execution
    /// backend — interpreter or bytecode VM.
    ///
    /// # Errors
    ///
    /// Any pipeline stage error, including bytecode capacity limits.
    pub fn instance(&self, backend: FasBackend) -> Result<Box<dyn BehavioralModel>, ModelError> {
        Ok(backend.instantiate(&self.model()?, &BTreeMap::new())?)
    }

    /// Pin order of the generated model (for `add_behavioral`).
    pub fn pin_order() -> [&'static str; 7] {
        ["inp", "inn", "strobe", "outp", "outn", "vdd", "vss"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gabm_core::check::check_diagram;
    use gabm_sim::analysis::tran::TranSpec;
    use gabm_sim::circuit::Circuit;
    use gabm_sim::devices::SourceWave;

    #[test]
    fn diagram_is_consistent() {
        let d = ComparatorSpec::default().diagram().unwrap();
        let r = check_diagram(&d);
        assert!(r.is_consistent(), "{:?}", r.diagnostics);
        assert!(d.symbol_count() > 40, "only {} symbols", d.symbol_count());
    }

    #[test]
    fn card_matches_diagram() {
        let spec = ComparatorSpec::default();
        let card = spec.card().unwrap();
        let diagram = spec.diagram().unwrap();
        assert!(card.matches_diagram(&diagram).is_ok());
        assert_eq!(card.pins().len(), 7);
    }

    #[test]
    fn fas_code_compiles() {
        let code = ComparatorSpec::default().fas_code().unwrap();
        assert!(code.contains("model comparator"));
        assert!(code.contains("volt.value(strobe)"));
        let model = compile(&code).unwrap();
        assert_eq!(model.pins().len(), 7);
    }

    #[test]
    fn level_off_state_variant() {
        let spec = ComparatorSpec {
            off_state: OffState::Level(2.0),
            ..ComparatorSpec::default()
        };
        let d = spec.diagram().unwrap();
        assert!(check_diagram(&d).is_consistent());
        let code = spec.fas_code().unwrap();
        assert!(code.contains("voff"));
        assert!(spec.card().unwrap().parameter("voff").is_ok());
    }

    /// Full electrical test: strobed comparison of a DC differential input.
    #[test]
    fn comparator_decides_when_strobed() {
        let spec = ComparatorSpec::default();
        let machine = spec.machine().unwrap();
        let mut ckt = Circuit::new();
        let inp = ckt.node("inp");
        let inn = ckt.node("inn");
        let strobe = ckt.node("strobe");
        let outp = ckt.node("outp");
        let outn = ckt.node("outn");
        let vdd = ckt.node("vdd");
        let vss = ckt.node("vss");
        ckt.add_behavioral(
            "XCMP",
            &[inp, inn, strobe, outp, outn, vdd, vss],
            Box::new(machine),
        )
        .unwrap();
        ckt.add_vsource("VDD", vdd, Circuit::GROUND, SourceWave::dc(2.5));
        ckt.add_vsource("VSS", vss, Circuit::GROUND, SourceWave::dc(-2.5));
        ckt.add_vsource("VP", inp, Circuit::GROUND, SourceWave::dc(0.3));
        ckt.add_vsource("VN", inn, Circuit::GROUND, SourceWave::dc(-0.3));
        // Strobe turns on at 5 µs.
        ckt.add_vsource(
            "VSTB",
            strobe,
            Circuit::GROUND,
            SourceWave::pulse(-1.0, 1.0, 5e-6, 1e-7, 1e-7, 40e-6, 0.0),
        );
        ckt.add_resistor("RLP", outp, Circuit::GROUND, 10e3)
            .unwrap();
        ckt.add_resistor("RLN", outn, Circuit::GROUND, 10e3)
            .unwrap();
        let result = ckt.tran(&TranSpec::new(20e-6)).unwrap();
        let wp = result.voltage_waveform(outp).unwrap();
        let wn = result.voltage_waveform(outn).unwrap();
        // Before the strobe, output holds its initial (0) state.
        assert!(wp.value_at(2e-6).unwrap().abs() < 0.2);
        // After the strobe, outp → vhigh, outn → vlow (inp > inn).
        let vp_end = *wp.values().last().unwrap();
        let vn_end = *wn.values().last().unwrap();
        assert!((vp_end - 2.0).abs() < 0.1, "outp = {vp_end}");
        assert!((vn_end + 2.0).abs() < 0.1, "outn = {vn_end}");
    }

    /// The supply pins must carry the balance of the output currents.
    #[test]
    fn supply_balance_holds() {
        let spec = ComparatorSpec::default();
        let machine = spec.machine().unwrap();
        let mut ckt = Circuit::new();
        let nodes: Vec<_> = ComparatorSpec::pin_order()
            .iter()
            .map(|p| ckt.node(p))
            .collect();
        ckt.add_behavioral("XCMP", &nodes, Box::new(machine))
            .unwrap();
        // Bias every pin with a source so currents are observable.
        let levels = [0.2, -0.2, 1.0, 0.0, 0.0, 2.5, -2.5];
        for (k, (pin, v)) in ComparatorSpec::pin_order().iter().zip(levels).enumerate() {
            ckt.add_vsource(
                &format!("V{k}_{pin}"),
                nodes[k],
                Circuit::GROUND,
                SourceWave::dc(v),
            );
        }
        let op = ckt.op().unwrap();
        let mut total = 0.0;
        for (k, pin) in ComparatorSpec::pin_order().iter().enumerate() {
            let i = op.current_through(&ckt, &format!("V{k}_{pin}")).unwrap();
            total += i;
        }
        // Σ of source currents = −Σ of currents into the model = 0.
        assert!(total.abs() < 1e-6, "current balance violated: {total}");
    }
}
