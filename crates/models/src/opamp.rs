//! A single-pole behavioural operational amplifier.
//!
//! Demonstrates the transfer-function GBS (§3.1b "time/frequency symbols
//! represent … transfer functions"): the open-loop gain is `A0/(1 + s/ωp)`,
//! followed by rail limiting and an output stage.

use crate::comparator::OffState;
use crate::ModelError;
use gabm_codegen::{generate, Backend};
use gabm_core::card::{CharacteristicClass, DefinitionCard, PinDomain};
use gabm_core::constructs::{InputStageSpec, OutputStageSpec};
use gabm_core::diagram::{FunctionalDiagram, PortRef, SymbolId};
use gabm_core::quantity::Dimension;
use gabm_core::symbol::{PropertyValue, SymbolKind};
use gabm_fas::{compile, FasMachine};
use std::collections::BTreeMap;

/// Parameterized single-pole opamp.
#[derive(Debug, Clone, PartialEq)]
pub struct OpampSpec {
    /// DC open-loop gain (V/V).
    pub a0: f64,
    /// Dominant pole frequency (Hz).
    pub pole_hz: f64,
    /// Output rails (V).
    pub v_high: f64,
    /// Low rail (V).
    pub v_low: f64,
    /// Input resistance per input (Ω).
    pub rin: f64,
    /// Input capacitance per input (F).
    pub cin: f64,
    /// Output conductance (S).
    pub gout: f64,
    /// Output current limit (A).
    pub ilim: f64,
}

impl Default for OpampSpec {
    fn default() -> Self {
        OpampSpec {
            a0: 1.0e5,
            pole_hz: 100.0,
            v_high: 2.2,
            v_low: -2.2,
            rin: 10.0e6,
            cin: 1.0e-12,
            gout: 1.0e-2,
            ilim: 25.0e-3,
        }
    }
}

fn merged_port(sub: &FunctionalDiagram, name: &str, offset: usize) -> Result<PortRef, ModelError> {
    let itf = sub.interface_port(name)?;
    Ok(PortRef {
        symbol: SymbolId(itf.inner.symbol.0 + offset),
        port: itf.inner.port,
    })
}

impl OpampSpec {
    /// Builds the functional diagram (pins: inp, inn, out).
    ///
    /// # Errors
    ///
    /// Diagram-construction errors (none occur for valid specs).
    pub fn diagram(&self) -> Result<FunctionalDiagram, ModelError> {
        let mut d = FunctionalDiagram::new("opamp");
        d.add_parameter("vhigh", self.v_high, Dimension::VOLTAGE);
        d.add_parameter("vlow", self.v_low, Dimension::VOLTAGE);

        let inp_sub = InputStageSpec::new("inp", 1.0 / self.rin, self.cin)
            .with_param_prefix("inp_")
            .diagram()?;
        let o_inp = d.merge(inp_sub.clone());
        let v_p = merged_port(&inp_sub, "v", o_inp)?;
        let inn_sub = InputStageSpec::new("inn", 1.0 / self.rin, self.cin)
            .with_param_prefix("inn_")
            .diagram()?;
        let o_inn = d.merge(inn_sub.clone());
        let v_n = merged_port(&inn_sub, "v", o_inn)?;

        let diff = d.add_symbol(SymbolKind::Adder {
            signs: vec![true, false],
        });
        d.connect(v_p, d.port(diff, "in0")?)?;
        d.connect(v_n, d.port(diff, "in1")?)?;

        // Single-pole open-loop gain A0/(1 + s·tau).
        let tau = 1.0 / (2.0 * std::f64::consts::PI * self.pole_hz);
        let pole = d.add_symbol(SymbolKind::TransferFunction {
            num: vec![self.a0],
            den: vec![1.0, tau],
        });
        d.connect(d.port(diff, "out")?, d.port(pole, "in")?)?;
        let clip = d.add_symbol_with(
            SymbolKind::Limiter,
            &[
                ("min", PropertyValue::Param("vlow".into())),
                ("max", PropertyValue::Param("vhigh".into())),
            ],
            Some("rails"),
        );
        d.connect(d.port(pole, "out")?, d.port(clip, "in")?)?;

        let out_sub = OutputStageSpec::new("out", self.gout)
            .with_current_limit(self.ilim)
            .with_param_prefix("out_")
            .diagram()?;
        let o_out = d.merge(out_sub.clone());
        d.connect(d.port(clip, "out")?, merged_port(&out_sub, "vin", o_out)?)?;
        Ok(d)
    }

    /// Builds the definition card.
    ///
    /// # Errors
    ///
    /// Card validation errors (none occur for valid specs).
    pub fn card(&self) -> Result<DefinitionCard, ModelError> {
        Ok(DefinitionCard::builder("opamp")
            .describe("single-pole behavioural operational amplifier")
            .pin("inp", PinDomain::Electrical, "non-inverting input")
            .pin("inn", PinDomain::Electrical, "inverting input")
            .pin("out", PinDomain::Electrical, "output")
            .parameter("vhigh", self.v_high, Dimension::VOLTAGE, "high rail")
            .parameter("vlow", self.v_low, Dimension::VOLTAGE, "low rail")
            .parameter(
                "inp_gin",
                1.0 / self.rin,
                Dimension::CONDUCTANCE,
                "inp conductance",
            )
            .parameter(
                "inp_cin",
                self.cin,
                Dimension::CAPACITANCE,
                "inp capacitance",
            )
            .parameter(
                "inn_gin",
                1.0 / self.rin,
                Dimension::CONDUCTANCE,
                "inn conductance",
            )
            .parameter(
                "inn_cin",
                self.cin,
                Dimension::CAPACITANCE,
                "inn capacitance",
            )
            .parameter(
                "out_gout",
                self.gout,
                Dimension::CONDUCTANCE,
                "output conductance",
            )
            .parameter(
                "out_ilim",
                self.ilim,
                Dimension::CURRENT,
                "output current limit",
            )
            .characteristic(
                "transfer function",
                CharacteristicClass::Primary,
                "A0 / (1 + s/wp)",
            )
            .characteristic(
                "input impedance",
                CharacteristicClass::Primary,
                "Rin || Cin",
            )
            .characteristic(
                "output impedance",
                CharacteristicClass::Primary,
                "1/gout with current limit",
            )
            .build()?)
    }

    /// Generates the FAS code.
    ///
    /// # Errors
    ///
    /// Diagram or generation errors.
    pub fn fas_code(&self) -> Result<String, ModelError> {
        Ok(generate(&self.diagram()?, Backend::Fas)?.text)
    }

    /// Compiles and instantiates the model.
    ///
    /// # Errors
    ///
    /// Any pipeline stage error.
    pub fn machine(&self) -> Result<FasMachine, ModelError> {
        let code = self.fas_code()?;
        Ok(compile(&code)?.instantiate(&BTreeMap::new())?)
    }

    /// Pin order of the generated model.
    pub fn pin_order() -> [&'static str; 3] {
        ["inp", "inn", "out"]
    }

    /// Convenience: `OffState` is re-exported via the comparator; keep the
    /// two models' APIs symmetrical for downstream users.
    pub fn off_state_hint() -> OffState {
        OffState::Hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gabm_core::check::check_diagram;
    use gabm_sim::analysis::tran::TranSpec;
    use gabm_sim::circuit::Circuit;
    use gabm_sim::devices::SourceWave;

    #[test]
    fn diagram_consistent_and_card_matches() {
        let spec = OpampSpec::default();
        let d = spec.diagram().unwrap();
        let r = check_diagram(&d);
        assert!(r.is_consistent(), "{:?}", r.diagnostics);
        assert!(spec.card().unwrap().matches_diagram(&d).is_ok());
    }

    #[test]
    fn fas_code_contains_first_order_lag() {
        let code = OpampSpec::default().fas_code().unwrap();
        assert!(code.contains("state.delay("), "{code}");
        assert!(code.contains("timestep /"));
        assert!(compile(&code).is_ok());
    }

    /// Unity-gain buffer: out follows inp thanks to feedback through the
    /// behavioural model.
    #[test]
    fn unity_follower_tracks_input() {
        let machine = OpampSpec::default().machine().unwrap();
        let mut ckt = Circuit::new();
        let inp = ckt.node("inp");
        let out = ckt.node("out");
        // Feedback: inn tied to out.
        ckt.add_behavioral("XOP", &[inp, out, out], Box::new(machine))
            .unwrap();
        ckt.add_vsource(
            "VIN",
            inp,
            Circuit::GROUND,
            SourceWave::pulse(0.0, 1.0, 1e-4, 1e-6, 1e-6, 1.0, 0.0),
        );
        ckt.add_resistor("RL", out, Circuit::GROUND, 10e3).unwrap();
        let result = ckt.tran(&TranSpec::new(20e-3)).unwrap();
        let w = result.voltage_waveform(out).unwrap();
        let v_end = *w.values().last().unwrap();
        assert!((v_end - 1.0).abs() < 0.01, "follower output {v_end}");
    }

    /// The dominant pole limits closed-loop bandwidth: the buffered step
    /// settles with a finite time constant ≈ 1/(2π·GBW) … just assert the
    /// output is slower than the input edge but settles.
    #[test]
    fn pole_gives_finite_settling() {
        // Low gain-bandwidth: a0 = 10, pole 1 kHz ⇒ GBW 10 kHz, so the
        // follower settles with τ ≈ 1/(2π·10 kHz) ≈ 16 µs and its final
        // value is the classic a0/(1 + a0).
        let a0 = 10.0;
        let machine = OpampSpec {
            a0,
            pole_hz: 1000.0,
            ..OpampSpec::default()
        }
        .machine()
        .unwrap();
        let mut ckt = Circuit::new();
        let inp = ckt.node("inp");
        let out = ckt.node("out");
        ckt.add_behavioral("XOP", &[inp, out, out], Box::new(machine))
            .unwrap();
        ckt.add_vsource(
            "VIN",
            inp,
            Circuit::GROUND,
            SourceWave::pulse(0.0, 1.0, 1e-5, 1e-7, 1e-7, 1.0, 0.0),
        );
        ckt.add_resistor("RL", out, Circuit::GROUND, 10e3).unwrap();
        let result = ckt.tran(&TranSpec::new(1e-3)).unwrap();
        let w = result.voltage_waveform(out).unwrap();
        // Mid-transient (one closed-loop tau after the step) the output is
        // still rising; at the end it settles at a0/(1+a0).
        let v_early = w.value_at(2.5e-5).unwrap();
        let v_end = *w.values().last().unwrap();
        let expect = a0 / (1.0 + a0);
        assert!(v_early < 0.8 * expect, "output too fast: {v_early}");
        assert!((v_end - expect).abs() < 0.02, "v_end = {v_end} vs {expect}");
    }
}
