//! Adapters exposing the library models to the characterization tool.

use crate::cmos::CmosComparator;
use crate::ModelError;
use gabm_charac::{Dut, FnDut};
use gabm_fas::CompiledModel;
use gabm_fasvm::FasBackend;
use gabm_sim::circuit::{Circuit, NodeId};
use gabm_sim::SimError;
use std::collections::BTreeMap;

/// Wraps a compiled FAS model (plus parameter overrides) as a [`Dut`]
/// on the interpreter backend: every rig circuit gets a fresh machine
/// instance.
pub fn fas_dut(
    model: CompiledModel,
    overrides: BTreeMap<String, f64>,
) -> Result<impl Dut, ModelError> {
    fas_dut_with(model, overrides, FasBackend::Interp)
}

/// Wraps a compiled FAS model as a [`Dut`] on a chosen execution
/// backend — interpreter or bytecode VM. Every rig circuit gets a
/// fresh instance.
pub fn fas_dut_with(
    model: CompiledModel,
    overrides: BTreeMap<String, f64>,
    backend: FasBackend,
) -> Result<impl Dut, ModelError> {
    // Validate overrides (and, for the VM, bytecode capacity) up front.
    backend.instantiate(&model, &overrides)?;
    let pins: Vec<String> = model.pins().iter().map(|p| p.to_string()).collect();
    let pin_refs: Vec<&str> = pins.iter().map(String::as_str).collect();
    let build = move |ckt: &mut Circuit, name: &str, nodes: &[NodeId]| -> Result<(), SimError> {
        let instance = backend
            .instantiate(&model, &overrides)
            .expect("backend validated at construction");
        ckt.add_behavioral(name, nodes, instance)
    };
    Ok(FnDut::new(&pin_refs, build))
}

/// Wraps the transistor-level comparator as a [`Dut`].
pub fn cmos_comparator_dut(comparator: CmosComparator) -> impl Dut {
    FnDut::new(
        &CmosComparator::pin_order(),
        move |ckt: &mut Circuit, name: &str, nodes: &[NodeId]| {
            comparator
                .instantiate(ckt, name, nodes)
                .map_err(|e| match e {
                    ModelError::Sim(s) => s,
                    other => SimError::BadAnalysis(other.to_string()),
                })
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gabm_charac::rigs;
    use gabm_charac::Bias;
    use gabm_fas::compile;

    #[test]
    fn fas_dut_round_trip() {
        let model = compile(
            "model load pin (a) param (g=1e-3)\nanalog\nmake v = volt.value(a)\nmake curr.on(a) = g * v\nendanalog\nendmodel\n",
        )
        .unwrap();
        let dut = fas_dut(model, BTreeMap::new()).unwrap();
        assert_eq!(dut.pin_names(), vec!["a"]);
        let rin = rigs::input_resistance(&dut, "a", &[]).unwrap();
        assert!((rin.value - 1000.0).abs() < 1.0, "rin = {}", rin.value);
    }

    #[test]
    fn fas_dut_vm_backend_matches_interp() {
        let model = compile(
            "model load pin (a) param (g=1e-3)\nanalog\nmake v = volt.value(a)\nmake curr.on(a) = g * v\nendanalog\nendmodel\n",
        )
        .unwrap();
        let interp = fas_dut_with(model.clone(), BTreeMap::new(), FasBackend::Interp).unwrap();
        let vm = fas_dut_with(model, BTreeMap::new(), FasBackend::Vm).unwrap();
        let ri = rigs::input_resistance(&interp, "a", &[]).unwrap();
        let rv = rigs::input_resistance(&vm, "a", &[]).unwrap();
        assert!(
            (ri.value - rv.value).abs() < 1e-9,
            "backends measure the same Rin: interp {} vm {}",
            ri.value,
            rv.value
        );
    }

    #[test]
    fn fas_dut_with_overrides() {
        let model = compile(
            "model load pin (a) param (g=1e-3)\nanalog\nmake v = volt.value(a)\nmake curr.on(a) = g * v\nendanalog\nendmodel\n",
        )
        .unwrap();
        let mut overrides = BTreeMap::new();
        overrides.insert("g".to_string(), 2e-3);
        let dut = fas_dut(model.clone(), overrides).unwrap();
        let rin = rigs::input_resistance(&dut, "a", &[]).unwrap();
        assert!((rin.value - 500.0).abs() < 1.0);
        // Bad override rejected eagerly.
        let mut bad = BTreeMap::new();
        bad.insert("zz".to_string(), 1.0);
        assert!(fas_dut(model, bad).is_err());
    }

    #[test]
    fn cmos_dut_measures_transfer() {
        let dut = cmos_comparator_dut(CmosComparator::new());
        let xs = rigs::dc_transfer(
            &dut,
            "inp",
            "out",
            &[
                ("inn", Bias::Ground),
                ("strobe", Bias::Voltage(2.5)),
                ("vdd", Bias::Voltage(2.5)),
                ("vss", Bias::Voltage(-2.5)),
            ],
            -0.5,
            0.5,
            0.05,
        )
        .unwrap();
        let hi = xs.iter().find(|x| x.name == "out_high").unwrap().value;
        let lo = xs.iter().find(|x| x.name == "out_low").unwrap().value;
        assert!(hi > 1.5, "out_high = {hi}");
        assert!(lo < -1.5, "out_low = {lo}");
        let gain = xs.iter().find(|x| x.name == "gain").unwrap().value;
        assert!(gain > 10.0, "gain = {gain}");
    }
}
