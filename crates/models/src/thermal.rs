//! An electro-thermal NTC thermistor — the "sensors" half of the paper's
//! §2 microsystem claim, using the thermal domain (temperature as the
//! across quantity, heat flow as the through quantity).
//!
//! The model couples two physical domains in one behavioural description:
//!
//! ```text
//! R(T) = r25 · exp(beta · (1/T − 1/T25))        (NTC law)
//! i    = (v_a − v_b) / R(T)                     (electrical port)
//! P    = (v_a − v_b) · i                        (self-heating, delivered
//!                                                to the thermal node)
//! ```
//!
//! In a circuit, the thermal node carries a thermal network: heat
//! capacitance = capacitor (J/K → F), thermal resistance to ambient =
//! resistor (K/W → Ω), ambient temperature = voltage source (K → V).

use crate::ModelError;
use gabm_codegen::{generate, Backend};
use gabm_core::card::{CharacteristicClass, DefinitionCard, PinDomain};
use gabm_core::diagram::FunctionalDiagram;
use gabm_core::quantity::Dimension;
use gabm_core::symbol::{FuncKind, PropertyValue, SymbolKind};
use gabm_fas::{compile, FasMachine};
use std::collections::BTreeMap;

/// Parameterized NTC thermistor.
#[derive(Debug, Clone, PartialEq)]
pub struct NtcThermistorSpec {
    /// Resistance at 25 °C (Ω).
    pub r25: f64,
    /// Beta constant (K).
    pub beta: f64,
}

impl Default for NtcThermistorSpec {
    fn default() -> Self {
        NtcThermistorSpec {
            r25: 10.0e3,
            beta: 3435.0,
        }
    }
}

/// 25 °C in kelvin.
const T25: f64 = 298.15;

impl NtcThermistorSpec {
    /// Resistance at absolute temperature `t` (analytic reference).
    pub fn resistance_at(&self, t: f64) -> f64 {
        self.r25 * (self.beta * (1.0 / t - 1.0 / T25)).exp()
    }

    /// Builds the functional diagram (pins: `a`, `b` electrical, `th`
    /// thermal).
    ///
    /// # Errors
    ///
    /// Diagram-construction errors (none occur for valid specs).
    pub fn diagram(&self) -> Result<FunctionalDiagram, ModelError> {
        let mut d = FunctionalDiagram::new("ntc_thermistor");
        d.add_parameter("r25", self.r25, Dimension::RESISTANCE);
        d.add_parameter("beta", self.beta, Dimension::TEMPERATURE);
        d.add_parameter(
            "inv_t25",
            1.0 / T25,
            Dimension::NONE / Dimension::TEMPERATURE,
        );

        // Electrical port.
        let pa = d.add_symbol(SymbolKind::Pin { name: "a".into() });
        let probe_a = d.add_symbol(SymbolKind::Probe {
            quantity: Dimension::VOLTAGE,
        });
        let gen_a = d.add_symbol(SymbolKind::Generator {
            quantity: Dimension::CURRENT,
        });
        let pb = d.add_symbol(SymbolKind::Pin { name: "b".into() });
        let probe_b = d.add_symbol(SymbolKind::Probe {
            quantity: Dimension::VOLTAGE,
        });
        let gen_b = d.add_symbol(SymbolKind::Generator {
            quantity: Dimension::CURRENT,
        });
        d.connect(d.port(pa, "pin")?, d.port(probe_a, "pin")?)?;
        d.connect(d.port(pa, "pin")?, d.port(gen_a, "pin")?)?;
        d.connect(d.port(pb, "pin")?, d.port(probe_b, "pin")?)?;
        d.connect(d.port(pb, "pin")?, d.port(gen_b, "pin")?)?;

        // Thermal port: temperature probe + heat-flow generator — the
        // "new conversion symbols" for a thermal pin.
        let pth = d.add_symbol(SymbolKind::Pin { name: "th".into() });
        let probe_t = d.add_symbol(SymbolKind::Probe {
            quantity: Dimension::TEMPERATURE,
        });
        let gen_q = d.add_symbol(SymbolKind::Generator {
            quantity: Dimension::POWER,
        });
        d.connect(d.port(pth, "pin")?, d.port(probe_t, "pin")?)?;
        d.connect(d.port(pth, "pin")?, d.port(gen_q, "pin")?)?;

        // R(T) = r25 · exp(beta · (1/T − 1/T25)).
        let inv_t = d.add_symbol(SymbolKind::Multiplier { ops: vec![false] });
        d.connect(d.port(probe_t, "out")?, d.port(inv_t, "in0")?)?;
        let inv_t25 = d.add_symbol(SymbolKind::Parameter {
            param: "inv_t25".into(),
            dimension: Dimension::NONE / Dimension::TEMPERATURE,
        });
        let d_inv = d.add_symbol(SymbolKind::Adder {
            signs: vec![true, false],
        });
        d.connect(d.port(inv_t, "out")?, d.port(d_inv, "in0")?)?;
        d.connect(d.port(inv_t25, "out")?, d.port(d_inv, "in1")?)?;
        let beta = d.add_symbol(SymbolKind::Parameter {
            param: "beta".into(),
            dimension: Dimension::TEMPERATURE,
        });
        let exponent = d.add_symbol(SymbolKind::Multiplier {
            ops: vec![true, true],
        });
        d.connect(d.port(beta, "out")?, d.port(exponent, "in0")?)?;
        d.connect(d.port(d_inv, "out")?, d.port(exponent, "in1")?)?;
        let exp = d.add_symbol(SymbolKind::Function {
            func: FuncKind::Exp,
        });
        d.connect(d.port(exponent, "out")?, d.port(exp, "in0")?)?;
        let r25 = d.add_symbol(SymbolKind::Parameter {
            param: "r25".into(),
            dimension: Dimension::RESISTANCE,
        });
        let r_of_t = d.add_symbol(SymbolKind::Multiplier {
            ops: vec![true, true],
        });
        d.connect(d.port(r25, "out")?, d.port(r_of_t, "in0")?)?;
        d.connect(d.port(exp, "out")?, d.port(r_of_t, "in1")?)?;

        // i = (va − vb)/R.
        let vd = d.add_symbol(SymbolKind::Adder {
            signs: vec![true, false],
        });
        d.connect(d.port(probe_a, "out")?, d.port(vd, "in0")?)?;
        d.connect(d.port(probe_b, "out")?, d.port(vd, "in1")?)?;
        let i = d.add_symbol(SymbolKind::Multiplier {
            ops: vec![true, false],
        });
        d.connect(d.port(vd, "out")?, d.port(i, "in0")?)?;
        d.connect(d.port(r_of_t, "out")?, d.port(i, "in1")?)?;
        d.connect(d.port(i, "out")?, d.port(gen_a, "in")?)?;
        let neg_i = d.add_symbol_with(
            SymbolKind::Gain,
            &[("a", PropertyValue::Number(-1.0))],
            None,
        );
        d.connect(d.port(i, "out")?, d.port(neg_i, "in")?)?;
        d.connect(d.port(neg_i, "out")?, d.port(gen_b, "in")?)?;

        // Self-heating P = vd·i, delivered to the thermal node (receptor
        // convention: the model absorbs −P).
        let power = d.add_symbol(SymbolKind::Multiplier {
            ops: vec![true, true],
        });
        d.connect(d.port(vd, "out")?, d.port(power, "in0")?)?;
        d.connect(d.port(i, "out")?, d.port(power, "in1")?)?;
        let neg_p = d.add_symbol_with(
            SymbolKind::Gain,
            &[("a", PropertyValue::Number(-1.0))],
            Some("heat delivered"),
        );
        d.connect(d.port(power, "out")?, d.port(neg_p, "in")?)?;
        d.connect(d.port(neg_p, "out")?, d.port(gen_q, "in")?)?;
        Ok(d)
    }

    /// Builds the definition card.
    ///
    /// # Errors
    ///
    /// Card validation errors (none occur for valid specs).
    pub fn card(&self) -> Result<DefinitionCard, ModelError> {
        Ok(DefinitionCard::builder("ntc_thermistor")
            .describe("NTC thermistor with self-heating: electrical + thermal ports")
            .pin("a", PinDomain::Electrical, "electrical terminal")
            .pin("b", PinDomain::Electrical, "electrical terminal")
            .pin("th", PinDomain::Thermal, "thermal node (case temperature)")
            .parameter(
                "r25",
                self.r25,
                Dimension::RESISTANCE,
                "resistance at 25 degC",
            )
            .parameter("beta", self.beta, Dimension::TEMPERATURE, "beta constant")
            .parameter(
                "inv_t25",
                1.0 / T25,
                Dimension::NONE / Dimension::TEMPERATURE,
                "1 / 298.15 K",
            )
            .characteristic(
                "resistance law",
                CharacteristicClass::Primary,
                "R(T) = r25 exp(beta (1/T - 1/T25))",
            )
            .characteristic(
                "self-heating",
                CharacteristicClass::SecondOrder,
                "P = v*i into the thermal node",
            )
            .build()?)
    }

    /// Generates the FAS code.
    ///
    /// # Errors
    ///
    /// Diagram or generation errors.
    pub fn fas_code(&self) -> Result<String, ModelError> {
        Ok(generate(&self.diagram()?, Backend::Fas)?.text)
    }

    /// Compiles and instantiates the model.
    ///
    /// # Errors
    ///
    /// Any pipeline stage error.
    pub fn machine(&self) -> Result<FasMachine, ModelError> {
        Ok(compile(&self.fas_code()?)?.instantiate(&BTreeMap::new())?)
    }

    /// Pin order of the generated model.
    pub fn pin_order() -> [&'static str; 3] {
        ["a", "b", "th"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gabm_core::check::check_diagram;
    use gabm_sim::circuit::Circuit;
    use gabm_sim::devices::SourceWave;

    #[test]
    fn diagram_consistent_across_domains() {
        let d = NtcThermistorSpec::default().diagram().unwrap();
        let r = check_diagram(&d);
        assert!(r.is_consistent(), "{:?}", r.diagnostics);
    }

    #[test]
    fn fas_uses_thermal_accesses() {
        let code = NtcThermistorSpec::default().fas_code().unwrap();
        assert!(code.contains("temp.value(th)"), "{code}");
        assert!(code.contains("heat.on(th)"), "{code}");
        assert!(compile(&code).is_ok());
    }

    #[test]
    fn analytic_law() {
        let spec = NtcThermistorSpec::default();
        assert!((spec.resistance_at(T25) - 10.0e3).abs() < 1e-9);
        // Hotter ⇒ lower resistance.
        assert!(spec.resistance_at(350.0) < 5.0e3);
        assert!(spec.resistance_at(273.15) > 20.0e3);
    }

    /// At a forced case temperature (stiff thermal source) the measured
    /// resistance must follow the analytic NTC law.
    #[test]
    fn resistance_tracks_forced_temperature() {
        let spec = NtcThermistorSpec::default();
        for t_case in [273.15, 298.15, 330.0] {
            let machine = spec.machine().unwrap();
            let mut ckt = Circuit::new();
            let a = ckt.node("a");
            let b = ckt.node("b");
            let th = ckt.node("th");
            ckt.add_behavioral("XTH", &[a, b, th], Box::new(machine))
                .unwrap();
            ckt.add_vsource("VE", a, Circuit::GROUND, SourceWave::dc(0.1));
            ckt.add_resistor("RB", b, Circuit::GROUND, 1e-3).unwrap();
            // Force the thermal node (temperature = nodal value).
            ckt.add_vsource("VT", th, Circuit::GROUND, SourceWave::dc(t_case));
            let op = ckt.op().unwrap();
            let i = -op.current_through(&ckt, "VE").unwrap();
            let r_measured = 0.1 / i;
            let r_expected = spec.resistance_at(t_case);
            assert!(
                (r_measured - r_expected).abs() / r_expected < 1e-3,
                "T={t_case}: {r_measured} vs {r_expected}"
            );
        }
    }

    /// Self-heating equilibrium: sensor driven hard behind a thermal
    /// resistance to ambient heats up until P = (T − T_amb)/R_th.
    #[test]
    fn self_heating_reaches_thermal_equilibrium() {
        let spec = NtcThermistorSpec::default();
        let machine = spec.machine().unwrap();
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let th = ckt.node("th");
        let amb = ckt.node("amb");
        ckt.add_behavioral("XTH", &[a, Circuit::GROUND, th], Box::new(machine))
            .unwrap();
        ckt.add_vsource("VE", a, Circuit::GROUND, SourceWave::dc(10.0));
        // Thermal network: R_th = 100 K/W to a 298.15 K ambient.
        let r_th = 100.0;
        ckt.add_vsource("VAMB", amb, Circuit::GROUND, SourceWave::dc(T25));
        ckt.add_resistor("RTH", amb, th, r_th).unwrap();
        let op = ckt.op().unwrap();
        let t = op.voltage(th);
        assert!(t > T25 + 0.2, "no self-heating: T = {t}");
        // Equilibrium balance: P = (T − T_amb)/R_th with P = V²/R(T).
        let p_electrical = 10.0 * 10.0 / spec.resistance_at(t);
        let p_thermal = (t - T25) / r_th;
        assert!(
            (p_electrical - p_thermal).abs() / p_thermal < 1e-2,
            "P_el = {p_electrical}, P_th = {p_thermal}"
        );
    }
}
