//! Model library: the paper's evaluation vehicles plus extension models.
//!
//! * [`comparator`] — the triggered comparator of Fig. 6, assembled from
//!   the §3.3 constructs (differential input stage, fully balanced
//!   current-limited output stage, complete power supply, strobe input,
//!   slew rate) and executed through generated FAS code;
//! * [`cmos`] — the transistor-level (11 MOS, level-1) CMOS comparator used
//!   as the paper's SPICE baseline in §5, plus its process parameters;
//! * [`opamp`] — a single-pole behavioural operational amplifier
//!   demonstrating the transfer-function GBS;
//! * [`motor`] — a DC-motor model with torque/angular-velocity probes and
//!   generators (§2: "this method can be used to develop models of
//!   non-electrical systems … microsystem integration becomes possible");
//! * [`dut`] — glue adapting compiled FAS machines and subcircuits to the
//!   characterization tool's `Dut` interface.

pub mod cmos;
pub mod comparator;
pub mod dut;
pub mod motor;
pub mod opamp;
pub mod thermal;

pub use cmos::CmosComparator;
pub use comparator::ComparatorSpec;
pub use motor::DcMotorSpec;
pub use opamp::OpampSpec;
pub use thermal::NtcThermistorSpec;

use std::fmt;

/// Errors of the model library.
#[derive(Debug)]
pub enum ModelError {
    /// Diagram construction failed.
    Core(gabm_core::CoreError),
    /// Code generation failed.
    Codegen(gabm_codegen::CodegenError),
    /// FAS compilation failed (indicates a codegen/language mismatch).
    Fas(gabm_fas::FasError),
    /// Netlist construction failed.
    Sim(gabm_sim::SimError),
    /// FAS execution-backend instantiation failed.
    Backend(gabm_fasvm::backend::BackendError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Core(e) => write!(f, "diagram error: {e}"),
            ModelError::Codegen(e) => write!(f, "code generation error: {e}"),
            ModelError::Fas(e) => write!(f, "FAS error: {e}"),
            ModelError::Sim(e) => write!(f, "netlist error: {e}"),
            ModelError::Backend(e) => write!(f, "FAS backend error: {e}"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<gabm_core::CoreError> for ModelError {
    fn from(e: gabm_core::CoreError) -> Self {
        ModelError::Core(e)
    }
}

impl From<gabm_codegen::CodegenError> for ModelError {
    fn from(e: gabm_codegen::CodegenError) -> Self {
        ModelError::Codegen(e)
    }
}

impl From<gabm_fas::FasError> for ModelError {
    fn from(e: gabm_fas::FasError) -> Self {
        ModelError::Fas(e)
    }
}

impl From<gabm_sim::SimError> for ModelError {
    fn from(e: gabm_sim::SimError) -> Self {
        ModelError::Sim(e)
    }
}

impl From<gabm_fasvm::backend::BackendError> for ModelError {
    fn from(e: gabm_fasvm::backend::BackendError) -> Self {
        ModelError::Backend(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = ModelError::Core(gabm_core::CoreError::NotFound("x".into()));
        assert!(e.to_string().contains("diagram error"));
    }
}
