//! Transistor-level CMOS comparator (the paper's SPICE baseline: "a CMOS
//! comparator described at SPICE level is simulated and the results are
//! compared … to simulate the circuit (11 MOS)").
//!
//! Topology (classic two-stage strobed comparator, 11 transistors):
//!
//! * M1/M2 — NMOS differential pair;
//! * M3/M4 — PMOS current-mirror load;
//! * M5 — NMOS tail current source, M10 — NMOS strobe switch in series;
//! * M6 — PMOS common-source second stage, M7 — NMOS current sink;
//! * M8/M9 — CMOS output inverter;
//! * M11 — diode-connected NMOS bias generator (with RBIAS from VDD).

use crate::ModelError;
use gabm_sim::circuit::{Circuit, NodeId};
use gabm_sim::devices::{MosType, MosfetParams};

/// A representative 1 µm-era CMOS process for the level-1 models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CmosProcess {
    /// NMOS threshold (V).
    pub vtn: f64,
    /// PMOS threshold (V, negative).
    pub vtp: f64,
    /// NMOS transconductance parameter (A/V²).
    pub kpn: f64,
    /// PMOS transconductance parameter (A/V²).
    pub kpp: f64,
    /// Channel-length modulation (1/V).
    pub lambda: f64,
    /// Gate capacitance per device (F) — lumped constant.
    pub cg: f64,
}

impl Default for CmosProcess {
    fn default() -> Self {
        CmosProcess {
            vtn: 0.8,
            vtp: -0.8,
            kpn: 60e-6,
            kpp: 25e-6,
            lambda: 0.03,
            cg: 20e-15,
        }
    }
}

impl CmosProcess {
    fn nmos(&self, w_over_l: f64) -> MosfetParams {
        MosfetParams {
            vto: self.vtn,
            kp: self.kpn,
            lambda: self.lambda,
            gamma: 0.0,
            phi: 0.65,
            w: w_over_l * 1e-6,
            l: 1e-6,
            cgs: self.cg,
            cgd: self.cg / 2.0,
            cgb: 0.0,
        }
    }

    fn pmos(&self, w_over_l: f64) -> MosfetParams {
        MosfetParams {
            vto: self.vtp,
            kp: self.kpp,
            lambda: self.lambda,
            gamma: 0.0,
            phi: 0.65,
            w: w_over_l * 1e-6,
            l: 1e-6,
            cgs: self.cg,
            cgd: self.cg / 2.0,
            cgb: 0.0,
        }
    }
}

/// The 11-transistor CMOS comparator as an instantiable subcircuit.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CmosComparator {
    /// Process parameters.
    pub process: CmosProcess,
}

impl CmosComparator {
    /// Creates the comparator with the default process.
    pub fn new() -> Self {
        CmosComparator::default()
    }

    /// Pin order expected by [`CmosComparator::instantiate`].
    pub fn pin_order() -> [&'static str; 6] {
        ["inp", "inn", "strobe", "out", "vdd", "vss"]
    }

    /// Adds one comparator instance to `ckt`, connected to
    /// `(inp, inn, strobe, out, vdd, vss)`.
    ///
    /// # Errors
    ///
    /// Netlist-construction errors.
    pub fn instantiate(
        &self,
        ckt: &mut Circuit,
        name: &str,
        nodes: &[NodeId],
    ) -> Result<(), ModelError> {
        let [inp, inn, strobe, out, vdd, vss] = nodes else {
            return Err(ModelError::Sim(gabm_sim::SimError::BadParameter {
                device: name.to_string(),
                message: format!("comparator needs 6 nodes, got {}", nodes.len()),
            }));
        };
        let (inp, inn, strobe, out, vdd, vss) = (*inp, *inn, *strobe, *out, *vdd, *vss);
        let p = &self.process;
        let n = |suffix: &str, c: &mut Circuit| c.node(&format!("{name}_{suffix}"));

        let d1 = n("d1", ckt);
        let d2 = n("d2", ckt);
        let tail = n("tail", ckt);
        let tail_sw = n("tailsw", ckt);
        let vbias = n("vbias", ckt);
        let outi = n("outi", ckt);

        // Bias generator: RBIAS from VDD into diode-connected M11.
        ckt.add_resistor(&format!("{name}_RBIAS"), vdd, vbias, 100e3)?;
        ckt.add_mosfet(
            &format!("{name}_M11"),
            MosType::Nmos,
            vbias,
            vbias,
            vss,
            vss,
            p.nmos(2.0),
        )?;
        // Tail source + strobe switch.
        ckt.add_mosfet(
            &format!("{name}_M5"),
            MosType::Nmos,
            tail_sw,
            vbias,
            vss,
            vss,
            p.nmos(8.0),
        )?;
        ckt.add_mosfet(
            &format!("{name}_M10"),
            MosType::Nmos,
            tail,
            strobe,
            tail_sw,
            vss,
            p.nmos(16.0),
        )?;
        // Differential pair.
        ckt.add_mosfet(
            &format!("{name}_M1"),
            MosType::Nmos,
            d1,
            inp,
            tail,
            vss,
            p.nmos(10.0),
        )?;
        ckt.add_mosfet(
            &format!("{name}_M2"),
            MosType::Nmos,
            d2,
            inn,
            tail,
            vss,
            p.nmos(10.0),
        )?;
        // Mirror load.
        ckt.add_mosfet(
            &format!("{name}_M3"),
            MosType::Pmos,
            d1,
            d1,
            vdd,
            vdd,
            p.pmos(20.0),
        )?;
        ckt.add_mosfet(
            &format!("{name}_M4"),
            MosType::Pmos,
            d2,
            d1,
            vdd,
            vdd,
            p.pmos(20.0),
        )?;
        // Second stage.
        ckt.add_mosfet(
            &format!("{name}_M6"),
            MosType::Pmos,
            outi,
            d2,
            vdd,
            vdd,
            p.pmos(40.0),
        )?;
        ckt.add_mosfet(
            &format!("{name}_M7"),
            MosType::Nmos,
            outi,
            vbias,
            vss,
            vss,
            p.nmos(16.0),
        )?;
        // Output inverter.
        ckt.add_mosfet(
            &format!("{name}_M8"),
            MosType::Pmos,
            out,
            outi,
            vdd,
            vdd,
            p.pmos(40.0),
        )?;
        ckt.add_mosfet(
            &format!("{name}_M9"),
            MosType::Nmos,
            out,
            outi,
            vss,
            vss,
            p.nmos(20.0),
        )?;
        // Parasitic-ish load keeping internal nodes well defined.
        ckt.add_capacitor(&format!("{name}_CI"), outi, vss, 50e-15);
        ckt.add_capacitor(&format!("{name}_CO"), out, vss, 100e-15);
        Ok(())
    }

    /// Number of MOS transistors in the circuit (the paper's "11 MOS").
    pub fn transistor_count(&self) -> usize {
        11
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gabm_sim::analysis::tran::TranSpec;
    use gabm_sim::devices::SourceWave;

    fn bench(vp: f64, vn: f64, strobe_on: bool) -> (Circuit, NodeId) {
        let mut ckt = Circuit::new();
        let nodes: Vec<NodeId> = CmosComparator::pin_order()
            .iter()
            .map(|p| ckt.node(p))
            .collect();
        CmosComparator::new()
            .instantiate(&mut ckt, "X1", &nodes)
            .unwrap();
        ckt.add_vsource("VDD", nodes[4], Circuit::GROUND, SourceWave::dc(2.5));
        ckt.add_vsource("VSS", nodes[5], Circuit::GROUND, SourceWave::dc(-2.5));
        ckt.add_vsource("VP", nodes[0], Circuit::GROUND, SourceWave::dc(vp));
        ckt.add_vsource("VN", nodes[1], Circuit::GROUND, SourceWave::dc(vn));
        ckt.add_vsource(
            "VSTB",
            nodes[2],
            Circuit::GROUND,
            SourceWave::dc(if strobe_on { 2.5 } else { -2.5 }),
        );
        (ckt, nodes[3])
    }

    #[test]
    fn decides_positive_input() {
        let (mut ckt, out) = bench(0.3, -0.3, true);
        let op = ckt.op().unwrap();
        // inp > inn ⇒ d2 pulled high ⇒ M6 weakly on ⇒ outi low ⇒ out high.
        let v = op.voltage(out);
        assert!(v > 1.5, "out = {v}");
    }

    #[test]
    fn decides_negative_input() {
        let (mut ckt, out) = bench(-0.3, 0.3, true);
        let op = ckt.op().unwrap();
        let v = op.voltage(out);
        assert!(v < -1.5, "out = {v}");
    }

    #[test]
    fn strobe_off_forces_high() {
        // Tail cut: d2 floats high through the mirror, M6 off, M7 pulls
        // outi low, inverter drives out high.
        let (mut ckt, out) = bench(-0.3, 0.3, false);
        let op = ckt.op().unwrap();
        let v = op.voltage(out);
        assert!(v > 1.5, "out = {v}");
    }

    #[test]
    fn transient_tracks_input_reversal() {
        let mut ckt = Circuit::new();
        let nodes: Vec<NodeId> = CmosComparator::pin_order()
            .iter()
            .map(|p| ckt.node(p))
            .collect();
        CmosComparator::new()
            .instantiate(&mut ckt, "X1", &nodes)
            .unwrap();
        ckt.add_vsource("VDD", nodes[4], Circuit::GROUND, SourceWave::dc(2.5));
        ckt.add_vsource("VSS", nodes[5], Circuit::GROUND, SourceWave::dc(-2.5));
        // Differential input flips polarity at 10 µs.
        ckt.add_vsource(
            "VP",
            nodes[0],
            Circuit::GROUND,
            SourceWave::Pwl(vec![(0.0, 0.3), (9e-6, 0.3), (11e-6, -0.3), (20e-6, -0.3)]),
        );
        ckt.add_vsource("VN", nodes[1], Circuit::GROUND, SourceWave::dc(0.0));
        ckt.add_vsource("VSTB", nodes[2], Circuit::GROUND, SourceWave::dc(2.5));
        let result = ckt.tran(&TranSpec::new(20e-6)).unwrap();
        let w = result.voltage_waveform(nodes[3]).unwrap();
        assert!(w.value_at(5e-6).unwrap() > 1.5);
        assert!(w.value_at(18e-6).unwrap() < -1.5);
    }

    #[test]
    fn transistor_count_is_eleven() {
        assert_eq!(CmosComparator::new().transistor_count(), 11);
        // And the netlist really contains 11 MOSFETs.
        let (ckt, _) = bench(0.0, 0.0, true);
        let mos = ckt
            .devices()
            .iter()
            .filter(|d| d.name().contains("_M"))
            .count();
        assert_eq!(mos, 11);
    }

    #[test]
    fn wrong_node_count_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        assert!(CmosComparator::new()
            .instantiate(&mut ckt, "X", &[a])
            .is_err());
    }
}
