//! A small work-stealing thread pool built on `std::thread` only.
//!
//! The characterization workload of the paper's §2.4 — "perform many
//! analogue simulation runs" — is embarrassingly parallel: every
//! Monte-Carlo sample, validity grid point and extraction rig builds its
//! own circuit and solves it independently. The workspace builds fully
//! offline, so instead of pulling in `rayon` this crate provides the two
//! primitives that workload needs:
//!
//! * [`ThreadPool::scope`] — spawn borrowing closures and wait for all of
//!   them, with panic propagation back to the caller;
//! * [`ThreadPool::par_map`] / [`ThreadPool::par_map_n`] — evaluate a
//!   `Fn + Sync` over a slice (or index range) and collect the results
//!   *in input order*, so callers stay deterministic regardless of the
//!   execution interleaving.
//!
//! Each worker owns a deque: submitted jobs are distributed round-robin,
//! a worker pops its own queue from the front and, when empty, *steals*
//! from the back of the fullest sibling queue. A [`global()`] pool is
//! lazily built from, in order of precedence, [`set_global_threads`]
//! (the `--threads` CLI flag), the `GABM_THREADS` environment variable,
//! and [`std::thread::available_parallelism`].
//!
//! Jobs must not block on other jobs of the same pool (no nested
//! `scope` from inside a worker): the pool is sized for compute-bound
//! simulation runs, not for dependency graphs.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Queue state shared between the pool handle and its workers.
struct State {
    /// One deque per worker; the owner pops the front, thieves the back.
    queues: Vec<VecDeque<Job>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    work_ready: Condvar,
}

/// A fixed-size pool of worker threads with per-worker work-stealing
/// deques.
///
/// # Example
///
/// ```
/// let pool = gabm_par::ThreadPool::new(4);
/// let squares = pool.par_map(&[1, 2, 3, 4], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
    next_queue: AtomicUsize,
}

impl ThreadPool {
    /// Creates a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queues: (0..threads).map(|_| VecDeque::new()).collect(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|id| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("gabm-par-{id}"))
                    .spawn(move || worker_loop(&shared, id))
                    .expect("worker thread spawns")
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            next_queue: AtomicUsize::new(0),
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues one type-erased job, round-robin over the worker deques.
    fn push(&self, job: Job) {
        let slot = self.next_queue.fetch_add(1, Ordering::Relaxed) % self.threads();
        let mut st = self.shared.state.lock().unwrap();
        st.queues[slot].push_back(job);
        if gabm_trace::enabled() {
            let depth: usize = st.queues.iter().map(VecDeque::len).sum();
            gabm_trace::gauge_max("par.queue_depth", depth as u64);
        }
        drop(st);
        self.shared.work_ready.notify_one();
    }

    /// Runs `f` with a [`Scope`] that can spawn borrowing jobs, then waits
    /// for every spawned job to finish before returning.
    ///
    /// If any job panics, the first panic payload is re-raised on the
    /// calling thread (after all jobs have completed, so borrows stay
    /// sound).
    pub fn scope<'env, R>(&self, f: impl FnOnce(&Scope<'env, '_>) -> R) -> R {
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState {
                pending: Mutex::new(0),
                done: Condvar::new(),
                panic: Mutex::new(None),
            }),
            _env: std::marker::PhantomData,
        };
        // Even when `f` itself panics mid-spawn, already-queued jobs must
        // complete before the stack frame (and its borrows) unwinds.
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        scope.wait();
        if let Some(payload) = scope.state.panic.lock().unwrap().take() {
            resume_unwind(payload);
        }
        match result {
            Ok(r) => r,
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Applies `f(index, &item)` to every item and returns the results in
    /// input order. Deterministic for a pure `f` at any thread count; a
    /// single-threaded pool runs inline with zero overhead.
    pub fn par_map<T, R>(&self, items: &[T], f: impl Fn(usize, &T) -> R + Sync) -> Vec<R>
    where
        T: Sync,
        R: Send,
    {
        if self.threads() <= 1 || items.len() <= 1 {
            return items
                .iter()
                .enumerate()
                .map(|(k, t)| {
                    let _job = gabm_trace::span_root("par.job");
                    f(k, t)
                })
                .collect();
        }
        let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
        slots.resize_with(items.len(), || None);
        let f = &f;
        self.scope(|s| {
            for (k, (slot, item)) in slots.iter_mut().zip(items).enumerate() {
                s.spawn(move || *slot = Some(f(k, item)));
            }
        });
        slots
            .into_iter()
            .map(|o| o.expect("scope joined every job"))
            .collect()
    }

    /// Applies `f(k)` for `k` in `0..n` and returns the results in index
    /// order — [`ThreadPool::par_map`] without a backing slice.
    pub fn par_map_n<R: Send>(&self, n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
        if self.threads() <= 1 || n <= 1 {
            return (0..n)
                .map(|k| {
                    let _job = gabm_trace::span_root("par.job");
                    f(k)
                })
                .collect();
        }
        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let f = &f;
        self.scope(|s| {
            for (k, slot) in slots.iter_mut().enumerate() {
                s.spawn(move || *slot = Some(f(k)));
            }
        });
        slots
            .into_iter()
            .map(|o| o.expect("scope joined every job"))
            .collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.state.lock().unwrap().shutdown = true;
        self.shared.work_ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads())
            .finish()
    }
}

fn worker_loop(shared: &Shared, id: usize) {
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if let Some(job) = st.queues[id].pop_front() {
                    break job;
                }
                // Steal from the back of the fullest sibling deque.
                let victim = st
                    .queues
                    .iter()
                    .enumerate()
                    .filter(|(i, q)| *i != id && !q.is_empty())
                    .max_by_key(|(_, q)| q.len())
                    .map(|(i, _)| i);
                if let Some(v) = victim {
                    gabm_trace::add("par.steals", 1);
                    break st.queues[v].pop_back().expect("victim queue non-empty");
                }
                if st.shutdown {
                    return;
                }
                st = shared.work_ready.wait(st).unwrap();
            }
        };
        job();
    }
}

struct ScopeState {
    pending: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// Spawn handle passed to the closure of [`ThreadPool::scope`]; jobs may
/// borrow anything that outlives the `scope` call.
pub struct Scope<'env, 'pool> {
    pool: &'pool ThreadPool,
    state: Arc<ScopeState>,
    /// Invariant over `'env`, like `std::thread::scope`.
    _env: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'env, '_> {
    /// Queues `job` on the pool. The job may borrow from the environment
    /// of the enclosing [`ThreadPool::scope`] call; a panic inside it is
    /// captured and re-raised by `scope`.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'env) {
        *self.state.pending.lock().unwrap() += 1;
        let state = Arc::clone(&self.state);
        let wrapped = move || {
            // Detached root span: a job's trace path is the same whether
            // it runs here or inline on the caller (see the fast paths of
            // `par_map`/`par_map_n`), so span structure is invariant in
            // the thread count.
            let _job = gabm_trace::span_root("par.job");
            if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
                let mut slot = state.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            let mut pending = state.pending.lock().unwrap();
            *pending -= 1;
            if *pending == 0 {
                state.done.notify_all();
            }
        };
        let boxed: Box<dyn FnOnce() + Send + 'env> = Box::new(wrapped);
        // SAFETY: `scope` waits for `pending == 0` before returning, so
        // every job (and its `'env` borrows) finishes while the borrowed
        // environment is still alive. The transmute only erases `'env` to
        // `'static` on the trait object; nothing else changes.
        let boxed: Job = unsafe { std::mem::transmute(boxed) };
        self.pool.push(boxed);
    }

    fn wait(&self) {
        let mut pending = self.state.pending.lock().unwrap();
        while *pending > 0 {
            pending = self.state.done.wait(pending).unwrap();
        }
    }
}

/// Parses the `GABM_THREADS` environment variable.
///
/// Returns `Ok(None)` when unset or empty.
///
/// # Errors
///
/// A message naming the variable when the value is not a positive
/// integer. Binaries should surface this at startup; [`global`] itself
/// falls back to auto-detection on a malformed value.
pub fn env_threads() -> Result<Option<usize>, String> {
    match std::env::var("GABM_THREADS") {
        Ok(v) if v.is_empty() => Ok(None),
        Ok(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(Some(n)),
            _ => Err(format!(
                "invalid GABM_THREADS value '{v}': expected a positive integer"
            )),
        },
        Err(_) => Ok(None),
    }
}

static GLOBAL_OVERRIDE: OnceLock<usize> = OnceLock::new();
static GLOBAL_POOL: OnceLock<ThreadPool> = OnceLock::new();

/// Fixes the size of the [`global`] pool (the `--threads N` CLI flag).
///
/// Returns `false` when it is too late: an override was already set or
/// the global pool has already been built.
pub fn set_global_threads(threads: usize) -> bool {
    if GLOBAL_POOL.get().is_some() {
        return false;
    }
    GLOBAL_OVERRIDE.set(threads.max(1)).is_ok()
}

/// Thread count the [`global`] pool will use: the
/// [`set_global_threads`] override, else `GABM_THREADS`, else
/// [`std::thread::available_parallelism`].
pub fn default_threads() -> usize {
    if let Some(&n) = GLOBAL_OVERRIDE.get() {
        return n;
    }
    if let Ok(Some(n)) = env_threads() {
        return n;
    }
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The process-wide pool, built lazily with [`default_threads`] workers.
pub fn global() -> &'static ThreadPool {
    GLOBAL_POOL.get_or_init(|| ThreadPool::new(default_threads()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn par_map_preserves_input_order() {
        for threads in [1, 2, 7] {
            let pool = ThreadPool::new(threads);
            let items: Vec<usize> = (0..100).collect();
            let out = pool.par_map(&items, |k, &x| {
                assert_eq!(k, x);
                x * x
            });
            let expect: Vec<usize> = (0..100).map(|x| x * x).collect();
            assert_eq!(out, expect, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_n_matches_serial() {
        let pool = ThreadPool::new(3);
        let out = pool.par_map_n(17, |k| k as f64 * 1.5);
        let expect: Vec<f64> = (0..17).map(|k| k as f64 * 1.5).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn jobs_run_on_worker_threads() {
        let pool = ThreadPool::new(2);
        let names = pool.par_map_n(8, |_| thread::current().name().unwrap_or("").to_string());
        for n in names {
            assert!(n.starts_with("gabm-par-"), "ran on '{n}'");
        }
    }

    #[test]
    fn scope_borrows_disjoint_slots_mutably() {
        let pool = ThreadPool::new(4);
        let mut data = vec![0u64; 32];
        pool.scope(|s| {
            for (k, slot) in data.iter_mut().enumerate() {
                s.spawn(move || *slot = k as u64 + 1);
            }
        });
        for (k, v) in data.iter().enumerate() {
            assert_eq!(*v, k as u64 + 1);
        }
    }

    #[test]
    fn panic_in_job_propagates_to_caller() {
        for threads in [1, 3] {
            let pool = ThreadPool::new(threads);
            let result = catch_unwind(AssertUnwindSafe(|| {
                pool.par_map_n(8, |k| {
                    if k == 5 {
                        panic!("boom at {k}");
                    }
                    k
                })
            }));
            assert!(result.is_err(), "threads = {threads}");
            // Pool must still be usable after a propagated panic.
            assert_eq!(pool.par_map_n(3, |k| k), vec![0, 1, 2]);
        }
    }

    #[test]
    fn pool_is_reusable_and_joins_on_drop() {
        let flag = AtomicBool::new(false);
        {
            let pool = ThreadPool::new(2);
            for _ in 0..3 {
                pool.par_map_n(4, |_| ());
            }
            pool.scope(|s| {
                s.spawn(|| flag.store(true, Ordering::SeqCst));
            });
        }
        assert!(flag.load(Ordering::SeqCst));
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.par_map_n(2, |k| k), vec![0, 1]);
    }

    #[test]
    fn env_threads_parses_and_rejects() {
        // Can't mutate the process environment safely under a parallel
        // test runner; exercise the parser through a present-or-absent
        // variable only when it is unset.
        match std::env::var("GABM_THREADS") {
            Err(_) => assert_eq!(env_threads(), Ok(None)),
            Ok(v) => {
                // Whatever the harness set must parse cleanly.
                assert!(env_threads().is_ok(), "GABM_THREADS='{v}' should parse");
            }
        }
    }
}
