//! Per-instance backend selection: tree-walking interpreter vs bytecode
//! VM behind one constructor.

use crate::{compile_program, VmError};
use gabm_fas::compile::CompiledModel;
use gabm_fas::FasError;
use gabm_sim::devices::BehavioralModel;
use std::collections::BTreeMap;
use std::fmt;

/// Which execution engine a FAS model instance runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FasBackend {
    /// The tree-walking interpreter ([`gabm_fas::FasMachine`]) — the
    /// reference semantics, default.
    #[default]
    Interp,
    /// The register-bytecode VM ([`crate::FasVm`]).
    Vm,
}

/// Instantiation failure for either backend.
#[derive(Debug)]
pub enum BackendError {
    /// Parameter-override validation failed (both backends).
    Fas(FasError),
    /// Bytecode compilation failed (VM backend only) — callers can
    /// retry with [`FasBackend::Interp`].
    Vm(VmError),
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Fas(e) => write!(f, "{e}"),
            BackendError::Vm(e) => write!(f, "bytecode compilation: {e}"),
        }
    }
}

impl std::error::Error for BackendError {}

impl From<FasError> for BackendError {
    fn from(e: FasError) -> Self {
        BackendError::Fas(e)
    }
}

impl From<VmError> for BackendError {
    fn from(e: VmError) -> Self {
        BackendError::Vm(e)
    }
}

impl FasBackend {
    /// Instantiates `model` on this backend as a boxed
    /// [`BehavioralModel`], ready for
    /// `Circuit::add_behavioral`.
    ///
    /// # Errors
    ///
    /// [`BackendError`] on unknown parameter overrides, or on bytecode
    /// capacity overflow for [`FasBackend::Vm`].
    pub fn instantiate(
        self,
        model: &CompiledModel,
        overrides: &BTreeMap<String, f64>,
    ) -> Result<Box<dyn BehavioralModel>, BackendError> {
        match self {
            FasBackend::Interp => Ok(Box::new(model.instantiate(overrides)?)),
            FasBackend::Vm => {
                let prog = compile_program(model)?;
                Ok(Box::new(prog.instantiate(overrides)?))
            }
        }
    }
}
