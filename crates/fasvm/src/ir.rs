//! Lowering: `CompiledModel` tree IR → linear virtual-register IR.
//!
//! The lowerer walks the statement tree once, producing straight-line
//! [`VInst`]s with unlimited virtual registers. Three optimisations run
//! inline:
//!
//! - **Constant folding** — pure sub-expressions over literals collapse
//!   at compile time. Folding is *lane-safe only*: `limit` folds only
//!   with ordered finite bounds and `min`/`max` only with non-NaN
//!   operands, because the interpreter's scalar lane (`f64::max`/`min`
//!   clamp) and dual lane (`if`-chains) legitimately disagree on the
//!   degenerate cases and the VM must reproduce *both* behaviours.
//! - **Dead-branch elimination** — an `if` whose relational condition
//!   folds keeps only the taken branch (constant condition operands are
//!   side-effect free by construction, so skipping them is sound).
//! - **Select conversion** — short `if (cmp)` bodies whose branches are
//!   pure `make` statements over the same variable set become
//!   branch-free [`VInst::Select`]s; both arms evaluate unconditionally,
//!   which is legal precisely because the convertibility check rejects
//!   `state.dt`/`state.idt`/`state.delayt` (scratch side effects) and
//!   imposes.
//!
//! Variable reads forward through a scoped map (var → operand of its
//! last store) so chains of `make` statements never round-trip through
//! the scratch array; the map joins by intersection at branch merges,
//! which guarantees every forwarded register is defined on all paths.
//! Dead-code elimination then strips unreferenced pure instructions
//! ([`dce`]).

use crate::bytecode::CompileStats;
use gabm_fas::ast::{BinOp, RelOp};
use gabm_fas::compile::{CCond, CExpr, CStmt, CompiledModel, Func1, Func2};
use std::collections::HashMap;

/// Virtual register: one per value definition (SSA-ish — nothing is
/// redefined).
pub(crate) type VReg = u32;
/// Branch-target label, resolved to an instruction index at emission.
pub(crate) type Label = u32;

/// Linear-IR instruction. Value shapes mirror [`crate::bytecode::Op`]
/// with unbounded registers, plus `Label` pseudo-instructions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum VInst {
    Const {
        dst: VReg,
        v: f64,
    },
    LoadPin {
        dst: VReg,
        pin: usize,
    },
    LoadParam {
        dst: VReg,
        p: usize,
    },
    LoadScratch {
        dst: VReg,
        var: usize,
    },
    LoadCommitted {
        dst: VReg,
        var: usize,
    },
    LoadTime {
        dst: VReg,
    },
    LoadTemp {
        dst: VReg,
    },
    LoadTimeStep {
        dst: VReg,
    },
    Neg {
        dst: VReg,
        a: VReg,
    },
    Bin {
        dst: VReg,
        op: BinOp,
        a: VReg,
        b: VReg,
    },
    Call1 {
        dst: VReg,
        f: Func1,
        a: VReg,
    },
    Call2 {
        dst: VReg,
        f: Func2,
        a: VReg,
        b: VReg,
    },
    Limit {
        dst: VReg,
        x: VReg,
        lo: VReg,
        hi: VReg,
    },
    Dt {
        dst: VReg,
        inst: usize,
        a: VReg,
    },
    DelayT {
        dst: VReg,
        inst: usize,
        var: usize,
        td: VReg,
    },
    Idt {
        dst: VReg,
        inst: usize,
        a: VReg,
    },
    StoreVar {
        var: usize,
        src: VReg,
    },
    Impose {
        pin: usize,
        src: VReg,
    },
    Select {
        dst: VReg,
        op: RelOp,
        a: VReg,
        b: VReg,
        t: VReg,
        f: VReg,
    },
    Label(Label),
    Jump(Label),
    JumpIfNot {
        op: RelOp,
        a: VReg,
        b: VReg,
        target: Label,
    },
    JumpIfModeNot {
        dc: bool,
        target: Label,
    },
}

/// A lowering result: either a compile-time constant or a defined
/// register. Constants compare by bit pattern so NaN joins behave.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Operand {
    Const(f64),
    Reg(VReg),
}

impl PartialEq for Operand {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Operand::Const(a), Operand::Const(b)) => a.to_bits() == b.to_bits(),
            (Operand::Reg(a), Operand::Reg(b)) => a == b,
            _ => false,
        }
    }
}

/// Pass-invariant leaf loads, cached per scope so repeated reads of the
/// same pin/param/constant share one register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum LeafKey {
    Const(u64),
    Pin(usize),
    Param(usize),
    Committed(usize),
    Time,
    Temp,
    TimeStep,
}

pub(crate) struct Lowered {
    pub insts: Vec<VInst>,
    pub n_vregs: usize,
    pub stats: CompileStats,
}

struct Lower {
    out: Vec<VInst>,
    next_vreg: VReg,
    next_label: Label,
    /// var index → operand of its most recent store on every path here.
    fwd: HashMap<usize, Operand>,
    /// Scoped cache of materialised leaf loads.
    leaf: HashMap<LeafKey, VReg>,
    stats: CompileStats,
}

/// Condition after lowering: statically resolved, a runtime comparison,
/// or a mode test.
enum CondK {
    Static(bool),
    Cmp(RelOp, VReg, VReg),
    Mode(bool),
}

pub(crate) fn lower(model: &CompiledModel) -> Lowered {
    let mut lo = Lower {
        out: Vec::new(),
        next_vreg: 0,
        next_label: 0,
        fwd: HashMap::new(),
        leaf: HashMap::new(),
        stats: CompileStats::default(),
    };
    // Scratch variables start each pass at 0.0, so an un-assigned read
    // is the constant zero.
    for v in 0..model.var_names().len() {
        lo.fwd.insert(v, Operand::Const(0.0));
    }
    lo.block(model.body());
    lo.stats.vinsts = lo.out.len();
    lo.stats.vregs = lo.next_vreg as usize;
    Lowered {
        insts: lo.out,
        n_vregs: lo.next_vreg as usize,
        stats: lo.stats,
    }
}

impl Lower {
    fn fresh(&mut self) -> VReg {
        let r = self.next_vreg;
        self.next_vreg += 1;
        r
    }

    fn label(&mut self) -> Label {
        let l = self.next_label;
        self.next_label += 1;
        l
    }

    /// Materialises an operand into a register.
    fn reg(&mut self, op: Operand) -> VReg {
        match op {
            Operand::Reg(r) => r,
            Operand::Const(v) => {
                self.leaf_load(LeafKey::Const(v.to_bits()), |dst| VInst::Const { dst, v })
            }
        }
    }

    fn leaf_load(&mut self, key: LeafKey, make: impl FnOnce(VReg) -> VInst) -> VReg {
        if let Some(&r) = self.leaf.get(&key) {
            return r;
        }
        let dst = self.fresh();
        self.out.push(make(dst));
        self.leaf.insert(key, dst);
        dst
    }

    fn block(&mut self, stmts: &[CStmt]) {
        for stmt in stmts {
            match stmt {
                CStmt::Set(var, expr) => {
                    let op = self.expr(expr);
                    let src = self.reg(op);
                    self.out.push(VInst::StoreVar { var: *var, src });
                    self.fwd.insert(*var, op);
                }
                CStmt::Impose(pin, expr) => {
                    let op = self.expr(expr);
                    let src = self.reg(op);
                    self.out.push(VInst::Impose { pin: *pin, src });
                }
                CStmt::If(cond, then_b, else_b) => self.if_stmt(cond, then_b, else_b),
            }
        }
    }

    fn if_stmt(&mut self, cond: &CCond, then_b: &[CStmt], else_b: &[CStmt]) {
        let ck = match cond {
            CCond::ModeIs(dc) => CondK::Mode(*dc),
            CCond::Cmp(op, a, b) => {
                let ao = self.expr(a);
                let bo = self.expr(b);
                if let (Operand::Const(av), Operand::Const(bv)) = (ao, bo) {
                    CondK::Static(op.apply(av, bv))
                } else {
                    let ar = self.reg(ao);
                    let br = self.reg(bo);
                    CondK::Cmp(*op, ar, br)
                }
            }
        };
        match ck {
            CondK::Static(taken) => {
                self.stats.static_branches += 1;
                self.block(if taken { then_b } else { else_b });
            }
            CondK::Cmp(op, a, b)
                if selectable(then_b) && selectable(else_b) && same_assigned(then_b, else_b) =>
            {
                self.select_stmt(op, a, b, then_b, else_b);
            }
            CondK::Cmp(op, a, b) => {
                self.branch_stmt(
                    |lbl| VInst::JumpIfNot {
                        op,
                        a,
                        b,
                        target: lbl,
                    },
                    then_b,
                    else_b,
                );
            }
            CondK::Mode(dc) => {
                self.branch_stmt(
                    |lbl| VInst::JumpIfModeNot { dc, target: lbl },
                    then_b,
                    else_b,
                );
            }
        }
    }

    /// Branch-free lowering: evaluate both arms unconditionally, then
    /// select per assigned variable. Arms use private forwarding
    /// overlays so intra-arm references resolve; the emitted code is
    /// straight-line, so the leaf cache stays valid throughout.
    fn select_stmt(&mut self, op: RelOp, a: VReg, b: VReg, then_b: &[CStmt], else_b: &[CStmt]) {
        self.stats.selects += 1;
        let entry = self.fwd.clone();
        let mut order: Vec<usize> = Vec::new();
        let arm = |lo: &mut Self, stmts: &[CStmt], order: &mut Vec<usize>| {
            lo.fwd = entry.clone();
            for stmt in stmts {
                let CStmt::Set(var, expr) = stmt else {
                    unreachable!("selectable() admits only Set statements");
                };
                let o = lo.expr(expr);
                lo.fwd.insert(*var, o);
                if !order.contains(var) {
                    order.push(*var);
                }
            }
            std::mem::replace(&mut lo.fwd, entry.clone())
        };
        let then_map = arm(self, then_b, &mut order);
        let else_map = arm(self, else_b, &mut order);
        self.fwd = entry;
        for var in order {
            let t = then_map[&var];
            let f = else_map[&var];
            let result = if t == f {
                // Both arms agree (e.g. both fold to the same constant):
                // no select needed, but the store still marks the
                // variable assigned.
                t
            } else {
                let tr = self.reg(t);
                let fr = self.reg(f);
                let dst = self.fresh();
                self.out.push(VInst::Select {
                    dst,
                    op,
                    a,
                    b,
                    t: tr,
                    f: fr,
                });
                Operand::Reg(dst)
            };
            let src = self.reg(result);
            self.out.push(VInst::StoreVar { var, src });
            self.fwd.insert(var, result);
        }
    }

    /// Generic two-way branch. Forwarding and leaf caches snapshot at
    /// entry; the join keeps only var bindings identical on both paths
    /// (identical ⇒ defined before the branch, or the same constant).
    fn branch_stmt(
        &mut self,
        jump: impl FnOnce(Label) -> VInst,
        then_b: &[CStmt],
        else_b: &[CStmt],
    ) {
        let fwd_entry = self.fwd.clone();
        let leaf_entry = self.leaf.clone();
        if else_b.is_empty() {
            let end = self.label();
            self.out.push(jump(end));
            self.block(then_b);
            self.out.push(VInst::Label(end));
            let then_map = std::mem::replace(&mut self.fwd, fwd_entry.clone());
            self.leaf = leaf_entry;
            join_fwd(&mut self.fwd, &then_map, &fwd_entry);
        } else {
            let els = self.label();
            let end = self.label();
            self.out.push(jump(els));
            self.block(then_b);
            let then_map = std::mem::replace(&mut self.fwd, fwd_entry.clone());
            self.leaf = leaf_entry.clone();
            self.out.push(VInst::Jump(end));
            self.out.push(VInst::Label(els));
            self.block(else_b);
            let else_map = std::mem::replace(&mut self.fwd, fwd_entry);
            self.leaf = leaf_entry;
            self.out.push(VInst::Label(end));
            join_fwd(&mut self.fwd, &then_map, &else_map);
        }
    }

    fn expr(&mut self, e: &CExpr) -> Operand {
        match e {
            CExpr::Num(v) => Operand::Const(*v),
            CExpr::Var(i) => match self.fwd.get(i) {
                Some(&op) => op,
                None => {
                    let var = *i;
                    Operand::Reg(self.leaf_load_uncached(|dst| VInst::LoadScratch { dst, var }))
                }
            },
            CExpr::Param(i) => {
                let p = *i;
                Operand::Reg(self.leaf_load(LeafKey::Param(p), |dst| VInst::LoadParam { dst, p }))
            }
            CExpr::PinValue(i) => {
                let pin = *i;
                Operand::Reg(self.leaf_load(LeafKey::Pin(pin), |dst| VInst::LoadPin { dst, pin }))
            }
            CExpr::Time => {
                Operand::Reg(self.leaf_load(LeafKey::Time, |dst| VInst::LoadTime { dst }))
            }
            CExpr::Temp => {
                Operand::Reg(self.leaf_load(LeafKey::Temp, |dst| VInst::LoadTemp { dst }))
            }
            CExpr::TimeStep => {
                Operand::Reg(self.leaf_load(LeafKey::TimeStep, |dst| VInst::LoadTimeStep { dst }))
            }
            CExpr::Neg(a) => {
                let ao = self.expr(a);
                if let Operand::Const(v) = ao {
                    self.stats.folded += 1;
                    return Operand::Const(-v);
                }
                let ar = self.reg(ao);
                let dst = self.fresh();
                self.out.push(VInst::Neg { dst, a: ar });
                Operand::Reg(dst)
            }
            CExpr::Bin(op, a, b) => {
                let ao = self.expr(a);
                let bo = self.expr(b);
                if let (Operand::Const(av), Operand::Const(bv)) = (ao, bo) {
                    self.stats.folded += 1;
                    return Operand::Const(match op {
                        BinOp::Add => av + bv,
                        BinOp::Sub => av - bv,
                        BinOp::Mul => av * bv,
                        BinOp::Div => av / bv,
                    });
                }
                let ar = self.reg(ao);
                let br = self.reg(bo);
                let dst = self.fresh();
                self.out.push(VInst::Bin {
                    dst,
                    op: *op,
                    a: ar,
                    b: br,
                });
                Operand::Reg(dst)
            }
            CExpr::Call1(f, a) => {
                let ao = self.expr(a);
                if let Operand::Const(v) = ao {
                    self.stats.folded += 1;
                    return Operand::Const(f.apply(v));
                }
                let ar = self.reg(ao);
                let dst = self.fresh();
                self.out.push(VInst::Call1 { dst, f: *f, a: ar });
                Operand::Reg(dst)
            }
            CExpr::Call2(f, a, b) => {
                let ao = self.expr(a);
                let bo = self.expr(b);
                if let (Operand::Const(av), Operand::Const(bv)) = (ao, bo) {
                    // min/max fold only for non-NaN operands: the scalar
                    // lane uses IEEE min/max (NaN-discarding) while the
                    // dual lane uses `<=`/`>=` chains (NaN-propagating),
                    // and a folded constant would collapse that split.
                    let safe = matches!(f, Func2::Pow) || (!av.is_nan() && !bv.is_nan());
                    if safe {
                        self.stats.folded += 1;
                        return Operand::Const(f.apply(av, bv));
                    }
                }
                let ar = self.reg(ao);
                let br = self.reg(bo);
                let dst = self.fresh();
                self.out.push(VInst::Call2 {
                    dst,
                    f: *f,
                    a: ar,
                    b: br,
                });
                Operand::Reg(dst)
            }
            CExpr::Limit(x, lo, hi) => {
                let xo = self.expr(x);
                let loo = self.expr(lo);
                let hio = self.expr(hi);
                if let (Operand::Const(xv), Operand::Const(lov), Operand::Const(hiv)) =
                    (xo, loo, hio)
                {
                    // Fold only the well-ordered, NaN-free case; for
                    // degenerate bounds the scalar clamp and the dual
                    // if-chain pick different lanes and the runtime op
                    // must be kept.
                    if lov <= hiv && !xv.is_nan() {
                        self.stats.folded += 1;
                        return Operand::Const(xv.max(lov).min(hiv));
                    }
                }
                let xr = self.reg(xo);
                let lor = self.reg(loo);
                let hir = self.reg(hio);
                let dst = self.fresh();
                self.out.push(VInst::Limit {
                    dst,
                    x: xr,
                    lo: lor,
                    hi: hir,
                });
                Operand::Reg(dst)
            }
            CExpr::Dt { inst, arg } => {
                let ao = self.expr(arg);
                let ar = self.reg(ao);
                let dst = self.fresh();
                self.out.push(VInst::Dt {
                    dst,
                    inst: *inst,
                    a: ar,
                });
                Operand::Reg(dst)
            }
            CExpr::Delay { var } => {
                let v = *var;
                Operand::Reg(
                    self.leaf_load(LeafKey::Committed(v), |dst| VInst::LoadCommitted {
                        dst,
                        var: v,
                    }),
                )
            }
            CExpr::DelayT { inst, var, td } => {
                let tdo = self.expr(td);
                let tdr = self.reg(tdo);
                let dst = self.fresh();
                self.out.push(VInst::DelayT {
                    dst,
                    inst: *inst,
                    var: *var,
                    td: tdr,
                });
                Operand::Reg(dst)
            }
            CExpr::Idt { inst, arg } => {
                let ao = self.expr(arg);
                let ar = self.reg(ao);
                let dst = self.fresh();
                self.out.push(VInst::Idt {
                    dst,
                    inst: *inst,
                    a: ar,
                });
                Operand::Reg(dst)
            }
        }
    }

    /// An uncached fresh load (scratch-variable reads are invalidated by
    /// stores, so they never enter the leaf cache).
    fn leaf_load_uncached(&mut self, make: impl FnOnce(VReg) -> VInst) -> VReg {
        let dst = self.fresh();
        self.out.push(make(dst));
        dst
    }
}

/// Join rule at a branch merge: keep a binding only when both paths
/// carry the identical operand. Register identity across arms implies
/// the register was defined before the branch (arm-local definitions
/// are fresh and disjoint), so dominance holds by construction.
fn join_fwd(
    out: &mut HashMap<usize, Operand>,
    then_map: &HashMap<usize, Operand>,
    else_map: &HashMap<usize, Operand>,
) {
    out.clear();
    for (var, t) in then_map {
        if let Some(e) = else_map.get(var) {
            if t == e {
                out.insert(*var, *t);
            }
        }
    }
}

/// `true` when both arms assign exactly the same variable set. Required
/// for select conversion: the emitted `StoreVar`s run unconditionally,
/// so a variable assigned in only one arm would be marked assigned (and
/// committed in `accept`) on a path where the interpreter leaves it
/// untouched.
fn same_assigned(then_b: &[CStmt], else_b: &[CStmt]) -> bool {
    let vars = |stmts: &[CStmt]| {
        let mut v: Vec<usize> = stmts
            .iter()
            .filter_map(|s| match s {
                CStmt::Set(var, _) => Some(*var),
                _ => None,
            })
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    vars(then_b) == vars(else_b)
}

/// `true` when a branch arm qualifies for select conversion: at most
/// two statements, all plain `make`s whose expressions carry no scratch
/// side effects (`state.dt`, `state.idt`, `state.delayt` record
/// arguments / delay horizons even when their value is discarded, so
/// evaluating an untaken arm would diverge from the interpreter).
fn selectable(stmts: &[CStmt]) -> bool {
    stmts.len() <= 2
        && stmts.iter().all(|s| match s {
            CStmt::Set(_, e) => pure_expr(e),
            _ => false,
        })
}

fn pure_expr(e: &CExpr) -> bool {
    match e {
        CExpr::Num(_)
        | CExpr::Var(_)
        | CExpr::Param(_)
        | CExpr::PinValue(_)
        | CExpr::Time
        | CExpr::Temp
        | CExpr::TimeStep
        | CExpr::Delay { .. } => true,
        CExpr::Neg(a) | CExpr::Call1(_, a) => pure_expr(a),
        CExpr::Bin(_, a, b) | CExpr::Call2(_, a, b) => pure_expr(a) && pure_expr(b),
        CExpr::Limit(a, b, c) => pure_expr(a) && pure_expr(b) && pure_expr(c),
        CExpr::Dt { .. } | CExpr::DelayT { .. } | CExpr::Idt { .. } => false,
    }
}

/// Dead-code elimination: a single reverse walk. Stores, imposes,
/// control flow and state-recording instructions are roots; a pure
/// instruction survives only if its destination is live.
pub(crate) fn dce(insts: Vec<VInst>, stats: &mut CompileStats) -> Vec<VInst> {
    let mut live: Vec<bool> = Vec::new();
    let mark = |live: &mut Vec<bool>, r: VReg| {
        let i = r as usize;
        if i >= live.len() {
            live.resize(i + 1, false);
        }
        live[i] = true;
    };
    let is_live = |live: &[bool], r: VReg| live.get(r as usize).copied().unwrap_or(false);
    let mut keep = vec![false; insts.len()];
    for (idx, inst) in insts.iter().enumerate().rev() {
        let (root, dst) = match inst {
            VInst::StoreVar { src, .. } | VInst::Impose { src, .. } => {
                mark(&mut live, *src);
                (true, None)
            }
            VInst::Dt { dst, a, .. } | VInst::Idt { dst, a, .. } => {
                mark(&mut live, *a);
                (true, Some(*dst))
            }
            VInst::DelayT { dst, td, .. } => {
                mark(&mut live, *td);
                (true, Some(*dst))
            }
            VInst::Label(_) | VInst::Jump(_) => (true, None),
            VInst::JumpIfNot { a, b, .. } => {
                mark(&mut live, *a);
                mark(&mut live, *b);
                (true, None)
            }
            VInst::JumpIfModeNot { .. } => (true, None),
            VInst::Const { dst, .. }
            | VInst::LoadPin { dst, .. }
            | VInst::LoadParam { dst, .. }
            | VInst::LoadScratch { dst, .. }
            | VInst::LoadCommitted { dst, .. }
            | VInst::LoadTime { dst }
            | VInst::LoadTemp { dst }
            | VInst::LoadTimeStep { dst } => (false, Some(*dst)),
            VInst::Neg { dst, a } => {
                if is_live(&live, *dst) {
                    mark(&mut live, *a);
                }
                (false, Some(*dst))
            }
            VInst::Bin { dst, a, b, .. } | VInst::Call2 { dst, a, b, .. } => {
                if is_live(&live, *dst) {
                    mark(&mut live, *a);
                    mark(&mut live, *b);
                }
                (false, Some(*dst))
            }
            VInst::Call1 { dst, a, .. } => {
                if is_live(&live, *dst) {
                    mark(&mut live, *a);
                }
                (false, Some(*dst))
            }
            VInst::Limit { dst, x, lo, hi } => {
                if is_live(&live, *dst) {
                    mark(&mut live, *x);
                    mark(&mut live, *lo);
                    mark(&mut live, *hi);
                }
                (false, Some(*dst))
            }
            VInst::Select {
                dst, a, b, t, f, ..
            } => {
                if is_live(&live, *dst) {
                    mark(&mut live, *a);
                    mark(&mut live, *b);
                    mark(&mut live, *t);
                    mark(&mut live, *f);
                }
                (false, Some(*dst))
            }
        };
        keep[idx] = root || dst.map(|d| is_live(&live, d)).unwrap_or(false);
    }
    let before = insts.len();
    let out: Vec<VInst> = insts
        .into_iter()
        .zip(keep)
        .filter_map(|(inst, k)| k.then_some(inst))
        .collect();
    stats.dce_removed += before - out.len();
    out
}
