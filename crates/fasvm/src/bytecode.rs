//! Flat register bytecode: the executable form of a compiled FAS model.
//!
//! Registers are a fixed `f64` file indexed by `u8` (≤ 256 live values —
//! enforced by the allocator). Control flow is forward-only (`FAS` has no
//! loops), so `Jump*` targets are absolute instruction indices that always
//! point past the current instruction.

use gabm_fas::ast::RelOp;
use gabm_fas::compile::{Func1, Func2};
use gabm_fas::FasError;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One bytecode instruction.
///
/// `dst`/`a`/`b`/… are register indices; `k` indexes the constant pool;
/// `var`/`p`/`inst` index the model's variable/parameter/state tables.
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)]
pub enum Op {
    /// `r[dst] = consts[k]`.
    Const {
        dst: u8,
        k: u16,
    },
    /// `r[dst] = pin_voltages[pin]` (a tangent seed in the dual lane).
    LoadPin {
        dst: u8,
        pin: u8,
    },
    /// `r[dst] = params[p]`.
    LoadParam {
        dst: u8,
        p: u16,
    },
    /// `r[dst] = scratch.vars[var]` (pass-local variable value).
    LoadScratch {
        dst: u8,
        var: u16,
    },
    /// `r[dst] = committed_vars[var]` (`state.delay`).
    LoadCommitted {
        dst: u8,
        var: u16,
    },
    LoadTime {
        dst: u8,
    },
    LoadTemp {
        dst: u8,
    },
    /// `r[dst] = dt_effective()` (`timestep`).
    LoadTimeStep {
        dst: u8,
    },
    Neg {
        dst: u8,
        a: u8,
    },
    Add {
        dst: u8,
        a: u8,
        b: u8,
    },
    Sub {
        dst: u8,
        a: u8,
        b: u8,
    },
    Mul {
        dst: u8,
        a: u8,
        b: u8,
    },
    Div {
        dst: u8,
        a: u8,
        b: u8,
    },
    Call1 {
        dst: u8,
        f: Func1,
        a: u8,
    },
    Call2 {
        dst: u8,
        f: Func2,
        a: u8,
        b: u8,
    },
    Limit {
        dst: u8,
        x: u8,
        lo: u8,
        hi: u8,
    },
    /// `state.dt` instance `inst`: records `r[a]`, yields the derivative.
    Dt {
        dst: u8,
        inst: u16,
        a: u8,
    },
    /// `state.delayt` instance `inst` of variable `var`, delay `r[td]`.
    DelayT {
        dst: u8,
        inst: u16,
        var: u16,
        td: u8,
    },
    /// `state.idt` instance `inst`: records `r[a]`, yields the integral.
    Idt {
        dst: u8,
        inst: u16,
        a: u8,
    },
    /// `scratch.vars[var] = r[src]`; marks the variable assigned.
    StoreVar {
        var: u16,
        src: u8,
    },
    /// `imposed[pin] += r[src]`.
    Impose {
        pin: u8,
        src: u8,
    },
    /// `r[dst] = if op(r[a], r[b]) { r[t] } else { r[f] }` — a
    /// branch-free `if (cmp) then make x=… else make x=… endif`.
    Select {
        dst: u8,
        op: RelOp,
        a: u8,
        b: u8,
        t: u8,
        f: u8,
    },
    Jump {
        target: u16,
    },
    /// Falls through when `op(r[a], r[b])` holds, jumps otherwise.
    JumpIfNot {
        op: RelOp,
        a: u8,
        b: u8,
        target: u16,
    },
    /// Falls through when the evaluation mode matches `dc`.
    JumpIfModeNot {
        dc: bool,
        target: u16,
    },
}

/// Pipeline counters, carried in the [`Program`] for diagnostics and the
/// disassembly header.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Linear-IR instructions produced by lowering (before DCE).
    pub vinsts: usize,
    /// Virtual registers created.
    pub vregs: usize,
    /// Expression nodes folded to constants.
    pub folded: usize,
    /// `if` statements whose condition folded, dropping the dead branch.
    pub static_branches: usize,
    /// `if` statements converted to branch-free selects.
    pub selects: usize,
    /// Instructions removed by dead-code elimination.
    pub dce_removed: usize,
}

/// A compiled FAS bytecode program: the VM equivalent of
/// [`gabm_fas::CompiledModel`]. Immutable; instantiate per device with
/// [`Program::instantiate`].
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub(crate) name: String,
    pub(crate) pins: Vec<String>,
    pub(crate) params: Vec<(String, f64)>,
    pub(crate) var_names: Vec<String>,
    pub(crate) consts: Vec<f64>,
    pub(crate) ops: Vec<Op>,
    pub(crate) n_regs: usize,
    pub(crate) n_dt: usize,
    pub(crate) n_idt: usize,
    pub(crate) n_delayt: usize,
    /// `delayt` instance → delayed variable (mirrors the interpreter's
    /// body scan, precomputed so `accept` never walks a tree).
    pub(crate) delayt_vars: Vec<Option<usize>>,
    pub(crate) stats: CompileStats,
}

impl Program {
    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Pin names in device-pin order.
    pub fn pins(&self) -> Vec<&str> {
        self.pins.iter().map(String::as_str).collect()
    }

    /// Parameter names and defaults.
    pub fn params(&self) -> &[(String, f64)] {
        &self.params
    }

    /// Instruction count.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Physical registers used.
    pub fn reg_count(&self) -> usize {
        self.n_regs
    }

    /// Pipeline counters.
    pub fn stats(&self) -> CompileStats {
        self.stats
    }

    /// Instantiates the program as an executable VM device.
    ///
    /// # Errors
    ///
    /// [`FasError::Instantiate`] for overrides of undeclared parameters
    /// (identical validation to the interpreter path).
    pub fn instantiate(&self, overrides: &BTreeMap<String, f64>) -> Result<crate::FasVm, FasError> {
        let mut values: Vec<f64> = self.params.iter().map(|(_, v)| *v).collect();
        for (name, value) in overrides {
            match self.params.iter().position(|(n, _)| n == name) {
                Some(idx) => values[idx] = *value,
                None => {
                    return Err(FasError::Instantiate(format!(
                        "model {} has no parameter '{name}'",
                        self.name
                    )))
                }
            }
        }
        Ok(crate::FasVm::new(self.clone(), values))
    }

    /// Renders a human-readable listing (the `gabm compile --disasm`
    /// output; kept stable because CI goldens it).
    pub fn disasm(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "; model {}: {} pins, {} params, {} vars",
            self.name,
            self.pins.len(),
            self.params.len(),
            self.var_names.len()
        );
        let _ = writeln!(
            out,
            "; {} ops, {} regs, {} consts, state: {} dt / {} idt / {} delayt",
            self.ops.len(),
            self.n_regs,
            self.consts.len(),
            self.n_dt,
            self.n_idt,
            self.n_delayt
        );
        let s = self.stats;
        let _ = writeln!(
            out,
            "; lowered {} vinsts ({} vregs), folded {}, static branches {}, selects {}, dce {}",
            s.vinsts, s.vregs, s.folded, s.static_branches, s.selects, s.dce_removed
        );
        for (pc, op) in self.ops.iter().enumerate() {
            let _ = writeln!(out, "{:4}: {}", pc, self.fmt_op(op));
        }
        out
    }

    fn fmt_op(&self, op: &Op) -> String {
        let var = |i: u16| self.var_names[i as usize].clone();
        match *op {
            Op::Const { dst, k } => {
                format!("r{dst} <- const {:?}", self.consts[k as usize])
            }
            Op::LoadPin { dst, pin } => {
                format!("r{dst} <- pin {}", self.pins[pin as usize])
            }
            Op::LoadParam { dst, p } => {
                format!("r{dst} <- param {}", self.params[p as usize].0)
            }
            Op::LoadScratch { dst, var: v } => format!("r{dst} <- var {}", var(v)),
            Op::LoadCommitted { dst, var: v } => {
                format!("r{dst} <- delay {}", var(v))
            }
            Op::LoadTime { dst } => format!("r{dst} <- time"),
            Op::LoadTemp { dst } => format!("r{dst} <- temp"),
            Op::LoadTimeStep { dst } => format!("r{dst} <- timestep"),
            Op::Neg { dst, a } => format!("r{dst} <- neg r{a}"),
            Op::Add { dst, a, b } => format!("r{dst} <- add r{a}, r{b}"),
            Op::Sub { dst, a, b } => format!("r{dst} <- sub r{a}, r{b}"),
            Op::Mul { dst, a, b } => format!("r{dst} <- mul r{a}, r{b}"),
            Op::Div { dst, a, b } => format!("r{dst} <- div r{a}, r{b}"),
            Op::Call1 { dst, f, a } => {
                format!("r{dst} <- {} r{a}", format!("{f:?}").to_lowercase())
            }
            Op::Call2 { dst, f, a, b } => {
                format!("r{dst} <- {} r{a}, r{b}", format!("{f:?}").to_lowercase())
            }
            Op::Limit { dst, x, lo, hi } => {
                format!("r{dst} <- limit r{x}, r{lo}, r{hi}")
            }
            Op::Dt { dst, inst, a } => format!("r{dst} <- dt[{inst}] r{a}"),
            Op::DelayT {
                dst,
                inst,
                var: v,
                td,
            } => {
                format!("r{dst} <- delayt[{inst}] {}, td=r{td}", var(v))
            }
            Op::Idt { dst, inst, a } => format!("r{dst} <- idt[{inst}] r{a}"),
            Op::StoreVar { var: v, src } => format!("var {} <- r{src}", var(v)),
            Op::Impose { pin, src } => {
                format!("impose {} += r{src}", self.pins[pin as usize])
            }
            Op::Select {
                dst,
                op,
                a,
                b,
                t,
                f,
            } => format!("r{dst} <- select r{a} {} r{b} ? r{t} : r{f}", rel_txt(op)),
            Op::Jump { target } => format!("jump {target}"),
            Op::JumpIfNot { op, a, b, target } => {
                format!("jump {target} unless r{a} {} r{b}", rel_txt(op))
            }
            Op::JumpIfModeNot { dc, target } => format!(
                "jump {target} unless mode={}",
                if dc { "dc" } else { "tran" }
            ),
        }
    }
}

/// Mnemonics indexed by [`Op::kind`]; order is part of the trace output.
const KIND_NAMES: [&str; Op::KINDS] = [
    "const",
    "load_pin",
    "load_param",
    "load_scratch",
    "load_committed",
    "load_time",
    "load_temp",
    "load_timestep",
    "neg",
    "add",
    "sub",
    "mul",
    "div",
    "call1",
    "call2",
    "limit",
    "dt",
    "delayt",
    "idt",
    "store_var",
    "impose",
    "select",
    "jump",
    "jump_if_not",
    "jump_if_mode_not",
];

impl Op {
    /// Number of opcode kinds (the size of a per-opcode histogram).
    pub const KINDS: usize = 25;

    /// Dense opcode-kind index in `0..KINDS`, stable across runs; used by
    /// the optional per-opcode execution histogram (`GABM_TRACE_OPCODES`).
    pub fn kind(&self) -> usize {
        match self {
            Op::Const { .. } => 0,
            Op::LoadPin { .. } => 1,
            Op::LoadParam { .. } => 2,
            Op::LoadScratch { .. } => 3,
            Op::LoadCommitted { .. } => 4,
            Op::LoadTime { .. } => 5,
            Op::LoadTemp { .. } => 6,
            Op::LoadTimeStep { .. } => 7,
            Op::Neg { .. } => 8,
            Op::Add { .. } => 9,
            Op::Sub { .. } => 10,
            Op::Mul { .. } => 11,
            Op::Div { .. } => 12,
            Op::Call1 { .. } => 13,
            Op::Call2 { .. } => 14,
            Op::Limit { .. } => 15,
            Op::Dt { .. } => 16,
            Op::DelayT { .. } => 17,
            Op::Idt { .. } => 18,
            Op::StoreVar { .. } => 19,
            Op::Impose { .. } => 20,
            Op::Select { .. } => 21,
            Op::Jump { .. } => 22,
            Op::JumpIfNot { .. } => 23,
            Op::JumpIfModeNot { .. } => 24,
        }
    }

    /// Mnemonic of an opcode-kind index (see [`Op::kind`]).
    pub fn kind_name(kind: usize) -> &'static str {
        KIND_NAMES[kind]
    }
}

fn rel_txt(op: RelOp) -> &'static str {
    match op {
        RelOp::Eq => "=",
        RelOp::Ne => "!=",
        RelOp::Lt => "<",
        RelOp::Le => "<=",
        RelOp::Gt => ">",
        RelOp::Ge => ">=",
    }
}
