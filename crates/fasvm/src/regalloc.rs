//! Linear-scan register allocation: virtual registers → a fixed `u8`
//! file.
//!
//! FAS has no loops, so every jump in the linear IR is forward-only and
//! a virtual register's live interval is exactly `[def, last_use]` — no
//! backward-edge extension, no spilling heuristics. One forward scan
//! computes intervals, a second assigns physical registers from a free
//! list, expiring intervals as they end. An instruction may reuse one of
//! its own source registers as destination: the dispatch loop reads all
//! sources before writing.

use crate::ir::{VInst, VReg};
use crate::VmError;

/// Hard cap of the VM register file (`u8` indices).
pub(crate) const MAX_REGS: usize = 256;

/// Maps every virtual register to a physical one. Returns the
/// assignment and the number of physical registers used.
pub(crate) fn allocate(insts: &[VInst], n_vregs: usize) -> Result<(Vec<u8>, usize), VmError> {
    // Pass 1: intervals. `def` doubles as "has interval" via end >= def.
    let mut def = vec![usize::MAX; n_vregs];
    let mut end = vec![0usize; n_vregs];
    for (pc, inst) in insts.iter().enumerate() {
        visit(inst, |r, is_def| {
            let i = r as usize;
            if is_def {
                def[i] = pc;
                end[i] = pc;
            } else {
                end[i] = pc;
            }
        });
    }
    // Pass 2: scan. Intervals sorted by def order == pc order, so a
    // plain walk over instructions suffices.
    let mut assign = vec![0u8; n_vregs];
    let mut free: Vec<u8> = (0..MAX_REGS as u16).rev().map(|r| r as u8).collect();
    // Active intervals as (end, vreg), kept as a simple vec — programs
    // are tiny and the active set is bounded by live values.
    let mut active: Vec<(usize, VReg)> = Vec::new();
    let mut used = 0usize;
    for (pc, inst) in insts.iter().enumerate() {
        // Expire everything that ends before or at this instruction —
        // a source read here may hand its register to this def.
        active.retain(|&(e, r)| {
            if e <= pc {
                free.push(assign[r as usize]);
                false
            } else {
                true
            }
        });
        let mut dst: Option<VReg> = None;
        visit(inst, |r, is_def| {
            if is_def {
                dst = Some(r);
            }
        });
        if let Some(r) = dst {
            let i = r as usize;
            let Some(phys) = free.pop() else {
                return Err(VmError::RegisterPressure {
                    needed: active.len() + 1,
                });
            };
            assign[i] = phys;
            used = used.max(MAX_REGS - free.len());
            if end[i] <= pc {
                // Dead destination (kept for its side effect): the
                // register frees immediately after this instruction.
                free.push(phys);
            } else {
                active.push((end[i], r));
            }
        }
    }
    Ok((assign, used))
}

/// Calls `f(reg, is_def)` for every register an instruction touches.
/// The destination (if any) is reported exactly once with `is_def`.
fn visit(inst: &VInst, mut f: impl FnMut(VReg, bool)) {
    match *inst {
        VInst::Const { dst, .. }
        | VInst::LoadPin { dst, .. }
        | VInst::LoadParam { dst, .. }
        | VInst::LoadScratch { dst, .. }
        | VInst::LoadCommitted { dst, .. }
        | VInst::LoadTime { dst }
        | VInst::LoadTemp { dst }
        | VInst::LoadTimeStep { dst } => f(dst, true),
        VInst::Neg { dst, a } | VInst::Call1 { dst, a, .. } => {
            f(a, false);
            f(dst, true);
        }
        VInst::Bin { dst, a, b, .. } | VInst::Call2 { dst, a, b, .. } => {
            f(a, false);
            f(b, false);
            f(dst, true);
        }
        VInst::Limit { dst, x, lo, hi } => {
            f(x, false);
            f(lo, false);
            f(hi, false);
            f(dst, true);
        }
        VInst::Dt { dst, a, .. } | VInst::Idt { dst, a, .. } => {
            f(a, false);
            f(dst, true);
        }
        VInst::DelayT { dst, td, .. } => {
            f(td, false);
            f(dst, true);
        }
        VInst::StoreVar { src, .. } | VInst::Impose { src, .. } => f(src, false),
        VInst::Select {
            dst,
            a,
            b,
            t,
            f: fr,
            ..
        } => {
            f(a, false);
            f(b, false);
            f(t, false);
            f(fr, false);
            f(dst, true);
        }
        VInst::Label(_) | VInst::Jump(_) | VInst::JumpIfModeNot { .. } => {}
        VInst::JumpIfNot { a, b, .. } => {
            f(a, false);
            f(b, false);
        }
    }
}
